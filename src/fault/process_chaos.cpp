#include "fault/process_chaos.hpp"

#include <algorithm>
#include <numeric>
#include <random>

namespace marp::fault {

std::vector<ProcessKill> make_kill_schedule(std::uint64_t seed,
                                            std::uint32_t nodes,
                                            std::uint32_t kills,
                                            std::chrono::milliseconds window) {
  std::vector<ProcessKill> schedule;
  if (nodes == 0 || kills == 0 || window.count() <= 0) return schedule;
  if (kills > nodes) kills = nodes;

  std::mt19937_64 rng(seed ^ 0xC4A5C85C97CB3127ULL);

  // Victims without replacement: shuffle [0, nodes) and take the prefix.
  std::vector<std::uint32_t> victims(nodes);
  std::iota(victims.begin(), victims.end(), 0U);
  std::shuffle(victims.begin(), victims.end(), rng);
  victims.resize(kills);

  const auto lo = window.count() / 4;
  std::uniform_int_distribution<long long> when(lo, window.count() - 1);
  schedule.reserve(kills);
  for (std::uint32_t victim : victims) {
    schedule.push_back({victim, std::chrono::milliseconds(when(rng))});
  }
  std::sort(schedule.begin(), schedule.end(),
            [](const ProcessKill& a, const ProcessKill& b) {
              return a.at < b.at || (a.at == b.at && a.victim < b.victim);
            });
  return schedule;
}

std::string describe_kill_schedule(const std::vector<ProcessKill>& schedule) {
  std::string out;
  for (const ProcessKill& kill : schedule) {
    if (!out.empty()) out += "; ";
    out += "kill node " + std::to_string(kill.victim) + " at t+" +
           std::to_string(kill.at.count()) + "ms";
  }
  if (out.empty()) out = "(no kills)";
  return out;
}

}  // namespace marp::fault

// Process-level chaos: seeded SIGKILL schedules for real cluster nodes.
//
// The in-process FaultInjector crashes *simulated* servers; this header is
// the same idea one level down — the supervisor (tools/marp_cluster) kills
// whole `marp_node` processes at scheduled wall-clock offsets and relies on
// the reincarnation path (durable log replay → announce → anti-entropy
// catch-up → rejoin) to bring them back. The schedule is a pure function of
// its seed, so a failing chaos run replays bit-for-bit.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace marp::fault {

/// One scheduled kill: SIGKILL `victim` at `at` after workload start.
struct ProcessKill {
  std::uint32_t victim = 0;
  std::chrono::milliseconds at{0};
};

/// Deterministic kill schedule: `kills` victims drawn without replacement
/// from [0, nodes) — distinct victims, so every kill exercises a *first*
/// crash of that node and the acceptance bar ("≥3 distinct nodes") is met
/// by construction — at sorted offsets uniform in [window/4, window).
/// The lower bound keeps kills off the cluster's connect/start ramp, where
/// a kill is a no-op (no sessions in flight yet).
std::vector<ProcessKill> make_kill_schedule(std::uint64_t seed,
                                            std::uint32_t nodes,
                                            std::uint32_t kills,
                                            std::chrono::milliseconds window);

/// Human-readable one-liner per kill ("kill node 3 at t+1240ms"), for logs
/// and CI artifacts.
std::string describe_kill_schedule(const std::vector<ProcessKill>& schedule);

}  // namespace marp::fault

#include "fault/injector.hpp"

#include <algorithm>

#include "marp/update_agent.hpp"
#include "util/logging.hpp"

namespace marp::fault {

FaultInjector::FaultInjector(net::Network& network,
                             agent::AgentPlatform& platform,
                             core::MarpProtocol& protocol, FaultPlan plan)
    : network_(network),
      platform_(platform),
      protocol_(protocol),
      plan_(std::move(plan)),
      crashed_(network.size(), false),
      phase_counts_(4, 0) {}

void FaultInjector::arm() {
  sim::Simulator& simulator = network_.simulator();
  for (std::size_t i = 0; i < plan_.actions.size(); ++i) {
    const Action& action = plan_.actions[i];
    if (action.on_phase) {
      pending_phase_.push_back(i);
      continue;
    }
    simulator.schedule_at(action.at, [this, i] {
      fire(plan_.actions[i], net::kInvalidNode, /*in_probe=*/false);
    });
  }
  if (!pending_phase_.empty()) {
    protocol_.set_phase_probe(
        [this](const core::PhaseEvent& event) { on_phase_event(event); });
  }
}

void FaultInjector::on_phase_event(const core::PhaseEvent& event) {
  const std::uint32_t count = ++phase_counts_[static_cast<std::size_t>(event.phase)];
  for (auto it = pending_phase_.begin(); it != pending_phase_.end();) {
    const Action& action = plan_.actions[*it];
    if (action.on_phase->phase == event.phase &&
        action.on_phase->occurrence == count) {
      ++stats_.phase_triggers_fired;
      fire(action, event.node, /*in_probe=*/true);
      it = pending_phase_.erase(it);
    } else {
      ++it;
    }
  }
}

void FaultInjector::fire(const Action& action, net::NodeId event_node,
                         bool in_probe) {
  const net::NodeId target =
      action.node != net::kInvalidNode ? action.node : event_node;
  switch (action.kind) {
    case ActionKind::CrashServer:
    case ActionKind::KillAgents: {
      if (target == net::kInvalidNode || target >= network_.size()) return;
      if (in_probe) {
        // The probe runs inside an agent callback on the target host;
        // destroying that agent under its own feet is not survivable.
        // Re-fire at +0 virtual time — same instant, after the current
        // event unwinds. (For a quorum-phase crash this means the COMMIT
        // broadcast is already in flight: exactly what a real crash
        // straddling the decision looks like.)
        Action deferred = action;
        deferred.node = target;
        network_.simulator().schedule(sim::SimTime::zero(), [this, deferred] {
          fire(deferred, net::kInvalidNode, /*in_probe=*/false);
        });
        return;
      }
      if (action.kind == ActionKind::CrashServer) {
        crashed_[target] = true;
        ++stats_.crashes;
        protocol_.fail_server(target);
      } else {
        std::vector<agent::AgentId> killed =
            platform_.host(target).dispose_by_type(core::kUpdateAgentType);
        stats_.agents_killed += killed.size();
        if (!killed.empty()) {
          // Dead-agent notices go out exactly as for a host crash, so the
          // victims' locking state is purged everywhere after the §2 delay.
          protocol_.announce_agent_deaths(std::move(killed));
        }
      }
      return;
    }
    case ActionKind::RecoverServer: {
      if (target == net::kInvalidNode) {
        // No explicit target: revive whichever nodes this plan crashed —
        // the only sane pairing for a phase-resolved crash, whose victim
        // is not known when the plan is written.
        // crashed_ stays set: it records "ever crashed" for the
        // convergence audit, not current liveness.
        for (net::NodeId node = 0; node < crashed_.size(); ++node) {
          if (!crashed_[node]) continue;
          ++stats_.recoveries;
          protocol_.recover_server(node);
        }
        return;
      }
      if (target >= network_.size()) return;
      ++stats_.recoveries;
      protocol_.recover_server(target);
      return;
    }
    case ActionKind::Partition: {
      std::vector<net::NodeId> group = action.group;
      if (group.empty()) {
        // Build a group of auto_group_size consecutive ids around the
        // resolved node (the phase event's winner when triggered there).
        const net::NodeId anchor =
            target != net::kInvalidNode ? target : net::NodeId{0};
        const std::size_t size =
            std::max<std::size_t>(1, std::min(action.auto_group_size,
                                              network_.size() - 1));
        for (std::size_t i = 0; i < size; ++i) {
          group.push_back(static_cast<net::NodeId>((anchor + i) % network_.size()));
        }
      }
      ++stats_.partitions;
      network_.partition(group);
      if (action.heal_after > sim::SimTime::zero()) {
        network_.simulator().schedule(action.heal_after, [this] {
          ++stats_.heals;
          network_.heal_partition();
        });
      }
      return;
    }
    case ActionKind::Heal:
      ++stats_.heals;
      network_.heal_partition();
      return;
    case ActionKind::SetLinkFaults:
      ++stats_.link_fault_changes;
      network_.set_default_link_faults(action.faults);
      return;
    case ActionKind::ClearLinkFaults:
      ++stats_.link_fault_changes;
      network_.clear_link_faults();
      return;
    case ActionKind::JoinServer:
      if (target == net::kInvalidNode || target >= network_.size()) return;
      if (protocol_.request_join(target)) ++stats_.joins_requested;
      return;
    case ActionKind::LeaveServer:
      if (target == net::kInvalidNode || target >= network_.size()) return;
      if (protocol_.request_leave(target)) ++stats_.leaves_requested;
      return;
  }
}

}  // namespace marp::fault

// FaultInjector — executes a FaultPlan against a live MARP deployment.
//
// Time-triggered actions become simulator events; phase-triggered actions
// ride the protocol's phase probe and fire at the exact protocol instant
// (an UpdateQuorum trigger acts after the Theorem-2 audit and *before* the
// COMMIT broadcast leaves the winner). Every roll the injector or the plan
// builder makes comes from the run seed's named streams, so a failing chaos
// scenario replays bit-for-bit from its seed.
#pragma once

#include <vector>

#include "agent/platform.hpp"
#include "fault/plan.hpp"
#include "marp/protocol.hpp"
#include "net/network.hpp"

namespace marp::fault {

struct InjectorStats {
  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t partitions = 0;
  std::uint64_t heals = 0;
  std::uint64_t link_fault_changes = 0;
  std::uint64_t agents_killed = 0;
  std::uint64_t phase_triggers_fired = 0;
  std::uint64_t joins_requested = 0;
  std::uint64_t leaves_requested = 0;
};

class FaultInjector {
 public:
  FaultInjector(net::Network& network, agent::AgentPlatform& platform,
                core::MarpProtocol& protocol, FaultPlan plan);

  /// Install the phase probe and schedule every time-triggered action.
  /// Call once, before the simulator runs.
  void arm();

  const InjectorStats& stats() const noexcept { return stats_; }
  const FaultPlan& plan() const noexcept { return plan_; }
  /// Per-node: was it ever crashed by the plan? (Convergence audits exempt
  /// crashed replicas; partitioned-but-live ones stay on the hook.)
  const std::vector<bool>& crashed() const noexcept { return crashed_; }

 private:
  /// Process-level actions (crash, kill) cannot destroy the agent whose
  /// callback the phase probe is running inside; when `deferred` they are
  /// re-scheduled at +0 virtual time (after the current event completes).
  void fire(const Action& action, net::NodeId event_node, bool in_probe);
  void on_phase_event(const core::PhaseEvent& event);

  net::Network& network_;
  agent::AgentPlatform& platform_;
  core::MarpProtocol& protocol_;
  FaultPlan plan_;
  InjectorStats stats_;
  std::vector<bool> crashed_;
  /// Occurrence counter per ProtocolPhase value.
  std::vector<std::uint32_t> phase_counts_;
  /// Indices into plan_.actions of phase-triggered actions not yet fired.
  std::vector<std::size_t> pending_phase_;
};

}  // namespace marp::fault

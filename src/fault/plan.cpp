#include "fault/plan.hpp"

#include <sstream>

#include "sim/random.hpp"

namespace marp::fault {

namespace {

const char* kind_name(ActionKind kind) {
  switch (kind) {
    case ActionKind::CrashServer: return "crash";
    case ActionKind::RecoverServer: return "recover";
    case ActionKind::Partition: return "partition";
    case ActionKind::Heal: return "heal";
    case ActionKind::SetLinkFaults: return "link-faults";
    case ActionKind::ClearLinkFaults: return "clear-link-faults";
    case ActionKind::KillAgents: return "kill-agents";
    case ActionKind::JoinServer: return "join";
    case ActionKind::LeaveServer: return "leave";
  }
  return "?";
}

const char* phase_name(core::ProtocolPhase phase) {
  switch (phase) {
    case core::ProtocolPhase::UpdateAttempt: return "update-attempt";
    case core::ProtocolPhase::UpdateQuorum: return "update-quorum";
    case core::ProtocolPhase::UpdateCommit: return "update-commit";
    case core::ProtocolPhase::UpdateAbort: return "update-abort";
  }
  return "?";
}

}  // namespace

std::string Action::describe() const {
  std::ostringstream out;
  out << kind_name(kind);
  if (on_phase) {
    out << " @" << phase_name(on_phase->phase) << "#" << on_phase->occurrence;
  } else {
    out << " @" << at.as_micros() << "us";
  }
  if (node != net::kInvalidNode) out << " node=" << node;
  if (!group.empty()) {
    out << " group={";
    for (std::size_t i = 0; i < group.size(); ++i) {
      out << (i ? "," : "") << group[i];
    }
    out << "}";
  } else if (auto_group_size > 0) {
    out << " auto_group=" << auto_group_size;
  }
  if (kind == ActionKind::SetLinkFaults) {
    out << " drop=" << faults.drop << " dup=" << faults.duplicate
        << " reorder=" << faults.reorder;
  }
  return out.str();
}

bool FaultPlan::lossy() const noexcept {
  for (const Action& action : actions) {
    if (action.kind == ActionKind::CrashServer ||
        action.kind == ActionKind::KillAgents) {
      return true;
    }
  }
  return false;
}

std::string FaultPlan::describe() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < actions.size(); ++i) {
    out << (i ? "; " : "") << actions[i].describe();
  }
  return out.str();
}

FaultPlan make_random_plan(std::uint64_t seed, std::size_t servers,
                           sim::SimTime duration) {
  FaultPlan plan;
  sim::RngFactory factory(seed);
  sim::Rng rng = factory.stream("fault-plan");
  const std::int64_t d = duration.as_micros();
  // Everything destructive is undone by 0.8·duration: the tail is the quiet
  // window in which retransmits, recovery sync and anti-entropy must close
  // every gap the faults opened.
  auto frac = [&](double lo, double hi) {
    return sim::SimTime::micros(
        static_cast<std::int64_t>(rng.uniform(lo, hi) * static_cast<double>(d)));
  };
  auto random_node = [&] {
    return static_cast<net::NodeId>(rng.bounded(servers));
  };
  const std::size_t minority = servers / 2;  // strict minority for majority N

  // Crash + recover one random server (never the whole majority).
  if (rng.bernoulli(0.5) && servers > 2) {
    Action crash;
    crash.kind = ActionKind::CrashServer;
    crash.at = frac(0.05, 0.45);
    crash.node = random_node();
    Action recover;
    recover.kind = ActionKind::RecoverServer;
    recover.at = crash.at + frac(0.05, 0.30);
    recover.node = crash.node;
    plan.actions.push_back(crash);
    plan.actions.push_back(recover);
  }

  // A partition window: timed, or sprung on a winner the moment it has its
  // quorum (the hardest instant — UPDATE acked, COMMIT not yet out).
  if (rng.bernoulli(0.6) && minority >= 1) {
    Action cut;
    cut.kind = ActionKind::Partition;
    cut.auto_group_size = 1 + rng.bounded(minority);
    if (rng.bernoulli(0.5)) {
      cut.on_phase = PhaseTrigger{core::ProtocolPhase::UpdateQuorum,
                                  1 + static_cast<std::uint32_t>(rng.bounded(4))};
      // The fire time is decided by the protocol, not the plan, so the cut
      // carries its own bounded heal instead of a timed Heal action.
      cut.heal_after = frac(0.10, 0.30);
      plan.actions.push_back(cut);
    } else {
      cut.at = frac(0.05, 0.45);
      cut.node = random_node();
      Action heal;
      heal.kind = ActionKind::Heal;
      heal.at = frac(0.55, 0.78);
      plan.actions.push_back(cut);
      plan.actions.push_back(heal);
    }
  }

  // Message faults on live links, either for a window or the whole run
  // (they are survivable, unlike an unhealed partition).
  if (rng.bernoulli(0.7)) {
    Action set;
    set.kind = ActionKind::SetLinkFaults;
    set.at = frac(0.0, 0.2);
    set.faults.drop = rng.bernoulli(0.8) ? rng.uniform(0.005, 0.08) : 0.0;
    set.faults.duplicate = rng.bernoulli(0.5) ? rng.uniform(0.01, 0.10) : 0.0;
    set.faults.reorder = rng.bernoulli(0.5) ? rng.uniform(0.02, 0.20) : 0.0;
    plan.actions.push_back(set);
    if (rng.bernoulli(0.4)) {
      Action clear;
      clear.kind = ActionKind::ClearLinkFaults;
      clear.at = frac(0.5, 0.78);
      plan.actions.push_back(clear);
    }
  }

  // Kill in-flight agents at a random server, mid-tour.
  if (rng.bernoulli(0.3)) {
    Action kill;
    kill.kind = ActionKind::KillAgents;
    kill.at = frac(0.10, 0.70);
    kill.node = random_node();
    plan.actions.push_back(kill);
  }

  return plan;
}

FaultPlan make_churn_plan(std::uint64_t seed, std::size_t servers,
                          std::size_t members, sim::SimTime duration) {
  FaultPlan plan;
  if (members == 0 || members > servers) members = servers;
  sim::RngFactory factory(seed);
  sim::Rng rng = factory.stream("churn-plan");
  const std::int64_t d = duration.as_micros();
  auto frac = [&](double lo, double hi) {
    return sim::SimTime::micros(
        static_cast<std::int64_t>(rng.uniform(lo, hi) * static_cast<double>(d)));
  };

  if (members < servers && rng.bernoulli(0.75)) {
    Action join;
    join.kind = ActionKind::JoinServer;
    join.at = frac(0.10, 0.60);
    join.node = static_cast<net::NodeId>(members + rng.bounded(servers - members));
    plan.actions.push_back(join);
  }
  if (members > 2 && rng.bernoulli(0.75)) {
    Action leave;
    leave.kind = ActionKind::LeaveServer;
    leave.at = frac(0.10, 0.60);
    leave.node = static_cast<net::NodeId>(rng.bounded(members));
    plan.actions.push_back(leave);
  }
  return plan;
}

}  // namespace marp::fault

// Scripted fault schedules for chaos experiments.
//
// A FaultPlan is a list of actions — crash/recover a server, partition or
// heal the network, dial message faults onto live links, kill in-flight
// agents — each fired either at a virtual time or when the protocol reaches
// a named phase (e.g. "the 2nd time any agent assembles an update quorum").
// Plans are plain data: deterministic to build (make_random_plan is a pure
// function of its seed), cheap to print, and replayable bit-for-bit.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "marp/protocol.hpp"
#include "net/network.hpp"
#include "sim/time.hpp"

namespace marp::fault {

enum class ActionKind : std::uint8_t {
  CrashServer,      ///< fail-stop `node` (its agents die with it)
  RecoverServer,    ///< bring `node` back (recovery sync applies); with no
                    ///< target, revives every node the plan crashed —
                    ///< pairs with a phase-resolved crash whose victim is
                    ///< unknown when the plan is written
  Partition,        ///< cut `group` (or an auto group) from the rest
  Heal,             ///< restore every cut link
  SetLinkFaults,    ///< apply `faults` to every link (drop/dup/reorder)
  ClearLinkFaults,  ///< back to clean links
  KillAgents,       ///< dispose in-flight UpdateAgents at `node`, mid-tour
  JoinServer,       ///< propose adding `node` to the membership view
  LeaveServer       ///< propose removing `node` from the membership view
};

/// Phase trigger: fire on the `occurrence`-th protocol event of `phase`
/// (1-based), wherever it happens. The fired action resolves kInvalidNode
/// targets to the event's node — "partition the winner" needs no foresight
/// about who wins.
struct PhaseTrigger {
  core::ProtocolPhase phase = core::ProtocolPhase::UpdateQuorum;
  std::uint32_t occurrence = 1;
};

struct Action {
  ActionKind kind = ActionKind::CrashServer;
  /// Virtual fire time; ignored when `on_phase` is set.
  sim::SimTime at = sim::SimTime::zero();
  std::optional<PhaseTrigger> on_phase;

  /// Crash/Recover/KillAgents target; kInvalidNode under a phase trigger
  /// means "the node the phase event happened at".
  net::NodeId node = net::kInvalidNode;
  /// Partition group. Empty means: build one of `auto_group_size` nodes
  /// around the resolved target node (consecutive ids, wrapping).
  std::vector<net::NodeId> group;
  std::size_t auto_group_size = 0;
  /// Partition only: when non-zero, the injector schedules heal_partition()
  /// this long after the cut fires. Phase-triggered partitions need this —
  /// their fire time is unknown when the plan is written, so a timed Heal
  /// could land before the cut.
  sim::SimTime heal_after = sim::SimTime::zero();
  /// SetLinkFaults payload.
  net::LinkFaults faults;

  std::string describe() const;
};

struct FaultPlan {
  std::vector<Action> actions;

  bool empty() const noexcept { return actions.empty(); }
  /// True when the plan can lose client answers outright (a crash clears
  /// buffered requests; a kill loses the agent's report): completeness
  /// accounting must then tolerate never-answered writes.
  bool lossy() const noexcept;
  std::string describe() const;
};

/// Deterministic randomized plan: a pure function of (seed, servers,
/// duration). Draws a scenario from the full action vocabulary — crash +
/// recover pairs, timed and phase-triggered partitions with heals, link
/// fault windows, agent kills — with every destructive action scheduled to
/// be undone by 0.8 × duration, so runs get a quiet tail in which the
/// hardened protocol must reconverge.
FaultPlan make_random_plan(std::uint64_t seed, std::size_t servers,
                           sim::SimTime duration);

/// Deterministic membership-churn plan: a pure function of (seed, servers,
/// members, duration). Joins a seed-drawn spare (a node outside the initial
/// view, when one exists) and removes a seed-drawn initial member, each with
/// probability ¾, at independent times in [0.1, 0.6]·duration — both
/// scheduled early enough that anti-entropy and catch-up have the quiet
/// tail to reconverge in. Never drains the view below two members.
FaultPlan make_churn_plan(std::uint64_t seed, std::size_t servers,
                          std::size_t members, sim::SimTime duration);

}  // namespace marp::fault

#include "quorum/quorum.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "util/assert.hpp"

namespace marp::quorum {
namespace {

// Enumeration is the test harness's ground truth; past this the 2^n / cross
// product walks stop being cheap, and nothing on the protocol path needs them.
constexpr std::size_t kMaxEnumerableServers = 20;

bool is_valid(net::NodeId node, std::size_t n) {
  return node != net::kInvalidNode && static_cast<std::size_t>(node) < n;
}

// Deterministic tie-break for candidate quorums: prefer-containing first,
// then smallest, then lexicographically smallest.
bool better_pick(const NodeSet& a, const NodeSet& b, net::NodeId prefer) {
  const bool ap = contains(a, prefer);
  const bool bp = contains(b, prefer);
  if (ap != bp) return ap;
  if (a.size() != b.size()) return a.size() < b.size();
  return a < b;
}

std::vector<NodeSet> deduped(std::set<NodeSet> sets) {
  return std::vector<NodeSet>(sets.begin(), sets.end());
}

}  // namespace

bool contains(const NodeSet& sorted, net::NodeId node) {
  return std::binary_search(sorted.begin(), sorted.end(), node);
}

NodeSet make_node_set(std::vector<net::NodeId> nodes) {
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

// ---------------------------------------------------------------------------
// MajorityQuorum

MajorityQuorum::MajorityQuorum(std::size_t n, std::vector<std::uint32_t> votes,
                               std::uint32_t read_quorum_votes)
    : QuorumSystem(n), votes_(std::move(votes)) {
  MARP_REQUIRE(n >= 1);
  if (votes_.empty()) votes_.assign(n, 1);
  MARP_REQUIRE(votes_.size() == n);
  for (std::uint32_t v : votes_) total_ += v;
  MARP_REQUIRE(total_ >= 1);
  // Seed rule for the read side (read_agent.cpp): an explicit threshold, or
  // the minimal r with r + w > V where w = ⌊V/2⌋ + 1.
  read_threshold_ =
      read_quorum_votes != 0 ? read_quorum_votes : total_ - total_ / 2;
}

std::uint32_t MajorityQuorum::votes_of(const NodeSet& nodes) const {
  std::uint32_t sum = 0;
  for (net::NodeId v : nodes) {
    if (is_valid(v, n_)) sum += votes_[v];
  }
  return sum;
}

bool MajorityQuorum::write_covered(const NodeSet& nodes) const {
  // Kept in the seed's exact form (2·held > total) rather than a derived
  // threshold, so the majority geometry is arithmetically the seed path.
  return 2 * votes_of(nodes) > total_;
}

bool MajorityQuorum::read_covered(const NodeSet& nodes) const {
  return votes_of(nodes) >= read_threshold_;
}

std::optional<NodeSet> MajorityQuorum::pick_threshold(
    const NodeSet& excluded, net::NodeId prefer,
    std::uint32_t threshold) const {
  NodeSet picked;
  std::uint32_t held = 0;
  if (is_valid(prefer, n_) && !contains(excluded, prefer)) {
    picked.push_back(prefer);
    held += votes_[prefer];
  }
  // `picked` holds prefer out of order, so membership can't be a binary
  // search; prefer is the only id the ascending walk could re-add.
  for (net::NodeId v = 0; v < static_cast<net::NodeId>(n_) && held < threshold;
       ++v) {
    if (votes_[v] == 0 || contains(excluded, v) || v == prefer) continue;
    picked.push_back(v);
    held += votes_[v];
  }
  if (held < threshold) return std::nullopt;
  return make_node_set(std::move(picked));
}

std::optional<NodeSet> MajorityQuorum::pick_write_quorum(
    const NodeSet& excluded, net::NodeId prefer) const {
  return pick_threshold(excluded, prefer, total_ / 2 + 1);
}

std::optional<NodeSet> MajorityQuorum::pick_read_quorum(
    const NodeSet& excluded, net::NodeId prefer) const {
  return pick_threshold(excluded, prefer, read_threshold_);
}

std::vector<NodeSet> MajorityQuorum::enumerate_minimal(bool read) const {
  MARP_REQUIRE(n_ <= kMaxEnumerableServers);
  const std::uint32_t threshold = read ? read_threshold_ : total_ / 2 + 1;
  std::vector<NodeSet> out;
  for (std::uint32_t mask = 1; mask < (1u << n_); ++mask) {
    std::uint32_t held = 0;
    NodeSet members;
    for (net::NodeId v = 0; v < static_cast<net::NodeId>(n_); ++v) {
      if (mask & (1u << v)) {
        held += votes_[v];
        members.push_back(v);
      }
    }
    if (held < threshold) continue;
    bool minimal = true;
    for (net::NodeId v : members) {
      if (held - votes_[v] >= threshold) {
        minimal = false;
        break;
      }
    }
    if (minimal) out.push_back(std::move(members));
  }
  return out;
}

std::vector<NodeSet> MajorityQuorum::write_quorums() const {
  return enumerate_minimal(/*read=*/false);
}

std::vector<NodeSet> MajorityQuorum::read_quorums() const {
  return enumerate_minimal(/*read=*/true);
}

std::size_t MajorityQuorum::min_write_size() const {
  // Greedy on descending vote weight: fewest servers reaching the threshold.
  std::vector<std::uint32_t> sorted = votes_;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  const std::uint32_t threshold = total_ / 2 + 1;
  std::uint32_t held = 0;
  std::size_t used = 0;
  for (std::uint32_t v : sorted) {
    if (held >= threshold) break;
    held += v;
    ++used;
  }
  return used;
}

// ---------------------------------------------------------------------------
// TreeQuorum

TreeQuorum::TreeQuorum(std::size_t n, std::uint32_t degree)
    : QuorumSystem(n), degree_(degree) {
  MARP_REQUIRE(n >= 1);
  MARP_REQUIRE(degree >= 2);
}

std::vector<net::NodeId> TreeQuorum::children(net::NodeId v) const {
  std::vector<net::NodeId> out;
  for (std::uint32_t i = 1; i <= degree_; ++i) {
    const std::uint64_t c = static_cast<std::uint64_t>(v) * degree_ + i;
    if (c < n_) out.push_back(static_cast<net::NodeId>(c));
  }
  return out;
}

bool TreeQuorum::write_covered(const NodeSet& nodes) const {
  // covered(v): leaf → v held; otherwise (v held and SOME child subtree
  // covered) or ALL child subtrees covered.
  auto covered = [&](auto&& self, net::NodeId v) -> bool {
    const auto kids = children(v);
    if (kids.empty()) return contains(nodes, v);
    bool any = false, all = true;
    for (net::NodeId c : kids) {
      const bool got = self(self, c);
      any = any || got;
      all = all && got;
    }
    if (all) return true;
    return contains(nodes, v) && any;
  };
  return covered(covered, 0);
}

std::optional<NodeSet> TreeQuorum::pick_write_quorum(
    const NodeSet& excluded, net::NodeId prefer) const {
  // Recursive best-candidate search. Both quorum forms are tried at each
  // node and scored by (contains prefer, size, lexicographic); because a
  // prefer-containing quorum of a subtree always restricts to a
  // prefer-containing quorum of the child subtree holding prefer, the
  // best-first scoring propagates prefer upward whenever any surviving
  // quorum contains it.
  auto pick = [&](auto&& self, net::NodeId v) -> std::optional<NodeSet> {
    const bool v_up = !contains(excluded, v);
    const auto kids = children(v);
    if (kids.empty()) {
      if (!v_up) return std::nullopt;
      return NodeSet{v};
    }
    std::optional<NodeSet> root_form;  // {v} ∪ quorum(one child)
    std::optional<NodeSet> all_form;   // ∪ quorum(every child)
    bool all_ok = true;
    NodeSet all_union;
    for (net::NodeId c : kids) {
      auto sub = self(self, c);
      if (!sub) {
        all_ok = false;
        continue;
      }
      if (v_up) {
        NodeSet cand = *sub;
        cand.push_back(v);
        cand = make_node_set(std::move(cand));
        if (!root_form || better_pick(cand, *root_form, prefer)) {
          root_form = std::move(cand);
        }
      }
      if (all_ok) {
        all_union.insert(all_union.end(), sub->begin(), sub->end());
      }
    }
    if (all_ok) all_form = make_node_set(std::move(all_union));
    if (root_form && all_form) {
      return better_pick(*root_form, *all_form, prefer) ? root_form : all_form;
    }
    return root_form ? root_form : all_form;
  };
  return pick(pick, 0);
}

std::vector<NodeSet> TreeQuorum::write_quorums() const {
  MARP_REQUIRE(n_ <= kMaxEnumerableServers);
  auto enumerate = [&](auto&& self, net::NodeId v) -> std::vector<NodeSet> {
    const auto kids = children(v);
    if (kids.empty()) return {NodeSet{v}};
    std::set<NodeSet> out;
    std::vector<std::vector<NodeSet>> per_child;
    for (net::NodeId c : kids) {
      per_child.push_back(self(self, c));
      for (const NodeSet& q : per_child.back()) {
        NodeSet with_root = q;
        with_root.push_back(v);
        out.insert(make_node_set(std::move(with_root)));
      }
    }
    // Cross product: one quorum from every child subtree.
    std::vector<NodeSet> partial{NodeSet{}};
    for (const auto& options : per_child) {
      std::vector<NodeSet> next;
      for (const NodeSet& base : partial) {
        for (const NodeSet& q : options) {
          NodeSet merged = base;
          merged.insert(merged.end(), q.begin(), q.end());
          next.push_back(make_node_set(std::move(merged)));
        }
      }
      partial = std::move(next);
    }
    for (NodeSet& q : partial) out.insert(std::move(q));
    return std::vector<NodeSet>(out.begin(), out.end());
  };
  return enumerate(enumerate, 0);
}

std::size_t TreeQuorum::min_write_size() const {
  auto min_size = [&](auto&& self, net::NodeId v) -> std::size_t {
    const auto kids = children(v);
    if (kids.empty()) return 1;
    std::size_t best_child = n_;
    std::size_t all_sum = 0;
    for (net::NodeId c : kids) {
      const std::size_t s = self(self, c);
      best_child = std::min(best_child, s);
      all_sum += s;
    }
    return std::min(1 + best_child, all_sum);
  };
  return min_size(min_size, 0);
}

// ---------------------------------------------------------------------------
// GridQuorum

GridQuorum::GridQuorum(std::size_t n, std::size_t cols) : QuorumSystem(n) {
  MARP_REQUIRE(n >= 1);
  if (cols == 0) {
    cols = 1;
    while (cols * cols < n) ++cols;  // near-square: ⌈√n⌉
  }
  cols_ = std::min(cols, n);
  rows_ = (n + cols_ - 1) / cols_;
}

NodeSet GridQuorum::column(std::size_t j) const {
  NodeSet out;
  for (std::size_t v = j; v < n_; v += cols_) {
    out.push_back(static_cast<net::NodeId>(v));
  }
  return out;
}

bool GridQuorum::read_covered(const NodeSet& nodes) const {
  // One held node per column.
  std::vector<bool> hit(cols_, false);
  for (net::NodeId v : nodes) {
    if (is_valid(v, n_)) hit[column_of(v)] = true;
  }
  return std::all_of(hit.begin(), hit.end(), [](bool b) { return b; });
}

bool GridQuorum::write_covered(const NodeSet& nodes) const {
  if (!read_covered(nodes)) return false;
  // ... plus one column held in full.
  for (std::size_t j = 0; j < cols_; ++j) {
    const NodeSet col = column(j);
    if (std::includes(nodes.begin(), nodes.end(), col.begin(), col.end())) {
      return true;
    }
  }
  return false;
}

std::optional<NodeSet> GridQuorum::pick_write_quorum(
    const NodeSet& excluded, net::NodeId prefer) const {
  const std::size_t prefer_col =
      is_valid(prefer, n_) ? column_of(prefer) : cols_;
  // Full column: smallest fully-available one (prefer's column wins ties so
  // the origin ends up in the quorum via either route).
  std::size_t full = cols_;
  std::size_t full_size = n_ + 1;
  for (std::size_t j = 0; j < cols_; ++j) {
    const NodeSet col = column(j);
    const bool available = std::none_of(
        col.begin(), col.end(),
        [&](net::NodeId v) { return contains(excluded, v); });
    if (!available) continue;
    const bool better =
        col.size() < full_size || (col.size() == full_size && j == prefer_col);
    if (full == cols_ || better) {
      full = j;
      full_size = col.size();
    }
  }
  if (full == cols_) return std::nullopt;
  NodeSet picked = column(full);
  for (std::size_t j = 0; j < cols_; ++j) {
    if (j == full) continue;
    net::NodeId rep = net::kInvalidNode;
    if (j == prefer_col && !contains(excluded, prefer)) {
      rep = prefer;
    } else {
      for (net::NodeId v : column(j)) {
        if (!contains(excluded, v)) {
          rep = v;
          break;
        }
      }
    }
    if (rep == net::kInvalidNode) return std::nullopt;
    picked.push_back(rep);
  }
  return make_node_set(std::move(picked));
}

std::optional<NodeSet> GridQuorum::pick_read_quorum(
    const NodeSet& excluded, net::NodeId prefer) const {
  const std::size_t prefer_col =
      is_valid(prefer, n_) ? column_of(prefer) : cols_;
  NodeSet picked;
  for (std::size_t j = 0; j < cols_; ++j) {
    net::NodeId rep = net::kInvalidNode;
    if (j == prefer_col && !contains(excluded, prefer)) {
      rep = prefer;
    } else {
      for (net::NodeId v : column(j)) {
        if (!contains(excluded, v)) {
          rep = v;
          break;
        }
      }
    }
    if (rep == net::kInvalidNode) return std::nullopt;
    picked.push_back(rep);
  }
  return make_node_set(std::move(picked));
}

std::vector<NodeSet> GridQuorum::read_quorums() const {
  MARP_REQUIRE(n_ <= kMaxEnumerableServers);
  std::vector<NodeSet> partial{NodeSet{}};
  for (std::size_t j = 0; j < cols_; ++j) {
    std::vector<NodeSet> next;
    for (const NodeSet& base : partial) {
      for (net::NodeId v : column(j)) {
        NodeSet merged = base;
        merged.push_back(v);
        next.push_back(make_node_set(std::move(merged)));
      }
    }
    partial = std::move(next);
  }
  std::set<NodeSet> out(partial.begin(), partial.end());
  return deduped(std::move(out));
}

std::vector<NodeSet> GridQuorum::write_quorums() const {
  MARP_REQUIRE(n_ <= kMaxEnumerableServers);
  std::set<NodeSet> out;
  for (std::size_t full = 0; full < cols_; ++full) {
    std::vector<NodeSet> partial{column(full)};
    for (std::size_t j = 0; j < cols_; ++j) {
      if (j == full) continue;
      std::vector<NodeSet> next;
      for (const NodeSet& base : partial) {
        for (net::NodeId v : column(j)) {
          NodeSet merged = base;
          merged.push_back(v);
          next.push_back(make_node_set(std::move(merged)));
        }
      }
      partial = std::move(next);
    }
    for (NodeSet& q : partial) out.insert(std::move(q));
  }
  return deduped(std::move(out));
}

std::size_t GridQuorum::min_write_size() const {
  std::size_t shortest = n_;
  for (std::size_t j = 0; j < cols_; ++j) {
    shortest = std::min(shortest, column(j).size());
  }
  return shortest + cols_ - 1;
}

// ---------------------------------------------------------------------------
// ReadLeaseQuorum

ReadLeaseQuorum::ReadLeaseQuorum(std::unique_ptr<QuorumSystem> inner)
    : QuorumSystem(inner->size()), inner_(std::move(inner)) {
  // The lease-holder set is pinned to the inner geometry's canonical read
  // quorum; every node knows it without coordination, which is what lets a
  // read stop after one visit.
  auto leases = inner_->pick_read_quorum();
  MARP_REQUIRE(leases.has_value());
  leases_ = std::move(*leases);
}

bool ReadLeaseQuorum::read_covered(const NodeSet& nodes) const {
  return std::any_of(leases_.begin(), leases_.end(),
                     [&](net::NodeId l) { return contains(nodes, l); });
}

bool ReadLeaseQuorum::write_covered(const NodeSet& nodes) const {
  // A write revokes every lease, so write–read intersection holds even
  // though a read is a single node.
  return inner_->write_covered(nodes) &&
         std::includes(nodes.begin(), nodes.end(), leases_.begin(),
                       leases_.end());
}

std::optional<NodeSet> ReadLeaseQuorum::pick_write_quorum(
    const NodeSet& excluded, net::NodeId prefer) const {
  for (net::NodeId l : leases_) {
    if (contains(excluded, l)) return std::nullopt;
  }
  auto base = inner_->pick_write_quorum(excluded, prefer);
  if (!base) return std::nullopt;
  NodeSet merged = std::move(*base);
  merged.insert(merged.end(), leases_.begin(), leases_.end());
  return make_node_set(std::move(merged));
}

std::optional<NodeSet> ReadLeaseQuorum::pick_read_quorum(
    const NodeSet& excluded, net::NodeId prefer) const {
  if (contains(leases_, prefer) && !contains(excluded, prefer)) {
    return NodeSet{prefer};
  }
  for (net::NodeId l : leases_) {
    if (!contains(excluded, l)) return NodeSet{l};
  }
  return std::nullopt;
}

std::vector<NodeSet> ReadLeaseQuorum::read_quorums() const {
  std::vector<NodeSet> out;
  for (net::NodeId l : leases_) out.push_back(NodeSet{l});
  return out;
}

std::vector<NodeSet> ReadLeaseQuorum::write_quorums() const {
  std::set<NodeSet> out;
  for (const NodeSet& q : inner_->write_quorums()) {
    NodeSet merged = q;
    merged.insert(merged.end(), leases_.begin(), leases_.end());
    out.insert(make_node_set(std::move(merged)));
  }
  return deduped(std::move(out));
}

std::size_t ReadLeaseQuorum::min_write_size() const {
  if (n_ <= kMaxEnumerableServers) {
    std::size_t best = n_;
    for (const NodeSet& q : write_quorums()) best = std::min(best, q.size());
    return best;
  }
  // Too large to enumerate exactly: the canonical pick is an upper bound.
  auto q = pick_write_quorum({}, net::kInvalidNode);
  return q ? q->size() : n_;
}

// ---------------------------------------------------------------------------

std::unique_ptr<QuorumSystem> make_quorum_system(
    const QuorumSpec& spec, std::size_t n_servers,
    const std::vector<std::uint32_t>& votes, std::uint32_t read_quorum_votes) {
  switch (spec.geometry) {
    case Geometry::Majority:
      return std::make_unique<MajorityQuorum>(n_servers, votes,
                                              read_quorum_votes);
    case Geometry::Tree:
      MARP_REQUIRE_MSG(votes.empty(),
                       "weighted voting applies to the majority geometry only");
      return std::make_unique<TreeQuorum>(n_servers, spec.tree_degree);
    case Geometry::Grid:
      MARP_REQUIRE_MSG(votes.empty(),
                       "weighted voting applies to the majority geometry only");
      return std::make_unique<GridQuorum>(n_servers, spec.grid_cols);
    case Geometry::ReadLease: {
      MARP_REQUIRE_MSG(votes.empty(),
                       "weighted voting applies to the majority geometry only");
      MARP_REQUIRE_MSG(spec.lease_inner != Geometry::ReadLease,
                       "read-lease wrapper cannot nest itself");
      QuorumSpec inner = spec;
      inner.geometry = spec.lease_inner;
      return std::make_unique<ReadLeaseQuorum>(
          make_quorum_system(inner, n_servers));
    }
  }
  MARP_REQUIRE_MSG(false, "unknown quorum geometry");
  return nullptr;
}

}  // namespace marp::quorum

// Quorum-geometry selection, kept dependency-free so MarpConfig can embed
// it without pulling the quorum machinery into every config include.
#pragma once

#include <cstddef>
#include <cstdint>

namespace marp::quorum {

/// Which quorum construction the protocol uses for write (and read) quorums.
///
/// The paper's MARP uses plain majorities ("a quorum ... is simply any
/// majority of its copies", §3.1). The alternatives shrink quorums —
/// O(log N) for tree paths, O(√N) for grid column covers — at the price of
/// less symmetric fault tolerance; correctness for every geometry reduces to
/// the same property: each write quorum intersects every write and read
/// quorum (see src/quorum/quorum.hpp and tests/test_quorum.cpp).
enum class Geometry : std::uint8_t {
  Majority,  ///< > half the votes (supports weighted voting) — the seed path
  Tree,      ///< recursive tree quorums over a heap-shaped d-ary tree
  Grid,      ///< one full column plus a node from every other column
  ReadLease  ///< read-dominant wrapper: single-node reads, widened writes
};

struct QuorumSpec {
  Geometry geometry = Geometry::Majority;

  /// Tree geometry: children per node (heap layout — children of i are
  /// d*i+1 .. d*i+d). Degree 2 is the classic binary tree protocol.
  std::uint32_t tree_degree = 2;

  /// Grid geometry: column count; 0 derives a near-square ⌈√N⌉ layout.
  /// Rows follow as ⌈N/cols⌉ (row-major, last row possibly partial).
  std::size_t grid_cols = 0;

  /// ReadLease wrapper: the geometry supplying the inner write quorums and
  /// the lease-holder set (must not itself be ReadLease).
  Geometry lease_inner = Geometry::Grid;
};

inline const char* geometry_name(Geometry g) {
  switch (g) {
    case Geometry::Majority: return "majority";
    case Geometry::Tree: return "tree";
    case Geometry::Grid: return "grid";
    case Geometry::ReadLease: return "read-lease";
  }
  return "?";
}

}  // namespace marp::quorum

// Pluggable quorum geometries for MARP's write and read quorums.
//
// The paper instantiates "a quorum" as any majority of the copies (§3.1);
// everything the protocol needs from that choice is one property — every
// write quorum intersects every write quorum and every read quorum — plus a
// way to *pick* a concrete quorum to tour. This interface captures exactly
// that, so the agent/priority/monitor layers can run unchanged over:
//
// * MajorityQuorum — the seed behaviour, including the weighted-voting
//   generalization (Gifford '79): covered when the votes held exceed half.
// * TreeQuorum — recursive quorums over a heap-shaped d-ary tree
//   (Agrawal & El Abbadi '90 for d = 2): a quorum of a subtree is either
//   the root plus a quorum of ONE child subtree, or quorums of ALL child
//   subtrees. Best-case size O(log N). (For d > 2, substituting "a majority
//   of children" for "all children" breaks intersection — two quorums can
//   recurse into disjoint child sets — so the all-children rule is used at
//   every degree; it coincides with the classic protocol at d = 2.)
// * GridQuorum — rows x cols layout: a write quorum is one full column
//   plus one node from every other column (size rows + cols − 1, O(√N));
//   a read quorum is one node from every column. Any two write quorums
//   intersect inside the full column one of them holds, and every read
//   quorum hits every full column.
// * ReadLeaseQuorum — read-dominant wrapper (Kumar & Agarwal style): a
//   fixed lease-holder set L (the inner geometry's first read quorum)
//   serves reads from any SINGLE member; writes must cover an inner write
//   quorum AND all of L (revoking every lease), so write–read intersection
//   is by construction.
//
// Correctness is not taken on faith: tests/test_quorum.cpp enumerates every
// quorum of every geometry at N ≤ 16 and checks the intersection property
// pairwise, and cross-validates covered() against the enumeration.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "net/message.hpp"
#include "quorum/spec.hpp"

namespace marp::quorum {

/// A set of server ids, sorted ascending and duplicate-free.
using NodeSet = std::vector<net::NodeId>;

/// Sorted-set membership test.
bool contains(const NodeSet& sorted, net::NodeId node);

/// Normalize an arbitrary id list into a NodeSet.
NodeSet make_node_set(std::vector<net::NodeId> nodes);

class QuorumSystem {
 public:
  virtual ~QuorumSystem() = default;

  virtual Geometry geometry() const noexcept = 0;
  std::size_t size() const noexcept { return n_; }

  /// True when `nodes` contains (a superset of) some write quorum.
  virtual bool write_covered(const NodeSet& nodes) const = 0;
  /// True when `nodes` contains some read quorum.
  virtual bool read_covered(const NodeSet& nodes) const = 0;

  /// A concrete write quorum avoiding every node in `excluded`, or nullopt
  /// when none survives the exclusions. Deterministic in its inputs (agents
  /// recompute their candidate quorum instead of serializing it). When a
  /// quorum containing `prefer` exists under the exclusions, the result
  /// contains `prefer`.
  virtual std::optional<NodeSet> pick_write_quorum(
      const NodeSet& excluded = {},
      net::NodeId prefer = net::kInvalidNode) const = 0;
  virtual std::optional<NodeSet> pick_read_quorum(
      const NodeSet& excluded = {},
      net::NodeId prefer = net::kInvalidNode) const = 0;

  /// Exhaustive quorum enumeration — the test harness's ground truth for
  /// the intersection property. Exponential for Majority; intended for
  /// N ≤ 16 (guarded), never called on the protocol path.
  virtual std::vector<NodeSet> write_quorums() const = 0;
  virtual std::vector<NodeSet> read_quorums() const = 0;

  /// Cardinality of the smallest write quorum (the bench's tour-size bound).
  virtual std::size_t min_write_size() const = 0;

 protected:
  explicit QuorumSystem(std::size_t n) : n_(n) {}
  std::size_t n_;
};

/// The seed rule: covered when the held votes exceed half the total. Empty
/// `votes` means one vote per server. `read_quorum_votes` = 0 derives the
/// minimal read threshold r = V − ⌊V/2⌋ (so r + w > V).
class MajorityQuorum final : public QuorumSystem {
 public:
  MajorityQuorum(std::size_t n, std::vector<std::uint32_t> votes = {},
                 std::uint32_t read_quorum_votes = 0);

  Geometry geometry() const noexcept override { return Geometry::Majority; }
  bool write_covered(const NodeSet& nodes) const override;
  bool read_covered(const NodeSet& nodes) const override;
  std::optional<NodeSet> pick_write_quorum(const NodeSet& excluded,
                                           net::NodeId prefer) const override;
  std::optional<NodeSet> pick_read_quorum(const NodeSet& excluded,
                                          net::NodeId prefer) const override;
  std::vector<NodeSet> write_quorums() const override;
  std::vector<NodeSet> read_quorums() const override;
  std::size_t min_write_size() const override;

 private:
  std::uint32_t votes_of(const NodeSet& nodes) const;
  std::optional<NodeSet> pick_threshold(const NodeSet& excluded,
                                        net::NodeId prefer,
                                        std::uint32_t threshold) const;
  std::vector<NodeSet> enumerate_minimal(bool read) const;

  std::vector<std::uint32_t> votes_;
  std::uint32_t total_ = 0;
  std::uint32_t read_threshold_ = 0;
};

/// Heap-shaped d-ary tree over ids 0..n−1 (children of i: d·i+1 .. d·i+d).
/// Read quorums equal write quorums (they self-intersect).
class TreeQuorum final : public QuorumSystem {
 public:
  TreeQuorum(std::size_t n, std::uint32_t degree = 2);

  Geometry geometry() const noexcept override { return Geometry::Tree; }
  bool write_covered(const NodeSet& nodes) const override;
  bool read_covered(const NodeSet& nodes) const override { return write_covered(nodes); }
  std::optional<NodeSet> pick_write_quorum(const NodeSet& excluded,
                                           net::NodeId prefer) const override;
  std::optional<NodeSet> pick_read_quorum(const NodeSet& excluded,
                                          net::NodeId prefer) const override {
    return pick_write_quorum(excluded, prefer);
  }
  std::vector<NodeSet> write_quorums() const override;
  std::vector<NodeSet> read_quorums() const override { return write_quorums(); }
  std::size_t min_write_size() const override;

  std::uint32_t degree() const noexcept { return degree_; }

 private:
  std::vector<net::NodeId> children(net::NodeId v) const;

  std::uint32_t degree_;
};

/// Row-major rows x cols layout (last row possibly partial; every column is
/// non-empty because cols ≤ n).
class GridQuorum final : public QuorumSystem {
 public:
  GridQuorum(std::size_t n, std::size_t cols = 0);  ///< 0 = near-square ⌈√n⌉

  Geometry geometry() const noexcept override { return Geometry::Grid; }
  bool write_covered(const NodeSet& nodes) const override;
  bool read_covered(const NodeSet& nodes) const override;
  std::optional<NodeSet> pick_write_quorum(const NodeSet& excluded,
                                           net::NodeId prefer) const override;
  std::optional<NodeSet> pick_read_quorum(const NodeSet& excluded,
                                          net::NodeId prefer) const override;
  std::vector<NodeSet> write_quorums() const override;
  std::vector<NodeSet> read_quorums() const override;
  std::size_t min_write_size() const override;

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

 private:
  std::size_t column_of(net::NodeId v) const { return v % cols_; }
  NodeSet column(std::size_t j) const;

  std::size_t rows_ = 1;
  std::size_t cols_ = 1;
};

/// Read-dominant wrapper: lease holders L = the inner geometry's first read
/// quorum. Reads touch any single member of L; writes cover an inner write
/// quorum plus all of L. Trades write availability (all lease holders must
/// be up) for one-node reads.
class ReadLeaseQuorum final : public QuorumSystem {
 public:
  explicit ReadLeaseQuorum(std::unique_ptr<QuorumSystem> inner);

  Geometry geometry() const noexcept override { return Geometry::ReadLease; }
  bool write_covered(const NodeSet& nodes) const override;
  bool read_covered(const NodeSet& nodes) const override;
  std::optional<NodeSet> pick_write_quorum(const NodeSet& excluded,
                                           net::NodeId prefer) const override;
  std::optional<NodeSet> pick_read_quorum(const NodeSet& excluded,
                                          net::NodeId prefer) const override;
  std::vector<NodeSet> write_quorums() const override;
  std::vector<NodeSet> read_quorums() const override;
  std::size_t min_write_size() const override;

  const NodeSet& lease_holders() const noexcept { return leases_; }
  const QuorumSystem& inner() const noexcept { return *inner_; }

 private:
  std::unique_ptr<QuorumSystem> inner_;
  NodeSet leases_;
};

/// Build the geometry `spec` names for an `n_servers` cluster. `votes` and
/// `read_quorum_votes` apply to the Majority geometry only (weighted voting
/// has no analogue in the structural geometries; non-empty votes with a
/// non-majority geometry is a configuration error).
std::unique_ptr<QuorumSystem> make_quorum_system(
    const QuorumSpec& spec, std::size_t n_servers,
    const std::vector<std::uint32_t>& votes = {},
    std::uint32_t read_quorum_votes = 0);

}  // namespace marp::quorum

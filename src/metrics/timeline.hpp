// Timeline — records agent lifecycle events into a structured log and
// renders them as text (the library counterpart of the paper's §4
// "interface … to visualize the execution").
//
//   metrics::Timeline timeline(simulator);
//   platform.set_observer(&timeline);
//   ... run ...
//   timeline.print(std::cout);          // chronological event log
//   timeline.print_itineraries(std::cout);  // per-agent hop chains
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "agent/platform.hpp"
#include "sim/simulator.hpp"

namespace marp::metrics {

class Timeline final : public agent::PlatformObserver {
 public:
  enum class EventKind : std::uint8_t {
    Created,
    Disposed,
    MigrationStarted,
    MigrationCompleted,
    MigrationFailed
  };

  struct Event {
    sim::SimTime at;
    EventKind kind;
    agent::AgentId agent;
    std::string type;        ///< Created only
    net::NodeId node = 0;    ///< where it happened (destination for hops)
    net::NodeId from = net::kInvalidNode;  ///< migrations only
    std::size_t bytes = 0;   ///< MigrationStarted only
  };

  explicit Timeline(sim::Simulator& simulator) : sim_(simulator) {}

  /// Cap on retained events; at capacity the oldest entry is overwritten in
  /// place (O(1) per event — the log never shifts). 0 = unlimited. Shrinking
  /// below the current size evicts the oldest entries immediately.
  void set_capacity(std::size_t capacity);

  /// Retained events, oldest first (materialized from the ring).
  std::vector<Event> events() const;
  std::size_t size() const noexcept { return ring_.size(); }
  std::uint64_t dropped() const noexcept { return dropped_; }
  /// Agents with at least one evicted event: their itineraries are partial,
  /// so lifetimes/hop chains must not be reconstructed from what remains.
  const std::set<agent::AgentId>& truncated_agents() const noexcept {
    return truncated_;
  }
  void clear();

  /// Chronological one-line-per-event log.
  void print(std::ostream& os) const;

  /// Per-agent summaries: type, lifetime, and the chain of hops, e.g.
  ///   marp.update agent(0@1200#0): 0 → 2 → 1 ✕4 → 3 (committed home)
  void print_itineraries(std::ostream& os) const;

  // PlatformObserver:
  void on_agent_created(const agent::AgentId& id, const std::string& type,
                        net::NodeId at) override;
  void on_agent_disposed(const agent::AgentId& id, net::NodeId at) override;
  void on_migration_started(const agent::AgentId& id, net::NodeId from,
                            net::NodeId to, std::size_t bytes) override;
  void on_migration_completed(const agent::AgentId& id, net::NodeId at) override;
  void on_migration_failed(const agent::AgentId& id, net::NodeId from,
                           net::NodeId to) override;

 private:
  void record(Event event);

  sim::Simulator& sim_;
  /// Ring storage: chronological until the first wrap, then `head_` marks
  /// the oldest slot and the order is ring_[head_], ring_[head_+1], ...
  std::vector<Event> ring_;
  std::size_t head_ = 0;
  std::size_t capacity_ = 0;
  std::uint64_t dropped_ = 0;
  std::set<agent::AgentId> truncated_;
};

}  // namespace marp::metrics

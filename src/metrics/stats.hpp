// Statistics primitives for the benchmark harness: Welford online moments,
// sample summaries with confidence intervals, and fixed-bin histograms.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace marp::metrics {

/// Online mean/variance (Welford). Numerically stable, O(1) memory.
class Running {
 public:
  void add(double x) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double mean() const noexcept { return count_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 with fewer than 2 samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return count_ == 0 ? 0.0 : max_; }
  /// Standard error of the mean.
  double sem() const noexcept;
  /// Half-width of the ~95% normal-approximation confidence interval.
  double ci95_half_width() const noexcept { return 1.96 * sem(); }

  void merge(const Running& other) noexcept;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Retains samples; exact percentiles for modest sample counts.
class Samples {
 public:
  void add(double x) { values_.push_back(x); }
  std::size_t count() const noexcept { return values_.size(); }
  double mean() const;
  double percentile(double p) const;  ///< p in [0, 100], linear interpolation
  double min() const;
  double max() const;
  const std::vector<double>& values() const noexcept { return values_; }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Fixed-width-bin histogram over [lo, hi); out-of-range goes to under/over.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x) noexcept;
  std::uint64_t total() const noexcept { return total_; }
  std::size_t bins() const noexcept { return counts_.size(); }
  std::uint64_t bin_count(std::size_t i) const { return counts_.at(i); }
  double bin_lo(std::size_t i) const noexcept;
  double bin_hi(std::size_t i) const noexcept;
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

}  // namespace marp::metrics

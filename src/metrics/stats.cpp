#include "metrics/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace marp::metrics {

void Running::add(double x) noexcept {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Running::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double Running::stddev() const noexcept { return std::sqrt(variance()); }

double Running::sem() const noexcept {
  return count_ < 2 ? 0.0 : stddev() / std::sqrt(static_cast<double>(count_));
}

void Running::merge(const Running& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  // Chan et al. parallel-merge formula.
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Samples::mean() const {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

void Samples::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Samples::percentile(double p) const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  const double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

double Samples::min() const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  return values_.front();
}

double Samples::max() const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  return values_.back();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  MARP_REQUIRE(hi > lo);
  MARP_REQUIRE(bins >= 1);
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto bin = static_cast<std::size_t>((x - lo_) / width_);
    if (bin >= counts_.size()) bin = counts_.size() - 1;  // fp edge
    ++counts_[bin];
  }
}

double Histogram::bin_lo(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const noexcept {
  return lo_ + width_ * static_cast<double>(i + 1);
}

}  // namespace marp::metrics

#include "metrics/report.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace marp::metrics {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  MARP_REQUIRE(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  MARP_REQUIRE_MSG(cells.size() == headers_.size(), "row arity mismatch");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto rule = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c])) << cells[c]
         << " |";
    }
    os << '\n';
  };
  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

void Table::print_json(std::ostream& os) const {
  const auto escaped = [](const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  };
  os << "[\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << "  {";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c) os << ", ";
      os << '"' << escaped(headers_[c]) << "\": \"" << escaped(rows_[r][c])
         << '"';
    }
    os << (r + 1 < rows_.size() ? "},\n" : "}\n");
  }
  os << "]\n";
}

std::string with_ci(double mean, double ci_half, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << mean << " ± " << ci_half;
  return os.str();
}

}  // namespace marp::metrics

#include "metrics/timeline.hpp"

#include <iomanip>
#include <ostream>

namespace marp::metrics {

void Timeline::clear() {
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
  truncated_.clear();
}

void Timeline::set_capacity(std::size_t capacity) {
  capacity_ = capacity;
  if (capacity_ == 0 || ring_.size() <= capacity_) return;
  // Shrink: evict the oldest entries, remembering whose trace got cut.
  std::vector<Event> kept = events();
  const std::size_t excess = kept.size() - capacity_;
  for (std::size_t i = 0; i < excess; ++i) truncated_.insert(kept[i].agent);
  dropped_ += excess;
  kept.erase(kept.begin(), kept.begin() + static_cast<std::ptrdiff_t>(excess));
  ring_ = std::move(kept);
  head_ = 0;
}

void Timeline::record(Event event) {
  if (capacity_ == 0 || ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
    return;
  }
  // At capacity: overwrite the oldest slot in place — O(1) per event, where
  // the old erase(begin()) shifted the whole log every time.
  Event& oldest = ring_[head_];
  truncated_.insert(oldest.agent);
  ++dropped_;
  oldest = std::move(event);
  head_ = (head_ + 1) % ring_.size();
}

std::vector<Timeline::Event> Timeline::events() const {
  std::vector<Event> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

void Timeline::on_agent_created(const agent::AgentId& id, const std::string& type,
                                net::NodeId at) {
  record({sim_.now(), EventKind::Created, id, type, at, net::kInvalidNode, 0});
}

void Timeline::on_agent_disposed(const agent::AgentId& id, net::NodeId at) {
  record({sim_.now(), EventKind::Disposed, id, {}, at, net::kInvalidNode, 0});
}

void Timeline::on_migration_started(const agent::AgentId& id, net::NodeId from,
                                    net::NodeId to, std::size_t bytes) {
  record({sim_.now(), EventKind::MigrationStarted, id, {}, to, from, bytes});
}

void Timeline::on_migration_completed(const agent::AgentId& id, net::NodeId at) {
  record({sim_.now(), EventKind::MigrationCompleted, id, {}, at, net::kInvalidNode, 0});
}

void Timeline::on_migration_failed(const agent::AgentId& id, net::NodeId from,
                                   net::NodeId to) {
  record({sim_.now(), EventKind::MigrationFailed, id, {}, to, from, 0});
}

void Timeline::print(std::ostream& os) const {
  os << std::fixed << std::setprecision(3);
  for (const Event& event : events()) {
    os << std::setw(10) << event.at.as_millis() << "ms  ";
    switch (event.kind) {
      case EventKind::Created:
        os << "created   " << event.agent.to_string() << " [" << event.type
           << "] at node " << event.node;
        break;
      case EventKind::Disposed:
        os << "disposed  " << event.agent.to_string() << " at node " << event.node;
        break;
      case EventKind::MigrationStarted:
        os << "migrate   " << event.agent.to_string() << "  " << event.from
           << " -> " << event.node << " (" << event.bytes << " B)";
        break;
      case EventKind::MigrationCompleted:
        os << "arrived   " << event.agent.to_string() << " at node " << event.node;
        break;
      case EventKind::MigrationFailed:
        os << "mig-FAIL  " << event.agent.to_string() << "  " << event.from
           << " -> " << event.node;
        break;
    }
    os << '\n';
  }
  if (dropped_ != 0) os << "(" << dropped_ << " earlier events dropped)\n";
}

void Timeline::print_itineraries(std::ostream& os) const {
  struct Life {
    std::string type;
    sim::SimTime created;
    sim::SimTime ended;
    bool has_created = false;
    bool done = false;
    std::string hops;
    std::uint32_t failures = 0;
  };
  std::map<agent::AgentId, Life> lives;
  for (const Event& event : events()) {
    Life& life = lives[event.agent];
    switch (event.kind) {
      case EventKind::Created:
        life.type = event.type;
        life.created = event.at;
        life.has_created = true;
        life.hops = std::to_string(event.node);
        break;
      case EventKind::MigrationCompleted:
        if (life.hops.empty()) life.hops = "…";  // route head evicted
        life.hops += " -> " + std::to_string(event.node);
        break;
      case EventKind::MigrationFailed:
        ++life.failures;
        break;
      case EventKind::Disposed:
        life.ended = event.at;
        life.done = true;
        break;
      case EventKind::MigrationStarted:
        break;
    }
  }
  os << std::fixed << std::setprecision(3);
  for (const auto& [id, life] : lives) {
    os << (life.type.empty() ? "?" : life.type) << ' ' << id.to_string() << ": "
       << life.hops;
    if (life.failures != 0) os << "  (+" << life.failures << " failed hops)";
    // A lifetime is only honest when both endpoints were retained: with the
    // Created event evicted, `created` would read as t=0 and inflate the
    // duration (and the hop chain starts mid-route).
    if (truncated_.contains(id) || !life.has_created) {
      os << "  [trace truncated]";
    } else if (life.done) {
      os << "  [" << (life.ended - life.created).as_millis() << " ms]";
    } else {
      os << "  [still live]";
    }
    os << '\n';
  }
}

}  // namespace marp::metrics

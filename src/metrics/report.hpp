// Table / CSV rendering for the benchmark harnesses. Every figure bench
// prints an aligned human-readable table of the paper's series plus an
// optional CSV block for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace marp::metrics {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Add one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with `precision` decimals.
  static std::string num(double value, int precision = 2);

  /// Aligned, boxed plain-text rendering.
  void print(std::ostream& os) const;

  /// RFC-4180-ish CSV (no quoting needed for our numeric content).
  void print_csv(std::ostream& os) const;

  /// Machine-readable rendering: a JSON array of row objects keyed by the
  /// header names (cells stay formatted strings — "12.3 ± 0.4" is data).
  void print_json(std::ostream& os) const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "12.3 ± 0.4" helper for mean/CI cells.
std::string with_ci(double mean, double ci_half, int precision = 2);

}  // namespace marp::metrics

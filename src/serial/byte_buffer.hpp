// Byte-level serialization for agent state and message payloads.
//
// Agents migrate by round-tripping their state through these buffers, the
// same way a Java agent platform serializes an object graph — so migration
// cost can be charged per byte and state that fails to round-trip is caught
// immediately. Encoding: little-endian fixed width for floats, LEB128
// varints for integers, length-prefixed containers.
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "util/assert.hpp"

namespace marp::serial {

using Bytes = std::vector<std::uint8_t>;

/// Thrown when a reader runs past the end of its buffer or sees malformed
/// data. Inside the simulator this indicates a serialize/deserialize
/// mismatch (a real bug); on the socket substrate it is the normal rejection
/// path for truncated or corrupted frames, so callers at the wire boundary
/// catch it and drop the frame instead of corrupting agent rehydration.
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// The buffer ended before the announced data did (short read / truncated
/// frame). Every Reader accessor is bounds-checked; none silently zero-fill.
class TruncatedError : public DecodeError {
 public:
  explicit TruncatedError(const std::string& what) : DecodeError(what) {}
};

/// The bytes are structurally impossible (overlong varint, a length prefix
/// announcing more elements than the buffer could possibly hold).
class MalformedError : public DecodeError {
 public:
  explicit MalformedError(const std::string& what) : DecodeError(what) {}
};

/// Zig-zag maps signed to unsigned so small negatives stay small varints.
constexpr std::uint64_t zigzag_encode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}
constexpr std::int64_t zigzag_decode(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

class Writer {
 public:
  Writer() = default;

  const Bytes& bytes() const noexcept { return buffer_; }
  Bytes take() noexcept { return std::move(buffer_); }
  std::size_t size() const noexcept { return buffer_.size(); }

  void u8(std::uint8_t v) { buffer_.push_back(v); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  // Fixed-width little-endian writes (wire frame headers want fixed offsets,
  // not varints, so a peer can parse the header before trusting the body).
  void u16le(std::uint16_t v) {
    for (int i = 0; i < 2; ++i) buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u32le(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64le(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  /// Unsigned LEB128.
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      buffer_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buffer_.push_back(static_cast<std::uint8_t>(v));
  }

  void svarint(std::int64_t v) { varint(zigzag_encode(v)); }

  void f64(double v) {
    static_assert(sizeof(double) == 8);
    std::uint64_t bits;
    std::memcpy(&bits, &v, 8);
    for (int i = 0; i < 8; ++i) buffer_.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
  }

  void str(std::string_view s) {
    varint(s.size());
    buffer_.insert(buffer_.end(), s.begin(), s.end());
  }

  void raw(const Bytes& b) {
    varint(b.size());
    buffer_.insert(buffer_.end(), b.begin(), b.end());
  }

  template <typename T, typename Fn>
  void seq(const std::vector<T>& v, Fn&& write_elem) {
    varint(v.size());
    for (const auto& e : v) write_elem(*this, e);
  }

  template <typename K, typename V, typename FnK, typename FnV>
  void map(const std::map<K, V>& m, FnK&& write_key, FnV&& write_value) {
    varint(m.size());
    for (const auto& [k, v] : m) {
      write_key(*this, k);
      write_value(*this, v);
    }
  }

  template <typename T, typename Fn>
  void optional(const std::optional<T>& o, Fn&& write_elem) {
    boolean(o.has_value());
    if (o) write_elem(*this, *o);
  }

 private:
  Bytes buffer_;
};

class Reader {
 public:
  explicit Reader(const Bytes& buffer) noexcept : data_(buffer.data()), size_(buffer.size()) {}
  Reader(const std::uint8_t* data, std::size_t size) noexcept : data_(data), size_(size) {}

  std::size_t remaining() const noexcept { return size_ - pos_; }
  std::size_t position() const noexcept { return pos_; }
  bool at_end() const noexcept { return pos_ == size_; }

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }

  bool boolean() { return u8() != 0; }

  std::uint16_t u16le() { return static_cast<std::uint16_t>(fixed_le(2)); }
  std::uint32_t u32le() { return static_cast<std::uint32_t>(fixed_le(4)); }
  std::uint64_t u64le() { return fixed_le(8); }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (shift >= 64) throw MalformedError("varint too long");
      const std::uint8_t byte = u8();
      v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
    }
    return v;
  }

  /// Length prefix for a container whose elements occupy at least
  /// `min_elem_bytes` each on the wire. Rejects prefixes that announce more
  /// data than the buffer holds *before* any allocation happens, so a
  /// malicious 2^60-element header cannot drive a giant reserve().
  std::uint64_t length_prefix(std::size_t min_elem_bytes = 1) {
    const std::uint64_t n = varint();
    if (min_elem_bytes != 0 && n > remaining() / min_elem_bytes) {
      throw MalformedError("length prefix exceeds buffer");
    }
    return n;
  }

  std::int64_t svarint() { return zigzag_decode(varint()); }

  double f64() {
    need(8);
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) bits |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }

  std::string str() {
    const std::uint64_t n = varint();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  Bytes raw() {
    const std::uint64_t n = varint();
    need(n);
    Bytes b(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return b;
  }

  template <typename T, typename Fn>
  std::vector<T> seq(Fn&& read_elem) {
    const std::uint64_t n = length_prefix();
    std::vector<T> v;
    v.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) v.push_back(read_elem(*this));
    return v;
  }

  template <typename K, typename V, typename FnK, typename FnV>
  std::map<K, V> map(FnK&& read_key, FnV&& read_value) {
    const std::uint64_t n = length_prefix(2);  // a key and a value ≥ 1 byte each
    std::map<K, V> m;
    for (std::uint64_t i = 0; i < n; ++i) {
      K k = read_key(*this);
      V v = read_value(*this);
      m.emplace(std::move(k), std::move(v));
    }
    return m;
  }

  template <typename T, typename Fn>
  std::optional<T> optional(Fn&& read_elem) {
    if (!boolean()) return std::nullopt;
    return read_elem(*this);
  }

 private:
  void need(std::uint64_t n) const {
    if (n > remaining()) throw TruncatedError("read past end of buffer");
  }

  std::uint64_t fixed_le(int bytes) {
    need(static_cast<std::uint64_t>(bytes));
    std::uint64_t v = 0;
    for (int i = 0; i < bytes; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)]) << (8 * i);
    }
    pos_ += static_cast<std::size_t>(bytes);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace marp::serial

// Header-only implementation; this TU anchors the library target and keeps a
// non-inline definition of the exception vtable.
#include "serial/byte_buffer.hpp"

namespace marp::serial {

// Intentionally empty — see file comment.

}  // namespace marp::serial

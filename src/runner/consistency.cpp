#include "runner/consistency.hpp"

#include <map>
#include <sstream>

#include "util/assert.hpp"

namespace marp::runner {

ConsistencyReport check_convergence(
    const std::vector<const replica::VersionedStore*>& stores,
    const std::vector<bool>& eligible) {
  MARP_REQUIRE(stores.size() == eligible.size());
  ConsistencyReport report;

  // Union of keys across eligible replicas.
  std::map<std::string, bool> keys;
  for (std::size_t i = 0; i < stores.size(); ++i) {
    if (!eligible[i]) continue;
    for (const auto& key : stores[i]->keys()) keys[key] = true;
  }

  for (const auto& [key, unused] : keys) {
    (void)unused;
    bool have_reference = false;
    replica::VersionedValue reference;
    std::size_t reference_index = 0;
    for (std::size_t i = 0; i < stores.size(); ++i) {
      if (!eligible[i]) continue;
      const auto value = stores[i]->read(key);
      if (!value) {
        std::ostringstream os;
        os << "replica " << i << " is missing key '" << key << '\'';
        report.fail(os.str());
        continue;
      }
      if (!have_reference) {
        reference = *value;
        reference_index = i;
        have_reference = true;
        continue;
      }
      if (value->version != reference.version || value->value != reference.value) {
        std::ostringstream os;
        os << "key '" << key << "' diverged: replica " << reference_index
           << " has version (" << reference.version.time_us << ','
           << reference.version.writer << ") but replica " << i
           << " has version (" << value->version.time_us << ','
           << value->version.writer << ')';
        report.fail(os.str());
      }
    }
  }
  return report;
}

ConsistencyReport check_scoped_convergence(
    const std::vector<const replica::VersionedStore*>& stores,
    const std::vector<bool>& eligible, const shard::ShardRouter& router,
    const std::function<bool(std::size_t, shard::GroupId)>& hosts) {
  MARP_REQUIRE(stores.size() == eligible.size());
  ConsistencyReport report;

  // Union of keys across every store — a key held only by the writer that
  // committed it must still reach all of its group's hosting replicas.
  std::map<std::string, bool> keys;
  for (const replica::VersionedStore* store : stores) {
    for (const auto& key : store->keys()) keys[key] = true;
  }

  for (const auto& [key, unused] : keys) {
    (void)unused;
    const shard::GroupId group = router.group_of(key);
    bool have_reference = false;
    replica::VersionedValue reference;
    std::size_t reference_index = 0;
    for (std::size_t i = 0; i < stores.size(); ++i) {
      if (!eligible[i] || !hosts(i, group)) continue;
      const auto value = stores[i]->read(key);
      if (!value) {
        std::ostringstream os;
        os << "replica " << i << " hosts group " << group
           << " but is missing its key '" << key << '\'';
        report.fail(os.str());
        continue;
      }
      if (!have_reference) {
        reference = *value;
        reference_index = i;
        have_reference = true;
        continue;
      }
      if (value->version != reference.version || value->value != reference.value) {
        std::ostringstream os;
        os << "key '" << key << "' (group " << group << ") diverged: replica "
           << reference_index << " has version (" << reference.version.time_us
           << ',' << reference.version.writer << ") but replica " << i
           << " has version (" << value->version.time_us << ','
           << value->version.writer << ')';
        report.fail(os.str());
      }
    }
  }
  return report;
}

ConsistencyReport check_commit_order(const std::vector<core::CommitRecord>& log,
                                     std::size_t num_lock_groups) {
  ConsistencyReport report;
  std::map<shard::GroupId, replica::Version> previous;
  for (std::size_t i = 0; i < log.size(); ++i) {
    for (const core::CommitEntry& entry : log[i].entries) {
      if (entry.group >= num_lock_groups) {
        std::ostringstream os;
        os << "commit log entry " << i << " routed key '" << entry.key
           << "' to group " << entry.group << " but only " << num_lock_groups
           << " lock groups exist";
        report.fail(os.str());
      }
      auto [it, inserted] =
          previous.try_emplace(entry.group, replica::Version::none());
      if (!inserted && !(entry.version > it->second)) {
        std::ostringstream os;
        os << "commit log entry " << i << " (" << log[i].agent.to_string()
           << "), group " << entry.group << ", has version ("
           << entry.version.time_us << ',' << entry.version.writer
           << ") not after the group's predecessor (" << it->second.time_us
           << ',' << it->second.writer << ')';
        report.fail(os.str());
      }
      it->second = entry.version;
    }
  }
  return report;
}

ConsistencyReport check_per_key_order(const std::vector<core::CommitRecord>& log) {
  ConsistencyReport report;
  std::map<std::string, replica::Version> previous;
  for (std::size_t i = 0; i < log.size(); ++i) {
    for (const core::CommitEntry& entry : log[i].entries) {
      auto it = previous.find(entry.key);
      if (it != previous.end() && !(entry.version > it->second)) {
        std::ostringstream os;
        os << "commit log entry " << i << " (" << log[i].agent.to_string()
           << ") writes key '" << entry.key << "' with version ("
           << entry.version.time_us << ',' << entry.version.writer
           << ") not after the key's predecessor (" << it->second.time_us
           << ',' << it->second.writer << ')';
        report.fail(os.str());
      }
      previous[entry.key] = entry.version;
    }
  }
  return report;
}

ConsistencyReport check_monotonic_history(const replica::VersionedStore& store,
                                          std::size_t replica_index) {
  ConsistencyReport report;
  std::map<std::string, replica::Version> last;
  const auto& history = store.history();
  for (std::size_t i = 0; i < history.size(); ++i) {
    const auto& record = history[i];
    auto it = last.find(record.key);
    if (it != last.end() && !(record.version > it->second)) {
      std::ostringstream os;
      os << "replica " << replica_index << " applied key '" << record.key
         << "' out of version order at history index " << i;
      report.fail(os.str());
    }
    last[record.key] = record.version;
  }
  return report;
}

}  // namespace marp::runner

// Multi-seed replication and parallel sweep execution. Each figure point is
// the mean over independent seeds with a 95% CI; points and seeds run
// concurrently on a thread pool (runs are independent simulations, so this
// parallelism cannot perturb results).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "metrics/stats.hpp"
#include "runner/experiment.hpp"
#include "util/thread_pool.hpp"

namespace marp::runner {

struct Aggregate {
  metrics::Running alt_ms;
  metrics::Running att_ms;
  metrics::Running client_latency_ms;
  metrics::Running messages_per_write;
  metrics::Running migrations_per_write;
  metrics::Running wire_bytes_per_write;
  std::map<std::uint32_t, metrics::Running> prk;

  std::uint64_t generated = 0;
  std::uint64_t successful_writes = 0;
  std::uint64_t failed_writes = 0;
  std::uint64_t mutex_violations = 0;
  bool all_consistent = true;
  std::vector<std::string> problems;

  void add(const RunResult& run);
};

/// Run `base` under `seeds` different seeds (base.seed, base.seed+1, …) on
/// `pool`, aggregating the per-run metrics.
Aggregate run_replicated(const ExperimentConfig& base, std::size_t seeds,
                         ThreadPool& pool);

/// Run many independent configs concurrently; results align with `configs`.
std::vector<Aggregate> run_sweep(const std::vector<ExperimentConfig>& configs,
                                 std::size_t seeds, ThreadPool& pool);

}  // namespace marp::runner

// Single-experiment driver: builds a simulator + network + protocol stack
// from a declarative config, runs the workload to completion, and returns
// the paper's metrics together with traffic accounting and the result of
// the consistency audit.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "agent/platform.hpp"
#include "fault/injector.hpp"
#include "marp/config.hpp"
#include "marp/protocol.hpp"
#include "net/network.hpp"
#include "trace/counters.hpp"
#include "trace/critical_path.hpp"
#include "workload/generator.hpp"

namespace marp::runner {

enum class ProtocolKind : std::uint8_t {
  Marp,
  MpMcv,
  WeightedVoting,
  AvailableCopy,
  PrimaryCopy,
  Tsae  ///< weak consistency (timestamped anti-entropy, Golding '92)
};

const char* protocol_name(ProtocolKind kind);

enum class NetworkKind : std::uint8_t { Lan, Wan };

struct FailureEvent {
  sim::SimTime at;
  net::NodeId node = 0;
  bool fail = true;  ///< false = recover
};

struct ExperimentConfig {
  std::size_t servers = 5;
  ProtocolKind protocol = ProtocolKind::Marp;
  std::uint64_t seed = 1;

  NetworkKind network = NetworkKind::Lan;
  /// Non-empty: ignore `network` and replay a measured per-link delay
  /// distribution (marp_sim --net-calibration, produced by a real cluster
  /// run) through net::CalibratedLatency.
  net::CalibrationTable net_calibration;
  /// LAN: one-way base propagation + exponential jitter + bandwidth.
  sim::SimTime lan_base = sim::SimTime::millis(2);
  double lan_jitter_mean_us = 500.0;
  double lan_bytes_per_us = 12.5;  ///< ~100 Mbit/s
  /// WAN: clustered topology + heavy-tailed jitter + transient spikes.
  std::size_t wan_clusters = 3;
  sim::SimTime wan_intra = sim::SimTime::millis(2);
  sim::SimTime wan_inter = sim::SimTime::millis(40);
  net::WanLatency::Params wan_params;

  workload::WorkloadConfig workload;
  core::MarpConfig marp;
  /// WAN runs scale MARP's reactive timers (patrol, ack retry, claim retry,
  /// defer timeout) to the inter-site round-trip so waiting agents do not
  /// thrash; set false to use `marp`'s timers verbatim.
  bool scale_marp_timers_for_wan = true;

  std::vector<FailureEvent> failures;

  /// Chaos schedule (MARP only): crash/recover, partitions, link-fault
  /// windows, agent kills — timed or phase-triggered, executed by a
  /// FaultInjector. Replaces nothing: `failures` above still works and the
  /// two compose.
  fault::FaultPlan fault_plan;
  /// Message faults on every live link from t = 0 (drop/duplicate/reorder);
  /// the plan can override them mid-run via SetLinkFaults.
  net::LinkFaults link_faults;

  /// Extra virtual time after generation stops, letting in-flight requests
  /// finish before metrics are read.
  sim::SimTime drain = sim::SimTime::seconds(20);

  /// Keep every per-request Outcome in RunResult::outcomes (off by default;
  /// sweeps only need the aggregates).
  bool keep_outcomes = false;

  /// Span-ring capacity for the execution tracer; 0 (default) disables
  /// tracing entirely — no Tracer is constructed and every hook site reduces
  /// to one null-pointer test. MARP runs get the full span set; baselines
  /// still get network drop/retransmit marks.
  std::size_t trace_capacity = 0;
};

struct RunResult {
  std::string protocol;
  std::uint64_t seed = 0;

  // Workload accounting.
  std::uint64_t generated = 0;
  std::uint64_t completed = 0;
  std::uint64_t successful_writes = 0;
  std::uint64_t failed_writes = 0;
  std::uint64_t reads = 0;

  // Paper metrics (§4).
  double alt_ms = 0.0;                 ///< avg time to obtain the lock
  double att_ms = 0.0;                 ///< avg total update time
  double client_latency_ms = 0.0;      ///< submission → completion
  double att_p99_ms = 0.0;
  std::map<std::uint32_t, double> prk; ///< visits → % of requests

  // Cost accounting.
  net::TrafficStats net_stats;
  agent::PlatformStats agent_stats;    ///< zeros for message-passing runs
  std::uint64_t mutex_violations = 0;  ///< MARP runs: Theorem 2 monitor
  core::MarpStats marp_stats;          ///< MARP runs: incl. anomaly counters
  fault::InjectorStats fault_stats;    ///< what the fault plan actually did

  // Consistency audit.
  bool consistent = true;
  std::vector<std::string> consistency_problems;

  /// Per-request outcomes; populated only with config.keep_outcomes.
  std::vector<replica::Outcome> outcomes;

  /// The execution tracer, set when config.trace_capacity > 0. Read-only
  /// after the run: the simulator it timestamps against died with
  /// run_experiment, so records()/export are fine but hook calls are not.
  std::shared_ptr<trace::Tracer> trace;
  /// Per-phase latency percentiles over the traced spans (empty untraced).
  std::vector<trace::PhaseLatency> phase_latencies;
  /// Calibrated-run closure check: per measured link, the calibration
  /// table's median delay vs the median this run actually sampled (empty
  /// unless config.net_calibration was set).
  std::vector<net::CalibratedLatency::LinkReport> calibration_report;

  double messages_per_write() const {
    return successful_writes == 0
               ? 0.0
               : static_cast<double>(net_stats.messages_sent) /
                     static_cast<double>(successful_writes);
  }
  double migrations_per_write() const {
    return successful_writes == 0
               ? 0.0
               : static_cast<double>(agent_stats.migrations_started) /
                     static_cast<double>(successful_writes);
  }
  double wire_bytes_per_write() const {
    return successful_writes == 0
               ? 0.0
               : static_cast<double>(net_stats.bytes_sent +
                                     agent_stats.migration_bytes) /
                     static_cast<double>(successful_writes);
  }
};

/// Build, run, audit. Deterministic in `config` (including its seed).
RunResult run_experiment(const ExperimentConfig& config);

/// Fold every counter a run produced — network traffic, platform stats,
/// MARP protocol stats including the anomaly table, and the workload
/// accounting — into one named registry (the `--counters` dump and the
/// trace export's otherData block).
trace::CounterRegistry build_counter_registry(const RunResult& result);

}  // namespace marp::runner

#include "runner/experiment.hpp"

#include <memory>
#include <optional>

#include "baseline/available_copy.hpp"
#include "baseline/mcv.hpp"
#include "baseline/primary_copy.hpp"
#include "baseline/tsae.hpp"
#include "baseline/weighted_voting.hpp"
#include "marp/protocol.hpp"
#include "runner/consistency.hpp"
#include "util/assert.hpp"
#include "workload/trace.hpp"

namespace marp::runner {

const char* protocol_name(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::Marp: return "MARP";
    case ProtocolKind::MpMcv: return "MP-MCV";
    case ProtocolKind::WeightedVoting: return "WeightedVoting";
    case ProtocolKind::AvailableCopy: return "AvailableCopy";
    case ProtocolKind::PrimaryCopy: return "PrimaryCopy";
    case ProtocolKind::Tsae: return "TSAE";
  }
  return "?";
}

namespace {

std::unique_ptr<net::LatencyModel> make_latency(const ExperimentConfig& config,
                                                const net::Topology& topology) {
  if (!config.net_calibration.empty()) {
    return std::make_unique<net::CalibratedLatency>(config.net_calibration);
  }
  if (config.network == NetworkKind::Lan) {
    return std::make_unique<net::LanLatency>(topology.delays,
                                             config.lan_jitter_mean_us,
                                             config.lan_bytes_per_us);
  }
  return std::make_unique<net::WanLatency>(topology.delays, config.wan_params);
}

net::Topology make_topology(const ExperimentConfig& config) {
  if (config.network == NetworkKind::Lan) {
    return net::make_lan_mesh(config.servers, config.lan_base);
  }
  return net::make_wan_clusters(config.servers, config.wan_clusters,
                                config.wan_intra, config.wan_inter);
}

}  // namespace

RunResult run_experiment(const ExperimentConfig& config) {
  MARP_REQUIRE(config.servers >= 1);
  sim::Simulator simulator(config.seed);
  net::Topology topology = make_topology(config);
  std::unique_ptr<net::LatencyModel> latency = make_latency(config, topology);
  // Keep a typed view for the end-of-run closure report; the Network owns
  // the model either way.
  const auto* calibrated =
      config.net_calibration.empty()
          ? nullptr
          : static_cast<const net::CalibratedLatency*>(latency.get());
  net::Network network(simulator, topology, std::move(latency));

  // The MARP stack needs the agent platform; message-passing baselines
  // register directly with the network.
  std::unique_ptr<agent::AgentPlatform> platform;
  std::unique_ptr<replica::ReplicationProtocol> protocol;
  core::MarpProtocol* marp = nullptr;

  std::vector<const replica::VersionedStore*> stores;
  core::MarpConfig marp_config = config.marp;
  if (config.network == NetworkKind::Wan && config.scale_marp_timers_for_wan) {
    // LAN defaults assume millisecond round trips; on the WAN a waiting
    // agent that patrols every 250 ms migrates several times per update
    // session, which is pure churn. Scale the reactive timers to the
    // inter-site delay.
    const std::int64_t rtt_us = 2 * config.wan_inter.as_micros();
    auto at_least = [](sim::SimTime current, std::int64_t us) {
      return std::max(current, sim::SimTime::micros(us));
    };
    marp_config.patrol_interval = at_least(marp_config.patrol_interval, 10 * rtt_us);
    marp_config.ack_retry_interval = at_least(marp_config.ack_retry_interval, 4 * rtt_us);
    marp_config.defer_timeout = at_least(marp_config.defer_timeout, 4 * rtt_us);
    marp_config.claim_retry_delay = at_least(marp_config.claim_retry_delay, rtt_us / 4);
  }

  switch (config.protocol) {
    case ProtocolKind::Marp: {
      platform = std::make_unique<agent::AgentPlatform>(network);
      auto owned = std::make_unique<core::MarpProtocol>(network, *platform,
                                                        marp_config);
      marp = owned.get();
      for (net::NodeId node = 0; node < config.servers; ++node) {
        stores.push_back(&owned->server(node).store());
      }
      protocol = std::move(owned);
      break;
    }
    case ProtocolKind::MpMcv: {
      auto owned = std::make_unique<baseline::McvProtocol>(network);
      for (net::NodeId node = 0; node < config.servers; ++node) {
        stores.push_back(&owned->server(node).store());
      }
      protocol = std::move(owned);
      break;
    }
    case ProtocolKind::WeightedVoting: {
      auto owned = std::make_unique<baseline::WeightedVotingProtocol>(network);
      for (net::NodeId node = 0; node < config.servers; ++node) {
        stores.push_back(&owned->server(node).store());
      }
      protocol = std::move(owned);
      break;
    }
    case ProtocolKind::AvailableCopy: {
      auto owned = std::make_unique<baseline::AvailableCopyProtocol>(network);
      for (net::NodeId node = 0; node < config.servers; ++node) {
        stores.push_back(&owned->server(node).store());
      }
      protocol = std::move(owned);
      break;
    }
    case ProtocolKind::PrimaryCopy: {
      auto owned = std::make_unique<baseline::PrimaryCopyProtocol>(network);
      for (net::NodeId node = 0; node < config.servers; ++node) {
        stores.push_back(&owned->server(node).store());
      }
      protocol = std::move(owned);
      break;
    }
    case ProtocolKind::Tsae: {
      auto owned = std::make_unique<baseline::TsaeProtocol>(network);
      for (net::NodeId node = 0; node < config.servers; ++node) {
        stores.push_back(&owned->server(node).store());
      }
      protocol = std::move(owned);
      break;
    }
  }

  std::shared_ptr<trace::Tracer> tracer;
  if (config.trace_capacity > 0) {
    tracer = std::make_shared<trace::Tracer>(simulator, config.trace_capacity);
    network.set_observer(tracer.get());
    if (platform) platform->set_observer(tracer.get());
    if (marp) marp->set_tracer(tracer.get());
  }

  if (config.link_faults.any()) {
    network.set_default_link_faults(config.link_faults);
  }
  std::optional<fault::FaultInjector> injector;
  if (!config.fault_plan.empty()) {
    MARP_REQUIRE_MSG(marp != nullptr && platform != nullptr,
                     "fault plans require the MARP stack");
    injector.emplace(network, *platform, *marp, config.fault_plan);
    injector->arm();
  }

  workload::TraceCollector trace;
  protocol->set_outcome_handler(
      [&trace](const replica::Outcome& outcome) { trace.record(outcome); });

  workload::RequestGenerator generator(
      simulator, config.servers, config.workload,
      [&protocol](const replica::Request& request) { protocol->submit(request); });
  generator.start();

  std::vector<bool> stayed_up(config.servers, true);
  for (const FailureEvent& event : config.failures) {
    MARP_REQUIRE(event.node < config.servers);
    stayed_up[event.node] = false;  // touched by the failure schedule
    simulator.schedule_at(event.at, [&protocol, event] {
      if (event.fail) {
        protocol->fail_server(event.node);
      } else {
        protocol->recover_server(event.node);
      }
    });
  }

  simulator.run(config.workload.duration + config.drain);

  RunResult result;
  result.protocol = protocol->name();
  result.seed = config.seed;
  result.generated = generator.generated();
  result.completed = trace.completed();
  result.successful_writes = trace.successful_writes();
  result.failed_writes = trace.failed_writes();
  result.reads = trace.reads();
  result.alt_ms = trace.average_lock_time_ms();
  result.att_ms = trace.average_total_time_ms();
  result.client_latency_ms = trace.average_client_latency_ms();
  result.att_p99_ms = trace.total_time_percentile_ms(99.0);
  result.prk = trace.prk();
  result.net_stats = network.stats();
  if (platform) result.agent_stats = platform->stats();
  if (marp) {
    result.mutex_violations = marp->stats().mutex_violations;
    result.marp_stats = marp->stats();
  }
  if (injector) {
    result.fault_stats = injector->stats();
    // Crashed replicas are exempt from the convergence audit (their agents
    // and buffered requests died with them); partitioned-but-live replicas
    // stay on the hook — the hardened protocol must bring them back.
    for (std::size_t i = 0; i < config.servers; ++i) {
      if (injector->crashed()[i]) stayed_up[i] = false;
    }
  }

  // Consistency audit. Under dynamic membership only the replicas hosting a
  // key's group in the final view owe a copy — leavers and spares are
  // exempt, as is any server whose installed epoch lags the final view
  // (it was mid-change when the run ended).
  ConsistencyReport audit;
  if (marp != nullptr && marp->membership_enabled()) {
    const membership::MembershipView& final_view = marp->current_view();
    audit = check_scoped_convergence(
        stores, stayed_up, marp->router(),
        [&](std::size_t node, shard::GroupId g) {
          const core::MarpServer& server = marp->server(node);
          return final_view.hosts(static_cast<net::NodeId>(node), g) &&
                 !server.retired() && server.view().epoch == final_view.epoch;
        });
  } else {
    audit = check_convergence(stores, stayed_up);
  }
  for (std::size_t i = 0; i < stores.size(); ++i) {
    audit.merge(check_monotonic_history(*stores[i], i));
  }
  if (marp) {
    audit.merge(check_commit_order(marp->commit_log(),
                                   marp_config.num_lock_groups));
    audit.merge(check_per_key_order(marp->commit_log()));
    if (marp->stats().mutex_violations != 0) {
      audit.fail("Theorem 2 monitor observed concurrent updaters");
    }
  }
  result.consistent = audit.ok;
  result.consistency_problems = std::move(audit.problems);
  if (config.keep_outcomes) result.outcomes = trace.outcomes();
  if (tracer) {
    result.phase_latencies = trace::phase_latencies(*tracer);
    result.trace = std::move(tracer);
  }
  if (calibrated != nullptr) result.calibration_report = calibrated->report();
  return result;
}

trace::CounterRegistry build_counter_registry(const RunResult& result) {
  trace::CounterRegistry reg;
  reg.set("run.generated", result.generated);
  reg.set("run.completed", result.completed);
  reg.set("run.successful_writes", result.successful_writes);
  reg.set("run.failed_writes", result.failed_writes);
  reg.set("run.reads", result.reads);

  const net::TrafficStats& net = result.net_stats;
  reg.set("net.messages_sent", net.messages_sent);
  reg.set("net.messages_delivered", net.messages_delivered);
  reg.set("net.messages_dropped", net.messages_dropped);
  reg.set("net.bytes_sent", net.bytes_sent);
  reg.set("net.fault_drops", net.fault_drops);
  reg.set("net.fault_duplicates", net.fault_duplicates);
  reg.set("net.fault_reorders", net.fault_reorders);

  const agent::PlatformStats& ag = result.agent_stats;
  reg.set("agent.created", ag.agents_created);
  reg.set("agent.disposed", ag.agents_disposed);
  reg.set("agent.migrations_started", ag.migrations_started);
  reg.set("agent.migrations_completed", ag.migrations_completed);
  reg.set("agent.migrations_failed", ag.migrations_failed);
  reg.set("agent.migration_bytes", ag.migration_bytes);

  const core::MarpStats& marp = result.marp_stats;
  reg.set("marp.updates_committed", marp.updates_committed);
  reg.set("marp.updates_aborted", marp.updates_aborted);
  reg.set("marp.update_attempts", marp.update_attempts);
  reg.set("marp.reads_served", marp.reads_served);
  reg.set("marp.lock_requeues", marp.lock_requeues);
  reg.set("marp.mutex_violations", marp.mutex_violations);

  const core::ProtocolAnomalies& anomaly = marp.anomalies;
  reg.set("marp.anomaly.stale_acks", anomaly.stale_acks);
  reg.set("marp.anomaly.stale_updates", anomaly.stale_updates);
  reg.set("marp.anomaly.duplicate_updates", anomaly.duplicate_updates);
  reg.set("marp.anomaly.duplicate_commits", anomaly.duplicate_commits);
  reg.set("marp.anomaly.duplicate_reports", anomaly.duplicate_reports);
  reg.set("marp.anomaly.orphaned_reports", anomaly.orphaned_reports);
  reg.set("marp.anomaly.commit_retransmits", anomaly.commit_retransmits);
  reg.set("marp.anomaly.report_retransmits", anomaly.report_retransmits);
  reg.set("marp.anomaly.release_retransmits", anomaly.release_retransmits);

  const fault::InjectorStats& fault = result.fault_stats;
  reg.set("fault.crashes", fault.crashes);
  reg.set("fault.recoveries", fault.recoveries);
  reg.set("fault.agents_killed", fault.agents_killed);

  if (result.trace) {
    reg.set("trace.spans_recorded", result.trace->size());
    reg.set("trace.spans_dropped", result.trace->dropped());
    reg.set("trace.open_spans", result.trace->open_spans());
    reg.set("trace.unmatched_ends", result.trace->unmatched_ends());
  }
  return reg;
}

}  // namespace marp::runner

// Consistency auditing: checks run after every experiment.
//
// * Convergence — replicas that never failed must end with identical
//   (value, version) for every key (single-copy illusion).
// * Commit-order — the protocol-level commit log must be strictly ordered
//   by version within each lock group (updates touching a group serialize:
//   the paper's order-preservation claim, per independent consensus
//   instance; with one group this is a global total order).
// * Per-key order — commits to any single key must be version-ordered no
//   matter how the keyspace is sharded (what clients actually observe).
// * Monotonicity — every replica's applied history must be per-key
//   version-monotone (the Thomas write rule actually held).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "marp/protocol.hpp"
#include "replica/versioned_store.hpp"

namespace marp::runner {

struct ConsistencyReport {
  bool ok = true;
  std::vector<std::string> problems;

  void fail(std::string problem) {
    ok = false;
    problems.push_back(std::move(problem));
  }
  void merge(const ConsistencyReport& other) {
    ok = ok && other.ok;
    problems.insert(problems.end(), other.problems.begin(), other.problems.end());
  }
};

/// `eligible[i]` marks stores whose server stayed up for the whole run.
ConsistencyReport check_convergence(
    const std::vector<const replica::VersionedStore*>& stores,
    const std::vector<bool>& eligible);

/// Partial-replication form of check_convergence: only replicas *hosting* a
/// key's lock group participate in that key's comparison. `hosts(i, g)`
/// answers whether replica i is expected to hold group g under the final
/// membership view; a hosting replica missing the key (a joiner that never
/// finished catch-up) or disagreeing with its peers fails the audit, while
/// non-hosting replicas (leavers with frozen stores, spares) are exempt.
ConsistencyReport check_scoped_convergence(
    const std::vector<const replica::VersionedStore*>& stores,
    const std::vector<bool>& eligible, const shard::ShardRouter& router,
    const std::function<bool(std::size_t, shard::GroupId)>& hosts);

/// Strict version order over the commit log, per lock group. With
/// `num_lock_groups` == 1 every entry lands in group 0, so this degrades to
/// the original global-total-order check.
ConsistencyReport check_commit_order(const std::vector<core::CommitRecord>& log,
                                     std::size_t num_lock_groups = 1);

/// Strict version order per key across the whole log — the client-visible
/// guarantee, independent of how keys are assigned to lock groups.
ConsistencyReport check_per_key_order(const std::vector<core::CommitRecord>& log);

ConsistencyReport check_monotonic_history(const replica::VersionedStore& store,
                                          std::size_t replica_index);

}  // namespace marp::runner

// Consistency auditing: checks run after every experiment.
//
// * Convergence — replicas that never failed must end with identical
//   (value, version) for every key (single-copy illusion).
// * Commit-order — the protocol-level commit log must be strictly ordered
//   by version (updates serialized: the paper's order-preservation claim).
// * Monotonicity — every replica's applied history must be per-key
//   version-monotone (the Thomas write rule actually held).
#pragma once

#include <string>
#include <vector>

#include "marp/protocol.hpp"
#include "replica/versioned_store.hpp"

namespace marp::runner {

struct ConsistencyReport {
  bool ok = true;
  std::vector<std::string> problems;

  void fail(std::string problem) {
    ok = false;
    problems.push_back(std::move(problem));
  }
  void merge(const ConsistencyReport& other) {
    ok = ok && other.ok;
    problems.insert(problems.end(), other.problems.begin(), other.problems.end());
  }
};

/// `eligible[i]` marks stores whose server stayed up for the whole run.
ConsistencyReport check_convergence(
    const std::vector<const replica::VersionedStore*>& stores,
    const std::vector<bool>& eligible);

ConsistencyReport check_commit_order(const std::vector<core::CommitRecord>& log);

ConsistencyReport check_monotonic_history(const replica::VersionedStore& store,
                                          std::size_t replica_index);

}  // namespace marp::runner

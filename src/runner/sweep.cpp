#include "runner/sweep.hpp"

#include <mutex>

namespace marp::runner {

void Aggregate::add(const RunResult& run) {
  alt_ms.add(run.alt_ms);
  att_ms.add(run.att_ms);
  client_latency_ms.add(run.client_latency_ms);
  messages_per_write.add(run.messages_per_write());
  migrations_per_write.add(run.migrations_per_write());
  wire_bytes_per_write.add(run.wire_bytes_per_write());
  for (const auto& [visits, percent] : run.prk) prk[visits].add(percent);
  generated += run.generated;
  successful_writes += run.successful_writes;
  failed_writes += run.failed_writes;
  mutex_violations += run.mutex_violations;
  if (!run.consistent) {
    all_consistent = false;
    problems.insert(problems.end(), run.consistency_problems.begin(),
                    run.consistency_problems.end());
  }
}

Aggregate run_replicated(const ExperimentConfig& base, std::size_t seeds,
                         ThreadPool& pool) {
  std::vector<RunResult> runs(seeds);
  parallel_for(pool, seeds, [&](std::size_t i) {
    ExperimentConfig config = base;
    config.seed = base.seed + i;
    runs[i] = run_experiment(config);
  });
  Aggregate aggregate;
  for (const RunResult& run : runs) aggregate.add(run);
  return aggregate;
}

std::vector<Aggregate> run_sweep(const std::vector<ExperimentConfig>& configs,
                                 std::size_t seeds, ThreadPool& pool) {
  std::vector<Aggregate> aggregates(configs.size());
  std::vector<std::vector<RunResult>> runs(configs.size(),
                                           std::vector<RunResult>(seeds));
  parallel_for(pool, configs.size() * seeds, [&](std::size_t flat) {
    const std::size_t point = flat / seeds;
    const std::size_t replicate = flat % seeds;
    ExperimentConfig config = configs[point];
    config.seed = config.seed + replicate;
    runs[point][replicate] = run_experiment(config);
  });
  for (std::size_t point = 0; point < configs.size(); ++point) {
    for (const RunResult& run : runs[point]) aggregates[point].add(run);
  }
  return aggregates;
}

}  // namespace marp::runner

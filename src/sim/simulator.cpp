#include "sim/simulator.hpp"

namespace marp::sim {

Event Simulator::next_event() {
  if (controller_ != nullptr) {
    queue_.frontier(frontier_scratch_);
    MARP_DEBUG_ASSERT(!frontier_scratch_.empty());
    const std::size_t pick = controller_->choose(frontier_scratch_);
    MARP_REQUIRE_MSG(pick < frontier_scratch_.size(),
                     "schedule controller picked an out-of-range event");
    return queue_.pop_specific(frontier_scratch_[pick].id);
  }
  return queue_.pop();
}

std::uint64_t Simulator::run(SimTime deadline) {
  stop_requested_ = false;
  std::uint64_t count = 0;
  while (!queue_.empty() && !stop_requested_) {
    if (queue_.next_time() > deadline) break;
    Event event = next_event();
    MARP_DEBUG_ASSERT(event.time >= now_);
    now_ = event.time;
    event.action();
    ++count;
    ++executed_;
  }
  if (!stop_requested_ && now_ < deadline && deadline != SimTime::max()) {
    // Advance the clock to the deadline so repeated bounded runs compose
    // (events beyond the deadline stay queued for the next run call).
    now_ = deadline;
  }
  return count;
}

std::uint64_t Simulator::run_events(std::uint64_t max_events) {
  stop_requested_ = false;
  std::uint64_t count = 0;
  while (!queue_.empty() && !stop_requested_ && count < max_events) {
    Event event = next_event();
    MARP_DEBUG_ASSERT(event.time >= now_);
    now_ = event.time;
    event.action();
    ++count;
    ++executed_;
  }
  return count;
}

}  // namespace marp::sim

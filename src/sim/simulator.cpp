#include "sim/simulator.hpp"

namespace marp::sim {

std::uint64_t Simulator::run(SimTime deadline) {
  stop_requested_ = false;
  std::uint64_t count = 0;
  while (!queue_.empty() && !stop_requested_) {
    if (queue_.next_time() > deadline) break;
    Event event = queue_.pop();
    MARP_DEBUG_ASSERT(event.time >= now_);
    now_ = event.time;
    event.action();
    ++count;
    ++executed_;
  }
  if (!stop_requested_ && now_ < deadline && deadline != SimTime::max()) {
    // Advance the clock to the deadline so repeated bounded runs compose
    // (events beyond the deadline stay queued for the next run call).
    now_ = deadline;
  }
  return count;
}

std::uint64_t Simulator::run_events(std::uint64_t max_events) {
  stop_requested_ = false;
  std::uint64_t count = 0;
  while (!queue_.empty() && !stop_requested_ && count < max_events) {
    Event event = queue_.pop();
    MARP_DEBUG_ASSERT(event.time >= now_);
    now_ = event.time;
    event.action();
    ++count;
    ++executed_;
  }
  return count;
}

}  // namespace marp::sim

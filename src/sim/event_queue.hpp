// Pending-event set for the simulator.
//
// A 4-ary implicit heap ordered by (time, sequence). The sequence number is a
// monotonically increasing tie-break so same-time events fire in scheduling
// order — this is what makes runs deterministic. 4-ary beats binary here
// because sift-down touches one cache line of children per level.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "util/assert.hpp"

namespace marp::sim {

using EventId = std::uint64_t;

struct Event {
  SimTime time;
  EventId id = 0;  // scheduling order; doubles as cancellation handle
  std::function<void()> action;

  /// Strict-weak ordering: earlier time first, then earlier schedule order.
  friend bool event_before(const Event& a, const Event& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.id < b.id;
  }
};

class EventQueue {
 public:
  EventQueue() = default;

  bool empty() const noexcept { return heap_.size() == cancelled_in_heap_; }
  std::size_t size() const noexcept { return heap_.size() - cancelled_in_heap_; }

  /// Insert an event; returns its id (usable with cancel()).
  EventId push(SimTime time, std::function<void()> action) {
    const EventId id = next_id_++;
    heap_.push_back(Event{time, id, std::move(action)});
    sift_up(heap_.size() - 1);
    return id;
  }

  /// Lazily cancel a pending event. Returns false if already fired/cancelled.
  bool cancel(EventId id) {
    auto [it, inserted] = cancelled_.insert(id);
    (void)it;
    if (inserted) ++cancelled_in_heap_;
    return inserted;
  }

  /// Time of the earliest live event. Queue must be non-empty.
  SimTime next_time() {
    drop_cancelled_top();
    MARP_REQUIRE(!heap_.empty());
    return heap_.front().time;
  }

  /// Remove and return the earliest live event. Queue must be non-empty.
  Event pop() {
    drop_cancelled_top();
    MARP_REQUIRE(!heap_.empty());
    return pop_top();
  }

  void clear() {
    heap_.clear();
    cancelled_.clear();
    cancelled_in_heap_ = 0;
  }

 private:
  static constexpr std::size_t kArity = 4;

  Event pop_top() {
    Event top = std::move(heap_.front());
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    return top;
  }

  void drop_cancelled_top() {
    while (!heap_.empty() && cancelled_.contains(heap_.front().id)) {
      cancelled_.erase(heap_.front().id);
      --cancelled_in_heap_;
      (void)pop_top();
    }
  }

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!event_before(heap_[i], heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first_child = i * kArity + 1;
      if (first_child >= n) break;
      std::size_t best = first_child;
      const std::size_t last_child = std::min(first_child + kArity, n);
      for (std::size_t c = first_child + 1; c < last_child; ++c) {
        if (event_before(heap_[c], heap_[best])) best = c;
      }
      if (!event_before(heap_[best], heap_[i])) break;
      std::swap(heap_[i], heap_[best]);
      i = best;
    }
  }

  std::vector<Event> heap_;
  // Lazy cancellation: ids are dropped when they reach the top.
  // (hash set; expected handful of live cancellations at a time)
  struct IdentityHash {
    std::size_t operator()(EventId id) const noexcept { return id * 0x9E3779B97F4A7C15ULL; }
  };
  std::unordered_set<EventId, IdentityHash> cancelled_;
  std::size_t cancelled_in_heap_ = 0;
  EventId next_id_ = 1;
};

}  // namespace marp::sim

// Pending-event set for the simulator.
//
// A 4-ary implicit heap ordered by (time, sequence). The sequence number is a
// monotonically increasing tie-break so same-time events fire in scheduling
// order — this is what makes runs deterministic. 4-ary beats binary here
// because sift-down touches one cache line of children per level.
//
// Same-time events are exactly the nondeterminism points of a real
// deployment collapsed to one canonical order. The frontier()/pop_specific()
// pair exposes those points so a ScheduleController (see simulator.hpp) can
// enumerate the other orders; without a controller the canonical
// (time, sequence) order is untouched.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "util/assert.hpp"

namespace marp::sim {

using EventId = std::uint64_t;

/// Coarse ownership tag for schedule exploration: the node whose local state
/// an event's handler mutates. kNoActor means "unknown / global" — such an
/// event is conservatively treated as dependent on everything.
using ActorId = std::int32_t;
inline constexpr ActorId kNoActor = -1;

struct Event {
  SimTime time;
  EventId id = 0;  // scheduling order; doubles as cancellation handle
  ActorId actor = kNoActor;
  std::function<void()> action;

  /// Strict-weak ordering: earlier time first, then earlier schedule order.
  friend bool event_before(const Event& a, const Event& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.id < b.id;
  }
};

/// One runnable alternative at the earliest pending time (see frontier()).
struct EventChoice {
  SimTime time;
  EventId id = 0;
  ActorId actor = kNoActor;
};

class EventQueue {
 public:
  EventQueue() = default;

  bool empty() const noexcept { return heap_.size() == cancelled_in_heap_; }
  std::size_t size() const noexcept { return heap_.size() - cancelled_in_heap_; }

  /// Insert an event; returns its id (usable with cancel()).
  EventId push(SimTime time, std::function<void()> action,
               ActorId actor = kNoActor) {
    const EventId id = next_id_++;
    heap_.push_back(Event{time, id, actor, std::move(action)});
    live_.insert(id);
    sift_up(heap_.size() - 1);
    return id;
  }

  /// Lazily cancel a pending event. Returns false — and changes nothing —
  /// if `id` already fired or was already cancelled. Ids are never reused,
  /// so a stale handle can never cancel a later event by accident.
  bool cancel(EventId id) {
    if (live_.erase(id) == 0) return false;  // fired or already cancelled
    cancelled_.insert(id);
    ++cancelled_in_heap_;
    return true;
  }

  /// Time of the earliest live event. Queue must be non-empty.
  SimTime next_time() {
    drop_cancelled_top();
    MARP_REQUIRE(!heap_.empty());
    return heap_.front().time;
  }

  /// All live events sharing the earliest pending time, ascending id (the
  /// canonical firing order). Empty queue yields an empty frontier. O(heap)
  /// — only paid when a ScheduleController is installed.
  void frontier(std::vector<EventChoice>& out) {
    out.clear();
    drop_cancelled_top();
    if (heap_.empty()) return;
    const SimTime t = heap_.front().time;
    for (const Event& e : heap_) {
      if (e.time == t && !cancelled_.contains(e.id)) {
        out.push_back(EventChoice{e.time, e.id, e.actor});
      }
    }
    std::sort(out.begin(), out.end(),
              [](const EventChoice& a, const EventChoice& b) { return a.id < b.id; });
  }

  /// Remove and return the earliest live event. Queue must be non-empty.
  Event pop() {
    drop_cancelled_top();
    MARP_REQUIRE(!heap_.empty());
    return pop_top();
  }

  /// Remove and return the live event `id` (must be pending, e.g. taken
  /// from frontier()). O(heap) scan; controller-only path.
  Event pop_specific(EventId id) {
    MARP_REQUIRE_MSG(live_.contains(id), "pop_specific: event not pending");
    for (std::size_t i = 0; i < heap_.size(); ++i) {
      if (heap_[i].id != id) continue;
      Event out = std::move(heap_[i]);
      live_.erase(id);
      heap_[i] = std::move(heap_.back());
      heap_.pop_back();
      if (i < heap_.size()) {
        // The replacement came from the bottom; it may need to move either way.
        sift_down(i);
        sift_up(i);
      }
      return out;
    }
    MARP_REQUIRE_MSG(false, "pop_specific: live id missing from heap");
    return {};
  }

  void clear() {
    heap_.clear();
    cancelled_.clear();
    live_.clear();
    cancelled_in_heap_ = 0;
  }

 private:
  static constexpr std::size_t kArity = 4;

  Event pop_top() {
    Event top = std::move(heap_.front());
    live_.erase(top.id);
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    return top;
  }

  void drop_cancelled_top() {
    while (!heap_.empty() && cancelled_.contains(heap_.front().id)) {
      cancelled_.erase(heap_.front().id);
      --cancelled_in_heap_;
      (void)pop_top();
    }
  }

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!event_before(heap_[i], heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first_child = i * kArity + 1;
      if (first_child >= n) break;
      std::size_t best = first_child;
      const std::size_t last_child = std::min(first_child + kArity, n);
      for (std::size_t c = first_child + 1; c < last_child; ++c) {
        if (event_before(heap_[c], heap_[best])) best = c;
      }
      if (!event_before(heap_[best], heap_[i])) break;
      std::swap(heap_[i], heap_[best]);
      i = best;
    }
  }

  struct IdentityHash {
    std::size_t operator()(EventId id) const noexcept { return id * 0x9E3779B97F4A7C15ULL; }
  };

  std::vector<Event> heap_;
  // Lazy cancellation: ids are dropped when they reach the top.
  // (hash set; expected handful of live cancellations at a time)
  std::unordered_set<EventId, IdentityHash> cancelled_;
  // Ids currently pending (in the heap and not cancelled). Guards cancel()
  // against already-fired handles, which previously corrupted size().
  std::unordered_set<EventId, IdentityHash> live_;
  std::size_t cancelled_in_heap_ = 0;
  EventId next_id_ = 1;
};

}  // namespace marp::sim

// Discrete-event simulator.
//
// Single-threaded, deterministic: events execute in (time, schedule-order)
// sequence, advancing the virtual clock. Components schedule closures via
// schedule()/schedule_at() and may cancel them; the run loop drains the
// queue until empty, a deadline, or an explicit stop.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace marp::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : rng_factory_(seed), seed_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const noexcept { return now_; }
  std::uint64_t seed() const noexcept { return seed_; }
  const RngFactory& rng_factory() const noexcept { return rng_factory_; }

  /// Schedule `action` to run `delay` after the current time.
  EventId schedule(SimTime delay, std::function<void()> action) {
    return schedule_at(now_ + delay, std::move(action));
  }

  /// Schedule `action` at an absolute virtual time (must not be in the past).
  EventId schedule_at(SimTime when, std::function<void()> action) {
    MARP_REQUIRE_MSG(when >= now_, "cannot schedule into the past");
    return queue_.push(when, std::move(action));
  }

  /// Cancel a pending event; returns false if it already fired.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Run until the queue is empty or `deadline` is passed. Returns the
  /// number of events executed. Events scheduled exactly at the deadline
  /// still run; later ones stay queued.
  std::uint64_t run(SimTime deadline = SimTime::max());

  /// Run at most `max_events` events (for step-debugging and tests).
  std::uint64_t run_events(std::uint64_t max_events);

  /// Request the run loop to return after the current event.
  void stop() noexcept { stop_requested_ = true; }

  bool idle() const noexcept { return queue_.empty(); }
  std::size_t pending_events() const noexcept { return queue_.size(); }
  std::uint64_t executed_events() const noexcept { return executed_; }

 private:
  EventQueue queue_;
  SimTime now_ = SimTime::zero();
  RngFactory rng_factory_;
  std::uint64_t seed_;
  std::uint64_t executed_ = 0;
  bool stop_requested_ = false;
};

}  // namespace marp::sim

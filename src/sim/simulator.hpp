// Discrete-event simulator.
//
// Single-threaded, deterministic: events execute in (time, schedule-order)
// sequence, advancing the virtual clock. Components schedule closures via
// schedule()/schedule_at() and may cancel them; the run loop drains the
// queue until empty, a deadline, or an explicit stop.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace marp::sim {

/// Hook for systematic schedule exploration (src/check/). When installed,
/// the run loop stops picking same-time events in canonical schedule order:
/// before every step it hands the controller the full frontier — every live
/// event at the earliest pending time, ascending id — and fires the one the
/// controller picks. Each frontier of size ≥ 2 is one real nondeterminism
/// point of a distributed execution; enumerating the picks enumerates the
/// interleavings. Called for singleton frontiers too, so a controller can
/// observe every transition (sleep-set bookkeeping needs that).
class ScheduleController {
 public:
  virtual ~ScheduleController() = default;
  /// Return the index into `runnable` of the event to fire next.
  virtual std::size_t choose(const std::vector<EventChoice>& runnable) = 0;
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : rng_factory_(seed), seed_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const noexcept { return now_; }
  std::uint64_t seed() const noexcept { return seed_; }
  const RngFactory& rng_factory() const noexcept { return rng_factory_; }

  /// Schedule `action` to run `delay` after the current time. `actor` tags
  /// the event with the node whose state the action mutates (kNoActor =
  /// global); the tag only matters to schedule exploration.
  EventId schedule(SimTime delay, std::function<void()> action,
                   ActorId actor = kNoActor) {
    return schedule_at(now_ + delay, std::move(action), actor);
  }

  /// Schedule `action` at an absolute virtual time (must not be in the past).
  EventId schedule_at(SimTime when, std::function<void()> action,
                      ActorId actor = kNoActor) {
    MARP_REQUIRE_MSG(when >= now_, "cannot schedule into the past");
    return queue_.push(when, std::move(action), actor);
  }

  /// Cancel a pending event; returns false if it already fired.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Install (or with nullptr remove) a schedule controller. Without one the
  /// run loops behave exactly as before — canonical order, zero overhead.
  void set_schedule_controller(ScheduleController* controller) noexcept {
    controller_ = controller;
  }

  /// Run until the queue is empty or `deadline` is passed. Returns the
  /// number of events executed. Events scheduled exactly at the deadline
  /// still run; later ones stay queued.
  std::uint64_t run(SimTime deadline = SimTime::max());

  /// Run at most `max_events` events (for step-debugging and tests).
  std::uint64_t run_events(std::uint64_t max_events);

  /// Request the run loop to return after the current event.
  void stop() noexcept { stop_requested_ = true; }

  bool idle() const noexcept { return queue_.empty(); }
  std::size_t pending_events() const noexcept { return queue_.size(); }
  std::uint64_t executed_events() const noexcept { return executed_; }

  /// Time of the earliest pending event (queue must be non-empty).
  SimTime next_event_time() { return queue_.next_time(); }

 private:
  Event next_event();

  EventQueue queue_;
  SimTime now_ = SimTime::zero();
  RngFactory rng_factory_;
  std::uint64_t seed_;
  std::uint64_t executed_ = 0;
  bool stop_requested_ = false;
  ScheduleController* controller_ = nullptr;
  std::vector<EventChoice> frontier_scratch_;
};

}  // namespace marp::sim

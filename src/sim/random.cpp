#include "sim/random.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace marp::sim {

std::uint64_t Rng::bounded(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless bounded generation.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t t = -bound % bound;
    while (l < t) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  if (lo >= hi) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(bounded(span));
}

double Rng::exponential(double mean) noexcept {
  if (mean <= 0.0) return 0.0;
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);  // uniform01 can return 0; -log(0) is inf
  return -mean * std::log(u);
}

double Rng::normal(double mu, double sigma) noexcept {
  double u1;
  do {
    u1 = uniform01();
  } while (u1 <= 0.0);
  const double u2 = uniform01();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mu + sigma * mag * std::cos(2.0 * M_PI * u2);
}

double Rng::pareto(double alpha, double xm) noexcept {
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return xm / std::pow(u, 1.0 / alpha);
}

ZipfDistribution::ZipfDistribution(std::size_t n, double s) {
  MARP_REQUIRE(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 1; k <= n; ++k) total += 1.0 / std::pow(static_cast<double>(k), s);
  double acc = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), s) / total;
    cdf_[k - 1] = acc;
  }
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfDistribution::operator()(Rng& rng) const noexcept {
  const double u = rng.uniform01();
  // Binary search for the first CDF entry >= u.
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace marp::sim

// Virtual time for the discrete-event simulator.
//
// SimTime is a strongly-typed count of microseconds since simulation start.
// Integer microseconds keep event ordering exact and runs bit-reproducible;
// the paper's figures are in milliseconds, so ms conversions are provided.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <ostream>

namespace marp::sim {

class SimTime {
 public:
  constexpr SimTime() noexcept = default;

  static constexpr SimTime zero() noexcept { return SimTime{0}; }
  static constexpr SimTime max() noexcept {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

  static constexpr SimTime micros(std::int64_t us) noexcept { return SimTime{us}; }
  static constexpr SimTime millis(double ms) noexcept {
    return SimTime{static_cast<std::int64_t>(ms * 1000.0)};
  }
  static constexpr SimTime seconds(double s) noexcept {
    return SimTime{static_cast<std::int64_t>(s * 1'000'000.0)};
  }

  constexpr std::int64_t as_micros() const noexcept { return us_; }
  constexpr double as_millis() const noexcept { return static_cast<double>(us_) / 1000.0; }
  constexpr double as_seconds() const noexcept {
    return static_cast<double>(us_) / 1'000'000.0;
  }

  constexpr auto operator<=>(const SimTime&) const noexcept = default;

  constexpr SimTime operator+(SimTime other) const noexcept {
    return SimTime{us_ + other.us_};
  }
  constexpr SimTime operator-(SimTime other) const noexcept {
    return SimTime{us_ - other.us_};
  }
  constexpr SimTime& operator+=(SimTime other) noexcept {
    us_ += other.us_;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime other) noexcept {
    us_ -= other.us_;
    return *this;
  }
  constexpr SimTime operator*(std::int64_t k) const noexcept { return SimTime{us_ * k}; }

 private:
  constexpr explicit SimTime(std::int64_t us) noexcept : us_(us) {}
  std::int64_t us_ = 0;
};

inline std::ostream& operator<<(std::ostream& os, SimTime t) {
  return os << t.as_millis() << "ms";
}

namespace literals {
constexpr SimTime operator""_us(unsigned long long v) {
  return SimTime::micros(static_cast<std::int64_t>(v));
}
constexpr SimTime operator""_ms(unsigned long long v) {
  return SimTime::micros(static_cast<std::int64_t>(v) * 1000);
}
constexpr SimTime operator""_ms(long double v) {
  return SimTime::millis(static_cast<double>(v));
}
constexpr SimTime operator""_s(unsigned long long v) {
  return SimTime::micros(static_cast<std::int64_t>(v) * 1'000'000);
}
}  // namespace literals

}  // namespace marp::sim

// Deterministic random number generation.
//
// xoshiro256** core seeded via splitmix64 (both implemented here so results
// do not depend on standard-library internals). Named sub-streams let every
// component of a simulation draw from an independent sequence derived from
// the single run seed — adding a component never perturbs another
// component's stream.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace marp::sim {

/// splitmix64 step; used for seeding and hashing stream names.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna), public-domain algorithm.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853C49E6748FEA9BULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t bounded(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// Exponential with the given mean (= 1/rate). mean <= 0 returns 0.
  double exponential(double mean) noexcept;

  /// Standard normal via Box–Muller (no cached spare; keeps state minimal).
  double normal(double mu = 0.0, double sigma = 1.0) noexcept;

  /// Pareto with shape `alpha` and scale `xm` (heavy-tailed WAN delays).
  double pareto(double alpha, double xm) noexcept;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(bounded(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Zipf(s) sampler over {0, .., n-1} using precomputed CDF (inversion).
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double s);
  std::size_t operator()(Rng& rng) const noexcept;
  std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// Derives independent named sub-streams from one run seed.
///
///   RngFactory f(run_seed);
///   Rng arrivals = f.stream("arrivals", server_id);
class RngFactory {
 public:
  explicit RngFactory(std::uint64_t run_seed) noexcept : run_seed_(run_seed) {}

  Rng stream(std::string_view name, std::uint64_t index = 0) const noexcept {
    std::uint64_t h = run_seed_ ^ 0x2545F4914F6CDD1DULL;
    for (char c : name) {
      h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
      std::uint64_t s = h;
      h = splitmix64(s);
    }
    h ^= index * 0x9E3779B97F4A7C15ULL;
    std::uint64_t s = h;
    return Rng(splitmix64(s));
  }

 private:
  std::uint64_t run_seed_;
};

}  // namespace marp::sim

#include "membership/mapped_quorum.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace marp::membership {

MappedQuorum::MappedQuorum(const quorum::QuorumSpec& spec,
                           std::vector<net::NodeId> replicas)
    : quorum::QuorumSystem(replicas.size()), replicas_(std::move(replicas)) {
  MARP_REQUIRE(!replicas_.empty());
  inner_ = quorum::make_quorum_system(spec, replicas_.size());
}

net::NodeId MappedQuorum::position_of(net::NodeId node) const {
  const auto it = std::find(replicas_.begin(), replicas_.end(), node);
  if (it == replicas_.end()) return net::kInvalidNode;
  return static_cast<net::NodeId>(it - replicas_.begin());
}

quorum::NodeSet MappedQuorum::to_positions(const quorum::NodeSet& nodes) const {
  std::vector<net::NodeId> positions;
  positions.reserve(nodes.size());
  for (const net::NodeId node : nodes) {
    const net::NodeId pos = position_of(node);
    if (pos != net::kInvalidNode) positions.push_back(pos);
  }
  return quorum::make_node_set(std::move(positions));
}

quorum::NodeSet MappedQuorum::from_positions(
    const quorum::NodeSet& positions) const {
  std::vector<net::NodeId> nodes;
  nodes.reserve(positions.size());
  for (const net::NodeId pos : positions) {
    MARP_REQUIRE(pos < replicas_.size());
    nodes.push_back(replicas_[pos]);
  }
  return quorum::make_node_set(std::move(nodes));
}

bool MappedQuorum::write_covered(const quorum::NodeSet& nodes) const {
  return inner_->write_covered(to_positions(nodes));
}

bool MappedQuorum::read_covered(const quorum::NodeSet& nodes) const {
  return inner_->read_covered(to_positions(nodes));
}

std::optional<quorum::NodeSet> MappedQuorum::pick_write_quorum(
    const quorum::NodeSet& excluded, net::NodeId prefer) const {
  const auto picked =
      inner_->pick_write_quorum(to_positions(excluded), position_of(prefer));
  if (!picked) return std::nullopt;
  return from_positions(*picked);
}

std::optional<quorum::NodeSet> MappedQuorum::pick_read_quorum(
    const quorum::NodeSet& excluded, net::NodeId prefer) const {
  const auto picked =
      inner_->pick_read_quorum(to_positions(excluded), position_of(prefer));
  if (!picked) return std::nullopt;
  return from_positions(*picked);
}

std::vector<quorum::NodeSet> MappedQuorum::write_quorums() const {
  std::vector<quorum::NodeSet> quorums;
  for (const quorum::NodeSet& q : inner_->write_quorums()) {
    quorums.push_back(from_positions(q));
  }
  return quorums;
}

std::vector<quorum::NodeSet> MappedQuorum::read_quorums() const {
  std::vector<quorum::NodeSet> quorums;
  for (const quorum::NodeSet& q : inner_->read_quorums()) {
    quorums.push_back(from_positions(q));
  }
  return quorums;
}

}  // namespace marp::membership

#include "membership/view.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace marp::membership {

bool MembershipView::is_member(net::NodeId node) const {
  return std::binary_search(active.begin(), active.end(), node);
}

const std::vector<net::NodeId>& MembershipView::replicas_of(shard::GroupId g) const {
  MARP_REQUIRE(g < group_replicas.size());
  return group_replicas[g];
}

quorum::NodeSet MembershipView::replica_set(shard::GroupId g) const {
  return quorum::make_node_set(replicas_of(g));
}

bool MembershipView::hosts(net::NodeId node, shard::GroupId g) const {
  const auto& replicas = replicas_of(g);
  return std::find(replicas.begin(), replicas.end(), node) != replicas.end();
}

std::vector<shard::GroupId> MembershipView::groups_hosted(net::NodeId node) const {
  std::vector<shard::GroupId> groups;
  for (shard::GroupId g = 0; g < group_replicas.size(); ++g) {
    if (hosts(node, g)) groups.push_back(g);
  }
  return groups;
}

void MembershipView::serialize(serial::Writer& w) const {
  w.varint(epoch);
  w.varint(active.size());
  for (const net::NodeId node : active) w.varint(node);
  w.varint(replication_factor);
  w.varint(group_replicas.size());
  for (const auto& replicas : group_replicas) {
    w.varint(replicas.size());
    for (const net::NodeId node : replicas) w.varint(node);
  }
}

MembershipView MembershipView::deserialize(serial::Reader& r) {
  MembershipView view;
  view.epoch = r.varint();
  const std::uint64_t n_active = r.length_prefix();
  view.active.reserve(n_active);
  for (std::uint64_t i = 0; i < n_active; ++i) {
    view.active.push_back(static_cast<net::NodeId>(r.varint()));
  }
  view.replication_factor = static_cast<std::uint32_t>(r.varint());
  const std::uint64_t n_groups = r.length_prefix();
  view.group_replicas.reserve(n_groups);
  for (std::uint64_t g = 0; g < n_groups; ++g) {
    const std::uint64_t n_replicas = r.length_prefix();
    std::vector<net::NodeId> replicas;
    replicas.reserve(n_replicas);
    for (std::uint64_t i = 0; i < n_replicas; ++i) {
      replicas.push_back(static_cast<net::NodeId>(r.varint()));
    }
    view.group_replicas.push_back(std::move(replicas));
  }
  return view;
}

}  // namespace marp::membership

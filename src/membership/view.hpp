// MembershipView — the epoch-stamped unit of dynamic membership.
//
// A view names the active server set at one epoch and materializes, per
// lock group, the ordered replica list the placement policy computed for
// it (see membership/placement.hpp). Everything the protocol needs is
// derived from the view a session was born under:
//
// * UpdateAgents/ReadAgents tour only `replicas_of(g)` for the groups in
//   their write/read set, instead of the whole cluster;
// * quorum geometries are instantiated *inside* each group's replica list
//   (membership/mapped_quorum.hpp), so intersection holds per (group,
//   epoch) — the Sutra & Shapiro partial-replication construction;
// * any server advertising a newer epoch forces the visiting agent to
//   abort-and-re-tour under the new view, so no session ever assembles a
//   quorum that mixes two views.
//
// Epoch 0 is reserved for "membership disabled": the seed protocol's
// static, fully replicated world. Real views start at epoch 1.
#pragma once

#include <cstdint>
#include <vector>

#include "net/message.hpp"
#include "quorum/quorum.hpp"
#include "serial/byte_buffer.hpp"
#include "shard/router.hpp"

namespace marp::membership {

struct MembershipView {
  /// Monotonic reconfiguration counter; 0 = static membership (disabled).
  std::uint64_t epoch = 0;
  /// Active servers of this epoch, sorted ascending.
  std::vector<net::NodeId> active;
  /// Copies requested per lock group (clamped to |active| at placement).
  std::uint32_t replication_factor = 0;
  /// Position-ordered replicas per lock group, materialized by the
  /// placement policy: `group_replicas[g][p]` is the node at quorum-
  /// geometry position p of group g (position 0 = the primary).
  std::vector<std::vector<net::NodeId>> group_replicas;

  bool enabled() const noexcept { return epoch != 0; }
  std::size_t num_groups() const noexcept { return group_replicas.size(); }

  bool is_member(net::NodeId node) const;
  /// Replicas of group `g`, position order. `g` must be < num_groups().
  const std::vector<net::NodeId>& replicas_of(shard::GroupId g) const;
  /// Same set, sorted ascending (the NodeSet the quorum layer expects).
  quorum::NodeSet replica_set(shard::GroupId g) const;
  bool hosts(net::NodeId node, shard::GroupId g) const;
  /// Groups whose replica list contains `node`, ascending.
  std::vector<shard::GroupId> groups_hosted(net::NodeId node) const;

  void serialize(serial::Writer& w) const;
  static MembershipView deserialize(serial::Reader& r);

  bool operator==(const MembershipView& other) const {
    return epoch == other.epoch && active == other.active &&
           replication_factor == other.replication_factor &&
           group_replicas == other.group_replicas;
  }
};

}  // namespace marp::membership

#include "membership/placement.hpp"

#include <algorithm>

#include "net/topology.hpp"
#include "util/assert.hpp"

namespace marp::membership {

namespace {

/// splitmix64 finalizer — a cheap, well-mixed 64-bit permutation.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t placement_score(shard::GroupId group, net::NodeId node) {
  return mix64((static_cast<std::uint64_t>(group) << 32) ^
               static_cast<std::uint64_t>(node) ^ 0x6d617270766965ULL);
}

MembershipView make_view(std::uint64_t epoch, std::vector<net::NodeId> active,
                         std::uint32_t replication_factor,
                         std::size_t num_groups,
                         const net::Topology* topology) {
  MARP_REQUIRE(epoch != 0);
  MARP_REQUIRE(!active.empty());
  MARP_REQUIRE(num_groups >= 1);
  std::sort(active.begin(), active.end());
  active.erase(std::unique(active.begin(), active.end()), active.end());

  MembershipView view;
  view.epoch = epoch;
  view.replication_factor = replication_factor;
  const std::size_t copies =
      replication_factor == 0
          ? active.size()
          : std::min<std::size_t>(replication_factor, active.size());

  view.group_replicas.reserve(num_groups);
  for (shard::GroupId g = 0; g < num_groups; ++g) {
    // Rendezvous: rank the active set by descending score for this group.
    std::vector<net::NodeId> ranked = active;
    std::sort(ranked.begin(), ranked.end(),
              [g](net::NodeId a, net::NodeId b) {
                const std::uint64_t sa = placement_score(g, a);
                const std::uint64_t sb = placement_score(g, b);
                return sa != sb ? sa > sb : a < b;
              });
    ranked.resize(copies);

    if (topology != nullptr && copies > 2) {
      // Keep the rendezvous winner as position 0 and order the rest by
      // ascending routing cost from it (ties by node id): the geometry's
      // low positions land on the primary's best-connected peers.
      const net::NodeId primary = ranked.front();
      std::sort(ranked.begin() + 1, ranked.end(),
                [topology, primary](net::NodeId a, net::NodeId b) {
                  const std::int64_t ca = topology->cost(primary, a);
                  const std::int64_t cb = topology->cost(primary, b);
                  return ca != cb ? ca < cb : a < b;
                });
    }
    view.group_replicas.push_back(std::move(ranked));
  }
  view.active = std::move(active);
  return view;
}

}  // namespace marp::membership

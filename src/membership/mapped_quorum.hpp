// MappedQuorum — a quorum geometry instantiated inside one lock group's
// replica list.
//
// The structural geometries (src/quorum/) are defined over abstract
// positions 0..R−1. Under partial replication a group's replicas are R
// arbitrary node ids in the placement policy's position order; this adapter
// translates node ids ↔ positions in both directions so decide(), the
// agents' tour planning, and the Theorem-2 intersection monitor all keep
// working on real node ids, unchanged. Intersection within the group is
// inherited from the inner geometry: any two position-space write quorums
// intersect, and the position→node map is a bijection.
#pragma once

#include <memory>
#include <vector>

#include "quorum/quorum.hpp"

namespace marp::membership {

class MappedQuorum final : public quorum::QuorumSystem {
 public:
  /// `replicas` is the group's position-ordered replica list (position i =
  /// replicas[i]); `spec` names the inner geometry built over |replicas|
  /// positions. Weighted votes have no analogue here — partial replication
  /// composes with the structural geometries only.
  MappedQuorum(const quorum::QuorumSpec& spec,
               std::vector<net::NodeId> replicas);

  quorum::Geometry geometry() const noexcept override {
    return inner_->geometry();
  }
  bool write_covered(const quorum::NodeSet& nodes) const override;
  bool read_covered(const quorum::NodeSet& nodes) const override;
  std::optional<quorum::NodeSet> pick_write_quorum(
      const quorum::NodeSet& excluded, net::NodeId prefer) const override;
  std::optional<quorum::NodeSet> pick_read_quorum(
      const quorum::NodeSet& excluded, net::NodeId prefer) const override;
  std::vector<quorum::NodeSet> write_quorums() const override;
  std::vector<quorum::NodeSet> read_quorums() const override;
  std::size_t min_write_size() const override {
    return inner_->min_write_size();
  }

  const std::vector<net::NodeId>& replicas() const noexcept {
    return replicas_;
  }
  const quorum::QuorumSystem& inner() const noexcept { return *inner_; }

 private:
  /// Position of `node`, or kInvalidNode when it is not a replica.
  net::NodeId position_of(net::NodeId node) const;
  quorum::NodeSet to_positions(const quorum::NodeSet& nodes) const;
  quorum::NodeSet from_positions(const quorum::NodeSet& positions) const;

  std::vector<net::NodeId> replicas_;  ///< position → node id
  std::unique_ptr<quorum::QuorumSystem> inner_;
};

}  // namespace marp::membership

// Replica placement: which active servers replicate which lock group, and
// in what position order.
//
// Member selection is rendezvous (highest-random-weight) hashing over the
// active set: each (group, node) pair gets a deterministic score and the
// `replication_factor` best-scoring nodes host the group. Rendezvous gives
// the stability dynamic membership needs — a join or leave only moves the
// groups whose score ranking the changed node actually enters or exits,
// instead of reshuffling the whole keyspace.
//
// Position ordering maps the quorum geometry onto the latency topology:
// position 0 (the primary — a tree geometry's root, a grid's first cell)
// is the rendezvous winner, and the remaining positions are filled in
// ascending routing cost from it, so the geometry's most-load-bearing
// positions sit on the best-connected replicas. Without a topology the
// rendezvous score order is kept (still deterministic on every node).
#pragma once

#include <cstdint>
#include <vector>

#include "membership/view.hpp"

namespace marp::net {
struct Topology;
}

namespace marp::membership {

/// Deterministic score of hosting `group` on `node` (exposed for tests).
std::uint64_t placement_score(shard::GroupId group, net::NodeId node);

/// Build the view of `epoch` over `active` (sorted internally): one
/// position-ordered replica list per lock group. `replication_factor` is
/// clamped to |active|; 0 means full replication over `active`.
MembershipView make_view(std::uint64_t epoch, std::vector<net::NodeId> active,
                         std::uint32_t replication_factor,
                         std::size_t num_groups,
                         const net::Topology* topology = nullptr);

}  // namespace marp::membership

// Outcome collection and the paper's three metrics.
//
// §4 defines: ALT — average time for a mobile agent to obtain the lock;
// ATT — average total time to process an update request (including the
// UPDATE/COMMIT messaging); PRK — percentage of requests whose lock was
// obtained by visiting K servers. TraceCollector computes all three plus
// general latency statistics from the stream of Outcomes.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "replica/request.hpp"

namespace marp::workload {

class TraceCollector {
 public:
  /// Record one finished request (install via protocol's outcome handler).
  void record(const replica::Outcome& outcome);

  std::size_t completed() const noexcept { return outcomes_.size(); }
  std::uint64_t successful_writes() const noexcept { return successful_writes_; }
  std::uint64_t failed_writes() const noexcept { return failed_writes_; }
  std::uint64_t reads() const noexcept { return reads_; }

  /// ALT in milliseconds (mean over successful writes).
  double average_lock_time_ms() const;
  /// ATT in milliseconds (mean over successful writes; dispatch → commit).
  double average_total_time_ms() const;
  /// Client-perceived latency (submission → completion), milliseconds.
  double average_client_latency_ms() const;

  /// PRK: visits-count → percentage of successful writes (sums to ~100).
  std::map<std::uint32_t, double> prk() const;

  /// p-th percentile (0..100) of total update time, milliseconds.
  double total_time_percentile_ms(double p) const;

  const std::vector<replica::Outcome>& outcomes() const noexcept { return outcomes_; }
  void clear();

 private:
  std::vector<replica::Outcome> outcomes_;
  std::uint64_t successful_writes_ = 0;
  std::uint64_t failed_writes_ = 0;
  std::uint64_t reads_ = 0;
};

}  // namespace marp::workload

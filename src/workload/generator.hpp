// Client workload generation.
//
// Matches the paper's setup (§4): "An exponential random number generator
// was used to generate requests. In all experiments, for each server,
// requests were generated at different rates." Each server gets an
// independent Poisson arrival stream with the configured mean inter-arrival
// time; items are picked uniformly or Zipf-skewed; a read/write mix lets the
// read-dominated scenarios of the introduction be expressed.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "replica/request.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace marp::workload {

/// Shape of each server's arrival process.
enum class ArrivalProcess : std::uint8_t {
  Poisson,  ///< exponential gaps (the paper's generator)
  Uniform,  ///< gaps uniform in [0.5, 1.5] × mean (low-variance control)
  Bursty    ///< on/off: bursts of closely spaced requests, long gaps between
};

struct WorkloadConfig {
  ArrivalProcess arrivals = ArrivalProcess::Poisson;
  /// Mean request inter-arrival time per server (the paper's x-axis). All
  /// processes are parameterized to this mean, so rates stay comparable.
  double mean_interarrival_ms = 50.0;
  /// Bursty only: requests per burst. Within a burst, gaps are mean/10;
  /// gaps between bursts are scaled so the overall mean is preserved.
  std::size_t burst_size = 8;
  /// Fraction of requests that are writes (paper's figures use writes only).
  double write_fraction = 1.0;
  /// Write requests emitted per write arrival, each with an independently
  /// drawn key and the same submission time. Paired with an equal
  /// `MarpConfig::batch_size` they ride one UpdateAgent as a multi-key
  /// write-set — the workload that exercises lock-group sharding.
  std::size_t writes_per_update = 1;
  /// Key space size; 1 reproduces the paper's single replicated object.
  std::size_t num_keys = 1;
  /// Zipf skew for key selection; 0 = uniform.
  double zipf_s = 0.0;
  /// Bytes of payload attached to each write (affects wire/migration cost).
  std::size_t value_bytes = 64;
  /// Stop generating at this virtual time.
  sim::SimTime duration = sim::SimTime::seconds(10);
  /// Optional hard cap per server.
  std::uint64_t max_requests_per_server = std::numeric_limits<std::uint64_t>::max();
};

class RequestGenerator {
 public:
  /// `submit` receives each generated request at its arrival time.
  using SubmitFn = std::function<void(const replica::Request&)>;

  RequestGenerator(sim::Simulator& simulator, std::size_t servers,
                   WorkloadConfig config, SubmitFn submit);

  /// Schedule the first arrival on every server.
  void start();

  std::uint64_t generated() const noexcept { return generated_; }
  std::uint64_t generated_writes() const noexcept { return generated_writes_; }
  std::uint64_t generated_reads() const noexcept {
    return generated_ - generated_writes_;
  }

 private:
  void schedule_next(std::uint32_t server);
  double next_gap_ms(std::uint32_t server);
  void emit(std::uint32_t server);
  std::string pick_key(std::uint32_t server);

  sim::Simulator& sim_;
  std::size_t servers_;
  WorkloadConfig config_;
  SubmitFn submit_;
  std::vector<sim::Rng> arrival_rng_;
  std::vector<sim::Rng> mix_rng_;
  std::vector<std::uint64_t> per_server_count_;
  std::vector<std::size_t> burst_remaining_;
  std::unique_ptr<sim::ZipfDistribution> zipf_;
  std::uint64_t next_id_ = 1;
  std::uint64_t generated_ = 0;
  std::uint64_t generated_writes_ = 0;
};

}  // namespace marp::workload

#include "workload/generator.hpp"

#include "util/assert.hpp"

namespace marp::workload {

RequestGenerator::RequestGenerator(sim::Simulator& simulator, std::size_t servers,
                                   WorkloadConfig config, SubmitFn submit)
    : sim_(simulator),
      servers_(servers),
      config_(config),
      submit_(std::move(submit)),
      per_server_count_(servers, 0),
      burst_remaining_(servers, 0) {
  MARP_REQUIRE(servers_ >= 1);
  MARP_REQUIRE(config_.mean_interarrival_ms > 0.0);
  MARP_REQUIRE(config_.num_keys >= 1);
  MARP_REQUIRE(config_.writes_per_update >= 1);
  MARP_REQUIRE(submit_ != nullptr);
  arrival_rng_.reserve(servers_);
  mix_rng_.reserve(servers_);
  for (std::size_t s = 0; s < servers_; ++s) {
    arrival_rng_.push_back(sim_.rng_factory().stream("workload-arrival", s));
    mix_rng_.push_back(sim_.rng_factory().stream("workload-mix", s));
  }
  if (config_.zipf_s > 0.0 && config_.num_keys > 1) {
    zipf_ = std::make_unique<sim::ZipfDistribution>(config_.num_keys, config_.zipf_s);
  }
}

void RequestGenerator::start() {
  for (std::uint32_t s = 0; s < servers_; ++s) schedule_next(s);
}

double RequestGenerator::next_gap_ms(std::uint32_t server) {
  const double mean = config_.mean_interarrival_ms;
  switch (config_.arrivals) {
    case ArrivalProcess::Poisson:
      return arrival_rng_[server].exponential(mean);
    case ArrivalProcess::Uniform:
      return arrival_rng_[server].uniform(0.5 * mean, 1.5 * mean);
    case ArrivalProcess::Bursty: {
      const double intra = mean / 10.0;
      if (burst_remaining_[server] > 0) {
        --burst_remaining_[server];
        return arrival_rng_[server].exponential(intra);
      }
      burst_remaining_[server] = config_.burst_size - 1;
      // Inter-burst gap chosen so the long-run mean per request stays at
      // `mean`: B·mean = (B−1)·intra + gap.
      const double burst = static_cast<double>(config_.burst_size);
      const double gap = burst * mean - (burst - 1.0) * intra;
      return arrival_rng_[server].exponential(gap);
    }
  }
  return mean;
}

void RequestGenerator::schedule_next(std::uint32_t server) {
  if (per_server_count_[server] >= config_.max_requests_per_server) return;
  const sim::SimTime at = sim_.now() + sim::SimTime::millis(next_gap_ms(server));
  if (at > config_.duration) return;
  sim_.schedule_at(at, [this, server] { emit(server); });
}

std::string RequestGenerator::pick_key(std::uint32_t server) {
  if (config_.num_keys == 1) return "item";
  std::size_t index;
  if (zipf_) {
    index = (*zipf_)(mix_rng_[server]);
  } else {
    index = static_cast<std::size_t>(mix_rng_[server].bounded(config_.num_keys));
  }
  return "item-" + std::to_string(index);
}

void RequestGenerator::emit(std::uint32_t server) {
  // Draw order (key first, then mix) matches the original single-request
  // emitter so seeded runs with writes_per_update == 1 replay identically.
  const std::string first_key = pick_key(server);
  const bool is_write = mix_rng_[server].bernoulli(config_.write_fraction);
  // A write arrival stands for one logical update; with writes_per_update
  // > 1 it expands into a multi-key write-set submitted at the same instant
  // (keys drawn independently, so they may repeat).
  const std::size_t fan_out = is_write ? config_.writes_per_update : 1;
  // max_requests_per_server caps logical arrivals, not expanded writes:
  // one increment per emit, whatever the fan-out.
  ++per_server_count_[server];
  for (std::size_t i = 0; i < fan_out; ++i) {
    replica::Request request;
    request.id = next_id_++;
    request.origin = server;
    request.submitted = sim_.now();
    request.key = i == 0 ? first_key : pick_key(server);
    if (is_write) {
      request.kind = replica::RequestKind::Write;
      request.value = "v" + std::to_string(request.id);
      if (request.value.size() < config_.value_bytes) {
        request.value.resize(config_.value_bytes, 'x');
      }
      ++generated_writes_;
    } else {
      request.kind = replica::RequestKind::Read;
    }
    ++generated_;
    submit_(request);
  }
  schedule_next(server);
}

}  // namespace marp::workload

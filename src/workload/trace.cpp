#include "workload/trace.hpp"

#include <algorithm>
#include <cmath>

namespace marp::workload {

void TraceCollector::record(const replica::Outcome& outcome) {
  if (outcome.kind == replica::RequestKind::Read) {
    ++reads_;
  } else if (outcome.success) {
    ++successful_writes_;
  } else {
    ++failed_writes_;
  }
  outcomes_.push_back(outcome);
}

double TraceCollector::average_lock_time_ms() const {
  double sum = 0.0;
  std::uint64_t count = 0;
  for (const auto& o : outcomes_) {
    if (o.kind != replica::RequestKind::Write || !o.success) continue;
    sum += o.lock_latency().as_millis();
    ++count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double TraceCollector::average_total_time_ms() const {
  double sum = 0.0;
  std::uint64_t count = 0;
  for (const auto& o : outcomes_) {
    if (o.kind != replica::RequestKind::Write || !o.success) continue;
    sum += o.update_latency().as_millis();
    ++count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

double TraceCollector::average_client_latency_ms() const {
  double sum = 0.0;
  std::uint64_t count = 0;
  for (const auto& o : outcomes_) {
    if (!o.success) continue;
    sum += o.total_latency().as_millis();
    ++count;
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

std::map<std::uint32_t, double> TraceCollector::prk() const {
  std::map<std::uint32_t, std::uint64_t> counts;
  std::uint64_t total = 0;
  for (const auto& o : outcomes_) {
    if (o.kind != replica::RequestKind::Write || !o.success) continue;
    ++counts[o.servers_visited];
    ++total;
  }
  std::map<std::uint32_t, double> out;
  if (total == 0) return out;
  for (const auto& [visits, count] : counts) {
    out[visits] = 100.0 * static_cast<double>(count) / static_cast<double>(total);
  }
  return out;
}

double TraceCollector::total_time_percentile_ms(double p) const {
  std::vector<double> samples;
  for (const auto& o : outcomes_) {
    if (o.kind != replica::RequestKind::Write || !o.success) continue;
    samples.push_back(o.update_latency().as_millis());
  }
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

void TraceCollector::clear() {
  outcomes_.clear();
  successful_writes_ = failed_writes_ = reads_ = 0;
}

}  // namespace marp::workload

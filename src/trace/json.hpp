// Minimal JSON document model + recursive-descent parser.
//
// Exists so the trace exporter's output can be validated without external
// dependencies: the round-trip unit test and tools/trace_check both parse
// through this. Handles the full JSON grammar (objects, arrays, strings
// with escapes, numbers, booleans, null); throws std::runtime_error with a
// byte offset on malformed input. Not a general-purpose library: documents
// are small (a trace file), so the model favours simplicity over speed.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace marp::trace {

struct JsonValue {
  enum class Type : std::uint8_t { Null, Bool, Number, String, Array, Object };

  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  ///< insertion order

  bool is_object() const noexcept { return type == Type::Object; }
  bool is_array() const noexcept { return type == Type::Array; }
  bool is_string() const noexcept { return type == Type::String; }
  bool is_number() const noexcept { return type == Type::Number; }

  /// Member lookup on objects; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const noexcept;
};

/// Parses exactly one JSON document (trailing whitespace allowed, trailing
/// garbage is an error). Throws std::runtime_error on malformed input.
JsonValue parse_json(std::string_view text);

}  // namespace marp::trace

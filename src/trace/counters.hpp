// CounterRegistry — one flat, named table of every counter a run produced.
//
// The simulator grew counters in four unrelated places (Network's
// TrafficStats, AgentPlatform's PlatformStats, MarpProtocol's MarpStats and
// ProtocolAnomalies); each had its own ad-hoc printing. The registry folds
// them into dotted names ("net.messages_sent", "marp.anomaly.stale_acks")
// so tools can dump, diff, and export one table. Population happens at the
// runner layer (runner::build_counter_registry) — this type stays a dumb
// ordered name → value map with rendering helpers.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace marp::trace {

class CounterRegistry {
 public:
  /// Sets (or overwrites) one counter. Insertion order is preserved so the
  /// dumped table groups by subsystem prefix naturally.
  void set(std::string name, std::uint64_t value);
  /// Adds to an existing counter (creates it at `value` if absent).
  void add(std::string_view name, std::uint64_t value);

  std::uint64_t get(std::string_view name) const noexcept;  ///< 0 if absent
  bool contains(std::string_view name) const noexcept;
  std::size_t size() const noexcept { return entries_.size(); }
  const std::vector<std::pair<std::string, std::uint64_t>>& entries()
      const noexcept {
    return entries_;
  }

  /// Aligned two-column table, one counter per line.
  void print(std::ostream& os, bool skip_zero = false) const;

 private:
  std::vector<std::pair<std::string, std::uint64_t>> entries_;
};

}  // namespace marp::trace

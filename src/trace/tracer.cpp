#include "trace/tracer.hpp"

#include <algorithm>

namespace marp::trace {

const char* span_name(SpanKind kind) noexcept {
  switch (kind) {
    case SpanKind::Session: return "session";
    case SpanKind::Migration: return "migration";
    case SpanKind::Visit: return "visit";
    case SpanKind::LockWait: return "lock-wait";
    case SpanKind::UpdateRound: return "update-round";
    case SpanKind::CommitFanout: return "commit-fanout";
    case SpanKind::QuorumWin: return "quorum-win";
    case SpanKind::Retry: return "retry";
    case SpanKind::Backoff: return "backoff";
    case SpanKind::Requeue: return "requeue";
    case SpanKind::Abort: return "abort";
    case SpanKind::BatchWait: return "batch-wait";
    case SpanKind::LockListWait: return "ll-wait";
    case SpanKind::AntiEntropy: return "anti-entropy";
    case SpanKind::NetDrop: return "net-drop";
    case SpanKind::NetRetransmit: return "net-retransmit";
  }
  return "?";
}

bool agent_track(SpanKind kind) noexcept {
  switch (kind) {
    case SpanKind::Session:
    case SpanKind::Migration:
    case SpanKind::Visit:
    case SpanKind::LockWait:
    case SpanKind::UpdateRound:
    case SpanKind::CommitFanout:
    case SpanKind::QuorumWin:
    case SpanKind::Retry:
    case SpanKind::Backoff:
    case SpanKind::Requeue:
    case SpanKind::Abort:
      return true;
    default:
      return false;
  }
}

bool instant_kind(SpanKind kind) noexcept {
  switch (kind) {
    case SpanKind::QuorumWin:
    case SpanKind::Retry:
    case SpanKind::Backoff:
    case SpanKind::Requeue:
    case SpanKind::Abort:
    case SpanKind::AntiEntropy:
    case SpanKind::NetDrop:
    case SpanKind::NetRetransmit:
      return true;
    default:
      return false;
  }
}

Tracer::Tracer(sim::Simulator& simulator, std::size_t capacity)
    : sim_(simulator), capacity_(std::max<std::size_t>(1, capacity)) {
  ring_.reserve(std::min<std::size_t>(capacity_, 4096));
}

std::vector<SpanRecord> Tracer::records() const {
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<SpanRecord> Tracer::open_records() const {
  std::vector<SpanRecord> out;
  out.reserve(open_.size());
  for (const auto& [key, record] : open_) out.push_back(record);
  return out;
}

void Tracer::clear() {
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
  unmatched_ends_ = 0;
  open_.clear();
}

void Tracer::push(SpanRecord record) {
  if (ring_.size() < capacity_) {
    ring_.push_back(record);
    return;
  }
  ring_[head_] = record;
  head_ = (head_ + 1) % capacity_;
  ++dropped_;
}

void Tracer::begin(const OpenKey& key, const SpanRecord& record) {
  // First begin wins: a second begin for the same key (e.g. a refresh()
  // re-appending an already-queued agent) keeps the original start time.
  open_.emplace(key, record);
}

void Tracer::end(const OpenKey& key, std::uint64_t aux2) {
  const auto it = open_.find(key);
  if (it == open_.end()) {
    ++unmatched_ends_;
    return;
  }
  SpanRecord record = it->second;
  open_.erase(it);
  record.end_us = now_us();
  record.aux2 = aux2;
  push(record);
}

template <typename Pred>
void Tracer::end_matching(Pred pred, std::uint64_t aux2) {
  const std::int64_t now = now_us();
  for (auto it = open_.begin(); it != open_.end();) {
    if (pred(it->first)) {
      SpanRecord record = it->second;
      record.end_us = now;
      record.aux2 = aux2;
      push(record);
      it = open_.erase(it);
    } else {
      ++it;
    }
  }
}

void Tracer::mark(SpanKind kind, net::NodeId node, const agent::AgentId& agent,
                  std::uint64_t aux, std::uint64_t aux2) {
  const std::int64_t now = now_us();
  push(SpanRecord{now, now, kind, node, agent, aux, aux2});
}

// ---- PlatformObserver ----

void Tracer::on_agent_created(const agent::AgentId& id, const std::string& type,
                              net::NodeId at) {
  (void)type;
  if (!enabled_) return;
  begin({SpanKind::Session, id},
        SpanRecord{now_us(), 0, SpanKind::Session, at, id, 0, 0});
}

void Tracer::on_agent_disposed(const agent::AgentId& id, net::NodeId at) {
  (void)at;
  if (!enabled_) return;
  // Sweep the agent's whole track: phases the explicit hooks did not close
  // (a fire-and-forget CommitFanout, a Visit cut short by abort) end at the
  // instant the agent ceased to exist. Server-side LockListWait spans stay
  // open on purpose — remote servers sweep those entries later.
  end_matching([&](const OpenKey& key) {
    return key.agent == id && agent_track(key.kind) && key.kind != SpanKind::Session;
  });
  end({SpanKind::Session, id});
}

void Tracer::on_migration_started(const agent::AgentId& id, net::NodeId from,
                                  net::NodeId to, std::size_t bytes) {
  (void)bytes;
  if (!enabled_) return;
  begin({SpanKind::Migration, id},
        SpanRecord{now_us(), 0, SpanKind::Migration, to, id, from, 0});
}

void Tracer::on_migration_completed(const agent::AgentId& id, net::NodeId at) {
  (void)at;
  if (!enabled_) return;
  end({SpanKind::Migration, id}, /*aux2=*/0);
}

void Tracer::on_migration_failed(const agent::AgentId& id, net::NodeId from,
                                 net::NodeId to) {
  (void)from, (void)to;
  if (!enabled_) return;
  end({SpanKind::Migration, id}, /*aux2=*/1);
}

// ---- NetworkObserver ----

void Tracer::on_message_dropped(const net::Message& message,
                                net::DropReason reason) {
  if (!enabled_) return;
  // Drawn on the destination's track (that is where the silence is felt),
  // except sender-side drops, which never left the source.
  const bool at_source = reason == net::DropReason::SourceDown ||
                         reason == net::DropReason::LinkCut;
  mark(SpanKind::NetDrop, at_source ? message.src : message.dst, {},
       message.type, static_cast<std::uint64_t>(reason));
}

void Tracer::on_transport_retransmit(const net::Message& message) {
  if (!enabled_) return;
  mark(SpanKind::NetRetransmit, message.src, {}, message.type);
}

// ---- MARP hooks ----

void Tracer::visit_begin(const agent::AgentId& id, net::NodeId at) {
  if (!enabled_) return;
  begin({SpanKind::Visit, id},
        SpanRecord{now_us(), 0, SpanKind::Visit, at, id, 0, 0});
}

void Tracer::visit_end(const agent::AgentId& id) {
  if (!enabled_) return;
  end({SpanKind::Visit, id});
}

void Tracer::wait_begin(const agent::AgentId& id, net::NodeId at) {
  if (!enabled_) return;
  begin({SpanKind::LockWait, id},
        SpanRecord{now_us(), 0, SpanKind::LockWait, at, id, 0, 0});
}

void Tracer::wait_end(const agent::AgentId& id) {
  if (!enabled_) return;
  if (!open_.contains({SpanKind::LockWait, id})) return;  // not parked: no-op
  end({SpanKind::LockWait, id});
}

void Tracer::update_round_begin(const agent::AgentId& id, net::NodeId at,
                                std::uint32_t attempt) {
  if (!enabled_) return;
  begin({SpanKind::UpdateRound, id},
        SpanRecord{now_us(), 0, SpanKind::UpdateRound, at, id, attempt, 0});
}

void Tracer::update_round_end(const agent::AgentId& id, std::uint64_t outcome) {
  if (!enabled_) return;
  end({SpanKind::UpdateRound, id}, outcome);
}

void Tracer::quorum_win(const agent::AgentId& id, net::NodeId at) {
  if (!enabled_) return;
  mark(SpanKind::QuorumWin, at, id);
}

void Tracer::commit_fanout_begin(const agent::AgentId& id, net::NodeId at,
                                 bool commit) {
  if (!enabled_) return;
  begin({SpanKind::CommitFanout, id},
        SpanRecord{now_us(), 0, SpanKind::CommitFanout, at, id,
                   commit ? 0u : 1u, 0});
}

void Tracer::commit_fanout_end(const agent::AgentId& id) {
  if (!enabled_) return;
  if (!open_.contains({SpanKind::CommitFanout, id})) return;
  end({SpanKind::CommitFanout, id});
}

void Tracer::retry(const agent::AgentId& id, net::NodeId at,
                   std::uint64_t channel) {
  if (!enabled_) return;
  mark(SpanKind::Retry, at, id, channel);
}

void Tracer::backoff(const agent::AgentId& id, net::NodeId at,
                     std::int64_t delay_us) {
  if (!enabled_) return;
  mark(SpanKind::Backoff, at, id, static_cast<std::uint64_t>(delay_us));
}

void Tracer::requeue(const agent::AgentId& id, net::NodeId at) {
  if (!enabled_) return;
  mark(SpanKind::Requeue, at, id);
}

void Tracer::abort_mark(const agent::AgentId& id, net::NodeId at) {
  if (!enabled_) return;
  mark(SpanKind::Abort, at, id);
}

void Tracer::batch_open(net::NodeId node) {
  if (!enabled_) return;
  begin({SpanKind::BatchWait, {}, node},
        SpanRecord{now_us(), 0, SpanKind::BatchWait, node, {}, 0, 0});
}

void Tracer::batch_dispatch(net::NodeId node, std::size_t batch_size) {
  if (!enabled_) return;
  const auto it = open_.find({SpanKind::BatchWait, {}, node});
  if (it != open_.end()) it->second.aux = batch_size;
  end({SpanKind::BatchWait, {}, node});
}

void Tracer::ll_enqueue(const agent::AgentId& id, net::NodeId node,
                        std::uint64_t group) {
  if (!enabled_) return;
  begin({SpanKind::LockListWait, id, node, group},
        SpanRecord{now_us(), 0, SpanKind::LockListWait, node, id, group, 0});
}

void Tracer::ll_remove(const agent::AgentId& id, net::NodeId node,
                       std::uint64_t group) {
  if (!enabled_) return;
  end({SpanKind::LockListWait, id, node, group});
}

void Tracer::ll_remove_all(const agent::AgentId& id, net::NodeId node) {
  if (!enabled_) return;
  end_matching([&](const OpenKey& key) {
    return key.kind == SpanKind::LockListWait && key.agent == id &&
           key.node == node;
  });
}

void Tracer::node_reset(net::NodeId node) {
  if (!enabled_) return;
  end_matching([&](const OpenKey& key) {
    return (key.kind == SpanKind::LockListWait ||
            key.kind == SpanKind::BatchWait) &&
           key.node == node;
  });
}

void Tracer::anti_entropy(net::NodeId node) {
  if (!enabled_) return;
  mark(SpanKind::AntiEntropy, node, {});
}

}  // namespace marp::trace

// Multi-node trace merge: turns one TraceDump per cluster member into a
// single Perfetto timeline with one pid per node.
//
// Each node's spans ride its own trace clock (steady_clock − shared epoch,
// plus any injected skew), so the dumps cannot be concatenated naively.
// Alignment is NTP-style: every traced wire frame carries the sender's
// send timestamp and the receiver stamps arrival, giving per-directed-link
// deltas  recv − send = θ_recv − θ_send + delay.  For a link pair take
//   m1 = min(recv_B − send_A),  m2 = min(recv_A − send_B)
// then  θ_B − θ_A = (m1 − m2) / 2  and  min one-way delay = (m1 + m2) / 2.
// Offsets propagate from the reference node over the sample graph (BFS), so
// any node that exchanged traced frames with the connected component gets a
// correction; within a node the correction is a constant, so local ordering
// and durations are untouched.
//
// The merge also closes the cross-process migration spans (open on the
// source, invisible on the destination) and links them with flow events,
// and distils the aligned per-link one-way delays into a calibration table
// the simulator's CalibratedLatency can replay.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "net/latency.hpp"
#include "rpc/control.hpp"

namespace marp::trace {

struct MergeOptions {
  /// Node whose clock the merged timeline adopts.
  net::NodeId reference = 0;
  /// Inverse-CDF table resolution for the calibration output (entries per
  /// link; clamped to the sample count).
  std::size_t calibration_quantiles = 33;
};

struct MergeResult {
  /// θ_node − θ_reference per node id; subtracting it aligns that node's
  /// timestamps onto the reference clock.
  std::vector<std::int64_t> offsets_us;
  /// False = no traced-frame path to the reference (offset left at 0).
  std::vector<bool> aligned;
  /// Aligned one-way-delay distribution per directed link.
  net::CalibrationTable calibration;
  std::size_t spans_emitted = 0;
  std::size_t flows_emitted = 0;
  /// Open spans with no destination match (dropped from the timeline).
  std::size_t open_unmatched = 0;
  /// Sum of per-node ring evictions + link-sample cap drops (merge honesty).
  std::uint64_t spans_dropped = 0;
  std::uint64_t samples_dropped = 0;
};

/// Clock alignment + calibration only, no emission (unit-testable core).
MergeResult align_clocks(const std::vector<rpc::NodeTrace>& traces,
                         const MergeOptions& options = {});

/// Full pipeline: align, stitch migrations, emit one Chrome-trace JSON
/// document with one pid per node (pid = node + 1).
MergeResult write_merged_trace(std::ostream& os,
                               const std::vector<rpc::NodeTrace>& traces,
                               const MergeOptions& options = {});

/// Calibration file round trip (what --calibration-out writes and
/// --net-calibration reads).
void write_calibration_json(std::ostream& os, const net::CalibrationTable& table);
/// Throws std::runtime_error on malformed input.
net::CalibrationTable parse_calibration_json(const std::string& text);

}  // namespace marp::trace

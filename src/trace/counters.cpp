#include "trace/counters.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>

namespace marp::trace {

void CounterRegistry::set(std::string name, std::uint64_t value) {
  for (auto& [existing, existing_value] : entries_) {
    if (existing == name) {
      existing_value = value;
      return;
    }
  }
  entries_.emplace_back(std::move(name), value);
}

void CounterRegistry::add(std::string_view name, std::uint64_t value) {
  for (auto& [existing, existing_value] : entries_) {
    if (existing == name) {
      existing_value += value;
      return;
    }
  }
  entries_.emplace_back(std::string(name), value);
}

std::uint64_t CounterRegistry::get(std::string_view name) const noexcept {
  for (const auto& [existing, value] : entries_) {
    if (existing == name) return value;
  }
  return 0;
}

bool CounterRegistry::contains(std::string_view name) const noexcept {
  return std::any_of(entries_.begin(), entries_.end(),
                     [&](const auto& entry) { return entry.first == name; });
}

void CounterRegistry::print(std::ostream& os, bool skip_zero) const {
  std::size_t width = 0;
  for (const auto& [name, value] : entries_) {
    if (skip_zero && value == 0) continue;
    width = std::max(width, name.size());
  }
  for (const auto& [name, value] : entries_) {
    if (skip_zero && value == 0) continue;
    os << "  " << std::left << std::setw(static_cast<int>(width) + 2) << name
       << std::right << value << '\n';
  }
}

}  // namespace marp::trace

#include "trace/json.hpp"

#include <cctype>
#include <charconv>
#include <stdexcept>

namespace marp::trace {

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (type != Type::Object) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at byte " +
                             std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue value;
        value.type = JsonValue::Type::String;
        value.str = parse_string();
        return value;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue{JsonValue::Type::Bool, true};
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue{JsonValue::Type::Bool, false};
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    JsonValue value;
    value.type = JsonValue::Type::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      value.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return value;
    }
  }

  JsonValue parse_array() {
    JsonValue value;
    value.type = JsonValue::Type::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return value;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char escape = peek();
      ++pos_;
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + i];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          pos_ += 4;
          // UTF-8 encode the BMP code point (surrogate pairs are passed
          // through as two 3-byte sequences; the exporter never emits them).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    JsonValue value;
    value.type = JsonValue::Type::Number;
    const auto result = std::from_chars(text_.data() + start,
                                        text_.data() + pos_, value.number);
    if (result.ec != std::errc{} || result.ptr != text_.data() + pos_) {
      fail("bad number");
    }
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace marp::trace

#include "trace/export.hpp"

#include <cstdio>
#include <map>
#include <ostream>
#include <string>

namespace marp::trace {

namespace {

constexpr int kServersPid = 1;
constexpr int kAgentsPid = 2;

std::string escaped(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_metadata(std::ostream& os, const char* what, int pid, int tid,
                    const std::string& name, bool& first) {
  if (!first) os << ",\n";
  first = false;
  os << R"({"name":")" << what << R"(","ph":"M","pid":)" << pid << ",\"tid\":"
     << tid << R"(,"args":{"name":")" << escaped(name) << "\"}}";
}

const char* outcome_name(std::uint64_t outcome) {
  switch (outcome) {
    case 0: return "won";
    case 1: return "demoted";
    case 2: return "aborted";
  }
  return "?";
}

const char* retry_channel_name(std::uint64_t channel) {
  switch (channel) {
    case kRetryAck: return "ack";
    case kRetryClaim: return "claim";
    case kRetryMigration: return "migration";
    case kRetryCommit: return "commit";
  }
  return "?";
}

void write_args(std::ostream& os, const SpanRecord& record) {
  os << R"(,"args":{)";
  bool first = true;
  auto field = [&](const char* key) -> std::ostream& {
    if (!first) os << ',';
    first = false;
    os << '"' << key << "\":";
    return os;
  };
  if (agent_track(record.kind)) {
    field("node") << record.node;
  } else if (record.agent != agent::AgentId{}) {
    field("agent") << '"' << escaped(record.agent.to_string()) << '"';
  }
  switch (record.kind) {
    case SpanKind::Migration:
      field("from") << record.aux;
      if (record.aux2 != 0) field("failed") << "true";
      break;
    case SpanKind::UpdateRound:
      field("attempt") << record.aux;
      field("outcome") << '"' << outcome_name(record.aux2) << '"';
      break;
    case SpanKind::CommitFanout:
      field("mode") << (record.aux == 0 ? "\"commit\"" : "\"release\"");
      break;
    case SpanKind::LockListWait:
      field("group") << record.aux;
      break;
    case SpanKind::BatchWait:
      field("batch") << record.aux;
      break;
    case SpanKind::Retry:
      field("channel") << '"' << retry_channel_name(record.aux) << '"';
      break;
    case SpanKind::Backoff:
      field("delay_us") << record.aux;
      break;
    case SpanKind::NetDrop:
      field("msg_type") << record.aux;
      field("reason") << '"'
                      << net::drop_reason_name(
                             static_cast<net::DropReason>(record.aux2))
                      << '"';
      break;
    case SpanKind::NetRetransmit:
      field("msg_type") << record.aux;
      break;
    default:
      break;
  }
  os << '}';
}

}  // namespace

void write_chrome_trace(std::ostream& os, const Tracer& tracer,
                        const CounterRegistry* counters) {
  const std::vector<SpanRecord> records = tracer.records();

  // Stable agent → tid mapping, in order of first appearance. Servers keep
  // tid = node + 1 (Perfetto hides tid 0).
  std::map<agent::AgentId, int> agent_tids;
  std::map<net::NodeId, bool> server_seen;
  for (const SpanRecord& record : records) {
    if (agent_track(record.kind)) {
      agent_tids.emplace(record.agent, 0);
    } else {
      server_seen[record.node] = true;
    }
  }
  {
    // std::map iterates in AgentId order; re-number by first appearance so
    // the track order matches the run's chronology.
    int next = 1;
    std::map<agent::AgentId, int> ordered;
    for (const SpanRecord& record : records) {
      if (!agent_track(record.kind)) continue;
      if (ordered.emplace(record.agent, next).second) ++next;
    }
    agent_tids = std::move(ordered);
  }

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  write_metadata(os, "process_name", kServersPid, 0, "servers", first);
  write_metadata(os, "process_name", kAgentsPid, 0, "agents", first);
  for (const auto& [node, seen] : server_seen) {
    (void)seen;
    write_metadata(os, "thread_name", kServersPid, static_cast<int>(node) + 1,
                   "server " + std::to_string(node), first);
  }
  for (const auto& [agent, tid] : agent_tids) {
    write_metadata(os, "thread_name", kAgentsPid, tid, agent.to_string(), first);
  }

  for (const SpanRecord& record : records) {
    if (!first) os << ",\n";
    first = false;
    const bool on_agent = agent_track(record.kind);
    const int pid = on_agent ? kAgentsPid : kServersPid;
    const int tid = on_agent ? agent_tids.at(record.agent)
                             : static_cast<int>(record.node) + 1;
    os << R"({"name":")" << span_name(record.kind) << R"(","ph":")"
       << (instant_kind(record.kind) ? 'i' : 'X') << R"(","ts":)"
       << record.start_us << ",\"pid\":" << pid << ",\"tid\":" << tid;
    if (instant_kind(record.kind)) {
      os << R"(,"s":"t")";
    } else {
      os << ",\"dur\":" << (record.end_us - record.start_us);
    }
    write_args(os, record);
    os << '}';
  }
  os << "\n]";
  if (tracer.dropped() != 0 || counters != nullptr) {
    os << ",\"otherData\":{";
    os << "\"spans_dropped\":" << tracer.dropped();
    if (counters != nullptr) {
      os << ",\"counters\":{";
      bool first_counter = true;
      for (const auto& [name, value] : counters->entries()) {
        if (!first_counter) os << ',';
        first_counter = false;
        os << '"' << escaped(name) << "\":" << value;
      }
      os << '}';
    }
    os << '}';
  }
  os << "}\n";
}

}  // namespace marp::trace

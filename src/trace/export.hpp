// Chrome-trace-event exporter: renders a Tracer's span buffer as the JSON
// Trace Event Format, loadable in Perfetto (ui.perfetto.dev) and
// chrome://tracing.
//
// Layout: pid 1 = "servers" with one thread per node, pid 2 = "agents" with
// one thread per distinct agent (in order of first appearance, named by the
// agent id). Durations become "X" complete events, instants "i" events;
// track names ride in "M" metadata events. Counters (optional) land under
// "otherData" so the file stays schema-valid for trace viewers that ignore
// unknown top-level keys.
#pragma once

#include <iosfwd>

#include "trace/counters.hpp"
#include "trace/tracer.hpp"

namespace marp::trace {

void write_chrome_trace(std::ostream& os, const Tracer& tracer,
                        const CounterRegistry* counters = nullptr);

}  // namespace marp::trace

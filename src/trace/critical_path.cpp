#include "trace/critical_path.hpp"

#include <algorithm>
#include <iomanip>
#include <map>
#include <ostream>

#include "metrics/stats.hpp"

namespace marp::trace {

std::vector<PhaseLatency> phase_latencies(const Tracer& tracer) {
  std::map<SpanKind, metrics::Samples> by_kind;
  for (const SpanRecord& record : tracer.records()) {
    if (instant_kind(record.kind)) continue;
    by_kind[record.kind].add(
        static_cast<double>(record.end_us - record.start_us) / 1000.0);
  }
  std::vector<PhaseLatency> out;
  out.reserve(by_kind.size());
  for (auto& [kind, samples] : by_kind) {
    PhaseLatency phase;
    phase.phase = span_name(kind);
    phase.count = samples.count();
    phase.mean_ms = samples.mean();
    phase.p50_ms = samples.percentile(50);
    phase.p95_ms = samples.percentile(95);
    phase.p99_ms = samples.percentile(99);
    phase.max_ms = samples.max();
    out.push_back(std::move(phase));
  }
  return out;
}

CriticalPathReport critical_path(const Tracer& tracer) {
  // Sessions whose Created fell off the ring would attribute from a
  // truncated window; only agents with a Session record get a breakdown.
  std::map<agent::AgentId, SessionBreakdown> by_agent;
  std::vector<agent::AgentId> order;
  for (const SpanRecord& record : tracer.records()) {
    if (record.kind != SpanKind::Session) continue;
    SessionBreakdown session;
    session.agent = record.agent;
    session.total_ms =
        static_cast<double>(record.end_us - record.start_us) / 1000.0;
    if (by_agent.emplace(record.agent, session).second) {
      order.push_back(record.agent);
    }
  }
  for (const SpanRecord& record : tracer.records()) {
    const auto it = by_agent.find(record.agent);
    if (it == by_agent.end()) continue;
    SessionBreakdown& session = it->second;
    const double ms =
        static_cast<double>(record.end_us - record.start_us) / 1000.0;
    switch (record.kind) {
      case SpanKind::Migration:
        session.migration_ms += ms;
        ++session.hops;
        break;
      case SpanKind::Visit: session.visit_ms += ms; break;
      case SpanKind::LockWait: session.lock_wait_ms += ms; break;
      case SpanKind::UpdateRound: session.update_round_ms += ms; break;
      case SpanKind::CommitFanout:
        session.commit_ms += ms;
        session.committed = record.aux == 0;
        break;
      default:
        break;
    }
  }

  CriticalPathReport report;
  report.sessions.reserve(order.size());
  double total = 0, migration = 0, visit = 0, lock_wait = 0, update_round = 0,
         commit = 0, other = 0;
  for (const agent::AgentId& agent : order) {
    SessionBreakdown session = by_agent.at(agent);
    const double accounted = session.migration_ms + session.visit_ms +
                             session.lock_wait_ms + session.update_round_ms +
                             session.commit_ms;
    session.other_ms = std::max(0.0, session.total_ms - accounted);
    total += session.total_ms;
    migration += session.migration_ms;
    visit += session.visit_ms;
    lock_wait += session.lock_wait_ms;
    update_round += session.update_round_ms;
    commit += session.commit_ms;
    other += session.other_ms;
    report.sessions.push_back(std::move(session));
  }
  if (total > 0.0) {
    report.migration_pct = 100.0 * migration / total;
    report.visit_pct = 100.0 * visit / total;
    report.lock_wait_pct = 100.0 * lock_wait / total;
    report.update_round_pct = 100.0 * update_round / total;
    report.commit_pct = 100.0 * commit / total;
    report.other_pct = 100.0 * other / total;
  }
  return report;
}

void CriticalPathReport::print(std::ostream& os, std::size_t top) const {
  os << std::fixed << std::setprecision(1);
  os << "critical path (" << sessions.size() << " update sessions):\n"
     << "  migration " << migration_pct << "%  visit " << visit_pct
     << "%  lock-wait " << lock_wait_pct << "%  update-round "
     << update_round_pct << "%  commit-fanout " << commit_pct << "%  other "
     << other_pct << "%\n";
  if (sessions.empty()) return;

  std::vector<const SessionBreakdown*> slowest;
  slowest.reserve(sessions.size());
  for (const SessionBreakdown& session : sessions) slowest.push_back(&session);
  std::stable_sort(slowest.begin(), slowest.end(),
                   [](const SessionBreakdown* a, const SessionBreakdown* b) {
                     return a->total_ms > b->total_ms;
                   });
  if (slowest.size() > top) slowest.resize(top);

  os << "  slowest sessions:\n" << std::setprecision(2);
  for (const SessionBreakdown* session : slowest) {
    os << "    " << session->agent.to_string() << "  " << session->total_ms
       << " ms = migration " << session->migration_ms << " + visit "
       << session->visit_ms << " + lock-wait " << session->lock_wait_ms
       << " + update-round " << session->update_round_ms << " + commit "
       << session->commit_ms << " + other " << session->other_ms << "  ("
       << session->hops << " hops, "
       << (session->committed ? "committed" : "aborted") << ")\n";
  }
}

}  // namespace marp::trace

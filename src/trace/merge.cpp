#include "trace/merge.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <map>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "agent/agent_id.hpp"
#include "trace/json.hpp"
#include "trace/tracer.hpp"

namespace marp::trace {

namespace {

constexpr std::uint8_t kMaxSpanKind =
    static_cast<std::uint8_t>(SpanKind::NetRetransmit);

/// Flattened agent identity used as a stitching key across node dumps.
struct AgentKey {
  std::uint32_t origin;
  std::int64_t created_us;
  std::uint32_t seq;
  auto operator<=>(const AgentKey&) const = default;
};

AgentKey agent_key(const rpc::NodeTrace::Span& span) {
  return {span.agent_origin, span.agent_created_us, span.agent_seq};
}

bool has_agent(const rpc::NodeTrace::Span& span) {
  return span.agent_origin != net::kInvalidNode;
}

std::string agent_name(const AgentKey& key) {
  agent::AgentId id;
  id.origin = key.origin;
  id.created_us = key.created_us;
  id.seq = key.seq;
  return id.to_string();
}

std::string escaped(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// One already-aligned event queued for emission (two passes: the global
/// minimum timestamp is only known once everything is aligned).
struct PendingEvent {
  int pid = 0;
  int tid = 0;
  char ph = 'X';
  std::int64_t ts = 0;
  std::int64_t dur = 0;       ///< X only
  std::uint64_t flow_id = 0;  ///< s/f only
  const char* name = "";
  std::string args;  ///< rendered JSON object body, may be empty
};

std::size_t node_count(const std::vector<rpc::NodeTrace>& traces) {
  std::size_t n = 0;
  for (const rpc::NodeTrace& t : traces) {
    n = std::max<std::size_t>(n, static_cast<std::size_t>(t.node) + 1);
    for (const rpc::NodeTrace::LinkSample& s : t.link_samples) {
      n = std::max<std::size_t>(n, static_cast<std::size_t>(s.peer) + 1);
    }
  }
  return n;
}

std::vector<std::int64_t> quantile_table(std::vector<std::int64_t> sorted,
                                         std::size_t points) {
  points = std::clamp<std::size_t>(points, 2, std::max<std::size_t>(sorted.size(), 2));
  std::vector<std::int64_t> q;
  q.reserve(points);
  if (sorted.empty()) return q;
  for (std::size_t i = 0; i < points; ++i) {
    const std::size_t idx = i * (sorted.size() - 1) / (points - 1);
    q.push_back(sorted[idx]);
  }
  return q;
}

}  // namespace

MergeResult align_clocks(const std::vector<rpc::NodeTrace>& traces,
                         const MergeOptions& options) {
  MergeResult result;
  const std::size_t n = node_count(traces);
  result.offsets_us.assign(n, 0);
  result.aligned.assign(n, false);
  for (const rpc::NodeTrace& t : traces) {
    result.spans_dropped += t.spans_dropped;
    result.samples_dropped += t.samples_dropped;
  }
  if (n == 0) return result;

  // Directed (src → dst) delta sets: recv − send = θ_dst − θ_src + delay.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<std::int64_t>>
      deltas;
  for (const rpc::NodeTrace& t : traces) {
    for (const rpc::NodeTrace::LinkSample& s : t.link_samples) {
      deltas[{s.peer, t.node}].push_back(s.recv_ts_us - s.send_ts_us);
    }
  }

  // Undirected edges where both directions were sampled carry a usable
  // offset estimate: (m1 − m2) / 2 cancels the (assumed symmetric) minimum
  // path delay.
  struct Edge {
    std::uint32_t peer;
    std::int64_t offset;  ///< θ_peer − θ_this
  };
  std::vector<std::vector<Edge>> graph(n);
  for (const auto& [link, forward] : deltas) {
    const auto [a, b] = link;
    if (a >= b) continue;  // one visit per unordered pair
    const auto back = deltas.find({b, a});
    if (back == deltas.end()) continue;
    const std::int64_t m1 = *std::min_element(forward.begin(), forward.end());
    const std::int64_t m2 =
        *std::min_element(back->second.begin(), back->second.end());
    const std::int64_t theta_b_minus_a = (m1 - m2) / 2;
    graph[a].push_back({b, theta_b_minus_a});
    graph[b].push_back({a, -theta_b_minus_a});
  }

  // Propagate from the reference over the sampled mesh.
  const net::NodeId ref = options.reference < n ? options.reference : 0;
  std::vector<std::uint32_t> frontier{ref};
  result.aligned[ref] = true;
  while (!frontier.empty()) {
    const std::uint32_t at = frontier.back();
    frontier.pop_back();
    for (const Edge& edge : graph[at]) {
      if (result.aligned[edge.peer]) continue;
      result.aligned[edge.peer] = true;
      result.offsets_us[edge.peer] = result.offsets_us[at] + edge.offset;
      frontier.push_back(edge.peer);
    }
  }

  // Aligned one-way delays per directed link → calibration table. Clamped
  // at 1 µs: asymmetry can push a few samples below the symmetric estimate.
  for (const auto& [link, raw] : deltas) {
    const auto [src, dst] = link;
    std::vector<std::int64_t> owd;
    owd.reserve(raw.size());
    for (const std::int64_t delta : raw) {
      owd.push_back(std::max<std::int64_t>(
          delta - (result.offsets_us[dst] - result.offsets_us[src]), 1));
    }
    std::sort(owd.begin(), owd.end());
    net::LinkCalibration cal;
    cal.src = src;
    cal.dst = dst;
    cal.count = owd.size();
    cal.quantiles_us = quantile_table(std::move(owd), options.calibration_quantiles);
    result.calibration.links.push_back(std::move(cal));
  }
  return result;
}

MergeResult write_merged_trace(std::ostream& os,
                               const std::vector<rpc::NodeTrace>& traces,
                               const MergeOptions& options) {
  MergeResult result = align_clocks(traces, options);
  const std::size_t n = result.offsets_us.size();

  const auto aligned_ts = [&](std::uint32_t node, std::int64_t ts) {
    return node < n ? ts - result.offsets_us[node] : ts;
  };

  // Stitch index: every span start per (destination node, agent), so an
  // open Migration on the source can find the agent's first appearance on
  // the destination's clock.
  std::vector<std::multimap<AgentKey, std::int64_t>> arrivals(n);
  for (const rpc::NodeTrace& t : traces) {
    if (t.node >= n) continue;
    for (const rpc::NodeTrace::Span& s : t.spans) {
      if (!has_agent(s)) continue;
      arrivals[t.node].emplace(agent_key(s), aligned_ts(t.node, s.start_us));
    }
  }

  // Per-node agent → tid table (tid 1 is the server track).
  std::vector<std::map<AgentKey, int>> agent_tids(n);
  const auto tid_for = [&](std::uint32_t node, const AgentKey& key) {
    auto [it, inserted] = agent_tids[node].emplace(
        key, static_cast<int>(agent_tids[node].size()) + 2);
    (void)inserted;
    return it->second;
  };

  std::vector<PendingEvent> events;
  std::uint64_t next_flow = 1;
  for (const rpc::NodeTrace& t : traces) {
    if (t.node >= n) continue;
    const int pid = static_cast<int>(t.node) + 1;
    for (const rpc::NodeTrace::Span& s : t.spans) {
      if (s.kind > kMaxSpanKind) continue;
      const SpanKind kind = static_cast<SpanKind>(s.kind);
      const bool open = s.end_us == rpc::NodeTrace::kOpenEnd;
      PendingEvent ev;
      ev.pid = pid;
      ev.tid = has_agent(s) ? tid_for(t.node, agent_key(s)) : 1;
      ev.name = span_name(kind);
      ev.ts = aligned_ts(t.node, s.start_us);

      std::string args = "\"node\":" + std::to_string(s.node);
      if (has_agent(s)) {
        args += ",\"agent\":\"" + escaped(agent_name(agent_key(s))) + '"';
      }

      if (open) {
        if (kind != SpanKind::Migration || s.node >= n) {
          // LockListWait entries a remote server sweeps later, a Session
          // still touring at dump time — real, but unplottable as-is.
          ++result.open_unmatched;
          continue;
        }
        // Cross-process migration: close against the agent's first span on
        // the destination at or after departure, and draw the flow arrow.
        const auto [lo, hi] = arrivals[s.node].equal_range(agent_key(s));
        std::int64_t arrival = std::numeric_limits<std::int64_t>::max();
        for (auto it = lo; it != hi; ++it) {
          if (it->second >= ev.ts && it->second < arrival) arrival = it->second;
        }
        if (arrival == std::numeric_limits<std::int64_t>::max()) {
          ++result.open_unmatched;  // agent never surfaced on the destination
          continue;
        }
        ev.ph = 'X';
        ev.dur = arrival - ev.ts;
        args += ",\"from\":" + std::to_string(s.aux) +
                ",\"to\":" + std::to_string(s.node) + ",\"stitched\":true";
        ev.args = std::move(args);
        events.push_back(ev);
        ++result.spans_emitted;

        PendingEvent out;
        out.pid = pid;
        out.tid = ev.tid;
        out.ph = 's';
        out.ts = ev.ts;
        out.flow_id = next_flow;
        out.name = "migration";
        events.push_back(out);
        PendingEvent in;
        in.pid = static_cast<int>(s.node) + 1;
        in.tid = tid_for(s.node, agent_key(s));
        in.ph = 'f';
        in.ts = arrival;
        in.flow_id = next_flow;
        in.name = "migration";
        events.push_back(in);
        ++next_flow;
        result.flows_emitted += 2;
        continue;
      }

      if (instant_kind(kind)) {
        ev.ph = 'i';
      } else {
        ev.ph = 'X';
        ev.dur = std::max<std::int64_t>(s.end_us - s.start_us, 0);
      }
      if (kind == SpanKind::Migration) {
        args += ",\"from\":" + std::to_string(s.aux);
        if (s.aux2 != 0) args += ",\"failed\":true";
      }
      ev.args = std::move(args);
      events.push_back(ev);
      ++result.spans_emitted;
    }
  }

  // Rebase so the merged timeline starts at zero (viewers dislike the raw
  // epoch offsets; validators reject negative timestamps).
  std::int64_t min_ts = 0;
  bool first_ts = true;
  for (const PendingEvent& ev : events) {
    if (first_ts || ev.ts < min_ts) min_ts = ev.ts;
    first_ts = false;
  }

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  const auto meta = [&](const char* what, int pid, int tid, const std::string& name) {
    if (!first) os << ",\n";
    first = false;
    os << R"({"name":")" << what << R"(","ph":"M","pid":)" << pid
       << ",\"tid\":" << tid << R"(,"args":{"name":")" << escaped(name) << "\"}}";
  };
  for (const rpc::NodeTrace& t : traces) {
    if (t.node >= n) continue;
    const int pid = static_cast<int>(t.node) + 1;
    meta("process_name", pid, 0, "node " + std::to_string(t.node));
    meta("thread_name", pid, 1, "server");
    for (const auto& [key, tid] : agent_tids[t.node]) {
      meta("thread_name", pid, tid, agent_name(key));
    }
  }

  for (const PendingEvent& ev : events) {
    if (!first) os << ",\n";
    first = false;
    os << R"({"name":")" << ev.name << R"(","ph":")" << ev.ph << R"(","ts":)"
       << (ev.ts - min_ts) << ",\"pid\":" << ev.pid << ",\"tid\":" << ev.tid;
    switch (ev.ph) {
      case 'X': os << ",\"dur\":" << ev.dur; break;
      case 'i': os << R"(,"s":"t")"; break;
      case 's':
      case 'f':
        os << ",\"cat\":\"migration\",\"id\":" << ev.flow_id;
        if (ev.ph == 'f') os << R"(,"bp":"e")";
        break;
      default: break;
    }
    if (!ev.args.empty()) os << ",\"args\":{" << ev.args << '}';
    os << '}';
  }
  os << "\n],\"otherData\":{\"clock_offsets_us\":{";
  for (std::size_t node = 0; node < n; ++node) {
    if (node != 0) os << ',';
    os << '"' << node << "\":" << result.offsets_us[node];
  }
  os << "},\"spans_dropped\":" << result.spans_dropped
     << ",\"link_samples_dropped\":" << result.samples_dropped
     << ",\"open_unmatched\":" << result.open_unmatched << "}}\n";
  return result;
}

void write_calibration_json(std::ostream& os, const net::CalibrationTable& table) {
  os << "{\n  \"version\": 1,\n  \"links\": [\n";
  for (std::size_t i = 0; i < table.links.size(); ++i) {
    const net::LinkCalibration& link = table.links[i];
    os << "    {\"src\": " << link.src << ", \"dst\": " << link.dst
       << ", \"count\": " << link.count << ", \"quantiles_us\": [";
    for (std::size_t j = 0; j < link.quantiles_us.size(); ++j) {
      if (j != 0) os << ", ";
      os << link.quantiles_us[j];
    }
    os << "]}" << (i + 1 < table.links.size() ? "," : "") << '\n';
  }
  os << "  ]\n}\n";
}

net::CalibrationTable parse_calibration_json(const std::string& text) {
  const JsonValue root = parse_json(text);
  if (!root.is_object()) throw std::runtime_error("calibration: not an object");
  const JsonValue* links = root.find("links");
  if (links == nullptr || !links->is_array()) {
    throw std::runtime_error("calibration: missing links array");
  }
  net::CalibrationTable table;
  for (const JsonValue& entry : links->array) {
    const JsonValue* src = entry.find("src");
    const JsonValue* dst = entry.find("dst");
    const JsonValue* count = entry.find("count");
    const JsonValue* quantiles = entry.find("quantiles_us");
    if (src == nullptr || !src->is_number() || dst == nullptr ||
        !dst->is_number() || quantiles == nullptr || !quantiles->is_array()) {
      throw std::runtime_error("calibration: malformed link entry");
    }
    net::LinkCalibration link;
    link.src = static_cast<net::NodeId>(src->number);
    link.dst = static_cast<net::NodeId>(dst->number);
    link.count = count != nullptr && count->is_number()
                     ? static_cast<std::uint64_t>(count->number)
                     : 0;
    for (const JsonValue& q : quantiles->array) {
      if (!q.is_number()) throw std::runtime_error("calibration: non-numeric quantile");
      link.quantiles_us.push_back(static_cast<std::int64_t>(q.number));
    }
    std::sort(link.quantiles_us.begin(), link.quantiles_us.end());
    table.links.push_back(std::move(link));
  }
  return table;
}

}  // namespace marp::trace

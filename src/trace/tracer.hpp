// Tracer — structured, bounded-memory execution tracing.
//
// Decomposes every update session into spans on two kinds of tracks:
//
//   agent tracks   Session (created → disposed), Migration (per hop),
//                  Visit (arrival → local service done), LockWait (parked
//                  in Phase::Waiting), UpdateRound (UPDATE broadcast →
//                  quorum / demotion / abort), CommitFanout (COMMIT or
//                  RELEASE broadcast → fully acked); instants for
//                  QuorumWin, Retry, Backoff, Requeue, Abort.
//   server tracks  BatchWait (first buffered write → agent dispatch),
//                  LockListWait (Locking-List entry appended → removed,
//                  one span per (agent, server, group)); instants for
//                  AntiEntropy ticks, NetDrop and NetRetransmit events.
//
// The tracer is wired in three ways at once: as the platform's
// PlatformObserver (agent lifecycle + migrations), as the network's
// NetworkObserver (drops/retransmits), and via explicit hooks called from
// MarpServer / UpdateAgent behind `if (tracer)` guards — so a run without a
// tracer pays one pointer test per hook site and nothing else.
//
// Storage is a fixed-capacity ring of SpanRecords: a long run overwrites
// its oldest spans and counts them in dropped(), it never grows without
// bound. Matching uses an open-span map keyed by (kind, agent, node, aux);
// begin() is idempotent (first begin wins) and end() without a matching
// begin is a counted no-op, so redundant hook calls are harmless.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "agent/platform.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace marp::trace {

enum class SpanKind : std::uint8_t {
  // Agent-track durations.
  Session,
  Migration,
  Visit,
  LockWait,
  UpdateRound,
  CommitFanout,
  // Agent-track instants.
  QuorumWin,
  Retry,
  Backoff,
  Requeue,
  Abort,
  // Server-track durations.
  BatchWait,
  LockListWait,
  // Server-track instants.
  AntiEntropy,
  NetDrop,
  NetRetransmit
};

/// Stable lowercase name used by the exporter and reports.
const char* span_name(SpanKind kind) noexcept;
/// True for the kinds drawn on an agent's track (everything the agent did);
/// the rest render on the track of the server they happened at.
bool agent_track(SpanKind kind) noexcept;
/// True for zero-duration marks (start == end by construction).
bool instant_kind(SpanKind kind) noexcept;

struct SpanRecord {
  std::int64_t start_us = 0;
  std::int64_t end_us = 0;
  SpanKind kind = SpanKind::Session;
  net::NodeId node = net::kInvalidNode;  ///< server track / where it happened
  agent::AgentId agent;                  ///< invalid for pure server spans
  /// Kind-specific detail: Migration = source node (failed hops negated-1),
  /// Visit/LockWait = 0, UpdateRound = attempt (end overwrites with
  /// outcome via `aux2`), LockListWait = lock group, BatchWait = batch
  /// size, Retry = retry channel, NetDrop = message type.
  std::uint64_t aux = 0;
  /// Secondary detail filled at end(): UpdateRound outcome (0 won,
  /// 1 demoted, 2 aborted), Migration 1 = failed hop, CommitFanout
  /// 0 = commit, 1 = release.
  std::uint64_t aux2 = 0;
};

/// Retry channels recorded in Retry instants' aux.
enum : std::uint64_t {
  kRetryAck = 0,
  kRetryClaim = 1,
  kRetryMigration = 2,
  kRetryCommit = 3
};

class Tracer final : public agent::PlatformObserver, public net::NetworkObserver {
 public:
  /// `capacity` bounds retained spans (oldest evicted first); 0 is treated
  /// as 1 — a tracer always has a (possibly tiny) buffer.
  explicit Tracer(sim::Simulator& simulator, std::size_t capacity = 1 << 20);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Master switch; all hooks become no-ops when disabled.
  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }
  bool enabled() const noexcept { return enabled_; }

  /// Retained spans, oldest first (a copy: the ring stays internal).
  std::vector<SpanRecord> records() const;
  /// Spans begun but not ended, in no particular order (`end_us` is
  /// meaningless). On a real cluster node a remote migration opens here and
  /// completes on the *destination's* tracer, so the merge step needs the
  /// open half to stitch the cross-process span.
  std::vector<SpanRecord> open_records() const;
  std::size_t size() const noexcept { return ring_.size(); }
  std::uint64_t dropped() const noexcept { return dropped_; }
  /// Begun spans not yet ended (0 after a drained run = well-formed trace).
  std::size_t open_spans() const noexcept { return open_.size(); }
  /// end() calls that found no matching begin (diagnostic; harmless).
  std::uint64_t unmatched_ends() const noexcept { return unmatched_ends_; }
  void clear();

  // ---- PlatformObserver (Session + Migration spans) ----
  void on_agent_created(const agent::AgentId& id, const std::string& type,
                        net::NodeId at) override;
  void on_agent_disposed(const agent::AgentId& id, net::NodeId at) override;
  void on_migration_started(const agent::AgentId& id, net::NodeId from,
                            net::NodeId to, std::size_t bytes) override;
  void on_migration_completed(const agent::AgentId& id, net::NodeId at) override;
  void on_migration_failed(const agent::AgentId& id, net::NodeId from,
                           net::NodeId to) override;

  // ---- NetworkObserver (drop / retransmit instants) ----
  void on_message_dropped(const net::Message& message,
                          net::DropReason reason) override;
  void on_transport_retransmit(const net::Message& message) override;

  // ---- MARP hooks (called from server.cpp / update_agent.cpp) ----
  void visit_begin(const agent::AgentId& id, net::NodeId at);
  void visit_end(const agent::AgentId& id);
  void wait_begin(const agent::AgentId& id, net::NodeId at);
  void wait_end(const agent::AgentId& id);
  void update_round_begin(const agent::AgentId& id, net::NodeId at,
                          std::uint32_t attempt);
  void update_round_end(const agent::AgentId& id, std::uint64_t outcome);
  void quorum_win(const agent::AgentId& id, net::NodeId at);
  void commit_fanout_begin(const agent::AgentId& id, net::NodeId at, bool commit);
  void commit_fanout_end(const agent::AgentId& id);
  void retry(const agent::AgentId& id, net::NodeId at, std::uint64_t channel);
  void backoff(const agent::AgentId& id, net::NodeId at, std::int64_t delay_us);
  void requeue(const agent::AgentId& id, net::NodeId at);
  void abort_mark(const agent::AgentId& id, net::NodeId at);
  void batch_open(net::NodeId node);
  void batch_dispatch(net::NodeId node, std::size_t batch_size);
  void ll_enqueue(const agent::AgentId& id, net::NodeId node, std::uint64_t group);
  void ll_remove(const agent::AgentId& id, net::NodeId node, std::uint64_t group);
  /// COMMIT/RELEASE/purge swept every Locking-List entry `id` held at
  /// `node`, whichever groups they were in.
  void ll_remove_all(const agent::AgentId& id, net::NodeId node);
  /// A crash wiped node-local coordination state: close this node's
  /// LockListWait/BatchWait spans (the waits ended, albeit violently).
  void node_reset(net::NodeId node);
  void anti_entropy(net::NodeId node);

 private:
  struct OpenKey {
    SpanKind kind;
    agent::AgentId agent;
    net::NodeId node = net::kInvalidNode;
    std::uint64_t aux = 0;
    bool operator==(const OpenKey&) const = default;
  };
  struct OpenKeyHash {
    std::size_t operator()(const OpenKey& key) const noexcept {
      std::size_t h = agent::AgentIdHash{}(key.agent);
      h ^= (static_cast<std::size_t>(key.kind) + 1) * 0x9E3779B97F4A7C15ULL;
      h ^= (static_cast<std::size_t>(key.node) + 1) * 0xFF51AFD7ED558CCDULL;
      h ^= (key.aux + 1) * 0xC4CEB9FE1A85EC53ULL;
      return h;
    }
  };

  std::int64_t now_us() const { return sim_.now().as_micros(); }
  void begin(const OpenKey& key, const SpanRecord& record);
  void end(const OpenKey& key, std::uint64_t aux2 = 0);
  void mark(SpanKind kind, net::NodeId node, const agent::AgentId& agent,
            std::uint64_t aux = 0, std::uint64_t aux2 = 0);
  void push(SpanRecord record);
  /// End every open span matching `pred` (small map; scans are fine).
  template <typename Pred>
  void end_matching(Pred pred, std::uint64_t aux2 = 0);

  sim::Simulator& sim_;
  std::size_t capacity_;
  bool enabled_ = true;
  std::vector<SpanRecord> ring_;
  std::size_t head_ = 0;  ///< oldest element once the ring is full
  std::uint64_t dropped_ = 0;
  std::uint64_t unmatched_ends_ = 0;
  std::unordered_map<OpenKey, SpanRecord, OpenKeyHash> open_;
};

}  // namespace marp::trace

// Per-phase latency aggregation and per-request critical-path attribution,
// computed from a Tracer's span buffer.
//
// Answers "where did this request's 40 ms go?": each update session
// (one agent lifetime) is decomposed into time spent migrating, being
// served at replicas, parked waiting for locks, racing the UPDATE/ACK
// round, and fanning out COMMIT/RELEASE — the remainder is attributed to
// "other" (queueing between callbacks, report round trips). Aggregates use
// exact percentiles over all sessions in the buffer.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "trace/tracer.hpp"

namespace marp::trace {

/// Latency summary of one span kind across the whole buffer (milliseconds).
struct PhaseLatency {
  std::string phase;
  std::uint64_t count = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

/// One entry per duration kind present in the buffer, in SpanKind order.
std::vector<PhaseLatency> phase_latencies(const Tracer& tracer);

/// One update session's wall-clock decomposition (milliseconds).
struct SessionBreakdown {
  agent::AgentId agent;
  double total_ms = 0.0;
  double migration_ms = 0.0;
  double visit_ms = 0.0;
  double lock_wait_ms = 0.0;
  double update_round_ms = 0.0;
  double commit_ms = 0.0;
  double other_ms = 0.0;  ///< total minus the named phases (never negative)
  std::uint32_t hops = 0;
  bool committed = false;
};

struct CriticalPathReport {
  std::vector<SessionBreakdown> sessions;  ///< buffer order (oldest first)

  /// Aggregate share of each phase over the summed session time, 0..100.
  double migration_pct = 0.0;
  double visit_pct = 0.0;
  double lock_wait_pct = 0.0;
  double update_round_pct = 0.0;
  double commit_pct = 0.0;
  double other_pct = 0.0;

  /// Phase shares plus the `top` slowest sessions, each with its breakdown.
  void print(std::ostream& os, std::size_t top = 5) const;
};

CriticalPathReport critical_path(const Tracer& tracer);

}  // namespace marp::trace

#include "checkpoint/durable.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "rpc/frame.hpp"  // fnv1a64
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace marp::checkpoint {

namespace {

constexpr std::uint32_t kCheckpointMagic = 0x4B504352;  // "RCPK" little-endian
constexpr std::uint16_t kCheckpointVersion = 1;

constexpr std::uint8_t kRecordApply = 1;
constexpr std::uint8_t kRecordSessionDone = 2;

/// Per-record framing: fixed prefix, then `len` payload bytes.
constexpr std::size_t kRecordPrefix = 4 + 8;  // u32le len + u64le fnv(payload)
/// A journal record is at least [kind]; cap the length so a corrupt prefix
/// cannot drive an absurd allocation during replay.
constexpr std::uint32_t kMaxRecordLen = 16u * 1024u * 1024u;

bool write_all_fd(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

bool read_file(const std::string& path, serial::Bytes* out) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  out->clear();
  std::uint8_t buffer[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    out->insert(out->end(), buffer, buffer + n);
  }
  ::close(fd);
  return true;
}

void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

DurableLog::DurableLog(std::string dir, net::NodeId node, bool fsync_journal)
    : dir_(std::move(dir)), node_(node), fsync_journal_(fsync_journal) {
  ::mkdir(dir_.c_str(), 0755);  // EEXIST is fine; open failures surface later
}

DurableLog::~DurableLog() {
  if (journal_fd_ >= 0) ::close(journal_fd_);
}

std::string DurableLog::checkpoint_path() const { return dir_ + "/checkpoint.bin"; }
std::string DurableLog::journal_path() const { return dir_ + "/journal.log"; }

RecoveredState DurableLog::recover() {
  MARP_REQUIRE_MSG(journal_fd_ < 0, "recover() must be called exactly once");
  RecoveredState state;

  // ---- checkpoint: all-or-nothing, guarded by the trailing checksum ----
  serial::Bytes ckpt;
  if (read_file(checkpoint_path(), &ckpt)) {
    bool ok = ckpt.size() > 8;
    if (ok) {
      const std::size_t payload = ckpt.size() - 8;
      serial::Reader t(ckpt.data() + payload, 8);
      ok = t.u64le() == rpc::fnv1a64(ckpt.data(), payload);
      if (ok) {
        try {
          serial::Reader r(ckpt.data(), payload);
          ok = r.u32le() == kCheckpointMagic && r.u16le() == kCheckpointVersion &&
               r.u32le() == node_;
          if (ok) {
            state.epoch = r.u64le();
            state.next_session = r.u64le();
            state.manifest = deserialize_manifest(r);
            state.had_checkpoint = true;
          }
        } catch (const serial::DecodeError&) {
          ok = false;
        }
      }
    }
    if (!ok) {
      // Torn or foreign checkpoint: reject it wholesale (deterministically)
      // rather than apply half a snapshot; the journal + peer anti-entropy
      // rebuild whatever it held.
      state.checkpoint_rejected = true;
      state.manifest.clear();
      state.epoch = 0;
      state.next_session = 0;
      MARP_LOG_WARN("durable") << "node " << node_
                               << ": rejecting invalid checkpoint " << checkpoint_path();
    }
  }
  epoch_ = state.epoch;

  // ---- journal: replay the valid prefix, cut off a torn tail ----
  serial::Bytes journal;
  const bool had_journal = read_file(journal_path(), &journal);
  std::size_t good = 0;
  if (had_journal) {
    std::size_t pos = 0;
    while (pos + kRecordPrefix <= journal.size()) {
      serial::Reader prefix(journal.data() + pos, kRecordPrefix);
      const std::uint32_t len = prefix.u32le();
      const std::uint64_t sum = prefix.u64le();
      if (len == 0 || len > kMaxRecordLen ||
          pos + kRecordPrefix + len > journal.size()) {
        break;  // torn tail — a crash mid-append
      }
      const std::uint8_t* payload = journal.data() + pos + kRecordPrefix;
      if (rpc::fnv1a64(payload, len) != sum) break;
      try {
        serial::Reader r(payload, len);
        const std::uint8_t kind = r.u8();
        if (kind == kRecordApply) {
          const std::string key = r.str();
          replica::VersionedValue value;
          value.value = r.str();
          value.version = replica::Version::deserialize(r);
          auto& slot = state.manifest[key];
          if (value.version > slot.version) slot = std::move(value);
        } else if (kind == kRecordSessionDone) {
          const std::uint64_t session = r.varint();
          if (session + 1 > state.next_session) state.next_session = session + 1;
        } else {
          break;  // unknown kind — treat as corruption from here on
        }
      } catch (const serial::DecodeError&) {
        break;
      }
      pos += kRecordPrefix + len;
      good = pos;
      ++state.journal_records;
    }
    state.journal_truncated = good < journal.size();
  }

  journal_fd_ = ::open(journal_path().c_str(),
                       O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  MARP_ENSURE_MSG(journal_fd_ >= 0, "cannot open journal " + journal_path());
  if (state.journal_truncated) {
    // Drop the torn tail so future appends extend a valid prefix instead of
    // burying good records behind garbage.
    if (::ftruncate(journal_fd_, static_cast<off_t>(good)) != 0) {
      MARP_LOG_WARN("durable") << "node " << node_ << ": journal truncate failed: "
                               << std::strerror(errno);
    }
    ::fsync(journal_fd_);
    MARP_LOG_WARN("durable") << "node " << node_ << ": journal tail torn, kept "
                             << good << " bytes / " << state.journal_records
                             << " records";
  }
  return state;
}

void DurableLog::append_record(const serial::Bytes& payload) {
  MARP_REQUIRE_MSG(journal_fd_ >= 0, "recover() before append");
  serial::Writer w;
  w.u32le(static_cast<std::uint32_t>(payload.size()));
  w.u64le(rpc::fnv1a64(payload.data(), payload.size()));
  serial::Bytes record = w.take();
  record.insert(record.end(), payload.begin(), payload.end());
  if (!write_all_fd(journal_fd_, record.data(), record.size())) {
    MARP_LOG_WARN("durable") << "node " << node_ << ": journal append failed: "
                             << std::strerror(errno);
    return;
  }
  if (fsync_journal_) ::fsync(journal_fd_);
  ++journal_appends_;
  ++pending_records_;
}

void DurableLog::append_apply(const std::string& key,
                              const replica::VersionedValue& value) {
  serial::Writer w;
  w.u8(kRecordApply);
  w.str(key);
  w.str(value.value);
  value.version.serialize(w);
  append_record(w.take());
}

void DurableLog::append_session_done(std::uint64_t session) {
  serial::Writer w;
  w.u8(kRecordSessionDone);
  w.varint(session);
  append_record(w.take());
}

bool DurableLog::checkpoint(const Manifest& manifest, std::uint64_t next_session) {
  MARP_REQUIRE_MSG(journal_fd_ >= 0, "recover() before checkpoint");
  serial::Writer w;
  w.u32le(kCheckpointMagic);
  w.u16le(kCheckpointVersion);
  w.u32le(node_);
  w.u64le(epoch_ + 1);
  w.u64le(next_session);
  serialize_manifest(w, manifest);
  const serial::Bytes payload = w.take();
  serial::Writer t;
  t.u64le(rpc::fnv1a64(payload.data(), payload.size()));
  const serial::Bytes trailer = t.take();

  const std::string tmp = checkpoint_path() + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  const bool written = write_all_fd(fd, payload.data(), payload.size()) &&
                       write_all_fd(fd, trailer.data(), trailer.size()) &&
                       ::fsync(fd) == 0;
  ::close(fd);
  if (!written || ::rename(tmp.c_str(), checkpoint_path().c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  fsync_dir(dir_);

  // The checkpoint is durable; the journal records it absorbed are now
  // redundant. A crash before this truncate just replays them onto the new
  // checkpoint — idempotent under the version merge.
  if (::ftruncate(journal_fd_, 0) == 0) ::fsync(journal_fd_);
  ++epoch_;
  ++checkpoints_written_;
  pending_records_ = 0;
  return true;
}

}  // namespace marp::checkpoint

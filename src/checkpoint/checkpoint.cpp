#include "checkpoint/checkpoint.hpp"

#include <algorithm>

#include "marp/read_agent.hpp"
#include "marp/server.hpp"
#include "marp/update_agent.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace marp::checkpoint {

void serialize_manifest(serial::Writer& w, const Manifest& manifest) {
  w.varint(manifest.size());
  for (const auto& [key, value] : manifest) {
    w.str(key);
    w.str(value.value);
    value.version.serialize(w);
  }
}

Manifest deserialize_manifest(serial::Reader& r) {
  Manifest manifest;
  const std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string key = r.str();
    replica::VersionedValue value;
    value.value = r.str();
    value.version = replica::Version::deserialize(r);
    manifest.emplace(std::move(key), std::move(value));
  }
  return manifest;
}

// ---------- CheckpointStore ----------

void CheckpointStore::save_local(std::uint64_t id, Manifest snapshot) {
  local_[id] = std::move(snapshot);
}

void CheckpointStore::seal(std::uint64_t id, Manifest manifest) {
  sealed_[id] = std::move(manifest);
}

const Manifest* CheckpointStore::sealed(std::uint64_t id) const {
  auto it = sealed_.find(id);
  return it == sealed_.end() ? nullptr : &it->second;
}

const Manifest* CheckpointStore::local(std::uint64_t id) const {
  auto it = local_.find(id);
  return it == local_.end() ? nullptr : &it->second;
}

std::vector<std::uint64_t> CheckpointStore::sealed_ids() const {
  std::vector<std::uint64_t> ids;
  ids.reserve(sealed_.size());
  for (const auto& [id, manifest] : sealed_) ids.push_back(id);
  return ids;
}

// ---------- CheckpointManager ----------

CheckpointManager::CheckpointManager(core::MarpProtocol& protocol,
                                     agent::AgentPlatform& platform)
    : protocol_(protocol), platform_(platform) {
  if (!platform_.registry().contains(kCheckpointAgentType)) {
    platform_.registry().register_type<CheckpointAgent>(kCheckpointAgentType);
  }
  if (!platform_.registry().contains(kRollbackAgentType)) {
    platform_.registry().register_type<RollbackAgent>(kRollbackAgentType);
  }
  stores_.reserve(platform_.size());
  for (net::NodeId node = 0; node < platform_.size(); ++node) {
    stores_.push_back(std::make_unique<CheckpointStore>());
    platform_.host(node).set_service(kStoreServiceName, stores_.back().get());
    platform_.host(node).set_service(kManagerServiceName, this);
  }
}

CheckpointStore& CheckpointManager::store(net::NodeId node) {
  MARP_REQUIRE(node < stores_.size());
  return *stores_[node];
}

void CheckpointManager::checkpoint(std::uint64_t id, net::NodeId origin,
                                   Callback done) {
  if (done) callbacks_[id] = std::move(done);
  platform_.host(origin).create(std::make_unique<CheckpointAgent>(id, origin));
}

void CheckpointManager::rollback(std::uint64_t id, net::NodeId origin,
                                 Callback done) {
  MARP_REQUIRE_MSG(store(origin).has_sealed(id),
                   "rollback target not sealed at the origin server");
  if (done) callbacks_[id] = std::move(done);
  ++rollbacks_;
  platform_.host(origin).create(std::make_unique<RollbackAgent>(id, origin));
}

void CheckpointManager::notify(std::uint64_t id, bool ok) {
  ++completed_;
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return;
  Callback callback = std::move(it->second);
  callbacks_.erase(it);
  callback(id, ok);
}

// ---------- shared tour helpers ----------

namespace {

std::vector<net::NodeId> all_nodes_except(std::size_t n, net::NodeId skip) {
  std::vector<net::NodeId> nodes;
  nodes.reserve(n - 1);
  for (net::NodeId node = 0; node < n; ++node) {
    if (node != skip) nodes.push_back(node);
  }
  return nodes;
}

void write_nodes(serial::Writer& w, const std::vector<net::NodeId>& nodes) {
  w.varint(nodes.size());
  for (net::NodeId node : nodes) w.varint(node);
}

std::vector<net::NodeId> read_nodes(serial::Reader& r) {
  const std::uint64_t n = r.varint();
  std::vector<net::NodeId> nodes;
  nodes.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    nodes.push_back(static_cast<net::NodeId>(r.varint()));
  }
  return nodes;
}

Manifest snapshot_of(const replica::VersionedStore& store) {
  Manifest snapshot;
  for (const auto& key : store.keys()) {
    snapshot.emplace(key, *store.read(key));
  }
  return snapshot;
}

}  // namespace

// ---------- CheckpointAgent ----------

CheckpointAgent::CheckpointAgent(std::uint64_t checkpoint_id, net::NodeId origin)
    : checkpoint_id_(checkpoint_id), origin_(origin) {}

void CheckpointAgent::on_created(agent::AgentContext& ctx) {
  auto* server = ctx.service<core::MarpServer>(core::kMarpServiceName);
  MARP_REQUIRE(server != nullptr);
  pending_ = all_nodes_except(server->cluster_size(), ctx.here());
  step(ctx);
}

void CheckpointAgent::on_arrival(agent::AgentContext& ctx) {
  migration_retries_ = 0;
  step(ctx);
}

void CheckpointAgent::step(agent::AgentContext& ctx) {
  auto* ckpt = ctx.service<CheckpointStore>(kStoreServiceName);
  auto* server = ctx.service<core::MarpServer>(core::kMarpServiceName);
  MARP_REQUIRE(ckpt != nullptr && server != nullptr);

  switch (phase_) {
    case Phase::Collecting: {
      // Snapshot this replica locally and fold its copies into the
      // manifest (freshest version per key wins).
      Manifest local = snapshot_of(server->store());
      for (const auto& [key, value] : local) {
        auto& best = manifest_[key];
        if (value.version > best.version) best = value;
      }
      ckpt->save_local(checkpoint_id_, std::move(local));
      if (!pending_.empty()) break;  // keep touring
      // Collection done: seal everywhere (including here), ending at home.
      phase_ = Phase::Sealing;
      ckpt->seal(checkpoint_id_, manifest_);
      pending_ = all_nodes_except(server->cluster_size(), ctx.here());
      // Visit unavailable servers last-chance? They stay skipped; sealing
      // tour covers the same reachable set.
      for (net::NodeId down : unavailable_) {
        pending_.erase(std::remove(pending_.begin(), pending_.end(), down),
                       pending_.end());
      }
      if (pending_.empty()) {
        finish(ctx, true);
        return;
      }
      break;
    }
    case Phase::Sealing: {
      ckpt->seal(checkpoint_id_, manifest_);
      if (!pending_.empty()) break;
      phase_ = Phase::Returning;
      if (ctx.here() == origin_) {
        finish(ctx, true);
        return;
      }
      ctx.dispatch_to(origin_);
      return;
    }
    case Phase::Returning: {
      finish(ctx, true);
      return;
    }
  }

  const net::NodeId next = pending_.front();
  pending_.erase(pending_.begin());
  ctx.dispatch_to(next);
}

void CheckpointAgent::on_migration_failed(agent::AgentContext& ctx,
                                          net::NodeId destination) {
  auto* server = ctx.service<core::MarpServer>(core::kMarpServiceName);
  if (++migration_retries_ <= server->config().migration_retry_limit) {
    ctx.dispatch_to(destination);
    return;
  }
  migration_retries_ = 0;
  if (destination == origin_ && phase_ == Phase::Returning) {
    // Home is gone; nobody to report to.
    ctx.dispose();
    return;
  }
  unavailable_.push_back(destination);
  step(ctx);  // continue the tour without it
}

void CheckpointAgent::finish(agent::AgentContext& ctx, bool ok) {
  if (auto* manager = ctx.service<CheckpointManager>(kManagerServiceName)) {
    manager->notify(checkpoint_id_, ok && unavailable_.empty());
  }
  ctx.dispose();
}

void CheckpointAgent::serialize(serial::Writer& w) const {
  w.varint(checkpoint_id_);
  w.varint(origin_);
  w.u8(static_cast<std::uint8_t>(phase_));
  serialize_manifest(w, manifest_);
  write_nodes(w, pending_);
  write_nodes(w, unavailable_);
  w.varint(migration_retries_);
}

void CheckpointAgent::deserialize(serial::Reader& r) {
  checkpoint_id_ = r.varint();
  origin_ = static_cast<net::NodeId>(r.varint());
  phase_ = static_cast<Phase>(r.u8());
  manifest_ = deserialize_manifest(r);
  pending_ = read_nodes(r);
  unavailable_ = read_nodes(r);
  migration_retries_ = static_cast<std::uint32_t>(r.varint());
}

// ---------- RollbackAgent ----------

RollbackAgent::RollbackAgent(std::uint64_t checkpoint_id, net::NodeId origin)
    : checkpoint_id_(checkpoint_id), origin_(origin) {}

void RollbackAgent::on_created(agent::AgentContext& ctx) {
  auto* ckpt = ctx.service<CheckpointStore>(kStoreServiceName);
  auto* server = ctx.service<core::MarpServer>(core::kMarpServiceName);
  MARP_REQUIRE(ckpt != nullptr && server != nullptr);
  const Manifest* sealed = ckpt->sealed(checkpoint_id_);
  if (sealed == nullptr) {
    finish(ctx, false);
    return;
  }
  manifest_ = *sealed;
  have_manifest_ = true;
  pending_ = all_nodes_except(server->cluster_size(), ctx.here());
  restore_here(ctx);
  step(ctx);
}

void RollbackAgent::on_arrival(agent::AgentContext& ctx) {
  migration_retries_ = 0;
  restore_here(ctx);
  step(ctx);
}

void RollbackAgent::restore_here(agent::AgentContext& ctx) {
  auto* server = ctx.service<core::MarpServer>(core::kMarpServiceName);
  MARP_REQUIRE(server != nullptr && have_manifest_);
  // Abort in-flight update sessions hosted here, wipe coordination state,
  // and restore the store to the manifest exactly.
  ctx.host().dispose_by_type(core::kUpdateAgentType);
  server->reset_coordination();
  server->store().clear_items();
  for (const auto& [key, value] : manifest_) {
    server->store().force(key, value.value, value.version);
  }
}

void RollbackAgent::step(agent::AgentContext& ctx) {
  if (!pending_.empty()) {
    const net::NodeId next = pending_.front();
    pending_.erase(pending_.begin());
    ctx.dispatch_to(next);
    return;
  }
  if (ctx.here() == origin_) {
    finish(ctx, unavailable_.empty());
    return;
  }
  ctx.dispatch_to(origin_);
  // After returning home, pending_ stays empty and here == origin, so the
  // next step() finishes. Mark the leg by leaving pending_ empty.
}

void RollbackAgent::on_migration_failed(agent::AgentContext& ctx,
                                        net::NodeId destination) {
  auto* server = ctx.service<core::MarpServer>(core::kMarpServiceName);
  if (++migration_retries_ <= server->config().migration_retry_limit) {
    ctx.dispatch_to(destination);
    return;
  }
  migration_retries_ = 0;
  if (destination == origin_) {
    ctx.dispose();
    return;
  }
  unavailable_.push_back(destination);
  step(ctx);
}

void RollbackAgent::finish(agent::AgentContext& ctx, bool ok) {
  if (auto* manager = ctx.service<CheckpointManager>(kManagerServiceName)) {
    manager->notify(checkpoint_id_, ok);
  }
  ctx.dispose();
}

void RollbackAgent::serialize(serial::Writer& w) const {
  w.varint(checkpoint_id_);
  w.varint(origin_);
  serialize_manifest(w, manifest_);
  w.boolean(have_manifest_);
  write_nodes(w, pending_);
  write_nodes(w, unavailable_);
  w.varint(migration_retries_);
}

void RollbackAgent::deserialize(serial::Reader& r) {
  checkpoint_id_ = r.varint();
  origin_ = static_cast<net::NodeId>(r.varint());
  manifest_ = deserialize_manifest(r);
  have_manifest_ = r.boolean();
  pending_ = read_nodes(r);
  unavailable_ = read_nodes(r);
  migration_retries_ = static_cast<std::uint32_t>(r.varint());
}

}  // namespace marp::checkpoint

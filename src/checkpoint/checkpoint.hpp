// Checkpointing and rollback with cooperating mobile agents.
//
// The paper's experiment interface (§4) was shared with the authors'
// companion MAW work on "checkpointing and rollback of wide-area
// distributed applications using mobile agents" (their ref [3]); this
// module brings that capability to the replicated store:
//
//  * CheckpointAgent — tours every reachable server, saving each replica's
//    local snapshot and accumulating the freshest committed copy per key
//    (the *manifest*); a second sealing tour writes the manifest to every
//    server's CheckpointStore so a rollback can start anywhere; finally it
//    returns home and reports.
//  * RollbackAgent — tours every reachable server, restoring the manifest
//    into the store, resetting MARP's coordination state, and killing the
//    in-flight UpdateAgents hosted there (aborting uncommitted sessions);
//    returns home and reports.
//
// Rollback is quiescent-consistent: updates racing with the rollback tour
// may commit after it and move replicas forward again — consistently,
// since commits broadcast everywhere — but the guarantee "all replicas
// equal the manifest at completion" holds only without concurrent writes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "agent/agent.hpp"
#include "agent/platform.hpp"
#include "marp/protocol.hpp"
#include "replica/versioned_store.hpp"

namespace marp::checkpoint {

inline constexpr const char* kCheckpointAgentType = "marp.checkpoint";
inline constexpr const char* kRollbackAgentType = "marp.rollback";
/// Host service names.
inline constexpr const char* kStoreServiceName = "checkpoint-store";
inline constexpr const char* kManagerServiceName = "checkpoint-manager";

/// A consistent cut of the replicated data: key → freshest committed copy.
using Manifest = std::map<std::string, replica::VersionedValue>;

void serialize_manifest(serial::Writer& w, const Manifest& manifest);
Manifest deserialize_manifest(serial::Reader& r);

/// Per-server checkpoint storage: local snapshots taken during the
/// collection tour plus sealed cluster-wide manifests.
class CheckpointStore {
 public:
  void save_local(std::uint64_t id, Manifest snapshot);
  void seal(std::uint64_t id, Manifest manifest);

  bool has_sealed(std::uint64_t id) const { return sealed_.contains(id); }
  const Manifest* sealed(std::uint64_t id) const;
  const Manifest* local(std::uint64_t id) const;
  std::vector<std::uint64_t> sealed_ids() const;

 private:
  std::map<std::uint64_t, Manifest> local_;
  std::map<std::uint64_t, Manifest> sealed_;
};

/// Orchestrates checkpoint/rollback over an existing MARP deployment.
class CheckpointManager {
 public:
  using Callback = std::function<void(std::uint64_t id, bool ok)>;

  CheckpointManager(core::MarpProtocol& protocol, agent::AgentPlatform& platform);

  CheckpointManager(const CheckpointManager&) = delete;
  CheckpointManager& operator=(const CheckpointManager&) = delete;

  /// Launch a checkpoint agent from `origin`. `done` fires at completion
  /// (ok = manifest sealed at every reachable server).
  void checkpoint(std::uint64_t id, net::NodeId origin, Callback done = {});

  /// Launch a rollback agent from `origin` for a sealed checkpoint.
  void rollback(std::uint64_t id, net::NodeId origin, Callback done = {});

  CheckpointStore& store(net::NodeId node);
  core::MarpProtocol& protocol() noexcept { return protocol_; }

  // Called by the agents when they return home.
  void notify(std::uint64_t id, bool ok);

  std::uint64_t checkpoints_completed() const noexcept { return completed_; }
  std::uint64_t rollbacks_completed() const noexcept { return rollbacks_; }

 private:
  core::MarpProtocol& protocol_;
  agent::AgentPlatform& platform_;
  std::vector<std::unique_ptr<CheckpointStore>> stores_;
  std::map<std::uint64_t, Callback> callbacks_;
  std::uint64_t completed_ = 0;
  std::uint64_t rollbacks_ = 0;
};

/// Collection + sealing tour (see file comment).
class CheckpointAgent final : public agent::MobileAgent {
 public:
  enum class Phase : std::uint8_t { Collecting = 0, Sealing = 1, Returning = 2 };

  CheckpointAgent() = default;
  CheckpointAgent(std::uint64_t checkpoint_id, net::NodeId origin);

  std::string type_name() const override { return kCheckpointAgentType; }
  void on_created(agent::AgentContext& ctx) override;
  void on_arrival(agent::AgentContext& ctx) override;
  void on_migration_failed(agent::AgentContext& ctx, net::NodeId destination) override;
  void serialize(serial::Writer& w) const override;
  void deserialize(serial::Reader& r) override;

  Phase phase() const noexcept { return phase_; }

 private:
  void step(agent::AgentContext& ctx);
  void finish(agent::AgentContext& ctx, bool ok);

  std::uint64_t checkpoint_id_ = 0;
  net::NodeId origin_ = net::kInvalidNode;
  Phase phase_ = Phase::Collecting;
  Manifest manifest_;
  std::vector<net::NodeId> pending_;      ///< remaining stops of this phase
  std::vector<net::NodeId> unavailable_;
  std::uint32_t migration_retries_ = 0;
};

/// Restore tour (see file comment).
class RollbackAgent final : public agent::MobileAgent {
 public:
  RollbackAgent() = default;
  RollbackAgent(std::uint64_t checkpoint_id, net::NodeId origin);

  std::string type_name() const override { return kRollbackAgentType; }
  void on_created(agent::AgentContext& ctx) override;
  void on_arrival(agent::AgentContext& ctx) override;
  void on_migration_failed(agent::AgentContext& ctx, net::NodeId destination) override;
  void serialize(serial::Writer& w) const override;
  void deserialize(serial::Reader& r) override;

 private:
  void step(agent::AgentContext& ctx);
  void restore_here(agent::AgentContext& ctx);
  void finish(agent::AgentContext& ctx, bool ok);

  std::uint64_t checkpoint_id_ = 0;
  net::NodeId origin_ = net::kInvalidNode;
  Manifest manifest_;       ///< loaded from the origin's sealed copy
  bool have_manifest_ = false;
  std::vector<net::NodeId> pending_;
  std::vector<net::NodeId> unavailable_;
  std::uint32_t migration_retries_ = 0;
};

}  // namespace marp::checkpoint

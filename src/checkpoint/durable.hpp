// DurableLog — crash-consistent on-disk state for one real cluster node.
//
// The sim-side checkpoint module (checkpoint.hpp) moves manifests between
// servers with mobile agents; this file gives one *process* a place to keep
// that manifest across a SIGKILL. Two files per node directory:
//
//   checkpoint.bin   epoch-stamped snapshot: header + manifest (the same
//                    serialize_manifest format the checkpoint agents use) +
//                    FNV-1a-64 trailer. Written tmp → fsync → rename, so a
//                    crash mid-write leaves the previous checkpoint intact
//                    and a torn file is detected (and rejected) by the
//                    checksum, never half-applied.
//   journal.log      append-only record stream since the last checkpoint:
//                    every committed write the store applied, plus workload
//                    progress marks. Each record is length- and
//                    checksum-prefixed; replay stops cleanly at a torn tail
//                    (the half-written record a crash can leave) and
//                    truncates it so later appends extend a valid prefix.
//
// Recovery = load checkpoint (if it verifies) + replay journal on top,
// merging per key under "newer version wins". Both sources carry versioned
// values, so replay is idempotent: re-applying records that made it into
// the checkpoint before the crash is a no-op — which is what makes the
// checkpoint-then-truncate sequence safe without a write barrier between
// the rename and the journal reset.
//
// Thread-compat: all methods are called from the node's single driver
// thread (recover() from the constructor context before the driver starts).
#pragma once

#include <cstdint>
#include <string>

#include "checkpoint/checkpoint.hpp"
#include "net/message.hpp"
#include "replica/versioned_store.hpp"

namespace marp::checkpoint {

/// What recover() reassembled from disk.
struct RecoveredState {
  /// Checkpoint merged with the journal records on top (newer version wins).
  Manifest manifest;
  /// Epoch of the loaded checkpoint (0 if none/rejected). The next
  /// checkpoint() writes epoch + 1.
  std::uint64_t epoch = 0;
  /// First workload session this node has NOT durably completed.
  std::uint64_t next_session = 0;
  std::uint64_t journal_records = 0;  ///< records replayed from the journal
  bool journal_truncated = false;     ///< a torn tail was cut off
  bool checkpoint_rejected = false;   ///< file present but failed validation
  bool had_checkpoint = false;        ///< a valid checkpoint was loaded
};

class DurableLog {
 public:
  /// `dir` is created if missing. `node` is stamped into the checkpoint
  /// header so a node refuses to resurrect from another node's state.
  DurableLog(std::string dir, net::NodeId node, bool fsync_journal = true);
  ~DurableLog();

  DurableLog(const DurableLog&) = delete;
  DurableLog& operator=(const DurableLog&) = delete;

  /// Read checkpoint + journal. Must be called once, before any append.
  /// Leaves the journal open (and tail-truncated if torn) for appending.
  RecoveredState recover();

  /// Journal one committed store apply.
  void append_apply(const std::string& key, const replica::VersionedValue& value);
  /// Journal "workload session `session` durably completed".
  void append_session_done(std::uint64_t session);

  /// Write an epoch+1 checkpoint of `manifest` + `next_session` atomically,
  /// then reset the journal. Returns false (state unchanged, journal kept)
  /// if any step before the rename fails.
  bool checkpoint(const Manifest& manifest, std::uint64_t next_session);

  std::uint64_t epoch() const noexcept { return epoch_; }
  std::uint64_t journal_appends() const noexcept { return journal_appends_; }
  std::uint64_t checkpoints_written() const noexcept { return checkpoints_written_; }
  /// Journal records accumulated since the last checkpoint (or recovery) —
  /// lets the owner skip checkpointing when nothing changed.
  std::uint64_t pending_records() const noexcept { return pending_records_; }

  std::string checkpoint_path() const;
  std::string journal_path() const;

 private:
  void append_record(const serial::Bytes& payload);

  std::string dir_;
  net::NodeId node_;
  bool fsync_journal_;
  int journal_fd_ = -1;
  std::uint64_t epoch_ = 0;
  std::uint64_t journal_appends_ = 0;
  std::uint64_t checkpoints_written_ = 0;
  std::uint64_t pending_records_ = 0;
};

}  // namespace marp::checkpoint

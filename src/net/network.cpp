#include "net/network.hpp"

#include "transport/transport.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace marp::net {

const char* drop_reason_name(DropReason reason) noexcept {
  switch (reason) {
    case DropReason::SourceDown: return "source-down";
    case DropReason::LinkCut: return "link-cut";
    case DropReason::RandomLoss: return "random-loss";
    case DropReason::FaultDrop: return "fault-drop";
    case DropReason::DestDown: return "dest-down";
    case DropReason::NoHandler: return "no-handler";
    case DropReason::TransportSend: return "transport-send";
  }
  return "?";
}

Network::Network(sim::Simulator& simulator, Topology topology,
                 std::unique_ptr<LatencyModel> latency)
    : sim_(simulator),
      topology_(std::move(topology)),
      latency_(std::move(latency)),
      rng_(simulator.rng_factory().stream("network")),
      handlers_(topology_.size()),
      node_up_(topology_.size(), true) {
  MARP_REQUIRE(latency_ != nullptr);
  MARP_REQUIRE(topology_.size() >= 1);
}

void Network::register_node(NodeId node, Handler handler) {
  MARP_REQUIRE(node < size());
  MARP_REQUIRE_MSG(!handlers_[node], "node handler already registered");
  handlers_[node] = std::move(handler);
}

void Network::set_node_up(NodeId node, bool up) {
  MARP_REQUIRE(node < size());
  node_up_[node] = up;
}

bool Network::node_up(NodeId node) const {
  MARP_REQUIRE(node < size());
  return node_up_[node];
}

void Network::set_link_up(NodeId src, NodeId dst, bool up) {
  MARP_REQUIRE(src < size() && dst < size());
  if (up) {
    cut_links_.erase(link_key(src, dst));
  } else {
    cut_links_.insert(link_key(src, dst));
  }
}

bool Network::link_up(NodeId src, NodeId dst) const {
  return !cut_links_.contains(link_key(src, dst));
}

void Network::partition(const std::vector<NodeId>& group) {
  std::vector<bool> in_group(size(), false);
  for (NodeId node : group) {
    MARP_REQUIRE(node < size());
    in_group[node] = true;
  }
  for (NodeId a = 0; a < size(); ++a) {
    for (NodeId b = 0; b < size(); ++b) {
      if (a != b && in_group[a] != in_group[b]) {
        cut_links_.insert(link_key(a, b));
      }
    }
  }
}

void Network::heal_partition() { cut_links_.clear(); }

void Network::set_link_faults(NodeId src, NodeId dst, const LinkFaults& faults) {
  MARP_REQUIRE(src < size() && dst < size());
  link_faults_[link_key(src, dst)] = faults;
}

void Network::clear_link_faults() {
  link_faults_.clear();
  default_faults_ = LinkFaults{};
}

const LinkFaults& Network::link_faults(NodeId src, NodeId dst) const {
  const auto it = link_faults_.find(link_key(src, dst));
  return it == link_faults_.end() ? default_faults_ : it->second;
}

bool Network::roll_transfer_loss(NodeId src, NodeId dst) {
  const LinkFaults& faults = link_faults(src, dst);
  return faults.drop > 0.0 && rng_.bernoulli(faults.drop);
}

sim::SimTime Network::sample_latency(NodeId src, NodeId dst, std::size_t bytes) {
  return latency_->sample(src, dst, bytes, rng_);
}

void Network::send(Message message) {
  MARP_REQUIRE(message.src < size() && message.dst < size());
  ++stats_.messages_sent;
  stats_.bytes_sent += message.wire_size();
  ++stats_.sent_by_type[message.type];
  stats_.bytes_by_type[message.type] += message.wire_size();

  if (transport_ != nullptr && message.dst != local_node_) {
    // Real substrate: the wire owns loss/latency/ordering for remote
    // destinations; the simulated knobs below only shape local traffic.
    if (!transport_->send_message(message)) {
      drop(message, DropReason::TransportSend);
    }
    return;
  }

  if (!node_up_[message.src]) {
    drop(message, DropReason::SourceDown);
    return;
  }
  if (!link_up(message.src, message.dst)) {
    drop(message, DropReason::LinkCut);
    return;
  }
  if (drop_probability_ > 0.0 && rng_.bernoulli(drop_probability_)) {
    drop(message, DropReason::RandomLoss);
    if (loss_mode_ == LossMode::Retransmit) {
      if (observer_) observer_->on_transport_retransmit(message);
      // Transport-level retry: the copy re-enters send() after the RTO (and
      // may be lost again — delays stay finite with probability 1).
      sim_.schedule(retransmit_timeout_, [this, msg = std::move(message)]() mutable {
        send(std::move(msg));
      });
    }
    return;
  }

  const LinkFaults& faults = link_faults(message.src, message.dst);
  if (faults.any()) {
    // Chaos faults model an adversarial live channel: a fault drop is final
    // (protocols must carry their own retries), duplication delivers an
    // extra copy with its own latency, reordering spikes one copy's delay.
    if (faults.drop > 0.0 && rng_.bernoulli(faults.drop)) {
      ++stats_.fault_drops;
      drop(message, DropReason::FaultDrop);
      return;
    }
    if (faults.duplicate > 0.0 && rng_.bernoulli(faults.duplicate)) {
      ++stats_.fault_duplicates;
      schedule_delivery(message, faults);
    }
  }
  schedule_delivery(message, faults);
}

void Network::schedule_delivery(const Message& message, const LinkFaults& faults) {
  sim::SimTime latency =
      latency_->sample(message.src, message.dst, message.wire_size(), rng_);
  if (faults.reorder > 0.0 && rng_.bernoulli(faults.reorder)) {
    ++stats_.fault_reorders;
    latency = latency + sim::SimTime::micros(static_cast<std::int64_t>(
                            rng_.uniform(1.0, static_cast<double>(
                                                  faults.reorder_delay.as_micros()))));
  }
  // Actor tag: delivery mutates the destination's state (see simulator.hpp).
  sim_.schedule(
      latency, [this, msg = message]() mutable { deliver(std::move(msg)); },
      static_cast<sim::ActorId>(message.dst));
}

void Network::multicast(NodeId src, const std::vector<NodeId>& dsts,
                        MessageType type, const serial::Bytes& payload) {
  for (NodeId dst : dsts) {
    if (dst == src) continue;
    send(Message{src, dst, type, payload});
  }
}

void Network::broadcast(NodeId src, MessageType type, const serial::Bytes& payload) {
  for (NodeId dst = 0; dst < size(); ++dst) {
    if (dst == src) continue;
    send(Message{src, dst, type, payload});
  }
}

void Network::attach_transport(transport::Transport* transport, NodeId local_node) {
  if (transport != nullptr) {
    MARP_REQUIRE(local_node < size());
    transport_ = transport;
    local_node_ = local_node;
  } else {
    transport_ = nullptr;
    local_node_ = kInvalidNode;
  }
}

void Network::inject(Message message) {
  MARP_REQUIRE(message.dst < size());
  const auto actor = static_cast<sim::ActorId>(message.dst);
  // Zero-delay event so the handler runs on the simulator's driver thread,
  // after whatever event is executing when the frame arrives.
  sim_.schedule(
      sim::SimTime::zero(),
      [this, msg = std::move(message)]() mutable { deliver(std::move(msg)); },
      actor);
}

void Network::drop(const Message& message, DropReason reason) {
  ++stats_.messages_dropped;
  if (observer_) observer_->on_message_dropped(message, reason);
}

void Network::deliver(Message message) {
  if (!node_up_[message.dst]) {
    drop(message, DropReason::DestDown);
    return;
  }
  if (!handlers_[message.dst]) {
    MARP_LOG_WARN("net") << "message type " << message.type << " to node "
                         << message.dst << " has no handler";
    drop(message, DropReason::NoHandler);
    return;
  }
  ++stats_.messages_delivered;
  handlers_[message.dst](message);
}

}  // namespace marp::net

#include "net/topology.hpp"

#include <algorithm>
#include <numeric>

#include "util/assert.hpp"

namespace marp::net {

std::vector<NodeId> Topology::nearest_first(NodeId src) const {
  std::vector<NodeId> order;
  order.reserve(size() - 1);
  for (NodeId node = 0; node < size(); ++node) {
    if (node != src) order.push_back(node);
  }
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return cost(src, a) < cost(src, b);
  });
  return order;
}

Topology make_lan_mesh(std::size_t n, sim::SimTime base_delay) {
  MARP_REQUIRE(n >= 1);
  Topology topo{DelayMatrix(n, base_delay.as_micros())};
  for (NodeId i = 0; i < n; ++i) topo.delays.set(i, i, 0);
  return topo;
}

Topology make_wan_clusters(std::size_t n, std::size_t clusters,
                           sim::SimTime intra_delay, sim::SimTime inter_delay) {
  MARP_REQUIRE(n >= 1);
  MARP_REQUIRE(clusters >= 1);
  Topology topo{DelayMatrix(n, 0)};
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      if (i == j) continue;
      const bool same_site = (i % clusters) == (j % clusters);
      topo.delays.set(i, j, (same_site ? intra_delay : inter_delay).as_micros());
    }
  }
  return topo;
}

Topology make_star(std::size_t n, sim::SimTime spoke_delay) {
  MARP_REQUIRE(n >= 1);
  Topology topo{DelayMatrix(n, 0)};
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      if (i == j) continue;
      const bool involves_hub = (i == 0 || j == 0);
      topo.delays.set(i, j, (involves_hub ? spoke_delay : spoke_delay * 2).as_micros());
    }
  }
  return topo;
}

Topology make_ring(std::size_t n, sim::SimTime hop_delay) {
  MARP_REQUIRE(n >= 1);
  Topology topo{DelayMatrix(n, 0)};
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      if (i == j) continue;
      const std::size_t forward = (j + n - i) % n;
      const std::size_t hops = std::min(forward, n - forward);
      topo.delays.set(i, j, hop_delay.as_micros() * static_cast<std::int64_t>(hops));
    }
  }
  return topo;
}

Topology make_random(std::size_t n, sim::SimTime lo, sim::SimTime hi, sim::Rng& rng) {
  MARP_REQUIRE(n >= 1);
  MARP_REQUIRE(lo <= hi);
  Topology topo{DelayMatrix(n, 0)};
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = 0; j < n; ++j) {
      if (i == j) continue;
      topo.delays.set(i, j, rng.uniform_int(lo.as_micros(), hi.as_micros()));
    }
  }
  return topo;
}

}  // namespace marp::net

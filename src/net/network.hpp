// Message-level network simulation.
//
// The network owns the topology and a latency model, delivers messages by
// scheduling simulator events, and tracks traffic statistics. Nodes register
// a handler; a node can also be marked down (fail-stop, §2 of the paper):
// messages to or from a down node are silently dropped, matching the paper's
// assumption that a failed process halts without malicious behaviour.
// Partitions cut the links between two groups while both stay alive.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/latency.hpp"
#include "net/message.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"

namespace marp::transport {
class Transport;
}

namespace marp::net {

struct TrafficStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t bytes_sent = 0;
  /// Link-fault accounting (chaos injection; see LinkFaults).
  std::uint64_t fault_drops = 0;
  std::uint64_t fault_duplicates = 0;
  std::uint64_t fault_reorders = 0;
  std::unordered_map<MessageType, std::uint64_t> sent_by_type;
  std::unordered_map<MessageType, std::uint64_t> bytes_by_type;
};

/// Probabilistic faults on a live link (chaos injection). Unlike the global
/// `drop_probability`, these model an adversarial-but-live channel: a
/// fault-dropped message is gone for good (never transport-retransmitted),
/// a duplicated one is delivered twice with independent latencies, and a
/// reordered one takes an extra delay spike so it can overtake or be
/// overtaken by later traffic. All rolls come from the network's seeded
/// stream, so a run replays bit-for-bit from its seed.
struct LinkFaults {
  double drop = 0.0;       ///< probability a message is silently lost
  double duplicate = 0.0;  ///< probability a second copy is delivered
  double reorder = 0.0;    ///< probability a copy takes a latency spike
  /// Upper bound of the reorder spike (uniform in (0, reorder_delay]).
  sim::SimTime reorder_delay = sim::SimTime::millis(20);

  bool any() const noexcept {
    return drop > 0.0 || duplicate > 0.0 || reorder > 0.0;
  }
};

/// Why a message never reached its destination's handler.
enum class DropReason : std::uint8_t {
  SourceDown,  ///< the sender was down at send time
  LinkCut,     ///< the directed link was cut (partition)
  RandomLoss,  ///< the global drop_probability die came up (may retransmit)
  FaultDrop,   ///< a LinkFaults chaos drop (final, never retransmitted)
  DestDown,    ///< the destination was down at delivery time
  NoHandler,   ///< delivered to a node with no registered handler
  TransportSend ///< the attached real transport could not send (peer gone)
};

const char* drop_reason_name(DropReason reason) noexcept;

/// Observer for transport-level events (tracing, debugging). Callbacks fire
/// synchronously inside send()/deliver(); default is no-op, not owned.
class NetworkObserver {
 public:
  virtual ~NetworkObserver() = default;
  virtual void on_message_dropped(const Message& message, DropReason reason) {
    (void)message, (void)reason;
  }
  /// A RandomLoss copy was queued for transport-level retransmission
  /// (LossMode::Retransmit only).
  virtual void on_transport_retransmit(const Message& message) { (void)message; }
};

class Network {
 public:
  using Handler = std::function<void(const Message&)>;

  Network(sim::Simulator& simulator, Topology topology,
          std::unique_ptr<LatencyModel> latency);

  std::size_t size() const noexcept { return topology_.size(); }
  const Topology& topology() const noexcept { return topology_; }
  sim::Simulator& simulator() noexcept { return sim_; }

  /// Install the delivery handler for `node`. One handler per node.
  void register_node(NodeId node, Handler handler);

  /// Fail-stop / recover a node. While down, a node neither sends nor
  /// receives; messages in flight to it at delivery time are dropped.
  void set_node_up(NodeId node, bool up);
  bool node_up(NodeId node) const;

  /// Cut (or restore) the directed link src→dst.
  void set_link_up(NodeId src, NodeId dst, bool up);
  bool link_up(NodeId src, NodeId dst) const;

  /// Partition: cut every link between `group` and its complement.
  void partition(const std::vector<NodeId>& group);
  /// Restore all cut links (does not revive down nodes).
  void heal_partition();

  /// What happens to a message hit by `drop_probability`.
  enum class LossMode : std::uint8_t {
    /// The message is gone (UDP-like). Protocols need their own retries.
    Drop,
    /// The transport retransmits after `retransmit_timeout` until the loss
    /// die stops coming up — the paper's §2 model: "reliable logical
    /// communication channels whose transmission delays are unpredictable
    /// but finite". Loss adds latency, never silence (unless an endpoint
    /// is down, which still drops: fail-stop beats reliability).
    Retransmit
  };

  /// Probability that any message is lost in flight (default 0).
  void set_drop_probability(double p) { drop_probability_ = p; }
  void set_loss_mode(LossMode mode) { loss_mode_ = mode; }
  void set_retransmit_timeout(sim::SimTime timeout) { retransmit_timeout_ = timeout; }

  /// Chaos faults applied to every link without a per-link override.
  void set_default_link_faults(const LinkFaults& faults) { default_faults_ = faults; }
  /// Per-link (directed) fault override; wins over the default.
  void set_link_faults(NodeId src, NodeId dst, const LinkFaults& faults);
  /// Drop all per-link overrides and reset the default to fault-free.
  void clear_link_faults();
  /// Faults in effect on src→dst (override if present, else the default).
  const LinkFaults& link_faults(NodeId src, NodeId dst) const;

  /// One seeded loss roll for a non-message transfer (agent migration
  /// frames) crossing src→dst; true = the frame is lost in flight. Uses the
  /// link's `drop` fault probability so migrations and messages see the
  /// same loss regime.
  bool roll_transfer_loss(NodeId src, NodeId dst);

  /// Send one message. Delivery is scheduled after a sampled latency; the
  /// message is dropped if the source is down, the link is cut, or the
  /// destination is down at delivery time.
  void send(Message message);

  /// Send the same payload to several destinations (independent latencies,
  /// as with N unicasts — the paper's "broadcast" is implemented this way
  /// by Aglets-style messaging).
  void multicast(NodeId src, const std::vector<NodeId>& dsts, MessageType type,
                 const serial::Bytes& payload);

  /// Multicast to every node except `src`.
  void broadcast(NodeId src, MessageType type, const serial::Bytes& payload);

  /// One-way latency sample for `bytes` between two nodes; exposed so the
  /// agent platform can charge migrations through the same model.
  sim::SimTime sample_latency(NodeId src, NodeId dst, std::size_t bytes);

  const TrafficStats& stats() const noexcept { return stats_; }
  void reset_stats() { stats_ = TrafficStats{}; }

  /// Install a transport observer (nullptr to remove). Not owned.
  void set_observer(NetworkObserver* observer) noexcept { observer_ = observer; }
  NetworkObserver* observer() const noexcept { return observer_; }

  // ---- real substrate (socket / in-process transport) ----
  //
  // With a Transport attached, this Network instance belongs to ONE real
  // node (`local`): sends to any other node are handed to the transport
  // instead of being simulated, and frames received off the wire re-enter
  // through inject(). Local (loopback) traffic still flows through the
  // simulated path, so the per-process event loop — and with it every timer
  // and agent callback — stays single-threaded and deterministic given the
  // arrival order. Without a transport (the default) nothing changes:
  // the Network simulates the whole cluster exactly as before.

  /// Attach (nullptr to detach) the real substrate for this node. Not owned.
  void attach_transport(transport::Transport* transport, NodeId local_node);
  transport::Transport* transport() const noexcept { return transport_; }
  /// The node this process embodies; kInvalidNode in pure simulation.
  NodeId local_node() const noexcept { return local_node_; }
  /// True when `node` lives in another process (transport attached and not
  /// the local node).
  bool is_remote(NodeId node) const noexcept {
    return transport_ != nullptr && node != local_node_;
  }

  /// Deliver a message received from the wire to the local node's handler
  /// (scheduled as an immediate simulator event so handlers always run on
  /// the driver thread). Counts as a delivery, not a send.
  void inject(Message message);

 private:
  void drop(const Message& message, DropReason reason);
  void deliver(Message message);
  /// Schedule one delivery of `message` after the sampled latency, applying
  /// the link's reorder fault to this copy.
  void schedule_delivery(const Message& message, const LinkFaults& faults);
  std::uint64_t link_key(NodeId src, NodeId dst) const {
    return (static_cast<std::uint64_t>(src) << 32) | dst;
  }

  sim::Simulator& sim_;
  Topology topology_;
  std::unique_ptr<LatencyModel> latency_;
  sim::Rng rng_;
  std::vector<Handler> handlers_;
  std::vector<bool> node_up_;
  std::unordered_set<std::uint64_t> cut_links_;
  double drop_probability_ = 0.0;
  LossMode loss_mode_ = LossMode::Drop;
  sim::SimTime retransmit_timeout_ = sim::SimTime::millis(200);
  LinkFaults default_faults_;
  std::unordered_map<std::uint64_t, LinkFaults> link_faults_;
  TrafficStats stats_;
  NetworkObserver* observer_ = nullptr;
  transport::Transport* transport_ = nullptr;
  NodeId local_node_ = kInvalidNode;
};

}  // namespace marp::net

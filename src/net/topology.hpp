// Topology builders.
//
// A Topology is a per-pair propagation-delay matrix plus a routing-cost
// matrix. The paper assumes each replicated server keeps "a routing table
// containing the cost of transferring a mobile agent from the local server
// to another server" (§3.2); agents sort their Un-visited Server List by
// that cost. We derive routing costs directly from propagation delays.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/latency.hpp"

namespace marp::net {

struct Topology {
  DelayMatrix delays;  ///< one-way propagation, microseconds

  std::size_t size() const noexcept { return delays.size(); }

  /// Routing cost of moving an agent from `src` to `dst` (µs). Matches the
  /// propagation delay — the information the paper's routing tables carry.
  std::int64_t cost(NodeId src, NodeId dst) const { return delays.at(src, dst); }

  /// Nodes sorted by ascending cost from `src`, excluding `src` itself.
  std::vector<NodeId> nearest_first(NodeId src) const;
};

/// Full mesh with a uniform base delay (the paper's workstation LAN).
Topology make_lan_mesh(std::size_t n, sim::SimTime base_delay);

/// Nodes spread across `clusters` sites: cheap intra-site links, expensive
/// inter-site links (Internet-like). Nodes are assigned round-robin.
Topology make_wan_clusters(std::size_t n, std::size_t clusters,
                           sim::SimTime intra_delay, sim::SimTime inter_delay);

/// Star: node 0 is a hub; spoke-to-spoke traffic pays twice the spoke delay.
Topology make_star(std::size_t n, sim::SimTime spoke_delay);

/// Ring: delay proportional to hop distance along the shorter direction.
Topology make_ring(std::size_t n, sim::SimTime hop_delay);

/// Random asymmetric delays in [lo, hi] (stress tests / property sweeps).
Topology make_random(std::size_t n, sim::SimTime lo, sim::SimTime hi, sim::Rng& rng);

}  // namespace marp::net

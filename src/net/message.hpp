// Network message representation.
//
// Protocols define their own message-type enums (cast to MessageType); the
// network layer treats types opaquely but keeps per-type traffic counters.
#pragma once

#include <cstdint>
#include <string>

#include "serial/byte_buffer.hpp"
#include "sim/time.hpp"

namespace marp::net {

using NodeId = std::uint32_t;
constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

using MessageType = std::uint32_t;

/// Reserved type range for the agent platform (agent transfer frames).
constexpr MessageType kAgentTransferType = 0xA0000001;

struct Message {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  MessageType type = 0;
  serial::Bytes payload;

  /// Fixed per-message framing overhead charged on the wire (header bytes).
  static constexpr std::size_t kHeaderBytes = 48;

  std::size_t wire_size() const noexcept { return kHeaderBytes + payload.size(); }
};

}  // namespace marp::net

#include "net/latency.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace marp::net {

sim::SimTime UniformLatency::sample(NodeId, NodeId, std::size_t, sim::Rng& rng) const {
  const double us = rng.uniform(static_cast<double>(lo_.as_micros()),
                                static_cast<double>(hi_.as_micros()));
  return sim::SimTime::micros(static_cast<std::int64_t>(us));
}

LanLatency::LanLatency(DelayMatrix base, double jitter_mean_us, double bytes_per_us)
    : base_(std::move(base)), jitter_mean_us_(jitter_mean_us), bytes_per_us_(bytes_per_us) {
  MARP_REQUIRE(bytes_per_us_ > 0.0);
}

sim::SimTime LanLatency::sample(NodeId src, NodeId dst, std::size_t bytes,
                                sim::Rng& rng) const {
  double us = static_cast<double>(base_.at(src, dst));
  us += rng.exponential(jitter_mean_us_);
  us += static_cast<double>(bytes) / bytes_per_us_;
  return sim::SimTime::micros(static_cast<std::int64_t>(us));
}

WanLatency::WanLatency(DelayMatrix base, Params params)
    : base_(std::move(base)), params_(params) {
  MARP_REQUIRE(params_.bytes_per_us > 0.0);
  MARP_REQUIRE(params_.jitter_alpha > 1.0);  // finite mean
}

sim::SimTime WanLatency::sample(NodeId src, NodeId dst, std::size_t bytes,
                                sim::Rng& rng) const {
  double us = static_cast<double>(base_.at(src, dst));
  // Pareto minus its scale so the base delay is the floor, jitter the excess.
  us += rng.pareto(params_.jitter_alpha, params_.jitter_scale_us) - params_.jitter_scale_us;
  us += static_cast<double>(bytes) / params_.bytes_per_us;
  if (rng.bernoulli(params_.spike_probability)) {
    us += rng.exponential(params_.spike_mean_us);
  }
  return sim::SimTime::micros(static_cast<std::int64_t>(us));
}

namespace {

constexpr std::size_t kMaxDrawTally = 65536;

std::int64_t median_of(std::vector<std::int64_t> v) {
  if (v.empty()) return -1;
  std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
  return v[v.size() / 2];
}

}  // namespace

std::int64_t CalibrationTable::median_us(NodeId src, NodeId dst) const noexcept {
  for (const LinkCalibration& link : links) {
    if (link.src == src && link.dst == dst && !link.quantiles_us.empty()) {
      return link.quantiles_us[link.quantiles_us.size() / 2];
    }
  }
  return -1;
}

CalibratedLatency::CalibratedLatency(CalibrationTable table, sim::SimTime fallback)
    : table_(std::move(table)) {
  links_.resize(table_.links.size());
  std::vector<std::int64_t> medians;
  for (std::size_t i = 0; i < table_.links.size(); ++i) {
    links_[i].quantiles_us = table_.links[i].quantiles_us;
    if (!links_[i].quantiles_us.empty()) {
      medians.push_back(links_[i].quantiles_us[links_[i].quantiles_us.size() / 2]);
    }
  }
  const std::int64_t fb =
      medians.empty() ? fallback.as_micros() : median_of(std::move(medians));
  fallback_.quantiles_us = {fb, fb};
}

const CalibratedLatency::Link* CalibratedLatency::find(NodeId src,
                                                       NodeId dst) const noexcept {
  for (std::size_t i = 0; i < table_.links.size(); ++i) {
    if (table_.links[i].src == src && table_.links[i].dst == dst &&
        !links_[i].quantiles_us.empty()) {
      return &links_[i];
    }
  }
  return nullptr;
}

std::int64_t CalibratedLatency::draw(const Link& link, sim::Rng& rng) const {
  const std::vector<std::int64_t>& q = link.quantiles_us;
  std::int64_t us;
  if (q.size() == 1) {
    us = q[0];
  } else {
    const double u = rng.uniform(0.0, 1.0) * static_cast<double>(q.size() - 1);
    const std::size_t lo = std::min<std::size_t>(static_cast<std::size_t>(u), q.size() - 2);
    const double frac = u - static_cast<double>(lo);
    us = static_cast<std::int64_t>(static_cast<double>(q[lo]) +
                                   frac * static_cast<double>(q[lo + 1] - q[lo]));
  }
  us = std::max<std::int64_t>(us, 1);
  if (link.drawn_us.size() < kMaxDrawTally) link.drawn_us.push_back(us);
  return us;
}

sim::SimTime CalibratedLatency::sample(NodeId src, NodeId dst, std::size_t bytes,
                                       sim::Rng& rng) const {
  (void)bytes;  // serialization time is already inside the measured delays
  const Link* link = find(src, dst);
  return sim::SimTime::micros(draw(link != nullptr ? *link : fallback_, rng));
}

std::vector<CalibratedLatency::LinkReport> CalibratedLatency::report() const {
  std::vector<LinkReport> out;
  for (std::size_t i = 0; i < table_.links.size(); ++i) {
    if (links_[i].quantiles_us.empty()) continue;
    LinkReport r;
    r.src = table_.links[i].src;
    r.dst = table_.links[i].dst;
    r.samples = links_[i].drawn_us.size();
    r.target_p50_us = links_[i].quantiles_us[links_[i].quantiles_us.size() / 2];
    r.sampled_p50_us = median_of(links_[i].drawn_us);
    for (const std::int64_t us : links_[i].drawn_us) {
      if (us < r.target_p50_us) ++r.below_target;
    }
    out.push_back(r);
  }
  return out;
}

}  // namespace marp::net

#include "net/latency.hpp"

#include "util/assert.hpp"

namespace marp::net {

sim::SimTime UniformLatency::sample(NodeId, NodeId, std::size_t, sim::Rng& rng) const {
  const double us = rng.uniform(static_cast<double>(lo_.as_micros()),
                                static_cast<double>(hi_.as_micros()));
  return sim::SimTime::micros(static_cast<std::int64_t>(us));
}

LanLatency::LanLatency(DelayMatrix base, double jitter_mean_us, double bytes_per_us)
    : base_(std::move(base)), jitter_mean_us_(jitter_mean_us), bytes_per_us_(bytes_per_us) {
  MARP_REQUIRE(bytes_per_us_ > 0.0);
}

sim::SimTime LanLatency::sample(NodeId src, NodeId dst, std::size_t bytes,
                                sim::Rng& rng) const {
  double us = static_cast<double>(base_.at(src, dst));
  us += rng.exponential(jitter_mean_us_);
  us += static_cast<double>(bytes) / bytes_per_us_;
  return sim::SimTime::micros(static_cast<std::int64_t>(us));
}

WanLatency::WanLatency(DelayMatrix base, Params params)
    : base_(std::move(base)), params_(params) {
  MARP_REQUIRE(params_.bytes_per_us > 0.0);
  MARP_REQUIRE(params_.jitter_alpha > 1.0);  // finite mean
}

sim::SimTime WanLatency::sample(NodeId src, NodeId dst, std::size_t bytes,
                                sim::Rng& rng) const {
  double us = static_cast<double>(base_.at(src, dst));
  // Pareto minus its scale so the base delay is the floor, jitter the excess.
  us += rng.pareto(params_.jitter_alpha, params_.jitter_scale_us) - params_.jitter_scale_us;
  us += static_cast<double>(bytes) / params_.bytes_per_us;
  if (rng.bernoulli(params_.spike_probability)) {
    us += rng.exponential(params_.spike_mean_us);
  }
  return sim::SimTime::micros(static_cast<std::int64_t>(us));
}

}  // namespace marp::net

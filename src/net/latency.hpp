// Link latency models.
//
// The paper evaluates on a workstation LAN and argues results would degrade
// on the Internet; we make both regimes pluggable. A sample combines a
// per-pair propagation base (from the topology), random jitter, a
// bandwidth-proportional serialization term, and (for the WAN model)
// occasional transient spikes standing in for the "frequent short transient
// failures" of Golding's Internet characterization cited by the paper.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/message.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace marp::net {

/// Per-pair propagation delays in microseconds (row = src, col = dst).
class DelayMatrix {
 public:
  DelayMatrix() = default;
  DelayMatrix(std::size_t n, std::int64_t fill_us) : n_(n), us_(n * n, fill_us) {}

  std::size_t size() const noexcept { return n_; }
  std::int64_t at(NodeId src, NodeId dst) const { return us_.at(index(src, dst)); }
  void set(NodeId src, NodeId dst, std::int64_t us) { us_.at(index(src, dst)) = us; }

 private:
  std::size_t index(NodeId src, NodeId dst) const { return static_cast<std::size_t>(src) * n_ + dst; }
  std::size_t n_ = 0;
  std::vector<std::int64_t> us_;
};

class LatencyModel {
 public:
  virtual ~LatencyModel() = default;

  /// One-way delay for `bytes` from `src` to `dst`.
  virtual sim::SimTime sample(NodeId src, NodeId dst, std::size_t bytes,
                              sim::Rng& rng) const = 0;
};

/// Fixed delay regardless of pair and size (unit tests, analytic checks).
class ConstantLatency final : public LatencyModel {
 public:
  explicit ConstantLatency(sim::SimTime delay) : delay_(delay) {}
  sim::SimTime sample(NodeId, NodeId, std::size_t, sim::Rng&) const override {
    return delay_;
  }

 private:
  sim::SimTime delay_;
};

/// Uniform in [lo, hi], size-independent.
class UniformLatency final : public LatencyModel {
 public:
  UniformLatency(sim::SimTime lo, sim::SimTime hi) : lo_(lo), hi_(hi) {}
  sim::SimTime sample(NodeId, NodeId, std::size_t, sim::Rng& rng) const override;

 private:
  sim::SimTime lo_;
  sim::SimTime hi_;
};

/// LAN: per-pair base + exponential jitter + bandwidth term.
class LanLatency final : public LatencyModel {
 public:
  LanLatency(DelayMatrix base, double jitter_mean_us, double bytes_per_us);
  sim::SimTime sample(NodeId src, NodeId dst, std::size_t bytes,
                      sim::Rng& rng) const override;

 private:
  DelayMatrix base_;
  double jitter_mean_us_;
  double bytes_per_us_;
};

/// WAN: per-pair base + Pareto jitter (heavy tail) + bandwidth term +
/// Bernoulli transient spike adding a large extra delay.
class WanLatency final : public LatencyModel {
 public:
  struct Params {
    double jitter_alpha = 2.5;      ///< Pareto shape (smaller = heavier tail)
    double jitter_scale_us = 2000;  ///< Pareto scale (minimum jitter)
    double bytes_per_us = 1.25;     ///< ~10 Mbit/s effective path bandwidth
    double spike_probability = 0.01;
    double spike_mean_us = 250'000;  ///< short transient outage, exp-distributed
  };

  WanLatency(DelayMatrix base, Params params);
  sim::SimTime sample(NodeId src, NodeId dst, std::size_t bytes,
                      sim::Rng& rng) const override;

 private:
  DelayMatrix base_;
  Params params_;
};

/// One directed link's empirical delay distribution, measured off a real
/// cluster run (TraceDump link samples, clock-aligned by the merge step).
/// `quantiles_us` is an inverse-CDF table: evenly spaced quantiles of the
/// aligned one-way delays from the 0th to the 100th percentile, ascending.
struct LinkCalibration {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::uint64_t count = 0;  ///< samples behind the table
  std::vector<std::int64_t> quantiles_us;
};

/// The whole measured mesh — what a calibration file deserializes to.
/// (JSON I/O lives in trace/merge; this layer stays dependency-free.)
struct CalibrationTable {
  std::vector<LinkCalibration> links;
  bool empty() const noexcept { return links.empty(); }
  /// Median (p50) of a link's table; -1 when the link is absent.
  std::int64_t median_us(NodeId src, NodeId dst) const noexcept;
};

/// Replays a measured per-link delay distribution by inverse-CDF sampling:
/// draw u ~ U[0,1), interpolate linearly between the two nearest quantile
/// table entries. Pairs without a measured link fall back to the median of
/// all measured links (or `fallback` when the table is empty) — a sim can
/// run wider than the cluster that was measured.
class CalibratedLatency final : public LatencyModel {
 public:
  explicit CalibratedLatency(CalibrationTable table,
                             sim::SimTime fallback = sim::SimTime::millis(2));
  sim::SimTime sample(NodeId src, NodeId dst, std::size_t bytes,
                      sim::Rng& rng) const override;

  /// Feedback-loop report: per measured link, the table's median vs the
  /// median of what sample() actually produced this run. This is the 10%
  /// closure check — the sim reproducing the wire it was calibrated from.
  struct LinkReport {
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    std::uint64_t samples = 0;        ///< draws this run
    std::int64_t target_p50_us = 0;   ///< median of the calibration table
    std::int64_t sampled_p50_us = 0;  ///< median of this run's draws
    /// Draws strictly below the target median. If the model reproduces the
    /// table, this is Binomial(samples, 1/2) — the distribution-free check
    /// the closure gate falls back on where the quantile ramp around the
    /// median is too steep for a point comparison at this sample size.
    std::uint64_t below_target = 0;
  };
  std::vector<LinkReport> report() const;

 private:
  struct Link {
    std::vector<std::int64_t> quantiles_us;
    /// Draws this run, bounded; mutated from const sample() — the simulator
    /// is single-threaded, and the tally never affects sampling.
    mutable std::vector<std::int64_t> drawn_us;
  };
  const Link* find(NodeId src, NodeId dst) const noexcept;
  std::int64_t draw(const Link& link, sim::Rng& rng) const;

  CalibrationTable table_;
  std::vector<Link> links_;  ///< parallel to table_.links
  std::vector<std::int64_t> fallback_quantiles_;
  Link fallback_;
};

}  // namespace marp::net

// MarpServer — the replicated-server side of the protocol (Algorithm 2).
//
// A MarpServer buffers client requests and dispatches UpdateAgents (§3.2),
// serves visiting agents locally (lock request, LL/UL snapshots, routing
// table, data versions, gossip cache), and handles the UPDATE / COMMIT /
// RELEASE / REPORT coordination messages.
//
// The keyspace is sharded into `config.num_lock_groups` lock groups (see
// shard/lock_space.hpp): every group runs an independent instance of the
// paper's Locking-List machinery, so updates whose write-sets land in
// disjoint groups never contend. With the default of one group this is
// exactly the paper's single replica-wide lock.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "agent/platform.hpp"
#include "marp/config.hpp"
#include "marp/priority.hpp"
#include "marp/wire.hpp"
#include "membership/mapped_quorum.hpp"
#include "membership/view.hpp"
#include "replica/locking.hpp"
#include "replica/request.hpp"
#include "replica/server.hpp"
#include "shard/lock_space.hpp"
#include "shard/router.hpp"

namespace marp::core {

class MarpProtocol;

/// Name under which the server publishes itself to visiting agents.
inline constexpr const char* kMarpServiceName = "marp";

/// What a visiting agent takes away from one local interaction (§3.3): the
/// locking lists of the groups its write-set touches (with itself appended),
/// the updated list, the routing table, the freshest local copies of the
/// keys it will write, and any gossip left by earlier visitors.
struct VisitResult {
  std::map<shard::GroupId, LockSnapshot> locking_lists;
  std::vector<agent::AgentId> updated_list;
  std::vector<std::int64_t> routing_costs;
  std::map<std::string, replica::VersionedValue> data;
  GroupLockTable gossip;
  /// Server's membership epoch at visit time (0 = static membership). A
  /// visiting agent born under an older epoch must abort-and-re-tour.
  std::uint64_t epoch = 0;
};

class MarpServer : public replica::ServerBase {
 public:
  MarpServer(net::Network& network, agent::AgentPlatform& platform,
             net::NodeId node, const MarpConfig& config, MarpProtocol& protocol);

  const MarpConfig& config() const noexcept { return config_; }
  MarpProtocol& protocol() noexcept { return protocol_; }
  std::size_t cluster_size() const noexcept { return network_.size(); }
  agent::AgentPlatform& platform() noexcept { return platform_; }

  /// Client entry point: reads answer from the local copy; writes are
  /// buffered and shipped with the next UpdateAgent.
  void submit(const replica::Request& request);

  // ---- local interface used by agents hosted on this node ----

  /// One visit: append `visitor` to the LL of every group its keys route to
  /// (idempotent), exchange gossip, and return everything the agent records
  /// in its data structures. An empty key set queues in group 0 only.
  VisitResult visit(const agent::AgentId& visitor,
                    const std::vector<std::string>& keys,
                    const GroupLockTable& carried_gossip);

  /// Cheap local refresh for an agent already resident here (used on
  /// lock-change signals): fresh LL snapshots + UL only, no gossip exchange,
  /// no data reads — a waiting agent only needs the head information.
  /// Empty `groups` means group 0.
  struct RefreshResult {
    std::map<shard::GroupId, LockSnapshot> locking_lists;
    std::vector<agent::AgentId> updated_list;
  };
  RefreshResult refresh(const agent::AgentId& visitor,
                        const std::vector<shard::GroupId>& groups = {});

  /// Outcome of an UPDATE at this server.
  enum class GrantResult : std::uint8_t {
    Granted,    ///< ops staged, every requested grant (re)taken — ACK
    Held,       ///< some requested group's grant is held — NACK with the holder
    Stale,      ///< from a committed agent or a withdrawn attempt — drop
    EpochStale, ///< wrong epoch, or a newer view is promised — EpochNotice
    CatchingUp  ///< member still syncing after a view change — silent refusal
  };

  /// Stage the ops and take the update grants of `payload.groups`,
  /// all-or-nothing in ascending group order. `Held` is the structural
  /// enforcement of Theorem 2 per group: two agents can never both assemble
  /// > N/2 grants of the same group, because each server grants a group to
  /// one session at a time. On Held, nothing is taken and `*conflict_group`
  /// (when non-null) names the first conflicting group. `Stale` rejects
  /// reordered UPDATEs that would otherwise resurrect dead grants.
  GrantResult handle_update_local(const UpdatePayload& payload,
                                  shard::GroupId* conflict_group = nullptr);
  /// Idempotent: a duplicated or reordered COMMIT (agent already in the UL)
  /// re-applies the ops under the Thomas write rule — no double version
  /// bump, no lock churn — and is counted as a DuplicateCommit anomaly.
  void handle_commit_local(const CommitPayload& payload);
  void handle_release_local(const ReleasePayload& payload);
  /// Release only the update grants/staged ops, keeping the LL entries —
  /// used by a claimant demoted by a NACK. Records the attempt so a delayed
  /// UPDATE of that attempt cannot re-take the grants afterwards.
  void handle_unlock_local(const agent::AgentId& agent, std::uint32_t attempt);
  /// Deduplicated on the reporting agent's id: a retransmitted REPORT is
  /// counted (DuplicateReport) and re-acknowledged, never double-reported.
  /// Request ids that are unknown *and* not a duplicate are counted as
  /// OrphanedReport — the origin crashed and lost its outstanding table.
  /// `from` (when valid) names the node hosting the agent, which gets a
  /// kMsgReportAck so it can stop retransmitting.
  void handle_report_local(const ReportPayload& payload,
                           net::NodeId from = net::kInvalidNode);
  void handle_read_report_local(const ReadReportPayload& payload);

  /// Agent currently holding group `g`'s update grant (tests/monitor).
  const std::optional<agent::AgentId>& update_holder(shard::GroupId g = 0) const {
    return lock_space_.group(g).holder;
  }

  /// Highest version this server has applied (commits + anti-entropy).
  /// Rides every ACK so the winner can stamp its writes above everything
  /// its quorum's grant holders had committed at grant time.
  const replica::Version& applied_high() const noexcept { return applied_high_; }
  /// Recovery hook: store restores bypass handle_commit_local (force()), so
  /// a reborn node re-seeds its floor from the recovered manifest.
  void raise_applied_high(const replica::Version& version) {
    if (version > applied_high_) applied_high_ = version;
  }

  // ---- dynamic membership (config().membership.enabled()) ----

  /// This server's installed view (epoch 0 object when membership is off).
  const membership::MembershipView& view() const noexcept { return view_; }
  std::uint64_t epoch() const noexcept { return view_.epoch; }
  /// Member of the installed view (vacuously true with membership off).
  bool in_view() const noexcept {
    return !config_.membership.enabled() || view_.is_member(node());
  }
  /// Joining/gaining member that has not yet finished its catch-up sync; it
  /// refuses update grants until the first store merge completes.
  bool catching_up() const noexcept { return catching_up_; }
  /// Former member that left via a view change: drained, refuses everything.
  bool retired() const noexcept { return retired_; }

  /// Install a view without the two-phase dance (initial view at construction
  /// time, from MarpProtocol).
  void install_view(const membership::MembershipView& view);
  /// Per-group quorum geometry of the installed view, mapped onto the
  /// group's replica list. Null when membership is off.
  const membership::MappedQuorum* group_quorum(shard::GroupId g) const;

  /// Coordinator entry point: start a two-phase change to `new_active`
  /// (propose to old ∪ new members, activate once a write quorum of every
  /// group's old replicas promised). False if a change is already pending
  /// here or the target equals the current membership.
  bool begin_view_change(std::vector<net::NodeId> new_active);

  /// Network message entry point (registered as the node's app handler).
  void handle_message(const net::Message& message);

  /// Failure notification (§2): drop all state owned by `dead` agents.
  void purge_agents(const std::vector<agent::AgentId>& dead);

  /// Drop every piece of coordination state (locking lists, updated list,
  /// staged ops, grants, gossip) without touching the store — used by a
  /// rollback to abort all in-flight update sessions at this server.
  void reset_coordination();

  /// One on-demand anti-entropy round: ask up to `max_peers` random live
  /// peers for their stores (replies merge under the Thomas write rule).
  /// Returns the number of requests actually sent. Unlike the recurring
  /// anti_entropy_interval tick this schedules nothing, so a real node can
  /// drive reconciliation from wall-clock timers without the simulator's
  /// event queue spinning forever.
  std::size_t sync_pull(std::size_t max_peers = 1);

  /// Observer fired after each kMsgSyncRep is merged, with the number of
  /// items the Thomas rule actually applied (catch-up accounting).
  using SyncListener = std::function<void(std::size_t applied)>;
  void set_sync_listener(SyncListener listener) { sync_listener_ = std::move(listener); }

  const replica::LockingList& locking_list(shard::GroupId g = 0) const {
    return lock_space_.group(g).ll;
  }
  const shard::LockSpace& lock_space() const noexcept { return lock_space_; }
  const shard::ShardRouter& router() const noexcept { return router_; }
  const replica::UpdatedList& updated_list() const noexcept { return ul_; }
  std::size_t pending_requests() const noexcept { return pending_.size(); }

 protected:
  void on_fail() override;
  /// With config().recovery_sync, pulls the current store from a live peer
  /// (extension — otherwise the replica only catches up via later commits).
  void on_recover() override;

 private:
  void dispatch_agent();
  void arm_batch_timer();
  void signal_lock_changed();
  /// Recurring anti-entropy tick (config.anti_entropy_interval > 0): ask a
  /// random live peer for its store, merge under the Thomas write rule.
  void anti_entropy_tick();
  /// Record lease-relevant activity of `agent` at this server.
  void touch_agent(const agent::AgentId& agent);
  /// Recurring lease sweep (config.agent_lease_timeout > 0): purge lock
  /// state of remote agents idle past the lease (see config comment).
  void lease_tick();

  // ---- dynamic membership internals ----
  void handle_view_propose(const ViewProposePayload& payload);
  void handle_view_ack(const ViewAckPayload& payload);
  /// Make `view` current: rebuild the per-group quorum cache, start catch-up
  /// when this node gained groups, drain and retire when it left.
  void activate_view(const membership::MembershipView& view);
  void rebuild_group_quorums();
  /// Newest view this node knows of (pending promise included) — the one a
  /// catch-up merge filters hosted keys against.
  const membership::MembershipView& newest_view() const noexcept {
    return pending_view_ ? *pending_view_ : view_;
  }
  /// Peer eligible as a sync/anti-entropy source: live and (when membership
  /// is on) a member of the installed view, where the data lives.
  bool sync_peer_ok(net::NodeId peer) const;

  agent::AgentPlatform& platform_;
  const MarpConfig& config_;
  MarpProtocol& protocol_;

  shard::ShardRouter router_;
  /// Per-group locking lists and grant holders.
  shard::LockSpace lock_space_;
  /// The UL stays global: an agent finishes all its groups atomically.
  replica::UpdatedList ul_;
  GroupLockTable gossip_cache_;
  std::map<agent::AgentId, std::vector<WriteOp>> staged_;
  replica::Version applied_high_;  ///< max version ever applied here
  /// Highest attempt each live agent has withdrawn (entries die with the
  /// agent's commit/purge). Guards against reordered stale UPDATEs.
  std::map<agent::AgentId, std::uint32_t> unlocked_attempts_;
  /// Agents whose REPORT this origin has already processed (bounded, like
  /// the UL) — retransmitted reports are re-acked but not double-counted.
  replica::UpdatedList reported_;

  // ---- dynamic membership state (all inert when membership is off) ----
  membership::MembershipView view_;
  /// Per-group geometry cache over view_.group_replicas.
  std::vector<std::unique_ptr<membership::MappedQuorum>> group_quorums_;
  /// Promised-but-not-activated view. Holding a promise fences UPDATE
  /// grants of older epochs (phase 1 of the change is the safety fence).
  std::optional<membership::MembershipView> pending_view_;
  /// Coordinator state of an in-flight change started here.
  struct PendingChange {
    membership::MembershipView view;
    quorum::NodeSet acks;
    std::vector<net::NodeId> targets;       ///< old ∪ new active
    membership::MembershipView old_view;    ///< promise quorum measured here
  };
  std::optional<PendingChange> change_;
  bool catching_up_ = false;
  bool retired_ = false;

  std::vector<replica::Request> pending_;
  std::unordered_map<std::uint64_t, replica::Request> outstanding_;
  std::optional<sim::EventId> batch_timer_;
  sim::Rng anti_entropy_rng_;
  SyncListener sync_listener_;
  /// Last lease-relevant activity per agent with live lock state here.
  std::map<agent::AgentId, sim::SimTime> agent_activity_;
};

}  // namespace marp::core

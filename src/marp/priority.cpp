#include "marp/priority.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace marp::core {

void LockSnapshot::serialize(serial::Writer& w) const {
  w.seq(agents, [](serial::Writer& ww, const agent::AgentId& id) { id.serialize(ww); });
  w.svarint(observed_us);
}

LockSnapshot LockSnapshot::deserialize(serial::Reader& r) {
  LockSnapshot s;
  s.agents = r.seq<agent::AgentId>(
      [](serial::Reader& rr) { return agent::AgentId::deserialize(rr); });
  s.observed_us = r.svarint();
  return s;
}

std::optional<agent::AgentId> filtered_head(
    const std::vector<agent::AgentId>& snapshot, const DoneSet& done) {
  for (const agent::AgentId& id : snapshot) {
    if (!done.contains(id)) return id;
  }
  return std::nullopt;
}

std::uint32_t vote_of(const VoteWeights& votes, net::NodeId node) {
  if (votes.empty()) return 1;
  MARP_REQUIRE(node < votes.size());
  return votes[node];
}

std::uint32_t total_votes(const VoteWeights& votes, std::size_t n_servers) {
  if (votes.empty()) return static_cast<std::uint32_t>(n_servers);
  MARP_REQUIRE(votes.size() == n_servers);
  std::uint32_t total = 0;
  for (std::uint32_t v : votes) total += v;
  return total;
}

std::map<agent::AgentId, std::uint32_t> top_counts(const LockTable& table,
                                                   const DoneSet& done,
                                                   const VoteWeights& votes) {
  std::map<agent::AgentId, std::uint32_t> counts;
  for (const auto& [node, snapshot] : table) {
    if (!snapshot.known()) continue;
    if (auto head = filtered_head(snapshot.agents, done)) {
      counts[*head] += vote_of(votes, node);
    }
  }
  return counts;
}

bool paper_tie_condition(std::uint32_t s, std::uint32_t m, std::size_t n) {
  // S + (N − M·S) < N/2, evaluated without integer truncation.
  const std::int64_t lhs =
      static_cast<std::int64_t>(s) +
      (static_cast<std::int64_t>(n) - static_cast<std::int64_t>(m) * s);
  return 2 * lhs < static_cast<std::int64_t>(n);
}

namespace {

// The SplitQuorum halves: ids below ⌈n/2⌉ and the rest.
quorum::NodeSet split_half(std::size_t n, bool upper) {
  const std::size_t cut = (n + 1) / 2;
  quorum::NodeSet half;
  for (std::size_t v = upper ? cut : 0; v < (upper ? n : cut); ++v) {
    half.push_back(static_cast<net::NodeId>(v));
  }
  return half;
}

// Geometry decision rule: coverage win, else optimistic tie-break once the
// known-head set spans a write quorum (see the decide() contract).
Decision decide_geometry(const LockTable& table, const DoneSet& done,
                         const agent::AgentId& self, TieBreakMode /*mode*/,
                         ProtocolMutant mutant,
                         const quorum::QuorumSystem& qs) {
  std::map<agent::AgentId, quorum::NodeSet> head_sets;
  quorum::NodeSet known;
  for (const auto& [node, snapshot] : table) {
    if (!snapshot.known()) continue;
    if (auto head = filtered_head(snapshot.agents, done)) {
      head_sets[*head].push_back(node);
      known.push_back(node);
    }
  }
  // LockTable iterates nodes ascending, so every NodeSet is already sorted.
  for (const auto& [id, nodes] : head_sets) {
    if (mutant_write_covered(qs, nodes, mutant)) {
      return {id == self ? Decision::Kind::Win : Decision::Kind::Lose, id};
    }
  }
  if (head_sets.empty() || !mutant_write_covered(qs, known, mutant)) return {};

  std::size_t max_count = 0;
  for (const auto& [id, nodes] : head_sets) {
    max_count = std::max(max_count, nodes.size());
  }
  std::vector<agent::AgentId> tied;
  for (const auto& [id, nodes] : head_sets) {
    if (nodes.size() == max_count) tied.push_back(id);
  }
  const agent::AgentId by_id = mutant == ProtocolMutant::TieBreakLargestId
                                   ? tied.back()
                                   : tied.front();
  return {by_id == self ? Decision::Kind::Win : Decision::Kind::Lose, by_id};
}

}  // namespace

bool mutant_write_covered(const quorum::QuorumSystem& qs,
                          const quorum::NodeSet& nodes, ProtocolMutant mutant) {
  if (mutant != ProtocolMutant::SplitQuorum) return qs.write_covered(nodes);
  for (const bool upper : {false, true}) {
    const quorum::NodeSet half = split_half(qs.size(), upper);
    if (std::includes(nodes.begin(), nodes.end(), half.begin(), half.end())) {
      return true;
    }
  }
  return false;
}

std::optional<quorum::NodeSet> mutant_pick_write_quorum(
    const quorum::QuorumSystem& qs, const quorum::NodeSet& excluded,
    net::NodeId prefer, ProtocolMutant mutant) {
  if (mutant != ProtocolMutant::SplitQuorum) {
    return qs.pick_write_quorum(excluded, prefer);
  }
  const std::size_t cut = (qs.size() + 1) / 2;
  const bool upper = prefer != net::kInvalidNode &&
                     static_cast<std::size_t>(prefer) < qs.size() &&
                     static_cast<std::size_t>(prefer) >= cut;
  quorum::NodeSet half = split_half(qs.size(), upper);
  std::erase_if(half, [&](net::NodeId v) { return quorum::contains(excluded, v); });
  if (half.empty()) return std::nullopt;
  return half;
}

Decision decide(const LockTable& table, const DoneSet& done,
                const agent::AgentId& self, std::size_t n_servers,
                TieBreakMode mode, const VoteWeights& votes,
                ProtocolMutant mutant, const quorum::QuorumSystem* quorum) {
  MARP_REQUIRE(n_servers >= 1);
  if (quorum != nullptr && quorum->geometry() != quorum::Geometry::Majority) {
    return decide_geometry(table, done, self, mode, mutant, *quorum);
  }
  const auto counts = top_counts(table, done, votes);
  const std::uint32_t all_votes = total_votes(votes, n_servers);

  // Majority rule: heading lists worth more than half the votes wins.
  // The MajorityOffByOne mutant lowers the bar to ⌈(V−1)/2⌉ — with three
  // one-vote servers a single list head "wins" (checker must catch this).
  for (const auto& [id, count] : counts) {
    const bool wins = mutant == ProtocolMutant::MajorityOffByOne
                          ? 2 * count >= all_votes - 1
                          : 2 * count > all_votes;
    if (wins) {
      return {id == self ? Decision::Kind::Win : Decision::Kind::Lose, id};
    }
  }

  // Tie handling needs the head of every list to be known and non-empty.
  std::size_t known_heads = 0;
  for (const auto& [node, snapshot] : table) {
    if (snapshot.known() && filtered_head(snapshot.agents, done)) ++known_heads;
  }
  if (known_heads < n_servers || counts.empty()) return {};

  std::uint32_t max_count = 0;
  for (const auto& [id, count] : counts) max_count = std::max(max_count, count);
  std::vector<agent::AgentId> tied;
  for (const auto& [id, count] : counts) {
    if (count == max_count) tied.push_back(id);
  }
  // std::map iterates ids in ascending order, so tied is sorted; the winner
  // by identifier is the front (Theorem 2's deterministic rule). The
  // TieBreakLargestId mutant takes the back instead.
  const agent::AgentId by_id = mutant == ProtocolMutant::TieBreakLargestId
                                   ? tied.back()
                                   : tied.front();

  switch (mode) {
    case TieBreakMode::PaperLiteral:
      // With weights, S and N are measured in votes rather than servers.
      if (!paper_tie_condition(max_count, static_cast<std::uint32_t>(tied.size()),
                               all_votes)) {
        return {};  // paper says "further processing is possible" — keep going
      }
      break;
    case TieBreakMode::TotalOrder:
      break;  // always resolvable with full information
  }
  return {by_id == self ? Decision::Kind::Win : Decision::Kind::Lose, by_id};
}

std::vector<agent::AgentId> predicted_order(const LockTable& table,
                                            const DoneSet& done,
                                            std::size_t n_servers,
                                            const VoteWeights& votes,
                                            std::size_t limit) {
  std::vector<agent::AgentId> order;
  DoneSet simulated = done;
  for (;;) {
    if (limit != 0 && order.size() >= limit) break;
    // The next winner under TotalOrder, with everyone ranked so far
    // treated as committed (their queue entries logically removed).
    const auto counts = top_counts(table, simulated, votes);
    if (counts.empty()) break;
    const std::uint32_t all_votes = total_votes(votes, n_servers);
    std::optional<agent::AgentId> winner;
    std::uint32_t best_count = 0;
    for (const auto& [id, count] : counts) {
      if (2 * count > all_votes) {
        winner = id;
        break;
      }
      if (count > best_count) best_count = count;
    }
    if (!winner) {
      // Tie path needs every head known; otherwise the prediction stops.
      std::size_t known_heads = 0;
      for (const auto& [node, snapshot] : table) {
        if (snapshot.known() && filtered_head(snapshot.agents, simulated)) {
          ++known_heads;
        }
      }
      if (known_heads < n_servers) break;
      for (const auto& [id, count] : counts) {  // ascending id: first max wins
        if (count == best_count) {
          winner = id;
          break;
        }
      }
    }
    if (!winner) break;
    order.push_back(*winner);
    simulated.insert(*winner);
  }
  return order;
}

void merge_lock_tables(LockTable& table, const LockTable& incoming) {
  for (const auto& [node, snapshot] : incoming) {
    if (!snapshot.known()) continue;
    auto& slot = table[node];
    if (snapshot.observed_us > slot.observed_us) slot = snapshot;
  }
}

void merge_group_lock_tables(GroupLockTable& table, const GroupLockTable& incoming) {
  for (const auto& [group, tables] : incoming) {
    merge_lock_tables(table[group], tables);
  }
}

void serialize_lock_table(serial::Writer& w, const LockTable& table) {
  w.varint(table.size());
  for (const auto& [node, snapshot] : table) {
    w.varint(node);
    snapshot.serialize(w);
  }
}

LockTable deserialize_lock_table(serial::Reader& r) {
  LockTable table;
  const std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto node = static_cast<net::NodeId>(r.varint());
    table.emplace(node, LockSnapshot::deserialize(r));
  }
  return table;
}

void serialize_group_lock_table(serial::Writer& w, const GroupLockTable& table) {
  w.varint(table.size());
  for (const auto& [group, tables] : table) {
    w.varint(group);
    serialize_lock_table(w, tables);
  }
}

GroupLockTable deserialize_group_lock_table(serial::Reader& r) {
  GroupLockTable table;
  const std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto group = static_cast<shard::GroupId>(r.varint());
    table.emplace(group, deserialize_lock_table(r));
  }
  return table;
}

}  // namespace marp::core

#include "marp/protocol.hpp"

#include <algorithm>
#include <numeric>

#include "marp/priority.hpp"
#include "marp/read_agent.hpp"
#include "marp/update_agent.hpp"
#include "membership/placement.hpp"
#include "trace/tracer.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace marp::core {

MarpProtocol::MarpProtocol(net::Network& network, agent::AgentPlatform& platform,
                           MarpConfig config)
    : network_(network),
      platform_(platform),
      config_(std::move(config)),
      router_(config_.num_lock_groups),
      quorum_(quorum::make_quorum_system(config_.quorum, network.size(),
                                         config_.votes,
                                         config_.read_quorum_votes)) {
  MARP_REQUIRE_MSG(config_.votes.empty() || config_.votes.size() == network_.size(),
                   "votes must be empty or have one entry per server");
  if (!platform_.registry().contains(kUpdateAgentType)) {
    platform_.registry().register_type<UpdateAgent>(kUpdateAgentType);
  }
  if (!platform_.registry().contains(kReadAgentType)) {
    platform_.registry().register_type<ReadAgent>(kReadAgentType);
  }
  servers_.reserve(network_.size());
  for (net::NodeId node = 0; node < network_.size(); ++node) {
    servers_.push_back(
        std::make_unique<MarpServer>(network_, platform_, node, config_, *this));
    MarpServer* server = servers_.back().get();
    platform_.set_app_handler(
        node, [server](const net::Message& message) { server->handle_message(message); });
  }
  if (config_.membership.enabled()) {
    MARP_REQUIRE_MSG(config_.votes.empty(),
                     "weighted voting and dynamic membership are exclusive");
    std::size_t members = config_.membership.initial_members;
    if (members == 0 || members > network_.size()) members = network_.size();
    std::vector<net::NodeId> active(members);
    std::iota(active.begin(), active.end(), net::NodeId{0});
    const membership::MembershipView initial = membership::make_view(
        1, std::move(active), config_.membership.replication_factor,
        config_.num_lock_groups, &network_.topology());
    views_.push_back(initial);
    // Every node — spares included — starts knowing the initial view, so a
    // later join only has to move the epoch forward, never bootstrap it.
    for (auto& server : servers_) server->install_view(initial);
  }
}

MarpServer& MarpProtocol::server(net::NodeId node) {
  MARP_REQUIRE(node < servers_.size());
  return *servers_[node];
}

void MarpProtocol::submit(const replica::Request& request) {
  server(request.origin).submit(request);
}

void MarpProtocol::set_outcome_handler(replica::OutcomeHandler handler) {
  for (auto& server : servers_) server->set_outcome_handler(handler);
}

void MarpProtocol::fail_server(net::NodeId node) {
  MarpServer& failed = server(node);
  if (!failed.up()) return;
  // The process halts: the agents executing on it die with it.
  std::vector<agent::AgentId> dead = platform_.host(node).dispose_all();
  failed.fail();
  announce_agent_deaths(std::move(dead));
}

void MarpProtocol::announce_agent_deaths(std::vector<agent::AgentId> dead) {
  if (dead.empty()) return;
  // §2: "When a process fails, all other processes are informed of the
  // failure in a finite time" — after the notice delay, every live server
  // purges locking state owned by the dead agents so waiters can progress.
  network_.simulator().schedule(config_.failure_notice_delay,
                                [this, dead = std::move(dead)] {
    for (auto& srv : servers_) {
      if (srv->up()) srv->purge_agents(dead);
    }
  });
}

void MarpProtocol::recover_server(net::NodeId node) { server(node).recover(); }

void MarpProtocol::note_update_attempt(const agent::AgentId& agent,
                                       net::NodeId node) {
  ++stats_.update_attempts;
  if (phase_probe_) phase_probe_({ProtocolPhase::UpdateAttempt, agent, node});
}

void MarpProtocol::note_anomaly(Anomaly kind) {
  ProtocolAnomalies& a = stats_.anomalies;
  switch (kind) {
    case Anomaly::StaleAck: ++a.stale_acks; break;
    case Anomaly::StaleUpdate: ++a.stale_updates; break;
    case Anomaly::DuplicateUpdate: ++a.duplicate_updates; break;
    case Anomaly::DuplicateCommit: ++a.duplicate_commits; break;
    case Anomaly::DuplicateReport: ++a.duplicate_reports; break;
    case Anomaly::OrphanedReport: ++a.orphaned_reports; break;
    case Anomaly::CommitRetransmit: ++a.commit_retransmits; break;
    case Anomaly::ReportRetransmit: ++a.report_retransmits; break;
    case Anomaly::ReleaseRetransmit: ++a.release_retransmits; break;
    case Anomaly::FailedReadQuorum: ++a.failed_read_quorums; break;
    case Anomaly::EpochStaleUpdate: ++a.epoch_stale_updates; break;
    case Anomaly::EpochStaleAck: ++a.epoch_stale_acks; break;
    case Anomaly::JoinerRefusal: ++a.joiner_refusals; break;
  }
}

void MarpProtocol::note_update_quorum(const agent::AgentId& agent,
                                      const std::vector<shard::GroupId>& groups,
                                      net::NodeId node, std::uint64_t epoch) {
  // Per group: count its grant holders across live servers; a *different*
  // agent holding a majority of the same group at the same instant would
  // break Theorem 2 (groups are independent, so only same-group holders
  // compete).
  const std::vector<shard::GroupId> checked =
      groups.empty() ? std::vector<shard::GroupId>{0} : groups;
  if (config_.membership.enabled()) {
    // (group, epoch)-scoped form: grant-holder sets are tested against the
    // per-group replica geometry of every recorded view. A legitimate
    // winner's competitors can never cover a write quorum in *any* view
    // (grants are exclusive per server and quorums of one view intersect);
    // a mixed-epoch grant set assembled by the MixedEpoch mutant covers the
    // group's quorum in at least one of the views it straddles.
    (void)epoch;
    for (const shard::GroupId g : checked) {
      std::map<agent::AgentId, std::vector<net::NodeId>> held;
      for (const auto& server : servers_) {
        if (server->up() && server->update_holder(g)) {
          held[*server->update_holder(g)].push_back(server->node());
        }
      }
      for (const auto& [holder, nodes] : held) {
        if (holder == agent) continue;
        const quorum::NodeSet grant_set = quorum::make_node_set(nodes);
        for (const membership::MembershipView& view : views_) {
          const membership::MappedQuorum mapped(config_.quorum,
                                                view.replicas_of(g));
          if (mapped.write_covered(grant_set)) {
            ++stats_.mutex_violations;
            MARP_LOG_ERROR("marp")
                << "mutual exclusion violated in group " << g << " epoch "
                << view.epoch << ": " << holder.to_string() << " and "
                << agent.to_string() << " both hold write quorums";
            break;
          }
        }
      }
    }
    if (tracer_) tracer_->quorum_win(agent, node);
    if (phase_probe_) phase_probe_({ProtocolPhase::UpdateQuorum, agent, node});
    return;
  }
  const quorum::QuorumSystem* geometry = decision_quorum();
  for (const shard::GroupId g : checked) {
    if (geometry == nullptr) {
      // Seed form: a competing holder on more than half the live servers.
      std::map<agent::AgentId, std::size_t> held;
      for (const auto& server : servers_) {
        if (server->up() && server->update_holder(g)) {
          ++held[*server->update_holder(g)];
        }
      }
      for (const auto& [holder, count] : held) {
        if (holder != agent && 2 * count > servers_.size()) {
          ++stats_.mutex_violations;
          MARP_LOG_ERROR("marp") << "mutual exclusion violated in group " << g
                                 << ": " << holder.to_string() << " and "
                                 << agent.to_string() << " both hold majorities";
        }
      }
      continue;
    }
    // Geometry form: grants are exclusive per (server, group), so holder
    // grant sets are disjoint — a competing holder whose grants contain a
    // write quorum means two disjoint write quorums exist, i.e. the
    // intersection property failed. Crashed servers drop out of every set,
    // which only makes coverage harder, so this cannot false-positive.
    std::map<agent::AgentId, quorum::NodeSet> held;
    for (const auto& server : servers_) {
      if (server->up() && server->update_holder(g)) {
        held[*server->update_holder(g)].push_back(server->node());
      }
    }
    for (auto& [holder, nodes] : held) {
      if (holder == agent) continue;
      if (geometry->write_covered(quorum::make_node_set(std::move(nodes)))) {
        ++stats_.mutex_violations;
        MARP_LOG_ERROR("marp") << "mutual exclusion violated in group " << g
                               << ": " << holder.to_string() << " and "
                               << agent.to_string()
                               << " both hold write quorums";
      }
    }
  }
  if (tracer_) tracer_->quorum_win(agent, node);
  if (phase_probe_) phase_probe_({ProtocolPhase::UpdateQuorum, agent, node});
}

void MarpProtocol::note_update_commit(const agent::AgentId& agent,
                                      const std::vector<WriteOp>& ops,
                                      net::NodeId node) {
  ++stats_.updates_committed;
  CommitRecord record;
  record.agent = agent;
  record.committed = network_.simulator().now();
  record.entries.reserve(ops.size());
  for (const WriteOp& op : ops) {
    record.entries.push_back({op.key, router_.group_of(op.key), op.version});
  }
  commit_log_.push_back(std::move(record));
  if (phase_probe_) phase_probe_({ProtocolPhase::UpdateCommit, agent, node});
}

void MarpProtocol::note_update_abort(const agent::AgentId& agent,
                                     net::NodeId node) {
  ++stats_.updates_aborted;
  if (phase_probe_) phase_probe_({ProtocolPhase::UpdateAbort, agent, node});
}

void MarpProtocol::note_update_requeue(const agent::AgentId& agent) {
  (void)agent;
  ++stats_.lock_requeues;
}

const membership::MembershipView& MarpProtocol::current_view() const {
  MARP_REQUIRE(!views_.empty());
  return views_.back();
}

const membership::MembershipView* MarpProtocol::view_at(
    std::uint64_t epoch) const {
  for (const membership::MembershipView& view : views_) {
    if (view.epoch == epoch) return &view;
  }
  return nullptr;
}

void MarpProtocol::note_view_activated(const membership::MembershipView& view) {
  // First activation of an epoch records it; later servers installing the
  // same view are catch-up, not new changes.
  if (view_at(view.epoch) != nullptr) return;
  MARP_REQUIRE(views_.empty() || view.epoch > views_.back().epoch);
  views_.push_back(view);
  ++stats_.view_changes;
  MARP_LOG_INFO("marp") << "view epoch " << view.epoch << " activated with "
                        << view.active.size() << " members";
}

bool MarpProtocol::begin_view_change(std::vector<net::NodeId> new_active) {
  if (!config_.membership.enabled()) return false;
  // Coordinator: the lowest live member of the current view. The two-phase
  // change runs over normal protocol messages from that server.
  for (const net::NodeId member : current_view().active) {
    if (!servers_[member]->up()) continue;
    return servers_[member]->begin_view_change(std::move(new_active));
  }
  return false;
}

bool MarpProtocol::request_join(net::NodeId node) {
  if (!config_.membership.enabled() || node >= servers_.size()) return false;
  const membership::MembershipView& view = current_view();
  if (view.is_member(node)) return false;
  std::vector<net::NodeId> active = view.active;
  active.push_back(node);
  return begin_view_change(std::move(active));
}

bool MarpProtocol::request_leave(net::NodeId node) {
  if (!config_.membership.enabled()) return false;
  const membership::MembershipView& view = current_view();
  if (!view.is_member(node)) return false;
  std::vector<net::NodeId> active;
  active.reserve(view.active.size() - 1);
  for (const net::NodeId member : view.active) {
    if (member != node) active.push_back(member);
  }
  if (active.empty()) return false;
  return begin_view_change(std::move(active));
}

}  // namespace marp::core

#include "marp/protocol.hpp"

#include "marp/priority.hpp"
#include "marp/read_agent.hpp"
#include "marp/update_agent.hpp"
#include "trace/tracer.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace marp::core {

MarpProtocol::MarpProtocol(net::Network& network, agent::AgentPlatform& platform,
                           MarpConfig config)
    : network_(network),
      platform_(platform),
      config_(std::move(config)),
      router_(config_.num_lock_groups),
      quorum_(quorum::make_quorum_system(config_.quorum, network.size(),
                                         config_.votes,
                                         config_.read_quorum_votes)) {
  MARP_REQUIRE_MSG(config_.votes.empty() || config_.votes.size() == network_.size(),
                   "votes must be empty or have one entry per server");
  if (!platform_.registry().contains(kUpdateAgentType)) {
    platform_.registry().register_type<UpdateAgent>(kUpdateAgentType);
  }
  if (!platform_.registry().contains(kReadAgentType)) {
    platform_.registry().register_type<ReadAgent>(kReadAgentType);
  }
  servers_.reserve(network_.size());
  for (net::NodeId node = 0; node < network_.size(); ++node) {
    servers_.push_back(
        std::make_unique<MarpServer>(network_, platform_, node, config_, *this));
    MarpServer* server = servers_.back().get();
    platform_.set_app_handler(
        node, [server](const net::Message& message) { server->handle_message(message); });
  }
}

MarpServer& MarpProtocol::server(net::NodeId node) {
  MARP_REQUIRE(node < servers_.size());
  return *servers_[node];
}

void MarpProtocol::submit(const replica::Request& request) {
  server(request.origin).submit(request);
}

void MarpProtocol::set_outcome_handler(replica::OutcomeHandler handler) {
  for (auto& server : servers_) server->set_outcome_handler(handler);
}

void MarpProtocol::fail_server(net::NodeId node) {
  MarpServer& failed = server(node);
  if (!failed.up()) return;
  // The process halts: the agents executing on it die with it.
  std::vector<agent::AgentId> dead = platform_.host(node).dispose_all();
  failed.fail();
  announce_agent_deaths(std::move(dead));
}

void MarpProtocol::announce_agent_deaths(std::vector<agent::AgentId> dead) {
  if (dead.empty()) return;
  // §2: "When a process fails, all other processes are informed of the
  // failure in a finite time" — after the notice delay, every live server
  // purges locking state owned by the dead agents so waiters can progress.
  network_.simulator().schedule(config_.failure_notice_delay,
                                [this, dead = std::move(dead)] {
    for (auto& srv : servers_) {
      if (srv->up()) srv->purge_agents(dead);
    }
  });
}

void MarpProtocol::recover_server(net::NodeId node) { server(node).recover(); }

void MarpProtocol::note_update_attempt(const agent::AgentId& agent,
                                       net::NodeId node) {
  ++stats_.update_attempts;
  if (phase_probe_) phase_probe_({ProtocolPhase::UpdateAttempt, agent, node});
}

void MarpProtocol::note_anomaly(Anomaly kind) {
  ProtocolAnomalies& a = stats_.anomalies;
  switch (kind) {
    case Anomaly::StaleAck: ++a.stale_acks; break;
    case Anomaly::StaleUpdate: ++a.stale_updates; break;
    case Anomaly::DuplicateUpdate: ++a.duplicate_updates; break;
    case Anomaly::DuplicateCommit: ++a.duplicate_commits; break;
    case Anomaly::DuplicateReport: ++a.duplicate_reports; break;
    case Anomaly::OrphanedReport: ++a.orphaned_reports; break;
    case Anomaly::CommitRetransmit: ++a.commit_retransmits; break;
    case Anomaly::ReportRetransmit: ++a.report_retransmits; break;
    case Anomaly::ReleaseRetransmit: ++a.release_retransmits; break;
  }
}

void MarpProtocol::note_update_quorum(const agent::AgentId& agent,
                                      const std::vector<shard::GroupId>& groups,
                                      net::NodeId node) {
  // Per group: count its grant holders across live servers; a *different*
  // agent holding a majority of the same group at the same instant would
  // break Theorem 2 (groups are independent, so only same-group holders
  // compete).
  const std::vector<shard::GroupId> checked =
      groups.empty() ? std::vector<shard::GroupId>{0} : groups;
  const quorum::QuorumSystem* geometry = decision_quorum();
  for (const shard::GroupId g : checked) {
    if (geometry == nullptr) {
      // Seed form: a competing holder on more than half the live servers.
      std::map<agent::AgentId, std::size_t> held;
      for (const auto& server : servers_) {
        if (server->up() && server->update_holder(g)) {
          ++held[*server->update_holder(g)];
        }
      }
      for (const auto& [holder, count] : held) {
        if (holder != agent && 2 * count > servers_.size()) {
          ++stats_.mutex_violations;
          MARP_LOG_ERROR("marp") << "mutual exclusion violated in group " << g
                                 << ": " << holder.to_string() << " and "
                                 << agent.to_string() << " both hold majorities";
        }
      }
      continue;
    }
    // Geometry form: grants are exclusive per (server, group), so holder
    // grant sets are disjoint — a competing holder whose grants contain a
    // write quorum means two disjoint write quorums exist, i.e. the
    // intersection property failed. Crashed servers drop out of every set,
    // which only makes coverage harder, so this cannot false-positive.
    std::map<agent::AgentId, quorum::NodeSet> held;
    for (const auto& server : servers_) {
      if (server->up() && server->update_holder(g)) {
        held[*server->update_holder(g)].push_back(server->node());
      }
    }
    for (auto& [holder, nodes] : held) {
      if (holder == agent) continue;
      if (geometry->write_covered(quorum::make_node_set(std::move(nodes)))) {
        ++stats_.mutex_violations;
        MARP_LOG_ERROR("marp") << "mutual exclusion violated in group " << g
                               << ": " << holder.to_string() << " and "
                               << agent.to_string()
                               << " both hold write quorums";
      }
    }
  }
  if (tracer_) tracer_->quorum_win(agent, node);
  if (phase_probe_) phase_probe_({ProtocolPhase::UpdateQuorum, agent, node});
}

void MarpProtocol::note_update_commit(const agent::AgentId& agent,
                                      const std::vector<WriteOp>& ops,
                                      net::NodeId node) {
  ++stats_.updates_committed;
  CommitRecord record;
  record.agent = agent;
  record.committed = network_.simulator().now();
  record.entries.reserve(ops.size());
  for (const WriteOp& op : ops) {
    record.entries.push_back({op.key, router_.group_of(op.key), op.version});
  }
  commit_log_.push_back(std::move(record));
  if (phase_probe_) phase_probe_({ProtocolPhase::UpdateCommit, agent, node});
}

void MarpProtocol::note_update_abort(const agent::AgentId& agent,
                                     net::NodeId node) {
  ++stats_.updates_aborted;
  if (phase_probe_) phase_probe_({ProtocolPhase::UpdateAbort, agent, node});
}

void MarpProtocol::note_update_requeue(const agent::AgentId& agent) {
  (void)agent;
  ++stats_.lock_requeues;
}

}  // namespace marp::core

// Wire formats for MARP's coordination messages (Algorithm 1/2).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "agent/agent_id.hpp"
#include "membership/view.hpp"
#include "net/message.hpp"
#include "replica/versioned_store.hpp"
#include "serial/byte_buffer.hpp"
#include "shard/router.hpp"

namespace marp::core {

namespace wire_detail {
inline void write_groups(serial::Writer& w, const std::vector<shard::GroupId>& groups) {
  w.varint(groups.size());
  for (const shard::GroupId g : groups) w.varint(g);
}
inline std::vector<shard::GroupId> read_groups(serial::Reader& r) {
  const std::uint64_t n = r.length_prefix();
  std::vector<shard::GroupId> groups;
  groups.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    groups.push_back(static_cast<shard::GroupId>(r.varint()));
  }
  return groups;
}
}  // namespace wire_detail

// Message types (application channel, except Ack which rides the agent
// envelope back to the waiting agent).
constexpr net::MessageType kMsgUpdate = 0x0501;  ///< winner → all servers
constexpr net::MessageType kMsgAck = 0x0502;     ///< server → winning agent
constexpr net::MessageType kMsgCommit = 0x0503;  ///< winner → all servers
constexpr net::MessageType kMsgRelease = 0x0504; ///< aborting agent → servers
constexpr net::MessageType kMsgReport = 0x0505;  ///< winner → origin server
/// Server → claiming agent: another update session already holds this
/// server's ack; carries the holder's id so the loser can defer to it.
constexpr net::MessageType kMsgNack = 0x0506;
/// Demoted claimant → servers: release the ack-grant (keep my LL entry).
constexpr net::MessageType kMsgUnlock = 0x0507;
/// Read agent → origin server: result of a quorum read.
constexpr net::MessageType kMsgReadReport = 0x0509;
/// Recovering server → live peer: send me your store (recovery sync).
constexpr net::MessageType kMsgSyncReq = 0x050A;
/// Live peer → recovering server: full store dump.
constexpr net::MessageType kMsgSyncRep = 0x050B;
/// Server → committing agent: COMMIT applied here. The agent retransmits
/// COMMIT to servers that have not acknowledged, so a commit is never
/// half-applied under message loss (crashed servers catch up via recovery
/// sync / anti-entropy instead).
constexpr net::MessageType kMsgCommitAck = 0x050C;
/// Origin server → reporting agent: REPORT received (stops report
/// retransmission; duplicates are deduplicated at the origin).
constexpr net::MessageType kMsgReportAck = 0x050D;
/// View-change coordinator → members of old ∪ new view: adopt this pending
/// view (phase 1 of a membership change).
constexpr net::MessageType kMsgViewPropose = 0x050E;
/// Member → coordinator: pending view stored (phase-1 acknowledgement).
constexpr net::MessageType kMsgViewAck = 0x050F;
/// Coordinator → members of old ∪ new view: the proposal gathered a write
/// quorum of the old view — install it (phase 2, the epoch bump).
constexpr net::MessageType kMsgViewActivate = 0x0510;
/// Server → a session agent that used a stale epoch: here is the current
/// view; abort-and-re-tour under it.
constexpr net::MessageType kMsgEpochNotice = 0x0511;

/// Host-local signal raised when a locking list shrinks (commit/release/
/// purge) so waiting agents re-evaluate their priority.
constexpr std::uint32_t kSignalLockChanged = 1;

struct WriteOp {
  std::string key;
  std::string value;
  replica::Version version;

  void serialize(serial::Writer& w) const {
    w.str(key);
    w.str(value);
    version.serialize(w);
  }
  static WriteOp deserialize(serial::Reader& r) {
    WriteOp op;
    op.key = r.str();
    op.value = r.str();
    op.version = replica::Version::deserialize(r);
    return op;
  }
};

/// UPDATE: stage these writes, take the grants of `groups`, and acknowledge
/// to the agent at `reply_to`. `attempt` sequences the agent's update
/// attempts so stale ACK/NACKs from a withdrawn attempt cannot confuse a
/// newer one. `groups` is the write-set's lock-group set, ascending; empty
/// means the degenerate single-group space {0}.
struct UpdatePayload {
  agent::AgentId agent;
  net::NodeId reply_to = 0;
  std::uint32_t attempt = 0;
  std::vector<WriteOp> ops;
  std::vector<shard::GroupId> groups;
  /// Membership epoch the session was born under; 0 = static membership.
  /// Trailing-optional on the wire: written only when non-zero, so the
  /// disabled path stays byte-identical to the seed format.
  std::uint64_t epoch = 0;

  serial::Bytes encode() const {
    serial::Writer w;
    agent.serialize(w);
    w.varint(reply_to);
    w.varint(attempt);
    w.seq(ops, [](serial::Writer& ww, const WriteOp& op) { op.serialize(ww); });
    wire_detail::write_groups(w, groups);
    if (epoch != 0) w.varint(epoch);
    return w.take();
  }
  static UpdatePayload decode(const serial::Bytes& bytes) {
    serial::Reader r(bytes);
    UpdatePayload p;
    p.agent = agent::AgentId::deserialize(r);
    p.reply_to = static_cast<net::NodeId>(r.varint());
    p.attempt = static_cast<std::uint32_t>(r.varint());
    p.ops = r.seq<WriteOp>([](serial::Reader& rr) { return WriteOp::deserialize(rr); });
    p.groups = wire_detail::read_groups(r);
    if (!r.at_end()) p.epoch = r.varint();
    return p;
  }
};

/// ACK: `server` staged the winner's update (for attempt `attempt`).
/// `applied_high` is the highest version the server has applied so far; the
/// winner must stamp its writes above the max over its quorum's ACKs. The
/// grant is exclusive from ACK until commit, so any predecessor's commit at
/// a shared quorum member happens-before that member's ACK — intersection
/// then makes the floor cover every predecessor, for any quorum geometry.
/// (Version floors from the tour alone are not enough: a visit snapshot can
/// predate a concurrent session's commit that lands before this grant.)
struct AckPayload {
  net::NodeId server = 0;
  std::uint32_t attempt = 0;
  replica::Version applied_high;
  /// Granting server's membership epoch (trailing-optional, like
  /// UpdatePayload::epoch). The winner discards ACKs whose epoch differs
  /// from its own, so no quorum can mix grants from two views.
  std::uint64_t epoch = 0;

  serial::Bytes encode() const {
    serial::Writer w;
    w.varint(server);
    w.varint(attempt);
    applied_high.serialize(w);
    if (epoch != 0) w.varint(epoch);
    return w.take();
  }
  static AckPayload decode(const serial::Bytes& bytes) {
    serial::Reader r(bytes);
    AckPayload p;
    p.server = static_cast<net::NodeId>(r.varint());
    p.attempt = static_cast<std::uint32_t>(r.varint());
    p.applied_high = replica::Version::deserialize(r);
    if (!r.at_end()) p.epoch = r.varint();
    return p;
  }
};

/// COMMIT: apply the writes, drop the winner's locks in `groups`, record it
/// in the UL. Carries the ops so a server that missed the UPDATE still
/// converges. Empty `groups` means "sweep every group" (degenerate /
/// compatibility path). Delivery is idempotent: a duplicated or reordered
/// COMMIT re-applies under the Thomas write rule (no double version bump)
/// and is counted as a protocol anomaly. `reply_to` names the node hosting
/// the committing agent so receivers can acknowledge (kMsgCommitAck);
/// kInvalidNode suppresses the ack (legacy senders/tests).
struct CommitPayload {
  agent::AgentId agent;
  std::vector<WriteOp> ops;
  std::vector<shard::GroupId> groups;
  net::NodeId reply_to = net::kInvalidNode;
  /// Epoch the committed session ran under (trailing-optional). COMMIT is
  /// *not* epoch-fenced — data application follows the Thomas write rule
  /// regardless of view, so convergence survives reconfiguration — the
  /// stamp exists for the audit trail and the commit-log oracle.
  std::uint64_t epoch = 0;

  serial::Bytes encode() const {
    serial::Writer w;
    agent.serialize(w);
    w.seq(ops, [](serial::Writer& ww, const WriteOp& op) { op.serialize(ww); });
    wire_detail::write_groups(w, groups);
    w.varint(reply_to);
    if (epoch != 0) w.varint(epoch);
    return w.take();
  }
  static CommitPayload decode(const serial::Bytes& bytes) {
    serial::Reader r(bytes);
    CommitPayload p;
    p.agent = agent::AgentId::deserialize(r);
    p.ops = r.seq<WriteOp>([](serial::Reader& rr) { return WriteOp::deserialize(rr); });
    p.groups = wire_detail::read_groups(r);
    p.reply_to = static_cast<net::NodeId>(r.varint());
    if (!r.at_end()) p.epoch = r.varint();
    return p;
  }
};

/// COMMIT-ACK: `server` has applied (or already had) the agent's commit.
struct CommitAckPayload {
  net::NodeId server = 0;

  serial::Bytes encode() const {
    serial::Writer w;
    w.varint(server);
    return w.take();
  }
  static CommitAckPayload decode(const serial::Bytes& bytes) {
    serial::Reader r(bytes);
    CommitAckPayload p;
    p.server = static_cast<net::NodeId>(r.varint());
    return p;
  }
};

/// UNLOCK: a demoted claimant returns the grants of a specific attempt.
/// Carrying the attempt lets servers reject UPDATEs reordered after their
/// own withdrawal (a delayed UPDATE must not resurrect a dead grant).
struct UnlockPayload {
  agent::AgentId agent;
  std::uint32_t attempt = 0;

  serial::Bytes encode() const {
    serial::Writer w;
    agent.serialize(w);
    w.varint(attempt);
    return w.take();
  }
  static UnlockPayload decode(const serial::Bytes& bytes) {
    serial::Reader r(bytes);
    UnlockPayload p;
    p.agent = agent::AgentId::deserialize(r);
    p.attempt = static_cast<std::uint32_t>(r.varint());
    return p;
  }
};

/// RELEASE: an aborting agent withdraws its lock requests from `groups`
/// (every group when empty).
struct ReleasePayload {
  agent::AgentId agent;
  std::vector<shard::GroupId> groups;
  /// Node hosting the releasing agent; valid only when the sender wants an
  /// ack (kMsgCommitAck) so it can stop retransmitting. A RELEASE lost on
  /// the wire is otherwise fatal: the dead entry stays at the head of the
  /// Locking List forever and wedges the server.
  net::NodeId reply_to = net::kInvalidNode;

  serial::Bytes encode() const {
    serial::Writer w;
    agent.serialize(w);
    wire_detail::write_groups(w, groups);
    w.varint(reply_to);
    return w.take();
  }
  static ReleasePayload decode(const serial::Bytes& bytes) {
    serial::Reader r(bytes);
    ReleasePayload p;
    p.agent = agent::AgentId::deserialize(r);
    p.groups = wire_detail::read_groups(r);
    p.reply_to = static_cast<net::NodeId>(r.varint());
    return p;
  }
};

/// NACK: the grant of lock group `group` at this server is held by
/// `holder` — the first conflicting group in ascending order.
struct NackPayload {
  net::NodeId server = 0;
  std::uint32_t attempt = 0;
  agent::AgentId holder;
  shard::GroupId group = 0;

  serial::Bytes encode() const {
    serial::Writer w;
    w.varint(server);
    w.varint(attempt);
    holder.serialize(w);
    w.varint(group);
    return w.take();
  }
  static NackPayload decode(const serial::Bytes& bytes) {
    serial::Reader r(bytes);
    NackPayload p;
    p.server = static_cast<net::NodeId>(r.varint());
    p.attempt = static_cast<std::uint32_t>(r.varint());
    p.holder = agent::AgentId::deserialize(r);
    p.group = static_cast<shard::GroupId>(r.varint());
    return p;
  }
};

/// REPORT: the agent tells its origin server how its batch fared.
struct ReportPayload {
  agent::AgentId agent;
  std::vector<std::uint64_t> request_ids;
  bool success = false;
  std::int64_t dispatched_us = 0;
  std::int64_t lock_obtained_us = 0;
  std::int64_t committed_us = 0;
  std::uint32_t servers_visited = 0;

  serial::Bytes encode() const {
    serial::Writer w;
    agent.serialize(w);
    w.seq(request_ids, [](serial::Writer& ww, std::uint64_t id) { ww.varint(id); });
    w.boolean(success);
    w.svarint(dispatched_us);
    w.svarint(lock_obtained_us);
    w.svarint(committed_us);
    w.varint(servers_visited);
    return w.take();
  }
  static ReportPayload decode(const serial::Bytes& bytes) {
    serial::Reader r(bytes);
    ReportPayload p;
    p.agent = agent::AgentId::deserialize(r);
    p.request_ids =
        r.seq<std::uint64_t>([](serial::Reader& rr) { return rr.varint(); });
    p.success = r.boolean();
    p.dispatched_us = r.svarint();
    p.lock_obtained_us = r.svarint();
    p.committed_us = r.svarint();
    p.servers_visited = static_cast<std::uint32_t>(r.varint());
    return p;
  }
};

/// READ-REPORT: outcome of a quorum read (freshest copy seen by the quorum).
struct ReadReportPayload {
  std::uint64_t request_id = 0;
  bool success = false;
  std::string value;
  replica::Version version;
  std::uint32_t servers_visited = 0;

  serial::Bytes encode() const {
    serial::Writer w;
    w.varint(request_id);
    w.boolean(success);
    w.str(value);
    version.serialize(w);
    w.varint(servers_visited);
    return w.take();
  }
  static ReadReportPayload decode(const serial::Bytes& bytes) {
    serial::Reader r(bytes);
    ReadReportPayload p;
    p.request_id = r.varint();
    p.success = r.boolean();
    p.value = r.str();
    p.version = replica::Version::deserialize(r);
    p.servers_visited = static_cast<std::uint32_t>(r.varint());
    return p;
  }
};

/// SYNC-REP: full store transfer to a recovering replica.
struct SyncPayload {
  struct Item {
    std::string key;
    std::string value;
    replica::Version version;
  };
  std::vector<Item> items;

  serial::Bytes encode() const {
    serial::Writer w;
    w.seq(items, [](serial::Writer& ww, const Item& item) {
      ww.str(item.key);
      ww.str(item.value);
      item.version.serialize(ww);
    });
    return w.take();
  }
  static SyncPayload decode(const serial::Bytes& bytes) {
    serial::Reader r(bytes);
    SyncPayload p;
    p.items = r.seq<Item>([](serial::Reader& rr) {
      Item item;
      item.key = rr.str();
      item.value = rr.str();
      item.version = replica::Version::deserialize(rr);
      return item;
    });
    return p;
  }
};

/// VIEW-PROPOSE: phase 1 of a membership change. `coordinator` asks the
/// members of old ∪ new view to stage `view` as pending.
struct ViewProposePayload {
  net::NodeId coordinator = net::kInvalidNode;
  membership::MembershipView view;

  serial::Bytes encode() const {
    serial::Writer w;
    w.varint(coordinator);
    view.serialize(w);
    return w.take();
  }
  static ViewProposePayload decode(const serial::Bytes& bytes) {
    serial::Reader r(bytes);
    ViewProposePayload p;
    p.coordinator = static_cast<net::NodeId>(r.varint());
    p.view = membership::MembershipView::deserialize(r);
    return p;
  }
};

/// VIEW-ACK: `server` staged the pending view of `epoch`.
struct ViewAckPayload {
  net::NodeId server = 0;
  std::uint64_t epoch = 0;

  serial::Bytes encode() const {
    serial::Writer w;
    w.varint(server);
    w.varint(epoch);
    return w.take();
  }
  static ViewAckPayload decode(const serial::Bytes& bytes) {
    serial::Reader r(bytes);
    ViewAckPayload p;
    p.server = static_cast<net::NodeId>(r.varint());
    p.epoch = r.varint();
    return p;
  }
};

/// VIEW-ACTIVATE: phase 2 — install `view` (the epoch bump). Carries the
/// full view again so a member that missed the proposal still converges.
struct ViewActivatePayload {
  membership::MembershipView view;

  serial::Bytes encode() const {
    serial::Writer w;
    view.serialize(w);
    return w.take();
  }
  static ViewActivatePayload decode(const serial::Bytes& bytes) {
    serial::Reader r(bytes);
    ViewActivatePayload p;
    p.view = membership::MembershipView::deserialize(r);
    return p;
  }
};

/// EPOCH-NOTICE: a server refused a stale-epoch UPDATE; here is its current
/// view so the session can abort-and-re-tour under it without revisiting.
struct EpochNoticePayload {
  net::NodeId server = 0;
  membership::MembershipView view;

  serial::Bytes encode() const {
    serial::Writer w;
    w.varint(server);
    view.serialize(w);
    return w.take();
  }
  static EpochNoticePayload decode(const serial::Bytes& bytes) {
    serial::Reader r(bytes);
    EpochNoticePayload p;
    p.server = static_cast<net::NodeId>(r.varint());
    p.view = membership::MembershipView::deserialize(r);
    return p;
  }
};

}  // namespace marp::core

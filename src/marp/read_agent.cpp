#include "marp/read_agent.hpp"

#include <algorithm>

#include "marp/priority.hpp"
#include "marp/protocol.hpp"
#include "marp/server.hpp"
#include "marp/wire.hpp"
#include "util/assert.hpp"

namespace marp::core {

namespace {

/// Default read quorum: the minimal vote count intersecting every write
/// majority — r = V − ⌊V/2⌋ (so r + w > V with w = ⌊V/2⌋ + 1).
std::uint32_t read_quorum_for(const MarpConfig& config, std::size_t n_servers) {
  if (config.read_quorum_votes != 0) return config.read_quorum_votes;
  const std::uint32_t total = total_votes(config.votes, n_servers);
  return total - total / 2;
}

}  // namespace

ReadAgent::ReadAgent(net::NodeId origin, std::uint64_t request_id, std::string key)
    : origin_(origin), request_id_(request_id), key_(std::move(key)) {}

MarpServer& ReadAgent::server_here(agent::AgentContext& ctx) const {
  auto* server = ctx.service<MarpServer>(kMarpServiceName);
  MARP_REQUIRE_MSG(server != nullptr, "no MARP server on this host");
  return *server;
}

const quorum::QuorumSystem* ReadAgent::read_geometry(agent::AgentContext& ctx) const {
  MarpServer& server = server_here(ctx);
  if (server.config().membership.enabled()) {
    // Partial replication: the read only has to intersect write quorums of
    // the key's group, so the electorate is that group's replica set.
    return server.group_quorum(server.router().group_of(key_));
  }
  return server.protocol().decision_quorum();
}

bool ReadAgent::reselect_quorum(agent::AgentContext& ctx) {
  const quorum::QuorumSystem* qs = read_geometry(ctx);
  if (qs == nullptr) return true;  // vote-counting path: nothing to re-pick
  const auto members =
      qs->pick_read_quorum(quorum::make_node_set(unavailable_), ctx.here());
  if (!members) {
    server_here(ctx).protocol().note_anomaly(Anomaly::FailedReadQuorum);
    finish(ctx, /*success=*/false);
    return false;
  }
  server_here(ctx).protocol().note_quorum_reselection();
  usl_.clear();
  for (const net::NodeId node : *members) {
    if (std::find(visited_.begin(), visited_.end(), node) == visited_.end()) {
      usl_.push_back(node);
    }
  }
  if (qs->read_covered(quorum::make_node_set(visited_))) {
    finish(ctx, /*success=*/true);
    return false;
  }
  return true;
}

void ReadAgent::on_created(agent::AgentContext& ctx) {
  MarpServer& server = server_here(ctx);
  needed_votes_ = read_quorum_for(server.config(), server.cluster_size());
  for (net::NodeId node = 0; node < server.cluster_size(); ++node) {
    usl_.push_back(node);
  }
  if (server.config().membership.enabled()) epoch_ = server.view().epoch;
  if (const quorum::QuorumSystem* qs = read_geometry(ctx)) {
    // Geometry read path: tour one of the geometry's read quorums (a
    // column transversal, a tree quorum, a single lease holder, …) instead
    // of counting votes. Prefer the origin so the local visit counts.
    const auto members = qs->pick_read_quorum({}, ctx.here());
    if (!members) {
      // No read quorum exists right now (e.g. a read-lease holder is down,
      // or the geometry is mid-reconfiguration). That is a failed read, not
      // a protocol bug: report failure to the origin instead of aborting
      // the whole process.
      server.protocol().note_anomaly(Anomaly::FailedReadQuorum);
      finish(ctx, /*success=*/false);
      return;
    }
    usl_.assign(members->begin(), members->end());
  }
  do_visit(ctx);
}

void ReadAgent::on_arrival(agent::AgentContext& ctx) {
  migration_retries_ = 0;
  do_visit(ctx);
}

void ReadAgent::do_visit(agent::AgentContext& ctx) {
  MarpServer& server = server_here(ctx);
  const MarpConfig& config = server.config();
  const bool membership = config.membership.enabled();
  if (membership && config.mutant != ProtocolMutant::MixedEpoch &&
      server.view().epoch > epoch_) {
    // The view moved under this tour: visits made under the old epoch no
    // longer prove intersection with the current write quorums. Restart the
    // tour over the new view's replica set. best_ survives — a version
    // already observed stays a legal lower bound under the Thomas rule.
    epoch_ = server.view().epoch;
    visited_.clear();
    if (!reselect_quorum(ctx)) return;
  }
  if (membership && server.catching_up()) {
    // A joiner mid-catch-up may still miss committed writes for its newly
    // gained groups; counting it towards the read quorum could surface a
    // stale value. Route around it as if unreachable.
    routing_costs_ = server.routing_costs();
    if (std::find(unavailable_.begin(), unavailable_.end(), ctx.here()) ==
        unavailable_.end()) {
      unavailable_.push_back(ctx.here());
    }
    usl_.erase(std::remove(usl_.begin(), usl_.end(), ctx.here()), usl_.end());
    if (!reselect_quorum(ctx)) return;
    const net::NodeId next = pick_next(ctx);
    if (next == net::kInvalidNode) {
      finish(ctx, /*success=*/false);
      return;
    }
    ctx.dispatch_to(next);
    return;
  }
  if (auto local = server.store().read(key_)) {
    if (local->version > best_.version) best_ = *local;
  }
  gathered_votes_ += vote_of(server.config().votes, ctx.here());
  routing_costs_ = server.routing_costs();
  visited_.push_back(ctx.here());
  usl_.erase(std::remove(usl_.begin(), usl_.end(), ctx.here()), usl_.end());

  const quorum::QuorumSystem* qs = read_geometry(ctx);
  const bool covered =
      qs != nullptr ? qs->read_covered(quorum::make_node_set(visited_))
                    : gathered_votes_ >= needed_votes_;
  if (covered) {
    finish(ctx, /*success=*/true);
    return;
  }
  const net::NodeId next = pick_next(ctx);
  if (next == net::kInvalidNode) {
    finish(ctx, /*success=*/false);  // quorum unreachable
    return;
  }
  ctx.dispatch_to(next);
}

net::NodeId pick_cheapest_node(const std::vector<net::NodeId>& candidates,
                               const std::vector<net::NodeId>& unavailable,
                               net::NodeId here,
                               const std::vector<std::int64_t>& costs) {
  net::NodeId best = net::kInvalidNode;
  std::int64_t best_cost = 0;
  // A node beyond the routing table has *unknown* cost. Treating it as 0
  // would make unknown nodes the preferred destination; assume the worst
  // known link instead, so they are only toured once priced options run out.
  std::int64_t unknown_cost = 0;
  for (const std::int64_t cost : costs) {
    unknown_cost = std::max(unknown_cost, cost);
  }
  for (net::NodeId node : candidates) {
    if (node == here) continue;
    if (std::find(unavailable.begin(), unavailable.end(), node) !=
        unavailable.end()) {
      continue;
    }
    const std::int64_t cost = node < costs.size() ? costs[node] : unknown_cost;
    if (best == net::kInvalidNode || cost < best_cost ||
        (cost == best_cost && node < best)) {
      best = node;
      best_cost = cost;
    }
  }
  return best;
}

net::NodeId ReadAgent::pick_next(agent::AgentContext& ctx) const {
  return pick_cheapest_node(usl_, unavailable_, ctx.here(), routing_costs_);
}

void ReadAgent::on_migration_failed(agent::AgentContext& ctx,
                                    net::NodeId destination) {
  MarpServer& server = server_here(ctx);
  if (++migration_retries_ <= server.config().migration_retry_limit) {
    ctx.dispatch_to(destination);
    return;
  }
  unavailable_.push_back(destination);
  usl_.erase(std::remove(usl_.begin(), usl_.end(), destination), usl_.end());
  migration_retries_ = 0;
  // Re-pick a read quorum around the dead member; keep the current position
  // preferred so the visits already made keep counting.
  if (!reselect_quorum(ctx)) return;
  const net::NodeId next = pick_next(ctx);
  if (next == net::kInvalidNode) {
    finish(ctx, /*success=*/false);
    return;
  }
  ctx.dispatch_to(next);
}

void ReadAgent::finish(agent::AgentContext& ctx, bool success) {
  ReadReportPayload report;
  report.request_id = request_id_;
  report.success = success;
  report.value = best_.value;
  report.version = best_.version;
  report.servers_visited = servers_visited();
  if (origin_ == ctx.here()) {
    server_here(ctx).handle_read_report_local(report);
  } else {
    ctx.send_to_node(origin_, kMsgReadReport, report.encode());
  }
  ctx.dispose();
}

void ReadAgent::serialize(serial::Writer& w) const {
  w.varint(origin_);
  w.varint(request_id_);
  w.str(key_);
  w.varint(needed_votes_);
  w.varint(gathered_votes_);
  w.str(best_.value);
  best_.version.serialize(w);
  auto write_nodes = [](serial::Writer& ww, const std::vector<net::NodeId>& nodes) {
    ww.varint(nodes.size());
    for (net::NodeId node : nodes) ww.varint(node);
  };
  write_nodes(w, usl_);
  write_nodes(w, visited_);
  write_nodes(w, unavailable_);
  w.varint(routing_costs_.size());
  for (std::int64_t cost : routing_costs_) w.svarint(cost);
  w.varint(migration_retries_);
  // Trailing optional (membership only): absent bytes keep the static
  // deployment's migration sizes bit-identical.
  if (epoch_ != 0) w.varint(epoch_);
}

void ReadAgent::deserialize(serial::Reader& r) {
  origin_ = static_cast<net::NodeId>(r.varint());
  request_id_ = r.varint();
  key_ = r.str();
  needed_votes_ = static_cast<std::uint32_t>(r.varint());
  gathered_votes_ = static_cast<std::uint32_t>(r.varint());
  best_.value = r.str();
  best_.version = replica::Version::deserialize(r);
  auto read_nodes = [](serial::Reader& rr) {
    const std::uint64_t n = rr.varint();
    std::vector<net::NodeId> nodes;
    nodes.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      nodes.push_back(static_cast<net::NodeId>(rr.varint()));
    }
    return nodes;
  };
  usl_ = read_nodes(r);
  visited_ = read_nodes(r);
  unavailable_ = read_nodes(r);
  routing_costs_.clear();
  const std::uint64_t costs = r.varint();
  for (std::uint64_t i = 0; i < costs; ++i) routing_costs_.push_back(r.svarint());
  migration_retries_ = static_cast<std::uint32_t>(r.varint());
  epoch_ = r.at_end() ? 0 : r.varint();
}

}  // namespace marp::core

#include "marp/read_agent.hpp"

#include <algorithm>

#include "marp/priority.hpp"
#include "marp/protocol.hpp"
#include "marp/server.hpp"
#include "marp/wire.hpp"
#include "util/assert.hpp"

namespace marp::core {

namespace {

/// Default read quorum: the minimal vote count intersecting every write
/// majority — r = V − ⌊V/2⌋ (so r + w > V with w = ⌊V/2⌋ + 1).
std::uint32_t read_quorum_for(const MarpConfig& config, std::size_t n_servers) {
  if (config.read_quorum_votes != 0) return config.read_quorum_votes;
  const std::uint32_t total = total_votes(config.votes, n_servers);
  return total - total / 2;
}

}  // namespace

ReadAgent::ReadAgent(net::NodeId origin, std::uint64_t request_id, std::string key)
    : origin_(origin), request_id_(request_id), key_(std::move(key)) {}

MarpServer& ReadAgent::server_here(agent::AgentContext& ctx) const {
  auto* server = ctx.service<MarpServer>(kMarpServiceName);
  MARP_REQUIRE_MSG(server != nullptr, "no MARP server on this host");
  return *server;
}

void ReadAgent::on_created(agent::AgentContext& ctx) {
  MarpServer& server = server_here(ctx);
  needed_votes_ = read_quorum_for(server.config(), server.cluster_size());
  for (net::NodeId node = 0; node < server.cluster_size(); ++node) {
    usl_.push_back(node);
  }
  if (const quorum::QuorumSystem* qs = server.protocol().decision_quorum()) {
    // Geometry read path: tour one of the geometry's read quorums (a
    // column transversal, a tree quorum, a single lease holder, …) instead
    // of counting votes. Prefer the origin so the local visit counts.
    const auto members = qs->pick_read_quorum({}, ctx.here());
    MARP_REQUIRE(members.has_value());
    usl_.assign(members->begin(), members->end());
  }
  do_visit(ctx);
}

void ReadAgent::on_arrival(agent::AgentContext& ctx) {
  migration_retries_ = 0;
  do_visit(ctx);
}

void ReadAgent::do_visit(agent::AgentContext& ctx) {
  MarpServer& server = server_here(ctx);
  if (auto local = server.store().read(key_)) {
    if (local->version > best_.version) best_ = *local;
  }
  gathered_votes_ += vote_of(server.config().votes, ctx.here());
  routing_costs_ = server.routing_costs();
  visited_.push_back(ctx.here());
  usl_.erase(std::remove(usl_.begin(), usl_.end(), ctx.here()), usl_.end());

  const quorum::QuorumSystem* qs = server.protocol().decision_quorum();
  const bool covered =
      qs != nullptr ? qs->read_covered(quorum::make_node_set(visited_))
                    : gathered_votes_ >= needed_votes_;
  if (covered) {
    finish(ctx, /*success=*/true);
    return;
  }
  const net::NodeId next = pick_next(ctx);
  if (next == net::kInvalidNode) {
    finish(ctx, /*success=*/false);  // quorum unreachable
    return;
  }
  ctx.dispatch_to(next);
}

net::NodeId ReadAgent::pick_next(agent::AgentContext& ctx) const {
  net::NodeId best = net::kInvalidNode;
  std::int64_t best_cost = 0;
  for (net::NodeId node : usl_) {
    if (node == ctx.here()) continue;
    if (std::find(unavailable_.begin(), unavailable_.end(), node) !=
        unavailable_.end()) {
      continue;
    }
    const std::int64_t cost = node < routing_costs_.size() ? routing_costs_[node] : 0;
    if (best == net::kInvalidNode || cost < best_cost ||
        (cost == best_cost && node < best)) {
      best = node;
      best_cost = cost;
    }
  }
  return best;
}

void ReadAgent::on_migration_failed(agent::AgentContext& ctx,
                                    net::NodeId destination) {
  MarpServer& server = server_here(ctx);
  if (++migration_retries_ <= server.config().migration_retry_limit) {
    ctx.dispatch_to(destination);
    return;
  }
  unavailable_.push_back(destination);
  usl_.erase(std::remove(usl_.begin(), usl_.end(), destination), usl_.end());
  migration_retries_ = 0;
  if (const quorum::QuorumSystem* qs = server.protocol().decision_quorum()) {
    // Re-pick a read quorum around the dead member; keep the current
    // position preferred so the visits already made keep counting.
    const auto members =
        qs->pick_read_quorum(quorum::make_node_set(unavailable_), ctx.here());
    if (!members) {
      finish(ctx, /*success=*/false);
      return;
    }
    server.protocol().note_quorum_reselection();
    usl_.clear();
    for (const net::NodeId node : *members) {
      if (std::find(visited_.begin(), visited_.end(), node) == visited_.end()) {
        usl_.push_back(node);
      }
    }
    if (qs->read_covered(quorum::make_node_set(visited_))) {
      finish(ctx, /*success=*/true);
      return;
    }
  }
  const net::NodeId next = pick_next(ctx);
  if (next == net::kInvalidNode) {
    finish(ctx, /*success=*/false);
    return;
  }
  ctx.dispatch_to(next);
}

void ReadAgent::finish(agent::AgentContext& ctx, bool success) {
  ReadReportPayload report;
  report.request_id = request_id_;
  report.success = success;
  report.value = best_.value;
  report.version = best_.version;
  report.servers_visited = servers_visited();
  if (origin_ == ctx.here()) {
    server_here(ctx).handle_read_report_local(report);
  } else {
    ctx.send_to_node(origin_, kMsgReadReport, report.encode());
  }
  ctx.dispose();
}

void ReadAgent::serialize(serial::Writer& w) const {
  w.varint(origin_);
  w.varint(request_id_);
  w.str(key_);
  w.varint(needed_votes_);
  w.varint(gathered_votes_);
  w.str(best_.value);
  best_.version.serialize(w);
  auto write_nodes = [](serial::Writer& ww, const std::vector<net::NodeId>& nodes) {
    ww.varint(nodes.size());
    for (net::NodeId node : nodes) ww.varint(node);
  };
  write_nodes(w, usl_);
  write_nodes(w, visited_);
  write_nodes(w, unavailable_);
  w.varint(routing_costs_.size());
  for (std::int64_t cost : routing_costs_) w.svarint(cost);
  w.varint(migration_retries_);
}

void ReadAgent::deserialize(serial::Reader& r) {
  origin_ = static_cast<net::NodeId>(r.varint());
  request_id_ = r.varint();
  key_ = r.str();
  needed_votes_ = static_cast<std::uint32_t>(r.varint());
  gathered_votes_ = static_cast<std::uint32_t>(r.varint());
  best_.value = r.str();
  best_.version = replica::Version::deserialize(r);
  auto read_nodes = [](serial::Reader& rr) {
    const std::uint64_t n = rr.varint();
    std::vector<net::NodeId> nodes;
    nodes.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      nodes.push_back(static_cast<net::NodeId>(rr.varint()));
    }
    return nodes;
  };
  usl_ = read_nodes(r);
  visited_ = read_nodes(r);
  unavailable_ = read_nodes(r);
  routing_costs_.clear();
  const std::uint64_t costs = r.varint();
  for (std::uint64_t i = 0; i < costs; ++i) routing_costs_.push_back(r.svarint());
  migration_retries_ = static_cast<std::uint32_t>(r.varint());
}

}  // namespace marp::core

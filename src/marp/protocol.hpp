// MarpProtocol — the facade that assembles a full MARP deployment: one
// MarpServer per node, the UpdateAgent type registration, outcome routing,
// the fail-stop/notification machinery, and the mutual-exclusion monitor
// that checks Theorem 2 on every run.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "agent/platform.hpp"
#include "marp/config.hpp"
#include "marp/server.hpp"
#include "replica/request.hpp"

namespace marp::core {

struct MarpStats {
  std::uint64_t updates_committed = 0;
  std::uint64_t updates_aborted = 0;
  std::uint64_t update_attempts = 0;  ///< begin_update calls (incl. demoted)
  std::uint64_t reads_served = 0;
  /// Times a multi-group agent broke a cross-group wait cycle by leaving
  /// every Locking List and re-queuing at the tails (see requeue_timeout).
  std::uint64_t lock_requeues = 0;
  /// Times an agent reached a majority of update grants while another agent
  /// also held a majority. Theorem 2 says this stays 0; tests assert it.
  std::uint64_t mutex_violations = 0;
};

/// One write of a committed update session, tagged with the lock group its
/// key routes to (the consistency checker orders commits per group).
struct CommitEntry {
  std::string key;
  shard::GroupId group = 0;
  replica::Version version;
};

/// One committed update session, in global commit order (test oracle).
struct CommitRecord {
  agent::AgentId agent;
  sim::SimTime committed;
  std::vector<CommitEntry> entries;
};

class MarpProtocol final : public replica::ReplicationProtocol {
 public:
  /// Builds servers for every node of `network` and wires them into
  /// `platform` (app handlers, services, agent type registration).
  MarpProtocol(net::Network& network, agent::AgentPlatform& platform,
               MarpConfig config = {});

  std::string name() const override { return "MARP"; }
  void submit(const replica::Request& request) override;
  void set_outcome_handler(replica::OutcomeHandler handler) override;
  void fail_server(net::NodeId node) override;
  void recover_server(net::NodeId node) override;

  MarpServer& server(net::NodeId node);
  std::size_t size() const noexcept { return servers_.size(); }
  const MarpConfig& config() const noexcept { return config_; }

  const MarpStats& stats() const noexcept { return stats_; }
  const std::vector<CommitRecord>& commit_log() const noexcept { return commit_log_; }

  // ---- called by agents/servers ----
  void note_update_attempt(const agent::AgentId& agent);
  /// Called when `agent` has collected a majority of grants in each of
  /// `groups` (empty = group 0); audits every group's per-server grant
  /// holders for a competing majority (per-group Theorem 2 monitor).
  void note_update_quorum(const agent::AgentId& agent,
                          const std::vector<shard::GroupId>& groups = {});
  void note_update_commit(const agent::AgentId& agent,
                          const std::vector<WriteOp>& ops);
  void note_update_abort(const agent::AgentId& agent);
  void note_update_requeue(const agent::AgentId& agent);
  void note_read() { ++stats_.reads_served; }

 private:
  net::Network& network_;
  agent::AgentPlatform& platform_;
  MarpConfig config_;
  shard::ShardRouter router_;
  std::vector<std::unique_ptr<MarpServer>> servers_;
  MarpStats stats_;
  std::vector<CommitRecord> commit_log_;
};

}  // namespace marp::core

// MarpProtocol — the facade that assembles a full MARP deployment: one
// MarpServer per node, the UpdateAgent type registration, outcome routing,
// the fail-stop/notification machinery, and the mutual-exclusion monitor
// that checks Theorem 2 on every run.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "agent/platform.hpp"
#include "marp/config.hpp"
#include "marp/server.hpp"
#include "quorum/quorum.hpp"
#include "replica/request.hpp"

namespace marp::trace {
class Tracer;
}

namespace marp::core {

/// Protocol-level anomalies: duplicated, reordered, or orphaned coordination
/// messages that the hardened handlers absorb idempotently instead of
/// ignoring silently. All benign by design — the counters exist so chaos
/// runs can show the defence actually fired (and metrics reports can surface
/// a lossy deployment).
struct ProtocolAnomalies {
  std::uint64_t stale_acks = 0;        ///< ACK/NACK for a withdrawn or finished attempt
  std::uint64_t stale_updates = 0;     ///< UPDATE from a finished agent / withdrawn attempt
  std::uint64_t duplicate_updates = 0; ///< re-delivered UPDATE re-granted idempotently
  std::uint64_t duplicate_commits = 0; ///< COMMIT for an agent already in the UL
  std::uint64_t duplicate_reports = 0; ///< re-delivered REPORT deduplicated at the origin
  std::uint64_t orphaned_reports = 0;  ///< REPORT for a request lost to an origin crash
  std::uint64_t commit_retransmits = 0;///< COMMIT copies re-sent to silent servers
  std::uint64_t report_retransmits = 0;///< REPORT copies re-sent to a silent origin
  std::uint64_t release_retransmits = 0;///< RELEASE copies re-sent by an aborter
  std::uint64_t failed_read_quorums = 0;///< ReadAgent found no live read quorum
  std::uint64_t epoch_stale_updates = 0;///< UPDATE fenced: wrong epoch or promised newer view
  std::uint64_t epoch_stale_acks = 0;  ///< ACK from a different epoch discarded by the agent
  std::uint64_t joiner_refusals = 0;   ///< UPDATE refused by a member still catching up

  std::uint64_t total() const noexcept {
    return stale_acks + stale_updates + duplicate_updates + duplicate_commits +
           duplicate_reports + orphaned_reports + commit_retransmits +
           report_retransmits + release_retransmits + failed_read_quorums +
           epoch_stale_updates + epoch_stale_acks + joiner_refusals;
  }
};

enum class Anomaly : std::uint8_t {
  StaleAck,
  StaleUpdate,
  DuplicateUpdate,
  DuplicateCommit,
  DuplicateReport,
  OrphanedReport,
  CommitRetransmit,
  ReportRetransmit,
  ReleaseRetransmit,
  FailedReadQuorum,
  EpochStaleUpdate,
  EpochStaleAck,
  JoinerRefusal
};

struct MarpStats {
  std::uint64_t updates_committed = 0;
  std::uint64_t updates_aborted = 0;
  std::uint64_t update_attempts = 0;  ///< begin_update calls (incl. demoted)
  std::uint64_t reads_served = 0;
  /// Times a multi-group agent broke a cross-group wait cycle by leaving
  /// every Locking List and re-queuing at the tails (see requeue_timeout).
  std::uint64_t lock_requeues = 0;
  /// Times an agent reached a majority of update grants while another agent
  /// also held a majority. Theorem 2 says this stays 0; tests assert it.
  /// Under a non-majority quorum geometry, "majority" reads "write quorum":
  /// two disjoint grant sets can only both cover write quorums if the
  /// geometry's intersection property is broken.
  std::uint64_t mutex_violations = 0;
  /// Times an agent re-picked its candidate quorum after a member turned
  /// out crashed/partitioned (non-majority geometries only). Chaos sweeps
  /// assert the fallback path actually fires.
  std::uint64_t quorum_reselections = 0;
  /// Remote agents whose lock state a server expired via the agent lease
  /// (config.agent_lease_timeout) — dead-process cleanup on the real
  /// substrate, where no fail-stop notice ever arrives.
  std::uint64_t agents_lease_purged = 0;
  /// View changes activated (dynamic membership): each join/leave that
  /// completed its two-phase epoch bump counts once.
  std::uint64_t view_changes = 0;
  /// Sessions that aborted-and-re-toured after meeting a newer epoch.
  std::uint64_t epoch_retours = 0;
  /// Absorbed message-level faults (see ProtocolAnomalies).
  ProtocolAnomalies anomalies;
};

/// Protocol milestones surfaced to an observer (the fault injector uses
/// these to fire scripted faults at a named phase, e.g. "partition the
/// winner away right after it assembled its quorum, before COMMIT").
enum class ProtocolPhase : std::uint8_t {
  UpdateAttempt,  ///< an agent broadcast UPDATE (begin_update)
  UpdateQuorum,   ///< a majority of grants assembled, COMMIT not yet sent
  UpdateCommit,   ///< COMMIT broadcast
  UpdateAbort     ///< the agent gave up
};

struct PhaseEvent {
  ProtocolPhase phase = ProtocolPhase::UpdateAttempt;
  agent::AgentId agent;
  /// Node where the event happened; kInvalidNode when unknown.
  net::NodeId node = net::kInvalidNode;
};

/// One write of a committed update session, tagged with the lock group its
/// key routes to (the consistency checker orders commits per group).
struct CommitEntry {
  std::string key;
  shard::GroupId group = 0;
  replica::Version version;
};

/// One committed update session, in global commit order (test oracle).
struct CommitRecord {
  agent::AgentId agent;
  sim::SimTime committed;
  std::vector<CommitEntry> entries;
};

class MarpProtocol final : public replica::ReplicationProtocol {
 public:
  /// Builds servers for every node of `network` and wires them into
  /// `platform` (app handlers, services, agent type registration).
  MarpProtocol(net::Network& network, agent::AgentPlatform& platform,
               MarpConfig config = {});

  std::string name() const override { return "MARP"; }
  void submit(const replica::Request& request) override;
  void set_outcome_handler(replica::OutcomeHandler handler) override;
  void fail_server(net::NodeId node) override;
  void recover_server(net::NodeId node) override;

  MarpServer& server(net::NodeId node);
  std::size_t size() const noexcept { return servers_.size(); }
  const MarpConfig& config() const noexcept { return config_; }

  const MarpStats& stats() const noexcept { return stats_; }
  const std::vector<CommitRecord>& commit_log() const noexcept { return commit_log_; }
  const shard::ShardRouter& router() const noexcept { return router_; }

  /// Observer for protocol milestones (fault injection, tracing). Called
  /// synchronously at the milestone — a probe that cuts links inside
  /// UpdateQuorum acts before the COMMIT broadcast goes out.
  using PhaseProbe = std::function<void(const PhaseEvent&)>;
  void set_phase_probe(PhaseProbe probe) { phase_probe_ = std::move(probe); }
  /// Current probe — lets a second observer (e.g. the model checker's
  /// invariant monitor) wrap an already-installed one instead of
  /// silently displacing it.
  const PhaseProbe& phase_probe() const noexcept { return phase_probe_; }

  /// Install an execution tracer (nullptr to remove; not owned). Servers
  /// and agents reach it through protocol().tracer() behind null checks, so
  /// an untraced run pays one pointer test per hook site.
  void set_tracer(trace::Tracer* tracer) noexcept { tracer_ = tracer; }
  trace::Tracer* tracer() const noexcept { return tracer_; }

  /// Kill notification for agents that died *without* their host failing
  /// (e.g. a chaos kill of an in-flight agent): after the §2 failure-notice
  /// delay every live server purges state owned by the dead agents, exactly
  /// as for agents lost to a server crash.
  void announce_agent_deaths(std::vector<agent::AgentId> dead);

  // ---- called by agents/servers ----
  void note_update_attempt(const agent::AgentId& agent,
                           net::NodeId node = net::kInvalidNode);
  /// Called when `agent` has collected a majority of grants in each of
  /// `groups` (empty = group 0); audits every group's per-server grant
  /// holders for a competing majority (per-group Theorem 2 monitor).
  /// Under dynamic membership the check is (group, epoch)-scoped: a
  /// competing holder's grant set is tested against the per-group geometry
  /// of *every* recorded view, so a mixed-epoch "quorum" assembled by the
  /// MixedEpoch mutant is flagged even though no single static geometry
  /// covers it. `epoch` is the claiming session's birth epoch (0 = static).
  void note_update_quorum(const agent::AgentId& agent,
                          const std::vector<shard::GroupId>& groups = {},
                          net::NodeId node = net::kInvalidNode,
                          std::uint64_t epoch = 0);
  void note_update_commit(const agent::AgentId& agent,
                          const std::vector<WriteOp>& ops,
                          net::NodeId node = net::kInvalidNode);
  void note_update_abort(const agent::AgentId& agent,
                         net::NodeId node = net::kInvalidNode);
  void note_update_requeue(const agent::AgentId& agent);
  void note_quorum_reselection() { ++stats_.quorum_reselections; }
  void note_read() { ++stats_.reads_served; }

  /// The deployment's quorum geometry (never null; Majority by default).
  const quorum::QuorumSystem& quorum_system() const noexcept { return *quorum_; }
  /// Geometry handle for decide()/tour planning: null on the Majority path
  /// so the seed arithmetic stays byte-for-byte untouched, the geometry
  /// object otherwise.
  const quorum::QuorumSystem* decision_quorum() const noexcept {
    return quorum_->geometry() == quorum::Geometry::Majority ? nullptr
                                                             : quorum_.get();
  }
  void note_anomaly(Anomaly kind);
  void note_agents_lease_purged(std::uint64_t n) { stats_.agents_lease_purged += n; }

  // ---- dynamic membership (config.membership.enabled()) ----

  /// Whether this deployment runs with epoch-stamped views.
  bool membership_enabled() const noexcept { return config_.membership.enabled(); }
  /// Newest view any server has activated (falls back to the initial view;
  /// MARP_REQUIREs membership on). Test/monitor oracle — individual servers
  /// may lag behind this during a change.
  const membership::MembershipView& current_view() const;
  /// View recorded for `epoch`, or nullptr if no server ever activated it.
  const membership::MembershipView* view_at(std::uint64_t epoch) const;
  /// Every view recorded so far, ascending by epoch.
  const std::vector<membership::MembershipView>& view_history() const noexcept {
    return views_;
  }
  /// Called by each server on view activation; first activation of an epoch
  /// records it in the oracle history and counts a view change.
  void note_view_activated(const membership::MembershipView& view);
  void note_epoch_retour() { ++stats_.epoch_retours; }

  /// Start a two-phase view change adding/removing `node`, coordinated by
  /// the lowest live member of the current view. Returns false when
  /// membership is off, the node is already in the target state, no live
  /// coordinator exists, or a change is already pending at the coordinator.
  bool request_join(net::NodeId node);
  bool request_leave(net::NodeId node);

 private:
  bool begin_view_change(std::vector<net::NodeId> new_active);

  net::Network& network_;
  agent::AgentPlatform& platform_;
  MarpConfig config_;
  shard::ShardRouter router_;
  std::unique_ptr<const quorum::QuorumSystem> quorum_;
  std::vector<std::unique_ptr<MarpServer>> servers_;
  /// Recorded views, ascending by epoch (empty when membership is off).
  std::vector<membership::MembershipView> views_;
  MarpStats stats_;
  std::vector<CommitRecord> commit_log_;
  PhaseProbe phase_probe_;
  trace::Tracer* tracer_ = nullptr;
};

}  // namespace marp::core

// Pure priority-calculation functions for Algorithm 1.
//
// "The calculation of priority is done in a fully distributed manner by
// individual mobile agents" (§3.3): every agent applies these same functions
// to its Locking Table, so agreement (Theorem 1/2) reduces to the functions
// being deterministic — which also makes them directly property-testable.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "agent/agent_id.hpp"
#include "marp/config.hpp"
#include "net/message.hpp"
#include "quorum/quorum.hpp"
#include "serial/byte_buffer.hpp"
#include "shard/router.hpp"
#include "sim/time.hpp"

namespace marp::core {

/// One server's locking-list snapshot as known to an agent, stamped with
/// when it was observed (gossip carries older stamps than personal visits).
struct LockSnapshot {
  std::vector<agent::AgentId> agents;
  std::int64_t observed_us = -1;  ///< -1 = never observed

  bool known() const noexcept { return observed_us >= 0; }

  void serialize(serial::Writer& w) const;
  static LockSnapshot deserialize(serial::Reader& r);
};

/// The agent's Locking Table (LT, §3.2): per-server snapshots. With lock
/// groups, each group has its own independent LT (see GroupLockTable).
using LockTable = std::map<net::NodeId, LockSnapshot>;

/// Per-group locking tables — the sharded generalisation of the LT. An
/// agent only carries entries for the groups its write-set touches, so the
/// migrating state stays proportional to the write-set, not the shard count.
using GroupLockTable = std::map<shard::GroupId, LockTable>;

/// Set of agents known to have finished (the agent's UAL, §3.2).
using DoneSet = std::set<agent::AgentId>;

/// Effective head of a snapshot once finished agents are filtered out.
/// Entries ahead of a live agent can only disappear by finishing, so the
/// filtered head of a (possibly stale) snapshot is never *behind* the true
/// head — the staleness-safety property the update rule relies on.
std::optional<agent::AgentId> filtered_head(const std::vector<agent::AgentId>& snapshot,
                                            const DoneSet& done);

/// Per-server vote weights. Empty means one vote per server — the paper's
/// simplification ("a quorum … is simply any majority of its copies",
/// §3.1); non-empty generalizes MARP to Gifford-style weighted voting.
using VoteWeights = std::vector<std::uint32_t>;

std::uint32_t vote_of(const VoteWeights& votes, net::NodeId node);
std::uint32_t total_votes(const VoteWeights& votes, std::size_t n_servers);

/// Head counts across all known servers ("Top-Count" of Algorithm 1),
/// weighted by each server's votes.
std::map<agent::AgentId, std::uint32_t> top_counts(const LockTable& table,
                                                   const DoneSet& done,
                                                   const VoteWeights& votes = {});

struct Decision {
  enum class Kind : std::uint8_t {
    Win,     ///< self holds the highest priority — proceed to update
    Lose,    ///< another specific agent wins — wait for its commit
    Unknown  ///< not enough information / nobody decided yet
  };
  Kind kind = Kind::Unknown;
  std::optional<agent::AgentId> winner;  ///< set for Win and Lose
};

/// Decide the highest-priority agent from `table` as seen by `self`.
///
/// Majority geometry (`quorum` null or majority — the seed rule):
/// * Any agent heading lists worth more than half the total votes wins
///   outright (majority; with default weights, > N/2 lists).
/// * Otherwise, once the filtered head of *every* one of the `n_servers`
///   lists is known, the tie rule of `mode` applies (see TieBreakMode).
///
/// Non-majority geometry: an agent wins once the servers it heads contain a
/// write quorum of the geometry; the tie rule applies once the set of
/// servers with known heads contains a write quorum (the agent has full
/// information over at least one quorum). Views are partial by design —
/// each agent tours only its candidate quorum — so two agents CAN both
/// compute "Win" from different views; the claim is optimistic and the
/// exclusive per-server update grants (which only hand a group's grant to
/// one agent, all-or-nothing in ascending order) arbitrate. Theorem 2
/// safety then rests on quorum intersection, checked by the monitor's
/// intersection rule rather than by same-decision agreement. PaperLiteral's
/// tie *condition* is majority arithmetic and does not transfer; under a
/// geometry both modes resolve by (max heads, smallest id).
///
/// `mutant` deliberately corrupts the rule for model-checker
/// self-validation (see ProtocolMutant); oracles always pass None.
Decision decide(const LockTable& table, const DoneSet& done,
                const agent::AgentId& self, std::size_t n_servers,
                TieBreakMode mode, const VoteWeights& votes = {},
                ProtocolMutant mutant = ProtocolMutant::None,
                const quorum::QuorumSystem* quorum = nullptr);

/// Write-coverage test seen through `mutant`'s eyes: the SplitQuorum mutant
/// REPLACES the geometry's rule with "contains one of the two static cluster
/// halves" (halves split at ⌈n/2⌉). Replacement — not widening — so a
/// mutated agent can never satisfy the true rule first and slip past the
/// intersection monitor. Every other mutant passes through unchanged.
bool mutant_write_covered(const quorum::QuorumSystem& qs,
                          const quorum::NodeSet& nodes, ProtocolMutant mutant);

/// Candidate-quorum pick seen through `mutant`'s eyes: under SplitQuorum an
/// agent tours the static half containing `prefer` (minus exclusions)
/// instead of a real quorum; the two halves do not intersect.
std::optional<quorum::NodeSet> mutant_pick_write_quorum(
    const quorum::QuorumSystem& qs, const quorum::NodeSet& excluded,
    net::NodeId prefer, ProtocolMutant mutant);

/// The paper's literal tie condition: M agents top S servers each, and
/// S + (N − M·S) < N/2. Exposed for direct unit testing.
bool paper_tie_condition(std::uint32_t s, std::uint32_t m, std::size_t n);

/// §3.3's full extension: "mobile agents can determine not only the first
/// mobile agent who will obtain the lock next, but also the second agent,
/// the third agent, etc." Simulates successive winners on the given view:
/// rank k+1 is the TotalOrder winner once ranks 1..k are treated as done.
/// Every agent applying this to the same information computes the same
/// ranking (tested), which is what makes the prediction usable for
/// scheduling. Returns at most `limit` ranks (0 = all live agents).
std::vector<agent::AgentId> predicted_order(const LockTable& table,
                                            const DoneSet& done,
                                            std::size_t n_servers,
                                            const VoteWeights& votes = {},
                                            std::size_t limit = 0);

/// Merge `incoming` into `table`, keeping the fresher snapshot per server.
void merge_lock_tables(LockTable& table, const LockTable& incoming);

/// Group-wise merge: per (group, server), the fresher snapshot wins.
void merge_group_lock_tables(GroupLockTable& table, const GroupLockTable& incoming);

void serialize_lock_table(serial::Writer& w, const LockTable& table);
LockTable deserialize_lock_table(serial::Reader& r);

void serialize_group_lock_table(serial::Writer& w, const GroupLockTable& table);
GroupLockTable deserialize_group_lock_table(serial::Reader& r);

}  // namespace marp::core

// MARP protocol configuration.
#pragma once

#include <cstdint>
#include <vector>

#include "quorum/spec.hpp"
#include "sim/time.hpp"

namespace marp::core {

/// How MARP serves reads.
enum class ReadMode : std::uint8_t {
  /// The paper's design choice (§3.1): "a read operation may be executed on
  /// an arbitrary copy" — serve the local replica, possibly stale.
  LocalCopy,
  /// Extension in the spirit of §5 ("the MAW approach is a generic
  /// method"): a read agent tours servers until it has gathered a read
  /// quorum of votes and returns the freshest copy — Gifford-consistent
  /// reads, paid for with migrations.
  QuorumAgent
};

/// How an agent picks the next server from its Un-visited Servers List.
enum class RoutingPolicy : std::uint8_t {
  CostAware,  ///< cheapest from current location (paper §3.2, routing tables)
  Random,     ///< uniform random among unvisited (ablation)
  ByServerId  ///< fixed ascending-id order (ablation)
};

/// Deliberately broken variants of the §3.2 priority rule, used ONLY to
/// self-validate the model checker (src/check/): a checker that cannot
/// catch these within its bounded schedule space is not checking anything.
/// Agents apply the mutant when deciding; every monitor/oracle always
/// evaluates the unmutated rule, so the divergence is observable.
enum class ProtocolMutant : std::uint8_t {
  None,
  /// Majority threshold off by one: an agent claims victory from locking
  /// lists worth half-minus-one of the votes (⌈(V−1)/2⌉ instead of ⌊V/2⌋+1),
  /// so with N=3 heading a single list "wins".
  MajorityOffByOne,
  /// Tie resolved by the LARGEST agent id instead of the smallest —
  /// deterministic but diverging from Theorem 2's published rule.
  TieBreakLargestId,
  /// Quorum geometry broken on purpose: the cluster is split into two
  /// static halves and an agent treats the half containing its origin as
  /// "the quorum" — both for the quorum it tours and for coverage checks.
  /// The two halves do not intersect, so two concurrent writers can both
  /// believe they hold a write quorum; the intersection monitor must flag
  /// every such grant set as covering no true write quorum.
  SplitQuorum,
  /// Epoch fencing broken on purpose (dynamic membership only): agents do
  /// not abort-and-re-tour on a newer epoch and accept ACKs stamped with a
  /// different epoch, and servers skip the UPDATE epoch fence — so a
  /// session born before a view change can assemble a "quorum" whose
  /// grants span two views. The (group, epoch)-scoped intersection monitor
  /// must flag every such mixed-epoch grant set.
  MixedEpoch
};

/// How the paper's tie rule is applied once an agent has full information
/// and nobody holds a majority of locking-list heads.
enum class TieBreakMode : std::uint8_t {
  /// The literal condition from Algorithm 1: resolve by agent id only when
  /// M agents top S servers each and S + (N − M·S) < N/2. As published this
  /// leaves reachable deadlocks (e.g. head counts {2,2,1} with N=5) — kept
  /// for fidelity experiments.
  PaperLiteral,
  /// The extension §3.3 sketches ("determine not only the first agent …"):
  /// with heads known for all N servers and no majority holder, the winner
  /// is the agent with (max head count, then smallest id). Always live.
  TotalOrder
};

/// Dynamic membership / partial replication (src/membership/). Disabled by
/// default: the seed protocol's static, fully replicated world, bit for
/// bit. When enabled every lock group is replicated on `replication_factor`
/// servers chosen by the placement policy, sessions are epoch-stamped, and
/// servers join/leave via a two-phase view change.
struct MembershipConfig {
  /// Copies per lock group; 0 disables dynamic membership entirely.
  std::uint32_t replication_factor = 0;
  /// Servers in the initial view (epoch 1); 0 = every node. Nodes beyond
  /// this count start as spares outside the view, available to join later.
  std::size_t initial_members = 0;

  bool enabled() const noexcept { return replication_factor > 0; }
};

struct MarpConfig {
  /// Lock groups the keyspace is sharded into (see shard/router.hpp). Each
  /// group is an independent instance of the paper's Locking-List consensus,
  /// so updates touching disjoint groups commit in parallel. 1 (default)
  /// keeps the paper's single replica-wide lock, bit-for-bit.
  std::size_t num_lock_groups = 1;

  /// Requests buffered at a server before an agent is dispatched (§3.2:
  /// "after a pre-defined number of requests … or periodically").
  std::size_t batch_size = 1;
  /// Dispatch a partial batch this long after its first request.
  sim::SimTime batch_period = sim::SimTime::millis(50);

  /// Migration retries before a replica is declared unavailable (§2).
  /// Plumbed through marp_sim as --migration-retries.
  std::uint32_t migration_retry_limit = 2;

  /// Base wait before re-dispatching a failed migration; doubles with every
  /// consecutive failure to the same destination (exponential backoff).
  /// Zero (default) retries immediately — the seed behaviour, suited to
  /// fail-stop detection. Non-zero spaces retries out so a *transiently*
  /// lossy link (chaos drop faults) gets time to deliver before the replica
  /// is written off as unavailable.
  sim::SimTime migration_retry_backoff = sim::SimTime::zero();

  /// Agents leave/merge locking info at servers (§3.3 information sharing).
  bool gossip = true;

  RoutingPolicy routing = RoutingPolicy::CostAware;
  TieBreakMode tie_break = TieBreakMode::TotalOrder;
  /// Seeded fault for checker self-validation; None in every real config.
  ProtocolMutant mutant = ProtocolMutant::None;

  /// Per-server vote weights; empty = one vote each (the paper's plain
  /// majority). Non-empty generalizes MARP to weighted voting: an agent
  /// wins once it heads locking lists worth more than half the votes.
  /// Applies to the Majority quorum geometry only.
  std::vector<std::uint32_t> votes;

  /// Which quorum construction write/read quorums come from. Majority
  /// (default) is the seed protocol bit-for-bit: agents tour all servers
  /// and win on vote counts. Tree/grid/read-lease restrict each agent to a
  /// candidate quorum it picks (and re-picks around failures); mutual
  /// exclusion then rests on quorum intersection arbitrated by the
  /// exclusive per-server update grants rather than on every agent seeing
  /// the same full tour (see src/quorum/quorum.hpp and PROTOCOL.md).
  quorum::QuorumSpec quorum;

  /// Partial replication + dynamic membership; see MembershipConfig. When
  /// enabled, `quorum` names the *inner* geometry instantiated inside each
  /// group's replica list (membership/mapped_quorum.hpp) — Majority over 3
  /// replicas means "2 of that group's 3 copies", not a cluster majority.
  MembershipConfig membership;

  ReadMode read_mode = ReadMode::LocalCopy;
  /// Votes a QuorumAgent read must gather; 0 derives the minimal quorum
  /// intersecting every write majority: total − ⌊total/2⌋.
  std::uint32_t read_quorum_votes = 0;

  /// A recovering server pulls the current store from a live peer before
  /// serving again (extension; the paper leaves recovery state transfer
  /// unspecified — without it a replica only catches up via later commits).
  bool recovery_sync = true;

  /// Processing time an agent spends at each server it visits (lock request,
  /// bookkeeping) — the "average time a mobile agent spent at a server"
  /// factor in the paper's ALT metric.
  sim::SimTime visit_service_time = sim::SimTime::millis(2);

  /// Local processing time for the read path (read local copy).
  sim::SimTime local_read_time = sim::SimTime::micros(100);

  /// UPDATE re-broadcast cadence while waiting for a majority of acks, and
  /// the number of rounds before the update is aborted.
  sim::SimTime ack_retry_interval = sim::SimTime::millis(100);
  std::uint32_t max_ack_rounds = 20;

  /// Acknowledged COMMIT/REPORT delivery: every server acks each COMMIT
  /// copy, the origin acks the REPORT, and the winner lingers (without
  /// blocking the decided outcome) re-sending COMMIT to silent servers and
  /// REPORT to a silent origin until both are covered or
  /// `max_commit_rounds` expires. This is what makes a commit immune to
  /// drops and duplication on live links; servers silent past the rounds
  /// (crashed, long partition) catch up via recovery sync or anti-entropy.
  /// Off (default) keeps the paper's fire-and-forget message budget —
  /// chaos and lossy-link experiments turn it on.
  bool reliable_commit = false;
  sim::SimTime commit_retry_interval = sim::SimTime::millis(100);
  std::uint32_t max_commit_rounds = 50;

  /// Background store reconciliation: every interval each live server asks
  /// one random live peer for its store and merges it under the Thomas
  /// write rule (reusing the recovery-sync messages). Zero (default)
  /// disables it. This closes the last convergence gap — a replica that
  /// missed a COMMIT whose sender died before retransmitting — without
  /// which a partition + crash combination can strand a divergent replica.
  /// NOTE: while enabled the simulator's event queue never drains; run with
  /// a deadline.
  sim::SimTime anti_entropy_interval = sim::SimTime::zero();

  /// A blocked (waiting) agent re-visits its stalest server at this cadence
  /// so information can never go permanently stale.
  sim::SimTime patrol_interval = sim::SimTime::millis(250);

  /// Dead-agent lease (extension for the real substrate): an agent whose
  /// host process is SIGKILLed dies without any fail-stop notice, leaving
  /// its LL entries and update grants behind at surviving servers — every
  /// later claimant NACK-aborts against a ghost holder forever. With a
  /// non-zero lease each server expires lock/grant state of *remote* agents
  /// that have shown no activity (visit, refresh, UPDATE, UNLOCK) for this
  /// long. Locally-hosted agents are exempt (their liveness is directly
  /// observable). Must be much larger than N x patrol_interval so a live
  /// blocked agent's patrol re-visits always refresh it in time. Zero
  /// (default) disables the sweep — the simulator's fail-stop notices make
  /// it redundant there.
  sim::SimTime agent_lease_timeout = sim::SimTime::zero();

  /// A claimant that lost the grant race to a *larger*-id holder retries
  /// after this delay (plus per-agent jitter); smaller-id holders are
  /// deferred to until their commit is observed.
  sim::SimTime claim_retry_delay = sim::SimTime::millis(4);

  /// Upper bound on deferring to a holder that never commits (it may itself
  /// have been demoted and concluded somebody else should win). Safety does
  /// not depend on this — the per-server grants are exclusive — it only
  /// bounds the mutual-waiting stall.
  sim::SimTime defer_timeout = sim::SimTime::millis(150);

  /// Multi-group claims only: how long a parked agent tolerates an unchanged
  /// wait — heading some of its lock groups while a *younger* agent heads
  /// another — before it withdraws from every Locking List and re-queues at
  /// the tails. Per-group winner selection is by queue position, so agents
  /// with overlapping group sets can wait on each other in a cycle; in any
  /// such cycle at least one member waits on a younger winner, so this rule
  /// always breaks it. Single-group agents (the paper's protocol) never
  /// trigger it.
  /// The clock only runs while the losing view is static (any change to the
  /// set of winners we are losing to resets it), so this can sit close to
  /// defer_timeout without triggering on healthy waits.
  sim::SimTime requeue_timeout = sim::SimTime::millis(200);

  /// Delay until all servers are informed of a fail-stop (§2: "all other
  /// processes are informed of the failure in a finite time").
  sim::SimTime failure_notice_delay = sim::SimTime::millis(100);
};

}  // namespace marp::core

// UpdateAgent — the mobile agent of Algorithm 1.
//
// Carries a batch of write requests from its origin server, travels the
// replicated servers appending itself to their locking lists, accumulates
// locking information (LT) and finished-agent information (UAL), and — once
// it holds the highest priority — synchronises to the freshest copy,
// broadcasts UPDATE, collects a majority of acks, multicasts COMMIT, reports
// to its origin, and disposes.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "agent/agent.hpp"
#include "marp/priority.hpp"
#include "marp/wire.hpp"
#include "membership/view.hpp"
#include "replica/versioned_store.hpp"

namespace marp::trace {
class Tracer;
}

namespace marp::core {

class MarpServer;

/// Registry name for this agent type.
inline constexpr const char* kUpdateAgentType = "marp.update";

class UpdateAgent final : public agent::MobileAgent {
 public:
  struct PendingWrite {
    std::uint64_t request_id = 0;
    std::string key;
    std::string value;
  };

  enum class Phase : std::uint8_t {
    Traveling = 0,  ///< collecting locks / migrating
    Waiting = 1,    ///< USL exhausted, not highest priority — parked
    Updating = 2,   ///< winner: UPDATE broadcast out, gathering acks
    Done = 3,
    /// Decision made (COMMIT broadcast / abort released): lingering only to
    /// retransmit COMMIT to unacked servers and REPORT to the origin until
    /// both are covered or max_commit_rounds expires. The outcome is final —
    /// this phase exists so transient loss cannot half-apply a commit.
    Committing = 4
  };

  UpdateAgent() = default;  ///< for the registry (state set by deserialize)
  UpdateAgent(net::NodeId origin, std::vector<PendingWrite> writes);

  std::string type_name() const override { return kUpdateAgentType; }

  void on_created(agent::AgentContext& ctx) override;
  void on_arrival(agent::AgentContext& ctx) override;
  void on_migration_failed(agent::AgentContext& ctx, net::NodeId destination) override;
  void on_message(agent::AgentContext& ctx, net::MessageType type,
                  const serial::Bytes& payload) override;
  void on_signal(agent::AgentContext& ctx, std::uint32_t signal) override;
  void on_timer(agent::AgentContext& ctx, std::uint64_t token) override;

  void serialize(serial::Writer& w) const override;
  void deserialize(serial::Reader& r) override;

  // Introspection (tests).
  Phase phase() const noexcept { return phase_; }
  const GroupLockTable& lock_tables() const noexcept { return lt_; }
  const std::vector<shard::GroupId>& lock_groups() const noexcept { return groups_; }
  const DoneSet& updated_agents() const noexcept { return ual_; }
  std::uint32_t servers_visited() const noexcept {
    return static_cast<std::uint32_t>(visited_.size());
  }

 private:
  static constexpr std::uint64_t kTokenVisit = 1;
  static constexpr std::uint64_t kTokenPatrol = 2;
  static constexpr std::uint64_t kTokenAckRetry = 3;
  static constexpr std::uint64_t kTokenClaimRetry = 4;
  static constexpr std::uint64_t kTokenCommitRetry = 5;
  static constexpr std::uint64_t kTokenMigrationRetry = 6;

  void arm_patrol(agent::AgentContext& ctx);

  MarpServer& server_here(agent::AgentContext& ctx) const;
  /// The installed execution tracer, or nullptr (one pointer chase; every
  /// hook site is guarded so untraced runs pay a single branch).
  trace::Tracer* tracer(agent::AgentContext& ctx) const;
  std::vector<std::string> keys() const;

  void do_visit(agent::AgentContext& ctx);
  void evaluate(agent::AgentContext& ctx);
  void withdraw_and_requeue(agent::AgentContext& ctx);
  void begin_update(agent::AgentContext& ctx);
  /// Withdraw a losing update attempt and park until `holder` finishes.
  void demote(agent::AgentContext& ctx, const agent::AgentId& holder,
              bool broadcast_unlock);
  void finish_update(agent::AgentContext& ctx);
  void abort(agent::AgentContext& ctx);
  void send_report(agent::AgentContext& ctx, bool success);
  /// Dispose once the COMMIT (when one went out) reached every reachable
  /// server and the origin acked the REPORT.
  void maybe_finish_commit(agent::AgentContext& ctx);

  /// Votes held by the servers that have acked the current attempt.
  std::uint32_t ack_votes(agent::AgentContext& ctx) const;

  /// Delay before the next UPDATE retransmit round. The majority (seed)
  /// path always waits the configured interval. Geometry attempts start at
  /// an eighth of it and double back up to the full interval: a minimal
  /// quorum has no spare ACKs, so every lost message stalls the session
  /// until the next round — under sustained link loss a conservative first
  /// retry serialises the whole workload behind 100 ms stalls.
  sim::SimTime ack_retry_delay(agent::AgentContext& ctx) const;

  /// The deployment's geometry handle, or null on the Majority (seed) path.
  const quorum::QuorumSystem* decision_quorum(agent::AgentContext& ctx) const;
  /// The candidate write quorum this agent tours. Recomputed on demand from
  /// (unavailable_, origin_) — both already serialized — instead of being
  /// carried explicitly, so the migrating byte size (and with it the
  /// bandwidth-model virtual time) is untouched on every geometry.
  /// nullopt = no quorum survives the unavailable servers. Non-majority
  /// geometries only.
  std::optional<quorum::NodeSet> current_quorum(agent::AgentContext& ctx) const;
  /// Whether the acks gathered so far decide the update: a majority of
  /// votes (seed arithmetic) or geometry write-coverage of the ack set.
  bool ack_quorum_reached(agent::AgentContext& ctx) const;

  /// Next migration target per the routing policy, or kInvalidNode.
  net::NodeId pick_next_target(agent::AgentContext& ctx) const;
  /// Known server with the oldest LT stamp (patrol target).
  net::NodeId pick_stalest(agent::AgentContext& ctx) const;

  bool is_unavailable(net::NodeId node) const;

  // ---- dynamic membership (config.membership.enabled()) ----
  /// Union of the local view's replicas of this agent's lock groups — the
  /// membership-mode USL / UPDATE fan-out set, sorted ascending.
  std::vector<net::NodeId> view_usl(agent::AgentContext& ctx) const;
  /// Abort-and-re-tour under a newer view: leave every Locking List, drop
  /// everything observed under the old epoch (queue positions, snapshots,
  /// acks), adopt `view`'s epoch and tour its replicas from scratch.
  /// Skipped wholesale by the MixedEpoch mutant.
  void retour(agent::AgentContext& ctx, const membership::MembershipView& view);

  // --- migrating state (all serialized) ---
  net::NodeId origin_ = net::kInvalidNode;
  std::vector<PendingWrite> writes_;
  Phase phase_ = Phase::Traveling;
  std::int64_t dispatched_us_ = 0;
  std::int64_t lock_obtained_us_ = 0;
  std::vector<net::NodeId> usl_;          ///< Un-visited Servers List (§3.2)
  std::vector<net::NodeId> visited_;      ///< servers where a lock was requested
  std::vector<net::NodeId> unavailable_;  ///< declared failed this round (§2)
  /// Lock groups the write-set routes to, ascending (set at creation — the
  /// acquisition order that keeps multi-group claims deadlock-free).
  std::vector<shard::GroupId> groups_;
  GroupLockTable lt_;                     ///< per-group Locking Tables (§3.2)
  DoneSet ual_;                           ///< Updated Agents List (§3.2)
  std::map<std::string, replica::VersionedValue> freshest_;
  std::vector<std::int64_t> routing_costs_;  ///< from the last visited server
  net::NodeId current_target_ = net::kInvalidNode;
  std::uint32_t migration_retries_ = 0;
  std::vector<WriteOp> ops_;              ///< built at begin_update
  std::set<net::NodeId> acks_;
  std::uint32_t ack_rounds_ = 0;
  /// Max applied_high over this attempt's ACKs (incl. the local grant).
  /// Never serialized: the agent re-enters Updating after any migration.
  replica::Version ack_floor_;
  /// Committing-phase linger state: whether a COMMIT went out (false for an
  /// abort, which only lingers for the report ack), which servers confirmed
  /// it, how many retransmit rounds have elapsed, and whether the origin
  /// acknowledged the REPORT.
  bool committed_ = false;
  std::set<net::NodeId> commit_acks_;
  std::uint32_t commit_rounds_ = 0;
  bool report_acked_ = false;
  /// Set after losing an ack race to a smaller-id (higher-priority) holder:
  /// do not re-attempt the update until that holder is seen to have
  /// finished (prevents claim livelock).
  bool defer_ = false;
  agent::AgentId defer_to_;
  std::int64_t defer_since_us_ = 0;
  /// Sequences update attempts; stale ACK/NACKs from withdrawn attempts are
  /// ignored by comparing against this.
  std::uint32_t attempt_seq_ = 0;
  /// Cross-group stall detection (multi-group claims only): when the set of
  /// per-group winners this agent is losing to last changed, and its
  /// fingerprint. An unchanged losing view for `requeue_timeout` — while
  /// heading some group and losing another to a younger agent — means a
  /// probable wait cycle, answered by withdraw_and_requeue().
  std::int64_t stall_since_us_ = 0;
  std::uint64_t stall_fingerprint_ = 0;
  /// Birth epoch of the current tour (0 = static membership). Serialized as
  /// a trailing optional field so the disabled path stays byte-identical.
  std::uint64_t epoch_ = 0;

  // Not serialized: timers do not survive migration, so arming state resets
  // with each hop.
  bool patrol_armed_ = false;
};

}  // namespace marp::core

#include "marp/update_agent.hpp"

#include <algorithm>

#include "marp/protocol.hpp"
#include "marp/server.hpp"
#include "trace/tracer.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace marp::core {

UpdateAgent::UpdateAgent(net::NodeId origin, std::vector<PendingWrite> writes)
    : origin_(origin), writes_(std::move(writes)) {
  MARP_REQUIRE(!writes_.empty());
}

MarpServer& UpdateAgent::server_here(agent::AgentContext& ctx) const {
  auto* server = ctx.service<MarpServer>(kMarpServiceName);
  MARP_REQUIRE_MSG(server != nullptr, "no MARP server on this host");
  return *server;
}

trace::Tracer* UpdateAgent::tracer(agent::AgentContext& ctx) const {
  return server_here(ctx).protocol().tracer();
}

std::vector<std::string> UpdateAgent::keys() const {
  std::vector<std::string> out;
  out.reserve(writes_.size());
  for (const PendingWrite& write : writes_) {
    if (std::find(out.begin(), out.end(), write.key) == out.end()) {
      out.push_back(write.key);
    }
  }
  return out;
}

bool UpdateAgent::is_unavailable(net::NodeId node) const {
  return std::find(unavailable_.begin(), unavailable_.end(), node) !=
         unavailable_.end();
}

const quorum::QuorumSystem* UpdateAgent::decision_quorum(
    agent::AgentContext& ctx) const {
  MarpServer& server = server_here(ctx);
  // Membership mode replaces the cluster-level geometry with the per-group
  // mapped quorums (server.group_quorum) — the cluster handle would measure
  // coverage against the wrong electorate.
  if (server.config().membership.enabled()) return nullptr;
  return server.protocol().decision_quorum();
}

std::vector<net::NodeId> UpdateAgent::view_usl(agent::AgentContext& ctx) const {
  const membership::MembershipView& view = server_here(ctx).view();
  std::vector<net::NodeId> nodes;
  for (const shard::GroupId g : groups_) {
    for (const net::NodeId node : view.replicas_of(g)) {
      if (std::find(nodes.begin(), nodes.end(), node) == nodes.end()) {
        nodes.push_back(node);
      }
    }
  }
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

std::optional<quorum::NodeSet> UpdateAgent::current_quorum(
    agent::AgentContext& ctx) const {
  const quorum::QuorumSystem* qs = decision_quorum(ctx);
  MARP_REQUIRE(qs != nullptr);
  return mutant_pick_write_quorum(*qs, quorum::make_node_set(unavailable_),
                                  origin_, server_here(ctx).config().mutant);
}

bool UpdateAgent::ack_quorum_reached(agent::AgentContext& ctx) const {
  MarpServer& server = server_here(ctx);
  if (server.config().membership.enabled()) {
    // (group, epoch)-scoped coverage: the acked set must contain a write
    // quorum of EVERY group's replica geometry. Acks are epoch-filtered on
    // receipt, except under the MixedEpoch mutant, which deliberately lets
    // cross-epoch acks accumulate here.
    const quorum::NodeSet held(acks_.begin(), acks_.end());  // set: sorted
    for (const shard::GroupId g : groups_) {
      const membership::MappedQuorum* gq = server.group_quorum(g);
      if (gq == nullptr || !gq->write_covered(held)) return false;
    }
    return true;
  }
  if (const quorum::QuorumSystem* qs = decision_quorum(ctx)) {
    const quorum::NodeSet held(acks_.begin(), acks_.end());  // set: sorted
    return mutant_write_covered(*qs, held, server.config().mutant);
  }
  return 2 * ack_votes(ctx) >
         total_votes(server.config().votes, server.cluster_size());
}

void UpdateAgent::on_created(agent::AgentContext& ctx) {
  dispatched_us_ = ctx.now().as_micros();
  MarpServer& server = server_here(ctx);
  const std::size_t n = server.cluster_size();
  usl_.clear();
  // §3.2: "Initially, this list contains all the replicated servers in the
  // system" — the creation server is visited first, without migrating.
  for (net::NodeId node = 0; node < n; ++node) usl_.push_back(node);
  if (decision_quorum(ctx) != nullptr) {
    // Non-majority geometry: tour only the candidate write quorum (which
    // contains the origin — `prefer` in the pick). Locks at a quorum are
    // enough; the geometry's intersection property replaces the full tour.
    const auto members = current_quorum(ctx);
    MARP_REQUIRE(members.has_value());
    usl_.assign(members->begin(), members->end());
  }
  // The write-set's lock groups, ascending — the fixed acquisition order
  // every agent uses, which is what makes multi-group claims deadlock-free.
  groups_ = server.router().groups_of(keys());
  if (groups_.empty()) groups_.push_back(0);
  if (server.config().membership.enabled()) {
    // Epoch-stamped session over partial replication: tour only the
    // replicas of the write-set's groups, under the origin's current view.
    // (The origin itself need not be a replica — it then acts purely as the
    // client, and the first hop migrates into the replica set.)
    epoch_ = server.view().epoch;
    usl_ = view_usl(ctx);
  }
  ctx.set_timer(server.config().visit_service_time, kTokenVisit);
  if (auto* t = tracer(ctx)) t->visit_begin(id(), ctx.here());
}

void UpdateAgent::on_arrival(agent::AgentContext& ctx) {
  migration_retries_ = 0;
  current_target_ = net::kInvalidNode;
  patrol_armed_ = false;  // timers died with the previous incarnation
  ctx.set_timer(server_here(ctx).config().visit_service_time, kTokenVisit);
  if (auto* t = tracer(ctx)) t->visit_begin(id(), ctx.here());
}

void UpdateAgent::arm_patrol(agent::AgentContext& ctx) {
  if (patrol_armed_) return;
  patrol_armed_ = true;
  ctx.set_timer(server_here(ctx).config().patrol_interval, kTokenPatrol);
}

void UpdateAgent::on_timer(agent::AgentContext& ctx, std::uint64_t token) {
  switch (token) {
    case kTokenVisit:
      do_visit(ctx);
      break;
    case kTokenPatrol: {
      patrol_armed_ = false;
      if (phase_ != Phase::Waiting) break;
      const net::NodeId target = pick_stalest(ctx);
      if (target != net::kInvalidNode) {
        if (auto* t = tracer(ctx)) t->wait_end(id());
        phase_ = Phase::Traveling;
        current_target_ = target;
        migration_retries_ = 0;
        ctx.dispatch_to(target);
      } else {
        arm_patrol(ctx);
      }
      break;
    }
    case kTokenClaimRetry: {
      if (phase_ != Phase::Waiting) break;
      evaluate(ctx);  // evaluate() itself decides whether defer still holds
      break;
    }
    case kTokenAckRetry: {
      if (phase_ != Phase::Updating) break;
      MarpServer& server = server_here(ctx);
      const MarpConfig& config = server.config();
      const quorum::QuorumSystem* qs = decision_quorum(ctx);
      if (++ack_rounds_ > config.max_ack_rounds) {
        if (qs != nullptr) {
          // Geometry fallback: the silent quorum members are treated as
          // down, the attempt is withdrawn (grants released everywhere so
          // nothing stays wedged), and a fresh quorum avoiding them is
          // toured. Only when no quorum survives does the agent give up.
          const auto members = current_quorum(ctx);
          if (members) {
            for (const net::NodeId node : *members) {
              if (!acks_.contains(node) && !is_unavailable(node)) {
                unavailable_.push_back(node);
              }
            }
          }
          if (const auto next = current_quorum(ctx)) {
            server.protocol().note_quorum_reselection();
            ctx.broadcast(kMsgUnlock, UnlockPayload{id(), attempt_seq_}.encode());
            server.handle_unlock_local(id(), attempt_seq_);
            acks_.clear();
            phase_ = Phase::Traveling;
            usl_.clear();
            for (const net::NodeId node : *next) {
              if (std::find(visited_.begin(), visited_.end(), node) ==
                  visited_.end()) {
                usl_.push_back(node);
              }
            }
            evaluate(ctx);
            break;
          }
        }
        abort(ctx);
        break;
      }
      if (auto* t = tracer(ctx)) t->retry(id(), ctx.here(), trace::kRetryAck);
      // Re-send UPDATE to servers that have not acked (idempotent staging).
      // A retry means the first transmission met loss or a dead member, so
      // the geometry path widens to every available server here: the acked
      // set commits on ANY write quorum it covers (ack_quorum_reached), and
      // a minimal-fanout retransmit to the same lossy members would just
      // stall another round. The quorum-only bill is paid on the first
      // attempt, where it belongs — retries buy robustness with redundancy,
      // exactly like the seed's broadcast.
      UpdatePayload payload{id(), ctx.here(), attempt_seq_, ops_, groups_};
      payload.epoch = epoch_;
      const serial::Bytes bytes = payload.encode();
      if (config.membership.enabled()) {
        // Membership fan-out is already "everyone relevant": the groups'
        // replicas. Non-replicas would only fence the epoch-stamped UPDATE.
        for (const net::NodeId node : view_usl(ctx)) {
          if (node == ctx.here() || acks_.contains(node)) continue;
          ctx.send_to_node(node, kMsgUpdate, bytes);
        }
      } else {
        const std::size_t n = server.cluster_size();
        for (net::NodeId node = 0; node < n; ++node) {
          if (node == ctx.here() || acks_.contains(node)) continue;
          if (qs != nullptr && is_unavailable(node)) continue;
          ctx.send_to_node(node, kMsgUpdate, bytes);
        }
      }
      ctx.set_timer(ack_retry_delay(ctx), kTokenAckRetry);
      break;
    }
    case kTokenCommitRetry: {
      if (phase_ != Phase::Committing) break;
      MarpServer& server = server_here(ctx);
      const MarpConfig& config = server.config();
      if (++commit_rounds_ > config.max_commit_rounds) {
        // Stragglers are down or partitioned beyond the retransmit window;
        // they catch up via recovery sync / anti-entropy. The decision
        // itself was final the moment COMMIT first went out.
        if (auto* t = tracer(ctx)) t->commit_fanout_end(id());
        phase_ = Phase::Done;
        ctx.dispose();
        break;
      }
      if (auto* t = tracer(ctx)) t->retry(id(), ctx.here(), trace::kRetryCommit);
      if (committed_) {
        const CommitPayload commit{id(), ops_, groups_, ctx.here()};
        const serial::Bytes bytes = commit.encode();
        const std::size_t n = server.cluster_size();
        for (net::NodeId node = 0; node < n; ++node) {
          if (node == ctx.here() || commit_acks_.contains(node)) continue;
          ctx.send_to_node(node, kMsgCommit, bytes);
          server.protocol().note_anomaly(Anomaly::CommitRetransmit);
        }
      } else {
        const ReleasePayload release{id(), groups_, ctx.here()};
        const serial::Bytes bytes = release.encode();
        const std::size_t n = server.cluster_size();
        for (net::NodeId node = 0; node < n; ++node) {
          if (node == ctx.here() || commit_acks_.contains(node)) continue;
          ctx.send_to_node(node, kMsgRelease, bytes);
          server.protocol().note_anomaly(Anomaly::ReleaseRetransmit);
        }
      }
      if (!report_acked_) {
        send_report(ctx, committed_);
        server.protocol().note_anomaly(Anomaly::ReportRetransmit);
      }
      maybe_finish_commit(ctx);
      if (phase_ == Phase::Committing) {
        ctx.set_timer(config.commit_retry_interval, kTokenCommitRetry);
      }
      break;
    }
    case kTokenMigrationRetry: {
      // Backoff expired: re-attempt the dispatch that failed (transient
      // loss may have cleared). Moot if the agent has moved on meanwhile.
      if (phase_ != Phase::Traveling || current_target_ == net::kInvalidNode) {
        break;
      }
      ctx.dispatch_to(current_target_);
      break;
    }
    default:
      break;
  }
}

void UpdateAgent::do_visit(agent::AgentContext& ctx) {
  // The service window elapsed either way — close the span even when the
  // agent has moved past visiting (the timer outlived the phase).
  if (auto* t = tracer(ctx)) t->visit_end(id());
  if (phase_ == Phase::Done || phase_ == Phase::Updating ||
      phase_ == Phase::Committing) {
    return;
  }
  MarpServer& server = server_here(ctx);
  const MarpConfig& config = server.config();

  const VisitResult result =
      server.visit(id(), keys(), config.gossip ? lt_ : GroupLockTable{});

  if (config.membership.enabled() && result.epoch > epoch_ &&
      config.mutant != ProtocolMutant::MixedEpoch) {
    // This server advertises a newer view: everything collected so far is
    // scoped to a dead epoch. Abort-and-re-tour under the new one.
    retour(ctx, server.view());
    return;
  }

  for (const auto& [group, snapshot] : result.locking_lists) {
    lt_[group][ctx.here()] = snapshot;
  }
  if (config.gossip) merge_group_lock_tables(lt_, result.gossip);
  for (const agent::AgentId& done : result.updated_list) ual_.insert(done);
  for (const auto& [key, value] : result.data) {
    auto& best = freshest_[key];
    if (value.version > best.version) best = value;
  }
  routing_costs_ = result.routing_costs;

  if (std::find(visited_.begin(), visited_.end(), ctx.here()) == visited_.end()) {
    visited_.push_back(ctx.here());
  }
  usl_.erase(std::remove(usl_.begin(), usl_.end(), ctx.here()), usl_.end());

  phase_ = Phase::Traveling;
  evaluate(ctx);
}

void UpdateAgent::evaluate(agent::AgentContext& ctx) {
  MarpServer& server = server_here(ctx);
  const std::size_t n = server.cluster_size();
  // §3.2's priority rule, applied independently per lock group (ascending):
  // the agent proceeds only when it wins *every* group its write-set
  // touches. A miss in any group means keep collecting locks / wait.
  Decision decision{Decision::Kind::Win, id()};
  std::vector<shard::GroupId> headed;
  std::vector<agent::AgentId> losing_to;
  bool loses_to_younger = false;
  std::uint64_t losing_fingerprint = 0xCBF29CE484222325ULL;
  const bool membership = server.config().membership.enabled();
  for (const shard::GroupId g : groups_) {
    const auto it = lt_.find(g);
    // Membership mode scopes the election to the group's replica set: its
    // mapped geometry for tree/grid inners, or majority arithmetic over the
    // replica count for the Majority inner (decide()'s seed rule, with the
    // group's copies as the electorate).
    const quorum::QuorumSystem* gq =
        membership ? server.group_quorum(g) : decision_quorum(ctx);
    const std::size_t electorate =
        membership && gq != nullptr ? gq->size() : n;
    const Decision verdict =
        decide(it == lt_.end() ? LockTable{} : it->second, ual_, id(),
               electorate, server.config().tie_break, server.config().votes,
               server.config().mutant, gq);
    if (verdict.kind == Decision::Kind::Win) headed.push_back(g);
    if (verdict.kind == Decision::Kind::Lose) {
      losing_to.push_back(*verdict.winner);
      if (id() < *verdict.winner) loses_to_younger = true;
      losing_fingerprint ^= (g + 1) * agent::AgentIdHash{}(*verdict.winner);
      losing_fingerprint *= 0x100000001B3ULL;
    }
    if (decision.kind == Decision::Kind::Win) decision = verdict;
  }
  // A two-cycle is visible from here: we lose some group to W while W is
  // itself queued (behind us) in a group we head — W cannot commit before
  // us, nor we before it. When the partner is the *older* agent, we are the
  // one the younger-yields rule elects: withdraw right away.
  bool yield_to_partner = false;
  for (const agent::AgentId& winner : losing_to) {
    if (id() < winner) continue;  // we are older; the partner yields instead
    for (const shard::GroupId h : headed) {
      const auto it = lt_.find(h);
      if (it == lt_.end()) continue;
      for (const auto& [node, snapshot] : it->second) {
        if (std::find(snapshot.agents.begin(), snapshot.agents.end(), winner) !=
            snapshot.agents.end()) {
          yield_to_partner = true;
        }
      }
    }
  }
  // Per-group winners are picked by Locking-List position, so agents with
  // overlapping multi-group write-sets can wait on each other in a cycle
  // (A heads group 1 queued behind B in group 2, B the reverse). Any cycle
  // contains an agent losing to a *younger* winner; if that is us and the
  // losing view has not budged for requeue_timeout, leave every list and
  // re-queue at the tails — everyone we were blocking proceeds.
  if (losing_fingerprint != stall_fingerprint_) {
    stall_fingerprint_ = losing_fingerprint;
    stall_since_us_ = ctx.now().as_micros();
  }

  // A deferred claimant re-attempts once the higher-priority holder it lost
  // the ack race to is known to have finished — or after the defer timeout,
  // in case that holder was itself demoted and is now waiting on us.
  if (defer_ && (ual_.contains(defer_to_) ||
                 ctx.now().as_micros() - defer_since_us_ >=
                     server.config().defer_timeout.as_micros())) {
    defer_ = false;
  }

  if (decision.kind == Decision::Kind::Win && !defer_) {
    begin_update(ctx);
    return;
  }

  // Not (yet) the winner: keep collecting locks while servers remain.
  const net::NodeId next = pick_next_target(ctx);
  if (next != net::kInvalidNode) {
    if (auto* t = tracer(ctx)) t->wait_end(id());
    current_target_ = next;
    migration_retries_ = 0;
    ctx.dispatch_to(next);
    return;
  }

  // USL exhausted, so the view is as complete as it gets. A confirmed
  // two-cycle with an older partner is broken immediately; anything that
  // smells like a longer cycle — heading a group while losing another to a
  // younger agent, with nothing changing — is broken after the patience
  // window (per-agent jitter staggers withdrawals in longer cycles).
  if (yield_to_partner) {
    withdraw_and_requeue(ctx);
    return;
  }
  if (groups_.size() > 1 && !headed.empty() && loses_to_younger) {
    const std::int64_t patience =
        server.config().requeue_timeout.as_micros() +
        static_cast<std::int64_t>(agent::AgentIdHash{}(id()) % 100'000);
    if (ctx.now().as_micros() - stall_since_us_ >= patience) {
      withdraw_and_requeue(ctx);
      return;
    }
  }

  // Park here; lock-change signals and the patrol timer (stale-info
  // refresh) guarantee re-evaluation.
  if (auto* t = tracer(ctx)) t->wait_begin(id(), ctx.here());
  phase_ = Phase::Waiting;
  arm_patrol(ctx);
}

void UpdateAgent::withdraw_and_requeue(agent::AgentContext& ctx) {
  MarpServer& server = server_here(ctx);
  std::optional<quorum::NodeSet> geometry_usl;
  if (decision_quorum(ctx) != nullptr) {
    geometry_usl = current_quorum(ctx);
    if (!geometry_usl) {
      abort(ctx);  // no quorum survives the unavailable servers
      return;
    }
  }
  server.protocol().note_update_requeue(id());
  if (auto* t = tracer(ctx)) {
    t->wait_end(id());
    t->requeue(id(), ctx.here());
  }
  // Reset our own race state FIRST: handle_release_local() below raises the
  // lock-changed signal synchronously, which re-enters on_signal()/evaluate()
  // for every Waiting agent on this host — including us unless the phase
  // already says Traveling.
  lt_.clear();  // every queue position just became void
  defer_ = false;
  visited_.clear();
  usl_.clear();
  if (geometry_usl) {
    usl_.assign(geometry_usl->begin(), geometry_usl->end());
  } else if (server.config().membership.enabled()) {
    for (const net::NodeId node : view_usl(ctx)) {
      if (!is_unavailable(node)) usl_.push_back(node);
    }
  } else {
    const std::size_t n = server.cluster_size();
    for (net::NodeId node = 0; node < n; ++node) {
      if (!is_unavailable(node)) usl_.push_back(node);
    }
  }
  phase_ = Phase::Traveling;
  stall_since_us_ = ctx.now().as_micros();

  // Leave every Locking List (no grants are held while parked — those are
  // only taken in begin_update). The fresh tour below re-appends this agent
  // at the tails, behind everything it was blocking. Should a re-appended
  // entry race a still-in-flight RELEASE and get swallowed, refresh()
  // re-inserts the parked waiter on the next signal or patrol visit.
  const ReleasePayload release{id(), groups_};
  ctx.broadcast(kMsgRelease, release.encode());
  server.handle_release_local(release);
  do_visit(ctx);
}

void UpdateAgent::retour(agent::AgentContext& ctx,
                         const membership::MembershipView& view) {
  MarpServer& server = server_here(ctx);
  MARP_REQUIRE(view.epoch > epoch_);
  server.protocol().note_epoch_retour();
  if (auto* t = tracer(ctx)) {
    t->wait_end(id());
    t->requeue(id(), ctx.here());
  }
  epoch_ = view.epoch;
  // Everything observed under the old view is void: queue positions,
  // snapshots, grants, acks. Same shape as withdraw_and_requeue, but the
  // fresh tour covers the NEW view's replicas of our groups.
  lt_.clear();
  defer_ = false;
  acks_.clear();
  visited_.clear();
  usl_.clear();
  for (const shard::GroupId g : groups_) {
    for (const net::NodeId node : view.replicas_of(g)) {
      if (!is_unavailable(node) &&
          std::find(usl_.begin(), usl_.end(), node) == usl_.end()) {
        usl_.push_back(node);
      }
    }
  }
  std::sort(usl_.begin(), usl_.end());
  phase_ = Phase::Traveling;
  stall_since_us_ = ctx.now().as_micros();
  // Leave every Locking List and release any grants the withdrawn attempt
  // held; the fresh tour re-queues this agent at the new replicas' tails.
  const ReleasePayload release{id(), groups_};
  ctx.broadcast(kMsgRelease, release.encode());
  server.handle_release_local(release);
  do_visit(ctx);
}

net::NodeId UpdateAgent::pick_next_target(agent::AgentContext& ctx) const {
  std::vector<net::NodeId> candidates;
  for (net::NodeId node : usl_) {
    if (node != ctx.here() && !is_unavailable(node)) candidates.push_back(node);
  }
  if (candidates.empty()) return net::kInvalidNode;

  const RoutingPolicy policy = server_here(ctx).config().routing;
  switch (policy) {
    case RoutingPolicy::CostAware: {
      // Cheapest next hop per the routing table taken from the last server.
      net::NodeId best = candidates.front();
      for (net::NodeId node : candidates) {
        const std::int64_t cost =
            node < routing_costs_.size() ? routing_costs_[node] : 0;
        const std::int64_t best_cost =
            best < routing_costs_.size() ? routing_costs_[best] : 0;
        if (cost < best_cost || (cost == best_cost && node < best)) best = node;
      }
      return best;
    }
    case RoutingPolicy::Random: {
      // Deterministic per (agent, hop): independent of global RNG state.
      std::uint64_t seed = agent::AgentIdHash{}(id());
      seed ^= (visited_.size() + 1) * 0x9E3779B97F4A7C15ULL;
      sim::Rng rng(seed);
      return candidates[rng.bounded(candidates.size())];
    }
    case RoutingPolicy::ByServerId:
      return *std::min_element(candidates.begin(), candidates.end());
  }
  return net::kInvalidNode;
}

net::NodeId UpdateAgent::pick_stalest(agent::AgentContext& ctx) const {
  net::NodeId stalest = net::kInvalidNode;
  std::int64_t oldest = std::numeric_limits<std::int64_t>::max();
  // Geometry tours patrol their candidate quorum, not the whole cluster;
  // membership tours patrol their groups' replicas.
  std::optional<quorum::NodeSet> members;
  if (server_here(ctx).config().membership.enabled()) {
    members = quorum::make_node_set(view_usl(ctx));
  } else if (decision_quorum(ctx) != nullptr) {
    members = current_quorum(ctx);
    if (!members) return net::kInvalidNode;
  }
  const std::size_t n = server_here(ctx).cluster_size();
  for (net::NodeId node = 0; node < n; ++node) {
    if (node == ctx.here() || is_unavailable(node)) continue;
    if (members && !quorum::contains(*members, node)) continue;
    // A server is as stale as its least-recently-observed group snapshot.
    std::int64_t stamp = std::numeric_limits<std::int64_t>::max();
    for (const shard::GroupId g : groups_) {
      std::int64_t group_stamp = -1;
      if (auto git = lt_.find(g); git != lt_.end()) {
        if (auto nit = git->second.find(node); nit != git->second.end()) {
          group_stamp = nit->second.observed_us;
        }
      }
      stamp = std::min(stamp, group_stamp);
    }
    if (stamp < oldest) {
      oldest = stamp;
      stalest = node;
    }
  }
  return stalest;
}

void UpdateAgent::on_migration_failed(agent::AgentContext& ctx,
                                      net::NodeId destination) {
  MarpServer& server = server_here(ctx);
  const MarpConfig& config = server.config();
  if (++migration_retries_ <= config.migration_retry_limit) {
    if (config.migration_retry_backoff > sim::SimTime::zero()) {
      // Transient-loss mode: space the retries out exponentially so a lossy
      // (but live) link gets a chance to deliver, instead of burning every
      // retry back-to-back and declaring a healthy replica unavailable.
      current_target_ = destination;
      const std::uint32_t shift = std::min(migration_retries_ - 1u, 16u);
      const sim::SimTime delay =
          sim::SimTime::micros(config.migration_retry_backoff.as_micros() << shift);
      if (auto* t = tracer(ctx)) {
        t->backoff(id(), ctx.here(),
                   static_cast<std::uint64_t>(delay.as_micros()));
      }
      ctx.set_timer(delay, kTokenMigrationRetry);
      return;
    }
    if (auto* t = tracer(ctx)) {
      t->retry(id(), ctx.here(), trace::kRetryMigration);
    }
    ctx.dispatch_to(destination);
    return;
  }
  // §2: after repeated failures, declare the replica unavailable and do not
  // attempt to visit it again this round.
  unavailable_.push_back(destination);
  usl_.erase(std::remove(usl_.begin(), usl_.end(), destination), usl_.end());
  migration_retries_ = 0;
  current_target_ = net::kInvalidNode;

  if (config.membership.enabled()) {
    // Give up only when some group's quorum cannot survive the unavailable
    // replicas; otherwise the remaining copies still intersect everything.
    const quorum::NodeSet down = quorum::make_node_set(unavailable_);
    for (const shard::GroupId g : groups_) {
      const membership::MappedQuorum* gq = server.group_quorum(g);
      if (gq == nullptr || !gq->pick_write_quorum(down, origin_)) {
        abort(ctx);
        return;
      }
    }
    evaluate(ctx);
    return;
  }

  if (decision_quorum(ctx) != nullptr) {
    // A candidate-quorum member is unreachable: fall back to a quorum that
    // avoids every unavailable server, or give up when none survives.
    const auto members = current_quorum(ctx);
    if (!members) {
      abort(ctx);
      return;
    }
    server.protocol().note_quorum_reselection();
    usl_.clear();
    for (const net::NodeId node : *members) {
      if (std::find(visited_.begin(), visited_.end(), node) == visited_.end()) {
        usl_.push_back(node);
      }
    }
    evaluate(ctx);
    return;
  }

  const std::uint32_t all_votes =
      total_votes(config.votes, server.cluster_size());
  std::uint32_t lost_votes = 0;
  for (net::NodeId node : unavailable_) lost_votes += vote_of(config.votes, node);
  if (2 * (all_votes - lost_votes) <= all_votes) {
    // A majority of votes can no longer answer: consistency requires
    // giving up rather than writing a minority.
    abort(ctx);
    return;
  }
  evaluate(ctx);
}

void UpdateAgent::begin_update(agent::AgentContext& ctx) {
  MarpServer& server = server_here(ctx);
  // Geometry path: the first UPDATE goes to the candidate quorum only —
  // the O(|Q|) message bill is the point of the smaller geometries. Retry
  // rounds widen to every available server (see kTokenAckRetry): a minimal
  // quorum has no spare ACKs, so retransmits buy robustness with
  // redundancy instead. (COMMIT stays a broadcast: every replica applies
  // the write.)
  std::optional<quorum::NodeSet> members;
  if (decision_quorum(ctx) != nullptr) {
    members = current_quorum(ctx);
    if (!members) {
      abort(ctx);
      return;
    }
  }
  if (auto* t = tracer(ctx)) t->wait_end(id());
  phase_ = Phase::Updating;
  lock_obtained_us_ = ctx.now().as_micros();
  server.protocol().note_update_attempt(id(), ctx.here());

  // "It checks the time of last update of all the quorum members and uses
  // the most recent copy" (§3.1): new versions must dominate everything any
  // quorum member has seen.
  std::int64_t base = lock_obtained_us_;
  for (const auto& [key, value] : freshest_) {
    base = std::max(base, value.version.time_us + 1);
  }
  ops_.clear();
  ops_.reserve(writes_.size());
  for (std::size_t i = 0; i < writes_.size(); ++i) {
    ops_.push_back({writes_[i].key, writes_[i].value,
                    replica::Version{base + static_cast<std::int64_t>(i),
                                     origin_}});
  }

  ++attempt_seq_;
  if (auto* t = tracer(ctx)) t->update_round_begin(id(), ctx.here(), attempt_seq_);
  UpdatePayload payload{id(), ctx.here(), attempt_seq_, ops_, groups_};
  payload.epoch = epoch_;
  const bool membership = server.config().membership.enabled();
  // Take the local grants first: if even the local server holds one of our
  // groups for another session, back off without spending any messages.
  // (A fresh attempt from a live agent can never be Stale here.)
  // Membership only: when the origin is not a replica of our groups, no
  // local grant exists — the remote fan-out below carries the whole claim.
  const bool local_replica =
      !membership || quorum::contains(quorum::make_node_set(view_usl(ctx)),
                                      ctx.here());
  if (local_replica) {
    shard::GroupId conflict = 0;
    switch (server.handle_update_local(payload, &conflict)) {
      case MarpServer::GrantResult::Granted:
        break;
      case MarpServer::GrantResult::EpochStale:
        // The local server fenced us (newer epoch installed or promised).
        if (server.view().epoch > epoch_ &&
            server.config().mutant != ProtocolMutant::MixedEpoch) {
          retour(ctx, server.view());
          return;
        }
        [[fallthrough]];
      case MarpServer::GrantResult::CatchingUp:
        // Promise fence or local catch-up: park briefly and re-claim once
        // the change settles.
        phase_ = Phase::Waiting;
        ctx.set_timer(server.config().claim_retry_delay, kTokenClaimRetry);
        arm_patrol(ctx);
        return;
      default:
        demote(ctx, *server.update_holder(conflict), /*broadcast_unlock=*/false);
        return;
    }
  }
  if (membership) {
    const serial::Bytes bytes = payload.encode();
    for (const net::NodeId node : view_usl(ctx)) {
      if (node == ctx.here()) continue;
      ctx.send_to_node(node, kMsgUpdate, bytes);
    }
  } else if (members) {
    const serial::Bytes bytes = payload.encode();
    for (const net::NodeId node : *members) {
      if (node == ctx.here()) continue;
      ctx.send_to_node(node, kMsgUpdate, bytes);
    }
  } else {
    ctx.broadcast(kMsgUpdate, payload.encode());
  }

  acks_.clear();
  acks_.insert(ctx.here());
  ack_floor_ = server.applied_high();
  ack_rounds_ = 0;
  if (ack_quorum_reached(ctx)) {
    finish_update(ctx);  // degenerate N = 1 (or a dominating local vote)
    return;
  }
  ctx.set_timer(ack_retry_delay(ctx), kTokenAckRetry);
}

sim::SimTime UpdateAgent::ack_retry_delay(agent::AgentContext& ctx) const {
  const MarpConfig& config = server_here(ctx).config();
  if (decision_quorum(ctx) == nullptr) return config.ack_retry_interval;
  const std::int64_t full = config.ack_retry_interval.as_micros();
  std::int64_t delay = full / 8;
  if (delay < 1) return config.ack_retry_interval;
  for (std::uint32_t r = 0; r < ack_rounds_ && delay < full; ++r) delay *= 2;
  return sim::SimTime::micros(std::min(delay, full));
}

std::uint32_t UpdateAgent::ack_votes(agent::AgentContext& ctx) const {
  const auto& votes = server_here(ctx).config().votes;
  std::uint32_t sum = 0;
  for (net::NodeId node : acks_) sum += vote_of(votes, node);
  return sum;
}

void UpdateAgent::on_message(agent::AgentContext& ctx, net::MessageType type,
                             const serial::Bytes& payload) {
  if (type == kMsgEpochNotice) {
    // A server fenced our UPDATE: its view outran this session's epoch.
    const EpochNoticePayload notice = EpochNoticePayload::decode(payload);
    MarpServer& server = server_here(ctx);
    if (!server.config().membership.enabled() ||
        server.config().mutant == ProtocolMutant::MixedEpoch) {
      return;
    }
    if (phase_ == Phase::Done || phase_ == Phase::Committing) return;
    if (notice.view.epoch > epoch_) retour(ctx, notice.view);
    return;
  }
  if (type == kMsgCommitAck) {
    if (phase_ != Phase::Committing) return;
    commit_acks_.insert(CommitAckPayload::decode(payload).server);
    maybe_finish_commit(ctx);
    return;
  }
  if (type == kMsgReportAck) {
    if (phase_ != Phase::Committing) return;
    report_acked_ = true;
    maybe_finish_commit(ctx);
    return;
  }
  if (phase_ != Phase::Updating) {
    // ACK/NACK echoes of an attempt this agent already resolved (dup copy,
    // or a reply delayed past the decision) — absorbed, but counted.
    if (type == kMsgAck || type == kMsgNack) {
      server_here(ctx).protocol().note_anomaly(Anomaly::StaleAck);
    }
    return;
  }
  if (type == kMsgAck) {
    const AckPayload ack = AckPayload::decode(payload);
    if (ack.attempt != attempt_seq_) {  // echo of a withdrawn attempt
      server_here(ctx).protocol().note_anomaly(Anomaly::StaleAck);
      return;
    }
    const MarpConfig& config = server_here(ctx).config();
    if (config.membership.enabled() && ack.epoch != epoch_ &&
        config.mutant != ProtocolMutant::MixedEpoch) {
      // A grant stamped under a different view must not count towards this
      // epoch's quorum (the MixedEpoch mutant skips exactly this filter).
      server_here(ctx).protocol().note_anomaly(Anomaly::EpochStaleAck);
      return;
    }
    acks_.insert(ack.server);
    if (ack.applied_high > ack_floor_) ack_floor_ = ack.applied_high;
    if (ack_quorum_reached(ctx)) {
      finish_update(ctx);
    }
    return;
  }
  if (type == kMsgNack) {
    // Another session holds a grant we need: withdraw this attempt and let
    // the holder proceed (defer if it outranks us by id).
    const NackPayload nack = NackPayload::decode(payload);
    if (nack.attempt != attempt_seq_) {
      server_here(ctx).protocol().note_anomaly(Anomaly::StaleAck);
      return;
    }
    demote(ctx, nack.holder, /*broadcast_unlock=*/true);
  }
}

void UpdateAgent::demote(agent::AgentContext& ctx, const agent::AgentId& holder,
                         bool broadcast_unlock) {
  MarpServer& server = server_here(ctx);
  if (auto* t = tracer(ctx)) {
    t->update_round_end(id(), /*outcome=*/1);
    t->retry(id(), ctx.here(), trace::kRetryClaim);
    t->wait_begin(id(), ctx.here());
  }
  if (broadcast_unlock) {
    ctx.broadcast(kMsgUnlock, UnlockPayload{id(), attempt_seq_}.encode());
    server.handle_unlock_local(id(), attempt_seq_);
  }
  acks_.clear();
  phase_ = Phase::Waiting;
  if (holder < id() && !ual_.contains(holder)) {
    // The holder outranks us: wait until its commit is observed (via the
    // lock-change signal merging it into our UAL) before trying again.
    defer_ = true;
    defer_to_ = holder;
    defer_since_us_ = ctx.now().as_micros();
    // The defer timeout is only checked inside evaluate(); make sure an
    // evaluation happens once it expires even if no signal arrives.
    ctx.set_timer(server.config().defer_timeout + sim::SimTime::micros(1),
                  kTokenClaimRetry);
    arm_patrol(ctx);
    return;
  }
  // We outrank the holder: it will defer to us once it sees our grants, so
  // retry shortly (per-agent jitter avoids lock-step collisions).
  const std::uint64_t jitter_us =
      agent::AgentIdHash{}(id()) % 2000;  // 0..2ms
  ctx.set_timer(server.config().claim_retry_delay +
                    sim::SimTime::micros(static_cast<std::int64_t>(jitter_us)),
                kTokenClaimRetry);
  arm_patrol(ctx);
}

void UpdateAgent::finish_update(agent::AgentContext& ctx) {
  MarpServer& server = server_here(ctx);
  // The stamped base came from the tour's freshest_ snapshots, which can
  // predate a concurrent session that committed between our visit and our
  // grant. The ACK floor closes that gap: grants are exclusive from ACK to
  // commit, so the floor covers every predecessor through any shared quorum
  // member — restamp above it or version order breaks behind our back.
  // (Rare under majority quorums — a stale attempt usually dies by NACK
  // from one of the many overlapping servers — but small tree/grid quorums
  // can overlap a concurrent session at a single server whose NACKs were
  // all dropped; chaos sweeps caught exactly that.)
  if (!ops_.empty() && ack_floor_.time_us >= ops_.front().version.time_us) {
    const std::int64_t base = ack_floor_.time_us + 1;
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      ops_[i].version =
          replica::Version{base + static_cast<std::int64_t>(i), origin_};
    }
  }
  // Theorem 2 monitor: holding a majority of a group's grants is exclusive.
  // (The quorum probe fires here, synchronously — a fault injector acting on
  // it cuts links *between* quorum assembly and the COMMIT broadcast.)
  server.protocol().note_update_quorum(id(), groups_, ctx.here(), epoch_);
  if (auto* t = tracer(ctx)) {
    t->update_round_end(id(), /*outcome=*/0);
    t->commit_fanout_begin(id(), ctx.here(), /*commit=*/true);
  }
  const bool reliable = server.config().reliable_commit;
  const CommitPayload commit{id(), ops_, groups_,
                             reliable ? ctx.here() : net::kInvalidNode};
  ctx.broadcast(kMsgCommit, commit.encode());
  server.handle_commit_local(commit);
  server.protocol().note_update_commit(id(), ops_, ctx.here());
  if (!reliable) {
    // Fire-and-forget (the paper's Algorithm 1): a COMMIT copy lost on the
    // wire is only repaired by recovery sync / anti-entropy.
    if (auto* t = tracer(ctx)) t->commit_fanout_end(id());
    phase_ = Phase::Done;
    send_report(ctx, /*success=*/true);
    ctx.dispose();
    return;
  }
  // The decision is final; linger in Committing re-sending COMMIT/REPORT
  // until every reachable server and the origin confirmed, so a dropped
  // COMMIT cannot leave the update half-applied.
  phase_ = Phase::Committing;
  committed_ = true;
  commit_acks_.clear();
  commit_acks_.insert(ctx.here());
  commit_rounds_ = 0;
  report_acked_ = false;
  send_report(ctx, /*success=*/true);
  maybe_finish_commit(ctx);
  if (phase_ == Phase::Committing) {
    ctx.set_timer(server.config().commit_retry_interval, kTokenCommitRetry);
  }
}

void UpdateAgent::abort(agent::AgentContext& ctx) {
  MarpServer& server = server_here(ctx);
  server.protocol().note_update_abort(id(), ctx.here());
  if (auto* t = tracer(ctx)) {
    t->wait_end(id());
    t->update_round_end(id(), /*outcome=*/2);
    t->abort_mark(id(), ctx.here());
    t->commit_fanout_begin(id(), ctx.here(), /*commit=*/false);
  }
  const bool reliable = server.config().reliable_commit;
  const ReleasePayload release{id(), groups_,
                               reliable ? ctx.here() : net::kInvalidNode};
  ctx.broadcast(kMsgRelease, release.encode());
  server.handle_release_local(release);
  if (!reliable) {
    if (auto* t = tracer(ctx)) t->commit_fanout_end(id());
    phase_ = Phase::Done;
    send_report(ctx, /*success=*/false);
    ctx.dispose();
    return;
  }
  // A lost RELEASE is as fatal as a lost COMMIT: the aborter never enters
  // any Updated List, so filtered heads can never skip its dead LL entry,
  // and the stuck grant wedges the server for good. Linger exactly like
  // the commit path — retransmit RELEASE to silent servers and the failure
  // REPORT to the origin until both are covered.
  phase_ = Phase::Committing;
  committed_ = false;
  commit_acks_.clear();
  commit_acks_.insert(ctx.here());
  commit_rounds_ = 0;
  report_acked_ = false;
  send_report(ctx, /*success=*/false);
  maybe_finish_commit(ctx);
  if (phase_ == Phase::Committing) {
    ctx.set_timer(server.config().commit_retry_interval, kTokenCommitRetry);
  }
}

void UpdateAgent::send_report(agent::AgentContext& ctx, bool success) {
  ReportPayload report;
  report.agent = id();
  report.request_ids.reserve(writes_.size());
  for (const PendingWrite& write : writes_) report.request_ids.push_back(write.request_id);
  report.success = success;
  report.dispatched_us = dispatched_us_;
  report.lock_obtained_us = success ? lock_obtained_us_ : ctx.now().as_micros();
  report.committed_us = ctx.now().as_micros();
  report.servers_visited = servers_visited();

  if (origin_ == ctx.here()) {
    server_here(ctx).handle_report_local(report);
    report_acked_ = true;  // delivered in-process; nothing to retransmit
  } else {
    ctx.send_to_node(origin_, kMsgReport, report.encode());
  }
}

void UpdateAgent::maybe_finish_commit(agent::AgentContext& ctx) {
  if (phase_ != Phase::Committing || !report_acked_) return;
  // Full ack coverage, commit and abort alike — and no unavailable-node
  // exemption: a node marked unreachable mid-tour may be back within the
  // retransmit window (the linger is bounded by max_commit_rounds either
  // way, and genuinely dead servers are repaired by recovery sync).
  const std::size_t n = server_here(ctx).cluster_size();
  for (net::NodeId node = 0; node < n; ++node) {
    if (commit_acks_.contains(node)) continue;
    return;  // a server has not confirmed the COMMIT/RELEASE yet
  }
  if (auto* t = tracer(ctx)) t->commit_fanout_end(id());
  phase_ = Phase::Done;
  ctx.dispose();
}

void UpdateAgent::on_signal(agent::AgentContext& ctx, std::uint32_t signal) {
  if (signal != kSignalLockChanged || phase_ != Phase::Waiting) return;
  // Cheap local refresh (the agent is resident; no gossip copying) and
  // re-decide — under contention every waiter is signalled per commit, so
  // this path must stay light.
  MarpServer& server = server_here(ctx);
  const MarpServer::RefreshResult result = server.refresh(id(), groups_);
  for (const auto& [group, snapshot] : result.locking_lists) {
    lt_[group][ctx.here()] = snapshot;
  }
  for (const agent::AgentId& done : result.updated_list) ual_.insert(done);
  evaluate(ctx);
}

void UpdateAgent::serialize(serial::Writer& w) const {
  w.varint(origin_);
  w.seq(writes_, [](serial::Writer& ww, const PendingWrite& write) {
    ww.varint(write.request_id);
    ww.str(write.key);
    ww.str(write.value);
  });
  w.u8(static_cast<std::uint8_t>(phase_));
  w.svarint(dispatched_us_);
  w.svarint(lock_obtained_us_);
  auto write_nodes = [](serial::Writer& ww, const std::vector<net::NodeId>& nodes) {
    ww.varint(nodes.size());
    for (net::NodeId node : nodes) ww.varint(node);
  };
  write_nodes(w, usl_);
  write_nodes(w, visited_);
  write_nodes(w, unavailable_);
  w.varint(groups_.size());
  for (const shard::GroupId g : groups_) w.varint(g);
  serialize_group_lock_table(w, lt_);
  w.varint(ual_.size());
  for (const agent::AgentId& done : ual_) done.serialize(w);
  w.varint(freshest_.size());
  for (const auto& [key, value] : freshest_) {
    w.str(key);
    w.str(value.value);
    value.version.serialize(w);
  }
  w.varint(routing_costs_.size());
  for (std::int64_t cost : routing_costs_) w.svarint(cost);
  w.varint(current_target_);
  w.varint(migration_retries_);
  w.seq(ops_, [](serial::Writer& ww, const WriteOp& op) { op.serialize(ww); });
  w.varint(acks_.size());
  for (net::NodeId node : acks_) w.varint(node);
  w.varint(ack_rounds_);
  w.boolean(committed_);
  w.varint(commit_acks_.size());
  for (net::NodeId node : commit_acks_) w.varint(node);
  w.varint(commit_rounds_);
  w.boolean(report_acked_);
  w.boolean(defer_);
  defer_to_.serialize(w);
  w.svarint(defer_since_us_);
  w.varint(attempt_seq_);
  w.svarint(stall_since_us_);
  w.varint(stall_fingerprint_);
  // Trailing optional (membership only): absent bytes keep the static
  // deployment's migration sizes — and its virtual timing — bit-identical.
  if (epoch_ != 0) w.varint(epoch_);
}

void UpdateAgent::deserialize(serial::Reader& r) {
  origin_ = static_cast<net::NodeId>(r.varint());
  writes_ = r.seq<PendingWrite>([](serial::Reader& rr) {
    PendingWrite write;
    write.request_id = rr.varint();
    write.key = rr.str();
    write.value = rr.str();
    return write;
  });
  phase_ = static_cast<Phase>(r.u8());
  dispatched_us_ = r.svarint();
  lock_obtained_us_ = r.svarint();
  auto read_nodes = [](serial::Reader& rr) {
    const std::uint64_t n = rr.varint();
    std::vector<net::NodeId> nodes;
    nodes.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      nodes.push_back(static_cast<net::NodeId>(rr.varint()));
    }
    return nodes;
  };
  usl_ = read_nodes(r);
  visited_ = read_nodes(r);
  unavailable_ = read_nodes(r);
  groups_.clear();
  const std::uint64_t group_count = r.varint();
  for (std::uint64_t i = 0; i < group_count; ++i) {
    groups_.push_back(static_cast<shard::GroupId>(r.varint()));
  }
  lt_ = deserialize_group_lock_table(r);
  ual_.clear();
  const std::uint64_t ual_size = r.varint();
  for (std::uint64_t i = 0; i < ual_size; ++i) ual_.insert(agent::AgentId::deserialize(r));
  freshest_.clear();
  const std::uint64_t fresh_size = r.varint();
  for (std::uint64_t i = 0; i < fresh_size; ++i) {
    std::string key = r.str();
    replica::VersionedValue value;
    value.value = r.str();
    value.version = replica::Version::deserialize(r);
    freshest_.emplace(std::move(key), std::move(value));
  }
  routing_costs_.clear();
  const std::uint64_t cost_size = r.varint();
  for (std::uint64_t i = 0; i < cost_size; ++i) routing_costs_.push_back(r.svarint());
  current_target_ = static_cast<net::NodeId>(r.varint());
  migration_retries_ = static_cast<std::uint32_t>(r.varint());
  ops_ = r.seq<WriteOp>([](serial::Reader& rr) { return WriteOp::deserialize(rr); });
  acks_.clear();
  const std::uint64_t ack_size = r.varint();
  for (std::uint64_t i = 0; i < ack_size; ++i) {
    acks_.insert(static_cast<net::NodeId>(r.varint()));
  }
  ack_rounds_ = static_cast<std::uint32_t>(r.varint());
  committed_ = r.boolean();
  commit_acks_.clear();
  const std::uint64_t commit_ack_size = r.varint();
  for (std::uint64_t i = 0; i < commit_ack_size; ++i) {
    commit_acks_.insert(static_cast<net::NodeId>(r.varint()));
  }
  commit_rounds_ = static_cast<std::uint32_t>(r.varint());
  report_acked_ = r.boolean();
  defer_ = r.boolean();
  defer_to_ = agent::AgentId::deserialize(r);
  defer_since_us_ = r.svarint();
  attempt_seq_ = static_cast<std::uint32_t>(r.varint());
  stall_since_us_ = r.svarint();
  stall_fingerprint_ = r.varint();
  epoch_ = r.at_end() ? 0 : r.varint();
}

}  // namespace marp::core

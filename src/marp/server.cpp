#include "marp/server.hpp"

#include <algorithm>
#include <limits>
#include <set>

#include "marp/protocol.hpp"
#include "marp/read_agent.hpp"
#include "marp/update_agent.hpp"
#include "trace/tracer.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace marp::core {

namespace {

/// Coordination payloads use an empty group set as the degenerate
/// single-group space (pre-sharding senders and tests).
std::vector<shard::GroupId> effective_groups(const std::vector<shard::GroupId>& groups) {
  if (groups.empty()) return {shard::GroupId{0}};
  return groups;
}

constexpr std::uint32_t kAnyAttempt = std::numeric_limits<std::uint32_t>::max();

}  // namespace

MarpServer::MarpServer(net::Network& network, agent::AgentPlatform& platform,
                       net::NodeId node, const MarpConfig& config,
                       MarpProtocol& protocol)
    : replica::ServerBase(network, node),
      platform_(platform),
      config_(config),
      protocol_(protocol),
      router_(config.num_lock_groups),
      lock_space_(config.num_lock_groups),
      anti_entropy_rng_(
          network.simulator().rng_factory().stream("anti-entropy", node)) {
  platform_.host(node).set_service(kMarpServiceName, this);
  if (config_.anti_entropy_interval.as_micros() > 0) {
    // Per-node phase offset so the fleet does not sync in lock-step.
    const sim::SimTime jitter = sim::SimTime::micros(static_cast<std::int64_t>(
        anti_entropy_rng_.bounded(static_cast<std::uint64_t>(
            std::max<std::int64_t>(1, config_.anti_entropy_interval.as_micros())))));
    simulator().schedule(config_.anti_entropy_interval + jitter,
                         [this] { anti_entropy_tick(); },
                         static_cast<sim::ActorId>(node_));
  }
  if (config_.agent_lease_timeout.as_micros() > 0) {
    // Sweep at half the lease so an expired agent lingers at most 1.5 leases.
    simulator().schedule(
        sim::SimTime::micros(
            std::max<std::int64_t>(1, config_.agent_lease_timeout.as_micros() / 2)),
        [this] { lease_tick(); }, static_cast<sim::ActorId>(node_));
  }
}

std::size_t MarpServer::sync_pull(std::size_t max_peers) {
  if (!up_ || network_.size() <= 1 || max_peers == 0) return 0;
  std::size_t sent = 0;
  std::set<net::NodeId> chosen;
  const std::size_t want = std::min(max_peers, network_.size() - 1);
  for (int tries = 0; tries < 32 && sent < want; ++tries) {
    const net::NodeId peer =
        static_cast<net::NodeId>(anti_entropy_rng_.bounded(network_.size()));
    if (peer == node_ || !network_.node_up(peer) || !chosen.insert(peer).second) {
      continue;
    }
    if (auto* tracer = protocol_.tracer()) tracer->anti_entropy(node_);
    network_.send(net::Message{node_, peer, kMsgSyncReq, {}});
    ++sent;
  }
  return sent;
}

void MarpServer::touch_agent(const agent::AgentId& agent) {
  if (config_.agent_lease_timeout.as_micros() > 0) agent_activity_[agent] = now();
}

void MarpServer::lease_tick() {
  if (up_) {
    // Everything that can wedge a future claimant: queued LL entries, the
    // exclusive grant holders, and staged (granted but uncommitted) ops.
    std::set<agent::AgentId> present;
    for (const shard::GroupId g : lock_space_.all_groups()) {
      const auto& grp = lock_space_.group(g);
      for (const agent::AgentId& id : grp.ll.snapshot()) present.insert(id);
      if (grp.holder) present.insert(*grp.holder);
    }
    for (const auto& [id, ops] : staged_) present.insert(id);

    for (auto it = agent_activity_.begin(); it != agent_activity_.end();) {
      it = present.contains(it->first) ? std::next(it) : agent_activity_.erase(it);
    }

    std::vector<agent::AgentId> expired;
    for (const agent::AgentId& id : present) {
      if (platform_.host(node_).has_agent(id)) {
        // Hosted here: liveness is directly observable, never lease it out.
        agent_activity_[id] = now();
        continue;
      }
      const auto [it, fresh] = agent_activity_.try_emplace(id, now());
      if (!fresh && now().as_micros() - it->second.as_micros() >=
                        config_.agent_lease_timeout.as_micros()) {
        expired.push_back(id);
      }
    }
    if (!expired.empty()) {
      MARP_LOG_WARN("marp") << "server " << node_ << ": lease expired for "
                            << expired.size() << " idle remote agent(s)";
      purge_agents(expired);
      protocol_.note_agents_lease_purged(expired.size());
    }
  }
  simulator().schedule(
      sim::SimTime::micros(
          std::max<std::int64_t>(1, config_.agent_lease_timeout.as_micros() / 2)),
      [this] { lease_tick(); }, static_cast<sim::ActorId>(node_));
}

void MarpServer::anti_entropy_tick() {
  if (up_ && network_.size() > 1) {
    // One random live peer per tick; the reply merges via the Thomas rule,
    // so repeated/duplicated dumps are harmless.
    net::NodeId peer = node_;
    for (int tries = 0; tries < 8 && (peer == node_ || !network_.node_up(peer));
         ++tries) {
      peer = static_cast<net::NodeId>(anti_entropy_rng_.bounded(network_.size()));
    }
    if (peer != node_ && network_.node_up(peer)) {
      if (auto* tracer = protocol_.tracer()) tracer->anti_entropy(node_);
      network_.send(net::Message{node_, peer, kMsgSyncReq, {}});
    }
  }
  simulator().schedule(config_.anti_entropy_interval,
                       [this] { anti_entropy_tick(); },
                       static_cast<sim::ActorId>(node_));
}

void MarpServer::submit(const replica::Request& request) {
  if (!up_) return;  // a dead server accepts nothing

  if (request.kind == replica::RequestKind::Read) {
    if (config_.read_mode == ReadMode::QuorumAgent) {
      // Extension: a read agent tours a read quorum (see ReadAgent).
      outstanding_[request.id] = request;
      platform_.host(node_).create(
          std::make_unique<ReadAgent>(node_, request.id, request.key));
      return;
    }
    // Paper §3.1: "a read operation may be executed on an arbitrary copy"
    // — serve the local replica after a small processing delay.
    simulator().schedule(config_.local_read_time, [this, request] {
      if (!up_) return;
      replica::Outcome outcome;
      outcome.request_id = request.id;
      outcome.kind = replica::RequestKind::Read;
      outcome.origin = node_;
      outcome.submitted = request.submitted;
      outcome.dispatched = request.submitted;
      outcome.lock_obtained = request.submitted;
      outcome.completed = now();
      outcome.success = true;
      if (auto value = store_.read(request.key)) {
        outcome.value = value->value;
        outcome.read_version = value->version;
      }
      protocol_.note_read();
      report(outcome);
    }, static_cast<sim::ActorId>(node_));
    return;
  }

  outstanding_[request.id] = request;
  pending_.push_back(request);
  if (auto* tracer = protocol_.tracer(); tracer && pending_.size() == 1) {
    tracer->batch_open(node_);  // submit → dispatch queueing span
  }
  if (pending_.size() >= config_.batch_size) {
    dispatch_agent();
  } else {
    arm_batch_timer();
  }
}

void MarpServer::arm_batch_timer() {
  if (batch_timer_) return;
  batch_timer_ = simulator().schedule(config_.batch_period, [this] {
    batch_timer_.reset();
    if (up_ && !pending_.empty()) dispatch_agent();
  }, static_cast<sim::ActorId>(node_));
}

void MarpServer::dispatch_agent() {
  if (batch_timer_) {
    simulator().cancel(*batch_timer_);
    batch_timer_.reset();
  }
  std::vector<UpdateAgent::PendingWrite> writes;
  writes.reserve(pending_.size());
  for (const auto& request : pending_) {
    writes.push_back({request.id, request.key, request.value});
  }
  pending_.clear();
  if (auto* tracer = protocol_.tracer()) {
    tracer->batch_dispatch(node_, writes.size());
  }
  platform_.host(node_).create(std::make_unique<UpdateAgent>(node_, std::move(writes)));
}

VisitResult MarpServer::visit(const agent::AgentId& visitor,
                              const std::vector<std::string>& keys,
                              const GroupLockTable& carried_gossip) {
  MARP_REQUIRE_MSG(up_, "visit() on a failed server");
  std::vector<shard::GroupId> groups = router_.groups_of(keys);
  if (groups.empty()) groups.push_back(0);

  VisitResult result;
  // Algorithm 2: "create an entry for the mobile agent and append it to LL"
  // (idempotent on re-visits — the agent keeps its queue position), once per
  // lock group the write-set routes to.
  for (const shard::GroupId g : groups) {
    auto& grp = lock_space_.group(g);
    if (grp.ll.append(visitor, now())) {
      if (auto* tracer = protocol_.tracer()) tracer->ll_enqueue(visitor, node_, g);
    }
    result.locking_lists.emplace(
        g, LockSnapshot{grp.ll.snapshot(), now().as_micros()});
  }
  touch_agent(visitor);
  result.updated_list = ul_.snapshot();
  result.routing_costs = routing_costs();
  for (const std::string& key : keys) {
    if (auto value = store_.read(key)) result.data.emplace(key, *value);
  }

  if (config_.gossip) {
    // "Mobile agents can exchange their locking information by leaving the
    // information at the servers they visited" (§3.3). Only the visitor's
    // own groups are exchanged — gossip stays proportional to the write-set.
    merge_group_lock_tables(gossip_cache_, carried_gossip);
    for (const shard::GroupId g : groups) {
      if (auto it = gossip_cache_.find(g); it != gossip_cache_.end()) {
        result.gossip.emplace(g, it->second);
      }
    }
    // The agent also leaves this server's own fresh snapshots for others.
    for (const shard::GroupId g : groups) {
      gossip_cache_[g][node_] = result.locking_lists.at(g);
    }
  }
  return result;
}

MarpServer::RefreshResult MarpServer::refresh(
    const agent::AgentId& visitor, const std::vector<shard::GroupId>& groups) {
  MARP_REQUIRE_MSG(up_, "refresh() on a failed server");
  RefreshResult result;
  for (const shard::GroupId g : effective_groups(groups)) {
    auto& grp = lock_space_.group(g);
    if (grp.ll.append(visitor, now())) {  // no-op when already queued
      if (auto* tracer = protocol_.tracer()) tracer->ll_enqueue(visitor, node_, g);
    }
    result.locking_lists.emplace(
        g, LockSnapshot{grp.ll.snapshot(), now().as_micros()});
  }
  touch_agent(visitor);
  result.updated_list = ul_.snapshot();
  return result;
}

MarpServer::GrantResult MarpServer::handle_update_local(
    const UpdatePayload& payload, shard::GroupId* conflict_group) {
  // A finished agent's delayed UPDATE must not take grants nobody will
  // ever release, and neither may an attempt the agent already withdrew.
  if (ul_.contains(payload.agent)) return GrantResult::Stale;
  if (auto it = unlocked_attempts_.find(payload.agent);
      it != unlocked_attempts_.end() && payload.attempt <= it->second) {
    return GrantResult::Stale;
  }
  const std::vector<shard::GroupId> groups = effective_groups(payload.groups);
  // All-or-nothing, checked in ascending group order: either every requested
  // grant is free (or already this agent's), or nothing is taken and the
  // first conflict is reported. Never holding a partial set means a losing
  // claimant cannot wedge other groups while it waits (no hold-and-wait).
  bool regrant = true;
  for (const shard::GroupId g : groups) {
    const auto& grp = lock_space_.group(g);
    if (grp.holder && *grp.holder != payload.agent) {
      if (conflict_group != nullptr) *conflict_group = g;
      return GrantResult::Held;
    }
    if (grp.holder == payload.agent && payload.attempt < grp.holder_attempt) {
      return GrantResult::Stale;
    }
    regrant = regrant && grp.holder == payload.agent &&
              grp.holder_attempt == payload.attempt;
  }
  // Re-delivered copy of an UPDATE whose grants this server already gave:
  // idempotent (the re-ACK below is exactly what a sender missing our first
  // ACK needs), but worth counting.
  if (regrant && staged_.contains(payload.agent)) {
    protocol_.note_anomaly(Anomaly::DuplicateUpdate);
  }
  for (const shard::GroupId g : groups) {
    auto& grp = lock_space_.group(g);
    grp.holder = payload.agent;
    grp.holder_attempt = payload.attempt;
  }
  staged_[payload.agent] = payload.ops;
  touch_agent(payload.agent);
  return GrantResult::Granted;
}

void MarpServer::handle_commit_local(const CommitPayload& payload) {
  // Re-applying is always safe (Thomas write rule), so ops go first — a
  // replica that missed the original COMMIT converges off any copy.
  for (const WriteOp& op : payload.ops) {
    store_.apply(op.key, op.value, op.version);
    if (op.version > applied_high_) applied_high_ = op.version;
  }
  if (ul_.contains(payload.agent)) {
    // Duplicated or reordered redelivery: the locks were already swept and
    // waiters signalled; doing it again would only churn. Count and stop.
    protocol_.note_anomaly(Anomaly::DuplicateCommit);
    return;
  }
  staged_.erase(payload.agent);
  agent_activity_.erase(payload.agent);
  lock_space_.release_grants(payload.agent, kAnyAttempt);
  unlocked_attempts_.erase(payload.agent);
  lock_space_.remove_from_lists(payload.agent, payload.groups);
  if (auto* tracer = protocol_.tracer()) tracer->ll_remove_all(payload.agent, node_);
  ul_.add(payload.agent);
  // Wake local waiters even if the winner never queued here: the UL entry
  // alone changes filtered heads everywhere.
  signal_lock_changed();
}

void MarpServer::handle_release_local(const ReleasePayload& payload) {
  staged_.erase(payload.agent);
  agent_activity_.erase(payload.agent);
  lock_space_.release_grants(payload.agent, kAnyAttempt);
  unlocked_attempts_.erase(payload.agent);
  if (lock_space_.remove_from_lists(payload.agent, payload.groups)) {
    if (auto* tracer = protocol_.tracer()) tracer->ll_remove_all(payload.agent, node_);
    signal_lock_changed();
  }
}

void MarpServer::handle_unlock_local(const agent::AgentId& agent,
                                     std::uint32_t attempt) {
  auto& high_water = unlocked_attempts_[agent];
  high_water = std::max(high_water, attempt);
  touch_agent(agent);
  // Grants are taken atomically at one attempt, so if any group released,
  // the staged ops of that attempt are dead too.
  if (lock_space_.release_grants(agent, attempt)) staged_.erase(agent);
}

void MarpServer::handle_report_local(const ReportPayload& payload,
                                     net::NodeId from) {
  // Ack first: whether this copy is fresh or a retransmit, the reporting
  // agent only needs to know the origin has the outcome.
  if (from != net::kInvalidNode) {
    platform_.send_to_agent(node_, from, payload.agent, kMsgReportAck,
                            CommitAckPayload{node_}.encode());
  }
  if (reported_.contains(payload.agent)) {
    // Retransmitted REPORT (the first ack was lost): already accounted.
    protocol_.note_anomaly(Anomaly::DuplicateReport);
    return;
  }
  reported_.add(payload.agent);
  for (std::uint64_t request_id : payload.request_ids) {
    auto it = outstanding_.find(request_id);
    if (it == outstanding_.end()) {
      // The request this outcome answers is gone — this origin crashed after
      // dispatching the agent and lost its outstanding table. Not silent any
      // more: the counter is the evidence the crash ate a client answer.
      protocol_.note_anomaly(Anomaly::OrphanedReport);
      continue;
    }
    const replica::Request& request = it->second;
    replica::Outcome outcome;
    outcome.request_id = request.id;
    outcome.kind = replica::RequestKind::Write;
    outcome.origin = node_;
    outcome.submitted = request.submitted;
    outcome.success = payload.success;
    outcome.dispatched = sim::SimTime::micros(payload.dispatched_us);
    outcome.lock_obtained = sim::SimTime::micros(payload.lock_obtained_us);
    outcome.completed = now();
    outcome.servers_visited = payload.servers_visited;
    report(outcome);
    outstanding_.erase(it);
  }
}

void MarpServer::handle_read_report_local(const ReadReportPayload& payload) {
  auto it = outstanding_.find(payload.request_id);
  if (it == outstanding_.end()) return;
  const replica::Request& request = it->second;
  replica::Outcome outcome;
  outcome.request_id = request.id;
  outcome.kind = replica::RequestKind::Read;
  outcome.origin = node_;
  outcome.submitted = request.submitted;
  outcome.dispatched = request.submitted;
  outcome.lock_obtained = request.submitted;
  outcome.completed = now();
  outcome.success = payload.success;
  outcome.value = payload.value;
  outcome.read_version = payload.version;
  outcome.servers_visited = payload.servers_visited;
  protocol_.note_read();
  report(outcome);
  outstanding_.erase(it);
}

void MarpServer::handle_message(const net::Message& message) {
  if (!up_) return;
  switch (message.type) {
    case kMsgUpdate: {
      const UpdatePayload payload = UpdatePayload::decode(message.payload);
      shard::GroupId conflict = 0;
      switch (handle_update_local(payload, &conflict)) {
        case GrantResult::Granted:
          platform_.send_to_agent(
              node_, payload.reply_to, payload.agent, kMsgAck,
              AckPayload{node_, payload.attempt, applied_high_}.encode());
          break;
        case GrantResult::Held:
          platform_.send_to_agent(
              node_, payload.reply_to, payload.agent, kMsgNack,
              NackPayload{node_, payload.attempt,
                          *lock_space_.group(conflict).holder, conflict}
                  .encode());
          break;
        case GrantResult::Stale:
          // The sender has moved on; any reply would be ignored.
          protocol_.note_anomaly(Anomaly::StaleUpdate);
          break;
      }
      break;
    }
    case kMsgCommit: {
      const CommitPayload payload = CommitPayload::decode(message.payload);
      handle_commit_local(payload);
      // Hardened senders ask for an ack so they can stop retransmitting;
      // legacy senders leave reply_to invalid and get the seed behaviour.
      if (payload.reply_to != net::kInvalidNode) {
        platform_.send_to_agent(node_, payload.reply_to, payload.agent,
                                kMsgCommitAck, CommitAckPayload{node_}.encode());
      }
      break;
    }
    case kMsgRelease: {
      const ReleasePayload payload = ReleasePayload::decode(message.payload);
      handle_release_local(payload);
      // Symmetric with COMMIT: a hardened aborter asks for an ack so it can
      // stop retransmitting. A lost RELEASE would otherwise leave a dead LL
      // head (the aborter never reaches any UL, so filtered heads can never
      // skip it) and a stuck grant — wedging this server permanently.
      if (payload.reply_to != net::kInvalidNode) {
        platform_.send_to_agent(node_, payload.reply_to, payload.agent,
                                kMsgCommitAck, CommitAckPayload{node_}.encode());
      }
      break;
    }
    case kMsgUnlock: {
      const UnlockPayload payload = UnlockPayload::decode(message.payload);
      handle_unlock_local(payload.agent, payload.attempt);
      break;
    }
    case kMsgReport:
      handle_report_local(ReportPayload::decode(message.payload), message.src);
      break;
    case kMsgReadReport:
      handle_read_report_local(ReadReportPayload::decode(message.payload));
      break;
    case kMsgSyncReq: {
      SyncPayload dump;
      for (const auto& key : store_.keys()) {
        const auto value = store_.read(key);
        dump.items.push_back({key, value->value, value->version});
      }
      network_.send(net::Message{node_, message.src, kMsgSyncRep, dump.encode()});
      break;
    }
    case kMsgSyncRep: {
      const SyncPayload dump = SyncPayload::decode(message.payload);
      std::size_t applied = 0;
      for (const auto& item : dump.items) {
        if (store_.apply(item.key, item.value, item.version)) {
          ++applied;
          if (item.version > applied_high_) applied_high_ = item.version;
        }
      }
      if (sync_listener_) sync_listener_(applied);
      break;
    }
    default:
      MARP_LOG_WARN("marp") << "server " << node_ << ": unexpected message type "
                            << message.type;
  }
}

void MarpServer::purge_agents(const std::vector<agent::AgentId>& dead) {
  bool changed = false;
  for (const agent::AgentId& id : dead) {
    staged_.erase(id);
    unlocked_attempts_.erase(id);
    agent_activity_.erase(id);
    changed = lock_space_.purge(id) || changed;
    if (auto* tracer = protocol_.tracer()) tracer->ll_remove_all(id, node_);
  }
  if (changed) signal_lock_changed();
}

void MarpServer::reset_coordination() {
  if (auto* tracer = protocol_.tracer()) tracer->node_reset(node_);
  lock_space_.clear();
  ul_ = replica::UpdatedList{};
  gossip_cache_.clear();
  staged_.clear();
  unlocked_attempts_.clear();
  signal_lock_changed();
}

void MarpServer::signal_lock_changed() {
  platform_.host(node_).raise_signal(kSignalLockChanged);
}

void MarpServer::on_fail() {
  // The process halts: volatile coordination state is gone; buffered client
  // requests are lost. The versioned store survives on stable storage.
  if (auto* tracer = protocol_.tracer()) tracer->node_reset(node_);
  lock_space_.clear();
  ul_ = replica::UpdatedList{};
  gossip_cache_.clear();
  staged_.clear();
  unlocked_attempts_.clear();
  agent_activity_.clear();
  reported_ = replica::UpdatedList{};
  pending_.clear();
  outstanding_.clear();
  if (batch_timer_) {
    simulator().cancel(*batch_timer_);
    batch_timer_.reset();
  }
}

void MarpServer::on_recover() {
  // Locking state restarts empty; the store catches up through future
  // COMMITs regardless (versions make re-application safe). With recovery
  // sync enabled we additionally pull the current store from a live peer so
  // keys that are never written again still converge.
  if (!config_.recovery_sync) return;
  for (net::NodeId peer = 0; peer < network_.size(); ++peer) {
    if (peer != node_ && network_.node_up(peer)) {
      network_.send(net::Message{node_, peer, kMsgSyncReq, {}});
      break;
    }
  }
}

}  // namespace marp::core

#include "marp/server.hpp"

#include <algorithm>
#include <limits>
#include <set>

#include "marp/protocol.hpp"
#include "marp/read_agent.hpp"
#include "marp/update_agent.hpp"
#include "membership/placement.hpp"
#include "trace/tracer.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace marp::core {

namespace {

/// Coordination payloads use an empty group set as the degenerate
/// single-group space (pre-sharding senders and tests).
std::vector<shard::GroupId> effective_groups(const std::vector<shard::GroupId>& groups) {
  if (groups.empty()) return {shard::GroupId{0}};
  return groups;
}

constexpr std::uint32_t kAnyAttempt = std::numeric_limits<std::uint32_t>::max();

}  // namespace

MarpServer::MarpServer(net::Network& network, agent::AgentPlatform& platform,
                       net::NodeId node, const MarpConfig& config,
                       MarpProtocol& protocol)
    : replica::ServerBase(network, node),
      platform_(platform),
      config_(config),
      protocol_(protocol),
      router_(config.num_lock_groups),
      lock_space_(config.num_lock_groups),
      anti_entropy_rng_(
          network.simulator().rng_factory().stream("anti-entropy", node)) {
  platform_.host(node).set_service(kMarpServiceName, this);
  if (config_.anti_entropy_interval.as_micros() > 0) {
    // Per-node phase offset so the fleet does not sync in lock-step.
    const sim::SimTime jitter = sim::SimTime::micros(static_cast<std::int64_t>(
        anti_entropy_rng_.bounded(static_cast<std::uint64_t>(
            std::max<std::int64_t>(1, config_.anti_entropy_interval.as_micros())))));
    simulator().schedule(config_.anti_entropy_interval + jitter,
                         [this] { anti_entropy_tick(); },
                         static_cast<sim::ActorId>(node_));
  }
  if (config_.agent_lease_timeout.as_micros() > 0) {
    // Sweep at half the lease so an expired agent lingers at most 1.5 leases.
    simulator().schedule(
        sim::SimTime::micros(
            std::max<std::int64_t>(1, config_.agent_lease_timeout.as_micros() / 2)),
        [this] { lease_tick(); }, static_cast<sim::ActorId>(node_));
  }
}

std::size_t MarpServer::sync_pull(std::size_t max_peers) {
  if (!up_ || network_.size() <= 1 || max_peers == 0) return 0;
  std::size_t sent = 0;
  std::set<net::NodeId> chosen;
  const std::size_t want = std::min(max_peers, network_.size() - 1);
  for (int tries = 0; tries < 32 && sent < want; ++tries) {
    const net::NodeId peer =
        static_cast<net::NodeId>(anti_entropy_rng_.bounded(network_.size()));
    if (!sync_peer_ok(peer) || !chosen.insert(peer).second) {
      continue;
    }
    if (auto* tracer = protocol_.tracer()) tracer->anti_entropy(node_);
    network_.send(net::Message{node_, peer, kMsgSyncReq, {}});
    ++sent;
  }
  return sent;
}

bool MarpServer::sync_peer_ok(net::NodeId peer) const {
  if (peer == node_ || !network_.node_up(peer)) return false;
  // Under dynamic membership only installed members hold data worth pulling
  // (a spare's store is empty, a retired node's is frozen).
  if (config_.membership.enabled()) return view_.is_member(peer);
  return true;
}

void MarpServer::touch_agent(const agent::AgentId& agent) {
  if (config_.agent_lease_timeout.as_micros() > 0) agent_activity_[agent] = now();
}

void MarpServer::lease_tick() {
  if (up_) {
    // Everything that can wedge a future claimant: queued LL entries, the
    // exclusive grant holders, and staged (granted but uncommitted) ops.
    std::set<agent::AgentId> present;
    for (const shard::GroupId g : lock_space_.all_groups()) {
      const auto& grp = lock_space_.group(g);
      for (const agent::AgentId& id : grp.ll.snapshot()) present.insert(id);
      if (grp.holder) present.insert(*grp.holder);
    }
    for (const auto& [id, ops] : staged_) present.insert(id);

    for (auto it = agent_activity_.begin(); it != agent_activity_.end();) {
      it = present.contains(it->first) ? std::next(it) : agent_activity_.erase(it);
    }

    std::vector<agent::AgentId> expired;
    for (const agent::AgentId& id : present) {
      if (platform_.host(node_).has_agent(id)) {
        // Hosted here: liveness is directly observable, never lease it out.
        agent_activity_[id] = now();
        continue;
      }
      const auto [it, fresh] = agent_activity_.try_emplace(id, now());
      if (!fresh && now().as_micros() - it->second.as_micros() >=
                        config_.agent_lease_timeout.as_micros()) {
        expired.push_back(id);
      }
    }
    if (!expired.empty()) {
      MARP_LOG_WARN("marp") << "server " << node_ << ": lease expired for "
                            << expired.size() << " idle remote agent(s)";
      purge_agents(expired);
      protocol_.note_agents_lease_purged(expired.size());
    }
  }
  simulator().schedule(
      sim::SimTime::micros(
          std::max<std::int64_t>(1, config_.agent_lease_timeout.as_micros() / 2)),
      [this] { lease_tick(); }, static_cast<sim::ActorId>(node_));
}

void MarpServer::anti_entropy_tick() {
  if (up_ && network_.size() > 1) {
    // One random live peer per tick; the reply merges via the Thomas rule,
    // so repeated/duplicated dumps are harmless.
    net::NodeId peer = node_;
    for (int tries = 0; tries < 8 && !sync_peer_ok(peer); ++tries) {
      peer = static_cast<net::NodeId>(anti_entropy_rng_.bounded(network_.size()));
    }
    if (sync_peer_ok(peer)) {
      if (auto* tracer = protocol_.tracer()) tracer->anti_entropy(node_);
      network_.send(net::Message{node_, peer, kMsgSyncReq, {}});
    }
  }
  simulator().schedule(config_.anti_entropy_interval,
                       [this] { anti_entropy_tick(); },
                       static_cast<sim::ActorId>(node_));
}

void MarpServer::submit(const replica::Request& request) {
  if (!up_) return;  // a dead server accepts nothing

  if (request.kind == replica::RequestKind::Read) {
    if (config_.read_mode == ReadMode::QuorumAgent) {
      // Extension: a read agent tours a read quorum (see ReadAgent).
      outstanding_[request.id] = request;
      platform_.host(node_).create(
          std::make_unique<ReadAgent>(node_, request.id, request.key));
      return;
    }
    // Paper §3.1: "a read operation may be executed on an arbitrary copy"
    // — serve the local replica after a small processing delay.
    simulator().schedule(config_.local_read_time, [this, request] {
      if (!up_) return;
      replica::Outcome outcome;
      outcome.request_id = request.id;
      outcome.kind = replica::RequestKind::Read;
      outcome.origin = node_;
      outcome.submitted = request.submitted;
      outcome.dispatched = request.submitted;
      outcome.lock_obtained = request.submitted;
      outcome.completed = now();
      outcome.success = true;
      if (auto value = store_.read(request.key)) {
        outcome.value = value->value;
        outcome.read_version = value->version;
      }
      protocol_.note_read();
      report(outcome);
    }, static_cast<sim::ActorId>(node_));
    return;
  }

  outstanding_[request.id] = request;
  pending_.push_back(request);
  if (auto* tracer = protocol_.tracer(); tracer && pending_.size() == 1) {
    tracer->batch_open(node_);  // submit → dispatch queueing span
  }
  if (pending_.size() >= config_.batch_size) {
    dispatch_agent();
  } else {
    arm_batch_timer();
  }
}

void MarpServer::arm_batch_timer() {
  if (batch_timer_) return;
  batch_timer_ = simulator().schedule(config_.batch_period, [this] {
    batch_timer_.reset();
    if (up_ && !pending_.empty()) dispatch_agent();
  }, static_cast<sim::ActorId>(node_));
}

void MarpServer::dispatch_agent() {
  if (batch_timer_) {
    simulator().cancel(*batch_timer_);
    batch_timer_.reset();
  }
  std::vector<UpdateAgent::PendingWrite> writes;
  writes.reserve(pending_.size());
  for (const auto& request : pending_) {
    writes.push_back({request.id, request.key, request.value});
  }
  pending_.clear();
  if (auto* tracer = protocol_.tracer()) {
    tracer->batch_dispatch(node_, writes.size());
  }
  platform_.host(node_).create(std::make_unique<UpdateAgent>(node_, std::move(writes)));
}

VisitResult MarpServer::visit(const agent::AgentId& visitor,
                              const std::vector<std::string>& keys,
                              const GroupLockTable& carried_gossip) {
  MARP_REQUIRE_MSG(up_, "visit() on a failed server");
  std::vector<shard::GroupId> groups = router_.groups_of(keys);
  if (groups.empty()) groups.push_back(0);

  VisitResult result;
  if (config_.membership.enabled()) {
    // Partial replication: this server only runs the Locking-List machinery
    // of the groups it hosts. An agent that lands here with other groups is
    // stale (its view predates a change) — the epoch below tells it so.
    result.epoch = view_.epoch;
    std::erase_if(groups, [this](shard::GroupId g) {
      return !view_.hosts(node_, g);
    });
  }
  // Algorithm 2: "create an entry for the mobile agent and append it to LL"
  // (idempotent on re-visits — the agent keeps its queue position), once per
  // lock group the write-set routes to.
  for (const shard::GroupId g : groups) {
    auto& grp = lock_space_.group(g);
    if (grp.ll.append(visitor, now())) {
      if (auto* tracer = protocol_.tracer()) tracer->ll_enqueue(visitor, node_, g);
    }
    result.locking_lists.emplace(
        g, LockSnapshot{grp.ll.snapshot(), now().as_micros()});
  }
  touch_agent(visitor);
  result.updated_list = ul_.snapshot();
  result.routing_costs = routing_costs();
  for (const std::string& key : keys) {
    if (auto value = store_.read(key)) result.data.emplace(key, *value);
  }

  if (config_.gossip) {
    // "Mobile agents can exchange their locking information by leaving the
    // information at the servers they visited" (§3.3). Only the visitor's
    // own groups are exchanged — gossip stays proportional to the write-set.
    merge_group_lock_tables(gossip_cache_, carried_gossip);
    for (const shard::GroupId g : groups) {
      if (auto it = gossip_cache_.find(g); it != gossip_cache_.end()) {
        result.gossip.emplace(g, it->second);
      }
    }
    // The agent also leaves this server's own fresh snapshots for others.
    for (const shard::GroupId g : groups) {
      gossip_cache_[g][node_] = result.locking_lists.at(g);
    }
  }
  return result;
}

MarpServer::RefreshResult MarpServer::refresh(
    const agent::AgentId& visitor, const std::vector<shard::GroupId>& groups) {
  MARP_REQUIRE_MSG(up_, "refresh() on a failed server");
  RefreshResult result;
  for (const shard::GroupId g : effective_groups(groups)) {
    auto& grp = lock_space_.group(g);
    if (grp.ll.append(visitor, now())) {  // no-op when already queued
      if (auto* tracer = protocol_.tracer()) tracer->ll_enqueue(visitor, node_, g);
    }
    result.locking_lists.emplace(
        g, LockSnapshot{grp.ll.snapshot(), now().as_micros()});
  }
  touch_agent(visitor);
  result.updated_list = ul_.snapshot();
  return result;
}

MarpServer::GrantResult MarpServer::handle_update_local(
    const UpdatePayload& payload, shard::GroupId* conflict_group) {
  // Epoch fence (phase 1 of a view change is the safety fence): grants go
  // only to sessions of the installed epoch, and not while a newer view is
  // promised or this member is still catching up. The MixedEpoch mutant
  // skips the fence so the model checker can watch mixed-epoch "quorums"
  // form — the (group, epoch)-scoped monitor must flag them.
  if (config_.membership.enabled() &&
      config_.mutant != ProtocolMutant::MixedEpoch) {
    if (retired_ || !view_.is_member(node_)) return GrantResult::EpochStale;
    if (payload.epoch != view_.epoch) return GrantResult::EpochStale;
    if (pending_view_) return GrantResult::EpochStale;
    if (catching_up_) return GrantResult::CatchingUp;
  }
  // A finished agent's delayed UPDATE must not take grants nobody will
  // ever release, and neither may an attempt the agent already withdrew.
  if (ul_.contains(payload.agent)) return GrantResult::Stale;
  if (auto it = unlocked_attempts_.find(payload.agent);
      it != unlocked_attempts_.end() && payload.attempt <= it->second) {
    return GrantResult::Stale;
  }
  const std::vector<shard::GroupId> groups = effective_groups(payload.groups);
  // All-or-nothing, checked in ascending group order: either every requested
  // grant is free (or already this agent's), or nothing is taken and the
  // first conflict is reported. Never holding a partial set means a losing
  // claimant cannot wedge other groups while it waits (no hold-and-wait).
  bool regrant = true;
  for (const shard::GroupId g : groups) {
    const auto& grp = lock_space_.group(g);
    if (grp.holder && *grp.holder != payload.agent) {
      if (conflict_group != nullptr) *conflict_group = g;
      return GrantResult::Held;
    }
    if (grp.holder == payload.agent && payload.attempt < grp.holder_attempt) {
      return GrantResult::Stale;
    }
    regrant = regrant && grp.holder == payload.agent &&
              grp.holder_attempt == payload.attempt;
  }
  // Re-delivered copy of an UPDATE whose grants this server already gave:
  // idempotent (the re-ACK below is exactly what a sender missing our first
  // ACK needs), but worth counting.
  if (regrant && staged_.contains(payload.agent)) {
    protocol_.note_anomaly(Anomaly::DuplicateUpdate);
  }
  for (const shard::GroupId g : groups) {
    auto& grp = lock_space_.group(g);
    grp.holder = payload.agent;
    grp.holder_attempt = payload.attempt;
  }
  staged_[payload.agent] = payload.ops;
  touch_agent(payload.agent);
  return GrantResult::Granted;
}

void MarpServer::handle_commit_local(const CommitPayload& payload) {
  // Re-applying is always safe (Thomas write rule), so ops go first — a
  // replica that missed the original COMMIT converges off any copy. Under
  // partial replication only hosted groups are applied (against the newest
  // known view, so a promised joiner already absorbs its new groups).
  for (const WriteOp& op : payload.ops) {
    if (config_.membership.enabled() &&
        !newest_view().hosts(node_, router_.group_of(op.key))) {
      continue;
    }
    store_.apply(op.key, op.value, op.version);
    if (op.version > applied_high_) applied_high_ = op.version;
  }
  if (ul_.contains(payload.agent)) {
    // Duplicated or reordered redelivery: the locks were already swept and
    // waiters signalled; doing it again would only churn. Count and stop.
    protocol_.note_anomaly(Anomaly::DuplicateCommit);
    return;
  }
  staged_.erase(payload.agent);
  agent_activity_.erase(payload.agent);
  lock_space_.release_grants(payload.agent, kAnyAttempt);
  unlocked_attempts_.erase(payload.agent);
  lock_space_.remove_from_lists(payload.agent, payload.groups);
  if (auto* tracer = protocol_.tracer()) tracer->ll_remove_all(payload.agent, node_);
  ul_.add(payload.agent);
  // Wake local waiters even if the winner never queued here: the UL entry
  // alone changes filtered heads everywhere.
  signal_lock_changed();
}

void MarpServer::handle_release_local(const ReleasePayload& payload) {
  staged_.erase(payload.agent);
  agent_activity_.erase(payload.agent);
  lock_space_.release_grants(payload.agent, kAnyAttempt);
  unlocked_attempts_.erase(payload.agent);
  if (lock_space_.remove_from_lists(payload.agent, payload.groups)) {
    if (auto* tracer = protocol_.tracer()) tracer->ll_remove_all(payload.agent, node_);
    signal_lock_changed();
  }
}

void MarpServer::handle_unlock_local(const agent::AgentId& agent,
                                     std::uint32_t attempt) {
  auto& high_water = unlocked_attempts_[agent];
  high_water = std::max(high_water, attempt);
  touch_agent(agent);
  // Grants are taken atomically at one attempt, so if any group released,
  // the staged ops of that attempt are dead too.
  if (lock_space_.release_grants(agent, attempt)) staged_.erase(agent);
}

void MarpServer::handle_report_local(const ReportPayload& payload,
                                     net::NodeId from) {
  // Ack first: whether this copy is fresh or a retransmit, the reporting
  // agent only needs to know the origin has the outcome.
  if (from != net::kInvalidNode) {
    platform_.send_to_agent(node_, from, payload.agent, kMsgReportAck,
                            CommitAckPayload{node_}.encode());
  }
  if (reported_.contains(payload.agent)) {
    // Retransmitted REPORT (the first ack was lost): already accounted.
    protocol_.note_anomaly(Anomaly::DuplicateReport);
    return;
  }
  reported_.add(payload.agent);
  for (std::uint64_t request_id : payload.request_ids) {
    auto it = outstanding_.find(request_id);
    if (it == outstanding_.end()) {
      // The request this outcome answers is gone — this origin crashed after
      // dispatching the agent and lost its outstanding table. Not silent any
      // more: the counter is the evidence the crash ate a client answer.
      protocol_.note_anomaly(Anomaly::OrphanedReport);
      continue;
    }
    const replica::Request& request = it->second;
    replica::Outcome outcome;
    outcome.request_id = request.id;
    outcome.kind = replica::RequestKind::Write;
    outcome.origin = node_;
    outcome.submitted = request.submitted;
    outcome.success = payload.success;
    outcome.dispatched = sim::SimTime::micros(payload.dispatched_us);
    outcome.lock_obtained = sim::SimTime::micros(payload.lock_obtained_us);
    outcome.completed = now();
    outcome.servers_visited = payload.servers_visited;
    report(outcome);
    outstanding_.erase(it);
  }
}

void MarpServer::handle_read_report_local(const ReadReportPayload& payload) {
  auto it = outstanding_.find(payload.request_id);
  if (it == outstanding_.end()) return;
  const replica::Request& request = it->second;
  replica::Outcome outcome;
  outcome.request_id = request.id;
  outcome.kind = replica::RequestKind::Read;
  outcome.origin = node_;
  outcome.submitted = request.submitted;
  outcome.dispatched = request.submitted;
  outcome.lock_obtained = request.submitted;
  outcome.completed = now();
  outcome.success = payload.success;
  outcome.value = payload.value;
  outcome.read_version = payload.version;
  outcome.servers_visited = payload.servers_visited;
  protocol_.note_read();
  report(outcome);
  outstanding_.erase(it);
}

void MarpServer::handle_message(const net::Message& message) {
  if (!up_) return;
  switch (message.type) {
    case kMsgUpdate: {
      const UpdatePayload payload = UpdatePayload::decode(message.payload);
      shard::GroupId conflict = 0;
      switch (handle_update_local(payload, &conflict)) {
        case GrantResult::Granted: {
          AckPayload ack{node_, payload.attempt, applied_high_};
          ack.epoch = view_.epoch;
          platform_.send_to_agent(node_, payload.reply_to, payload.agent,
                                  kMsgAck, ack.encode());
          break;
        }
        case GrantResult::Held:
          platform_.send_to_agent(
              node_, payload.reply_to, payload.agent, kMsgNack,
              NackPayload{node_, payload.attempt,
                          *lock_space_.group(conflict).holder, conflict}
                  .encode());
          break;
        case GrantResult::Stale:
          // The sender has moved on; any reply would be ignored.
          protocol_.note_anomaly(Anomaly::StaleUpdate);
          break;
        case GrantResult::EpochStale:
          // Teach the stale session the newest view so it can re-tour.
          protocol_.note_anomaly(Anomaly::EpochStaleUpdate);
          platform_.send_to_agent(
              node_, payload.reply_to, payload.agent, kMsgEpochNotice,
              EpochNoticePayload{node_, newest_view()}.encode());
          break;
        case GrantResult::CatchingUp:
          // Silent: the sender's ack-retry rounds re-deliver the UPDATE
          // once the first store merge lands and grants reopen. Each
          // refusal re-pulls in case the original sync request was lost.
          protocol_.note_anomaly(Anomaly::JoinerRefusal);
          sync_pull(1);
          break;
      }
      break;
    }
    case kMsgCommit: {
      const CommitPayload payload = CommitPayload::decode(message.payload);
      handle_commit_local(payload);
      // Hardened senders ask for an ack so they can stop retransmitting;
      // legacy senders leave reply_to invalid and get the seed behaviour.
      if (payload.reply_to != net::kInvalidNode) {
        platform_.send_to_agent(node_, payload.reply_to, payload.agent,
                                kMsgCommitAck, CommitAckPayload{node_}.encode());
      }
      break;
    }
    case kMsgRelease: {
      const ReleasePayload payload = ReleasePayload::decode(message.payload);
      handle_release_local(payload);
      // Symmetric with COMMIT: a hardened aborter asks for an ack so it can
      // stop retransmitting. A lost RELEASE would otherwise leave a dead LL
      // head (the aborter never reaches any UL, so filtered heads can never
      // skip it) and a stuck grant — wedging this server permanently.
      if (payload.reply_to != net::kInvalidNode) {
        platform_.send_to_agent(node_, payload.reply_to, payload.agent,
                                kMsgCommitAck, CommitAckPayload{node_}.encode());
      }
      break;
    }
    case kMsgUnlock: {
      const UnlockPayload payload = UnlockPayload::decode(message.payload);
      handle_unlock_local(payload.agent, payload.attempt);
      break;
    }
    case kMsgReport:
      handle_report_local(ReportPayload::decode(message.payload), message.src);
      break;
    case kMsgReadReport:
      handle_read_report_local(ReadReportPayload::decode(message.payload));
      break;
    case kMsgSyncReq: {
      SyncPayload dump;
      for (const auto& key : store_.keys()) {
        const auto value = store_.read(key);
        dump.items.push_back({key, value->value, value->version});
      }
      network_.send(net::Message{node_, message.src, kMsgSyncRep, dump.encode()});
      break;
    }
    case kMsgSyncRep: {
      const SyncPayload dump = SyncPayload::decode(message.payload);
      std::size_t applied = 0;
      for (const auto& item : dump.items) {
        // Partial replication: keep only the groups this node hosts under
        // the newest view it knows (a promised joiner adopts its gained
        // groups from exactly this merge).
        if (config_.membership.enabled() &&
            !newest_view().hosts(node_, router_.group_of(item.key))) {
          continue;
        }
        if (store_.apply(item.key, item.value, item.version)) {
          ++applied;
          if (item.version > applied_high_) applied_high_ = item.version;
        }
      }
      if (catching_up_) {
        // First completed merge ends catch-up: this member now serves
        // grants for its hosted groups.
        catching_up_ = false;
        MARP_LOG_INFO("marp") << "server " << node_
                              << ": catch-up complete, serving grants";
      }
      if (sync_listener_) sync_listener_(applied);
      break;
    }
    case kMsgViewPropose:
      handle_view_propose(ViewProposePayload::decode(message.payload));
      break;
    case kMsgViewAck:
      handle_view_ack(ViewAckPayload::decode(message.payload));
      break;
    case kMsgViewActivate:
      activate_view(ViewActivatePayload::decode(message.payload).view);
      break;
    default:
      MARP_LOG_WARN("marp") << "server " << node_ << ": unexpected message type "
                            << message.type;
  }
}

void MarpServer::purge_agents(const std::vector<agent::AgentId>& dead) {
  bool changed = false;
  for (const agent::AgentId& id : dead) {
    staged_.erase(id);
    unlocked_attempts_.erase(id);
    agent_activity_.erase(id);
    changed = lock_space_.purge(id) || changed;
    if (auto* tracer = protocol_.tracer()) tracer->ll_remove_all(id, node_);
  }
  if (changed) signal_lock_changed();
}

void MarpServer::reset_coordination() {
  if (auto* tracer = protocol_.tracer()) tracer->node_reset(node_);
  lock_space_.clear();
  ul_ = replica::UpdatedList{};
  gossip_cache_.clear();
  staged_.clear();
  unlocked_attempts_.clear();
  signal_lock_changed();
}

void MarpServer::signal_lock_changed() {
  platform_.host(node_).raise_signal(kSignalLockChanged);
}

void MarpServer::on_fail() {
  // The process halts: volatile coordination state is gone; buffered client
  // requests are lost. The versioned store survives on stable storage.
  if (auto* tracer = protocol_.tracer()) tracer->node_reset(node_);
  lock_space_.clear();
  ul_ = replica::UpdatedList{};
  gossip_cache_.clear();
  staged_.clear();
  unlocked_attempts_.clear();
  agent_activity_.clear();
  reported_ = replica::UpdatedList{};
  pending_.clear();
  outstanding_.clear();
  if (batch_timer_) {
    simulator().cancel(*batch_timer_);
    batch_timer_.reset();
  }
}

void MarpServer::on_recover() {
  // Locking state restarts empty; the store catches up through future
  // COMMITs regardless (versions make re-application safe). With recovery
  // sync enabled we additionally pull the current store from a live peer so
  // keys that are never written again still converge.
  if (!config_.recovery_sync) return;
  for (net::NodeId peer = 0; peer < network_.size(); ++peer) {
    if (sync_peer_ok(peer)) {
      network_.send(net::Message{node_, peer, kMsgSyncReq, {}});
      break;
    }
  }
}

// ---- dynamic membership ----

void MarpServer::install_view(const membership::MembershipView& view) {
  view_ = view;
  pending_view_.reset();
  rebuild_group_quorums();
}

void MarpServer::rebuild_group_quorums() {
  group_quorums_.clear();
  if (!view_.enabled()) return;
  group_quorums_.reserve(view_.num_groups());
  for (shard::GroupId g = 0; g < view_.num_groups(); ++g) {
    group_quorums_.push_back(std::make_unique<membership::MappedQuorum>(
        config_.quorum, view_.replicas_of(g)));
  }
}

const membership::MappedQuorum* MarpServer::group_quorum(shard::GroupId g) const {
  if (g >= group_quorums_.size()) return nullptr;
  return group_quorums_[g].get();
}

bool MarpServer::begin_view_change(std::vector<net::NodeId> new_active) {
  if (!config_.membership.enabled() || !up_ || change_) return false;
  membership::MembershipView next = membership::make_view(
      view_.epoch + 1, std::move(new_active),
      config_.membership.replication_factor, config_.num_lock_groups,
      &network_.topology());
  if (next.active == view_.active) return false;
  PendingChange change;
  std::set<net::NodeId> targets(view_.active.begin(), view_.active.end());
  targets.insert(next.active.begin(), next.active.end());
  change.targets.assign(targets.begin(), targets.end());
  change.old_view = view_;
  change.view = std::move(next);
  change_ = std::move(change);
  MARP_LOG_INFO("marp") << "server " << node_ << ": proposing view epoch "
                        << change_->view.epoch << " with "
                        << change_->view.active.size() << " members";
  const ViewProposePayload propose{node_, change_->view};
  const std::vector<std::uint8_t> encoded = propose.encode();
  for (const net::NodeId target : change_->targets) {
    if (target == node_) continue;
    network_.send(net::Message{node_, target, kMsgViewPropose, encoded});
  }
  handle_view_propose(propose);  // local promise + self-ack
  return true;
}

void MarpServer::handle_view_propose(const ViewProposePayload& payload) {
  if (!up_ || !config_.membership.enabled()) return;
  if (payload.view.epoch <= view_.epoch) return;  // change already activated
  if (!pending_view_ || pending_view_->epoch < payload.view.epoch) {
    pending_view_ = payload.view;
    // A node gaining groups starts its catch-up right away: the promise
    // phase doubles as transfer time, and handle_update_local refuses
    // grants until the first merge lands.
    bool gains = false;
    for (shard::GroupId g = 0; g < payload.view.num_groups(); ++g) {
      if (payload.view.hosts(node_, g) && !view_.hosts(node_, g)) {
        gains = true;
        break;
      }
    }
    if (gains) {
      catching_up_ = true;
      sync_pull(2);
    }
  }
  const ViewAckPayload ack{node_, payload.view.epoch};
  if (payload.coordinator == node_) {
    handle_view_ack(ack);
  } else {
    network_.send(
        net::Message{node_, payload.coordinator, kMsgViewAck, ack.encode()});
  }
}

void MarpServer::handle_view_ack(const ViewAckPayload& payload) {
  if (!up_ || !change_ || payload.epoch != change_->view.epoch) return;
  change_->acks.push_back(payload.server);
  change_->acks = quorum::make_node_set(std::move(change_->acks));
  // Activate once a write quorum of EVERY group's old replica set promised:
  // any straggler session of the old epoch then has to cross a promised
  // (fencing) server before it can complete a write quorum of its group —
  // per-group quorum intersection carries the old view's exclusivity into
  // the new one.
  const membership::MembershipView& old = change_->old_view;
  for (shard::GroupId g = 0; g < old.num_groups(); ++g) {
    const membership::MappedQuorum mapped(config_.quorum, old.replicas_of(g));
    if (!mapped.write_covered(change_->acks)) return;
  }
  const ViewActivatePayload activate{change_->view};
  const std::vector<std::uint8_t> encoded = activate.encode();
  for (const net::NodeId target : change_->targets) {
    if (target == node_) continue;
    network_.send(net::Message{node_, target, kMsgViewActivate, encoded});
  }
  const membership::MembershipView view = change_->view;
  change_.reset();
  activate_view(view);
}

void MarpServer::activate_view(const membership::MembershipView& view) {
  if (!up_ || !config_.membership.enabled()) return;
  if (view.epoch <= view_.epoch) return;
  const membership::MembershipView old = view_;
  view_ = view;
  if (pending_view_ && pending_view_->epoch <= view_.epoch) pending_view_.reset();
  rebuild_group_quorums();
  protocol_.note_view_activated(view_);
  if (!view_.is_member(node_)) {
    if (old.is_member(node_)) {
      // Leaver: drain. Sessions queued or granted here are fenced under the
      // new epoch anyway; dropping the coordination state releases their
      // grants now instead of via leases. The store stays (frozen) so a
      // later re-join starts warm.
      retired_ = true;
      catching_up_ = false;
      reset_coordination();
      MARP_LOG_INFO("marp") << "server " << node_ << ": left view at epoch "
                            << view_.epoch << ", locking lists drained";
    }
    return;
  }
  retired_ = false;
  // A member that gained groups but never saw the propose (lost message)
  // still has to catch up before serving grants for them.
  bool gains = false;
  for (shard::GroupId g = 0; g < view_.num_groups(); ++g) {
    if (view_.hosts(node_, g) && !old.hosts(node_, g)) {
      gains = true;
      break;
    }
  }
  if (gains && !catching_up_) {
    catching_up_ = true;
    sync_pull(2);
  }
  // Old-epoch sessions waiting locally re-evaluate (and re-tour) sooner.
  signal_lock_changed();
}

}  // namespace marp::core

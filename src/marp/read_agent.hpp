// ReadAgent — quorum reads, the mobile-agent way.
//
// An extension in the spirit of §5 ("the MAW approach is a generic method,
// which can be used to implement different kinds of replication control
// algorithms"): instead of reading the possibly-stale local copy, a read
// agent tours servers — cheapest first, like the UpdateAgent — collecting
// (version, value) pairs until the votes it has gathered form a read quorum
// that must intersect every write majority. It then reports the freshest
// copy to its origin server and disposes. No locks are taken: reads never
// block writes.
#pragma once

#include <string>
#include <vector>

#include "agent/agent.hpp"
#include "quorum/quorum.hpp"
#include "replica/versioned_store.hpp"

namespace marp::core {

class MarpServer;

/// Registry name for this agent type.
inline constexpr const char* kReadAgentType = "marp.read";

/// Cheapest candidate by the routing-cost table, excluding `here` and the
/// `unavailable` nodes; ties break to the lower id. Nodes beyond the table
/// have *unknown* cost (e.g. the cluster grew since the costs were
/// recorded) and are priced at the worst known link, so they are toured
/// only once every priced option is exhausted. kInvalidNode when empty.
net::NodeId pick_cheapest_node(const std::vector<net::NodeId>& candidates,
                               const std::vector<net::NodeId>& unavailable,
                               net::NodeId here,
                               const std::vector<std::int64_t>& costs);

class ReadAgent final : public agent::MobileAgent {
 public:
  ReadAgent() = default;  ///< for the registry
  ReadAgent(net::NodeId origin, std::uint64_t request_id, std::string key);

  std::string type_name() const override { return kReadAgentType; }

  void on_created(agent::AgentContext& ctx) override;
  void on_arrival(agent::AgentContext& ctx) override;
  void on_migration_failed(agent::AgentContext& ctx, net::NodeId destination) override;

  void serialize(serial::Writer& w) const override;
  void deserialize(serial::Reader& r) override;

  std::uint32_t servers_visited() const noexcept {
    return static_cast<std::uint32_t>(visited_.size());
  }

 private:
  MarpServer& server_here(agent::AgentContext& ctx) const;
  void do_visit(agent::AgentContext& ctx);
  void finish(agent::AgentContext& ctx, bool success);
  net::NodeId pick_next(agent::AgentContext& ctx) const;
  /// Geometry the read must cover: the key's group quorum under dynamic
  /// membership, the cluster-wide geometry otherwise, nullptr on the seed
  /// vote-counting path.
  const quorum::QuorumSystem* read_geometry(agent::AgentContext& ctx) const;
  /// Re-select a read quorum around unavailable_ on a geometry path. Returns
  /// false when the tour is over (no quorum left → failure reported, or the
  /// visits already cover → success reported); true to keep touring.
  bool reselect_quorum(agent::AgentContext& ctx);

  net::NodeId origin_ = net::kInvalidNode;
  std::uint64_t request_id_ = 0;
  std::string key_;
  std::uint32_t needed_votes_ = 0;
  std::uint32_t gathered_votes_ = 0;
  replica::VersionedValue best_;
  std::vector<net::NodeId> usl_;
  std::vector<net::NodeId> visited_;
  std::vector<net::NodeId> unavailable_;
  std::vector<std::int64_t> routing_costs_;
  std::uint32_t migration_retries_ = 0;
  /// Birth epoch of the current tour (0 = static membership). Serialized as
  /// a trailing optional field so the disabled path stays byte-identical.
  std::uint64_t epoch_ = 0;
};

}  // namespace marp::core

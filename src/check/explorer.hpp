// Bounded stateless model checking over CheckScenario.
//
// A *schedule* is the vector of choice indices taken at successive decision
// points (frontiers with ≥ 2 same-time events); because the scenario is a
// deterministic function of those choices, a schedule is a complete,
// replayable name for an execution — a violation prefix replays bit-for-bit
// exactly like a chaos seed. The explorer runs depth-first: re-execute the
// scenario from scratch following the current stack prefix, extend it with
// first-choice defaults to the end of the run, then backtrack the deepest
// decision point with unexplored alternatives.
//
// Partial-order reduction (sleep sets, Godefroid-style) prunes schedules
// that only permute independent events. Independence is static and
// conservative: two events commute iff both carry a known actor tag (the
// node whose state the handler mutates — see sim::ActorId) and the tags
// differ; untagged events are dependent on everything. Handlers at
// different nodes do share a few commutative global counters and append to
// the commit log, so independence is a heuristic, not a proof — which is
// why `sleep_sets` can be switched off to cross-check any result on the
// full, unreduced space.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/scenario.hpp"
#include "sim/simulator.hpp"

namespace marp::check {

struct ExploreLimits {
  std::uint64_t max_schedules = 200000;
  /// Decision points allowed to branch; deeper ones take the first viable
  /// choice (reported, and disqualifying the run from "exhaustive").
  std::size_t max_branch_points = 256;
  std::uint64_t max_steps_per_run = 50000;
  bool sleep_sets = true;
  std::size_t max_violations = 8;  ///< stop once this many are recorded
  bool fail_fast = false;          ///< stop at the first violation
};

struct ViolationRecord {
  std::vector<std::size_t> schedule;  ///< full decision-index vector
  std::string problem;
  std::uint64_t step = 0;
  std::int64_t time_us = 0;
};

struct ExploreReport {
  std::uint64_t schedules_explored = 0;
  std::uint64_t sleep_blocked = 0;  ///< runs pruned: every candidate slept
  std::uint64_t branch_capped = 0;  ///< decision points beyond the cap
  std::uint64_t total_steps = 0;
  std::size_t max_frontier = 0;
  std::size_t max_decision_points = 0;
  bool complete = false;    ///< DFS drained the stack
  bool exhaustive = false;  ///< complete with no cap ever hit
  std::vector<ViolationRecord> violations;
};

/// Explore `scenario` within `limits`.
ExploreReport explore(const ScenarioConfig& scenario,
                      const ExploreLimits& limits);

/// One verbose re-execution of `schedule` (indices past the run's decision
/// points are ignored; missing ones default to choice 0).
struct ReplayResult {
  RunOutcome outcome;
  std::vector<std::string> decisions;  ///< human-readable per-decision log
};
ReplayResult replay(const ScenarioConfig& scenario,
                    const std::vector<std::size_t>& schedule);

}  // namespace marp::check

// InvariantMonitor — the safety oracle of the model checker (src/check/).
//
// Asserts, after every simulator step and at key protocol milestones, the
// paper's correctness claims on the *ground-truth* state — the actual
// Locking Lists, grants, commit log and stores across all servers — never
// on any agent's possibly-stale view:
//
// * Theorem 1/2 (agreement + unique top priority): whenever an agent
//   assembles an update quorum, the unmutated priority rule applied to the
//   real per-server Locking Lists must elect exactly that agent. Checked
//   synchronously at the UpdateQuorum milestone via the phase probe, and
//   continuously through the protocol's own dual-majority counter.
// * Order preservation: the commit log stays strictly version-ordered per
//   lock group and per key (checked incrementally, so a violation is
//   attributed to the exact step that committed out of order).
// * Theorem 3 (migration bounds): no agent migrates more than a
//   configuration-derived bound (a generous multiple of the tour length —
//   the theorem's O(N) claim, with slack for contention re-tours).
// * Grant-leak freedom + liveness-within-horizon (final checks): once the
//   run quiesces, no grants are held, every Locking List is empty, every
//   submitted request was answered, and all surviving replicas converged.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "agent/platform.hpp"
#include "marp/protocol.hpp"

namespace marp::check {

struct MonitorConfig {
  std::size_t servers = 3;
  std::size_t lock_groups = 1;
  std::size_t expected_outcomes = 0;
  /// Quorum geometry of the checked deployment. The monitor builds its own
  /// UNMUTATED quorum system from this — a seeded SplitQuorum mutant changes
  /// what the agents do, never what the oracle accepts.
  quorum::QuorumSpec quorum;
  /// Every submitted request must be answered by the end of the run
  /// (off for lossy fault plans, where crashes may eat requests).
  bool expect_completion = true;
  /// Quorum ⇒ ground-truth winner checks; sound in fault-free runs (where
  /// Locking-List entries only leave by committing), off under faults.
  bool strict_agreement = true;
  std::uint64_t max_migrations_per_agent = 0;  ///< 0 = derive from config
};

class InvariantMonitor final : public agent::PlatformObserver {
 public:
  InvariantMonitor(core::MarpProtocol& protocol, agent::AgentPlatform& platform,
                   net::Network& network, MonitorConfig config);

  /// Wraps any already-installed phase probe (fault injector) and registers
  /// as platform observer. Call after the injector is armed.
  void install();

  /// Per-step invariants; false once a violation has been recorded.
  bool after_step(std::uint64_t step);

  /// End-of-run invariants (quiescence, completeness, convergence).
  /// `eligible[i]` marks servers that never crashed; `outcomes` counts
  /// answered requests.
  void final_checks(const std::vector<bool>& eligible, std::size_t outcomes);

  bool ok() const noexcept { return problem_.empty(); }
  const std::string& problem() const noexcept { return problem_; }
  std::uint64_t violation_step() const noexcept { return violation_step_; }
  std::int64_t violation_time_us() const noexcept { return violation_time_us_; }

  // PlatformObserver — Theorem 3 accounting.
  void on_migration_started(const agent::AgentId& id, net::NodeId from,
                            net::NodeId to, std::size_t bytes) override;

 private:
  void on_phase(const core::PhaseEvent& event);
  void check_quorum_agreement(const core::PhaseEvent& event);
  /// Geometry form of the Theorem-2 check: the milestone agent's grant set
  /// must contain a true write quorum (intersection-based mutual exclusion;
  /// replaces the majority-count + ground-truth-election check, which
  /// assumes every agent sees the full tour).
  void check_quorum_intersection(const core::PhaseEvent& event);
  /// (group, epoch)-scoped Theorem-2 check for dynamic-membership runs: the
  /// milestone agent's grant set must contain a write quorum of the group's
  /// replica geometry in at least one recorded view. Replicas whose grant
  /// state was destroyed rather than released (crashed, or retired by a
  /// leave) count as wildcards, so churn can hide a violation but never
  /// fabricate one.
  void check_quorum_intersection_membership(const core::PhaseEvent& event);
  void check_commit_log_order();
  void flag(std::string problem);

  core::MarpProtocol& protocol_;
  agent::AgentPlatform& platform_;
  net::Network& network_;
  MonitorConfig config_;
  /// Unmutated geometry oracle (never null).
  std::unique_ptr<const quorum::QuorumSystem> quorum_;
  core::MarpProtocol::PhaseProbe chained_probe_;
  std::map<agent::AgentId, std::uint64_t> migrations_;
  std::size_t commit_log_checked_ = 0;
  std::string problem_;
  std::uint64_t current_step_ = 0;
  std::uint64_t violation_step_ = 0;
  std::int64_t violation_time_us_ = 0;
};

}  // namespace marp::check

#include "check/explorer.hpp"

#include <algorithm>
#include <optional>
#include <sstream>

#include "util/assert.hpp"

namespace marp::check {

namespace {

bool independent(const sim::EventChoice& a, const sim::EventChoice& b) {
  return a.actor != sim::kNoActor && b.actor != sim::kNoActor &&
         a.actor != b.actor;
}

bool contains_id(const std::vector<sim::EventChoice>& set, sim::EventId id) {
  for (const sim::EventChoice& c : set) {
    if (c.id == id) return true;
  }
  return false;
}

/// One decision point on the DFS stack. `frontier` is recorded so a replayed
/// prefix can assert the run really is deterministic; `done[i]` marks
/// alternatives that need no (further) exploration — already explored, or
/// asleep on entry.
struct BranchPoint {
  std::vector<sim::EventChoice> frontier;
  std::vector<sim::EventChoice> entry_sleep;
  std::size_t chosen = 0;
  std::vector<char> done;
};

class DfsController final : public sim::ScheduleController {
 public:
  DfsController(std::vector<BranchPoint>& stack, const ExploreLimits& limits)
      : stack_(stack), limits_(limits) {}

  std::size_t choose(const std::vector<sim::EventChoice>& runnable) override {
    max_frontier_ = std::max(max_frontier_, runnable.size());
    if (runnable.size() == 1) {
      // Deterministic step — no decision, but the sleep set still evolves:
      // a singleton that is itself asleep proves the whole continuation is
      // covered by an already-explored order.
      if (limits_.sleep_sets && contains_id(sleep_, runnable[0].id)) {
        blocked_ = true;
      }
      propagate(runnable[0]);
      return 0;
    }

    const std::size_t d = decision_index_++;
    std::size_t pick = 0;
    if (d < stack_.size()) {
      // Replaying the DFS prefix.
      BranchPoint& bp = stack_[d];
      if (!same_frontier(bp.frontier, runnable)) {
        determinism_error_ = true;
        blocked_ = true;
        pick = bp.chosen < runnable.size() ? bp.chosen : 0;
      } else {
        pick = bp.chosen;
        // Sleep-set semantics: alternatives already explored at this point
        // go to sleep for the chosen subtree.
        sleep_ = bp.entry_sleep;
        for (std::size_t i = 0; i < bp.frontier.size(); ++i) {
          if (bp.done[i] && i != pick) sleep_.push_back(bp.frontier[i]);
        }
      }
      propagate(runnable[pick]);
    } else {
      // New decision point: first candidate not asleep.
      std::optional<std::size_t> viable;
      for (std::size_t i = 0; i < runnable.size(); ++i) {
        if (!limits_.sleep_sets || !contains_id(sleep_, runnable[i].id)) {
          viable = i;
          break;
        }
      }
      if (!viable) {
        blocked_ = true;
        trace_.push_back(0);
        return 0;
      }
      pick = *viable;
      if (stack_.size() < limits_.max_branch_points) {
        BranchPoint bp;
        bp.frontier = runnable;
        bp.entry_sleep = sleep_;
        bp.chosen = pick;
        bp.done.assign(runnable.size(), 0);
        if (limits_.sleep_sets) {
          for (std::size_t i = 0; i < runnable.size(); ++i) {
            if (contains_id(sleep_, runnable[i].id)) bp.done[i] = 1;
          }
        }
        stack_.push_back(std::move(bp));
      } else {
        ++branch_capped_;
      }
      propagate(runnable[pick]);
    }
    trace_.push_back(pick);
    return pick;
  }

  bool blocked() const noexcept { return blocked_; }
  bool determinism_error() const noexcept { return determinism_error_; }
  std::uint64_t branch_capped() const noexcept { return branch_capped_; }
  std::size_t max_frontier() const noexcept { return max_frontier_; }
  const std::vector<std::size_t>& trace() const noexcept { return trace_; }

 private:
  static bool same_frontier(const std::vector<sim::EventChoice>& a,
                            const std::vector<sim::EventChoice>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].id != b[i].id) return false;
    }
    return true;
  }

  /// After firing `chosen`, only events independent of it stay asleep.
  void propagate(const sim::EventChoice& chosen) {
    std::vector<sim::EventChoice> kept;
    kept.reserve(sleep_.size());
    for (const sim::EventChoice& z : sleep_) {
      if (z.id != chosen.id && independent(z, chosen)) kept.push_back(z);
    }
    sleep_ = std::move(kept);
  }

  std::vector<BranchPoint>& stack_;
  const ExploreLimits& limits_;
  std::vector<sim::EventChoice> sleep_;
  std::vector<std::size_t> trace_;
  std::size_t decision_index_ = 0;
  std::uint64_t branch_capped_ = 0;
  std::size_t max_frontier_ = 0;
  bool blocked_ = false;
  bool determinism_error_ = false;
};

/// Backtrack: mark the deepest choice explored and move it to its next
/// unexplored alternative, popping exhausted points. False = space drained.
bool advance(std::vector<BranchPoint>& stack) {
  while (!stack.empty()) {
    BranchPoint& bp = stack.back();
    bp.done[bp.chosen] = 1;
    std::optional<std::size_t> next;
    for (std::size_t i = 0; i < bp.frontier.size(); ++i) {
      if (!bp.done[i]) {
        next = i;
        break;
      }
    }
    if (next) {
      bp.chosen = *next;
      return true;
    }
    stack.pop_back();
  }
  return false;
}

class ReplayController final : public sim::ScheduleController {
 public:
  explicit ReplayController(const std::vector<std::size_t>& schedule)
      : schedule_(schedule) {}

  std::size_t choose(const std::vector<sim::EventChoice>& runnable) override {
    if (runnable.size() == 1) return 0;
    const std::size_t d = decision_index_++;
    std::size_t pick = d < schedule_.size() ? schedule_[d] : 0;
    if (pick >= runnable.size()) pick = 0;
    std::ostringstream os;
    os << "decision " << d << " @" << runnable.front().time.as_micros()
       << "us: frontier {";
    for (std::size_t i = 0; i < runnable.size(); ++i) {
      if (i) os << ", ";
      os << "#" << runnable[i].id << "/n" << runnable[i].actor;
    }
    os << "} -> pick " << pick;
    decisions_.push_back(os.str());
    return pick;
  }

  std::vector<std::string>& decisions() noexcept { return decisions_; }

 private:
  const std::vector<std::size_t>& schedule_;
  std::size_t decision_index_ = 0;
  std::vector<std::string> decisions_;
};

}  // namespace

ExploreReport explore(const ScenarioConfig& scenario,
                      const ExploreLimits& limits) {
  ExploreReport report;
  std::vector<BranchPoint> stack;

  for (;;) {
    CheckScenario run_instance(scenario);
    DfsController controller(stack, limits);
    const RunOutcome outcome = run_instance.run(
        &controller, [&controller] { return controller.blocked(); },
        limits.max_steps_per_run);

    ++report.schedules_explored;
    report.total_steps += outcome.steps;
    report.max_frontier = std::max(report.max_frontier, controller.max_frontier());
    report.max_decision_points =
        std::max(report.max_decision_points, controller.trace().size());
    report.branch_capped += controller.branch_capped();

    MARP_REQUIRE_MSG(!controller.determinism_error(),
                     "schedule replay diverged: the scenario is not a pure "
                     "function of its choice sequence");

    if (outcome.violation) {
      // A violation on a pruned path is still a reachable state: record it.
      if (report.violations.size() < limits.max_violations) {
        report.violations.push_back(ViolationRecord{
            controller.trace(), outcome.problem, outcome.violation_step,
            outcome.violation_time_us});
      }
      if (limits.fail_fast ||
          report.violations.size() >= limits.max_violations) {
        break;
      }
    } else if (outcome.aborted) {
      ++report.sleep_blocked;
    }

    if (!advance(stack)) {
      report.complete = true;
      break;
    }
    if (report.schedules_explored >= limits.max_schedules) break;
  }

  report.exhaustive = report.complete && report.branch_capped == 0;
  return report;
}

ReplayResult replay(const ScenarioConfig& scenario,
                    const std::vector<std::size_t>& schedule) {
  CheckScenario run_instance(scenario);
  ReplayController controller(schedule);
  ReplayResult result;
  result.outcome = run_instance.run(&controller);
  result.decisions = std::move(controller.decisions());
  return result;
}

}  // namespace marp::check

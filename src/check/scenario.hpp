// CheckScenario — one small, fully deterministic MARP deployment for the
// model checker: N servers on a constant-latency mesh (so concurrent
// protocol steps genuinely tie in virtual time and every tie is a real
// interleaving choice), K single-write agents dispatched simultaneously
// from distinct origins, G lock groups, and optionally one scripted fault
// from src/fault/. Every run of the same scenario under the same schedule
// (choice sequence) is bit-for-bit identical — the property the DFS
// explorer and --replay rely on.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "agent/platform.hpp"
#include "check/monitor.hpp"
#include "fault/injector.hpp"
#include "marp/protocol.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace marp::check {

enum class FaultKind : std::uint8_t {
  None,
  /// Crash the first quorum winner's server at the UpdateQuorum milestone —
  /// the COMMIT broadcast is in flight, the RELEASE may never come.
  Crash,
  /// A 100%-loss window over every link early in the run; the hardened
  /// (reliable_commit) protocol must retry its way through.
  Drop
};

struct ScenarioConfig {
  std::size_t servers = 3;
  std::size_t agents = 2;  ///< one write request each, distinct origins
  std::size_t lock_groups = 1;
  core::ProtocolMutant mutant = core::ProtocolMutant::None;
  /// Quorum geometry checked (threaded to both the protocol under test and
  /// the monitor's unmutated oracle).
  quorum::QuorumSpec quorum;
  FaultKind fault = FaultKind::None;
  /// Virtual-time bound per run; zero derives a default from the fault kind.
  sim::SimTime horizon = sim::SimTime::zero();

  /// Dynamic membership: copies per lock group (0 = static full
  /// replication). With rf > 0 the deployment runs epoch-stamped views over
  /// the first `initial_members` servers (0 = all of them); the remaining
  /// servers are spares that can join later.
  std::size_t membership_rf = 0;
  std::size_t initial_members = 0;
  /// Scripted churn (membership only; kInvalidNode = none): propose adding
  /// `join_node` / removing `leave_node` at the given virtual times. Fired
  /// through the fault injector, so the two-phase change races the
  /// explored agent schedules like any other scripted event.
  net::NodeId join_node = net::kInvalidNode;
  sim::SimTime join_at = sim::SimTime::zero();
  net::NodeId leave_node = net::kInvalidNode;
  sim::SimTime leave_at = sim::SimTime::zero();
  /// Delay between consecutive agent submissions (agent i starts at
  /// i × stagger). Zero keeps the maximally-tied t=0 start. Non-zero lets
  /// later agents be born under a *newer* epoch than still-running earlier
  /// ones — the precondition for a cross-epoch quorum conflict, which the
  /// MixedEpoch mutant needs in order to be catchable at all.
  sim::SimTime agent_stagger = sim::SimTime::zero();

  sim::SimTime effective_horizon() const;
};

/// What one bounded run produced.
struct RunOutcome {
  bool violation = false;
  std::string problem;
  std::uint64_t violation_step = 0;
  std::int64_t violation_time_us = 0;
  std::uint64_t steps = 0;
  std::size_t outcomes = 0;  ///< answered requests
  bool aborted = false;      ///< abort hook fired (sleep-set pruned run)
};

class CheckScenario {
 public:
  explicit CheckScenario(const ScenarioConfig& config);
  ~CheckScenario();

  CheckScenario(const CheckScenario&) = delete;
  CheckScenario& operator=(const CheckScenario&) = delete;

  /// Drive the run to quiescence/horizon under `controller` (nullptr =
  /// canonical order), consulting the monitor after every event.
  /// `abort_hook`, when set, is polled each step; returning true abandons
  /// the run without final checks (used for sleep-set pruning).
  RunOutcome run(sim::ScheduleController* controller,
                 const std::function<bool()>& abort_hook = {},
                 std::uint64_t max_steps = 50000);

  sim::Simulator& simulator() { return *simulator_; }
  core::MarpProtocol& protocol() { return *protocol_; }
  const ScenarioConfig& config() const noexcept { return config_; }

 private:
  ScenarioConfig config_;
  std::unique_ptr<sim::Simulator> simulator_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<agent::AgentPlatform> platform_;
  std::unique_ptr<core::MarpProtocol> protocol_;
  std::optional<fault::FaultInjector> injector_;
  std::unique_ptr<InvariantMonitor> monitor_;
  std::size_t outcomes_ = 0;
};

}  // namespace marp::check

#include "check/monitor.hpp"

#include <sstream>

#include "marp/priority.hpp"
#include "marp/server.hpp"
#include "membership/mapped_quorum.hpp"
#include "runner/consistency.hpp"

namespace marp::check {

namespace {

std::string agent_str(const agent::AgentId& id) {
  std::ostringstream os;
  os << "agent(" << id.origin << "@" << id.created_us << "#" << id.seq << ")";
  return os.str();
}

}  // namespace

InvariantMonitor::InvariantMonitor(core::MarpProtocol& protocol,
                                   agent::AgentPlatform& platform,
                                   net::Network& network, MonitorConfig config)
    : protocol_(protocol),
      platform_(platform),
      network_(network),
      config_(std::move(config)),
      quorum_(quorum::make_quorum_system(config_.quorum, config_.servers)) {}

void InvariantMonitor::install() {
  chained_probe_ = protocol_.phase_probe();
  protocol_.set_phase_probe(
      [this](const core::PhaseEvent& event) { on_phase(event); });
  platform_.set_observer(this);
}

void InvariantMonitor::flag(std::string problem) {
  if (!problem_.empty()) return;  // keep the first (earliest) violation
  problem_ = std::move(problem);
  violation_step_ = current_step_;
  violation_time_us_ = network_.simulator().now().as_micros();
}

void InvariantMonitor::on_phase(const core::PhaseEvent& event) {
  if (event.phase == core::ProtocolPhase::UpdateQuorum &&
      config_.strict_agreement) {
    if (protocol_.membership_enabled()) {
      check_quorum_intersection_membership(event);
    } else if (quorum_->geometry() == quorum::Geometry::Majority) {
      check_quorum_agreement(event);
    } else {
      // Quorum-restricted tours give agents partial views on purpose, so
      // "everyone elects the same winner" no longer holds; what must hold
      // is that only grant sets containing a true write quorum reach the
      // milestone. (Gated like the agreement check: a server can grant and
      // then crash, shrinking the live grant set below coverage.)
      check_quorum_intersection(event);
    }
  }
  // Run the checks *before* forwarding, so a fault injector chained behind
  // us perturbs the state only after it has been judged.
  if (chained_probe_) chained_probe_(event);
}

void InvariantMonitor::check_quorum_agreement(const core::PhaseEvent& event) {
  // Ground truth "done" set: exactly the sessions that actually committed.
  core::DoneSet done;
  for (const core::CommitRecord& record : protocol_.commit_log()) {
    done.insert(record.agent);
  }

  for (shard::GroupId g = 0; g < config_.lock_groups; ++g) {
    // Did this quorum cover group g? A quorum in g means a majority of
    // servers granted g to the agent — grants are set before ACKs are sent,
    // so at the (synchronous) milestone the holders already reflect it.
    std::size_t grants = 0;
    for (net::NodeId node = 0; node < config_.servers; ++node) {
      if (!network_.node_up(node)) continue;
      const auto& holder = protocol_.server(node).update_holder(g);
      if (holder && *holder == event.agent) ++grants;
    }
    if (2 * grants <= config_.servers) continue;  // no quorum in this group

    // Theorem 1/2: the unmutated priority rule, applied with perfect
    // information (the real Locking Lists, the real commit set), must elect
    // the agent that just assembled the quorum. In fault-free runs LL
    // entries only leave by committing, so a quorum by anyone else — or a
    // state where no winner is even decidable — is an agreement violation.
    core::LockTable table;
    const std::int64_t now_us = network_.simulator().now().as_micros();
    for (net::NodeId node = 0; node < config_.servers; ++node) {
      if (!network_.node_up(node)) continue;
      table[node] = core::LockSnapshot{
          protocol_.server(node).locking_list(g).snapshot(), now_us};
    }
    const core::Decision truth =
        core::decide(table, done, event.agent, config_.servers,
                     core::TieBreakMode::TotalOrder);
    if (truth.kind != core::Decision::Kind::Win) {
      std::ostringstream os;
      os << "Theorem 1/2 agreement violation: " << agent_str(event.agent)
         << " assembled an update quorum in group " << g
         << " but the ground-truth priority rule ";
      if (truth.kind == core::Decision::Kind::Lose && truth.winner) {
        os << "elects " << agent_str(*truth.winner);
      } else {
        os << "elects no decidable winner";
      }
      flag(os.str());
      return;
    }
  }
}

void InvariantMonitor::check_quorum_intersection(const core::PhaseEvent& event) {
  for (shard::GroupId g = 0; g < config_.lock_groups; ++g) {
    quorum::NodeSet grants;
    for (net::NodeId node = 0; node < config_.servers; ++node) {
      if (!network_.node_up(node)) continue;
      const auto& holder = protocol_.server(node).update_holder(g);
      if (holder && *holder == event.agent) grants.push_back(node);
    }
    if (grants.empty()) continue;  // group not part of this agent's claim
    if (!quorum_->write_covered(grants)) {
      std::ostringstream os;
      os << "Theorem 2 intersection violation: " << agent_str(event.agent)
         << " assembled an update quorum in group " << g
         << " but its grant set {";
      for (std::size_t i = 0; i < grants.size(); ++i) {
        os << (i ? "," : "") << grants[i];
      }
      os << "} contains no true write quorum of the "
         << quorum::geometry_name(quorum_->geometry()) << " geometry";
      flag(os.str());
      return;
    }
  }
}

void InvariantMonitor::check_quorum_intersection_membership(
    const core::PhaseEvent& event) {
  for (shard::GroupId g = 0; g < config_.lock_groups; ++g) {
    quorum::NodeSet grants;
    for (net::NodeId node = 0; node < config_.servers; ++node) {
      if (!network_.node_up(node)) continue;
      const auto& holder = protocol_.server(node).update_holder(g);
      if (holder && *holder == event.agent) grants.push_back(node);
    }
    if (grants.empty()) continue;  // group not part of this agent's claim

    bool covered = false;
    for (const membership::MembershipView& view : protocol_.view_history()) {
      // Grant state on a crashed or retired replica was destroyed, not
      // released: count those replicas as granting so churn straddling the
      // milestone cannot shrink a legitimate quorum into a false alarm.
      quorum::NodeSet candidate = grants;
      for (const net::NodeId node : view.replicas_of(g)) {
        if (!network_.node_up(node) || protocol_.server(node).retired()) {
          candidate.push_back(node);
        }
      }
      const membership::MappedQuorum mapped(config_.quorum,
                                            view.replicas_of(g));
      if (mapped.write_covered(quorum::make_node_set(std::move(candidate)))) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      std::ostringstream os;
      os << "Theorem 2 intersection violation: " << agent_str(event.agent)
         << " assembled an update quorum in group " << g
         << " but its grant set {";
      for (std::size_t i = 0; i < grants.size(); ++i) {
        os << (i ? "," : "") << grants[i];
      }
      os << "} covers no write quorum of group " << g
         << "'s replica geometry in any recorded membership view";
      flag(os.str());
      return;
    }
  }
}

void InvariantMonitor::check_commit_log_order() {
  const auto& log = protocol_.commit_log();
  if (log.size() == commit_log_checked_) return;
  commit_log_checked_ = log.size();
  runner::ConsistencyReport report =
      runner::check_commit_order(log, config_.lock_groups);
  report.merge(runner::check_per_key_order(log));
  if (!report.ok) flag("order violation: " + report.problems.front());
}

bool InvariantMonitor::after_step(std::uint64_t step) {
  current_step_ = step;
  if (!problem_.empty()) return false;
  if (protocol_.stats().mutex_violations != 0) {
    flag("Theorem 2 violation: two agents held concurrent update-grant "
         "majorities in one lock group");
    return false;
  }
  check_commit_log_order();
  return problem_.empty();
}

void InvariantMonitor::on_migration_started(const agent::AgentId& id,
                                            net::NodeId /*from*/,
                                            net::NodeId /*to*/,
                                            std::size_t /*bytes*/) {
  const std::uint64_t count = ++migrations_[id];
  if (config_.max_migrations_per_agent != 0 &&
      count > config_.max_migrations_per_agent) {
    std::ostringstream os;
    os << "Theorem 3 violation: " << agent_str(id) << " migrated " << count
       << " times (bound " << config_.max_migrations_per_agent << ")";
    flag(os.str());
  }
}

void InvariantMonitor::final_checks(const std::vector<bool>& eligible,
                                    std::size_t outcomes) {
  if (!problem_.empty()) return;

  // Grant-leak freedom: a quiesced system holds no update grants. (The
  // failure-notice purge must have reclaimed grants of crashed agents.)
  for (net::NodeId node = 0; node < config_.servers; ++node) {
    if (!network_.node_up(node)) continue;
    for (shard::GroupId g = 0; g < config_.lock_groups; ++g) {
      const auto& holder = protocol_.server(node).update_holder(g);
      if (holder) {
        std::ostringstream os;
        os << "grant leak: server " << node << " group " << g
           << " still granted to " << agent_str(*holder) << " at quiescence";
        flag(os.str());
        return;
      }
    }
  }

  if (config_.expect_completion) {
    if (outcomes != config_.expected_outcomes) {
      std::ostringstream os;
      os << "liveness violation: " << outcomes << "/"
         << config_.expected_outcomes << " requests answered within horizon";
      flag(os.str());
      return;
    }
    for (net::NodeId node = 0; node < config_.servers; ++node) {
      if (!network_.node_up(node)) continue;
      const core::MarpServer& server = protocol_.server(node);
      for (shard::GroupId g = 0; g < config_.lock_groups; ++g) {
        if (!server.locking_list(g).snapshot().empty()) {
          std::ostringstream os;
          os << "lock leak: server " << node << " group " << g
             << " Locking List non-empty at quiescence";
          flag(os.str());
          return;
        }
      }
      if (server.pending_requests() != 0) {
        std::ostringstream os;
        os << "wedged requests: server " << node << " still buffers "
           << server.pending_requests() << " requests at quiescence";
        flag(os.str());
        return;
      }
    }
    if (platform_.live_agents() != 0) {
      std::ostringstream os;
      os << "agent leak: " << platform_.live_agents()
         << " agents still alive at quiescence";
      flag(os.str());
      return;
    }
  }

  // Convergence + replica monotonicity + final order audit.
  std::vector<const replica::VersionedStore*> stores;
  for (net::NodeId node = 0; node < config_.servers; ++node) {
    stores.push_back(&protocol_.server(node).store());
  }
  runner::ConsistencyReport report;
  if (protocol_.membership_enabled()) {
    // Scoped convergence: only replicas hosting a key's group under the
    // final view must agree on it. Leavers keep frozen stores and spares
    // hold nothing — both exempt; a joiner that never finished catch-up
    // shows up here as a hosting replica missing its group's keys.
    const membership::MembershipView& final_view = protocol_.current_view();
    report = runner::check_scoped_convergence(
        stores, eligible, protocol_.router(),
        [&](std::size_t i, shard::GroupId g) {
          const net::NodeId node = static_cast<net::NodeId>(i);
          return network_.node_up(node) && final_view.hosts(node, g) &&
                 !protocol_.server(node).retired() &&
                 protocol_.server(node).view().epoch == final_view.epoch;
        });
  } else {
    report = runner::check_convergence(stores, eligible);
  }
  for (std::size_t i = 0; i < stores.size(); ++i) {
    report.merge(runner::check_monotonic_history(*stores[i], i));
  }
  report.merge(runner::check_commit_order(protocol_.commit_log(),
                                          config_.lock_groups));
  report.merge(runner::check_per_key_order(protocol_.commit_log()));
  if (!report.ok) flag("consistency violation: " + report.problems.front());
}

}  // namespace marp::check

#include "check/scenario.hpp"

#include <string>

#include "fault/plan.hpp"
#include "net/latency.hpp"
#include "net/topology.hpp"
#include "shard/router.hpp"
#include "util/assert.hpp"

namespace marp::check {

namespace {

// One key per lock group, chosen so the FNV-1a router actually spreads the
// write-set across all groups. Pure function of the group count, so every
// run of a scenario uses identical keys.
std::vector<std::string> keys_covering_groups(std::size_t lock_groups) {
  const shard::ShardRouter router(lock_groups);
  std::vector<std::string> keys(lock_groups);
  std::vector<bool> found(lock_groups, false);
  std::size_t covered = 0;
  for (int i = 0; covered < lock_groups; ++i) {
    MARP_REQUIRE_MSG(i < 4096, "router failed to cover all lock groups");
    std::string key = "key-" + std::to_string(i);
    const shard::GroupId g = router.group_of(key);
    if (!found[g]) {
      found[g] = true;
      keys[g] = std::move(key);
      ++covered;
    }
  }
  return keys;
}

fault::FaultPlan make_fault_plan(const ScenarioConfig& config) {
  fault::FaultPlan plan;
  if (config.membership_rf > 0) {
    if (config.join_node != net::kInvalidNode) {
      fault::Action join;
      join.kind = fault::ActionKind::JoinServer;
      join.at = config.join_at;
      join.node = config.join_node;
      plan.actions.push_back(join);
    }
    if (config.leave_node != net::kInvalidNode) {
      fault::Action leave;
      leave.kind = fault::ActionKind::LeaveServer;
      leave.at = config.leave_at;
      leave.node = config.leave_node;
      plan.actions.push_back(leave);
    }
  }
  switch (config.fault) {
    case FaultKind::None:
      break;
    case FaultKind::Crash: {
      fault::Action crash;
      crash.kind = fault::ActionKind::CrashServer;
      crash.on_phase =
          fault::PhaseTrigger{core::ProtocolPhase::UpdateQuorum, 1};
      crash.node = net::kInvalidNode;  // resolve to the winner's node
      plan.actions.push_back(crash);
      break;
    }
    case FaultKind::Drop: {
      fault::Action set;
      set.kind = fault::ActionKind::SetLinkFaults;
      set.at = sim::SimTime::millis(3);
      set.faults.drop = 1.0;
      plan.actions.push_back(set);
      fault::Action clear;
      clear.kind = fault::ActionKind::ClearLinkFaults;
      clear.at = sim::SimTime::millis(40);
      plan.actions.push_back(clear);
      break;
    }
  }
  return plan;
}

}  // namespace

sim::SimTime ScenarioConfig::effective_horizon() const {
  if (horizon.as_micros() > 0) return horizon;
  sim::SimTime base = sim::SimTime::millis(800);
  if (fault == FaultKind::Crash) base = sim::SimTime::millis(1500);
  if (fault == FaultKind::Drop) base = sim::SimTime::millis(2500);
  if (lock_groups > 1) {
    base = base + sim::SimTime::millis(400 * (lock_groups - 1));
  }
  if (membership_rf > 0 &&
      (join_node != net::kInvalidNode || leave_node != net::kInvalidNode)) {
    // A view change re-tours in-flight agents and a joiner must finish
    // anti-entropy catch-up before quiescence.
    base = base + sim::SimTime::millis(700);
  }
  return base;
}

CheckScenario::CheckScenario(const ScenarioConfig& config) : config_(config) {
  MARP_REQUIRE(config.servers >= 2);
  MARP_REQUIRE(config.agents >= 1);
  MARP_REQUIRE(config.lock_groups >= 1);

  // Fixed seed: with constant latency no component draws randomness on the
  // explored paths, so the only nondeterminism left is the schedule itself.
  simulator_ = std::make_unique<sim::Simulator>(1);
  net::Topology topology =
      net::make_lan_mesh(config.servers, sim::SimTime::millis(1));
  network_ = std::make_unique<net::Network>(
      *simulator_, std::move(topology),
      std::make_unique<net::ConstantLatency>(sim::SimTime::millis(1)));
  platform_ = std::make_unique<agent::AgentPlatform>(*network_);

  core::MarpConfig marp;
  marp.num_lock_groups = config.lock_groups;
  marp.mutant = config.mutant;
  marp.quorum = config.quorum;
  marp.batch_size = 1;
  // Parked agents are woken by COMMIT signals; pushing the patrol past the
  // horizon keeps the schedule space to the protocol's essential events.
  marp.patrol_interval = sim::SimTime::seconds(10);
  if (config.fault == FaultKind::Drop) marp.reliable_commit = true;
  if (config.membership_rf > 0) {
    marp.membership.replication_factor = config.membership_rf;
    marp.membership.initial_members = config.initial_members;
  }
  protocol_ = std::make_unique<core::MarpProtocol>(*network_, *platform_, marp);

  fault::FaultPlan plan = make_fault_plan(config);
  if (!plan.empty()) {
    injector_.emplace(*network_, *platform_, *protocol_, std::move(plan));
    injector_->arm();
  }

  MonitorConfig mon;
  mon.servers = config.servers;
  mon.lock_groups = config.lock_groups;
  mon.quorum = config.quorum;
  mon.expected_outcomes = config.agents;
  // Crashes eat buffered requests and in-flight agents; a full-loss window
  // can strand a REPORT. Either way completion accounting must relax, and
  // the strict quorum-agreement oracle is only sound while Locking-List
  // entries leave exclusively by committing (no fault-driven aborts).
  mon.expect_completion = config.fault == FaultKind::None;
  mon.strict_agreement = config.fault == FaultKind::None;
  mon.max_migrations_per_agent =
      config.servers * (config.agents + 2) + 4;  // generous O(N) tour bound
  monitor_ = std::make_unique<InvariantMonitor>(*protocol_, *platform_,
                                                *network_, mon);
  monitor_->install();  // after arm(): the injector's probe gets chained

  protocol_->set_outcome_handler(
      [this](const replica::Outcome&) { ++outcomes_; });

  // All writes submitted at t=0 from distinct origins: with batch_size 1
  // every agent is dispatched immediately, so their first visits — and the
  // whole protocol race — happen on a maximally tied timeline. A non-zero
  // agent_stagger instead spaces the submissions out, so later agents can
  // be born under a newer membership epoch than earlier ones.
  const std::vector<std::string> keys = keys_covering_groups(config.lock_groups);
  for (std::size_t i = 0; i < config.agents; ++i) {
    replica::Request request;
    request.id = i + 1;
    request.kind = replica::RequestKind::Write;
    request.key = keys[i % keys.size()];
    request.value = "v" + std::to_string(i + 1);
    request.origin = static_cast<net::NodeId>(i % config.servers);
    request.submitted = config.agent_stagger * static_cast<std::int64_t>(i);
    if (request.submitted == sim::SimTime::zero()) {
      protocol_->submit(request);
    } else {
      simulator_->schedule_at(
          request.submitted,
          [this, request]() { protocol_->submit(request); });
    }
  }
}

CheckScenario::~CheckScenario() {
  // The monitor outlives nothing: detach before members tear down.
  platform_->set_observer(nullptr);
  simulator_->set_schedule_controller(nullptr);
}

RunOutcome CheckScenario::run(sim::ScheduleController* controller,
                              const std::function<bool()>& abort_hook,
                              std::uint64_t max_steps) {
  simulator_->set_schedule_controller(controller);
  const sim::SimTime horizon = config_.effective_horizon();
  RunOutcome out;

  while (!simulator_->idle() && out.steps < max_steps) {
    if (simulator_->next_event_time() > horizon) break;
    simulator_->run_events(1);
    ++out.steps;
    if (!monitor_->after_step(out.steps)) break;
    if (abort_hook && abort_hook()) {
      out.aborted = true;
      break;
    }
  }
  simulator_->set_schedule_controller(nullptr);

  if (!out.aborted && monitor_->ok()) {
    if (out.steps >= max_steps) {
      // The horizon bounds virtual time, so a step-budget blowout means a
      // same-instant event cascade — report it rather than loop.
      out.violation = true;
      out.problem = "run exceeded step budget (possible zero-delay livelock)";
      out.violation_step = out.steps;
      out.violation_time_us = simulator_->now().as_micros();
      out.outcomes = outcomes_;
      return out;
    }
    std::vector<bool> eligible(config_.servers, true);
    if (injector_) {
      for (std::size_t i = 0; i < config_.servers; ++i) {
        if (injector_->crashed()[i]) eligible[i] = false;
      }
    }
    monitor_->final_checks(eligible, outcomes_);
  }

  out.outcomes = outcomes_;
  if (!monitor_->ok()) {
    out.violation = true;
    out.problem = monitor_->problem();
    out.violation_step = monitor_->violation_step();
    out.violation_time_us = monitor_->violation_time_us();
  }
  return out;
}

}  // namespace marp::check

#include "transport/socket_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <string>
#include <thread>

#include "trace/counters.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace marp::transport {

namespace {

/// Keep at most this many latency samples per link; enough for stable
/// percentiles without unbounded growth on long-lived clusters.
constexpr std::size_t kMaxLinkSamples = 8192;
/// Outstanding transfer-token cap for RTT matching.
constexpr std::size_t kMaxPendingRtt = 1024;

void export_quantiles(trace::CounterRegistry& registry, const std::string& prefix,
                      std::vector<std::int64_t> samples) {
  if (samples.empty()) return;
  std::sort(samples.begin(), samples.end());
  const auto at = [&samples](double p) {
    const std::size_t i = static_cast<std::size_t>(
        p * static_cast<double>(samples.size() - 1) + 0.5);
    return static_cast<std::uint64_t>(std::max<std::int64_t>(0, samples[i]));
  };
  registry.set(prefix + ".count", samples.size());
  registry.set(prefix + ".p50_us", at(0.50));
  registry.set(prefix + ".p90_us", at(0.90));
  registry.set(prefix + ".p99_us", at(0.99));
  registry.set(prefix + ".max_us",
               static_cast<std::uint64_t>(std::max<std::int64_t>(0, samples.back())));
}

// Raw socket helpers. All sockets are blocking; reader tasks park in
// recv() and are unblocked by shutdown(fd) at stop time.

int open_listener(const Endpoint& endpoint) {
  if (endpoint.kind == Endpoint::Kind::Uds) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (endpoint.path.size() >= sizeof(addr.sun_path)) return -1;
    std::strncpy(addr.sun_path, endpoint.path.c_str(), sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    ::unlink(endpoint.path.c_str());  // stale socket from a previous run
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 64) != 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  if (::inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) != 1) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_once(const Endpoint& endpoint) {
  if (endpoint.kind == Endpoint::Kind::Uds) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (endpoint.path.size() >= sizeof(addr.sun_path)) return -1;
    std::strncpy(addr.sun_path, endpoint.path.c_str(), sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(endpoint.port);
  if (::inet_pton(AF_INET, endpoint.host.c_str(), &addr.sin_addr) != 1) return -1;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// Write the whole buffer; EPIPE instead of SIGPIPE.
bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::send(fd, data + done, size - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

/// Read exactly `size` bytes; false on EOF/error.
bool read_all(int fd, std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::recv(fd, data + done, size - done, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    done += static_cast<std::size_t>(n);
  }
  return true;
}

/// Read one whole frame off `fd`. Returns Ok and fills `out`, or the decode
/// status that killed it (Truncated doubles as EOF/IO error).
rpc::DecodeStatus read_frame(int fd, rpc::Frame* out) {
  std::uint8_t header_bytes[rpc::kHeaderSize];
  if (!read_all(fd, header_bytes, rpc::kHeaderSize)) {
    return rpc::DecodeStatus::Truncated;
  }
  rpc::FrameHeader header;
  const rpc::DecodeStatus hs =
      rpc::decode_header(header_bytes, rpc::kHeaderSize, &header);
  if (hs != rpc::DecodeStatus::Ok) return hs;
  serial::Bytes body(header.body_len);
  if (header.body_len > 0 && !read_all(fd, body.data(), body.size())) {
    return rpc::DecodeStatus::Truncated;
  }
  const rpc::DecodeStatus bs = rpc::verify_body(header, body.data(), body.size());
  if (bs != rpc::DecodeStatus::Ok) return bs;
  out->header = header;
  out->body = std::move(body);
  return rpc::DecodeStatus::Ok;
}

}  // namespace

SocketTransport::SocketTransport(SocketTransportConfig config)
    : config_(std::move(config)),
      loss_rng_(config_.loss_seed),
      backoff_rng_(config_.connect_jitter_seed ^
                   (0x9E3779B97F4A7C15ULL * (config_.local + 1))) {
  MARP_REQUIRE(config_.local < config_.peers.size());
}

SocketTransport::~SocketTransport() { stop(); }

void SocketTransport::start(Receiver receiver) {
  MARP_REQUIRE_MSG(!running_.load(), "transport already started");
  receiver_ = std::move(receiver);
  listen_fd_.store(open_listener(config_.peers[config_.local]));
  MARP_ENSURE_MSG(listen_fd_.load() >= 0,
                  "cannot listen on " + config_.peers[config_.local].to_string());
  const std::size_t threads = config_.reader_threads != 0
                                  ? config_.reader_threads
                                  : config_.peers.size() + 8;
  pool_ = std::make_unique<ThreadPool>(threads);
  running_.store(true);
  pool_->submit([this] { accept_loop(); });
}

void SocketTransport::stop() {
  if (!running_.exchange(false)) return;
  // Wake accept() and every parked reader, but only shutdown() descriptors
  // another task is still reading: the reader closes its own conn when its
  // loop exits, so an fd number can never be recycled under a concurrent
  // recv(). Outbound conns have no reader and are closed here.
  const int listen_fd = listen_fd_.load();
  if (listen_fd >= 0) ::shutdown(listen_fd, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(inbound_mutex_);
    for (const ConnPtr& conn : inbound_conns_) shutdown_conn(conn);
  }
  {
    std::lock_guard<std::mutex> lock(peers_mutex_);
    for (auto& [node, conn] : peer_conns_) close_conn(conn);
    peer_conns_.clear();
  }
  pool_.reset();  // joins accept/reader tasks (readers close their conns)
  const int fd = listen_fd_.exchange(-1);
  if (fd >= 0) ::close(fd);
  {
    std::lock_guard<std::mutex> lock(inbound_mutex_);
    inbound_conns_.clear();
  }
  if (config_.peers[config_.local].kind == Endpoint::Kind::Uds) {
    ::unlink(config_.peers[config_.local].path.c_str());
  }
}

void SocketTransport::close_conn(const ConnPtr& conn) {
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  const int fd = conn->fd.exchange(-1);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

void SocketTransport::shutdown_conn(const ConnPtr& conn) {
  const int fd = conn->fd.load();
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

SocketTransport::ConnPtr SocketTransport::peer_conn(net::NodeId dst) {
  if (dst >= config_.peers.size()) return nullptr;
  for (int attempt = 0; attempt < config_.connect_attempts; ++attempt) {
    {
      std::lock_guard<std::mutex> lock(peers_mutex_);
      const auto it = peer_conns_.find(dst);
      if (it != peer_conns_.end() && it->second->fd.load() >= 0) return it->second;
    }
    if (!running_.load()) return nullptr;
    // Dial with peers_mutex_ released: the connect-retry schedule can take
    // seconds, and holding the map lock across it would stall every send to
    // healthy peers (and stop()) behind one unreachable node.
    const int fd = connect_once(config_.peers[dst]);
    if (fd >= 0) {
      std::lock_guard<std::mutex> lock(peers_mutex_);
      if (!running_.load()) {  // stop() swept the map while we dialed
        ::close(fd);
        return nullptr;
      }
      const auto it = peer_conns_.find(dst);
      if (it != peer_conns_.end() && it->second->fd.load() >= 0) {
        ::close(fd);  // lost a dial race; use the established conn
        return it->second;
      }
      auto conn = std::make_shared<Conn>();
      conn->fd.store(fd);
      peer_conns_[dst] = conn;
      {
        std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++stats_.connects;
      }
      return conn;
    }
    // Capped exponential backoff with seeded jitter: early attempts catch a
    // peer that is just (re)starting quickly; later ones settle at the cap,
    // and the [0.5, 1.0) factor keeps a fleet of senders from re-dialing a
    // reincarnating node in lock-step.
    auto wait = config_.connect_backoff;
    for (int i = 0; i < attempt && wait < config_.connect_backoff_cap; ++i) {
      wait *= 2;
    }
    wait = std::min(wait, config_.connect_backoff_cap);
    double jitter;
    {
      std::lock_guard<std::mutex> lock(backoff_mutex_);
      jitter = std::uniform_real_distribution<double>(0.5, 1.0)(backoff_rng_);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(
        std::max<std::int64_t>(1, static_cast<std::int64_t>(
                                      static_cast<double>(wait.count()) * jitter))));
  }
  return nullptr;
}

void SocketTransport::drop_peer_conn(net::NodeId dst, const ConnPtr& conn) {
  close_conn(conn);
  std::lock_guard<std::mutex> lock(peers_mutex_);
  const auto it = peer_conns_.find(dst);
  if (it != peer_conns_.end() && it->second == conn) peer_conns_.erase(it);
}

bool SocketTransport::send_frame(net::NodeId dst, rpc::FrameType type,
                                 const serial::Bytes& body,
                                 std::uint64_t trace_session) {
  const std::uint64_t seq = seq_.fetch_add(1) + 1;
  rpc::TraceContext trace;
  const rpc::TraceContext* trace_ptr = nullptr;
  if (trace_enabled_.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(trace_mutex_);
    if (trace_clock_) {
      trace.session_id = trace_session;
      trace.span_id = seq;
      trace.origin = config_.local;
      trace.send_ts_us = trace_clock_();
      trace_ptr = &trace;
      if (type == rpc::FrameType::AgentTransfer && body.size() >= 8) {
        // Remember this transfer's send stamp so the matching ack yields an
        // offset-free RTT sample. The token is the body's first 8 bytes.
        serial::Reader r(body.data(), 8);
        if (pending_rtt_.size() < kMaxPendingRtt) {
          pending_rtt_[r.u64le()] = {dst, trace.send_ts_us};
        }
      }
    }
  }
  const serial::Bytes encoded =
      rpc::encode_frame(type, config_.local, dst, seq, body,
                        config_.checksum, config_.incarnation, trace_ptr);
  const ConnPtr conn = peer_conn(dst);
  if (!conn) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.send_failures;
    return false;
  }
  bool ok;
  {
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    const int fd = conn->fd.load();
    ok = fd >= 0 && write_all(fd, encoded.data(), encoded.size());
  }
  if (!ok) {
    // Peer vanished mid-stream: drop the connection so the next send
    // re-dials, and let the caller's retry machinery handle this frame.
    drop_peer_conn(dst, conn);
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.send_failures;
    return false;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.frames_sent;
    stats_.bytes_sent += encoded.size();
    if (type == rpc::FrameType::AgentTransfer) ++stats_.agent_frames_sent;
    if (type == rpc::FrameType::AgentTransferAck) ++stats_.agent_acks_sent;
  }
  if (trace_ptr != nullptr) {
    std::lock_guard<std::mutex> lock(trace_mutex_);
    LinkStats& link = link_stats_[dst];
    ++link.frames_sent;
    link.bytes_sent += encoded.size();
  }
  return true;
}

bool SocketTransport::send_message(const net::Message& message) {
  if (config_.send_loss > 0.0) {
    bool lost;
    {
      std::lock_guard<std::mutex> lock(loss_mutex_);
      lost = std::bernoulli_distribution(config_.send_loss)(loss_rng_);
    }
    if (lost) {
      // The frame dies here, as if the wire ate it. Reporting success makes
      // the loss silent to the sender — exactly what the protocol's
      // ack-driven retransmissions exist to survive.
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.loss_injected;
      return true;
    }
  }
  return send_frame(message.dst, rpc::FrameType::AppMessage,
                    rpc::encode_app_body(message));
}

bool SocketTransport::send_agent_frame(net::NodeId dst, const serial::Bytes& frame,
                                       std::uint64_t trace_session) {
  return send_frame(dst, rpc::FrameType::AgentTransfer, frame, trace_session);
}

bool SocketTransport::send_agent_ack(net::NodeId dst, std::uint64_t token) {
  return send_frame(dst, rpc::FrameType::AgentTransferAck,
                    rpc::encode_transfer_ack_body(token));
}

bool SocketTransport::send_announce(net::NodeId dst) {
  return send_frame(dst, rpc::FrameType::Announce,
                    rpc::encode_announce_body(
                        {config_.local, config_.incarnation}));
}

bool SocketTransport::reachable(net::NodeId dst) {
  if (dst >= config_.peers.size()) return false;
  std::lock_guard<std::mutex> lock(peers_mutex_);
  const auto it = peer_conns_.find(dst);
  return it == peer_conns_.end() || it->second->fd.load() >= 0;
}

TransportStats SocketTransport::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void SocketTransport::set_trace_clock(TraceClock clock) {
  std::lock_guard<std::mutex> lock(trace_mutex_);
  trace_clock_ = std::move(clock);
  trace_enabled_.store(static_cast<bool>(trace_clock_),
                       std::memory_order_relaxed);
}

void SocketTransport::note_received(rpc::Frame& frame) {
  if (!trace_enabled_.load(std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(trace_mutex_);
  if (!trace_clock_) return;
  const std::int64_t now = trace_clock_();
  if (frame.trace.has_value()) {
    frame.recv_ts_us = now;
    LinkStats& link = link_stats_[frame.header.src];
    ++link.frames_received;
    link.bytes_received += rpc::kHeaderSize + frame.body.size();
    if (link.owd_us.size() < kMaxLinkSamples) {
      link.owd_us.push_back(now - frame.trace->send_ts_us);
    }
  }
  if (frame.type() == rpc::FrameType::AgentTransferAck && frame.body.size() >= 8) {
    serial::Reader r(frame.body.data(), 8);
    const auto it = pending_rtt_.find(r.u64le());
    if (it != pending_rtt_.end()) {
      LinkStats& link = link_stats_[it->second.first];
      if (link.rtt_us.size() < kMaxLinkSamples) {
        link.rtt_us.push_back(now - it->second.second);
      }
      pending_rtt_.erase(it);
    }
  }
}

void SocketTransport::export_counters(trace::CounterRegistry& registry) const {
  std::lock_guard<std::mutex> lock(trace_mutex_);
  for (const auto& [peer, link] : link_stats_) {
    const std::string prefix = "link." + std::to_string(peer);
    registry.set(prefix + ".frames_sent", link.frames_sent);
    registry.set(prefix + ".bytes_sent", link.bytes_sent);
    registry.set(prefix + ".frames_received", link.frames_received);
    registry.set(prefix + ".bytes_received", link.bytes_received);
    export_quantiles(registry, prefix + ".rtt", link.rtt_us);
    export_quantiles(registry, prefix + ".owd", link.owd_us);
  }
}

void SocketTransport::accept_loop() {
  while (running_.load()) {
    const int listen_fd = listen_fd_.load();
    if (listen_fd < 0) return;
    // Poll with a bounded timeout rather than parking in accept(): stop()
    // only shutdown()s the listener (the close comes after this task has
    // joined), and a shutdown listener is not guaranteed to wake accept()
    // on every platform — the poll timeout bounds the wait either way.
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (!running_.load()) return;
    if (ready <= 0) continue;  // timeout or EINTR — re-check running_
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listener shut down (stop) or fatal
    }
    auto conn = std::make_shared<Conn>();
    conn->fd.store(fd);
    {
      std::lock_guard<std::mutex> lock(inbound_mutex_);
      inbound_conns_.push_back(conn);
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.accepts;
    }
    pool_->submit([this, conn] { reader_loop(conn); });
  }
}

void SocketTransport::reader_loop(ConnPtr conn) {
  // This task owns the descriptor's lifetime: conn->fd stays valid (stop()
  // only shutdown()s it) until the close_conn at the bottom.
  const int fd = conn->fd.load();
  while (fd >= 0 && running_.load()) {
    rpc::Frame frame;
    const rpc::DecodeStatus status = read_frame(fd, &frame);
    if (status == rpc::DecodeStatus::Truncated) {
      break;  // EOF / peer closed — normal end of a connection
    }
    if (status == rpc::DecodeStatus::ChecksumMismatch) {
      // Corrupt body, aligned stream: drop the frame, keep the connection.
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.checksum_rejected;
      continue;
    }
    if (status != rpc::DecodeStatus::Ok) {
      // Bad magic/version/length — the byte stream is garbage from here on.
      MARP_LOG_WARN("transport")
          << "node " << config_.local << ": closing connection on "
          << rpc::decode_status_name(status) << " frame";
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.malformed_rejected;
      break;
    }
    if (rpc::extract_trace_context(&frame) != rpc::DecodeStatus::Ok) {
      // kFlagTrace with a too-short body: the whole body was read, so the
      // stream stays aligned — drop just this frame.
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.malformed_rejected;
      continue;
    }
    note_received(frame);
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.frames_received;
      stats_.bytes_received += rpc::kHeaderSize + frame.body.size();
      if (frame.type() == rpc::FrameType::AgentTransfer) {
        ++stats_.agent_frames_received;
      }
      if (frame.type() == rpc::FrameType::AgentTransferAck) {
        ++stats_.agent_acks_received;
      }
    }
    ReplyFn reply = [conn](const serial::Bytes& encoded) {
      std::lock_guard<std::mutex> lock(conn->write_mutex);
      const int reply_fd = conn->fd.load();
      return reply_fd >= 0 && write_all(reply_fd, encoded.data(), encoded.size());
    };
    receiver_(std::move(frame), std::move(reply));
  }
  close_conn(conn);
}

const char* SocketTransport::rpc_status_name(RpcStatus status) noexcept {
  switch (status) {
    case RpcStatus::Ok: return "ok";
    case RpcStatus::ConnectFailed: return "connect-failed";
    case RpcStatus::SendFailed: return "send-failed";
    case RpcStatus::Timeout: return "timeout";
    case RpcStatus::BadReply: return "bad-reply";
  }
  return "?";
}

SocketTransport::RpcStatus SocketTransport::rpc_call_ex(
    const Endpoint& endpoint, const serial::Bytes& request, rpc::Frame* reply,
    std::chrono::milliseconds timeout) {
  const int fd = connect_once(endpoint);
  if (fd < 0) return RpcStatus::ConnectFailed;
  RpcStatus status = RpcStatus::Ok;
  if (!write_all(fd, request.data(), request.size())) {
    status = RpcStatus::SendFailed;
  } else if (reply != nullptr) {
    const timeval tv{
        static_cast<time_t>(timeout.count() / 1000),
        static_cast<suseconds_t>((timeout.count() % 1000) * 1000)};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    errno = 0;
    if (read_frame(fd, reply) != rpc::DecodeStatus::Ok ||
        rpc::extract_trace_context(reply) != rpc::DecodeStatus::Ok) {
      // SO_RCVTIMEO surfaces as EAGAIN/EWOULDBLOCK out of recv(); anything
      // else (EOF, garbage frame) means the peer answered wrongly or died.
      status = (errno == EAGAIN || errno == EWOULDBLOCK) ? RpcStatus::Timeout
                                                         : RpcStatus::BadReply;
    }
  }
  ::close(fd);
  return status;
}

bool SocketTransport::rpc_call(const Endpoint& endpoint,
                               const serial::Bytes& request, rpc::Frame* reply,
                               std::chrono::milliseconds timeout) {
  return rpc_call_ex(endpoint, request, reply, timeout) == RpcStatus::Ok;
}

}  // namespace marp::transport

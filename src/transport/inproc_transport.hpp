// InProcTransport — the socket transport's shape without the sockets.
//
// An InProcMesh wires N NodeTransports together through direct calls: a send
// encodes a real rpc frame, optionally flips loss/corruption chaos coins,
// then the destination transport decodes and validates it exactly like a
// frame read off a wire. Tests get the full encode → (damage) → decode →
// reject/accept path — checksums, malformed-frame counting, loss-driven
// retransmissions — with zero file descriptors and zero extra threads
// (receivers run on the sender's thread; like socket readers, they must
// only enqueue).
#pragma once

#include <memory>
#include <mutex>
#include <random>
#include <vector>

#include "transport/transport.hpp"

namespace marp::transport {

class InProcMesh;

class InProcTransport final : public NodeTransport {
 public:
  InProcTransport(InProcMesh& mesh, net::NodeId local)
      : mesh_(mesh), local_(local) {}

  void start(Receiver receiver) override;
  void stop() override;

  bool send_message(const net::Message& message) override;
  bool send_agent_frame(net::NodeId dst, const serial::Bytes& frame,
                        std::uint64_t trace_session = 0) override;
  bool send_agent_ack(net::NodeId dst, std::uint64_t token) override;
  bool reachable(net::NodeId dst) override;
  TransportStats stats() const override;

  bool send_announce(net::NodeId dst) override;
  void set_trace_clock(TraceClock clock) override;

  /// Incarnation stamped into outbound frames and Announce bodies (RealNode
  /// sets this when it owns the transport; defaults to first life).
  void set_incarnation(std::uint16_t incarnation) { incarnation_ = incarnation; }

  net::NodeId local() const noexcept { return local_; }

 private:
  friend class InProcMesh;

  /// A frame "arrives off the wire": validate and hand to the receiver.
  void receive_encoded(const serial::Bytes& encoded);
  void note_sent(const serial::Bytes& encoded, rpc::FrameType type);
  /// Fill `out` from the trace clock (if set) and return it, else nullptr.
  const rpc::TraceContext* stamp(rpc::TraceContext* out, std::uint64_t session,
                                 std::uint64_t span);

  InProcMesh& mesh_;
  net::NodeId local_;
  Receiver receiver_;
  std::uint64_t seq_ = 0;
  std::uint16_t incarnation_ = 0;

  mutable std::mutex mutex_;
  bool running_ = false;
  TransportStats stats_;
  TraceClock trace_clock_;
};

/// Owns the N transports and the chaos knobs shared between them.
class InProcMesh {
 public:
  explicit InProcMesh(std::size_t size, bool checksum = true);

  std::size_t size() const noexcept { return nodes_.size(); }
  InProcTransport& node(net::NodeId id) { return *nodes_.at(id); }

  bool checksum() const noexcept { return checksum_; }

  /// Eat outbound AppMessage frames with probability `p` (seeded).
  void set_send_loss(double p, std::uint64_t seed = 1);
  /// Flip one body byte of the next `n` frames (post-checksum) — the
  /// receiver must reject them. A corrupted AgentTransfer is not lost for
  /// good: no ack comes back, so the sending platform revives the agent
  /// after its migration timeout.
  void corrupt_next(std::size_t n) { corrupt_pending_ = n; }
  /// Cut/restore delivery from src to dst (send_message returns true, frame
  /// vanishes; send_agent_frame returns false — a visible migration
  /// failure, as a dead TCP connection would produce).
  void set_link_up(net::NodeId src, net::NodeId dst, bool up);

 private:
  friend class InProcTransport;

  bool deliver(net::NodeId src, net::NodeId dst, serial::Bytes encoded,
               rpc::FrameType type);
  bool roll_loss();

  std::vector<std::unique_ptr<InProcTransport>> nodes_;
  bool checksum_;

  std::mutex mutex_;
  double send_loss_ = 0.0;
  std::mt19937_64 loss_rng_{1};
  std::size_t corrupt_pending_ = 0;
  std::vector<bool> link_up_;
};

}  // namespace marp::transport

#include "transport/cluster.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "agent/platform.hpp"
#include "marp/protocol.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "transport/real_node.hpp"
#include "transport/socket_transport.hpp"

namespace marp::transport {

core::MarpConfig ClusterSpec::marp() const {
  core::MarpConfig config;
  config.reliable_commit = true;
  return config;
}

SubstrateResult run_reference_sim(const ClusterSpec& spec) {
  sim::Simulator simulator(spec.seed);
  net::Network network(simulator,
                       net::make_lan_mesh(spec.nodes, sim::SimTime::micros(500)),
                       std::make_unique<net::ConstantLatency>(sim::SimTime::micros(500)));
  agent::AgentPlatform platform(network);
  core::MarpProtocol protocol(network, platform, spec.marp());

  // The same closed-loop workload RealNode runs: per-origin session chains.
  RealNodeConfig workload;
  workload.keys_per_origin = spec.keys_per_origin;
  workload.shared_keys = spec.shared_keys;

  std::vector<std::uint64_t> next_session(spec.nodes, 0);
  const auto submit = [&](net::NodeId origin, std::uint64_t i) {
    replica::Request request;
    request.id = static_cast<std::uint64_t>(origin) * 1'000'000 + i;
    request.kind = replica::RequestKind::Write;
    request.key = workload_key(workload, origin, i);
    request.value = workload_value(origin, i);
    request.origin = origin;
    request.submitted = simulator.now();
    protocol.submit(request);
  };
  protocol.set_outcome_handler([&](const replica::Outcome& outcome) {
    if (outcome.kind != replica::RequestKind::Write) return;
    const net::NodeId origin = outcome.origin;
    if (++next_session[origin] < spec.sessions_per_node) {
      submit(origin, next_session[origin]);
    }
  });
  for (net::NodeId origin = 0; origin < spec.nodes; ++origin) {
    if (spec.sessions_per_node > 0) submit(origin, 0);
  }
  simulator.run();

  // Reduce through the same NodeDump shape the real cluster reports, so the
  // aggregation/divergence logic is literally shared.
  std::vector<rpc::NodeDump> dumps(spec.nodes);
  for (net::NodeId node = 0; node < spec.nodes; ++node) {
    rpc::NodeDump& d = dumps[node];
    const replica::VersionedStore& store = protocol.server(node).store();
    for (const std::string& key : store.keys()) {
      const auto value = store.read(key);
      if (value) d.items.push_back({key, value->value, value->version.writer});
    }
    for (const auto& applied : store.history()) {
      d.history.push_back({applied.key, applied.version.writer});
    }
  }
  // Protocol-wide counters live once in the sim; pin them on node 0 so the
  // aggregation's sums come out right.
  dumps[0].status.commits = protocol.stats().updates_committed;
  dumps[0].status.aborts = protocol.stats().updates_aborted;
  dumps[0].mutex_violations = protocol.stats().mutex_violations;
  dumps[0].commit_retransmits = protocol.stats().anomalies.commit_retransmits;
  return aggregate_cluster(dumps);
}

SubstrateResult aggregate_cluster(const std::vector<rpc::NodeDump>& dumps) {
  SubstrateResult result;
  result.per_key_writers.resize(dumps.size());
  for (std::size_t node = 0; node < dumps.size(); ++node) {
    const rpc::NodeDump& d = dumps[node];
    result.commits += d.status.commits;
    result.aborts += d.status.aborts;
    result.mutex_violations += d.mutex_violations;
    result.commit_retransmits += d.commit_retransmits;
    result.loss_injected += d.loss_injected;
    for (const auto& applied : d.history) {
      result.per_key_writers[node][applied.key].push_back(applied.writer);
    }
  }
  if (dumps.empty()) return result;

  for (const auto& item : dumps[0].items) result.store[item.key] = item.value;
  for (std::size_t node = 1; node < dumps.size(); ++node) {
    std::map<std::string, std::string> other;
    for (const auto& item : dumps[node].items) other[item.key] = item.value;
    if (other != result.store) {
      result.divergences.push_back("node " + std::to_string(node) +
                                   " store diverges from node 0");
    }
    if (result.per_key_writers[node] != result.per_key_writers[0]) {
      result.order_divergences.push_back("node " + std::to_string(node) +
                                         " per-key apply order diverges from node 0");
    }
  }
  return result;
}

std::vector<std::string> compare_substrates(const SubstrateResult& sim,
                                            const SubstrateResult& real) {
  std::vector<std::string> violations;
  const auto check = [&](bool ok, const std::string& what) {
    if (!ok) violations.push_back(what);
  };
  check(sim.mutex_violations == 0, "sim: mutex violations (Theorem 2 broken)");
  check(real.mutex_violations == 0, "real: mutex violations (Theorem 2 broken)");
  check(sim.divergences.empty(), "sim: replicas diverged");
  check(sim.order_divergences.empty(), "sim: apply orders diverged");
  for (const std::string& d : real.divergences) violations.push_back("real: " + d);
  for (const std::string& d : real.order_divergences) violations.push_back("real: " + d);
  check(sim.commits == real.commits,
        "commit counts differ: sim " + std::to_string(sim.commits) + " vs real " +
            std::to_string(real.commits));
  check(sim.store == real.store, "final stores differ between substrates");
  if (!sim.per_key_writers.empty() && !real.per_key_writers.empty()) {
    check(sim.per_key_writers[0] == real.per_key_writers[0],
          "per-key commit orders differ between substrates");
  }
  return violations;
}

std::vector<std::string> compare_stores(const SubstrateResult& sim,
                                        const SubstrateResult& real,
                                        const ClusterSpec& spec,
                                        const std::vector<bool>& relaxed_origins) {
  std::vector<std::string> violations;
  if (sim.mutex_violations != 0)
    violations.push_back("sim: mutex violations (Theorem 2 broken)");
  if (real.mutex_violations != 0)
    violations.push_back("real: mutex violations (Theorem 2 broken)");
  for (const std::string& d : real.divergences) violations.push_back("real: " + d);

  // Rebuild the workload's key universe: which origin owns each key, and
  // every value that origin's sessions ever write to it.
  RealNodeConfig workload;
  workload.keys_per_origin = spec.keys_per_origin;
  workload.shared_keys = spec.shared_keys;
  std::map<std::string, net::NodeId> key_origin;
  std::map<std::string, std::vector<std::string>> key_values;
  for (net::NodeId origin = 0; origin < spec.nodes; ++origin) {
    for (std::uint64_t s = 0; s < spec.sessions_per_node; ++s) {
      const std::string key = workload_key(workload, origin, s);
      key_origin[key] = origin;
      key_values[key].push_back(workload_value(origin, s));
    }
  }

  for (const auto& [key, sim_value] : sim.store) {
    const auto it = real.store.find(key);
    if (it == real.store.end()) {
      violations.push_back("key '" + key + "' missing from the real store");
      continue;
    }
    const net::NodeId origin = key_origin.count(key) ? key_origin[key] : 0;
    const bool relaxed =
        origin < relaxed_origins.size() && relaxed_origins[origin];
    if (!relaxed) {
      if (it->second != sim_value) {
        violations.push_back("key '" + key + "': real '" + it->second +
                             "' != sim '" + sim_value + "'");
      }
      continue;
    }
    const auto& legal = key_values[key];
    if (std::find(legal.begin(), legal.end(), it->second) == legal.end()) {
      violations.push_back("key '" + key + "': real '" + it->second +
                           "' is not any of origin " + std::to_string(origin) +
                           "'s session values");
    }
  }
  for (const auto& [key, value] : real.store) {
    (void)value;
    if (!sim.store.count(key)) {
      violations.push_back("key '" + key + "' in the real store but not the sim's");
    }
  }
  return violations;
}

// ---- ControlClient ----

namespace {
std::atomic<std::uint64_t> g_xid{1};
}  // namespace

std::optional<serial::Bytes> ControlClient::call(rpc::Proc proc,
                                                 const serial::Bytes& args) {
  const int attempts = policy_.attempts > 0 ? policy_.attempts : 1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      // Capped exponential backoff before each retry: min(b * 2^(k-1), cap).
      auto wait = policy_.backoff * (1LL << (attempt - 1));
      if (wait > policy_.backoff_cap) wait = policy_.backoff_cap;
      if (wait.count() > 0) std::this_thread::sleep_for(wait);
    }
    // Fresh xid per attempt: each attempt is its own connection, and a
    // stale reply can never bleed into a later attempt's stream.
    rpc::ReqHeader req;
    req.xid = g_xid.fetch_add(1);
    req.proc = static_cast<std::uint32_t>(proc);
    req.client = rpc::kControlNode;
    serial::Writer w;
    req.serialize(w);
    for (const std::uint8_t byte : args) w.u8(byte);
    const serial::Bytes request =
        rpc::encode_frame(rpc::FrameType::ControlRequest, rpc::kControlNode, node_,
                          req.xid, w.take());
    rpc::Frame reply;
    last_status_ =
        SocketTransport::rpc_call_ex(endpoint_, request, &reply, policy_.rpc_timeout);
    if (last_status_ != SocketTransport::RpcStatus::Ok) continue;
    if (reply.type() != rpc::FrameType::ControlReply) {
      last_status_ = SocketTransport::RpcStatus::BadReply;
      continue;
    }
    try {
      serial::Reader r(reply.body);
      const rpc::ReplyHeader header = rpc::ReplyHeader::deserialize(r);
      if (header.xid != req.xid || header.status != rpc::kOk) {
        last_status_ = SocketTransport::RpcStatus::BadReply;
        continue;
      }
      return serial::Bytes(
          reply.body.begin() + static_cast<std::ptrdiff_t>(r.position()),
          reply.body.end());
    } catch (const serial::DecodeError&) {
      last_status_ = SocketTransport::RpcStatus::BadReply;
      continue;
    }
  }
  return std::nullopt;
}

bool ControlClient::ping() { return call(rpc::Proc::Ping).has_value(); }

std::optional<rpc::NodeStatus> ControlClient::status() {
  const auto body = call(rpc::Proc::Status);
  if (!body) return std::nullopt;
  try {
    serial::Reader r(*body);
    return rpc::NodeStatus::deserialize(r);
  } catch (const serial::DecodeError&) {
    return std::nullopt;
  }
}

std::optional<rpc::NodeDump> ControlClient::dump() {
  const auto body = call(rpc::Proc::Dump);
  if (!body) return std::nullopt;
  try {
    serial::Reader r(*body);
    return rpc::NodeDump::deserialize(r);
  } catch (const serial::DecodeError&) {
    return std::nullopt;
  }
}

std::optional<rpc::NodeTrace> ControlClient::trace_dump() {
  const auto body = call(rpc::Proc::TraceDump);
  if (!body) return std::nullopt;
  try {
    serial::Reader r(*body);
    return rpc::NodeTrace::deserialize(r);
  } catch (const serial::DecodeError&) {
    return std::nullopt;
  }
}

std::optional<rpc::HeartbeatReply> ControlClient::heartbeat() {
  const auto body = call(rpc::Proc::Heartbeat);
  if (!body) return std::nullopt;
  try {
    serial::Reader r(*body);
    return rpc::HeartbeatReply::deserialize(r);
  } catch (const serial::DecodeError&) {
    last_status_ = SocketTransport::RpcStatus::BadReply;
    return std::nullopt;
  }
}

bool ControlClient::sync_pull() { return call(rpc::Proc::SyncPull).has_value(); }

bool ControlClient::shutdown() { return call(rpc::Proc::Shutdown).has_value(); }

std::optional<std::uint64_t> ControlClient::view_change(bool join,
                                                        net::NodeId target) {
  serial::Writer args;
  args.boolean(join);
  args.varint(target);
  const auto body = call(rpc::Proc::ViewChange, args.bytes());
  if (!body) return std::nullopt;
  try {
    serial::Reader r(*body);
    const bool accepted = r.boolean();
    const std::uint64_t epoch = r.varint();
    if (!accepted) return std::nullopt;
    return epoch;
  } catch (const serial::DecodeError&) {
    last_status_ = SocketTransport::RpcStatus::BadReply;
    return std::nullopt;
  }
}

bool wait_quiesced(std::vector<ControlClient>& clients, long timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    bool all = true;
    for (ControlClient& client : clients) {
      const auto status = client.status();
      if (!status || !status->quiesced) {
        all = false;
        break;
      }
    }
    if (all) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return false;
}

}  // namespace marp::transport

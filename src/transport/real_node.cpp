#include "transport/real_node.hpp"

#include <algorithm>
#include <chrono>

#include "net/topology.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace marp::transport {

namespace {

/// The simulated leg of a real node only carries loopback traffic (agent →
/// local server replies); keep it fast and size-independent.
constexpr std::int64_t kLoopbackDelayUs = 50;

/// Cap on harvested (send, recv) clock-sample pairs; beyond this, alignment
/// quality stops improving and the TraceDump reply just gets fatter.
constexpr std::size_t kMaxNodeLinkSamples = 4096;

}  // namespace

std::string workload_key(const RealNodeConfig& config, net::NodeId origin,
                         std::uint64_t i) {
  const std::uint64_t k = config.keys_per_origin == 0 ? 0 : i % config.keys_per_origin;
  if (config.shared_keys) return "shared/k" + std::to_string(k);
  return "n" + std::to_string(origin) + "/k" + std::to_string(k);
}

std::string workload_value(net::NodeId origin, std::uint64_t i) {
  return "n" + std::to_string(origin) + "-s" + std::to_string(i);
}

RealNode::RealNode(RealNodeConfig config)
    : config_(std::move(config)),
      sim_(config_.seed),
      network_(sim_,
               net::make_lan_mesh(config_.endpoints.size(),
                                  sim::SimTime::micros(kLoopbackDelayUs)),
               std::make_unique<net::ConstantLatency>(
                   sim::SimTime::micros(kLoopbackDelayUs))),
      platform_(network_,
                [this] {
                  agent::PlatformConfig pc;
                  pc.migration_timeout = config_.migration_timeout;
                  return pc;
                }()),
      protocol_(network_, platform_, config_.marp) {
  MARP_REQUIRE(config_.node < config_.endpoints.size());
  // Virtual-time origin. Captured here (not at driver start) because the
  // transport's trace clock reads it from reader threads as soon as frames
  // flow; see driver_loop for the shared-epoch rationale.
  t0_ = std::chrono::steady_clock::now();
  if (config_.clock_epoch_us > 0) {
    const auto epoch = std::chrono::steady_clock::time_point(
        std::chrono::microseconds(config_.clock_epoch_us));
    if (epoch < t0_) t0_ = epoch;
  }
  if (config_.transport_factory) {
    transport_ = config_.transport_factory(config_);
  } else {
    SocketTransportConfig tc;
    tc.local = config_.node;
    tc.peers = config_.endpoints;
    tc.checksum = config_.checksum;
    tc.incarnation = config_.incarnation;
    tc.send_loss = config_.send_loss;
    tc.loss_seed = config_.seed * 7919 + config_.node;
    tc.connect_jitter_seed = config_.seed * 6571 + config_.node;
    transport_ = std::make_unique<SocketTransport>(std::move(tc));
  }
  network_.attach_transport(transport_.get(), config_.node);
  if (config_.trace_capacity > 0) {
    // Same three-way wiring as the simulator runner: platform observer
    // (sessions + migrations), network observer (drops/retransmits), MARP
    // hooks (visits, lock waits, update rounds, commit fan-outs). Span
    // timestamps ride the virtual clock; the transport additionally stamps
    // every wire frame with this node's trace clock for cross-node
    // alignment.
    tracer_ = std::make_unique<trace::Tracer>(sim_, config_.trace_capacity);
    network_.set_observer(tracer_.get());
    platform_.set_observer(tracer_.get());
    protocol_.set_tracer(tracer_.get());
    transport_->set_trace_clock([this] { return trace_clock_now(); });
  }
  peer_incarnation_.assign(config_.endpoints.size(), 0);
  // A reborn node is catching up from the moment it exists — set this
  // before the driver thread starts, or a Status probe landing in between
  // could see recovered sessions + no agents and call the node quiesced
  // before it has announced or pulled a single peer's store.
  catching_up_ = config_.incarnation > 0;

  core::MarpServer& local = protocol_.server(config_.node);
  if (!config_.data_dir.empty()) {
    // Recover BEFORE any frame can arrive: the restored manifest goes in
    // via force() (no history entries, no observer), so nothing already
    // durable is journaled a second time.
    durable_ = std::make_unique<checkpoint::DurableLog>(config_.data_dir,
                                                        config_.node);
    recovered_ = durable_->recover();
    for (const auto& [key, value] : recovered_.manifest) {
      local.store().force(key, value.value, value.version);
      local.raise_applied_high(value.version);
    }
    sessions_completed_ = recovered_.next_session;
    local.store().set_apply_observer(
        [this](const std::string& key, const replica::VersionedValue& value) {
          durable_->append_apply(key, value);
        });
    if (recovered_.had_checkpoint || recovered_.journal_records > 0) {
      MARP_LOG_INFO("realnode")
          << "node " << config_.node << ": recovered " << recovered_.manifest.size()
          << " key(s), " << recovered_.journal_records
          << " journal record(s), epoch " << recovered_.epoch << ", resuming at session "
          << sessions_completed_;
    }
  }
  local.set_sync_listener([this](std::size_t applied) {
    ++catchup_merges_;
    (void)applied;
  });

  protocol_.set_outcome_handler([this](const replica::Outcome& outcome) {
    if (outcome.kind != replica::RequestKind::Write) return;
    const std::uint64_t session = outcome.request_id % 1'000'000;
    // Only the outcome of the session currently in flight moves the loop:
    // late REPORTs of a session a previous life (or an earlier retry)
    // already finished must not double-advance it.
    if (session != sessions_completed_) return;
    last_progress_ = sim_.now();
    if (!outcome.success) {
      ++sessions_failed_;
      ++session_retries_;
      // Aborted (update lost its race, or every quorum attempt ran out):
      // retry the same session after a beat — the workload contract is
      // "every session eventually commits".
      sim_.schedule(sim::SimTime::millis(50), [this, session] {
        if (session == sessions_completed_) submit_session(session);
      });
      return;
    }
    ++sessions_completed_;
    if (durable_) durable_->append_session_done(session);
    if (sessions_completed_ < config_.sessions) {
      submit_session(sessions_completed_);
    }
  });
}

RealNode::~RealNode() {
  request_stop();
  join();
  transport_->stop();
}

void RealNode::run() {
  transport_->start([this](rpc::Frame&& frame, NodeTransport::ReplyFn reply) {
    std::lock_guard<std::mutex> lock(inbox_mutex_);
    if (stop_requested_) return;
    inbox_.push_back({std::move(frame), std::move(reply)});
    inbox_cv_.notify_one();
  });
  driver_loop();
  if (durable_) {
    // Parting checkpoint: a clean shutdown leaves a snapshot + empty
    // journal, so the next life replays nothing.
    std::lock_guard<std::mutex> state(state_mutex_);
    checkpoint_now();
  }
  transport_->stop();
}

void RealNode::checkpoint_now() {
  if (!durable_ || durable_->pending_records() == 0) return;
  checkpoint::Manifest manifest;
  const replica::VersionedStore& store = protocol_.server(config_.node).store();
  for (const std::string& key : store.keys()) {
    if (const auto value = store.read(key)) manifest.emplace(key, *value);
  }
  if (!durable_->checkpoint(manifest, sessions_completed_)) {
    MARP_LOG_WARN("realnode") << "node " << config_.node
                              << ": checkpoint write failed (journal kept)";
  }
}

void RealNode::start() {
  MARP_REQUIRE_MSG(!thread_.joinable(), "node already started");
  thread_ = std::thread([this] { run(); });
}

void RealNode::join() {
  if (thread_.joinable()) thread_.join();
}

void RealNode::request_stop() {
  std::lock_guard<std::mutex> lock(inbox_mutex_);
  stop_requested_ = true;
  inbox_cv_.notify_one();
}

void RealNode::submit_session(std::uint64_t i) {
  replica::Request request;
  request.id = static_cast<std::uint64_t>(config_.node) * 1'000'000 + i;
  request.kind = replica::RequestKind::Write;
  request.key = workload_key(config_, config_.node, i);
  request.value = workload_value(config_.node, i);
  request.origin = config_.node;
  request.submitted = sim_.now();
  ++next_request_id_;
  last_progress_ = sim_.now();
  protocol_.submit(request);
}

void RealNode::begin_workload() {
  catching_up_ = false;
  last_progress_ = sim_.now();
  if (sessions_completed_ < config_.sessions) {
    submit_session(sessions_completed_);
  }
}

void RealNode::sync_pull_tick() {
  catchup_pulls_ += protocol_.server(config_.node).sync_pull(1);
  sim_.schedule(config_.sync_pull_interval, [this] { sync_pull_tick(); });
}

void RealNode::checkpoint_tick() {
  checkpoint_now();
  sim_.schedule(config_.checkpoint_interval, [this] { checkpoint_tick(); });
}

void RealNode::watchdog_tick() {
  // A dead remote host takes the visiting agent with it; its origin would
  // otherwise wait forever for an outcome nobody will send.
  if (!catching_up_ && sessions_completed_ < config_.sessions &&
      sim_.now().as_micros() - last_progress_.as_micros() >=
          config_.session_retry_timeout.as_micros()) {
    ++session_retries_;
    MARP_LOG_WARN("realnode")
        << "node " << config_.node << ": session " << sessions_completed_
        << " stalled for " << config_.session_retry_timeout.as_micros() / 1000
        << " ms, resubmitting";
    submit_session(sessions_completed_);
  }
  sim_.schedule(
      sim::SimTime::micros(std::max<std::int64_t>(
          1, config_.session_retry_timeout.as_micros() / 2)),
      [this] { watchdog_tick(); });
}

void RealNode::driver_loop() {
  using Clock = std::chrono::steady_clock;
  // Shared virtual-clock epoch: every cluster member measures virtual time
  // from the same steady_clock instant (supervisor-chosen), so a
  // reincarnated process resumes with its clock AHEAD of where its previous
  // life stopped — commit Version timestamps keep increasing across a crash
  // and the Thomas write rule never rejects a reborn node's writes. The
  // origin t0_ is computed in the constructor (the transport's trace clock
  // shares it).
  const auto virt = [this] {
    return sim::SimTime::micros(std::chrono::duration_cast<std::chrono::microseconds>(
                                    Clock::now() - t0_)
                                    .count());
  };

  {
    std::lock_guard<std::mutex> state(state_mutex_);
    // With a shared epoch the virtual clock starts far past zero — bring
    // the sim up to date BEFORE scheduling, so delays below are relative to
    // the current virtual now rather than elapsing instantly.
    sim_.run(virt());
    last_progress_ = sim_.now();
    if (config_.incarnation > 0) catching_up_ = true;
    sim_.schedule(config_.start_delay, [this] {
      if (config_.incarnation == 0) {
        begin_workload();
        return;
      }
      // Reincarnation rejoin: raise every peer's fence floor first, then
      // pull every live peer's store, and only re-enter the workload after
      // the catch-up window — a node that missed COMMIT fan-outs while dead
      // must not write (or serve protocol traffic as current) off a stale
      // store any longer than necessary.
      for (net::NodeId peer = 0; peer < config_.endpoints.size(); ++peer) {
        if (peer != config_.node) transport_->send_announce(peer);
      }
      catchup_pulls_ +=
          protocol_.server(config_.node).sync_pull(config_.endpoints.size() - 1);
      sim_.schedule(config_.catchup_delay, [this] { begin_workload(); });
    });
    if (config_.sync_pull_interval.as_micros() > 0) {
      sim_.schedule(config_.sync_pull_interval, [this] { sync_pull_tick(); });
    }
    if (durable_ && config_.checkpoint_interval.as_micros() > 0) {
      sim_.schedule(config_.checkpoint_interval, [this] { checkpoint_tick(); });
    }
    if (config_.session_retry_timeout.as_micros() > 0) {
      sim_.schedule(config_.session_retry_timeout, [this] { watchdog_tick(); });
    }
  }

  std::unique_lock<std::mutex> lock(inbox_mutex_);
  while (!stop_requested_) {
    std::deque<Incoming> batch;
    batch.swap(inbox_);
    lock.unlock();
    {
      std::lock_guard<std::mutex> state(state_mutex_);
      // Catch the virtual clock up first so injected deliveries (and the
      // timers their handlers arm) are stamped with the current wall time,
      // then run whatever they made due.
      sim_.run(virt());
      for (Incoming& incoming : batch) apply(std::move(incoming));
      sim_.run(virt());
    }
    lock.lock();
    if (stop_requested_ || !inbox_.empty()) continue;
    // Only the driver thread mutates the event queue, so peeking at it
    // without state_mutex_ is safe here.
    if (sim_.idle()) {
      inbox_cv_.wait_for(lock, std::chrono::milliseconds(100));
    } else {
      const auto wake =
          t0_ + std::chrono::microseconds(sim_.next_event_time().as_micros());
      inbox_cv_.wait_until(lock, wake);
    }
  }
}

bool RealNode::admit_incarnation(const rpc::FrameHeader& header) {
  if (header.src >= peer_incarnation_.size()) return true;  // control clients
  std::uint16_t& floor = peer_incarnation_[header.src];
  if (header.incarnation < floor) {
    // A frame from a dead incarnation of this peer, delivered late (a
    // connection the kernel kept buffered past the SIGKILL, or a racing
    // retransmit). The reborn peer has already announced a higher life;
    // letting the old one speak would leak pre-crash state into the
    // post-crash cluster.
    ++stale_incarnation_rejected_;
    return false;
  }
  floor = std::max(floor, header.incarnation);
  return true;
}

void RealNode::apply(Incoming incoming) {
  if (tracer_ && incoming.frame.trace.has_value() &&
      incoming.frame.recv_ts_us >= 0 &&
      incoming.frame.header.src < config_.endpoints.size()) {
    // One (send, recv) timestamp pair per traced inbound frame. recv_ts was
    // stamped on the transport reader thread — before inbox queueing — so
    // the pair measures the wire, not this node's scheduling backlog.
    if (link_samples_.size() < kMaxNodeLinkSamples) {
      link_samples_.push_back({incoming.frame.header.src,
                               incoming.frame.trace->send_ts_us,
                               incoming.frame.recv_ts_us});
    } else {
      ++link_samples_dropped_;
    }
  }
  switch (incoming.frame.type()) {
    case rpc::FrameType::Announce: {
      try {
        const rpc::AnnounceBody announce =
            rpc::decode_announce_body(incoming.frame.body);
        if (announce.node < peer_incarnation_.size()) {
          peer_incarnation_[announce.node] =
              std::max(peer_incarnation_[announce.node], announce.incarnation);
          MARP_LOG_INFO("realnode")
              << "node " << config_.node << ": peer " << announce.node
              << " announced incarnation " << announce.incarnation;
        }
      } catch (const serial::DecodeError& e) {
        MARP_LOG_WARN("realnode")
            << "node " << config_.node << ": malformed announce: " << e.what();
      }
      return;
    }
    case rpc::FrameType::AppMessage: {
      if (!admit_incarnation(incoming.frame.header)) return;
      try {
        net::Message message =
            rpc::decode_app_body(incoming.frame.header, incoming.frame.body);
        if (message.dst != config_.node || message.src >= network_.size()) {
          MARP_LOG_WARN("realnode") << "node " << config_.node
                                    << ": misrouted frame dropped";
          return;
        }
        network_.inject(std::move(message));
      } catch (const serial::DecodeError& e) {
        MARP_LOG_WARN("realnode")
            << "node " << config_.node << ": malformed app body: " << e.what();
      }
      return;
    }
    case rpc::FrameType::AgentTransfer: {
      if (!admit_incarnation(incoming.frame.header)) return;
      try {
        const auto transfer = platform_.receive_remote_transfer(incoming.frame.body);
        // Ack even a deduped duplicate — the agent is live here either way,
        // and the sender must cancel its revival timer.
        transport_->send_agent_ack(incoming.frame.header.src, transfer.token);
      } catch (const serial::DecodeError& e) {
        // The frame passed the checksum but the body would not rehydrate —
        // drop it WITHOUT acking, so the sender's always-armed migration
        // timer revives the agent there.
        MARP_LOG_WARN("realnode")
            << "node " << config_.node << ": malformed agent frame: " << e.what();
      }
      return;
    }
    case rpc::FrameType::AgentTransferAck: {
      if (!admit_incarnation(incoming.frame.header)) return;
      try {
        platform_.acknowledge_remote_transfer(
            rpc::decode_transfer_ack_body(incoming.frame.body));
      } catch (const serial::DecodeError& e) {
        MARP_LOG_WARN("realnode")
            << "node " << config_.node << ": malformed transfer ack: " << e.what();
      }
      return;
    }
    case rpc::FrameType::ControlRequest:
      handle_control(incoming.frame, incoming.reply);
      return;
    case rpc::FrameType::ControlReply:
      return;  // nodes never originate control calls
  }
}

void RealNode::handle_control(const rpc::Frame& frame,
                              const NodeTransport::ReplyFn& reply) {
  rpc::ReqHeader req;
  try {
    serial::Reader r(frame.body);
    req = rpc::ReqHeader::deserialize(r);
  } catch (const serial::DecodeError&) {
    return;  // no xid to echo — nothing useful to reply
  }

  serial::Writer w;
  rpc::ReplyHeader reply_header;
  reply_header.xid = req.xid;
  bool shutdown = false;
  switch (static_cast<rpc::Proc>(req.proc)) {
    case rpc::Proc::Ping:
      break;
    case rpc::Proc::Status: {
      rpc::ReplyHeader h{req.xid, rpc::kOk};
      h.serialize(w);
      status_locked().serialize(w);
      if (reply) {
        reply(rpc::encode_frame(rpc::FrameType::ControlReply, config_.node,
                                frame.header.src, req.xid, w.take(),
                                config_.checksum));
      }
      return;
    }
    case rpc::Proc::Dump: {
      rpc::ReplyHeader h{req.xid, rpc::kOk};
      h.serialize(w);
      dump_locked().serialize(w);
      if (reply) {
        reply(rpc::encode_frame(rpc::FrameType::ControlReply, config_.node,
                                frame.header.src, req.xid, w.take(),
                                config_.checksum));
      }
      return;
    }
    case rpc::Proc::TraceDump: {
      rpc::ReplyHeader h{req.xid, rpc::kOk};
      h.serialize(w);
      trace_locked().serialize(w);
      if (reply) {
        reply(rpc::encode_frame(rpc::FrameType::ControlReply, config_.node,
                                frame.header.src, req.xid, w.take(),
                                config_.checksum));
      }
      return;
    }
    case rpc::Proc::Heartbeat: {
      rpc::ReplyHeader h{req.xid, rpc::kOk};
      h.serialize(w);
      rpc::HeartbeatReply beat;
      beat.incarnation = config_.incarnation;
      beat.sessions_completed = sessions_completed_;
      beat.live_agents = platform_.live_agents();
      beat.quiesced = status_locked().quiesced;
      beat.serialize(w);
      if (reply) {
        reply(rpc::encode_frame(rpc::FrameType::ControlReply, config_.node,
                                frame.header.src, req.xid, w.take(),
                                config_.checksum, config_.incarnation));
      }
      return;
    }
    case rpc::Proc::SyncPull:
      // Harness convergence barrier: pull from every live peer right now,
      // so a node that missed a gave-up COMMIT converges before final dumps
      // instead of at its leisurely periodic pull.
      catchup_pulls_ +=
          protocol_.server(config_.node).sync_pull(config_.endpoints.size() - 1);
      break;
    case rpc::Proc::Shutdown:
      shutdown = true;
      break;
    case rpc::Proc::ViewChange: {
      // The harness nominates this node as coordinator of a membership
      // epoch bump. Safe to drive the protocol directly: control frames are
      // handled on the driver thread that owns the whole stack. The propose
      // → ack → activate rounds then ride the real transport like any other
      // protocol traffic.
      bool join = false;
      net::NodeId target = net::kInvalidNode;
      bool parsed = true;
      try {
        serial::Reader args(frame.body);
        rpc::ReqHeader::deserialize(args);
        join = args.boolean();
        target = static_cast<net::NodeId>(args.varint());
      } catch (const serial::DecodeError&) {
        parsed = false;
      }
      bool accepted = false;
      if (parsed) {
        accepted = join ? protocol_.request_join(target)
                        : protocol_.request_leave(target);
      } else {
        reply_header.status = rpc::kError;
      }
      reply_header.serialize(w);
      w.boolean(accepted);
      // Installed epoch at accept time; the activation lands one higher once
      // the propose gathers its acks.
      w.varint(protocol_.membership_enabled()
                   ? protocol_.server(config_.node).view().epoch
                   : 0);
      if (reply) {
        reply(rpc::encode_frame(rpc::FrameType::ControlReply, config_.node,
                                frame.header.src, req.xid, w.take(),
                                config_.checksum));
      }
      return;
    }
    default:
      reply_header.status = rpc::kBadProc;
      break;
  }
  reply_header.serialize(w);
  if (reply) {
    reply(rpc::encode_frame(rpc::FrameType::ControlReply, config_.node,
                            frame.header.src, req.xid, w.take(),
                            config_.checksum));
  }
  if (shutdown) request_stop();
}

rpc::NodeStatus RealNode::status() {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return status_locked();
}

rpc::NodeDump RealNode::dump() {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return dump_locked();
}

rpc::NodeStatus RealNode::status_locked() {
  rpc::NodeStatus s;
  s.sessions_target = config_.sessions;
  s.sessions_completed = sessions_completed_;
  s.commits = protocol_.stats().updates_committed;
  s.aborts = protocol_.stats().updates_aborted;
  s.live_agents = platform_.live_agents();
  s.quiesced = sessions_completed_ >= config_.sessions && s.live_agents == 0 &&
               !catching_up_;
  s.incarnation = config_.incarnation;
  s.catching_up = catching_up_;
  if (protocol_.membership_enabled()) {
    const core::MarpServer& local = protocol_.server(config_.node);
    s.epoch = local.view().epoch;
    s.retired = local.retired();
    // A joiner mid-anti-entropy is not settled even with no local workload.
    s.catching_up = s.catching_up || local.catching_up();
    s.quiesced = s.quiesced && !local.catching_up();
  }
  return s;
}

rpc::NodeDump RealNode::dump_locked() {
  rpc::NodeDump d;
  d.status = status_locked();

  const replica::VersionedStore& store =
      protocol_.server(config_.node).store();
  for (const std::string& key : store.keys()) {
    const auto value = store.read(key);
    if (!value) continue;
    d.items.push_back({key, value->value, value->version.writer});
  }
  for (const auto& applied : store.history()) {
    d.history.push_back({applied.key, applied.version.writer});
  }

  const core::MarpStats& stats = protocol_.stats();
  d.mutex_violations = stats.mutex_violations;
  d.commit_retransmits = stats.anomalies.commit_retransmits;
  d.report_retransmits = stats.anomalies.report_retransmits;
  d.release_retransmits = stats.anomalies.release_retransmits;
  d.anomalies_total = stats.anomalies.total();

  const TransportStats ts = transport_->stats();
  d.frames_sent = ts.frames_sent;
  d.frames_received = ts.frames_received;
  d.agent_frames_sent = ts.agent_frames_sent;
  d.agent_frames_received = ts.agent_frames_received;
  d.agent_acks_sent = ts.agent_acks_sent;
  d.agent_acks_received = ts.agent_acks_received;
  d.agent_transfers_revived = platform_.stats().migrations_failed;
  d.agent_transfers_deduped = platform_.stats().remote_transfers_deduped;
  d.loss_injected = ts.loss_injected;
  d.checksum_rejected = ts.checksum_rejected;
  d.malformed_rejected = ts.malformed_rejected;
  d.send_failures = ts.send_failures;

  d.agent_transfers_pending = platform_.pending_remote_transfers();
  d.stale_incarnation_rejected = stale_incarnation_rejected_;
  d.checkpoint_epoch = durable_ ? durable_->epoch() : 0;
  d.checkpoints_written = durable_ ? durable_->checkpoints_written() : 0;
  d.journal_appends = durable_ ? durable_->journal_appends() : 0;
  d.journal_records_replayed = recovered_.journal_records;
  d.journal_tail_truncated = recovered_.journal_truncated;
  d.checkpoint_rejected = recovered_.checkpoint_rejected;
  d.catchup_pulls = catchup_pulls_;
  d.catchup_merges = catchup_merges_;
  d.session_retries = session_retries_;
  d.agents_lease_purged = stats.agents_lease_purged;
  d.counters = counters_locked().entries();
  return d;
}

rpc::NodeTrace RealNode::trace_dump() {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return trace_locked();
}

trace::CounterRegistry RealNode::counters() {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return counters_locked();
}

std::int64_t RealNode::trace_clock_now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - t0_)
             .count() +
         config_.trace_skew_us;
}

rpc::NodeTrace RealNode::trace_locked() {
  rpc::NodeTrace t;
  t.node = config_.node;
  t.incarnation = config_.incarnation;
  t.link_samples = link_samples_;
  t.samples_dropped = link_samples_dropped_;
  if (!tracer_) return t;
  t.spans_dropped = tracer_->dropped();
  const auto flatten = [this](const trace::SpanRecord& r, std::int64_t end_us) {
    rpc::NodeTrace::Span s;
    // Span timestamps ride the virtual clock (steady_clock − t0_); shift
    // them onto the node's trace-clock axis so they are directly comparable
    // with the wire send/recv stamps the merge step aligns against.
    s.start_us = r.start_us + config_.trace_skew_us;
    s.end_us = end_us;
    s.kind = static_cast<std::uint8_t>(r.kind);
    s.node = r.node;
    s.agent_origin = r.agent.origin;
    s.agent_created_us = r.agent.created_us;
    s.agent_seq = r.agent.seq;
    s.aux = r.aux;
    s.aux2 = r.aux2;
    return s;
  };
  const std::vector<trace::SpanRecord> records = tracer_->records();
  const std::vector<trace::SpanRecord> open = tracer_->open_records();
  t.spans.reserve(records.size() + open.size());
  for (const trace::SpanRecord& r : records) {
    t.spans.push_back(flatten(r, r.end_us + config_.trace_skew_us));
  }
  for (const trace::SpanRecord& r : open) {
    t.spans.push_back(flatten(r, rpc::NodeTrace::kOpenEnd));
  }
  return t;
}

trace::CounterRegistry RealNode::counters_locked() {
  // Mirrors runner::build_counter_registry's namespaces so marp_node
  // --counters and NodeDump.counters read like marp_sim --counters, then
  // adds the real-wire extras (net.real.*, link.*, run.session_retries…).
  trace::CounterRegistry reg;
  reg.set("run.sessions_target", config_.sessions);
  reg.set("run.sessions_completed", sessions_completed_);
  reg.set("run.sessions_failed", sessions_failed_);
  reg.set("run.session_retries", session_retries_);

  const net::TrafficStats& net = network_.stats();
  reg.set("net.messages_sent", net.messages_sent);
  reg.set("net.messages_delivered", net.messages_delivered);
  reg.set("net.messages_dropped", net.messages_dropped);
  reg.set("net.bytes_sent", net.bytes_sent);

  const agent::PlatformStats& ag = platform_.stats();
  reg.set("agent.created", ag.agents_created);
  reg.set("agent.disposed", ag.agents_disposed);
  reg.set("agent.migrations_started", ag.migrations_started);
  reg.set("agent.migrations_completed", ag.migrations_completed);
  reg.set("agent.migrations_failed", ag.migrations_failed);
  reg.set("agent.migration_bytes", ag.migration_bytes);
  reg.set("agent.remote_transfers_acked", ag.remote_transfers_acked);
  reg.set("agent.remote_transfers_deduped", ag.remote_transfers_deduped);

  const core::MarpStats& marp = protocol_.stats();
  reg.set("marp.updates_committed", marp.updates_committed);
  reg.set("marp.updates_aborted", marp.updates_aborted);
  reg.set("marp.update_attempts", marp.update_attempts);
  reg.set("marp.reads_served", marp.reads_served);
  reg.set("marp.lock_requeues", marp.lock_requeues);
  reg.set("marp.mutex_violations", marp.mutex_violations);

  const core::ProtocolAnomalies& anomaly = marp.anomalies;
  reg.set("marp.anomaly.stale_acks", anomaly.stale_acks);
  reg.set("marp.anomaly.stale_updates", anomaly.stale_updates);
  reg.set("marp.anomaly.duplicate_updates", anomaly.duplicate_updates);
  reg.set("marp.anomaly.duplicate_commits", anomaly.duplicate_commits);
  reg.set("marp.anomaly.duplicate_reports", anomaly.duplicate_reports);
  reg.set("marp.anomaly.orphaned_reports", anomaly.orphaned_reports);
  reg.set("marp.anomaly.commit_retransmits", anomaly.commit_retransmits);
  reg.set("marp.anomaly.report_retransmits", anomaly.report_retransmits);
  reg.set("marp.anomaly.release_retransmits", anomaly.release_retransmits);

  const TransportStats ts = transport_->stats();
  reg.set("net.real.frames_sent", ts.frames_sent);
  reg.set("net.real.frames_received", ts.frames_received);
  reg.set("net.real.bytes_sent", ts.bytes_sent);
  reg.set("net.real.bytes_received", ts.bytes_received);
  reg.set("net.real.agent_frames_sent", ts.agent_frames_sent);
  reg.set("net.real.agent_frames_received", ts.agent_frames_received);
  reg.set("net.real.agent_acks_sent", ts.agent_acks_sent);
  reg.set("net.real.agent_acks_received", ts.agent_acks_received);
  reg.set("net.real.loss_injected", ts.loss_injected);
  reg.set("net.real.checksum_rejected", ts.checksum_rejected);
  reg.set("net.real.malformed_rejected", ts.malformed_rejected);
  reg.set("net.real.send_failures", ts.send_failures);
  reg.set("net.real.stale_incarnation_rejected", stale_incarnation_rejected_);

  reg.set("fault.checkpoints_written",
          durable_ ? durable_->checkpoints_written() : 0);
  reg.set("fault.journal_appends", durable_ ? durable_->journal_appends() : 0);
  reg.set("fault.journal_records_replayed", recovered_.journal_records);
  reg.set("fault.catchup_pulls", catchup_pulls_);
  reg.set("fault.catchup_merges", catchup_merges_);

  if (tracer_) {
    reg.set("trace.spans_recorded", tracer_->size());
    reg.set("trace.spans_dropped", tracer_->dropped());
    reg.set("trace.open_spans", tracer_->open_spans());
    reg.set("trace.unmatched_ends", tracer_->unmatched_ends());
    reg.set("trace.link_samples", link_samples_.size());
    reg.set("trace.link_samples_dropped", link_samples_dropped_);
  }

  // Per-link link.<peer>.* tallies and RTT/OWD quantiles live in the
  // transport (sampled on its threads); merge them in last.
  transport_->export_counters(reg);
  return reg;
}

}  // namespace marp::transport

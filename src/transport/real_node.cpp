#include "transport/real_node.hpp"

#include <chrono>

#include "net/topology.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace marp::transport {

namespace {

/// The simulated leg of a real node only carries loopback traffic (agent →
/// local server replies); keep it fast and size-independent.
constexpr std::int64_t kLoopbackDelayUs = 50;

}  // namespace

std::string workload_key(const RealNodeConfig& config, net::NodeId origin,
                         std::uint64_t i) {
  const std::uint64_t k = config.keys_per_origin == 0 ? 0 : i % config.keys_per_origin;
  if (config.shared_keys) return "shared/k" + std::to_string(k);
  return "n" + std::to_string(origin) + "/k" + std::to_string(k);
}

std::string workload_value(net::NodeId origin, std::uint64_t i) {
  return "n" + std::to_string(origin) + "-s" + std::to_string(i);
}

RealNode::RealNode(RealNodeConfig config)
    : config_(std::move(config)),
      sim_(config_.seed),
      network_(sim_,
               net::make_lan_mesh(config_.endpoints.size(),
                                  sim::SimTime::micros(kLoopbackDelayUs)),
               std::make_unique<net::ConstantLatency>(
                   sim::SimTime::micros(kLoopbackDelayUs))),
      platform_(network_,
                [this] {
                  agent::PlatformConfig pc;
                  pc.migration_timeout = config_.migration_timeout;
                  return pc;
                }()),
      protocol_(network_, platform_, config_.marp),
      transport_([this] {
        SocketTransportConfig tc;
        tc.local = config_.node;
        tc.peers = config_.endpoints;
        tc.checksum = config_.checksum;
        tc.send_loss = config_.send_loss;
        tc.loss_seed = config_.seed * 7919 + config_.node;
        return tc;
      }()) {
  MARP_REQUIRE(config_.node < config_.endpoints.size());
  network_.attach_transport(&transport_, config_.node);
  protocol_.set_outcome_handler([this](const replica::Outcome& outcome) {
    if (outcome.kind != replica::RequestKind::Write) return;
    ++sessions_completed_;
    if (!outcome.success) ++sessions_failed_;
    if (sessions_completed_ < config_.sessions) {
      submit_session(sessions_completed_);
    }
  });
}

RealNode::~RealNode() {
  request_stop();
  join();
  transport_.stop();
}

void RealNode::run() {
  transport_.start([this](rpc::Frame&& frame, NodeTransport::ReplyFn reply) {
    std::lock_guard<std::mutex> lock(inbox_mutex_);
    if (stop_requested_) return;
    inbox_.push_back({std::move(frame), std::move(reply)});
    inbox_cv_.notify_one();
  });
  driver_loop();
  transport_.stop();
}

void RealNode::start() {
  MARP_REQUIRE_MSG(!thread_.joinable(), "node already started");
  thread_ = std::thread([this] { run(); });
}

void RealNode::join() {
  if (thread_.joinable()) thread_.join();
}

void RealNode::request_stop() {
  std::lock_guard<std::mutex> lock(inbox_mutex_);
  stop_requested_ = true;
  inbox_cv_.notify_one();
}

void RealNode::submit_session(std::uint64_t i) {
  replica::Request request;
  request.id = static_cast<std::uint64_t>(config_.node) * 1'000'000 + i;
  request.kind = replica::RequestKind::Write;
  request.key = workload_key(config_, config_.node, i);
  request.value = workload_value(config_.node, i);
  request.origin = config_.node;
  request.submitted = sim_.now();
  ++next_request_id_;
  protocol_.submit(request);
}

void RealNode::driver_loop() {
  using Clock = std::chrono::steady_clock;
  const auto t0 = Clock::now();
  const auto virt = [&t0] {
    return sim::SimTime::micros(std::chrono::duration_cast<std::chrono::microseconds>(
                                    Clock::now() - t0)
                                    .count());
  };

  {
    std::lock_guard<std::mutex> state(state_mutex_);
    sim_.schedule(config_.start_delay, [this] {
      if (config_.sessions > 0) submit_session(0);
    });
  }

  std::unique_lock<std::mutex> lock(inbox_mutex_);
  while (!stop_requested_) {
    std::deque<Incoming> batch;
    batch.swap(inbox_);
    lock.unlock();
    {
      std::lock_guard<std::mutex> state(state_mutex_);
      // Catch the virtual clock up first so injected deliveries (and the
      // timers their handlers arm) are stamped with the current wall time,
      // then run whatever they made due.
      sim_.run(virt());
      for (Incoming& incoming : batch) apply(std::move(incoming));
      sim_.run(virt());
    }
    lock.lock();
    if (stop_requested_ || !inbox_.empty()) continue;
    // Only the driver thread mutates the event queue, so peeking at it
    // without state_mutex_ is safe here.
    if (sim_.idle()) {
      inbox_cv_.wait_for(lock, std::chrono::milliseconds(100));
    } else {
      const auto wake =
          t0 + std::chrono::microseconds(sim_.next_event_time().as_micros());
      inbox_cv_.wait_until(lock, wake);
    }
  }
}

void RealNode::apply(Incoming incoming) {
  switch (incoming.frame.type()) {
    case rpc::FrameType::AppMessage: {
      try {
        net::Message message =
            rpc::decode_app_body(incoming.frame.header, incoming.frame.body);
        if (message.dst != config_.node || message.src >= network_.size()) {
          MARP_LOG_WARN("realnode") << "node " << config_.node
                                    << ": misrouted frame dropped";
          return;
        }
        network_.inject(std::move(message));
      } catch (const serial::DecodeError& e) {
        MARP_LOG_WARN("realnode")
            << "node " << config_.node << ": malformed app body: " << e.what();
      }
      return;
    }
    case rpc::FrameType::AgentTransfer: {
      try {
        const auto transfer = platform_.receive_remote_transfer(incoming.frame.body);
        // Ack even a deduped duplicate — the agent is live here either way,
        // and the sender must cancel its revival timer.
        transport_.send_agent_ack(incoming.frame.header.src, transfer.token);
      } catch (const serial::DecodeError& e) {
        // The frame passed the checksum but the body would not rehydrate —
        // drop it WITHOUT acking, so the sender's always-armed migration
        // timer revives the agent there.
        MARP_LOG_WARN("realnode")
            << "node " << config_.node << ": malformed agent frame: " << e.what();
      }
      return;
    }
    case rpc::FrameType::AgentTransferAck: {
      try {
        platform_.acknowledge_remote_transfer(
            rpc::decode_transfer_ack_body(incoming.frame.body));
      } catch (const serial::DecodeError& e) {
        MARP_LOG_WARN("realnode")
            << "node " << config_.node << ": malformed transfer ack: " << e.what();
      }
      return;
    }
    case rpc::FrameType::ControlRequest:
      handle_control(incoming.frame, incoming.reply);
      return;
    case rpc::FrameType::ControlReply:
      return;  // nodes never originate control calls
  }
}

void RealNode::handle_control(const rpc::Frame& frame,
                              const NodeTransport::ReplyFn& reply) {
  rpc::ReqHeader req;
  try {
    serial::Reader r(frame.body);
    req = rpc::ReqHeader::deserialize(r);
  } catch (const serial::DecodeError&) {
    return;  // no xid to echo — nothing useful to reply
  }

  serial::Writer w;
  rpc::ReplyHeader reply_header;
  reply_header.xid = req.xid;
  bool shutdown = false;
  switch (static_cast<rpc::Proc>(req.proc)) {
    case rpc::Proc::Ping:
      break;
    case rpc::Proc::Status: {
      rpc::ReplyHeader h{req.xid, rpc::kOk};
      h.serialize(w);
      status_locked().serialize(w);
      if (reply) {
        reply(rpc::encode_frame(rpc::FrameType::ControlReply, config_.node,
                                frame.header.src, req.xid, w.take(),
                                config_.checksum));
      }
      return;
    }
    case rpc::Proc::Dump: {
      rpc::ReplyHeader h{req.xid, rpc::kOk};
      h.serialize(w);
      dump_locked().serialize(w);
      if (reply) {
        reply(rpc::encode_frame(rpc::FrameType::ControlReply, config_.node,
                                frame.header.src, req.xid, w.take(),
                                config_.checksum));
      }
      return;
    }
    case rpc::Proc::Shutdown:
      shutdown = true;
      break;
    default:
      reply_header.status = rpc::kBadProc;
      break;
  }
  reply_header.serialize(w);
  if (reply) {
    reply(rpc::encode_frame(rpc::FrameType::ControlReply, config_.node,
                            frame.header.src, req.xid, w.take(),
                            config_.checksum));
  }
  if (shutdown) request_stop();
}

rpc::NodeStatus RealNode::status() {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return status_locked();
}

rpc::NodeDump RealNode::dump() {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return dump_locked();
}

rpc::NodeStatus RealNode::status_locked() {
  rpc::NodeStatus s;
  s.sessions_target = config_.sessions;
  s.sessions_completed = sessions_completed_;
  s.commits = protocol_.stats().updates_committed;
  s.aborts = protocol_.stats().updates_aborted;
  s.live_agents = platform_.live_agents();
  s.quiesced = sessions_completed_ >= config_.sessions && s.live_agents == 0;
  return s;
}

rpc::NodeDump RealNode::dump_locked() {
  rpc::NodeDump d;
  d.status = status_locked();

  const replica::VersionedStore& store =
      protocol_.server(config_.node).store();
  for (const std::string& key : store.keys()) {
    const auto value = store.read(key);
    if (!value) continue;
    d.items.push_back({key, value->value, value->version.writer});
  }
  for (const auto& applied : store.history()) {
    d.history.push_back({applied.key, applied.version.writer});
  }

  const core::MarpStats& stats = protocol_.stats();
  d.mutex_violations = stats.mutex_violations;
  d.commit_retransmits = stats.anomalies.commit_retransmits;
  d.report_retransmits = stats.anomalies.report_retransmits;
  d.release_retransmits = stats.anomalies.release_retransmits;
  d.anomalies_total = stats.anomalies.total();

  const TransportStats ts = transport_.stats();
  d.frames_sent = ts.frames_sent;
  d.frames_received = ts.frames_received;
  d.agent_frames_sent = ts.agent_frames_sent;
  d.agent_frames_received = ts.agent_frames_received;
  d.agent_acks_sent = ts.agent_acks_sent;
  d.agent_acks_received = ts.agent_acks_received;
  d.agent_transfers_revived = platform_.stats().migrations_failed;
  d.agent_transfers_deduped = platform_.stats().remote_transfers_deduped;
  d.loss_injected = ts.loss_injected;
  d.checksum_rejected = ts.checksum_rejected;
  d.malformed_rejected = ts.malformed_rejected;
  d.send_failures = ts.send_failures;
  return d;
}

}  // namespace marp::transport

// RealNode — one MARP cluster member as a real process (or thread).
//
// The trick that keeps `src/marp/` and `src/agent/` untouched: each node
// instantiates the *entire* protocol stack — Simulator, Network(N),
// AgentPlatform, MarpProtocol with all N servers — but attaches a transport,
// so only the local node's server ever sees traffic; the other N−1 are inert
// shadows. A single driver thread owns every protocol object:
//
//   socket threads                driver thread
//   --------------                ----------------------------------------
//   frame arrives ──enqueue──►    drain inbox:
//                                   AppMessage   → Network::inject()
//                                   AgentTransfer→ receive_remote_transfer(),
//                                                  then ack back to sender
//                                   AgentTransferAck → cancel revival timer
//                                   ControlRequest → serve RPC, reply
//                                 sim.run(virtual_now)   // due timers fire
//                                 sleep until next timer or inbox signal
//
// Virtual time is wall time: `sim.run(elapsed-µs)` advances the
// discrete-event clock in step with the wall clock, so every protocol timer
// (ack retries, COMMIT retransmission, patrols) fires on schedule without a
// single change to the timer code. Determinism is traded away exactly where
// a real network trades it away — frame arrival order — and nowhere else.
//
// The node also runs a closed-loop workload (session i+1 submitted when
// session i completes) and serves the control RPC (Ping/Status/Dump/
// Shutdown) that the cluster harness drives.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "agent/platform.hpp"
#include "checkpoint/durable.hpp"
#include "marp/protocol.hpp"
#include "net/network.hpp"
#include "rpc/control.hpp"
#include "sim/simulator.hpp"
#include "trace/counters.hpp"
#include "trace/tracer.hpp"
#include "transport/socket_transport.hpp"

namespace marp::transport {

struct RealNodeConfig {
  net::NodeId node = 0;
  std::vector<Endpoint> endpoints;  ///< listen address per node id
  core::MarpConfig marp;            ///< reliable_commit strongly recommended
  std::uint64_t seed = 1;

  // ---- closed-loop workload ----
  std::uint64_t sessions = 0;        ///< update sessions this node originates
  std::uint64_t keys_per_origin = 2; ///< distinct keys cycled through
  /// false: each origin writes its own "nI/kJ" keys — per-key commit order
  /// is then substrate-independent (the equivalence oracle). true: every
  /// node writes the same "shared/kJ" keys — real contention, convergence
  /// asserted instead of equality with the sim.
  bool shared_keys = false;
  /// Wall-clock delay before the first session (lets every peer's listener
  /// come up so the cluster starts from a connected mesh).
  sim::SimTime start_delay = sim::SimTime::millis(300);

  // ---- wire knobs ----
  bool checksum = true;
  double send_loss = 0.0;  ///< injected socket-level loss (AppMessage only)
  /// Source-side revival window for remote migrations: if no transfer ack
  /// comes back within this (wall-clock) time the agent is revived locally.
  /// Far above the sim default — here virtual time is wall time, an ack
  /// round trip competes with scheduler noise, and a premature revival
  /// forks a delivered agent.
  sim::SimTime migration_timeout = sim::SimTime::seconds(2);

  // ---- crash recovery (PR 7) ----
  /// Directory for the durable checkpoint + journal; empty = volatile node
  /// (the pre-PR-7 behaviour). Recovery happens in the constructor, before
  /// any frame is served.
  std::string data_dir;
  /// This process's reincarnation count, assigned by the supervisor
  /// (0 = first life). Stamped into every outbound frame; peers fence
  /// frames below their per-node floor.
  std::uint16_t incarnation = 0;
  /// Shared virtual-clock epoch: microseconds on the CLOCK_MONOTONIC
  /// (steady_clock) timeline that all cluster members treat as virtual time
  /// zero. 0 = capture at driver start (single-life behaviour). The
  /// supervisor passes one captured value to every spawn AND respawn, so a
  /// reincarnated node's clock resumes *ahead* of its first life instead of
  /// restarting at zero — otherwise its commit Versions go backwards and
  /// the Thomas rule silently rejects everything it writes after rebirth.
  std::int64_t clock_epoch_us = 0;
  /// Wall time a reincarnated node spends catching up (announce + anti-
  /// entropy pull) before it resumes originating sessions.
  sim::SimTime catchup_delay = sim::SimTime::millis(500);
  /// Recurring anti-entropy pull from one random live peer (zero = off).
  /// Unlike config.marp.anti_entropy_interval this is driven by the node
  /// itself, so the N−1 shadow servers stay inert and the sim queue drains.
  sim::SimTime sync_pull_interval = sim::SimTime::zero();
  /// Periodic durable checkpoint cadence (zero = journal-only; a final
  /// checkpoint is still written at clean shutdown).
  sim::SimTime checkpoint_interval = sim::SimTime::zero();
  /// Closed-loop watchdog (zero = off): if the workload makes no progress
  /// for this long — the in-flight agent died with a crashed host, so its
  /// outcome will never arrive — the current session is resubmitted.
  /// Duplicates are safe: a session writes the same value under the same
  /// writer, so the Thomas rule converges, and late REPORTs deduplicate.
  sim::SimTime session_retry_timeout = sim::SimTime::zero();

  // ---- distributed tracing (PR 8) ----
  /// Span-ring capacity for this node's Tracer; 0 = tracing off (no tracer
  /// is constructed, no TraceContext tails on the wire — byte-identical to
  /// an untraced cluster).
  std::size_t trace_capacity = 0;
  /// Injected offset added to this node's trace clock AND its exported span
  /// timestamps — a deterministic stand-in for per-host clock skew, so the
  /// merge step's pairwise alignment can be tested against a known truth.
  /// Protocol time (the virtual clock, commit Versions) is NOT affected.
  std::int64_t trace_skew_us = 0;
  /// Build the node's transport. Default (null): a SocketTransport on
  /// `endpoints`. Tests substitute an InProcMesh-backed transport to run a
  /// deterministic multi-node "cluster" in one process.
  std::function<std::unique_ptr<NodeTransport>(const RealNodeConfig&)>
      transport_factory;
};

/// The key node `origin` writes in session `i` under a workload config.
std::string workload_key(const RealNodeConfig& config, net::NodeId origin,
                         std::uint64_t i);
/// The value it writes (encodes origin and session, so stores are
/// comparable across substrates).
std::string workload_value(net::NodeId origin, std::uint64_t i);

class RealNode {
 public:
  explicit RealNode(RealNodeConfig config);
  ~RealNode();

  RealNode(const RealNode&) = delete;
  RealNode& operator=(const RealNode&) = delete;

  /// Run the node on the calling thread until Shutdown (tools/marp_node).
  void run();
  /// Run on a background thread (in-process cluster tests) …
  void start();
  /// … and wait for it to finish.
  void join();
  /// Ask the run loop to exit (thread-safe; also triggered by Shutdown RPC).
  void request_stop();

  net::NodeId node() const noexcept { return config_.node; }
  const RealNodeConfig& config() const noexcept { return config_; }

  /// Snapshot used by the Status/Dump RPCs. Thread-safe.
  rpc::NodeStatus status();
  rpc::NodeDump dump();
  /// Span ring + link clock samples (empty when tracing is off). Thread-safe.
  rpc::NodeTrace trace_dump();
  /// Full counter registry (the same namespaces marp_sim --counters prints,
  /// plus net.real.* and per-link link.*). Thread-safe.
  trace::CounterRegistry counters();

 private:
  struct Incoming {
    rpc::Frame frame;
    NodeTransport::ReplyFn reply;
  };

  void driver_loop();
  void apply(Incoming incoming);
  /// Incarnation fence: true = frame accepted, floors updated; false =
  /// stale frame from a previous life of `src`, drop it.
  bool admit_incarnation(const rpc::FrameHeader& header);
  void handle_control(const rpc::Frame& frame, const NodeTransport::ReplyFn& reply);
  void submit_session(std::uint64_t i);
  void begin_workload();
  void checkpoint_now();
  void checkpoint_tick();
  void sync_pull_tick();
  void watchdog_tick();
  rpc::NodeStatus status_locked();
  rpc::NodeDump dump_locked();
  rpc::NodeTrace trace_locked();
  trace::CounterRegistry counters_locked();
  /// This node's trace-clock microseconds (virtual-time axis + trace_skew).
  std::int64_t trace_clock_now() const;

  RealNodeConfig config_;
  sim::Simulator sim_;
  net::Network network_;
  agent::AgentPlatform platform_;
  core::MarpProtocol protocol_;
  std::unique_ptr<NodeTransport> transport_;
  /// Per-node span ring (nullptr when config.trace_capacity == 0).
  std::unique_ptr<trace::Tracer> tracer_;
  /// Virtual-time origin on the steady_clock axis: min(construction time,
  /// supervisor epoch). A member (not a driver_loop local) because the
  /// transport's trace clock needs it from reader threads before and after
  /// the driver runs.
  std::chrono::steady_clock::time_point t0_;

  /// Durable state (nullptr when config.data_dir is empty).
  std::unique_ptr<checkpoint::DurableLog> durable_;
  /// What recovery found on disk (counters surface in Dump).
  checkpoint::RecoveredState recovered_;
  /// Highest incarnation seen per peer — the fence floor.
  std::vector<std::uint16_t> peer_incarnation_;
  bool catching_up_ = false;
  std::uint64_t stale_incarnation_rejected_ = 0;
  std::uint64_t catchup_pulls_ = 0;
  std::uint64_t catchup_merges_ = 0;
  std::uint64_t session_retries_ = 0;
  /// Virtual time of the last workload submit/outcome (watchdog input).
  sim::SimTime last_progress_ = sim::SimTime::zero();

  std::uint64_t sessions_completed_ = 0;
  std::uint64_t sessions_failed_ = 0;
  std::uint64_t next_request_id_ = 0;

  /// Traced-frame (send, recv) timestamp pairs per inbound link, harvested
  /// in apply(); bounded, drops counted. Guarded by state_mutex_.
  std::vector<rpc::NodeTrace::LinkSample> link_samples_;
  std::uint64_t link_samples_dropped_ = 0;

  std::mutex inbox_mutex_;
  std::condition_variable inbox_cv_;
  std::deque<Incoming> inbox_;
  bool stop_requested_ = false;

  /// Guards protocol state for the status()/dump() snapshot path; the
  /// driver thread holds it while running events.
  std::mutex state_mutex_;

  std::thread thread_;
};

}  // namespace marp::transport

#include "transport/inproc_transport.hpp"

#include "util/assert.hpp"

namespace marp::transport {

void InProcTransport::start(Receiver receiver) {
  std::lock_guard<std::mutex> lock(mutex_);
  receiver_ = std::move(receiver);
  running_ = true;
}

void InProcTransport::stop() {
  std::lock_guard<std::mutex> lock(mutex_);
  running_ = false;
}

const rpc::TraceContext* InProcTransport::stamp(rpc::TraceContext* out,
                                                std::uint64_t session,
                                                std::uint64_t span) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!trace_clock_) return nullptr;
  out->session_id = session;
  out->span_id = span;
  out->origin = local_;
  out->send_ts_us = trace_clock_();
  return out;
}

bool InProcTransport::send_message(const net::Message& message) {
  rpc::TraceContext trace;
  const rpc::TraceContext* tp = stamp(&trace, 0, seq_ + 1);
  const serial::Bytes encoded =
      rpc::encode_frame(rpc::FrameType::AppMessage, local_, message.dst, ++seq_,
                        rpc::encode_app_body(message), mesh_.checksum(),
                        incarnation_, tp);
  return mesh_.deliver(local_, message.dst, encoded, rpc::FrameType::AppMessage);
}

bool InProcTransport::send_agent_frame(net::NodeId dst, const serial::Bytes& frame,
                                       std::uint64_t trace_session) {
  rpc::TraceContext trace;
  const rpc::TraceContext* tp = stamp(&trace, trace_session, seq_ + 1);
  const serial::Bytes encoded = rpc::encode_frame(
      rpc::FrameType::AgentTransfer, local_, dst, ++seq_, frame, mesh_.checksum(),
      incarnation_, tp);
  return mesh_.deliver(local_, dst, encoded, rpc::FrameType::AgentTransfer);
}

bool InProcTransport::send_agent_ack(net::NodeId dst, std::uint64_t token) {
  rpc::TraceContext trace;
  const rpc::TraceContext* tp = stamp(&trace, 0, seq_ + 1);
  const serial::Bytes encoded =
      rpc::encode_frame(rpc::FrameType::AgentTransferAck, local_, dst, ++seq_,
                        rpc::encode_transfer_ack_body(token), mesh_.checksum(),
                        incarnation_, tp);
  return mesh_.deliver(local_, dst, encoded, rpc::FrameType::AgentTransferAck);
}

bool InProcTransport::send_announce(net::NodeId dst) {
  const serial::Bytes encoded = rpc::encode_frame(
      rpc::FrameType::Announce, local_, dst, ++seq_,
      rpc::encode_announce_body({local_, incarnation_}), mesh_.checksum(),
      incarnation_);
  return mesh_.deliver(local_, dst, encoded, rpc::FrameType::Announce);
}

void InProcTransport::set_trace_clock(TraceClock clock) {
  std::lock_guard<std::mutex> lock(mutex_);
  trace_clock_ = std::move(clock);
}

bool InProcTransport::reachable(net::NodeId dst) { return dst < mesh_.size(); }

TransportStats InProcTransport::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void InProcTransport::note_sent(const serial::Bytes& encoded, rpc::FrameType type) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.frames_sent;
  stats_.bytes_sent += encoded.size();
  if (type == rpc::FrameType::AgentTransfer) ++stats_.agent_frames_sent;
  if (type == rpc::FrameType::AgentTransferAck) ++stats_.agent_acks_sent;
}

void InProcTransport::receive_encoded(const serial::Bytes& encoded) {
  rpc::Frame frame;
  const rpc::DecodeStatus status = rpc::decode_frame(encoded, &frame);
  Receiver receiver;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!running_) return;
    if (status == rpc::DecodeStatus::ChecksumMismatch) {
      ++stats_.checksum_rejected;
      return;
    }
    if (status != rpc::DecodeStatus::Ok) {
      ++stats_.malformed_rejected;
      return;
    }
    ++stats_.frames_received;
    stats_.bytes_received += encoded.size();
    if (trace_clock_ && frame.trace.has_value()) {
      frame.recv_ts_us = trace_clock_();
    }
    if (frame.type() == rpc::FrameType::AgentTransfer) {
      ++stats_.agent_frames_received;
    }
    if (frame.type() == rpc::FrameType::AgentTransferAck) {
      ++stats_.agent_acks_received;
    }
    receiver = receiver_;
  }
  if (receiver) receiver(std::move(frame), ReplyFn{});
}

InProcMesh::InProcMesh(std::size_t size, bool checksum)
    : checksum_(checksum), link_up_(size * size, true) {
  nodes_.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    nodes_.push_back(
        std::make_unique<InProcTransport>(*this, static_cast<net::NodeId>(i)));
  }
}

void InProcMesh::set_send_loss(double p, std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(mutex_);
  send_loss_ = p;
  loss_rng_.seed(seed);
}

void InProcMesh::set_link_up(net::NodeId src, net::NodeId dst, bool up) {
  MARP_REQUIRE(src < size() && dst < size());
  std::lock_guard<std::mutex> lock(mutex_);
  link_up_[src * size() + dst] = up;
}

bool InProcMesh::roll_loss() {
  return send_loss_ > 0.0 && std::bernoulli_distribution(send_loss_)(loss_rng_);
}

bool InProcMesh::deliver(net::NodeId src, net::NodeId dst, serial::Bytes encoded,
                         rpc::FrameType type) {
  if (dst >= size()) return false;
  InProcTransport& sender = *nodes_[src];
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!link_up_[src * size() + dst]) {
      // A dead connection: messages vanish silently (the sender's write
      // succeeded before the peer died), migrations fail loudly (the
      // platform needs the failure to revive the agent).
      return type != rpc::FrameType::AgentTransfer;
    }
    if (type == rpc::FrameType::AppMessage && roll_loss()) {
      std::lock_guard<std::mutex> sender_lock(sender.mutex_);
      ++sender.stats_.loss_injected;
      return true;
    }
    if (corrupt_pending_ > 0 && !encoded.empty()) {
      --corrupt_pending_;
      encoded.back() ^= 0xFF;  // damage the last body byte, post-checksum
    }
  }
  sender.note_sent(encoded, type);
  nodes_[dst]->receive_encoded(encoded);
  return true;
}

}  // namespace marp::transport

// Wire addresses for the socket transport.
//
// Two substrate flavours, one textual form each:
//   tcp:HOST:PORT   — TCP over loopback or a real NIC ("tcp:127.0.0.1:7001")
//   uds:PATH        — a Unix-domain stream socket ("uds:/tmp/marp/n0.sock")
// UDS is the default for local clusters (no ports to collide, the kernel
// cleans up with the directory); TCP exists so the same binary can span
// machines.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace marp::transport {

struct Endpoint {
  enum class Kind : std::uint8_t { Tcp, Uds };

  Kind kind = Kind::Uds;
  std::string host;         ///< Tcp only
  std::uint16_t port = 0;   ///< Tcp only
  std::string path;         ///< Uds only

  static Endpoint tcp(std::string host, std::uint16_t port);
  static Endpoint uds(std::string path);

  /// Parse the textual form; nullopt on syntax errors (unknown scheme,
  /// missing port, out-of-range port, empty path).
  static std::optional<Endpoint> parse(const std::string& text);

  std::string to_string() const;

  bool operator==(const Endpoint& other) const noexcept {
    return kind == other.kind && host == other.host && port == other.port &&
           path == other.path;
  }
};

/// Endpoints for an N-node local UDS cluster: DIR/nodeI.sock.
std::vector<Endpoint> local_uds_cluster(const std::string& dir, std::size_t n);

}  // namespace marp::transport

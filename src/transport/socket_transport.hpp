// SocketTransport — the real wire: framed RPC over TCP or Unix-domain
// stream sockets.
//
// One instance per process/node. It listens on its own endpoint, lazily
// connects to peers (with retries, so a cluster can start in any order), and
// moves rpc frames both ways:
//
//   send side (driver thread)    recv side (pool threads)
//   ------------------------     -------------------------------
//   send_message  → AppMessage   accept_loop: one task on the pool
//   send_agent_frame             reader_loop: one task per connection,
//     → AgentTransfer              blocking reads; parses header → body,
//   control client frames          verifies checksum, hands the frame to
//     → ControlRequest             the Receiver (which must only enqueue)
//
// All reader/acceptor work runs on a util::ThreadPool sized to the cluster;
// the transport never touches protocol state itself. Frames that fail
// header validation desynchronise the byte stream, so the connection is
// closed (counted in malformed_rejected); a checksum mismatch leaves the
// stream aligned, so only the frame is dropped (checksum_rejected).
//
// Chaos knob: `send_loss` eats outbound AppMessage frames with a seeded coin
// — never AgentTransfer/AgentTransferAck or control frames — so injected
// socket-level loss exercises the protocol's reliable-commit
// retransmissions. Agents themselves are protected end-to-end one layer up:
// every transfer is acked by the adopting node, and the sending platform
// revives the agent after its migration timeout if no ack arrives.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <random>
#include <unordered_map>
#include <utility>
#include <vector>

#include "transport/endpoint.hpp"
#include "transport/transport.hpp"
#include "util/thread_pool.hpp"

namespace marp::transport {

struct SocketTransportConfig {
  net::NodeId local = net::kInvalidNode;
  /// peers[i] is node i's listen endpoint; peers[local] is ours.
  std::vector<Endpoint> peers;
  bool checksum = true;
  /// Stamped into every outbound frame header so peers can fence frames
  /// from this node's previous lives (0 = first life).
  std::uint16_t incarnation = 0;
  /// Probability an outbound AppMessage frame is silently eaten (chaos).
  double send_loss = 0.0;
  std::uint64_t loss_seed = 1;
  /// Lazy connect schedule: capped exponential backoff with seeded jitter.
  /// Attempt k waits jitter x min(connect_backoff x 2^k, connect_backoff_cap)
  /// with jitter uniform in [0.5, 1.0) — a freshly reincarnated peer gets
  /// probed densely at first, then at the capped cadence, and a fleet of
  /// senders retrying the same dead node never dials in lock-step. The
  /// defaults bound a send to an unreachable peer at ~3s worst case (close
  /// to the previous fixed 60 x 50 ms schedule).
  int connect_attempts = 10;
  std::chrono::milliseconds connect_backoff{20};
  std::chrono::milliseconds connect_backoff_cap{500};
  std::uint64_t connect_jitter_seed = 1;
  /// 0 → peers + 8 (accept loop + inbound readers + control connections).
  std::size_t reader_threads = 0;
};

class SocketTransport final : public NodeTransport {
 public:
  explicit SocketTransport(SocketTransportConfig config);
  ~SocketTransport() override;

  void start(Receiver receiver) override;
  void stop() override;

  bool send_message(const net::Message& message) override;
  bool send_agent_frame(net::NodeId dst, const serial::Bytes& frame,
                        std::uint64_t trace_session = 0) override;
  bool send_agent_ack(net::NodeId dst, std::uint64_t token) override;
  bool reachable(net::NodeId dst) override;
  TransportStats stats() const override;

  /// Rejoin announcement: tell `dst` this node is alive at the configured
  /// incarnation, so the peer raises its incarnation floor immediately
  /// instead of on the first fenced data frame.
  bool send_announce(net::NodeId dst) override;

  /// Arm TraceContext stamping on every outbound frame and per-link latency
  /// accounting (see Transport::set_trace_clock).
  void set_trace_clock(TraceClock clock) override;

  /// Per-link `link.*` counters: frame/byte tallies per direction, transfer
  /// RTT percentiles (token-matched AgentTransfer → ack, offset-free), and
  /// raw one-way delay percentiles (receiver clock − sender stamp; only
  /// meaningful once the merge step's offsets are subtracted, or when the
  /// cluster shares a clock epoch).
  void export_counters(trace::CounterRegistry& registry) const override;

  const SocketTransportConfig& config() const noexcept { return config_; }

  /// Why a one-shot client call failed — the supervisor treats Timeout on a
  /// running process as "hung == dead", which only works if a timeout is
  /// distinguishable from "nothing is listening there yet".
  enum class RpcStatus : std::uint8_t {
    Ok,
    ConnectFailed,  ///< no listener / connection refused
    SendFailed,     ///< connected but the write failed (peer died mid-call)
    Timeout,        ///< request sent, no reply within the deadline
    BadReply,       ///< reply arrived but failed frame validation / peer EOF
  };
  static const char* rpc_status_name(RpcStatus status) noexcept;

  /// Client-side helper (harness / tools): connect to `endpoint`, send one
  /// pre-encoded frame, and — when `reply` is non-null — block until one
  /// whole frame comes back (or `timeout` passes). Stateless: one
  /// connection per call.
  static RpcStatus rpc_call_ex(
      const Endpoint& endpoint, const serial::Bytes& request, rpc::Frame* reply,
      std::chrono::milliseconds timeout = std::chrono::seconds(10));

  /// Boolean convenience over rpc_call_ex (legacy call sites).
  static bool rpc_call(const Endpoint& endpoint, const serial::Bytes& request,
                       rpc::Frame* reply,
                       std::chrono::milliseconds timeout = std::chrono::seconds(10));

 private:
  struct Conn {
    /// -1 once closed. Atomic: readers/writers/stop() race on the value;
    /// the actual close() is done by whichever side owns the descriptor
    /// (the reader task for inbound conns, close_conn for outbound ones).
    std::atomic<int> fd{-1};
    std::mutex write_mutex;
  };
  using ConnPtr = std::shared_ptr<Conn>;

  bool send_frame(net::NodeId dst, rpc::FrameType type, const serial::Bytes& body,
                  std::uint64_t trace_session = 0);
  /// Reader-thread bookkeeping for traced frames: recv stamp, RTT matching.
  void note_received(rpc::Frame& frame);
  /// Existing outbound connection to `dst`, or a fresh one (with the
  /// configured retry schedule). Null if every attempt failed. Dials
  /// without holding peers_mutex_, so one unreachable peer never stalls
  /// sends to healthy ones.
  ConnPtr peer_conn(net::NodeId dst);
  void drop_peer_conn(net::NodeId dst, const ConnPtr& conn);
  void accept_loop();
  void reader_loop(ConnPtr conn);
  void close_conn(const ConnPtr& conn);
  static void shutdown_conn(const ConnPtr& conn);

  SocketTransportConfig config_;
  Receiver receiver_;
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<bool> running_{false};
  std::atomic<int> listen_fd_{-1};

  std::mutex peers_mutex_;
  std::unordered_map<net::NodeId, ConnPtr> peer_conns_;

  std::mutex inbound_mutex_;
  std::vector<ConnPtr> inbound_conns_;

  std::atomic<std::uint64_t> seq_{0};

  std::mutex loss_mutex_;
  std::mt19937_64 loss_rng_;

  /// Seeded jitter for the connect-backoff schedule (see config comment).
  std::mutex backoff_mutex_;
  std::mt19937_64 backoff_rng_;

  mutable std::mutex stats_mutex_;
  TransportStats stats_;

  /// Trace clock + per-link accounting. All guarded by trace_mutex_ — the
  /// untraced hot path never takes it (clock absence is checked first via
  /// trace_enabled_, a relaxed atomic).
  std::atomic<bool> trace_enabled_{false};
  mutable std::mutex trace_mutex_;
  TraceClock trace_clock_;
  struct LinkStats {
    std::uint64_t frames_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t frames_received = 0;
    std::uint64_t bytes_received = 0;
    std::vector<std::int64_t> rtt_us;  ///< transfer→ack, offset-free
    std::vector<std::int64_t> owd_us;  ///< recv stamp − sender stamp, raw
  };
  std::unordered_map<net::NodeId, LinkStats> link_stats_;
  /// Outstanding AgentTransfer tokens → (dst, send trace timestamp); matched
  /// against incoming acks for RTT. Bounded — a token past the cap simply
  /// yields no RTT sample.
  std::unordered_map<std::uint64_t, std::pair<net::NodeId, std::int64_t>>
      pending_rtt_;
};

}  // namespace marp::transport

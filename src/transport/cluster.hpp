// Cluster harness: drive N RealNodes from outside and prove the socket
// substrate computes the same thing the simulator does.
//
// The cross-substrate oracle rests on one workload property: closed-loop
// sessions (i+1 submitted only after i completed) over per-origin private
// keys make the per-key commit order deterministic — session order — on ANY
// substrate, so the simulator's result is a ground truth the socket cluster
// must reproduce exactly: same commit counts, same per-key writer order at
// every replica, same final key→value store. Version timestamps are
// excluded (virtual vs wall microseconds), everything else must match.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "marp/config.hpp"
#include "net/message.hpp"
#include "rpc/control.hpp"
#include "transport/endpoint.hpp"

namespace marp::transport {

/// One workload/cluster parameterisation, shared by the reference sim, the
/// in-process cluster tests, and tools/marp_node / marp_cluster.
struct ClusterSpec {
  std::size_t nodes = 5;                 ///< the paper's N=5 deployment
  std::uint64_t sessions_per_node = 20;  ///< closed-loop updates per origin
  std::uint64_t keys_per_origin = 2;
  bool shared_keys = false;
  std::uint64_t seed = 1;
  double send_loss = 0.0;  ///< socket-level AppMessage loss (real only)

  /// Protocol config both substrates run. reliable_commit is on: it is what
  /// makes commits immune to injected socket loss, and its acked fan-out
  /// doubles as the quiescence barrier (no lingering agent ⇒ all acks in).
  core::MarpConfig marp() const;
};

/// What one substrate computed, reduced to the comparable core.
struct SubstrateResult {
  std::uint64_t commits = 0;  ///< summed over nodes (sim: protocol total)
  std::uint64_t aborts = 0;
  std::uint64_t mutex_violations = 0;
  std::uint64_t commit_retransmits = 0;
  std::uint64_t loss_injected = 0;
  /// Converged store (key → value); filled from node 0.
  std::map<std::string, std::string> store;
  /// key → writer sequence in apply order, per node.
  std::vector<std::map<std::string, std::vector<std::uint32_t>>> per_key_writers;
  /// Final-store divergences between replicas — must ALWAYS be empty.
  std::vector<std::string> divergences;
  /// Per-key apply-order divergences between replicas. Must be empty at
  /// zero loss; under injected loss a retransmitted COMMIT can arrive after
  /// a newer same-key commit and be (correctly) rejected by the Thomas
  /// write rule, so apply histories may differ while stores still converge.
  std::vector<std::string> order_divergences;
};

/// Ground truth: the same ClusterSpec workload on the pure discrete-event
/// simulator (single process, no transport).
SubstrateResult run_reference_sim(const ClusterSpec& spec);

/// Reduce per-node dumps from a real cluster to a SubstrateResult
/// (computing intra-cluster divergences on the way).
SubstrateResult aggregate_cluster(const std::vector<rpc::NodeDump>& dumps);

/// Cross-substrate equivalence: every returned string is a violation.
/// Empty = the substrates agree.
std::vector<std::string> compare_substrates(const SubstrateResult& sim,
                                            const SubstrateResult& real);

/// Control-RPC client for one node (used by tools and tests).
class ControlClient {
 public:
  ControlClient(Endpoint endpoint, net::NodeId node)
      : endpoint_(std::move(endpoint)), node_(node) {}

  bool ping();
  std::optional<rpc::NodeStatus> status();
  std::optional<rpc::NodeDump> dump();
  bool shutdown();

 private:
  std::optional<serial::Bytes> call(rpc::Proc proc);

  Endpoint endpoint_;
  net::NodeId node_;
};

/// Poll every node's Status until all report quiesced, or `timeout_ms`
/// passes. Returns true on full quiescence.
bool wait_quiesced(std::vector<ControlClient>& clients, long timeout_ms);

}  // namespace marp::transport

// Cluster harness: drive N RealNodes from outside and prove the socket
// substrate computes the same thing the simulator does.
//
// The cross-substrate oracle rests on one workload property: closed-loop
// sessions (i+1 submitted only after i completed) over per-origin private
// keys make the per-key commit order deterministic — session order — on ANY
// substrate, so the simulator's result is a ground truth the socket cluster
// must reproduce exactly: same commit counts, same per-key writer order at
// every replica, same final key→value store. Version timestamps are
// excluded (virtual vs wall microseconds), everything else must match.
#pragma once

#include <chrono>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "marp/config.hpp"
#include "net/message.hpp"
#include "rpc/control.hpp"
#include "transport/endpoint.hpp"
#include "transport/socket_transport.hpp"

namespace marp::transport {

/// One workload/cluster parameterisation, shared by the reference sim, the
/// in-process cluster tests, and tools/marp_node / marp_cluster.
struct ClusterSpec {
  std::size_t nodes = 5;                 ///< the paper's N=5 deployment
  std::uint64_t sessions_per_node = 20;  ///< closed-loop updates per origin
  std::uint64_t keys_per_origin = 2;
  bool shared_keys = false;
  std::uint64_t seed = 1;
  double send_loss = 0.0;  ///< socket-level AppMessage loss (real only)

  // ---- dynamic membership (0 = off: the fixed fully-replicated cluster) ----
  std::uint32_t membership_rf = 0;  ///< copies per lock group
  /// Servers in the epoch-1 view; node ids >= this start as spares (idle
  /// listeners outside the view, joinable via the ViewChange RPC).
  std::size_t initial_members = 0;

  /// Protocol config both substrates run. reliable_commit is on: it is what
  /// makes commits immune to injected socket loss, and its acked fan-out
  /// doubles as the quiescence barrier (no lingering agent ⇒ all acks in).
  core::MarpConfig marp() const;
};

/// What one substrate computed, reduced to the comparable core.
struct SubstrateResult {
  std::uint64_t commits = 0;  ///< summed over nodes (sim: protocol total)
  std::uint64_t aborts = 0;
  std::uint64_t mutex_violations = 0;
  std::uint64_t commit_retransmits = 0;
  std::uint64_t loss_injected = 0;
  /// Converged store (key → value); filled from node 0.
  std::map<std::string, std::string> store;
  /// key → writer sequence in apply order, per node.
  std::vector<std::map<std::string, std::vector<std::uint32_t>>> per_key_writers;
  /// Final-store divergences between replicas — must ALWAYS be empty.
  std::vector<std::string> divergences;
  /// Per-key apply-order divergences between replicas. Must be empty at
  /// zero loss; under injected loss a retransmitted COMMIT can arrive after
  /// a newer same-key commit and be (correctly) rejected by the Thomas
  /// write rule, so apply histories may differ while stores still converge.
  std::vector<std::string> order_divergences;
};

/// Ground truth: the same ClusterSpec workload on the pure discrete-event
/// simulator (single process, no transport).
SubstrateResult run_reference_sim(const ClusterSpec& spec);

/// Reduce per-node dumps from a real cluster to a SubstrateResult
/// (computing intra-cluster divergences on the way).
SubstrateResult aggregate_cluster(const std::vector<rpc::NodeDump>& dumps);

/// Cross-substrate equivalence: every returned string is a violation.
/// Empty = the substrates agree.
std::vector<std::string> compare_substrates(const SubstrateResult& sim,
                                            const SubstrateResult& real);

/// Chaos-mode equivalence: the subset of compare_substrates that survives
/// process crashes. Commit counters and apply histories are volatile (a
/// SIGKILL resets them mid-run), so the checked invariants are: Theorem 2,
/// replica convergence, identical key sets, and per-key value equality with
/// the reference sim — exact for untouched origins, relaxed for
/// `relaxed_origins[i] == true` (origins that crashed or retried a
/// session). For those, any of the origin's own session values for the key
/// is legal: a retried session can commit *after* a later session of the
/// same key, and the Thomas rule correctly keeps the later commit
/// timestamp, so "last session wins" only holds retry-free. Requires
/// private keys (spec.shared_keys == false).
std::vector<std::string> compare_stores(const SubstrateResult& sim,
                                        const SubstrateResult& real,
                                        const ClusterSpec& spec,
                                        const std::vector<bool>& relaxed_origins);

/// How a ControlClient retries one logical RPC. Each attempt is its own
/// connection; attempt k+1 waits min(backoff x 2^k, backoff_cap) first.
struct RetryPolicy {
  int attempts = 3;
  std::chrono::milliseconds backoff{50};
  std::chrono::milliseconds backoff_cap{500};
  /// Per-attempt reply deadline. The supervisor's heartbeat probe uses a
  /// tight value with attempts = 1 — masking a hung node behind retries
  /// would defeat hang detection.
  std::chrono::milliseconds rpc_timeout{10'000};
};

/// Control-RPC client for one node (used by tools and tests).
class ControlClient {
 public:
  ControlClient(Endpoint endpoint, net::NodeId node, RetryPolicy policy = {})
      : endpoint_(std::move(endpoint)), node_(node), policy_(policy) {}

  void set_retry_policy(RetryPolicy policy) { policy_ = policy; }

  bool ping();
  std::optional<rpc::NodeStatus> status();
  std::optional<rpc::NodeDump> dump();
  /// Pull the node's span ring + link clock samples (empty when the node
  /// runs untraced — still a valid reply, not an error).
  std::optional<rpc::NodeTrace> trace_dump();
  std::optional<rpc::HeartbeatReply> heartbeat();
  /// Ask the node to pull every live peer's store right now (convergence
  /// barrier before final dumps).
  bool sync_pull();
  bool shutdown();
  /// Nominate the node as coordinator of a membership epoch bump admitting
  /// (`join`) or retiring `target`. Returns the coordinator's newest epoch
  /// on acceptance; nullopt when the RPC failed or the change was rejected
  /// (membership off, target already in the requested state, or another
  /// view change still in flight — retry later for the last case).
  std::optional<std::uint64_t> view_change(bool join, net::NodeId target);

  /// Typed outcome of the most recent attempt of the most recent call —
  /// lets the supervisor tell "nothing listening" (restarting, normal) from
  /// "connected but silent" (hung, treat as dead).
  SocketTransport::RpcStatus last_status() const noexcept { return last_status_; }

 private:
  std::optional<serial::Bytes> call(rpc::Proc proc,
                                    const serial::Bytes& args = {});

  Endpoint endpoint_;
  net::NodeId node_;
  RetryPolicy policy_;
  SocketTransport::RpcStatus last_status_ = SocketTransport::RpcStatus::Ok;
};

/// Poll every node's Status until all report quiesced, or `timeout_ms`
/// passes. Returns true on full quiescence.
bool wait_quiesced(std::vector<ControlClient>& clients, long timeout_ms);

}  // namespace marp::transport

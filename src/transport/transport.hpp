// Transport — the substrate seam between the protocol stack and the wire.
//
// `src/marp/` and `src/agent/` never name a substrate: every inter-node
// byte they move funnels through exactly two paths — net::Network::send()
// for coordination messages and AgentPlatform's migration machinery for
// agent transfer frames. A Transport attached to the Network (see
// Network::attach_transport) takes over both paths for destinations other
// than the local node; with no Transport attached the Network simulates
// delivery itself (the discrete-event substrate). That keeps the protocol
// code substrate-agnostic with zero #ifdefs: the same MarpServer /
// UpdateAgent objects run under the simulator, over in-process queues
// (InProcTransport), or as N real processes over TCP / Unix-domain sockets
// (SocketTransport).
//
// This header is dependency-light on purpose: net::Network consumes the
// interface, the implementations in this directory link against net/agent.
#pragma once

#include <cstdint>
#include <functional>

#include "net/message.hpp"
#include "rpc/frame.hpp"

namespace marp::trace {
class CounterRegistry;  // defined in trace/counters.hpp; see export_counters
}

namespace marp::transport {

/// Counters every backend keeps (exported as `net.real.*`).
struct TransportStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t agent_frames_sent = 0;
  std::uint64_t agent_frames_received = 0;
  std::uint64_t agent_acks_sent = 0;
  std::uint64_t agent_acks_received = 0;
  std::uint64_t send_failures = 0;       ///< connect/write errors
  std::uint64_t loss_injected = 0;       ///< frames eaten by the chaos knob
  std::uint64_t checksum_rejected = 0;   ///< FNV mismatch — frame dropped
  std::uint64_t malformed_rejected = 0;  ///< bad magic/version/length
  std::uint64_t connects = 0;
  std::uint64_t accepts = 0;
};

/// Minimal substrate interface the Network consumes for remote destinations.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Move one coordination message toward its destination node. Returns
  /// false when the substrate knows delivery is impossible right now
  /// (connect refused, peer gone); best-effort true otherwise.
  virtual bool send_message(const net::Message& message) = 0;

  /// Ship a serialized agent (a migration) to `dst`. A true return only
  /// means the bytes were handed to the substrate — delivery is confirmed by
  /// the receiver's transfer ack; until then the platform keeps a revival
  /// timer armed. A false return is a fast-path failure (peer unreachable).
  /// `trace_session` (an AgentId hash, 0 = none) is stamped into the frame's
  /// TraceContext when tracing is on, so the receiver's trace can tie the
  /// arrival back to the sender's migration span.
  virtual bool send_agent_frame(net::NodeId dst, const serial::Bytes& frame,
                                std::uint64_t trace_session = 0) = 0;

  /// Acknowledge an adopted agent transfer back to its sender (one-way;
  /// cancels the sender's revival timer for `token`). Best-effort: a lost
  /// ack means the sender revives an already-delivered agent, which the
  /// receiver-side dedup then keeps from being adopted twice.
  virtual bool send_agent_ack(net::NodeId dst, std::uint64_t token) = 0;

  /// Cheap reachability hint (an established or establishable connection).
  virtual bool reachable(net::NodeId dst) = 0;

  virtual TransportStats stats() const = 0;

  /// Trace clock: this node's private trace-timeline microseconds. When set,
  /// every outgoing frame is stamped with a TraceContext tail (origin, send
  /// timestamp) and every incoming traced frame gets `recv_ts_us` filled at
  /// wire arrival — the raw material for pairwise clock alignment. When
  /// unset (the default) no tail is appended and the wire bytes are
  /// identical to an untraced build.
  using TraceClock = std::function<std::int64_t()>;
  virtual void set_trace_clock(TraceClock clock) { (void)clock; }
};

/// A full per-node backend: Transport plus the receive side. RealNode owns
/// one of these; received frames are handed to the Receiver on an arbitrary
/// transport thread, so receivers must only enqueue (the node's driver
/// thread does the actual protocol work).
class NodeTransport : public Transport {
 public:
  /// Sends a reply frame back over the connection a frame arrived on
  /// (control channel); returns false if that connection is gone. Null/empty
  /// for one-way frames is allowed.
  using ReplyFn = std::function<bool(const serial::Bytes& encoded_frame)>;
  using Receiver = std::function<void(rpc::Frame&& frame, ReplyFn reply)>;

  /// Begin accepting/receiving. `receiver` outlives the transport's stop().
  virtual void start(Receiver receiver) = 0;
  /// Tear down connections and worker threads; idempotent.
  virtual void stop() = 0;

  /// Broadcast-side of the reincarnation protocol: push (node, incarnation)
  /// to one peer. Best-effort; backends without a rejoin story may decline.
  virtual bool send_announce(net::NodeId dst) { (void)dst; return false; }

  /// Export backend-specific counters (per-link `link.*` histograms, frame
  /// and byte tallies) into `registry`. Default: nothing beyond stats().
  virtual void export_counters(trace::CounterRegistry& registry) const {
    (void)registry;
  }
};

}  // namespace marp::transport

#include "transport/endpoint.hpp"

#include <charconv>

namespace marp::transport {

Endpoint Endpoint::tcp(std::string host, std::uint16_t port) {
  Endpoint e;
  e.kind = Kind::Tcp;
  e.host = std::move(host);
  e.port = port;
  return e;
}

Endpoint Endpoint::uds(std::string path) {
  Endpoint e;
  e.kind = Kind::Uds;
  e.path = std::move(path);
  return e;
}

std::optional<Endpoint> Endpoint::parse(const std::string& text) {
  constexpr const char* kTcp = "tcp:";
  constexpr const char* kUds = "uds:";
  if (text.rfind(kUds, 0) == 0) {
    std::string path = text.substr(4);
    if (path.empty()) return std::nullopt;
    return uds(std::move(path));
  }
  if (text.rfind(kTcp, 0) == 0) {
    const std::string rest = text.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0) return std::nullopt;
    const std::string host = rest.substr(0, colon);
    const std::string port_text = rest.substr(colon + 1);
    unsigned port = 0;
    const auto [ptr, ec] = std::from_chars(
        port_text.data(), port_text.data() + port_text.size(), port);
    if (ec != std::errc{} || ptr != port_text.data() + port_text.size() ||
        port == 0 || port > 0xFFFF) {
      return std::nullopt;
    }
    return tcp(host, static_cast<std::uint16_t>(port));
  }
  return std::nullopt;
}

std::string Endpoint::to_string() const {
  if (kind == Kind::Uds) return "uds:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

std::vector<Endpoint> local_uds_cluster(const std::string& dir, std::size_t n) {
  std::vector<Endpoint> endpoints;
  endpoints.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    endpoints.push_back(Endpoint::uds(dir + "/node" + std::to_string(i) + ".sock"));
  }
  return endpoints;
}

}  // namespace marp::transport

#include "util/logging.hpp"

#include <atomic>
#include <iostream>

namespace marp::log {

namespace {
std::atomic<Level> g_threshold{Level::Warn};
std::mutex g_sink_mutex;
}  // namespace

Level threshold() noexcept { return g_threshold.load(std::memory_order_relaxed); }

void set_threshold(Level level) noexcept {
  g_threshold.store(level, std::memory_order_relaxed);
}

const char* level_name(Level level) noexcept {
  switch (level) {
    case Level::Trace: return "TRACE";
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO";
    case Level::Warn: return "WARN";
    case Level::Error: return "ERROR";
    case Level::Off: return "OFF";
  }
  return "?";
}

void write(Level level, const std::string& tag, const std::string& message) {
  if (threshold() > level) return;
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::cerr << '[' << level_name(level) << "] " << tag << ": " << message << '\n';
}

}  // namespace marp::log

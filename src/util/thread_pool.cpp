#include "util/thread_pool.hpp"

#include <algorithm>

namespace marp {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(pool.submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futures) f.get();  // propagate exceptions
}

}  // namespace marp

// Minimal leveled logger.
//
// The simulator is deterministic and single-threaded per run, but sweeps run
// many simulations concurrently, so the sink is guarded by a mutex. Logging
// defaults to Warn so benchmark output stays clean; tests and examples can
// raise the level.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace marp::log {

enum class Level : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Global threshold; messages below it are discarded cheaply.
Level threshold() noexcept;
void set_threshold(Level level) noexcept;

/// Emit one line to stderr (thread-safe). `tag` identifies the subsystem.
void write(Level level, const std::string& tag, const std::string& message);

const char* level_name(Level level) noexcept;

namespace detail {
class LineBuilder {
 public:
  LineBuilder(Level level, std::string tag) : level_(level), tag_(std::move(tag)) {}
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;
  ~LineBuilder() { write(level_, tag_, os_.str()); }

  template <typename T>
  LineBuilder& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  Level level_;
  std::string tag_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace marp::log

#define MARP_LOG(level, tag)                        \
  if (::marp::log::threshold() <= (level))          \
  ::marp::log::detail::LineBuilder((level), (tag))

#define MARP_LOG_TRACE(tag) MARP_LOG(::marp::log::Level::Trace, (tag))
#define MARP_LOG_DEBUG(tag) MARP_LOG(::marp::log::Level::Debug, (tag))
#define MARP_LOG_INFO(tag) MARP_LOG(::marp::log::Level::Info, (tag))
#define MARP_LOG_WARN(tag) MARP_LOG(::marp::log::Level::Warn, (tag))
#define MARP_LOG_ERROR(tag) MARP_LOG(::marp::log::Level::Error, (tag))

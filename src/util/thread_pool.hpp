// Fixed-size thread pool used by the sweep runner to execute independent
// simulation runs in parallel (parallelism is across runs, never inside one —
// each run stays deterministic).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace marp {

class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; the future resolves with its result (or exception).
  template <typename F>
  auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> result = packaged->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([packaged] { (*packaged)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Block until every queued task has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Run `fn(i)` for i in [0, count) across the pool and wait for completion.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

}  // namespace marp

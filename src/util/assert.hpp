// Lightweight contract checks.
//
// MARP_REQUIRE / MARP_ENSURE are always-on (they guard protocol invariants
// whose violation would silently corrupt a simulation), MARP_DEBUG_ASSERT
// compiles out in NDEBUG builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace marp {

/// Thrown when a contract annotated with MARP_REQUIRE/MARP_ENSURE fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}
}  // namespace detail

}  // namespace marp

#define MARP_REQUIRE(expr)                                                     \
  do {                                                                         \
    if (!(expr))                                                               \
      ::marp::detail::contract_fail("precondition", #expr, __FILE__, __LINE__, \
                                    {});                                       \
  } while (0)

#define MARP_REQUIRE_MSG(expr, msg)                                            \
  do {                                                                         \
    if (!(expr))                                                               \
      ::marp::detail::contract_fail("precondition", #expr, __FILE__, __LINE__, \
                                    (msg));                                    \
  } while (0)

#define MARP_ENSURE(expr)                                                       \
  do {                                                                          \
    if (!(expr))                                                                \
      ::marp::detail::contract_fail("postcondition", #expr, __FILE__, __LINE__, \
                                    {});                                        \
  } while (0)

#define MARP_ENSURE_MSG(expr, msg)                                              \
  do {                                                                          \
    if (!(expr))                                                                \
      ::marp::detail::contract_fail("postcondition", #expr, __FILE__, __LINE__, \
                                    (msg));                                     \
  } while (0)

#ifdef NDEBUG
#define MARP_DEBUG_ASSERT(expr) ((void)0)
#else
#define MARP_DEBUG_ASSERT(expr)                                            \
  do {                                                                     \
    if (!(expr))                                                           \
      ::marp::detail::contract_fail("assertion", #expr, __FILE__, __LINE__, \
                                    {});                                   \
  } while (0)
#endif

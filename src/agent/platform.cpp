#include "agent/platform.hpp"

#include "rpc/frame.hpp"
#include "transport/transport.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace marp::agent {

AgentPlatform::AgentPlatform(net::Network& network, PlatformConfig config)
    : network_(network), config_(config), app_handlers_(network.size()) {
  hosts_.reserve(network.size());
  for (net::NodeId node = 0; node < network.size(); ++node) {
    hosts_.push_back(std::make_unique<AgentHost>(*this, node));
    network_.register_node(node, [this, node](const net::Message& message) {
      if (message.type == kAgentMessageType) {
        hosts_[node]->deliver_envelope(AgentEnvelope::decode(message.payload));
      } else if (app_handlers_[node]) {
        app_handlers_[node](message);
      } else {
        MARP_LOG_WARN("platform") << "no app handler at node " << node
                                  << " for type " << message.type;
      }
    });
  }
}

AgentHost& AgentPlatform::host(net::NodeId node) {
  MARP_REQUIRE(node < hosts_.size());
  return *hosts_[node];
}

void AgentPlatform::set_app_handler(net::NodeId node, net::Network::Handler handler) {
  MARP_REQUIRE(node < app_handlers_.size());
  app_handlers_[node] = std::move(handler);
}

void AgentPlatform::send_to_agent(net::NodeId src, net::NodeId dst_node,
                                  const AgentId& agent, net::MessageType type,
                                  serial::Bytes payload) {
  AgentEnvelope envelope{agent, type, std::move(payload)};
  network_.send(net::Message{src, dst_node, kAgentMessageType, envelope.encode()});
}

bool AgentPlatform::retract(const AgentId& id, net::NodeId to) {
  MARP_REQUIRE(to < hosts_.size());
  for (auto& host : hosts_) {
    auto it = host->agents_.find(id);
    if (it == host->agents_.end()) continue;
    if (host->node() == to) return true;  // already home
    std::unique_ptr<MobileAgent> agent = std::move(it->second.agent);
    host->agents_.erase(it);
    begin_migration(std::move(agent), host->node(), to);
    return true;
  }
  return false;
}

std::size_t AgentPlatform::live_agents() const {
  std::size_t count = 0;
  for (const auto& host : hosts_) count += host->agent_count();
  return count;
}

serial::Bytes AgentPlatform::encode_frame(const MobileAgent& agent) const {
  serial::Writer w;
  w.str(agent.type_name());
  agent.id().serialize(w);
  serial::Writer state;
  agent.serialize(state);
  w.raw(state.bytes());
  return w.take();
}

std::unique_ptr<MobileAgent> AgentPlatform::decode_frame(const serial::Bytes& bytes) const {
  serial::Reader r(bytes);
  const std::string type_name = r.str();
  const AgentId id = AgentId::deserialize(r);
  const serial::Bytes state = r.raw();
  std::unique_ptr<MobileAgent> agent = registry_.create(type_name);
  serial::Reader state_reader(state);
  agent->deserialize(state_reader);
  MARP_ENSURE_MSG(state_reader.at_end(), "agent state not fully consumed: " + type_name);
  agent->id_ = id;
  return agent;
}

AgentPlatform::RemoteTransfer AgentPlatform::receive_remote_transfer(
    const serial::Bytes& body) {
  const net::NodeId local = network_.local_node();
  MARP_REQUIRE_MSG(local != net::kInvalidNode,
                   "receive_remote_transfer needs an attached transport");
  const rpc::TransferBody transfer = rpc::decode_transfer_body(body);
  std::unique_ptr<MobileAgent> agent = decode_frame(transfer.frame);
  const AgentId id = agent->id();
  if (hosts_[local]->has_agent(id)) {
    // The agent is already live here — a replayed transfer (its ack was
    // lost or overtaken by the sender's revival). Adopting again would fork
    // the agent; drop, but still hand the token back so the sender's
    // revival timer is cancelled.
    ++stats_.remote_transfers_deduped;
    return {transfer.token, false, id};
  }
  ++stats_.migrations_completed;
  if (observer_) observer_->on_migration_completed(id, local);
  hosts_[local]->adopt(std::move(agent), /*arrival=*/true, net::kInvalidNode);
  return {transfer.token, true, id};
}

void AgentPlatform::acknowledge_remote_transfer(std::uint64_t token) {
  if (pending_transfers_.erase(token) == 0) return;  // late ack: already revived
  ++stats_.remote_transfers_acked;
}

void AgentPlatform::begin_migration(std::unique_ptr<MobileAgent> agent,
                                    net::NodeId src, net::NodeId dest) {
  MARP_REQUIRE(dest < network_.size());
  MARP_REQUIRE(dest != src);

  // True serialization round trip: the source-side object dies here and the
  // destination (or the failure path) reconstructs from bytes.
  const AgentId id = agent->id();
  const serial::Bytes frame = encode_frame(*agent);
  agent.reset();

  const std::size_t wire_bytes = frame.size() + config_.migration_overhead_bytes;
  ++stats_.migrations_started;
  stats_.migration_bytes += wire_bytes;
  if (observer_) observer_->on_migration_started(id, src, dest, wire_bytes);

  auto& simulator = network_.simulator();

  if (network_.is_remote(dest)) {
    // Real substrate: hand the token-wrapped frame to the transport (the
    // receiving process rehydrates via receive_remote_transfer()) and arm
    // the revival timer unconditionally. A successful send only means the
    // kernel took the bytes — the receiver may still checksum-reject the
    // frame, fail to rehydrate it, or die before adopting. Delivery is
    // confirmed by the transfer ack (acknowledge_remote_transfer), which
    // cancels the revival; without one this is the paper's unreachable-host
    // case — the agent is revived here after the migration timeout and
    // retries or skips the replica.
    const std::uint64_t token = ++next_transfer_token_;
    pending_transfers_.insert(token);
    network_.transport()->send_agent_frame(
        dest, rpc::encode_transfer_body(token, frame), AgentIdHash{}(id));
    simulator.schedule(config_.migration_timeout,
                       [this, frame, id, src, dest, token] {
      if (pending_transfers_.erase(token) == 0) return;  // acked — delivered
      ++stats_.migrations_failed;
      if (observer_) observer_->on_migration_failed(id, src, dest);
      hosts_[src]->adopt(decode_frame(frame), /*arrival=*/false, dest);
    }, static_cast<sim::ActorId>(src));
    return;
  }

  // A transfer across a chaos-lossy link can lose the frame even when both
  // endpoints are live: the source detects it exactly like an unreachable
  // destination (connection timeout) and the agent retries from where it was.
  const bool reachable = network_.node_up(src) && network_.node_up(dest) &&
                         network_.link_up(src, dest) &&
                         !network_.roll_transfer_loss(src, dest);
  if (!reachable) {
    // Connection never establishes; source detects after the timeout.
    simulator.schedule(config_.migration_timeout, [this, frame, id, src, dest] {
      ++stats_.migrations_failed;
      if (observer_) observer_->on_migration_failed(id, src, dest);
      hosts_[src]->adopt(decode_frame(frame), /*arrival=*/false, dest);
    }, static_cast<sim::ActorId>(src));
    return;
  }

  const sim::SimTime latency = network_.sample_latency(src, dest, wire_bytes);
  simulator.schedule(latency, [this, frame, id, src, dest] {
    if (!network_.node_up(dest)) {
      // Destination died in flight; source times out and revives the agent.
      const sim::SimTime remaining = config_.migration_timeout;
      network_.simulator().schedule(remaining, [this, frame, id, src, dest] {
        ++stats_.migrations_failed;
        if (observer_) observer_->on_migration_failed(id, src, dest);
        hosts_[src]->adopt(decode_frame(frame), /*arrival=*/false, dest);
      }, static_cast<sim::ActorId>(src));
      return;
    }
    ++stats_.migrations_completed;
    if (observer_) observer_->on_migration_completed(id, dest);
    hosts_[dest]->adopt(decode_frame(frame), /*arrival=*/true, net::kInvalidNode);
  }, static_cast<sim::ActorId>(dest));
}

}  // namespace marp::agent

// Agent type registry.
//
// Migration reconstructs agents from bytes; the registry maps the type name
// in a transfer frame to a factory, playing the role of the class loader in
// a Java agent platform.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "agent/agent.hpp"

namespace marp::agent {

class AgentRegistry {
 public:
  using Factory = std::function<std::unique_ptr<MobileAgent>()>;

  /// Register a factory; overwriting an existing name is an error.
  void register_type(const std::string& name, Factory factory);

  template <typename T>
  void register_type(const std::string& name) {
    register_type(name, [] { return std::make_unique<T>(); });
  }

  bool contains(const std::string& name) const { return factories_.contains(name); }

  /// Instantiate an empty agent of the named type; throws if unknown.
  std::unique_ptr<MobileAgent> create(const std::string& name) const;

 private:
  std::unordered_map<std::string, Factory> factories_;
};

}  // namespace marp::agent

// MobileAgent base class and the context handed to agent callbacks.
//
// Agents are autonomous: the platform invokes their lifecycle callbacks and
// the agent decides (via AgentContext) whether to migrate, send messages,
// set timers, or dispose itself. State migrates by value: an agent that
// dispatches is serialized to bytes, destroyed, and reconstructed at the
// destination — exactly the Aglets model the paper prototypes on.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "agent/agent_id.hpp"
#include "net/message.hpp"
#include "serial/byte_buffer.hpp"
#include "sim/time.hpp"

namespace marp::agent {

class AgentHost;
class AgentPlatform;

/// Handle through which an agent interacts with its current host. Valid only
/// for the duration of one callback.
class AgentContext {
 public:
  AgentContext(AgentHost& host, AgentId self);

  /// Node this agent is currently executing on.
  net::NodeId here() const noexcept;

  /// Current virtual time.
  sim::SimTime now() const noexcept;

  /// Request migration to `destination` once the callback returns. At most
  /// one of dispatch_to()/dispose() may be requested per callback.
  void dispatch_to(net::NodeId destination);

  /// Request disposal once the callback returns (paper: "dispose").
  void dispose();

  /// Spawn a copy of this agent (Aglets' "clone") once the callback
  /// returns. The clone carries the agent's serialized state at that
  /// moment, gets a fresh identity, and lands on `destination` via a normal
  /// migration (or locally when destination is the current node, receiving
  /// on_arrival). May be combined with dispatch_to()/dispose() and called
  /// several times per callback.
  void clone_to(net::NodeId destination);

  /// Send an application message from the current node to another node.
  void send_to_node(net::NodeId dst, net::MessageType type, serial::Bytes payload);

  /// Send the same payload to every node except the current one.
  void broadcast(net::MessageType type, const serial::Bytes& payload);

  /// Arm a timer; on_timer(token) fires if the agent is still on this host.
  void set_timer(sim::SimTime delay, std::uint64_t token);

  /// Look up a named service object published by the host (the replica
  /// server publishes its locking interface this way).
  template <typename T>
  T* service(const std::string& name) const {
    return static_cast<T*>(service_raw(name));
  }

  AgentHost& host() noexcept { return host_; }

  // --- used by AgentHost when processing the callback's intent ---
  enum class Intent : std::uint8_t { None, Dispatch, Dispose };
  Intent intent() const noexcept { return intent_; }
  net::NodeId intent_destination() const noexcept { return destination_; }
  const std::vector<net::NodeId>& clone_destinations() const noexcept {
    return clones_;
  }

 private:
  void* service_raw(const std::string& name) const;

  AgentHost& host_;
  AgentId self_;
  Intent intent_ = Intent::None;
  net::NodeId destination_ = net::kInvalidNode;
  std::vector<net::NodeId> clones_;
};

class MobileAgent {
 public:
  virtual ~MobileAgent() = default;

  const AgentId& id() const noexcept { return id_; }

  /// Registry key; must match the name this type was registered under.
  virtual std::string type_name() const = 0;

  /// Called once on the creating host, right after creation.
  virtual void on_created(AgentContext& ctx) { (void)ctx; }

  /// Called on every host the agent lands on after a migration.
  virtual void on_arrival(AgentContext& ctx) = 0;

  /// A dispatch to `destination` failed (host down / link cut); the agent
  /// has been revived on the host it tried to leave. Retry accounting is the
  /// agent's responsibility (it migrates with the agent). Default: dispose.
  virtual void on_migration_failed(AgentContext& ctx, net::NodeId destination) {
    (void)destination;
    ctx.dispose();
  }

  /// A message addressed to this agent arrived at its current host.
  virtual void on_message(AgentContext& ctx, net::MessageType type,
                          const serial::Bytes& payload) {
    (void)ctx;
    (void)type;
    (void)payload;
  }

  /// The host raised a local signal (e.g. "locking-list head changed").
  virtual void on_signal(AgentContext& ctx, std::uint32_t signal) {
    (void)ctx;
    (void)signal;
  }

  /// A timer armed via AgentContext::set_timer fired.
  virtual void on_timer(AgentContext& ctx, std::uint64_t token) {
    (void)ctx;
    (void)token;
  }

  /// Serialize the full migrating state (id is carried by the platform).
  virtual void serialize(serial::Writer& w) const = 0;
  virtual void deserialize(serial::Reader& r) = 0;

 private:
  friend class AgentHost;
  friend class AgentPlatform;
  AgentId id_;
};

}  // namespace marp::agent

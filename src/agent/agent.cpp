#include "agent/agent.hpp"

#include "agent/host.hpp"
#include "agent/platform.hpp"
#include "util/assert.hpp"

namespace marp::agent {

AgentContext::AgentContext(AgentHost& host, AgentId self) : host_(host), self_(self) {}

net::NodeId AgentContext::here() const noexcept { return host_.node(); }

sim::SimTime AgentContext::now() const noexcept {
  return host_.platform().simulator().now();
}

void AgentContext::dispatch_to(net::NodeId destination) {
  MARP_REQUIRE_MSG(intent_ == Intent::None, "one intent per callback");
  MARP_REQUIRE_MSG(destination != host_.node(), "cannot dispatch to current host");
  intent_ = Intent::Dispatch;
  destination_ = destination;
}

void AgentContext::dispose() {
  MARP_REQUIRE_MSG(intent_ == Intent::None, "one intent per callback");
  intent_ = Intent::Dispose;
}

void AgentContext::clone_to(net::NodeId destination) {
  clones_.push_back(destination);
}

void AgentContext::send_to_node(net::NodeId dst, net::MessageType type,
                                serial::Bytes payload) {
  host_.send_from_here(dst, type, std::move(payload));
}

void AgentContext::broadcast(net::MessageType type, const serial::Bytes& payload) {
  auto& network = host_.platform().network();
  network.broadcast(host_.node(), type, payload);
}

void AgentContext::set_timer(sim::SimTime delay, std::uint64_t token) {
  auto it = host_.agents_.find(self_);
  MARP_REQUIRE_MSG(it != host_.agents_.end(), "set_timer from foreign context");
  host_.arm_timer(self_, it->second.incarnation, delay, token);
}

void* AgentContext::service_raw(const std::string& name) const {
  return host_.service(name);
}

}  // namespace marp::agent

#include "agent/host.hpp"

#include "agent/platform.hpp"
#include "util/assert.hpp"
#include "util/logging.hpp"

namespace marp::agent {

serial::Bytes AgentEnvelope::encode() const {
  serial::Writer w;
  destination.serialize(w);
  w.varint(inner_type);
  w.raw(inner_payload);
  return w.take();
}

AgentEnvelope AgentEnvelope::decode(const serial::Bytes& payload) {
  serial::Reader r(payload);
  AgentEnvelope env;
  env.destination = AgentId::deserialize(r);
  env.inner_type = static_cast<net::MessageType>(r.varint());
  env.inner_payload = r.raw();
  return env;
}

AgentHost::AgentHost(AgentPlatform& platform, net::NodeId node)
    : platform_(platform), node_(node) {}

template <typename Fn>
void AgentHost::run_callback(const AgentId& id, Fn&& fn) {
  auto it = agents_.find(id);
  if (it == agents_.end()) return;
  AgentContext ctx(*this, id);
  fn(*it->second.agent, ctx);

  // Clones are taken from the post-callback state, before any dispatch or
  // disposal removes the original.
  if (!ctx.clone_destinations().empty()) {
    auto again = agents_.find(id);
    MARP_DEBUG_ASSERT(again != agents_.end());
    for (net::NodeId destination : ctx.clone_destinations()) {
      spawn_clone(*again->second.agent, destination);
    }
  }

  switch (ctx.intent()) {
    case AgentContext::Intent::None:
      break;
    case AgentContext::Intent::Dispose: {
      agents_.erase(id);
      platform_.note_disposed();
      if (auto* observer = platform_.observer()) {
        observer->on_agent_disposed(id, node_);
      }
      break;
    }
    case AgentContext::Intent::Dispatch: {
      // Iterator may have been invalidated if the callback created agents.
      auto again = agents_.find(id);
      MARP_DEBUG_ASSERT(again != agents_.end());
      std::unique_ptr<MobileAgent> agent = std::move(again->second.agent);
      agents_.erase(again);
      platform_.begin_migration(std::move(agent), node_, ctx.intent_destination());
      break;
    }
  }
}

AgentId AgentHost::create(std::unique_ptr<MobileAgent> agent) {
  MARP_REQUIRE(agent != nullptr);
  const AgentId id{node_, platform_.simulator().now().as_micros(), next_seq_++};
  agent->id_ = id;
  const std::string type = agent->type_name();
  platform_.note_created();
  agents_[id] = Hosted{std::move(agent), ++incarnation_counter_};
  if (auto* observer = platform_.observer()) {
    observer->on_agent_created(id, type, node_);
  }
  run_callback(id, [](MobileAgent& a, AgentContext& ctx) { a.on_created(ctx); });
  return id;
}

void AgentHost::spawn_clone(const MobileAgent& original, net::NodeId destination) {
  serial::Writer state;
  original.serialize(state);
  std::unique_ptr<MobileAgent> clone =
      platform_.registry().create(original.type_name());
  serial::Reader reader(state.bytes());
  clone->deserialize(reader);
  clone->id_ = AgentId{node_, platform_.simulator().now().as_micros(), next_seq_++};
  platform_.note_created();
  if (auto* observer = platform_.observer()) {
    observer->on_agent_created(clone->id(), original.type_name(), node_);
  }
  if (destination == node_) {
    adopt(std::move(clone), /*arrival=*/true, net::kInvalidNode);
  } else {
    platform_.begin_migration(std::move(clone), node_, destination);
  }
}

void AgentHost::adopt(std::unique_ptr<MobileAgent> agent, bool arrival,
                      net::NodeId failed_dest) {
  MARP_REQUIRE(agent != nullptr);
  const AgentId id = agent->id();
  MARP_REQUIRE_MSG(!agents_.contains(id), "agent already hosted here");
  agents_[id] = Hosted{std::move(agent), ++incarnation_counter_};
  if (arrival) {
    run_callback(id, [](MobileAgent& a, AgentContext& ctx) { a.on_arrival(ctx); });
  } else {
    run_callback(id, [failed_dest](MobileAgent& a, AgentContext& ctx) {
      a.on_migration_failed(ctx, failed_dest);
    });
  }
}

void AgentHost::deliver_envelope(const AgentEnvelope& envelope) {
  if (!agents_.contains(envelope.destination)) {
    ++dropped_agent_messages_;
    MARP_LOG_DEBUG("agent") << "message for departed "
                            << envelope.destination.to_string() << " at node "
                            << node_;
    return;
  }
  run_callback(envelope.destination, [&](MobileAgent& a, AgentContext& ctx) {
    a.on_message(ctx, envelope.inner_type, envelope.inner_payload);
  });
}

void AgentHost::raise_signal(std::uint32_t signal) {
  std::vector<AgentId> snapshot;
  snapshot.reserve(agents_.size());
  for (const auto& [id, hosted] : agents_) snapshot.push_back(id);
  for (const AgentId& id : snapshot) {
    run_callback(id, [signal](MobileAgent& a, AgentContext& ctx) {
      a.on_signal(ctx, signal);
    });
  }
}

std::vector<const MobileAgent*> AgentHost::resident_agents() const {
  std::vector<const MobileAgent*> out;
  out.reserve(agents_.size());
  for (const auto& [id, hosted] : agents_) out.push_back(hosted.agent.get());
  return out;
}

std::vector<AgentId> AgentHost::dispose_by_type(const std::string& type_name) {
  std::vector<AgentId> killed;
  for (const auto& [id, hosted] : agents_) {
    if (hosted.agent->type_name() == type_name) killed.push_back(id);
  }
  for (const AgentId& id : killed) {
    agents_.erase(id);
    platform_.note_disposed();
    if (auto* observer = platform_.observer()) {
      observer->on_agent_disposed(id, node_);
    }
  }
  return killed;
}

std::vector<AgentId> AgentHost::dispose_all() {
  std::vector<AgentId> killed;
  killed.reserve(agents_.size());
  for (const auto& [id, hosted] : agents_) killed.push_back(id);
  for (const AgentId& id : killed) {
    platform_.note_disposed();
    if (auto* observer = platform_.observer()) {
      observer->on_agent_disposed(id, node_);
    }
  }
  agents_.clear();
  return killed;
}

void AgentHost::set_service(const std::string& name, void* service) {
  services_[name] = service;
}

void* AgentHost::service(const std::string& name) const {
  auto it = services_.find(name);
  return it == services_.end() ? nullptr : it->second;
}

void AgentHost::send_from_here(net::NodeId dst, net::MessageType type,
                               serial::Bytes payload) {
  platform_.network().send(net::Message{node_, dst, type, std::move(payload)});
}

void AgentHost::arm_timer(const AgentId& id, std::uint64_t incarnation,
                          sim::SimTime delay, std::uint64_t token) {
  platform_.simulator().schedule(delay, [this, id, incarnation, token] {
    auto it = agents_.find(id);
    if (it == agents_.end() || it->second.incarnation != incarnation) return;
    run_callback(id, [token](MobileAgent& a, AgentContext& ctx) {
      a.on_timer(ctx, token);
    });
  }, static_cast<sim::ActorId>(node_));
}

}  // namespace marp::agent

// Agent identity.
//
// Per the paper (§3.2): "a unique identifier consisting of the host-name of
// the replicated server where the mobile agent is created plus the local
// creation time". We add a per-host sequence number so two agents created in
// the same microsecond stay distinct. The total order on AgentId is the
// deterministic tie-break rule of Theorem 2.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

#include "net/message.hpp"
#include "serial/byte_buffer.hpp"
#include "sim/time.hpp"

namespace marp::agent {

struct AgentId {
  net::NodeId origin = net::kInvalidNode;  ///< host the agent was created on
  std::int64_t created_us = 0;             ///< local creation time
  std::uint32_t seq = 0;                   ///< per-host creation counter

  constexpr bool valid() const noexcept { return origin != net::kInvalidNode; }

  /// Tie-break order (paper: "the tie is resolved by using the mobile
  /// agents' identifiers"): earlier creation wins, then lower origin, then
  /// lower sequence number.
  friend constexpr auto operator<=>(const AgentId& a, const AgentId& b) noexcept {
    if (auto c = a.created_us <=> b.created_us; c != 0) return c;
    if (auto c = a.origin <=> b.origin; c != 0) return c;
    return a.seq <=> b.seq;
  }
  friend constexpr bool operator==(const AgentId&, const AgentId&) noexcept = default;

  std::string to_string() const {
    std::ostringstream os;
    os << "agent(" << origin << '@' << created_us << '#' << seq << ')';
    return os.str();
  }

  void serialize(serial::Writer& w) const {
    w.varint(origin);
    w.svarint(created_us);
    w.varint(seq);
  }

  static AgentId deserialize(serial::Reader& r) {
    AgentId id;
    id.origin = static_cast<net::NodeId>(r.varint());
    id.created_us = r.svarint();
    id.seq = static_cast<std::uint32_t>(r.varint());
    return id;
  }
};

struct AgentIdHash {
  std::size_t operator()(const AgentId& id) const noexcept {
    std::uint64_t h = id.origin;
    h = h * 0x9E3779B97F4A7C15ULL + static_cast<std::uint64_t>(id.created_us);
    h = h * 0x9E3779B97F4A7C15ULL + id.seq;
    return static_cast<std::size_t>(h ^ (h >> 32));
  }
};

}  // namespace marp::agent

// AgentHost: the per-node runtime that hosts agents (the "Tahiti server" of
// the paper's Aglets prototype).
//
// A host executes agent callbacks, carries out their migration/dispose
// intents, routes agent-addressed messages, publishes named services to
// visiting agents, and raises local signals (used by the MARP server to wake
// waiting agents when a locking-list head changes).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "agent/agent.hpp"
#include "agent/agent_id.hpp"
#include "net/network.hpp"

namespace marp::agent {

class AgentPlatform;

/// Envelope type for node-to-agent messages (decoded by the host).
constexpr net::MessageType kAgentMessageType = 0xA0000002;

/// Payload layout of a node-to-agent message.
struct AgentEnvelope {
  AgentId destination;
  net::MessageType inner_type = 0;
  serial::Bytes inner_payload;

  serial::Bytes encode() const;
  static AgentEnvelope decode(const serial::Bytes& payload);
};

class AgentHost {
 public:
  AgentHost(AgentPlatform& platform, net::NodeId node);

  AgentHost(const AgentHost&) = delete;
  AgentHost& operator=(const AgentHost&) = delete;

  net::NodeId node() const noexcept { return node_; }
  AgentPlatform& platform() noexcept { return platform_; }

  /// Create an agent on this host. Assigns its id (origin = this node,
  /// creation time = now, per-host sequence) and runs on_created, honouring
  /// any dispatch/dispose intent it sets. Returns the assigned id.
  AgentId create(std::unique_ptr<MobileAgent> agent);

  bool has_agent(const AgentId& id) const { return agents_.contains(id); }
  std::size_t agent_count() const noexcept { return agents_.size(); }

  /// Destroy every hosted agent without callbacks (fail-stop of the host
  /// process kills the agents executing on it). Returns the ids killed.
  std::vector<AgentId> dispose_all();

  /// Destroy hosted agents of one registered type (e.g. a rollback aborts
  /// the in-flight update agents on this host). Returns the ids killed.
  std::vector<AgentId> dispose_by_type(const std::string& type_name);

  /// Read-only view of the hosted agents (tests / diagnostics).
  std::vector<const MobileAgent*> resident_agents() const;

  /// Agent-addressed message arriving at this node; dropped (with a count)
  /// if the agent has already moved on or been disposed.
  void deliver_envelope(const AgentEnvelope& envelope);

  /// Wake every hosted agent with a local signal (snapshot semantics: agents
  /// created by a signal handler do not receive this signal).
  void raise_signal(std::uint32_t signal);

  /// Publish/lookup a named service object for visiting agents.
  void set_service(const std::string& name, void* service);
  void* service(const std::string& name) const;

  /// Messages an agent sends through its context originate from this node.
  void send_from_here(net::NodeId dst, net::MessageType type, serial::Bytes payload);

  std::uint64_t dropped_agent_messages() const noexcept { return dropped_agent_messages_; }

 private:
  friend class AgentPlatform;
  friend class AgentContext;

  struct Hosted {
    std::unique_ptr<MobileAgent> agent;
    std::uint64_t incarnation = 0;  ///< bumps every time the agent lands here
  };

  /// Land a reconstructed agent (migration arrival or failure revival).
  void adopt(std::unique_ptr<MobileAgent> agent, bool arrival, net::NodeId failed_dest);

  /// Materialize a clone of `original` (fresh identity, same state) and
  /// ship it to `destination` — or host it here when destination == node().
  void spawn_clone(const MobileAgent& original, net::NodeId destination);

  /// Run one callback and then carry out the context's intent.
  template <typename Fn>
  void run_callback(const AgentId& id, Fn&& fn);

  void arm_timer(const AgentId& id, std::uint64_t incarnation, sim::SimTime delay,
                 std::uint64_t token);

  AgentPlatform& platform_;
  net::NodeId node_;
  std::unordered_map<AgentId, Hosted, AgentIdHash> agents_;
  std::unordered_map<std::string, void*> services_;
  std::uint32_t next_seq_ = 0;
  std::uint64_t incarnation_counter_ = 0;
  std::uint64_t dropped_agent_messages_ = 0;
};

}  // namespace marp::agent

#include "agent/registry.hpp"

#include "util/assert.hpp"

namespace marp::agent {

void AgentRegistry::register_type(const std::string& name, Factory factory) {
  MARP_REQUIRE_MSG(!factories_.contains(name), "agent type registered twice: " + name);
  MARP_REQUIRE(factory != nullptr);
  factories_.emplace(name, std::move(factory));
}

std::unique_ptr<MobileAgent> AgentRegistry::create(const std::string& name) const {
  auto it = factories_.find(name);
  MARP_REQUIRE_MSG(it != factories_.end(), "unknown agent type: " + name);
  return it->second();
}

}  // namespace marp::agent

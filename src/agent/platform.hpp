// AgentPlatform: the whole-network agent runtime.
//
// Owns one AgentHost per node, the type registry, and the migration
// machinery. Migration is a true serialize → transfer → reconstruct round
// trip, charged through the network's latency model by frame size. Failure
// semantics follow the paper (§2): a migration to a down/unreachable host is
// detected after `migration_timeout` and the agent is revived where it was,
// with on_migration_failed() letting it retry or skip the replica.
#pragma once

#include <memory>
#include <unordered_set>
#include <vector>

#include "agent/host.hpp"
#include "agent/registry.hpp"
#include "net/network.hpp"

namespace marp::agent {

struct PlatformConfig {
  /// Time for the source to conclude a migration failed (connection
  /// timeout). The paper: "If a mobile agent cannot migrate to a replicated
  /// server host after certain amount of time, the protocol assumes that
  /// the replica process at the host has temporarily failed."
  sim::SimTime migration_timeout = sim::SimTime::millis(50);

  /// Fixed per-migration overhead on top of serialized state (class name,
  /// codebase reference, frame headers — Aglets transfers are not free).
  std::size_t migration_overhead_bytes = 512;
};

/// Observer for agent lifecycle events (timeline recording, debugging UIs —
/// the paper's §4 prototype had "an interface … to visualize the
/// execution"). All callbacks are optional; default is no-op.
class PlatformObserver {
 public:
  virtual ~PlatformObserver() = default;
  virtual void on_agent_created(const AgentId& id, const std::string& type,
                                net::NodeId at) {
    (void)id, (void)type, (void)at;
  }
  virtual void on_agent_disposed(const AgentId& id, net::NodeId at) {
    (void)id, (void)at;
  }
  virtual void on_migration_started(const AgentId& id, net::NodeId from,
                                    net::NodeId to, std::size_t bytes) {
    (void)id, (void)from, (void)to, (void)bytes;
  }
  virtual void on_migration_completed(const AgentId& id, net::NodeId at) {
    (void)id, (void)at;
  }
  virtual void on_migration_failed(const AgentId& id, net::NodeId from,
                                   net::NodeId to) {
    (void)id, (void)from, (void)to;
  }
};

struct PlatformStats {
  std::uint64_t agents_created = 0;
  std::uint64_t agents_disposed = 0;
  std::uint64_t migrations_started = 0;
  std::uint64_t migrations_completed = 0;
  std::uint64_t migrations_failed = 0;
  std::uint64_t migration_bytes = 0;
  /// Remote substrate only: transfer acks that cancelled a pending revival
  /// (sender side) and duplicate transfers dropped because the agent was
  /// already live here (receiver side).
  std::uint64_t remote_transfers_acked = 0;
  std::uint64_t remote_transfers_deduped = 0;
};

class AgentPlatform {
 public:
  AgentPlatform(net::Network& network, PlatformConfig config = {});

  AgentPlatform(const AgentPlatform&) = delete;
  AgentPlatform& operator=(const AgentPlatform&) = delete;

  net::Network& network() noexcept { return network_; }
  sim::Simulator& simulator() noexcept { return network_.simulator(); }
  AgentRegistry& registry() noexcept { return registry_; }
  const PlatformConfig& config() const noexcept { return config_; }

  AgentHost& host(net::NodeId node);
  std::size_t size() const noexcept { return hosts_.size(); }

  /// Install the handler for non-agent application messages at `node`.
  /// (The platform owns the node's network registration and demuxes
  /// agent envelopes to the host, everything else to this handler.)
  void set_app_handler(net::NodeId node, net::Network::Handler handler);

  /// Send a message addressed to an agent wherever it currently is — the
  /// sender names the node it believes hosts the agent (MARP replies to
  /// the node the request came from).
  void send_to_agent(net::NodeId src, net::NodeId dst_node, const AgentId& agent,
                     net::MessageType type, serial::Bytes payload);

  const PlatformStats& stats() const noexcept { return stats_; }
  void reset_stats() { stats_ = PlatformStats{}; }

  /// Install a lifecycle observer (nullptr to remove). Not owned.
  void set_observer(PlatformObserver* observer) noexcept { observer_ = observer; }
  PlatformObserver* observer() const noexcept { return observer_; }

  /// Total number of agents currently hosted anywhere (in-flight excluded).
  std::size_t live_agents() const;

  /// Aglets' "retract": forcibly pull agent `id` from whichever host holds
  /// it to `to` (it lands with on_arrival, like any migration). Returns
  /// false if the agent is not currently hosted anywhere (mid-flight or
  /// disposed); true if it was moved or is already at `to`.
  bool retract(const AgentId& id, net::NodeId to);

  // ---- migration frame codec (public: the real transport ships these) ----

  /// [str type-name][AgentId][length-prefixed state] — what actually crosses
  /// the wire (inside an rpc AgentTransfer frame on the real substrate).
  serial::Bytes encode_frame(const MobileAgent& agent) const;
  /// Rehydrate; throws serial::DecodeError subclasses on malformed frames.
  std::unique_ptr<MobileAgent> decode_frame(const serial::Bytes& bytes) const;

  /// Outcome of one transfer body arriving off the wire.
  struct RemoteTransfer {
    std::uint64_t token = 0;  ///< echo back in an AgentTransferAck
    bool adopted = false;     ///< false: duplicate — the agent was already live here
    AgentId id;
  };

  /// A token-wrapped transfer body (rpc::TransferBody) arrived off the wire:
  /// rehydrate the agent and adopt it at this process's local node
  /// (on_arrival fires there). A transfer whose agent is already hosted here
  /// is dropped instead of adopted twice, but still reports its token so the
  /// caller acks it and the sender stands down. Must run on the driver
  /// thread. Throws serial::DecodeError on malformed bodies — the caller
  /// must NOT ack then: no adoption happened, and the sender's always-armed
  /// migration timer revives the agent there.
  RemoteTransfer receive_remote_transfer(const serial::Bytes& body);

  /// A transfer ack came back: delivery is confirmed, cancel the pending
  /// revival for `token`. A late ack (the revival already fired) is a no-op.
  void acknowledge_remote_transfer(std::uint64_t token);

  /// Transfers shipped but neither acked nor revived yet. At quiescence this
  /// must be 0 on every node: each in-flight agent either arrived (ack) or
  /// came back (revival) — the crash-recovery harness asserts exactly that.
  std::size_t pending_remote_transfers() const noexcept {
    return pending_transfers_.size();
  }

 private:
  friend class AgentHost;
  friend class AgentContext;

  /// Serialize + ship an agent from `src` to `dest`.
  void begin_migration(std::unique_ptr<MobileAgent> agent, net::NodeId src,
                       net::NodeId dest);

  void note_disposed() { ++stats_.agents_disposed; }
  void note_created() { ++stats_.agents_created; }

  net::Network& network_;
  PlatformConfig config_;
  AgentRegistry registry_;
  std::vector<std::unique_ptr<AgentHost>> hosts_;
  std::vector<net::Network::Handler> app_handlers_;
  PlatformStats stats_;
  PlatformObserver* observer_ = nullptr;

  /// Remote substrate: transfer tokens sent but not yet acked. A token still
  /// present when its revival timer fires means the transfer is presumed
  /// lost and the agent is revived at the source.
  std::uint64_t next_transfer_token_ = 0;
  std::unordered_set<std::uint64_t> pending_transfers_;
};

}  // namespace marp::agent

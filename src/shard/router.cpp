#include "shard/router.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace marp::shard {

ShardRouter::ShardRouter(std::size_t num_groups) : num_groups_(num_groups) {
  MARP_REQUIRE_MSG(num_groups_ >= 1, "a lock space needs at least one group");
}

std::uint64_t ShardRouter::stable_hash(std::string_view bytes) noexcept {
  // FNV-1a, 64-bit. Chosen for determinism across platforms, not speed:
  // keys are short and group_of is far off the simulation's hot path.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

GroupId ShardRouter::group_of(std::string_view key) const noexcept {
  if (num_groups_ == 1) return 0;
  return static_cast<GroupId>(stable_hash(key) % num_groups_);
}

std::vector<GroupId> ShardRouter::groups_of(
    const std::vector<std::string>& keys) const {
  std::vector<GroupId> groups;
  groups.reserve(keys.size());
  for (const std::string& key : keys) groups.push_back(group_of(key));
  std::sort(groups.begin(), groups.end());
  groups.erase(std::unique(groups.begin(), groups.end()), groups.end());
  return groups;
}

}  // namespace marp::shard

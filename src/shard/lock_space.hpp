// LockSpace — a server's sharded locking state: one independent Locking
// List plus update-grant holder per lock group.
//
// Each group is a complete instance of the paper's per-server coordination
// state (§3.2): the arrival-ordered lock queue and the exclusive update
// grant that structurally enforces Theorem 2. Groups never interact; an
// update session that spans several groups simply holds several grants,
// acquired all-or-nothing per server in ascending group-id order.
#pragma once

#include <optional>
#include <vector>

#include "agent/agent_id.hpp"
#include "replica/locking.hpp"
#include "shard/router.hpp"

namespace marp::shard {

class LockSpace {
 public:
  /// One lock group's server-side state.
  struct Group {
    replica::LockingList ll;
    /// Agent holding this group's update grant, if any (exclusive — the
    /// structural Theorem-2 enforcement, now per group).
    std::optional<agent::AgentId> holder;
    /// Attempt number the grant was taken under (stale-attempt fencing).
    std::uint32_t holder_attempt = 0;
  };

  explicit LockSpace(std::size_t num_groups = 1);

  std::size_t num_groups() const noexcept { return groups_.size(); }

  Group& group(GroupId g);
  const Group& group(GroupId g) const;

  /// Every group id, ascending — for "applies to all groups" operations.
  std::vector<GroupId> all_groups() const;

  /// Remove `agent` from the locking lists of `groups` (all groups when
  /// empty). Returns true if any entry was removed.
  bool remove_from_lists(const agent::AgentId& agent,
                         const std::vector<GroupId>& groups);

  /// Release every grant `agent` holds with holder_attempt <= `attempt`
  /// (an UNLOCK withdraws an attempt wholesale). Returns true if any grant
  /// was released.
  bool release_grants(const agent::AgentId& agent, std::uint32_t attempt);

  /// Drop every trace of `agent` — lock entries and grants in all groups
  /// (failure purge). Returns true if anything changed.
  bool purge(const agent::AgentId& agent);

  /// Sum of queued lock requests across all groups (introspection).
  std::size_t total_queued() const;

  /// Reset to empty (fail-stop / rollback): all lists and grants dropped.
  void clear();

 private:
  std::vector<Group> groups_;
};

}  // namespace marp::shard

#include "shard/lock_space.hpp"

#include <numeric>

#include "util/assert.hpp"

namespace marp::shard {

LockSpace::LockSpace(std::size_t num_groups) : groups_(num_groups) {
  MARP_REQUIRE_MSG(num_groups >= 1, "a lock space needs at least one group");
}

LockSpace::Group& LockSpace::group(GroupId g) {
  MARP_REQUIRE_MSG(g < groups_.size(), "lock group id out of range");
  return groups_[g];
}

const LockSpace::Group& LockSpace::group(GroupId g) const {
  MARP_REQUIRE_MSG(g < groups_.size(), "lock group id out of range");
  return groups_[g];
}

std::vector<GroupId> LockSpace::all_groups() const {
  std::vector<GroupId> ids(groups_.size());
  std::iota(ids.begin(), ids.end(), GroupId{0});
  return ids;
}

bool LockSpace::remove_from_lists(const agent::AgentId& agent,
                                  const std::vector<GroupId>& groups) {
  bool changed = false;
  if (groups.empty()) {
    for (Group& g : groups_) changed = g.ll.remove(agent) || changed;
    return changed;
  }
  for (const GroupId g : groups) changed = group(g).ll.remove(agent) || changed;
  return changed;
}

bool LockSpace::release_grants(const agent::AgentId& agent, std::uint32_t attempt) {
  bool changed = false;
  for (Group& g : groups_) {
    if (g.holder == agent && g.holder_attempt <= attempt) {
      g.holder.reset();
      changed = true;
    }
  }
  return changed;
}

bool LockSpace::purge(const agent::AgentId& agent) {
  bool changed = false;
  for (Group& g : groups_) {
    changed = g.ll.remove(agent) || changed;
    if (g.holder == agent) {
      g.holder.reset();
      changed = true;
    }
  }
  return changed;
}

std::size_t LockSpace::total_queued() const {
  std::size_t total = 0;
  for (const Group& g : groups_) total += g.ll.size();
  return total;
}

void LockSpace::clear() {
  for (Group& g : groups_) g = Group{};
}

}  // namespace marp::shard

// Lock-space sharding: the stable key → lock-group router.
//
// The paper keeps one Locking List per server, so every update — to any key
// — funnels through a single replica-wide lock. Partitioning the keyspace
// into `num_groups` lock groups lets non-conflicting updates run the §3.2
// majority-consensus race independently and commit in parallel; Theorems
// 1–3 hold within each group because each group is a complete, unmodified
// instance of the paper's locking machinery. `num_groups = 1` reproduces
// the paper bit-for-bit.
//
// The router must be a pure function of (key, num_groups): every server and
// every agent computes group membership independently, so any disagreement
// would silently break mutual exclusion. Hence a fixed hash (FNV-1a),
// never std::hash (implementation-defined) nor anything seeded.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace marp::shard {

/// Identifies one lock group (one independent Locking-List instance).
using GroupId = std::uint32_t;

class ShardRouter {
 public:
  explicit ShardRouter(std::size_t num_groups = 1);

  std::size_t num_groups() const noexcept { return num_groups_; }

  /// Lock group responsible for `key`. Deterministic across processes.
  GroupId group_of(std::string_view key) const noexcept;

  /// Group set of a write-set: sorted ascending, deduplicated. Agents
  /// acquire groups in exactly this order (ascending group id), which keeps
  /// multi-group write-sets deadlock-free.
  std::vector<GroupId> groups_of(const std::vector<std::string>& keys) const;

  /// 64-bit FNV-1a — the stable hash behind group_of, exposed for tests.
  static std::uint64_t stable_hash(std::string_view bytes) noexcept;

 private:
  std::size_t num_groups_;
};

}  // namespace marp::shard

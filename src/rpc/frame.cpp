#include "rpc/frame.hpp"

namespace marp::rpc {

const char* decode_status_name(DecodeStatus status) noexcept {
  switch (status) {
    case DecodeStatus::Ok: return "ok";
    case DecodeStatus::Truncated: return "truncated";
    case DecodeStatus::BadMagic: return "bad-magic";
    case DecodeStatus::BadVersion: return "bad-version";
    case DecodeStatus::BadLength: return "bad-length";
    case DecodeStatus::ChecksumMismatch: return "checksum-mismatch";
    case DecodeStatus::BadTrace: return "bad-trace";
  }
  return "?";
}

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size) noexcept {
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= data[i];
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

serial::Bytes encode_frame(FrameType type, net::NodeId src, net::NodeId dst,
                           std::uint64_t seq, const serial::Bytes& body,
                           bool with_checksum, std::uint16_t incarnation,
                           const TraceContext* trace) {
  serial::Bytes wire_body = body;
  std::uint16_t flags = with_checksum ? kFlagChecksum : 0;
  if (trace != nullptr) {
    const serial::Bytes tail = encode_trace_context(*trace);
    wire_body.insert(wire_body.end(), tail.begin(), tail.end());
    flags |= kFlagTrace;
  }
  serial::Writer w;
  w.u32le(kMagic);
  w.u16le(kVersion);
  w.u16le(static_cast<std::uint16_t>(type));
  w.u16le(flags);
  w.u16le(incarnation);
  w.u32le(src);
  w.u32le(dst);
  w.u64le(seq);
  w.u32le(static_cast<std::uint32_t>(wire_body.size()));
  w.u64le(with_checksum ? fnv1a64(wire_body.data(), wire_body.size()) : 0);
  serial::Bytes out = w.take();
  out.insert(out.end(), wire_body.begin(), wire_body.end());
  return out;
}

serial::Bytes encode_trace_context(const TraceContext& context) {
  serial::Writer w;
  w.u64le(context.session_id);
  w.u64le(context.span_id);
  w.u32le(context.origin);
  w.u64le(static_cast<std::uint64_t>(context.send_ts_us));
  return w.take();
}

bool decode_trace_context(const std::uint8_t* data, std::size_t size,
                          TraceContext* out) {
  if (size != kTraceContextSize) return false;
  serial::Reader r(data, size);
  TraceContext context;
  context.session_id = r.u64le();
  context.span_id = r.u64le();
  context.origin = r.u32le();
  context.send_ts_us = static_cast<std::int64_t>(r.u64le());
  *out = context;
  return true;
}

DecodeStatus extract_trace_context(Frame* frame) {
  if ((frame->header.flags & kFlagTrace) == 0) return DecodeStatus::Ok;
  if (frame->body.size() < kTraceContextSize) return DecodeStatus::BadTrace;
  TraceContext context;
  const std::size_t tail = frame->body.size() - kTraceContextSize;
  if (!decode_trace_context(frame->body.data() + tail, kTraceContextSize,
                            &context)) {
    return DecodeStatus::BadTrace;
  }
  frame->trace = context;
  frame->body.resize(tail);
  return DecodeStatus::Ok;
}

DecodeStatus decode_header(const std::uint8_t* data, std::size_t size,
                           FrameHeader* out) {
  if (size < kHeaderSize) return DecodeStatus::Truncated;
  serial::Reader r(data, kHeaderSize);
  if (r.u32le() != kMagic) return DecodeStatus::BadMagic;
  if (r.u16le() != kVersion) return DecodeStatus::BadVersion;
  FrameHeader h;
  h.type = r.u16le();
  h.flags = r.u16le();
  h.incarnation = r.u16le();
  h.src = r.u32le();
  h.dst = r.u32le();
  h.seq = r.u64le();
  h.body_len = r.u32le();
  h.checksum = r.u64le();
  if (h.body_len > kMaxBodyLen) return DecodeStatus::BadLength;
  *out = h;
  return DecodeStatus::Ok;
}

DecodeStatus verify_body(const FrameHeader& header, const std::uint8_t* body,
                         std::size_t size) {
  if (size < header.body_len) return DecodeStatus::Truncated;
  if ((header.flags & kFlagChecksum) != 0 &&
      fnv1a64(body, header.body_len) != header.checksum) {
    return DecodeStatus::ChecksumMismatch;
  }
  return DecodeStatus::Ok;
}

DecodeStatus decode_frame(const serial::Bytes& buffer, Frame* out) {
  FrameHeader header;
  const DecodeStatus hs = decode_header(buffer.data(), buffer.size(), &header);
  if (hs != DecodeStatus::Ok) return hs;
  const std::uint8_t* body = buffer.data() + kHeaderSize;
  const std::size_t avail = buffer.size() - kHeaderSize;
  const DecodeStatus bs = verify_body(header, body, avail);
  if (bs != DecodeStatus::Ok) return bs;
  out->header = header;
  out->body.assign(body, body + header.body_len);
  out->trace.reset();
  return extract_trace_context(out);
}

serial::Bytes encode_app_body(const net::Message& message) {
  serial::Writer w;
  w.varint(message.type);
  w.raw(message.payload);
  return w.take();
}

net::Message decode_app_body(const FrameHeader& header, const serial::Bytes& body) {
  serial::Reader r(body);
  net::Message message;
  message.src = header.src;
  message.dst = header.dst;
  message.type = static_cast<net::MessageType>(r.varint());
  message.payload = r.raw();
  if (!r.at_end()) throw serial::MalformedError("trailing bytes after app message");
  return message;
}

serial::Bytes encode_transfer_body(std::uint64_t token, const serial::Bytes& frame) {
  serial::Writer w;
  w.u64le(token);
  w.raw(frame);
  return w.take();
}

TransferBody decode_transfer_body(const serial::Bytes& body) {
  serial::Reader r(body);
  TransferBody transfer;
  transfer.token = r.u64le();
  transfer.frame = r.raw();
  if (!r.at_end()) throw serial::MalformedError("trailing bytes after agent transfer");
  return transfer;
}

serial::Bytes encode_transfer_ack_body(std::uint64_t token) {
  serial::Writer w;
  w.u64le(token);
  return w.take();
}

std::uint64_t decode_transfer_ack_body(const serial::Bytes& body) {
  serial::Reader r(body);
  const std::uint64_t token = r.u64le();
  if (!r.at_end()) throw serial::MalformedError("trailing bytes after transfer ack");
  return token;
}

serial::Bytes encode_announce_body(const AnnounceBody& announce) {
  serial::Writer w;
  w.varint(announce.node);
  w.varint(announce.incarnation);
  return w.take();
}

AnnounceBody decode_announce_body(const serial::Bytes& body) {
  serial::Reader r(body);
  AnnounceBody announce;
  announce.node = static_cast<net::NodeId>(r.varint());
  announce.incarnation = static_cast<std::uint16_t>(r.varint());
  if (!r.at_end()) throw serial::MalformedError("trailing bytes after announce");
  return announce;
}

}  // namespace marp::rpc

// Control-plane RPC riding the same framed connections as protocol traffic.
//
// The cluster harness (tools/marp_cluster, the cross-substrate tests) talks
// to each node over a classic request/reply RPC: a ControlRequest frame whose
// body starts with a fixed `req_header` (transaction id + procedure number),
// answered by a ControlReply frame starting with a fixed `reply_header`
// (same xid + status). Procedure arguments/results follow the headers,
// marshalled with serial::Writer/Reader.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "serial/byte_buffer.hpp"

namespace marp::rpc {

/// Procedures a RealNode serves.
enum class Proc : std::uint32_t {
  Ping = 1,      ///< liveness probe; empty args/result
  Status = 2,    ///< → NodeStatus (workload progress, quiescence)
  Dump = 3,      ///< → serialized NodeDump (store, commit log, counters)
  Shutdown = 4,  ///< stop the node's run loop after replying
  Heartbeat = 5, ///< cheap supervisor probe → HeartbeatReply; a node that
                 ///  cannot answer this is treated as dead (hung == crashed)
  SyncPull = 6,  ///< trigger one anti-entropy pull from every live peer
                 ///  (the harness's convergence barrier before final dumps)
  TraceDump = 7, ///< → serialized NodeTrace (span ring + link clock samples)
  ViewChange = 8, ///< args {join: bool, node: varint} → {accepted: bool,
                  ///  epoch: varint}; the target node asks its local
                  ///  protocol stack to coordinate a membership epoch bump
};

/// Reply status codes.
constexpr std::int32_t kOk = 0;
constexpr std::int32_t kBadProc = -1;
constexpr std::int32_t kError = -2;

struct ReqHeader {
  std::uint64_t xid = 0;   ///< caller-chosen transaction id, echoed in reply
  std::uint32_t proc = 0;  ///< Proc
  std::uint32_t client = 0;

  void serialize(serial::Writer& w) const {
    w.u64le(xid);
    w.u32le(proc);
    w.u32le(client);
  }
  static ReqHeader deserialize(serial::Reader& r) {
    ReqHeader h;
    h.xid = r.u64le();
    h.proc = r.u32le();
    h.client = r.u32le();
    return h;
  }
};

struct ReplyHeader {
  std::uint64_t xid = 0;
  std::int32_t status = kOk;

  void serialize(serial::Writer& w) const {
    w.u64le(xid);
    w.u32le(static_cast<std::uint32_t>(status));
  }
  static ReplyHeader deserialize(serial::Reader& r) {
    ReplyHeader h;
    h.xid = r.u64le();
    h.status = static_cast<std::int32_t>(r.u32le());
    return h;
  }
};

/// Snapshot of a node's workload progress, returned by Proc::Status.
struct NodeStatus {
  std::uint64_t sessions_target = 0;
  std::uint64_t sessions_completed = 0;
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t live_agents = 0;
  bool quiesced = false;  ///< all sessions done and no agent still lingering
  /// How many times this node has been reincarnated (0 = first life).
  std::uint64_t incarnation = 0;
  /// True while a reincarnated node is still catching up via anti-entropy
  /// (it answers protocol traffic but has not resumed its workload yet).
  bool catching_up = false;
  /// Installed membership epoch (0 = dynamic membership disabled).
  std::uint64_t epoch = 0;
  /// True once the node has left the view and drained (dynamic membership).
  bool retired = false;

  void serialize(serial::Writer& w) const {
    w.varint(sessions_target);
    w.varint(sessions_completed);
    w.varint(commits);
    w.varint(aborts);
    w.varint(live_agents);
    w.boolean(quiesced);
    w.varint(incarnation);
    w.boolean(catching_up);
    w.varint(epoch);
    w.boolean(retired);
  }
  static NodeStatus deserialize(serial::Reader& r) {
    NodeStatus s;
    s.sessions_target = r.varint();
    s.sessions_completed = r.varint();
    s.commits = r.varint();
    s.aborts = r.varint();
    s.live_agents = r.varint();
    s.quiesced = r.boolean();
    s.incarnation = r.varint();
    s.catching_up = r.boolean();
    s.epoch = r.varint();
    s.retired = r.boolean();
    return s;
  }
};

/// Minimal liveness/progress probe returned by Proc::Heartbeat. Kept apart
/// from NodeStatus so the supervisor's high-frequency probe stays cheap and
/// its wire shape can evolve independently of the workload snapshot.
struct HeartbeatReply {
  std::uint64_t incarnation = 0;
  std::uint64_t sessions_completed = 0;
  std::uint64_t live_agents = 0;
  bool quiesced = false;

  void serialize(serial::Writer& w) const {
    w.varint(incarnation);
    w.varint(sessions_completed);
    w.varint(live_agents);
    w.boolean(quiesced);
  }
  static HeartbeatReply deserialize(serial::Reader& r) {
    HeartbeatReply h;
    h.incarnation = r.varint();
    h.sessions_completed = r.varint();
    h.live_agents = r.varint();
    h.quiesced = r.boolean();
    return h;
  }
};

/// Full per-node state snapshot, returned by Proc::Dump — everything the
/// cross-substrate equivalence checker compares, in wire-friendly form.
/// Version *times* are deliberately absent: virtual microseconds and wall
/// microseconds never match, so equivalence is defined over values, writers,
/// and orders.
struct NodeDump {
  struct Item {
    std::string key;
    std::string value;
    std::uint32_t writer = 0;  ///< origin node of the committing session
  };
  /// One store apply, in local apply order (per-key order oracle).
  struct Applied {
    std::string key;
    std::uint32_t writer = 0;
  };

  NodeStatus status;
  std::vector<Item> items;
  std::vector<Applied> history;

  std::uint64_t mutex_violations = 0;  ///< Theorem 2 monitor — must stay 0
  std::uint64_t commit_retransmits = 0;
  std::uint64_t report_retransmits = 0;
  std::uint64_t release_retransmits = 0;
  std::uint64_t anomalies_total = 0;

  // transport-level counters (net.real.*)
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t agent_frames_sent = 0;
  std::uint64_t agent_frames_received = 0;
  std::uint64_t agent_acks_sent = 0;
  std::uint64_t agent_acks_received = 0;
  /// Agent transfers revived at the source (no ack within the migration
  /// timeout) and duplicates dropped by the receiver-side dedup.
  std::uint64_t agent_transfers_revived = 0;
  std::uint64_t agent_transfers_deduped = 0;
  std::uint64_t loss_injected = 0;
  std::uint64_t checksum_rejected = 0;
  std::uint64_t malformed_rejected = 0;
  std::uint64_t send_failures = 0;

  // crash-recovery counters (PR 7). At quiescence `agent_transfers_pending`
  // must be 0 on every node: every in-flight transfer either got acked or
  // its revival timer fired — no agent may be left in limbo.
  std::uint64_t agent_transfers_pending = 0;
  std::uint64_t stale_incarnation_rejected = 0;
  std::uint64_t checkpoint_epoch = 0;
  std::uint64_t checkpoints_written = 0;
  std::uint64_t journal_appends = 0;
  std::uint64_t journal_records_replayed = 0;
  bool journal_tail_truncated = false;   ///< replay hit a torn final record
  bool checkpoint_rejected = false;      ///< on-disk checkpoint failed checks
  std::uint64_t catchup_pulls = 0;       ///< anti-entropy requests sent
  std::uint64_t catchup_merges = 0;      ///< anti-entropy replies merged
  std::uint64_t session_retries = 0;     ///< sessions re-submitted (abort/stall)
  std::uint64_t agents_lease_purged = 0; ///< dead-agent lock state expired

  /// Full CounterRegistry namespace dump (run./net./agent./marp./fault./
  /// trace./link.*), sorted by name. The named fields above remain the
  /// stable wire contract the equivalence checker reads; this vector is the
  /// open-ended side — `marp_node --counters` and the harness print it
  /// verbatim, so new namespaces need no wire change.
  std::vector<std::pair<std::string, std::uint64_t>> counters;

  void serialize(serial::Writer& w) const {
    status.serialize(w);
    w.varint(items.size());
    for (const Item& item : items) {
      w.str(item.key);
      w.str(item.value);
      w.varint(item.writer);
    }
    w.varint(history.size());
    for (const Applied& applied : history) {
      w.str(applied.key);
      w.varint(applied.writer);
    }
    w.varint(mutex_violations);
    w.varint(commit_retransmits);
    w.varint(report_retransmits);
    w.varint(release_retransmits);
    w.varint(anomalies_total);
    w.varint(frames_sent);
    w.varint(frames_received);
    w.varint(agent_frames_sent);
    w.varint(agent_frames_received);
    w.varint(agent_acks_sent);
    w.varint(agent_acks_received);
    w.varint(agent_transfers_revived);
    w.varint(agent_transfers_deduped);
    w.varint(loss_injected);
    w.varint(checksum_rejected);
    w.varint(malformed_rejected);
    w.varint(send_failures);
    w.varint(agent_transfers_pending);
    w.varint(stale_incarnation_rejected);
    w.varint(checkpoint_epoch);
    w.varint(checkpoints_written);
    w.varint(journal_appends);
    w.varint(journal_records_replayed);
    w.boolean(journal_tail_truncated);
    w.boolean(checkpoint_rejected);
    w.varint(catchup_pulls);
    w.varint(catchup_merges);
    w.varint(session_retries);
    w.varint(agents_lease_purged);
    w.varint(counters.size());
    for (const auto& [name, value] : counters) {
      w.str(name);
      w.varint(value);
    }
  }
  static NodeDump deserialize(serial::Reader& r) {
    NodeDump d;
    d.status = NodeStatus::deserialize(r);
    const std::uint64_t n_items = r.length_prefix(2);
    d.items.reserve(n_items);
    for (std::uint64_t i = 0; i < n_items; ++i) {
      Item item;
      item.key = r.str();
      item.value = r.str();
      item.writer = static_cast<std::uint32_t>(r.varint());
      d.items.push_back(std::move(item));
    }
    const std::uint64_t n_history = r.length_prefix(2);
    d.history.reserve(n_history);
    for (std::uint64_t i = 0; i < n_history; ++i) {
      Applied applied;
      applied.key = r.str();
      applied.writer = static_cast<std::uint32_t>(r.varint());
      d.history.push_back(std::move(applied));
    }
    d.mutex_violations = r.varint();
    d.commit_retransmits = r.varint();
    d.report_retransmits = r.varint();
    d.release_retransmits = r.varint();
    d.anomalies_total = r.varint();
    d.frames_sent = r.varint();
    d.frames_received = r.varint();
    d.agent_frames_sent = r.varint();
    d.agent_frames_received = r.varint();
    d.agent_acks_sent = r.varint();
    d.agent_acks_received = r.varint();
    d.agent_transfers_revived = r.varint();
    d.agent_transfers_deduped = r.varint();
    d.loss_injected = r.varint();
    d.checksum_rejected = r.varint();
    d.malformed_rejected = r.varint();
    d.send_failures = r.varint();
    d.agent_transfers_pending = r.varint();
    d.stale_incarnation_rejected = r.varint();
    d.checkpoint_epoch = r.varint();
    d.checkpoints_written = r.varint();
    d.journal_appends = r.varint();
    d.journal_records_replayed = r.varint();
    d.journal_tail_truncated = r.boolean();
    d.checkpoint_rejected = r.boolean();
    d.catchup_pulls = r.varint();
    d.catchup_merges = r.varint();
    d.session_retries = r.varint();
    d.agents_lease_purged = r.varint();
    const std::uint64_t n_counters = r.length_prefix(2);
    d.counters.reserve(n_counters);
    for (std::uint64_t i = 0; i < n_counters; ++i) {
      std::string name = r.str();
      const std::uint64_t value = r.varint();
      d.counters.emplace_back(std::move(name), value);
    }
    return d;
  }
};

/// Per-node trace snapshot, returned by Proc::TraceDump. Spans are the
/// node's Tracer ring verbatim (timestamps in that node's private trace
/// clock — the merge step aligns them); link samples are (peer, send, recv)
/// timestamp pairs harvested from TraceContext tails, the raw material for
/// pairwise clock-offset estimation.
struct NodeTrace {
  /// `Span::end_us` value marking a span still open at dump time. A remote
  /// migration legitimately never ends on its source node — the merge step
  /// closes it against the agent's first span on the destination.
  static constexpr std::int64_t kOpenEnd = -1;

  struct Span {
    std::int64_t start_us = 0;
    std::int64_t end_us = 0;
    std::uint8_t kind = 0;       ///< trace::SpanKind as raw u8
    std::uint32_t node = 0;      ///< span's server attribution (kInvalidNode = none)
    /// Owning agent identity, flattened (origin == kInvalidNode when the
    /// span has no agent). The full id — not a hash — because the merge
    /// step stitches one agent's migration spans across node dumps.
    std::uint32_t agent_origin = 0;
    std::int64_t agent_created_us = 0;
    std::uint32_t agent_seq = 0;
    std::uint64_t aux = 0;
    std::uint64_t aux2 = 0;
  };
  /// One traced frame arrival on the link peer→this node.
  struct LinkSample {
    std::uint32_t peer = 0;      ///< sending node
    std::int64_t send_ts_us = 0; ///< sender trace clock at stamping
    std::int64_t recv_ts_us = 0; ///< local trace clock at arrival
  };

  std::uint32_t node = 0;
  std::uint64_t incarnation = 0;
  std::uint64_t spans_dropped = 0;   ///< ring evictions — merge honesty
  std::uint64_t samples_dropped = 0; ///< link samples past the cap
  std::vector<Span> spans;
  std::vector<LinkSample> link_samples;

  void serialize(serial::Writer& w) const {
    w.varint(node);
    w.varint(incarnation);
    w.varint(spans_dropped);
    w.varint(samples_dropped);
    w.varint(spans.size());
    for (const Span& s : spans) {
      w.u64le(static_cast<std::uint64_t>(s.start_us));
      w.u64le(static_cast<std::uint64_t>(s.end_us));
      w.varint(s.kind);
      w.varint(s.node);
      w.varint(s.agent_origin);
      w.svarint(s.agent_created_us);
      w.varint(s.agent_seq);
      w.varint(s.aux);
      w.varint(s.aux2);
    }
    w.varint(link_samples.size());
    for (const LinkSample& s : link_samples) {
      w.varint(s.peer);
      w.u64le(static_cast<std::uint64_t>(s.send_ts_us));
      w.u64le(static_cast<std::uint64_t>(s.recv_ts_us));
    }
  }
  static NodeTrace deserialize(serial::Reader& r) {
    NodeTrace t;
    t.node = static_cast<std::uint32_t>(r.varint());
    t.incarnation = r.varint();
    t.spans_dropped = r.varint();
    t.samples_dropped = r.varint();
    const std::uint64_t n_spans = r.length_prefix(8);
    t.spans.reserve(n_spans);
    for (std::uint64_t i = 0; i < n_spans; ++i) {
      Span s;
      s.start_us = static_cast<std::int64_t>(r.u64le());
      s.end_us = static_cast<std::int64_t>(r.u64le());
      s.kind = static_cast<std::uint8_t>(r.varint());
      s.node = static_cast<std::uint32_t>(r.varint());
      s.agent_origin = static_cast<std::uint32_t>(r.varint());
      s.agent_created_us = r.svarint();
      s.agent_seq = static_cast<std::uint32_t>(r.varint());
      s.aux = r.varint();
      s.aux2 = r.varint();
      t.spans.push_back(s);
    }
    const std::uint64_t n_samples = r.length_prefix(8);
    t.link_samples.reserve(n_samples);
    for (std::uint64_t i = 0; i < n_samples; ++i) {
      LinkSample s;
      s.peer = static_cast<std::uint32_t>(r.varint());
      s.send_ts_us = static_cast<std::int64_t>(r.u64le());
      s.recv_ts_us = static_cast<std::int64_t>(r.u64le());
      t.link_samples.push_back(s);
    }
    return t;
  }
};

}  // namespace marp::rpc

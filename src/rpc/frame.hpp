// Wire framing for the real (socket) transport backend.
//
// Every byte that crosses a TCP or Unix-domain connection is one frame: a
// fixed 40-byte little-endian header followed by `body_len` payload bytes.
// The header carries source/destination node ids, a per-connection sequence
// number, and an optional FNV-1a-64 checksum over the body, so a receiver
// can reject truncated or corrupted frames *before* any payload bytes reach
// the deserializers that rehydrate agents. Decoding returns typed status
// codes — never exceptions — because on a real wire a bad frame is an
// expected event, not a programming error.
//
// Layout (offsets in bytes, all little-endian):
//   0  u32  magic      "MRPC" (0x4352504D)
//   4  u16  version    kVersion
//   6  u16  type       FrameType
//   8  u16  flags      FrameFlags bitmask
//  10  u16  incarnation  sender's reincarnation count (0 = first life)
//  12  u32  src        sending node id (kControlNode for harness clients)
//  16  u32  dst        destination node id
//  20  u64  seq        sender-assigned sequence number
//  28  u32  body_len   payload bytes following the header
//  32  u64  checksum   FNV-1a-64 over the body (0 unless kFlagChecksum)
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "net/message.hpp"
#include "serial/byte_buffer.hpp"

namespace marp::rpc {

constexpr std::uint32_t kMagic = 0x4352504D;  // "MRPC" on a little-endian wire
constexpr std::uint16_t kVersion = 1;
constexpr std::size_t kHeaderSize = 40;

/// Refuse to allocate for absurd frames (a corrupt length field must not
/// drive a multi-gigabyte read buffer).
constexpr std::uint32_t kMaxBodyLen = 32u * 1024u * 1024u;

/// Node id used by harness/control clients that are not cluster members.
constexpr net::NodeId kControlNode = 0xFFFFFFF0u;

enum class FrameType : std::uint16_t {
  AppMessage = 1,     ///< a net::Message between two MARP servers/agents
  AgentTransfer = 2,  ///< a serialized mobile agent migrating between nodes
  ControlRequest = 3, ///< harness → node RPC (req_header + marshalled args)
  ControlReply = 4,   ///< node → harness RPC reply (reply_header + result)
  AgentTransferAck = 5, ///< receiver → sender: transfer token was adopted
  Announce = 6,       ///< reincarnated node → peers: (node, incarnation) rejoin
};

enum FrameFlags : std::uint16_t {
  kFlagChecksum = 1 << 0,  ///< `checksum` covers the body
  kFlagTrace = 1 << 1,     ///< body ends with a kTraceContextSize trace tail
};

/// Distributed-tracing context piggybacked on a frame. When kFlagTrace is
/// set, the last kTraceContextSize bytes of the body are this struct in
/// fixed-width little-endian layout; the checksum covers the tail like any
/// other body byte, so a corrupted context is rejected as ChecksumMismatch
/// before it can mislead the trace merge. The header stays 40 bytes and a
/// receiver that predates tracing still verifies the checksum correctly —
/// it only sees a body with 28 opaque trailing bytes.
///
/// Layout (offsets within the tail, little-endian):
///   0  u64  session_id  stable id shared by all spans of one update session
///   8  u64  span_id     sender-side span the receiver's work continues
///  16  u32  origin      node id of the sender that stamped this context
///  20  i64  send_ts_us  sender trace-clock microseconds at stamping time
struct TraceContext {
  std::uint64_t session_id = 0;
  std::uint64_t span_id = 0;
  net::NodeId origin = net::kInvalidNode;
  std::int64_t send_ts_us = 0;

  bool operator==(const TraceContext&) const = default;
};

constexpr std::size_t kTraceContextSize = 28;

struct FrameHeader {
  std::uint16_t type = 0;
  std::uint16_t flags = 0;
  /// Sender's reincarnation count. Lives in the previously-reserved header
  /// slot (written as 0 before PR 7), so old and new frames stay
  /// wire-compatible: a frame from a first-life node simply carries 0.
  /// Receivers fence frames whose incarnation is below the highest one they
  /// have seen from that node — a late frame from a dead incarnation must
  /// not leak into the reborn cluster state.
  std::uint16_t incarnation = 0;
  net::NodeId src = net::kInvalidNode;
  net::NodeId dst = net::kInvalidNode;
  std::uint64_t seq = 0;
  std::uint32_t body_len = 0;
  std::uint64_t checksum = 0;
};

struct Frame {
  FrameHeader header;
  serial::Bytes body;
  /// Present when the sender stamped a kFlagTrace tail; stripped off `body`
  /// during decode so payload codecs never see the trace bytes.
  std::optional<TraceContext> trace;
  /// Receiver trace-clock microseconds when the frame left the wire. Not a
  /// wire field — filled in by the receiving transport, -1 when untraced.
  std::int64_t recv_ts_us = -1;

  FrameType type() const noexcept { return static_cast<FrameType>(header.type); }
};

/// Typed decode outcome — the "error return" side of the wire boundary.
enum class DecodeStatus : std::uint8_t {
  Ok,
  Truncated,         ///< fewer bytes than the header (or body_len) announces
  BadMagic,
  BadVersion,
  BadLength,         ///< body_len > kMaxBodyLen
  ChecksumMismatch,
  BadTrace,          ///< kFlagTrace set but body shorter than the trace tail
};

const char* decode_status_name(DecodeStatus status) noexcept;

/// FNV-1a 64-bit over `size` bytes.
std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size) noexcept;

/// Serialize header + body into one contiguous byte vector. When
/// `with_checksum`, the header's checksum field is filled from the body.
/// When `trace` is non-null, the kTraceContextSize tail is appended to the
/// body (covered by the checksum) and kFlagTrace is set.
serial::Bytes encode_frame(FrameType type, net::NodeId src, net::NodeId dst,
                           std::uint64_t seq, const serial::Bytes& body,
                           bool with_checksum = true,
                           std::uint16_t incarnation = 0,
                           const TraceContext* trace = nullptr);

/// Fixed-width little-endian trace-tail codec.
serial::Bytes encode_trace_context(const TraceContext& context);
/// Returns false (leaving `out` untouched) unless `size` is exactly
/// kTraceContextSize.
bool decode_trace_context(const std::uint8_t* data, std::size_t size,
                          TraceContext* out);

/// Strip a kFlagTrace tail off `frame->body` into `frame->trace`. No-op Ok
/// when the flag is clear; BadTrace when the flag is set but the body is too
/// short to contain the tail. Call after checksum verification — the tail is
/// ordinary body bytes on the wire.
DecodeStatus extract_trace_context(Frame* frame);

/// Parse a header from exactly kHeaderSize bytes. Returns Truncated /
/// BadMagic / BadVersion / BadLength without touching `out` payload state.
DecodeStatus decode_header(const std::uint8_t* data, std::size_t size,
                           FrameHeader* out);

/// Verify `body` (already read off the wire) against a decoded header.
DecodeStatus verify_body(const FrameHeader& header, const std::uint8_t* body,
                         std::size_t size);

/// Whole-buffer convenience used by tests and the in-process transport:
/// header decode + body slice + checksum verify in one call.
DecodeStatus decode_frame(const serial::Bytes& buffer, Frame* out);

// ---- payload marshalling (built on serial::Writer/Reader) ----

/// AppMessage body: [varint message-type][length-prefixed payload].
serial::Bytes encode_app_body(const net::Message& message);
/// Rebuilds the message; src/dst come from the frame header. Throws
/// serial::DecodeError subclasses on malformed bodies (callers at the wire
/// boundary catch and drop).
net::Message decode_app_body(const FrameHeader& header, const serial::Bytes& body);

/// AgentTransfer body: [u64le transfer-token][length-prefixed agent frame].
/// The token names one migration attempt, so the receiver can acknowledge
/// exactly what it adopted and the sender can cancel that attempt's revival
/// timer — a write accepted by the kernel is not a delivery.
struct TransferBody {
  std::uint64_t token = 0;
  serial::Bytes frame;
};
serial::Bytes encode_transfer_body(std::uint64_t token, const serial::Bytes& frame);
/// Throws serial::DecodeError subclasses on malformed bodies.
TransferBody decode_transfer_body(const serial::Bytes& body);

/// AgentTransferAck body: [u64le transfer-token].
serial::Bytes encode_transfer_ack_body(std::uint64_t token);
/// Throws serial::DecodeError subclasses on malformed bodies.
std::uint64_t decode_transfer_ack_body(const serial::Bytes& body);

/// Announce body: [varint node][varint incarnation]. A reincarnated node
/// broadcasts this to every peer before catching up, so peers raise their
/// incarnation floor for the sender promptly (frames from higher
/// incarnations raise it implicitly as they arrive).
struct AnnounceBody {
  net::NodeId node = net::kInvalidNode;
  std::uint16_t incarnation = 0;
};
serial::Bytes encode_announce_body(const AnnounceBody& announce);
/// Throws serial::DecodeError subclasses on malformed bodies.
AnnounceBody decode_announce_body(const serial::Bytes& body);

}  // namespace marp::rpc

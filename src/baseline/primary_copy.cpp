#include "baseline/primary_copy.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace marp::baseline {

namespace {

serial::Bytes encode_forward(const replica::Request& request) {
  serial::Writer w;
  w.varint(request.id);
  w.str(request.key);
  w.str(request.value);
  w.svarint(request.submitted.as_micros());
  return w.take();
}

replica::Request decode_forward(serial::Reader& r, net::NodeId origin) {
  replica::Request request;
  request.id = r.varint();
  request.kind = replica::RequestKind::Write;
  request.key = r.str();
  request.value = r.str();
  request.submitted = sim::SimTime::micros(r.svarint());
  request.origin = origin;
  return request;
}

serial::Bytes encode_apply(std::uint64_t request_id, const std::string& key,
                           const std::string& value, replica::Version version) {
  serial::Writer w;
  w.varint(request_id);
  w.str(key);
  w.str(value);
  version.serialize(w);
  return w.take();
}

serial::Bytes encode_done(std::uint64_t request_id, bool success) {
  serial::Writer w;
  w.varint(request_id);
  w.boolean(success);
  return w.take();
}

}  // namespace

PrimaryCopyServer::PrimaryCopyServer(net::Network& network, net::NodeId node,
                                     const PrimaryCopyConfig& config,
                                     PrimaryCopyProtocol& protocol)
    : replica::ServerBase(network, node), config_(config), protocol_(protocol) {
  for (net::NodeId peer = 0; peer < network.size(); ++peer) {
    believed_up_.insert(peer);
  }
}

net::NodeId PrimaryCopyServer::current_primary() const {
  // Deterministic view: lowest node id believed alive.
  return believed_up_.empty() ? node_ : *believed_up_.begin();
}

void PrimaryCopyServer::submit(const replica::Request& request) {
  if (!up_) return;
  if (request.kind == replica::RequestKind::Read) {
    simulator().schedule(config_.local_read_time, [this, request] {
      if (!up_) return;
      replica::Outcome outcome;
      outcome.request_id = request.id;
      outcome.kind = replica::RequestKind::Read;
      outcome.origin = node_;
      outcome.submitted = request.submitted;
      outcome.dispatched = request.submitted;
      outcome.lock_obtained = request.submitted;
      outcome.completed = now();
      outcome.success = true;
      if (auto value = store_.read(request.key)) outcome.value = value->value;
      report(outcome);
    });
    return;
  }

  origin_ops_.emplace(request.id, OriginOp{request, 0});
  const net::NodeId primary = current_primary();
  if (primary == node_) {
    primary_handle_write(request, node_);
  } else {
    network_.send(net::Message{node_, primary, kPcForward, encode_forward(request)});
  }
  arm_origin_retry(request.id);
}

void PrimaryCopyServer::primary_handle_write(const replica::Request& request,
                                             net::NodeId requester) {
  if (primary_ops_.contains(request.id)) return;  // duplicate forward
  PrimaryOp op;
  op.request = request;
  op.requester = requester;
  // Primary order doubles as the version: strictly increasing sequence.
  op.version = replica::Version{++sequence_ + now().as_micros(), node_};
  store_.apply(request.key, request.value, op.version);
  op.acks.insert(node_);
  const std::uint64_t id = request.id;
  primary_ops_.emplace(id, std::move(op));
  const PrimaryOp& stored = primary_ops_[id];
  for (net::NodeId peer : believed_up_) {
    if (peer == node_) continue;
    network_.send(net::Message{node_, peer, kPcApply,
                               encode_apply(id, request.key, request.value,
                                            stored.version)});
  }
  primary_maybe_done(id);
  arm_primary_retry(id);
}

void PrimaryCopyServer::primary_maybe_done(std::uint64_t request_id) {
  auto it = primary_ops_.find(request_id);
  if (it == primary_ops_.end()) return;
  PrimaryOp& op = it->second;
  if (2 * op.acks.size() <= network_.size()) return;  // need a majority durable
  const net::NodeId requester = op.requester;
  primary_ops_.erase(it);
  if (requester == node_) {
    origin_done(request_id, true);
  } else {
    network_.send(net::Message{node_, requester, kPcDone,
                               encode_done(request_id, true)});
  }
}

void PrimaryCopyServer::origin_done(std::uint64_t request_id, bool success) {
  auto it = origin_ops_.find(request_id);
  if (it == origin_ops_.end()) return;
  const replica::Request request = it->second.request;
  origin_ops_.erase(it);
  replica::Outcome outcome;
  outcome.request_id = request.id;
  outcome.kind = replica::RequestKind::Write;
  outcome.origin = node_;
  outcome.submitted = request.submitted;
  outcome.dispatched = request.submitted;
  outcome.lock_obtained = now();
  outcome.completed = now();
  outcome.success = success;
  report(outcome);
}

void PrimaryCopyServer::arm_primary_retry(std::uint64_t request_id) {
  simulator().schedule(config_.retry_interval, [this, request_id] {
    if (!up_) return;
    auto it = primary_ops_.find(request_id);
    if (it == primary_ops_.end()) return;
    PrimaryOp& op = it->second;
    if (++op.retry_rounds > config_.max_retry_rounds) {
      const net::NodeId requester = op.requester;
      primary_ops_.erase(it);
      if (requester == node_) {
        origin_done(request_id, false);
      } else {
        network_.send(net::Message{node_, requester, kPcDone,
                                   encode_done(request_id, false)});
      }
      return;
    }
    for (net::NodeId peer : believed_up_) {
      if (peer == node_ || op.acks.contains(peer)) continue;
      network_.send(net::Message{node_, peer, kPcApply,
                                 encode_apply(request_id, op.request.key,
                                              op.request.value, op.version)});
    }
    arm_primary_retry(request_id);
  });
}

void PrimaryCopyServer::arm_origin_retry(std::uint64_t request_id) {
  simulator().schedule(config_.retry_interval, [this, request_id] {
    if (!up_) return;
    auto it = origin_ops_.find(request_id);
    if (it == origin_ops_.end()) return;
    OriginOp& op = it->second;
    if (++op.retry_rounds > config_.max_retry_rounds) {
      origin_done(request_id, false);
      return;
    }
    // Re-forward (handles a primary that died before replying; the new view
    // routes to the next primary).
    const net::NodeId primary = current_primary();
    if (primary == node_) {
      primary_handle_write(op.request, node_);
    } else {
      network_.send(net::Message{node_, primary, kPcForward,
                                 encode_forward(op.request)});
    }
    arm_origin_retry(request_id);
  });
}

void PrimaryCopyServer::handle_message(const net::Message& message) {
  if (!up_) return;
  serial::Reader r(message.payload);
  switch (message.type) {
    case kPcForward: {
      const replica::Request request = decode_forward(r, message.src);
      if (is_primary()) {
        primary_handle_write(request, message.src);
      }
      // Not primary (stale view at the sender): drop; the origin's retry
      // will re-route once its view converges.
      break;
    }
    case kPcApply: {
      const std::uint64_t request_id = r.varint();
      const std::string key = r.str();
      const std::string value = r.str();
      const replica::Version version = replica::Version::deserialize(r);
      store_.apply(key, value, version);
      network_.send(net::Message{node_, message.src, kPcApplyAck,
                                 encode_done(request_id, true)});
      break;
    }
    case kPcApplyAck: {
      const std::uint64_t request_id = r.varint();
      auto it = primary_ops_.find(request_id);
      if (it == primary_ops_.end()) break;
      it->second.acks.insert(message.src);
      primary_maybe_done(request_id);
      break;
    }
    case kPcDone: {
      const std::uint64_t request_id = r.varint();
      const bool success = r.boolean();
      origin_done(request_id, success);
      break;
    }
    default:
      MARP_LOG_WARN("pc") << "unexpected message type " << message.type;
  }
}

void PrimaryCopyServer::peer_failed(net::NodeId node) {
  believed_up_.erase(node);
  if (is_primary()) {
    // Acks from the dead backup will never arrive; recheck quorums.
    std::vector<std::uint64_t> ids;
    for (const auto& [id, op] : primary_ops_) ids.push_back(id);
    for (std::uint64_t id : ids) primary_maybe_done(id);
  }
}

void PrimaryCopyServer::peer_recovered(net::NodeId node) {
  believed_up_.insert(node);
}

void PrimaryCopyServer::on_fail() {
  primary_ops_.clear();
  origin_ops_.clear();
}

PrimaryCopyProtocol::PrimaryCopyProtocol(net::Network& network,
                                         PrimaryCopyConfig config)
    : network_(network), config_(config) {
  servers_.reserve(network_.size());
  for (net::NodeId node = 0; node < network_.size(); ++node) {
    servers_.push_back(
        std::make_unique<PrimaryCopyServer>(network_, node, config_, *this));
    PrimaryCopyServer* server = servers_.back().get();
    network_.register_node(
        node, [server](const net::Message& message) { server->handle_message(message); });
  }
}

PrimaryCopyServer& PrimaryCopyProtocol::server(net::NodeId node) {
  MARP_REQUIRE(node < servers_.size());
  return *servers_[node];
}

void PrimaryCopyProtocol::submit(const replica::Request& request) {
  server(request.origin).submit(request);
}

void PrimaryCopyProtocol::set_outcome_handler(replica::OutcomeHandler handler) {
  for (auto& server : servers_) server->set_outcome_handler(handler);
}

void PrimaryCopyProtocol::fail_server(net::NodeId node) {
  PrimaryCopyServer& failed = server(node);
  if (!failed.up()) return;
  failed.fail();
  network_.simulator().schedule(config_.failure_notice_delay, [this, node] {
    for (auto& srv : servers_) {
      if (srv->up()) srv->peer_failed(node);
    }
  });
}

void PrimaryCopyProtocol::recover_server(net::NodeId node) {
  PrimaryCopyServer& target = server(node);
  if (target.up()) return;
  target.recover();
  network_.simulator().schedule(config_.failure_notice_delay, [this, node] {
    for (auto& srv : servers_) {
      if (srv->up()) srv->peer_recovered(node);
    }
  });
}

}  // namespace marp::baseline

#include "baseline/weighted_voting.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace marp::baseline {

namespace {

serial::Bytes encode_key_req(std::uint64_t request_id, const std::string& key) {
  serial::Writer w;
  w.varint(request_id);
  w.str(key);
  return w.take();
}

serial::Bytes encode_version_rep(std::uint64_t request_id, replica::Version version,
                                 const std::string& value) {
  serial::Writer w;
  w.varint(request_id);
  version.serialize(w);
  w.str(value);
  return w.take();
}

serial::Bytes encode_write(std::uint64_t request_id, const std::string& key,
                           const std::string& value, replica::Version version) {
  serial::Writer w;
  w.varint(request_id);
  w.str(key);
  w.str(value);
  version.serialize(w);
  return w.take();
}

serial::Bytes encode_id(std::uint64_t request_id) {
  serial::Writer w;
  w.varint(request_id);
  return w.take();
}

}  // namespace

WeightedVotingServer::WeightedVotingServer(net::Network& network, net::NodeId node,
                                           WeightedVotingProtocol& protocol)
    : replica::ServerBase(network, node), protocol_(protocol) {}

void WeightedVotingServer::submit(const replica::Request& request) {
  if (!up_) return;
  start(request);
}

void WeightedVotingServer::start(const replica::Request& request) {
  Op op;
  op.request = request;
  ops_.emplace(request.id, std::move(op));
  Op& stored = ops_[request.id];

  const net::MessageType poll_type =
      request.kind == replica::RequestKind::Read ? kWvReadReq : kWvVersionReq;
  network_.broadcast(node_, poll_type, encode_key_req(request.id, request.key));

  // This replica votes for itself immediately.
  if (auto local = store_.read(request.key)) {
    if (local->version > stored.max_seen) {
      stored.max_seen = local->version;
      stored.best_value = local->value;
    }
  }
  add_vote(stored, node_);
  maybe_advance(request.id);
  arm_retry(request.id);
}

void WeightedVotingServer::add_vote(Op& op, net::NodeId from) {
  if (op.repliers.insert(from).second) {
    op.votes_gathered += protocol_.votes_of(from);
  }
}

void WeightedVotingServer::maybe_advance(std::uint64_t request_id) {
  auto it = ops_.find(request_id);
  if (it == ops_.end()) return;
  Op& op = it->second;
  const bool is_read = op.request.kind == replica::RequestKind::Read;
  if (op.phase == Op::Phase::VersionPoll) {
    const std::uint32_t needed =
        is_read ? protocol_.read_quorum() : protocol_.write_quorum();
    if (op.votes_gathered < needed) return;
    quorum_at_[request_id] = now();
    if (is_read) {
      complete_read(op);
    } else {
      begin_write_phase(op);
    }
    return;
  }
  if (op.phase == Op::Phase::Writing &&
      op.votes_gathered >= protocol_.write_quorum()) {
    complete_write(op);
  }
}

void WeightedVotingServer::complete_read(Op& op) {
  replica::Outcome outcome;
  outcome.request_id = op.request.id;
  outcome.kind = replica::RequestKind::Read;
  outcome.origin = node_;
  outcome.submitted = op.request.submitted;
  outcome.dispatched = op.request.submitted;
  outcome.lock_obtained = now();
  outcome.completed = now();
  outcome.success = true;
  outcome.value = op.best_value;
  ops_.erase(op.request.id);
  quorum_at_.erase(outcome.request_id);
  report(outcome);
}

void WeightedVotingServer::begin_write_phase(Op& op) {
  op.phase = Op::Phase::Writing;
  op.retry_rounds = 0;
  op.repliers.clear();
  op.votes_gathered = 0;
  op.chosen = replica::Version{std::max(now().as_micros(), op.max_seen.time_us + 1),
                               node_};
  network_.broadcast(node_, kWvWrite,
                     encode_write(op.request.id, op.request.key, op.request.value,
                                  op.chosen));
  store_.apply(op.request.key, op.request.value, op.chosen);
  add_vote(op, node_);
  maybe_advance(op.request.id);
}

void WeightedVotingServer::complete_write(Op& op) {
  replica::Outcome outcome;
  outcome.request_id = op.request.id;
  outcome.kind = replica::RequestKind::Write;
  outcome.origin = node_;
  outcome.submitted = op.request.submitted;
  outcome.dispatched = op.request.submitted;
  auto it = quorum_at_.find(op.request.id);
  outcome.lock_obtained = it == quorum_at_.end() ? now() : it->second;
  outcome.completed = now();
  outcome.success = true;
  ops_.erase(op.request.id);
  quorum_at_.erase(outcome.request_id);
  report(outcome);
}

void WeightedVotingServer::fail_request(Op& op) {
  replica::Outcome outcome;
  outcome.request_id = op.request.id;
  outcome.kind = op.request.kind;
  outcome.origin = node_;
  outcome.submitted = op.request.submitted;
  outcome.dispatched = op.request.submitted;
  outcome.lock_obtained = now();
  outcome.completed = now();
  outcome.success = false;
  ops_.erase(op.request.id);
  quorum_at_.erase(outcome.request_id);
  report(outcome);
}

void WeightedVotingServer::arm_retry(std::uint64_t request_id) {
  simulator().schedule(protocol_.config().retry_interval, [this, request_id] {
    if (!up_) return;
    auto it = ops_.find(request_id);
    if (it == ops_.end()) return;
    Op& op = it->second;
    if (++op.retry_rounds > protocol_.config().max_retry_rounds) {
      fail_request(op);
      return;
    }
    const bool is_read = op.request.kind == replica::RequestKind::Read;
    serial::Bytes payload;
    net::MessageType type;
    if (op.phase == Op::Phase::VersionPoll) {
      type = is_read ? kWvReadReq : kWvVersionReq;
      payload = encode_key_req(request_id, op.request.key);
    } else {
      type = kWvWrite;
      payload = encode_write(request_id, op.request.key, op.request.value, op.chosen);
    }
    for (net::NodeId node = 0; node < network_.size(); ++node) {
      if (node == node_ || op.repliers.contains(node)) continue;
      network_.send(net::Message{node_, node, type, payload});
    }
    arm_retry(request_id);
  });
}

void WeightedVotingServer::handle_message(const net::Message& message) {
  if (!up_) return;
  serial::Reader r(message.payload);
  switch (message.type) {
    case kWvVersionReq:
    case kWvReadReq: {
      const std::uint64_t request_id = r.varint();
      const std::string key = r.str();
      replica::Version version = replica::Version::none();
      std::string value;
      if (auto local = store_.read(key)) {
        version = local->version;
        value = local->value;
      }
      // Read replies carry the value; version polls only need the version
      // but reuse the same reply format for simplicity (small values).
      network_.send(net::Message{node_, message.src, kWvVersionRep,
                                 encode_version_rep(request_id, version,
                                                    message.type == kWvReadReq
                                                        ? value
                                                        : std::string{})});
      break;
    }
    case kWvVersionRep: {
      const std::uint64_t request_id = r.varint();
      const replica::Version version = replica::Version::deserialize(r);
      std::string value = r.str();
      auto it = ops_.find(request_id);
      if (it == ops_.end() || it->second.phase != Op::Phase::VersionPoll) break;
      Op& op = it->second;
      if (version > op.max_seen) {
        op.max_seen = version;
        if (!value.empty()) op.best_value = std::move(value);
      }
      add_vote(op, message.src);
      maybe_advance(request_id);
      break;
    }
    case kWvWrite: {
      const std::uint64_t request_id = r.varint();
      const std::string key = r.str();
      const std::string value = r.str();
      const replica::Version version = replica::Version::deserialize(r);
      store_.apply(key, value, version);
      network_.send(net::Message{node_, message.src, kWvWriteAck, encode_id(request_id)});
      break;
    }
    case kWvWriteAck: {
      const std::uint64_t request_id = r.varint();
      auto it = ops_.find(request_id);
      if (it == ops_.end() || it->second.phase != Op::Phase::Writing) break;
      add_vote(it->second, message.src);
      maybe_advance(request_id);
      break;
    }
    default:
      MARP_LOG_WARN("wv") << "unexpected message type " << message.type;
  }
}

void WeightedVotingServer::on_fail() {
  ops_.clear();
  quorum_at_.clear();
}

WeightedVotingProtocol::WeightedVotingProtocol(net::Network& network,
                                               WeightedVotingConfig config)
    : network_(network), config_(std::move(config)) {
  votes_ = config_.votes;
  if (votes_.empty()) votes_.assign(network_.size(), 1);
  MARP_REQUIRE(votes_.size() == network_.size());
  for (std::uint32_t v : votes_) total_votes_ += v;
  write_quorum_ = config_.write_quorum != 0 ? config_.write_quorum
                                            : total_votes_ / 2 + 1;
  read_quorum_ = config_.read_quorum != 0 ? config_.read_quorum
                                          : total_votes_ - write_quorum_ + 1;
  MARP_REQUIRE_MSG(read_quorum_ + write_quorum_ > total_votes_,
                   "r + w must exceed total votes");
  servers_.reserve(network_.size());
  for (net::NodeId node = 0; node < network_.size(); ++node) {
    servers_.push_back(std::make_unique<WeightedVotingServer>(network_, node, *this));
    WeightedVotingServer* server = servers_.back().get();
    network_.register_node(
        node, [server](const net::Message& message) { server->handle_message(message); });
  }
}

WeightedVotingServer& WeightedVotingProtocol::server(net::NodeId node) {
  MARP_REQUIRE(node < servers_.size());
  return *servers_[node];
}

void WeightedVotingProtocol::submit(const replica::Request& request) {
  server(request.origin).submit(request);
}

void WeightedVotingProtocol::set_outcome_handler(replica::OutcomeHandler handler) {
  for (auto& server : servers_) server->set_outcome_handler(handler);
}

void WeightedVotingProtocol::fail_server(net::NodeId node) { server(node).fail(); }

void WeightedVotingProtocol::recover_server(net::NodeId node) {
  server(node).recover();
}

}  // namespace marp::baseline

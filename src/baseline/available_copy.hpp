// Available Copy ("write-all read-once") — §3.1 cites it as the optimistic
// scheme that is cheap for read-dominated Internet workloads but vulnerable
// to partitions: updates go to every *available* replica, reads are local.
//
// Availability is tracked through failure/recovery notices (the paper's
// perfect-failure-detector assumption). A recovering replica first pulls the
// current state from a live peer before rejoining.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "net/network.hpp"
#include "replica/request.hpp"
#include "replica/server.hpp"

namespace marp::baseline {

constexpr net::MessageType kAcWrite = 0x0801;
constexpr net::MessageType kAcAck = 0x0802;
constexpr net::MessageType kAcStateReq = 0x0803;
constexpr net::MessageType kAcStateRep = 0x0804;

struct AvailableCopyConfig {
  sim::SimTime local_read_time = sim::SimTime::micros(100);
  sim::SimTime retry_interval = sim::SimTime::millis(100);
  std::uint32_t max_retry_rounds = 20;
  sim::SimTime failure_notice_delay = sim::SimTime::millis(100);
};

class AvailableCopyProtocol;

class AvailableCopyServer : public replica::ServerBase {
 public:
  AvailableCopyServer(net::Network& network, net::NodeId node,
                      const AvailableCopyConfig& config,
                      AvailableCopyProtocol& protocol);

  void submit(const replica::Request& request);
  void handle_message(const net::Message& message);
  void peer_failed(net::NodeId node);
  void peer_recovered(net::NodeId node);

  const std::set<net::NodeId>& believed_up() const noexcept { return believed_up_; }

 protected:
  void on_fail() override;
  void on_recover() override;

 private:
  struct Pending {
    replica::Request request;
    std::set<net::NodeId> required;  ///< believed-up peers at start
    std::set<net::NodeId> acked;
    replica::Version version;
    std::uint32_t retry_rounds = 0;
  };
  void maybe_finish(std::uint64_t request_id);
  void arm_retry(std::uint64_t request_id);

  const AvailableCopyConfig& config_;
  AvailableCopyProtocol& protocol_;
  std::set<net::NodeId> believed_up_;
  std::map<std::uint64_t, Pending> pending_;
};

class AvailableCopyProtocol final : public replica::ReplicationProtocol {
 public:
  AvailableCopyProtocol(net::Network& network, AvailableCopyConfig config = {});

  std::string name() const override { return "AvailableCopy"; }
  void submit(const replica::Request& request) override;
  void set_outcome_handler(replica::OutcomeHandler handler) override;
  void fail_server(net::NodeId node) override;
  void recover_server(net::NodeId node) override;

  AvailableCopyServer& server(net::NodeId node);
  std::size_t size() const noexcept { return servers_.size(); }
  const AvailableCopyConfig& config() const noexcept { return config_; }

 private:
  net::Network& network_;
  AvailableCopyConfig config_;
  std::vector<std::unique_ptr<AvailableCopyServer>> servers_;
};

}  // namespace marp::baseline

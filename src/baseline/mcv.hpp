// Message-passing Majority Consensus Voting (after Thomas '79) — the
// conventional replication protocol MARP is positioned against (§1: "using
// message passing, conventional replication protocols are expensive because
// multiple local processes need to participate in sessions of passing
// messages and waiting for replies").
//
// Write path (coordinator = the origin server):
//   1. LOCK_REQ to every replica, carrying a Lamport timestamp. Each replica
//      keeps a priority queue ordered by (timestamp, coordinator, request)
//      and sends LOCK_GRANT when the request heads its queue.
//   2. With grants from a majority, the coordinator picks a version newer
//      than any it saw in the grants, sends UPDATE to all replicas, and
//      collects a majority of ACKs.
//   3. COMMIT to all replicas applies the write and releases the lock,
//      letting each replica grant its next queued request.
// Reads are served from the local copy (same read path as MARP, so the
// comparison isolates the write-coordination mechanism).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "net/network.hpp"
#include "replica/request.hpp"
#include "replica/server.hpp"
#include "replica/versioned_store.hpp"

namespace marp::baseline {

constexpr net::MessageType kMcvLockReq = 0x0601;
constexpr net::MessageType kMcvLockGrant = 0x0602;
constexpr net::MessageType kMcvUpdate = 0x0603;
constexpr net::MessageType kMcvAck = 0x0604;
constexpr net::MessageType kMcvCommit = 0x0605;
constexpr net::MessageType kMcvRelease = 0x0606;
/// Replica → grant holder's coordinator: a higher-priority request arrived;
/// give the grant back unless you already hold a majority (Maekawa-style
/// INQUIRE, required to avoid the everyone-grants-itself deadlock).
constexpr net::MessageType kMcvPreempt = 0x0607;
/// Coordinator → replica: grant returned.
constexpr net::MessageType kMcvRelinquish = 0x0608;

struct McvConfig {
  sim::SimTime local_read_time = sim::SimTime::micros(100);
  /// Re-send cadence for lost coordination messages, and the cap before an
  /// in-flight write is failed back to the client.
  sim::SimTime retry_interval = sim::SimTime::millis(100);
  std::uint32_t max_retry_rounds = 20;
};

class McvProtocol;

class McvServer : public replica::ServerBase {
 public:
  McvServer(net::Network& network, net::NodeId node, const McvConfig& config,
            McvProtocol& protocol);

  void submit(const replica::Request& request);
  void handle_message(const net::Message& message);

  /// Failure notice about another server (perfect failure detector, §2).
  void peer_failed(net::NodeId node);

 protected:
  void on_fail() override;

 private:
  // --- replica-side lock queue ---
  struct LockWaiter {
    std::uint64_t timestamp;  ///< Lamport time of the request
    net::NodeId coordinator;
    std::uint64_t request_id;
    friend auto operator<=>(const LockWaiter&, const LockWaiter&) = default;
  };
  void grant_head_if_new();
  void release_waiter(net::NodeId coordinator, std::uint64_t request_id);
  void handle_preempt(net::NodeId replica, std::uint64_t request_id);
  void handle_relinquish(net::NodeId coordinator, std::uint64_t request_id);

  // --- coordinator-side per-request state ---
  struct Coordination {
    replica::Request request;
    std::set<net::NodeId> grants;
    std::set<net::NodeId> acks;
    replica::Version max_seen;   ///< freshest version reported in grants
    replica::Version chosen;     ///< version assigned to this write
    enum class Phase : std::uint8_t { Locking, Updating } phase = Phase::Locking;
    std::uint64_t timestamp = 0;
    std::uint32_t retry_rounds = 0;
  };
  void start_write(const replica::Request& request);
  void on_grant(std::uint64_t request_id, net::NodeId from, replica::Version seen);
  void on_ack(std::uint64_t request_id, net::NodeId from);
  void begin_update_phase(Coordination& coordination);
  void finish(Coordination& coordination);
  void arm_retry(std::uint64_t request_id);
  bool majority(std::size_t count) const {
    return 2 * count > network_.size();
  }

  std::uint64_t lamport_tick() { return ++lamport_; }
  void lamport_observe(std::uint64_t ts) { lamport_ = std::max(lamport_, ts) + 1; }

  const McvConfig& config_;
  McvProtocol& protocol_;
  std::uint64_t lamport_ = 0;

  std::vector<LockWaiter> queue_;  ///< kept sorted ascending (head = front)
  std::optional<LockWaiter> granted_;  ///< waiter currently holding the grant
  bool preempt_requested_ = false;     ///< outstanding PREEMPT for granted_

  std::map<std::uint64_t, Coordination> coordinating_;
  std::map<std::uint64_t, sim::SimTime> lock_obtained_;  ///< ALT endpoints
};

class McvProtocol final : public replica::ReplicationProtocol {
 public:
  McvProtocol(net::Network& network, McvConfig config = {});

  std::string name() const override { return "MP-MCV"; }
  void submit(const replica::Request& request) override;
  void set_outcome_handler(replica::OutcomeHandler handler) override;
  void fail_server(net::NodeId node) override;
  void recover_server(net::NodeId node) override;

  McvServer& server(net::NodeId node);
  std::size_t size() const noexcept { return servers_.size(); }
  const McvConfig& config() const noexcept { return config_; }

  std::uint64_t writes_committed() const noexcept { return writes_committed_; }
  void note_commit() { ++writes_committed_; }

  /// Delay before surviving servers learn about a failure.
  sim::SimTime failure_notice_delay = sim::SimTime::millis(100);

 private:
  net::Network& network_;
  McvConfig config_;
  std::vector<std::unique_ptr<McvServer>> servers_;
  std::uint64_t writes_committed_ = 0;
};

}  // namespace marp::baseline

#include "baseline/available_copy.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace marp::baseline {

namespace {

serial::Bytes encode_write(std::uint64_t request_id, const std::string& key,
                           const std::string& value, replica::Version version) {
  serial::Writer w;
  w.varint(request_id);
  w.str(key);
  w.str(value);
  version.serialize(w);
  return w.take();
}

serial::Bytes encode_id(std::uint64_t request_id) {
  serial::Writer w;
  w.varint(request_id);
  return w.take();
}

}  // namespace

AvailableCopyServer::AvailableCopyServer(net::Network& network, net::NodeId node,
                                         const AvailableCopyConfig& config,
                                         AvailableCopyProtocol& protocol)
    : replica::ServerBase(network, node), config_(config), protocol_(protocol) {
  for (net::NodeId peer = 0; peer < network.size(); ++peer) {
    believed_up_.insert(peer);
  }
}

void AvailableCopyServer::submit(const replica::Request& request) {
  if (!up_) return;
  if (request.kind == replica::RequestKind::Read) {
    // Read-once: any single available copy — the local one.
    simulator().schedule(config_.local_read_time, [this, request] {
      if (!up_) return;
      replica::Outcome outcome;
      outcome.request_id = request.id;
      outcome.kind = replica::RequestKind::Read;
      outcome.origin = node_;
      outcome.submitted = request.submitted;
      outcome.dispatched = request.submitted;
      outcome.lock_obtained = request.submitted;
      outcome.completed = now();
      outcome.success = true;
      if (auto value = store_.read(request.key)) outcome.value = value->value;
      report(outcome);
    });
    return;
  }

  // Write-all-available.
  Pending pending;
  pending.request = request;
  pending.required = believed_up_;
  pending.required.erase(node_);
  pending.version = replica::Version{now().as_micros(), node_};
  store_.apply(request.key, request.value, pending.version);
  const std::uint64_t id = request.id;
  pending_.emplace(id, std::move(pending));
  const Pending& stored = pending_[id];
  for (net::NodeId peer : stored.required) {
    network_.send(net::Message{node_, peer, kAcWrite,
                               encode_write(id, request.key, request.value,
                                            stored.version)});
  }
  maybe_finish(id);
  arm_retry(id);
}

void AvailableCopyServer::maybe_finish(std::uint64_t request_id) {
  auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  Pending& pending = it->second;
  // Completed once every still-required (believed-up) peer has acked.
  for (net::NodeId peer : pending.required) {
    if (!pending.acked.contains(peer) && believed_up_.contains(peer)) return;
  }
  replica::Outcome outcome;
  outcome.request_id = pending.request.id;
  outcome.kind = replica::RequestKind::Write;
  outcome.origin = node_;
  outcome.submitted = pending.request.submitted;
  outcome.dispatched = pending.request.submitted;
  outcome.lock_obtained = now();
  outcome.completed = now();
  outcome.success = true;
  pending_.erase(it);
  report(outcome);
}

void AvailableCopyServer::arm_retry(std::uint64_t request_id) {
  simulator().schedule(config_.retry_interval, [this, request_id] {
    if (!up_) return;
    auto it = pending_.find(request_id);
    if (it == pending_.end()) return;
    Pending& pending = it->second;
    if (++pending.retry_rounds > config_.max_retry_rounds) {
      replica::Outcome outcome;
      outcome.request_id = pending.request.id;
      outcome.kind = replica::RequestKind::Write;
      outcome.origin = node_;
      outcome.submitted = pending.request.submitted;
      outcome.dispatched = pending.request.submitted;
      outcome.lock_obtained = now();
      outcome.completed = now();
      outcome.success = false;
      pending_.erase(it);
      report(outcome);
      return;
    }
    for (net::NodeId peer : pending.required) {
      if (pending.acked.contains(peer) || !believed_up_.contains(peer)) continue;
      network_.send(net::Message{node_, peer, kAcWrite,
                                 encode_write(request_id, pending.request.key,
                                              pending.request.value,
                                              pending.version)});
    }
    arm_retry(request_id);
  });
}

void AvailableCopyServer::handle_message(const net::Message& message) {
  if (!up_) return;
  serial::Reader r(message.payload);
  switch (message.type) {
    case kAcWrite: {
      const std::uint64_t request_id = r.varint();
      const std::string key = r.str();
      const std::string value = r.str();
      const replica::Version version = replica::Version::deserialize(r);
      store_.apply(key, value, version);
      network_.send(net::Message{node_, message.src, kAcAck, encode_id(request_id)});
      break;
    }
    case kAcAck: {
      const std::uint64_t request_id = r.varint();
      auto it = pending_.find(request_id);
      if (it == pending_.end()) break;
      it->second.acked.insert(message.src);
      maybe_finish(request_id);
      break;
    }
    case kAcStateReq: {
      // Send our whole store so the recovering peer catches up.
      serial::Writer w;
      const auto keys = store_.keys();
      w.varint(keys.size());
      for (const auto& key : keys) {
        const auto value = store_.read(key);
        w.str(key);
        w.str(value->value);
        value->version.serialize(w);
      }
      network_.send(net::Message{node_, message.src, kAcStateRep, w.take()});
      break;
    }
    case kAcStateRep: {
      const std::uint64_t count = r.varint();
      for (std::uint64_t i = 0; i < count; ++i) {
        const std::string key = r.str();
        const std::string value = r.str();
        const replica::Version version = replica::Version::deserialize(r);
        store_.apply(key, value, version);
      }
      break;
    }
    default:
      MARP_LOG_WARN("ac") << "unexpected message type " << message.type;
  }
}

void AvailableCopyServer::peer_failed(net::NodeId node) {
  believed_up_.erase(node);
  // Writes that were only waiting on the dead peer can complete now.
  std::vector<std::uint64_t> ids;
  ids.reserve(pending_.size());
  for (const auto& [id, pending] : pending_) ids.push_back(id);
  for (std::uint64_t id : ids) maybe_finish(id);
}

void AvailableCopyServer::peer_recovered(net::NodeId node) {
  believed_up_.insert(node);
}

void AvailableCopyServer::on_fail() { pending_.clear(); }

void AvailableCopyServer::on_recover() {
  // Catch up from the lowest-numbered peer we believe is alive.
  for (net::NodeId peer : believed_up_) {
    if (peer != node_) {
      network_.send(net::Message{node_, peer, kAcStateReq, {}});
      break;
    }
  }
}

AvailableCopyProtocol::AvailableCopyProtocol(net::Network& network,
                                             AvailableCopyConfig config)
    : network_(network), config_(config) {
  servers_.reserve(network_.size());
  for (net::NodeId node = 0; node < network_.size(); ++node) {
    servers_.push_back(
        std::make_unique<AvailableCopyServer>(network_, node, config_, *this));
    AvailableCopyServer* server = servers_.back().get();
    network_.register_node(
        node, [server](const net::Message& message) { server->handle_message(message); });
  }
}

AvailableCopyServer& AvailableCopyProtocol::server(net::NodeId node) {
  MARP_REQUIRE(node < servers_.size());
  return *servers_[node];
}

void AvailableCopyProtocol::submit(const replica::Request& request) {
  server(request.origin).submit(request);
}

void AvailableCopyProtocol::set_outcome_handler(replica::OutcomeHandler handler) {
  for (auto& server : servers_) server->set_outcome_handler(handler);
}

void AvailableCopyProtocol::fail_server(net::NodeId node) {
  AvailableCopyServer& failed = server(node);
  if (!failed.up()) return;
  failed.fail();
  network_.simulator().schedule(config_.failure_notice_delay, [this, node] {
    for (auto& srv : servers_) {
      if (srv->up()) srv->peer_failed(node);
    }
  });
}

void AvailableCopyProtocol::recover_server(net::NodeId node) {
  AvailableCopyServer& target = server(node);
  if (target.up()) return;
  target.recover();
  network_.simulator().schedule(config_.failure_notice_delay, [this, node] {
    for (auto& srv : servers_) {
      if (srv->up()) srv->peer_recovered(node);
    }
  });
}

}  // namespace marp::baseline

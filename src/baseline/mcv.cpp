#include "baseline/mcv.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace marp::baseline {

namespace {

serial::Bytes encode_lock_req(std::uint64_t request_id, std::uint64_t timestamp,
                              const std::string& key) {
  serial::Writer w;
  w.varint(request_id);
  w.varint(timestamp);
  w.str(key);
  return w.take();
}

serial::Bytes encode_grant(std::uint64_t request_id, replica::Version version) {
  serial::Writer w;
  w.varint(request_id);
  version.serialize(w);
  return w.take();
}

serial::Bytes encode_write(std::uint64_t request_id, const std::string& key,
                           const std::string& value, replica::Version version) {
  serial::Writer w;
  w.varint(request_id);
  w.str(key);
  w.str(value);
  version.serialize(w);
  return w.take();
}

serial::Bytes encode_id(std::uint64_t request_id) {
  serial::Writer w;
  w.varint(request_id);
  return w.take();
}

}  // namespace

McvServer::McvServer(net::Network& network, net::NodeId node,
                     const McvConfig& config, McvProtocol& protocol)
    : replica::ServerBase(network, node), config_(config), protocol_(protocol) {}

void McvServer::submit(const replica::Request& request) {
  if (!up_) return;
  if (request.kind == replica::RequestKind::Read) {
    simulator().schedule(config_.local_read_time, [this, request] {
      if (!up_) return;
      replica::Outcome outcome;
      outcome.request_id = request.id;
      outcome.kind = replica::RequestKind::Read;
      outcome.origin = node_;
      outcome.submitted = request.submitted;
      outcome.dispatched = request.submitted;
      outcome.lock_obtained = request.submitted;
      outcome.completed = now();
      outcome.success = true;
      if (auto value = store_.read(request.key)) outcome.value = value->value;
      report(outcome);
    });
    return;
  }
  start_write(request);
}

void McvServer::start_write(const replica::Request& request) {
  Coordination coordination;
  coordination.request = request;
  coordination.timestamp = lamport_tick();
  coordinating_.emplace(request.id, std::move(coordination));

  // Queue locally (the coordinator's own replica participates) and at peers.
  queue_.push_back({coordinating_[request.id].timestamp, node_, request.id});
  std::sort(queue_.begin(), queue_.end());
  const serial::Bytes req =
      encode_lock_req(request.id, coordinating_[request.id].timestamp, request.key);
  network_.broadcast(node_, kMcvLockReq, req);
  grant_head_if_new();
  arm_retry(request.id);
}

void McvServer::grant_head_if_new() {
  if (queue_.empty()) return;
  if (granted_) {
    // A higher-priority request queued behind an existing grant: ask the
    // holder to give the grant back (Maekawa-style INQUIRE). Without this,
    // N concurrent coordinators each grant themselves first and deadlock.
    if (!preempt_requested_ && queue_.front() < *granted_) {
      preempt_requested_ = true;
      if (granted_->coordinator == node_) {
        handle_preempt(node_, granted_->request_id);
      } else {
        network_.send(net::Message{node_, granted_->coordinator, kMcvPreempt,
                                   encode_id(granted_->request_id)});
      }
    }
    return;
  }
  granted_ = queue_.front();
  preempt_requested_ = false;
  // Grants report the freshest version this replica holds across keys —
  // exact for the paper's single-object workloads, conservative (and still
  // correct) for multi-key ones.
  replica::Version freshest = replica::Version::none();
  for (const auto& key : store_.keys()) {
    freshest = std::max(freshest, store_.version_of(key));
  }
  if (granted_->coordinator == node_) {
    on_grant(granted_->request_id, node_, freshest);
  } else {
    network_.send(net::Message{node_, granted_->coordinator, kMcvLockGrant,
                               encode_grant(granted_->request_id, freshest)});
  }
}

void McvServer::release_waiter(net::NodeId coordinator, std::uint64_t request_id) {
  if (granted_ && granted_->coordinator == coordinator &&
      granted_->request_id == request_id) {
    granted_.reset();
    preempt_requested_ = false;
  }
  queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                              [&](const LockWaiter& waiter) {
                                return waiter.coordinator == coordinator &&
                                       waiter.request_id == request_id;
                              }),
               queue_.end());
  grant_head_if_new();
}

void McvServer::handle_preempt(net::NodeId replica, std::uint64_t request_id) {
  auto it = coordinating_.find(request_id);
  // Only a request still assembling its quorum gives grants back; once in
  // the update phase it holds them until COMMIT.
  if (it == coordinating_.end() ||
      it->second.phase != Coordination::Phase::Locking) {
    return;
  }
  it->second.grants.erase(replica);
  if (replica == node_) {
    handle_relinquish(node_, request_id);
  } else {
    network_.send(net::Message{node_, replica, kMcvRelinquish,
                               encode_id(request_id)});
  }
}

void McvServer::handle_relinquish(net::NodeId coordinator, std::uint64_t request_id) {
  if (granted_ && granted_->coordinator == coordinator &&
      granted_->request_id == request_id) {
    granted_.reset();
    preempt_requested_ = false;
    grant_head_if_new();
  }
}

void McvServer::on_grant(std::uint64_t request_id, net::NodeId from,
                         replica::Version seen) {
  auto it = coordinating_.find(request_id);
  if (it == coordinating_.end()) return;
  Coordination& coordination = it->second;
  if (coordination.phase != Coordination::Phase::Locking) return;
  coordination.grants.insert(from);
  coordination.max_seen = std::max(coordination.max_seen, seen);
  if (majority(coordination.grants.size())) begin_update_phase(coordination);
}

void McvServer::begin_update_phase(Coordination& coordination) {
  coordination.phase = Coordination::Phase::Updating;
  coordination.retry_rounds = 0;
  coordination.chosen =
      replica::Version{std::max(now().as_micros(), coordination.max_seen.time_us + 1),
                       node_};
  lock_obtained_[coordination.request.id] = now();

  const serial::Bytes update =
      encode_write(coordination.request.id, coordination.request.key,
                   coordination.request.value, coordination.chosen);
  network_.broadcast(node_, kMcvUpdate, update);
  // Apply locally and count ourselves as acked.
  store_.apply(coordination.request.key, coordination.request.value,
               coordination.chosen);
  coordination.acks.insert(node_);
  if (majority(coordination.acks.size())) finish(coordination);
}

void McvServer::on_ack(std::uint64_t request_id, net::NodeId from) {
  auto it = coordinating_.find(request_id);
  if (it == coordinating_.end()) return;
  Coordination& coordination = it->second;
  if (coordination.phase != Coordination::Phase::Updating) return;
  coordination.acks.insert(from);
  if (majority(coordination.acks.size())) finish(coordination);
}

void McvServer::finish(Coordination& coordination) {
  const replica::Request request = coordination.request;
  const serial::Bytes commit =
      encode_write(request.id, request.key, request.value, coordination.chosen);
  network_.broadcast(node_, kMcvCommit, commit);
  release_waiter(node_, request.id);  // local lock

  replica::Outcome outcome;
  outcome.request_id = request.id;
  outcome.kind = replica::RequestKind::Write;
  outcome.origin = node_;
  outcome.submitted = request.submitted;
  outcome.dispatched = request.submitted;
  auto lock_it = lock_obtained_.find(request.id);
  outcome.lock_obtained = lock_it == lock_obtained_.end() ? now() : lock_it->second;
  lock_obtained_.erase(request.id);
  outcome.completed = now();
  outcome.success = true;
  protocol_.note_commit();
  coordinating_.erase(request.id);
  report(outcome);
}

void McvServer::arm_retry(std::uint64_t request_id) {
  simulator().schedule(config_.retry_interval, [this, request_id] {
    if (!up_) return;
    auto it = coordinating_.find(request_id);
    if (it == coordinating_.end()) return;
    Coordination& coordination = it->second;
    if (++coordination.retry_rounds > config_.max_retry_rounds) {
      // Give up: withdraw the lock request everywhere, fail the client.
      network_.broadcast(node_, kMcvRelease, encode_id(request_id));
      release_waiter(node_, request_id);
      replica::Outcome outcome;
      outcome.request_id = coordination.request.id;
      outcome.kind = replica::RequestKind::Write;
      outcome.origin = node_;
      outcome.submitted = coordination.request.submitted;
      outcome.dispatched = coordination.request.submitted;
      outcome.lock_obtained = now();
      outcome.completed = now();
      outcome.success = false;
      coordinating_.erase(it);
      report(outcome);
      return;
    }
    if (coordination.phase == Coordination::Phase::Locking) {
      const serial::Bytes req = encode_lock_req(
          request_id, coordination.timestamp, coordination.request.key);
      for (net::NodeId node = 0; node < network_.size(); ++node) {
        if (node == node_ || coordination.grants.contains(node)) continue;
        network_.send(net::Message{node_, node, kMcvLockReq, req});
      }
    } else {
      const serial::Bytes update =
          encode_write(request_id, coordination.request.key,
                       coordination.request.value, coordination.chosen);
      for (net::NodeId node = 0; node < network_.size(); ++node) {
        if (node == node_ || coordination.acks.contains(node)) continue;
        network_.send(net::Message{node_, node, kMcvUpdate, update});
      }
    }
    arm_retry(request_id);
  });
}

void McvServer::handle_message(const net::Message& message) {
  if (!up_) return;
  serial::Reader r(message.payload);
  switch (message.type) {
    case kMcvLockReq: {
      const std::uint64_t request_id = r.varint();
      const std::uint64_t timestamp = r.varint();
      (void)r.str();  // key — carried for future per-key locking
      lamport_observe(timestamp);
      const LockWaiter waiter{timestamp, message.src, request_id};
      const bool present =
          std::find(queue_.begin(), queue_.end(), waiter) != queue_.end();
      if (!present) {
        queue_.push_back(waiter);
        std::sort(queue_.begin(), queue_.end());
        grant_head_if_new();
      } else if (granted_ && *granted_ == waiter) {
        // Duplicate request (retry after a lost grant): re-grant.
        replica::Version freshest = replica::Version::none();
        for (const auto& key : store_.keys()) {
          freshest = std::max(freshest, store_.version_of(key));
        }
        network_.send(net::Message{node_, message.src, kMcvLockGrant,
                                   encode_grant(request_id, freshest)});
      }
      break;
    }
    case kMcvLockGrant: {
      const std::uint64_t request_id = r.varint();
      const replica::Version seen = replica::Version::deserialize(r);
      on_grant(request_id, message.src, seen);
      break;
    }
    case kMcvUpdate: {
      const std::uint64_t request_id = r.varint();
      const std::string key = r.str();
      const std::string value = r.str();
      const replica::Version version = replica::Version::deserialize(r);
      store_.apply(key, value, version);
      network_.send(net::Message{node_, message.src, kMcvAck, encode_id(request_id)});
      break;
    }
    case kMcvAck:
      on_ack(r.varint(), message.src);
      break;
    case kMcvCommit: {
      const std::uint64_t request_id = r.varint();
      const std::string key = r.str();
      const std::string value = r.str();
      const replica::Version version = replica::Version::deserialize(r);
      store_.apply(key, value, version);  // idempotent if UPDATE arrived
      release_waiter(message.src, request_id);
      break;
    }
    case kMcvRelease:
      release_waiter(message.src, r.varint());
      break;
    case kMcvPreempt:
      handle_preempt(message.src, r.varint());
      break;
    case kMcvRelinquish:
      handle_relinquish(message.src, r.varint());
      break;
    default:
      MARP_LOG_WARN("mcv") << "unexpected message type " << message.type;
  }
}

void McvServer::peer_failed(net::NodeId node) {
  // Drop everything the dead coordinator owned so the queue can progress.
  if (granted_ && granted_->coordinator == node) {
    granted_.reset();
    preempt_requested_ = false;
  }
  queue_.erase(std::remove_if(queue_.begin(), queue_.end(),
                              [&](const LockWaiter& waiter) {
                                return waiter.coordinator == node;
                              }),
               queue_.end());
  grant_head_if_new();
}

void McvServer::on_fail() {
  queue_.clear();
  granted_.reset();
  preempt_requested_ = false;
  coordinating_.clear();
  lock_obtained_.clear();
}

McvProtocol::McvProtocol(net::Network& network, McvConfig config)
    : network_(network), config_(config) {
  servers_.reserve(network_.size());
  for (net::NodeId node = 0; node < network_.size(); ++node) {
    servers_.push_back(std::make_unique<McvServer>(network_, node, config_, *this));
    McvServer* server = servers_.back().get();
    network_.register_node(
        node, [server](const net::Message& message) { server->handle_message(message); });
  }
}

McvServer& McvProtocol::server(net::NodeId node) {
  MARP_REQUIRE(node < servers_.size());
  return *servers_[node];
}

void McvProtocol::submit(const replica::Request& request) {
  server(request.origin).submit(request);
}

void McvProtocol::set_outcome_handler(replica::OutcomeHandler handler) {
  for (auto& server : servers_) server->set_outcome_handler(handler);
}

void McvProtocol::fail_server(net::NodeId node) {
  McvServer& failed = server(node);
  if (!failed.up()) return;
  failed.fail();
  network_.simulator().schedule(failure_notice_delay, [this, node] {
    for (auto& srv : servers_) {
      if (srv->up()) srv->peer_failed(node);
    }
  });
}

void McvProtocol::recover_server(net::NodeId node) { server(node).recover(); }

}  // namespace marp::baseline

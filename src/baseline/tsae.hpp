// Timestamped anti-entropy (after Golding '92, the paper's ref [6]) — the
// weak-consistency end of the spectrum §1 discusses: "other replication
// protocols try to obtain better performance by using weaker consistency
// semantics, which allow replicated data objects to be temporally
// inconsistent".
//
// Writes apply locally and ack the client immediately (one log append, no
// coordination); replicas then reconcile pairwise in the background: on an
// anti-entropy round a server sends its summary vector (latest timestamp it
// has seen from every origin) to a random partner, the partner replies with
// the log entries the requester lacks and its own vector, and the requester
// pushes back what the partner lacks. Updates converge via the Thomas write
// rule. Reads are local and may be arbitrarily stale until gossip catches
// up — the trade MARP's strict quorums refuse to make.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "net/network.hpp"
#include "replica/request.hpp"
#include "replica/server.hpp"
#include "sim/random.hpp"

namespace marp::baseline {

constexpr net::MessageType kTsaeSummary = 0x0A01;  ///< requester → partner
constexpr net::MessageType kTsaeReply = 0x0A02;    ///< partner → requester
constexpr net::MessageType kTsaePush = 0x0A03;     ///< requester → partner

struct TsaeConfig {
  sim::SimTime local_op_time = sim::SimTime::micros(100);
  /// Gap between a server's anti-entropy rounds (exponentially jittered).
  sim::SimTime anti_entropy_interval = sim::SimTime::millis(100);
  /// Keep at most this many log entries per origin (enough for our runs;
  /// a production system would checkpoint instead).
  std::size_t max_log_per_origin = 4096;
};

/// One replicated update as it travels through the gossip mesh.
struct TsaeEntry {
  net::NodeId origin = 0;
  std::uint64_t seq = 0;  ///< per-origin sequence number
  std::string key;
  std::string value;
  replica::Version version;

  void serialize(serial::Writer& w) const;
  static TsaeEntry deserialize(serial::Reader& r);
};

/// Latest per-origin sequence number a server has seen.
using SummaryVector = std::vector<std::uint64_t>;

class TsaeProtocol;

class TsaeServer : public replica::ServerBase {
 public:
  TsaeServer(net::Network& network, net::NodeId node, const TsaeConfig& config,
             TsaeProtocol& protocol);

  void submit(const replica::Request& request);
  void handle_message(const net::Message& message);

  /// Start the periodic anti-entropy schedule.
  void start_gossip();

  const SummaryVector& summary() const noexcept { return summary_; }

 protected:
  void on_fail() override;

 private:
  void schedule_round();
  void run_round();
  void apply_entries(const std::vector<TsaeEntry>& entries);
  std::vector<TsaeEntry> entries_missing_from(const SummaryVector& theirs) const;

  const TsaeConfig& config_;
  TsaeProtocol& protocol_;
  sim::Rng rng_;

  SummaryVector summary_;                          ///< per-origin high water
  std::map<net::NodeId, std::vector<TsaeEntry>> log_;  ///< per-origin, seq order
  std::uint64_t next_seq_ = 0;                     ///< my own write counter
};

class TsaeProtocol final : public replica::ReplicationProtocol {
 public:
  TsaeProtocol(net::Network& network, TsaeConfig config = {});

  std::string name() const override { return "TSAE"; }
  void submit(const replica::Request& request) override;
  void set_outcome_handler(replica::OutcomeHandler handler) override;
  void fail_server(net::NodeId node) override;
  void recover_server(net::NodeId node) override;

  TsaeServer& server(net::NodeId node);
  std::size_t size() const noexcept { return servers_.size(); }
  const TsaeConfig& config() const noexcept { return config_; }

  std::uint64_t gossip_rounds() const noexcept { return gossip_rounds_; }
  void note_round() { ++gossip_rounds_; }

 private:
  net::Network& network_;
  TsaeConfig config_;
  std::vector<std::unique_ptr<TsaeServer>> servers_;
  std::uint64_t gossip_rounds_ = 0;
};

}  // namespace marp::baseline

// Primary-copy replication: the lowest-numbered live server orders all
// writes; backups apply in primary order. Included as the centralised
// contrast to MARP's fully-distributed coordination (§5 lists "fully
// distributed and scalable" as a MARP feature — this baseline quantifies the
// alternative's behaviour, including its view-change hiccup on failure).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "net/network.hpp"
#include "replica/request.hpp"
#include "replica/server.hpp"

namespace marp::baseline {

constexpr net::MessageType kPcForward = 0x0901;
constexpr net::MessageType kPcApply = 0x0902;
constexpr net::MessageType kPcApplyAck = 0x0903;
constexpr net::MessageType kPcDone = 0x0904;

struct PrimaryCopyConfig {
  sim::SimTime local_read_time = sim::SimTime::micros(100);
  sim::SimTime retry_interval = sim::SimTime::millis(100);
  std::uint32_t max_retry_rounds = 20;
  sim::SimTime failure_notice_delay = sim::SimTime::millis(100);
};

class PrimaryCopyProtocol;

class PrimaryCopyServer : public replica::ServerBase {
 public:
  PrimaryCopyServer(net::Network& network, net::NodeId node,
                    const PrimaryCopyConfig& config, PrimaryCopyProtocol& protocol);

  void submit(const replica::Request& request);
  void handle_message(const net::Message& message);
  void peer_failed(net::NodeId node);
  void peer_recovered(net::NodeId node);

  net::NodeId current_primary() const;
  bool is_primary() const { return current_primary() == node_; }
  const std::set<net::NodeId>& believed_up() const noexcept { return believed_up_; }

 protected:
  void on_fail() override;

 private:
  /// Primary-side ordering state for one forwarded write.
  struct PrimaryOp {
    replica::Request request;
    net::NodeId requester;
    replica::Version version;
    std::set<net::NodeId> acks;
    std::uint32_t retry_rounds = 0;
  };
  /// Origin-side state while waiting for the primary's DONE.
  struct OriginOp {
    replica::Request request;
    std::uint32_t retry_rounds = 0;
  };

  void primary_handle_write(const replica::Request& request, net::NodeId requester);
  void primary_maybe_done(std::uint64_t request_id);
  void origin_done(std::uint64_t request_id, bool success);
  void arm_primary_retry(std::uint64_t request_id);
  void arm_origin_retry(std::uint64_t request_id);

  const PrimaryCopyConfig& config_;
  PrimaryCopyProtocol& protocol_;
  std::set<net::NodeId> believed_up_;
  std::map<std::uint64_t, PrimaryOp> primary_ops_;
  std::map<std::uint64_t, OriginOp> origin_ops_;
  std::int64_t sequence_ = 0;  ///< primary's write ordinal
};

class PrimaryCopyProtocol final : public replica::ReplicationProtocol {
 public:
  PrimaryCopyProtocol(net::Network& network, PrimaryCopyConfig config = {});

  std::string name() const override { return "PrimaryCopy"; }
  void submit(const replica::Request& request) override;
  void set_outcome_handler(replica::OutcomeHandler handler) override;
  void fail_server(net::NodeId node) override;
  void recover_server(net::NodeId node) override;

  PrimaryCopyServer& server(net::NodeId node);
  std::size_t size() const noexcept { return servers_.size(); }
  const PrimaryCopyConfig& config() const noexcept { return config_; }

 private:
  net::Network& network_;
  PrimaryCopyConfig config_;
  std::vector<std::unique_ptr<PrimaryCopyServer>> servers_;
};

}  // namespace marp::baseline

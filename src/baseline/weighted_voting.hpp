// Gifford-style weighted voting (SOSP '79), cited by the paper as the
// classic quorum scheme MARP's majority rule descends from.
//
// Each replica holds a number of votes. A read gathers version replies worth
// at least `r` votes and returns the freshest value; a write first gathers a
// version quorum worth `w` votes, then pushes a dominating version to the
// repliers and completes when acks worth `w` votes are in. r + w > V ensures
// every read quorum intersects every write quorum. Unlike MARP and MP-MCV,
// reads here pay network messages — the contrast the comparison bench shows.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "net/network.hpp"
#include "replica/request.hpp"
#include "replica/server.hpp"
#include "replica/versioned_store.hpp"

namespace marp::baseline {

constexpr net::MessageType kWvVersionReq = 0x0701;
constexpr net::MessageType kWvVersionRep = 0x0702;
constexpr net::MessageType kWvWrite = 0x0703;
constexpr net::MessageType kWvWriteAck = 0x0704;
constexpr net::MessageType kWvReadReq = 0x0705;
constexpr net::MessageType kWvReadRep = 0x0706;

struct WeightedVotingConfig {
  /// Votes per replica; empty = one vote each.
  std::vector<std::uint32_t> votes;
  /// Read / write quorum sizes in votes. 0 = derive: w = majority of total
  /// votes, r = total − w + 1 (the minimal intersecting read quorum).
  std::uint32_t read_quorum = 0;
  std::uint32_t write_quorum = 0;

  sim::SimTime retry_interval = sim::SimTime::millis(100);
  std::uint32_t max_retry_rounds = 20;
};

class WeightedVotingProtocol;

class WeightedVotingServer : public replica::ServerBase {
 public:
  WeightedVotingServer(net::Network& network, net::NodeId node,
                       WeightedVotingProtocol& protocol);

  void submit(const replica::Request& request);
  void handle_message(const net::Message& message);

 protected:
  void on_fail() override;

 private:
  struct Op {
    replica::Request request;
    std::set<net::NodeId> repliers;
    std::uint32_t votes_gathered = 0;
    replica::Version max_seen;
    std::string best_value;       ///< reads: value paired with max_seen
    replica::Version chosen;      ///< writes: version being installed
    enum class Phase : std::uint8_t { VersionPoll, Writing } phase = Phase::VersionPoll;
    std::uint32_t retry_rounds = 0;
  };

  void start(const replica::Request& request);
  void add_vote(Op& op, net::NodeId from);
  void maybe_advance(std::uint64_t request_id);
  void complete_read(Op& op);
  void begin_write_phase(Op& op);
  void complete_write(Op& op);
  void fail_request(Op& op);
  void arm_retry(std::uint64_t request_id);

  WeightedVotingProtocol& protocol_;
  std::map<std::uint64_t, Op> ops_;
  std::map<std::uint64_t, sim::SimTime> quorum_at_;
};

class WeightedVotingProtocol final : public replica::ReplicationProtocol {
 public:
  WeightedVotingProtocol(net::Network& network, WeightedVotingConfig config = {});

  std::string name() const override { return "WeightedVoting"; }
  void submit(const replica::Request& request) override;
  void set_outcome_handler(replica::OutcomeHandler handler) override;
  void fail_server(net::NodeId node) override;
  void recover_server(net::NodeId node) override;

  WeightedVotingServer& server(net::NodeId node);
  std::size_t size() const noexcept { return servers_.size(); }

  std::uint32_t votes_of(net::NodeId node) const { return votes_.at(node); }
  std::uint32_t total_votes() const noexcept { return total_votes_; }
  std::uint32_t read_quorum() const noexcept { return read_quorum_; }
  std::uint32_t write_quorum() const noexcept { return write_quorum_; }
  const WeightedVotingConfig& config() const noexcept { return config_; }

 private:
  net::Network& network_;
  WeightedVotingConfig config_;
  std::vector<std::uint32_t> votes_;
  std::uint32_t total_votes_ = 0;
  std::uint32_t read_quorum_ = 0;
  std::uint32_t write_quorum_ = 0;
  std::vector<std::unique_ptr<WeightedVotingServer>> servers_;
};

}  // namespace marp::baseline

#include "baseline/tsae.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/logging.hpp"

namespace marp::baseline {

void TsaeEntry::serialize(serial::Writer& w) const {
  w.varint(origin);
  w.varint(seq);
  w.str(key);
  w.str(value);
  version.serialize(w);
}

TsaeEntry TsaeEntry::deserialize(serial::Reader& r) {
  TsaeEntry entry;
  entry.origin = static_cast<net::NodeId>(r.varint());
  entry.seq = r.varint();
  entry.key = r.str();
  entry.value = r.str();
  entry.version = replica::Version::deserialize(r);
  return entry;
}

namespace {

serial::Bytes encode_summary(const SummaryVector& summary) {
  serial::Writer w;
  w.varint(summary.size());
  for (std::uint64_t seq : summary) w.varint(seq);
  return w.take();
}

SummaryVector decode_summary(serial::Reader& r) {
  const std::uint64_t n = r.varint();
  SummaryVector summary;
  summary.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) summary.push_back(r.varint());
  return summary;
}

serial::Bytes encode_reply(const SummaryVector& summary,
                           const std::vector<TsaeEntry>& entries) {
  serial::Writer w;
  w.varint(summary.size());
  for (std::uint64_t seq : summary) w.varint(seq);
  w.seq(entries, [](serial::Writer& ww, const TsaeEntry& e) { e.serialize(ww); });
  return w.take();
}

}  // namespace

TsaeServer::TsaeServer(net::Network& network, net::NodeId node,
                       const TsaeConfig& config, TsaeProtocol& protocol)
    : replica::ServerBase(network, node),
      config_(config),
      protocol_(protocol),
      rng_(network.simulator().rng_factory().stream("tsae", node)),
      summary_(network.size(), 0) {}

void TsaeServer::start_gossip() { schedule_round(); }

void TsaeServer::schedule_round() {
  const double gap_ms =
      rng_.exponential(config_.anti_entropy_interval.as_millis());
  simulator().schedule(sim::SimTime::millis(gap_ms), [this] {
    if (up_) run_round();
    schedule_round();  // keep the schedule alive across fail/recover
  });
}

void TsaeServer::run_round() {
  if (network_.size() < 2) return;
  // Random partner (uniform over the other replicas).
  net::NodeId partner = static_cast<net::NodeId>(rng_.bounded(network_.size() - 1));
  if (partner >= node_) ++partner;
  protocol_.note_round();
  network_.send(net::Message{node_, partner, kTsaeSummary, encode_summary(summary_)});
}

std::vector<TsaeEntry> TsaeServer::entries_missing_from(
    const SummaryVector& theirs) const {
  std::vector<TsaeEntry> missing;
  for (const auto& [origin, entries] : log_) {
    const std::uint64_t have =
        origin < theirs.size() ? theirs[origin] : 0;
    for (const TsaeEntry& entry : entries) {
      if (entry.seq > have) missing.push_back(entry);
    }
  }
  return missing;
}

void TsaeServer::apply_entries(const std::vector<TsaeEntry>& entries) {
  for (const TsaeEntry& entry : entries) {
    MARP_REQUIRE(entry.origin < summary_.size());
    if (entry.seq <= summary_[entry.origin]) continue;  // duplicate
    // Log entries propagate in sequence order from each peer, so gaps do
    // not occur with reliable channels; tolerate them anyway by advancing
    // the high-water mark only on the next expected entry.
    auto& origin_log = log_[entry.origin];
    origin_log.push_back(entry);
    summary_[entry.origin] = std::max(summary_[entry.origin], entry.seq);
    if (origin_log.size() > config_.max_log_per_origin) {
      origin_log.erase(origin_log.begin());
    }
    store_.apply(entry.key, entry.value, entry.version);
  }
}

void TsaeServer::submit(const replica::Request& request) {
  if (!up_) return;
  simulator().schedule(config_.local_op_time, [this, request] {
    if (!up_) return;
    replica::Outcome outcome;
    outcome.request_id = request.id;
    outcome.kind = request.kind;
    outcome.origin = node_;
    outcome.submitted = request.submitted;
    outcome.dispatched = request.submitted;
    outcome.lock_obtained = now();
    outcome.completed = now();
    outcome.success = true;
    if (request.kind == replica::RequestKind::Read) {
      if (auto value = store_.read(request.key)) {
        outcome.value = value->value;
        outcome.read_version = value->version;
      }
    } else {
      // Local commit: apply, log, ack — gossip does the rest.
      TsaeEntry entry;
      entry.origin = node_;
      entry.seq = ++next_seq_;
      entry.key = request.key;
      entry.value = request.value;
      entry.version = replica::Version{now().as_micros(), node_};
      log_[node_].push_back(entry);
      summary_[node_] = entry.seq;
      store_.apply(entry.key, entry.value, entry.version);
    }
    report(outcome);
  });
}

void TsaeServer::handle_message(const net::Message& message) {
  if (!up_) return;
  serial::Reader r(message.payload);
  switch (message.type) {
    case kTsaeSummary: {
      // Partner side of a round: send what they lack plus our own summary
      // so they can push back what we lack (push-pull).
      const SummaryVector theirs = decode_summary(r);
      network_.send(net::Message{node_, message.src, kTsaeReply,
                                 encode_reply(summary_, entries_missing_from(theirs))});
      break;
    }
    case kTsaeReply: {
      const SummaryVector theirs = decode_summary(r);
      const auto entries =
          r.seq<TsaeEntry>([](serial::Reader& rr) { return TsaeEntry::deserialize(rr); });
      apply_entries(entries);
      const auto push = entries_missing_from(theirs);
      if (!push.empty()) {
        serial::Writer w;
        w.seq(push, [](serial::Writer& ww, const TsaeEntry& e) { e.serialize(ww); });
        network_.send(net::Message{node_, message.src, kTsaePush, w.take()});
      }
      break;
    }
    case kTsaePush: {
      const auto entries =
          r.seq<TsaeEntry>([](serial::Reader& rr) { return TsaeEntry::deserialize(rr); });
      apply_entries(entries);
      break;
    }
    default:
      MARP_LOG_WARN("tsae") << "unexpected message type " << message.type;
  }
}

void TsaeServer::on_fail() {
  // Volatile gossip state survives in our model only via the durable store;
  // the log and summary are rebuilt as empty (peers re-send everything,
  // duplicates are version-filtered by the store).
  log_.clear();
  std::fill(summary_.begin(), summary_.end(), 0);
}

TsaeProtocol::TsaeProtocol(net::Network& network, TsaeConfig config)
    : network_(network), config_(config) {
  servers_.reserve(network_.size());
  for (net::NodeId node = 0; node < network_.size(); ++node) {
    servers_.push_back(std::make_unique<TsaeServer>(network_, node, config_, *this));
    TsaeServer* server = servers_.back().get();
    network_.register_node(
        node, [server](const net::Message& message) { server->handle_message(message); });
    server->start_gossip();
  }
}

TsaeServer& TsaeProtocol::server(net::NodeId node) {
  MARP_REQUIRE(node < servers_.size());
  return *servers_[node];
}

void TsaeProtocol::submit(const replica::Request& request) {
  server(request.origin).submit(request);
}

void TsaeProtocol::set_outcome_handler(replica::OutcomeHandler handler) {
  for (auto& server : servers_) server->set_outcome_handler(handler);
}

void TsaeProtocol::fail_server(net::NodeId node) { server(node).fail(); }

void TsaeProtocol::recover_server(net::NodeId node) { server(node).recover(); }

}  // namespace marp::baseline

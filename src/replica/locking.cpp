#include "replica/locking.hpp"

namespace marp::replica {

bool LockingList::append(const agent::AgentId& agent, sim::SimTime now) {
  if (contains(agent)) return false;
  entries_.push_back({agent, now});
  return true;
}

bool LockingList::remove(const agent::AgentId& agent) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&](const Entry& e) { return e.agent == agent; });
  if (it == entries_.end()) return false;
  entries_.erase(it);
  return true;
}

std::optional<agent::AgentId> LockingList::head() const {
  if (entries_.empty()) return std::nullopt;
  return entries_.front().agent;
}

std::optional<std::size_t> LockingList::position(const agent::AgentId& agent) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].agent == agent) return i;
  }
  return std::nullopt;
}

std::vector<agent::AgentId> LockingList::snapshot() const {
  std::vector<agent::AgentId> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.agent);
  return out;
}

void LockingList::serialize(serial::Writer& w) const {
  w.varint(entries_.size());
  for (const Entry& e : entries_) {
    e.agent.serialize(w);
    w.svarint(e.enqueued.as_micros());
  }
}

LockingList LockingList::deserialize(serial::Reader& r) {
  LockingList list;
  const std::uint64_t n = r.varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    agent::AgentId id = agent::AgentId::deserialize(r);
    sim::SimTime t = sim::SimTime::micros(r.svarint());
    list.entries_.push_back({id, t});
  }
  return list;
}

void UpdatedList::add(const agent::AgentId& agent) {
  if (contains(agent)) return;
  entries_.push_back(agent);
  while (entries_.size() > capacity_) entries_.pop_front();
}

bool UpdatedList::contains(const agent::AgentId& agent) const {
  return std::find(entries_.begin(), entries_.end(), agent) != entries_.end();
}

void UpdatedList::merge(const std::vector<agent::AgentId>& other) {
  for (const auto& id : other) add(id);
}

std::vector<agent::AgentId> UpdatedList::snapshot() const {
  return {entries_.begin(), entries_.end()};
}

}  // namespace marp::replica

// Client request / outcome types and the protocol-facing interface every
// replication scheme in this repo implements (MARP and the message-passing
// baselines), so workloads and benches drive them interchangeably.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/message.hpp"
#include "replica/versioned_store.hpp"
#include "sim/time.hpp"

namespace marp::replica {

enum class RequestKind : std::uint8_t { Read, Write };

struct Request {
  std::uint64_t id = 0;
  RequestKind kind = RequestKind::Write;
  std::string key;
  std::string value;           ///< writes only
  net::NodeId origin = 0;      ///< server that received the client request
  sim::SimTime submitted;      ///< client submission time
};

struct Outcome {
  std::uint64_t request_id = 0;
  RequestKind kind = RequestKind::Write;
  net::NodeId origin = 0;
  bool success = false;
  std::string value;           ///< reads: the value returned
  Version read_version;        ///< reads: version of the returned value
  sim::SimTime submitted;
  sim::SimTime completed;

  // Write-path detail (MARP semantics; baselines fill what applies):
  sim::SimTime dispatched;     ///< agent dispatched / coordination started
  sim::SimTime lock_obtained;  ///< consensus/lock achieved (ALT endpoint)
  std::uint32_t servers_visited = 0;  ///< migrations made before the lock (PRK)

  sim::SimTime total_latency() const { return completed - submitted; }
  sim::SimTime lock_latency() const { return lock_obtained - dispatched; }
  sim::SimTime update_latency() const { return completed - dispatched; }
};

using OutcomeHandler = std::function<void(const Outcome&)>;

/// A replication protocol instance spanning all N servers of a simulation.
class ReplicationProtocol {
 public:
  virtual ~ReplicationProtocol() = default;

  virtual std::string name() const = 0;

  /// Hand a client request to its origin server.
  virtual void submit(const Request& request) = 0;

  /// Invoked exactly once per finished request.
  virtual void set_outcome_handler(OutcomeHandler handler) = 0;

  /// Fail-stop / recover a server (also flips network reachability).
  virtual void fail_server(net::NodeId node) = 0;
  virtual void recover_server(net::NodeId node) = 0;
};

}  // namespace marp::replica

// Versioned key-value store held by each replica.
//
// Versions are (timestamp, writer-server) pairs ordered lexicographically;
// writes are applied per the Thomas write rule (newer version wins, ties by
// server id), which is what lets the MARP winner "check the time of last
// update of all the quorum members and use the most recent copy" (§3.1).
// The store optionally records its apply history so the consistency checker
// can verify order preservation across replicas.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "serial/byte_buffer.hpp"
#include "sim/time.hpp"

namespace marp::replica {

struct Version {
  std::int64_t time_us = -1;  ///< -1 = "never written"
  std::uint32_t writer = 0;   ///< server that coordinated the write

  friend constexpr auto operator<=>(const Version&, const Version&) noexcept = default;

  static constexpr Version none() noexcept { return Version{}; }

  void serialize(serial::Writer& w) const {
    w.svarint(time_us);
    w.varint(writer);
  }
  static Version deserialize(serial::Reader& r) {
    Version v;
    v.time_us = r.svarint();
    v.writer = static_cast<std::uint32_t>(r.varint());
    return v;
  }
};

struct VersionedValue {
  std::string value;
  Version version;
};

/// One replica's copy of the replicated data.
class VersionedStore {
 public:
  /// Read the local copy (the paper's fast read path). Empty optional if the
  /// key has never been written here.
  std::optional<VersionedValue> read(const std::string& key) const;

  /// Version of a key; Version::none() if absent.
  Version version_of(const std::string& key) const;

  /// Thomas write rule: apply iff `version` is newer than the local one.
  /// Returns true if the write was applied.
  bool apply(const std::string& key, std::string value, Version version);

  /// Unconditional overwrite (state transfer during recovery).
  void force(const std::string& key, std::string value, Version version);

  /// Remove a key entirely (rollback of a key created after a checkpoint).
  bool erase(const std::string& key);

  /// Drop every item (precedes a full restore). History is kept.
  void clear_items();

  std::size_t size() const noexcept { return items_.size(); }
  std::vector<std::string> keys() const;

  /// Every (key, version) this replica applied, in apply order — consumed by
  /// the order-preservation checker.
  struct AppliedRecord {
    std::string key;
    Version version;
  };
  const std::vector<AppliedRecord>& history() const noexcept { return history_; }
  void set_record_history(bool on) noexcept { record_history_ = on; }

  /// Fired after every successful apply() with the stored value — the hook a
  /// real node uses to journal committed writes to disk. Not fired by
  /// force()/erase(): recovery restores state that is already durable, and
  /// journaling it again would double every record on the next replay.
  using ApplyObserver =
      std::function<void(const std::string& key, const VersionedValue& value)>;
  void set_apply_observer(ApplyObserver observer) { observer_ = std::move(observer); }

 private:
  std::map<std::string, VersionedValue> items_;
  std::vector<AppliedRecord> history_;
  bool record_history_ = true;
  ApplyObserver observer_;
};

}  // namespace marp::replica

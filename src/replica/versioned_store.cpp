#include "replica/versioned_store.hpp"

namespace marp::replica {

std::optional<VersionedValue> VersionedStore::read(const std::string& key) const {
  auto it = items_.find(key);
  if (it == items_.end()) return std::nullopt;
  return it->second;
}

Version VersionedStore::version_of(const std::string& key) const {
  auto it = items_.find(key);
  return it == items_.end() ? Version::none() : it->second.version;
}

bool VersionedStore::apply(const std::string& key, std::string value, Version version) {
  auto& slot = items_[key];
  if (!(version > slot.version)) return false;
  slot.value = std::move(value);
  slot.version = version;
  if (record_history_) history_.push_back({key, version});
  if (observer_) observer_(key, slot);
  return true;
}

void VersionedStore::force(const std::string& key, std::string value, Version version) {
  auto& slot = items_[key];
  slot.value = std::move(value);
  slot.version = version;
}

bool VersionedStore::erase(const std::string& key) {
  return items_.erase(key) != 0;
}

void VersionedStore::clear_items() { items_.clear(); }

std::vector<std::string> VersionedStore::keys() const {
  std::vector<std::string> out;
  out.reserve(items_.size());
  for (const auto& [key, value] : items_) out.push_back(key);
  return out;
}

}  // namespace marp::replica

#include "replica/server.hpp"

namespace marp::replica {

ServerBase::ServerBase(net::Network& network, net::NodeId node)
    : network_(network), node_(node) {}

void ServerBase::fail() {
  if (!up_) return;
  up_ = false;
  network_.set_node_up(node_, false);
  on_fail();
}

void ServerBase::recover() {
  if (up_) return;
  up_ = true;
  network_.set_node_up(node_, true);
  on_recover();
}

std::vector<std::int64_t> ServerBase::routing_costs() const {
  const auto& topo = network_.topology();
  std::vector<std::int64_t> costs(topo.size(), 0);
  for (net::NodeId dst = 0; dst < topo.size(); ++dst) {
    if (dst != node_) costs[dst] = topo.cost(node_, dst);
  }
  return costs;
}

}  // namespace marp::replica

// Replica server base: the pieces shared by MARP servers and the
// message-passing baselines — the versioned store, liveness state, routing
// table of migration/transfer costs (§3.2), and outcome reporting.
#pragma once

#include <cstdint>
#include <vector>

#include "net/network.hpp"
#include "replica/request.hpp"
#include "replica/versioned_store.hpp"

namespace marp::replica {

class ServerBase {
 public:
  ServerBase(net::Network& network, net::NodeId node);
  virtual ~ServerBase() = default;

  ServerBase(const ServerBase&) = delete;
  ServerBase& operator=(const ServerBase&) = delete;

  net::NodeId node() const noexcept { return node_; }
  net::Network& network() noexcept { return network_; }
  sim::Simulator& simulator() noexcept { return network_.simulator(); }
  sim::SimTime now() const noexcept { return network_.simulator().now(); }

  VersionedStore& store() noexcept { return store_; }
  const VersionedStore& store() const noexcept { return store_; }

  bool up() const noexcept { return up_; }

  /// Fail-stop: drop in-memory coordination state, go unreachable. The
  /// durable store survives (stable storage), matching fail-recover.
  virtual void fail();
  virtual void recover();

  void set_outcome_handler(OutcomeHandler handler) { outcome_handler_ = std::move(handler); }

  /// Routing table: cost (µs) of moving an agent / opening a connection from
  /// this server to each other server — provided to visiting agents (§3.2).
  std::vector<std::int64_t> routing_costs() const;

 protected:
  void report(const Outcome& outcome) {
    if (outcome_handler_) outcome_handler_(outcome);
  }

  /// Hook for subclasses to clear volatile state on fail().
  virtual void on_fail() {}
  virtual void on_recover() {}

  net::Network& network_;
  net::NodeId node_;
  VersionedStore store_;
  bool up_ = true;
  OutcomeHandler outcome_handler_;
};

}  // namespace marp::replica

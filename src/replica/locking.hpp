// Locking List (LL) and Updated List (UL) — the per-server data structures
// of §3.2.
//
// The LL is an arrival-ordered queue of agents requesting the update lock at
// this server; an agent wins the global lock when it heads the LLs of a
// majority of servers. The UL records agents that have already completed
// their updates; agents merge ULs into their Updated Agents List as gossip.
#pragma once

#include <algorithm>
#include <deque>
#include <optional>
#include <vector>

#include "agent/agent_id.hpp"
#include "sim/time.hpp"

namespace marp::replica {

class LockingList {
 public:
  struct Entry {
    agent::AgentId agent;
    sim::SimTime enqueued;
  };

  /// Append a lock request; returns false (no-op) if already present.
  bool append(const agent::AgentId& agent, sim::SimTime now);

  /// Remove an agent's entry wherever it is; true if something was removed.
  bool remove(const agent::AgentId& agent);

  /// Agent currently at the head (holds this server's local rank 1).
  std::optional<agent::AgentId> head() const;

  /// 0-based position of an agent, or nullopt.
  std::optional<std::size_t> position(const agent::AgentId& agent) const;

  bool contains(const agent::AgentId& agent) const { return position(agent).has_value(); }
  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }

  /// Queue order snapshot — what a visiting agent copies into its LT.
  std::vector<agent::AgentId> snapshot() const;

  void serialize(serial::Writer& w) const;
  static LockingList deserialize(serial::Reader& r);

 private:
  std::deque<Entry> entries_;
};

class UpdatedList {
 public:
  /// Record a completed update; keeps at most `capacity` recent entries.
  explicit UpdatedList(std::size_t capacity = 256) : capacity_(capacity) {}

  void add(const agent::AgentId& agent);
  bool contains(const agent::AgentId& agent) const;
  std::size_t size() const noexcept { return entries_.size(); }

  /// Merge another list's contents into this one (gossip).
  void merge(const std::vector<agent::AgentId>& other);

  std::vector<agent::AgentId> snapshot() const;

 private:
  std::deque<agent::AgentId> entries_;
  std::size_t capacity_;
};

}  // namespace marp::replica

// Lock-space sharding tests: the key → group router, the per-group
// LockSpace, parallel commits across disjoint groups, multi-group
// write-sets, per-key ordering, the per-group Theorem-2 monitor under
// contention and message loss, the num_lock_groups = 1 golden path, and the
// PaperLiteral {2,2,1} tie-rule deadlock that TotalOrder resolves.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "marp/priority.hpp"
#include "marp/protocol.hpp"
#include "net/latency.hpp"
#include "net/topology.hpp"
#include "runner/consistency.hpp"
#include "runner/experiment.hpp"
#include "shard/lock_space.hpp"
#include "shard/router.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"
#include "workload/trace.hpp"

namespace marp::core {
namespace {

using namespace marp::sim::literals;

// ---------- ShardRouter ----------

TEST(ShardRouter, SingleGroupRoutesEverythingToZero) {
  shard::ShardRouter router(1);
  EXPECT_EQ(router.group_of("item"), 0u);
  EXPECT_EQ(router.group_of(""), 0u);
  EXPECT_EQ(router.group_of("item-42"), 0u);
}

TEST(ShardRouter, DeterministicAndInRange) {
  shard::ShardRouter router(8);
  for (int i = 0; i < 256; ++i) {
    const std::string key = "item-" + std::to_string(i);
    const shard::GroupId g = router.group_of(key);
    EXPECT_LT(g, 8u);
    // Pure function: a second router with the same shard count agrees.
    EXPECT_EQ(shard::ShardRouter(8).group_of(key), g);
  }
}

TEST(ShardRouter, GroupsOfIsSortedAndDeduplicated) {
  shard::ShardRouter router(16);
  std::vector<std::string> keys;
  for (int i = 0; i < 64; ++i) keys.push_back("k" + std::to_string(i));
  keys.push_back("k0");  // duplicate key
  const auto groups = router.groups_of(keys);
  EXPECT_TRUE(std::is_sorted(groups.begin(), groups.end()));
  EXPECT_EQ(std::adjacent_find(groups.begin(), groups.end()), groups.end());
  for (const shard::GroupId g : groups) EXPECT_LT(g, 16u);
}

TEST(ShardRouter, SpreadsKeysAcrossGroups) {
  // FNV-1a over "item-N" should touch every group and keep the load within
  // a loose factor of uniform — a regression net against accidental
  // hash-quality loss, not a statistical claim.
  shard::ShardRouter router(8);
  std::vector<std::size_t> load(8, 0);
  for (int i = 0; i < 512; ++i) ++load[router.group_of("item-" + std::to_string(i))];
  for (std::size_t g = 0; g < 8; ++g) {
    EXPECT_GT(load[g], 512u / 8 / 4) << "group " << g << " nearly empty";
    EXPECT_LT(load[g], 512u / 8 * 4) << "group " << g << " overloaded";
  }
}

TEST(ShardRouter, StableHashIsFixedForever) {
  // The wire format and every independent router depend on these exact
  // values; changing the hash silently splits the cluster's lock space.
  EXPECT_EQ(shard::ShardRouter::stable_hash(""), 0xCBF29CE484222325ULL);
  EXPECT_EQ(shard::ShardRouter::stable_hash("a"), 0xAF63DC4C8601EC8CULL);
}

TEST(ShardRouter, GoldenHashAndRoutingTable) {
  // Golden values computed by an independent FNV-1a implementation
  // (offset 0xCBF29CE484222325, prime 0x100000001B3). Each row also pins
  // group_of under 2-, 4-, and 8-way routing: hash % G is the routing
  // contract, so these rows freeze the *placement* of real workload keys,
  // not just the hash bits. Any mismatch means existing deployments would
  // route the same key to a different Locking List after an upgrade.
  struct Golden {
    const char* key;
    std::uint64_t hash;
    shard::GroupId mod2, mod4, mod8;
  };
  constexpr Golden kTable[] = {
      {"", 0xCBF29CE484222325ULL, 1, 1, 5},
      {"alpha", 0x8AC625BB85ED202BULL, 1, 3, 3},
      {"beta", 0x7627619B954620A7ULL, 1, 3, 7},
      {"gamma", 0x229176BD1F6BA96AULL, 0, 2, 2},
      {"delta", 0x52076675EC13A0C1ULL, 1, 1, 1},
      {"key-0", 0x71135BF295F28059ULL, 1, 1, 1},
      {"key-1", 0x71135AF295F27EA6ULL, 0, 2, 6},
      {"key-2", 0x711359F295F27CF3ULL, 1, 3, 3},
      {"key-3", 0x711358F295F27B40ULL, 0, 0, 0},
      {"user:42", 0x6C151EA4DCD221C2ULL, 0, 2, 2},
      {"the same bytes hash the same", 0xCBE33480B7DE2F02ULL, 0, 2, 2},
  };
  const shard::ShardRouter r2(2), r4(4), r8(8);
  for (const Golden& row : kTable) {
    EXPECT_EQ(shard::ShardRouter::stable_hash(row.key), row.hash) << row.key;
    EXPECT_EQ(r2.group_of(row.key), row.mod2) << row.key;
    EXPECT_EQ(r4.group_of(row.key), row.mod4) << row.key;
    EXPECT_EQ(r8.group_of(row.key), row.mod8) << row.key;
  }
}

// ---------- LockSpace ----------

agent::AgentId aid(std::uint32_t n) { return agent::AgentId{n, n * 100, 0}; }

TEST(LockSpace, GroupsAreIndependent) {
  shard::LockSpace space(4);
  space.group(0).ll.append(aid(1), sim::SimTime::millis(1));
  space.group(2).holder = aid(2);
  EXPECT_EQ(space.group(0).ll.size(), 1u);
  EXPECT_EQ(space.group(1).ll.size(), 0u);
  EXPECT_FALSE(space.group(0).holder.has_value());
  EXPECT_TRUE(space.group(2).holder.has_value());
  EXPECT_EQ(space.total_queued(), 1u);
}

TEST(LockSpace, ReleaseGrantsHonoursAttemptFence) {
  shard::LockSpace space(2);
  space.group(0).holder = aid(1);
  space.group(0).holder_attempt = 5;
  space.group(1).holder = aid(1);
  space.group(1).holder_attempt = 7;
  // Withdrawing attempt 5 releases only the grants taken at <= 5.
  EXPECT_TRUE(space.release_grants(aid(1), 5));
  EXPECT_FALSE(space.group(0).holder.has_value());
  EXPECT_TRUE(space.group(1).holder.has_value());
  EXPECT_FALSE(space.release_grants(aid(2), 99));  // not the holder
}

TEST(LockSpace, PurgeDropsEveryTrace) {
  shard::LockSpace space(3);
  space.group(0).ll.append(aid(1), sim::SimTime::millis(1));
  space.group(1).ll.append(aid(1), sim::SimTime::millis(1));
  space.group(1).ll.append(aid(2), sim::SimTime::millis(2));
  space.group(2).holder = aid(1);
  EXPECT_TRUE(space.purge(aid(1)));
  EXPECT_EQ(space.total_queued(), 1u);  // aid(2) survives
  EXPECT_FALSE(space.group(2).holder.has_value());
  EXPECT_FALSE(space.purge(aid(1)));  // nothing left to drop
}

// ---------- end-to-end: a MARP stack with lock groups ----------

struct Stack {
  explicit Stack(std::size_t n, MarpConfig config = {}, std::uint64_t seed = 1)
      : simulator(seed),
        network(simulator, net::make_lan_mesh(n, 2_ms),
                std::make_unique<net::ConstantLatency>(2_ms)),
        platform(network),
        protocol(network, platform, config) {
    protocol.set_outcome_handler(
        [this](const replica::Outcome& outcome) { trace.record(outcome); });
  }

  replica::Request write(std::uint64_t id, net::NodeId origin,
                         const std::string& key, const std::string& value) {
    replica::Request request;
    request.id = id;
    request.kind = replica::RequestKind::Write;
    request.key = key;
    request.value = value;
    request.origin = origin;
    request.submitted = simulator.now();
    return request;
  }

  sim::Simulator simulator;
  net::Network network;
  agent::AgentPlatform platform;
  MarpProtocol protocol;
  workload::TraceCollector trace;
};

/// Two keys guaranteed to live in different groups under `num_groups`.
std::pair<std::string, std::string> two_keys_in_distinct_groups(
    std::size_t num_groups) {
  shard::ShardRouter router(num_groups);
  const std::string first = "item-0";
  const shard::GroupId g0 = router.group_of(first);
  for (int i = 1; i < 1000; ++i) {
    std::string candidate = "item-" + std::to_string(i);
    if (router.group_of(candidate) != g0) return {first, candidate};
  }
  ADD_FAILURE() << "router maps everything to one group";
  return {first, first};
}

TEST(Sharding, DisjointGroupsCommitInParallel) {
  // Two writers on keys in different lock groups must hold their locks
  // concurrently: both obtain their group's majority before either's
  // session finishes — impossible under the paper's single lock, where the
  // loser waits for the winner's COMMIT.
  MarpConfig config;
  config.num_lock_groups = 8;
  Stack stack(5, config);
  const auto [key_a, key_b] = two_keys_in_distinct_groups(8);
  stack.protocol.submit(stack.write(1, 0, key_a, "a"));
  stack.protocol.submit(stack.write(2, 1, key_b, "b"));
  stack.simulator.run(60_s);

  ASSERT_EQ(stack.trace.successful_writes(), 2u);
  EXPECT_EQ(stack.protocol.stats().mutex_violations, 0u);
  const auto& outcomes = stack.trace.outcomes();
  ASSERT_EQ(outcomes.size(), 2u);
  const sim::SimTime lock_late =
      std::max(outcomes[0].lock_obtained, outcomes[1].lock_obtained);
  const sim::SimTime done_early =
      std::min(outcomes[0].completed, outcomes[1].completed);
  EXPECT_LT(lock_late, done_early)
      << "critical sections did not overlap: sharding is not parallelising";
}

TEST(Sharding, MultiGroupWriteSetCommitsAtomically) {
  // One agent carrying writes for two groups: a single commit record with
  // both entries, each tagged with its own group.
  MarpConfig config;
  config.num_lock_groups = 8;
  config.batch_size = 2;
  Stack stack(5, config);
  const auto [key_a, key_b] = two_keys_in_distinct_groups(8);
  stack.protocol.submit(stack.write(1, 0, key_a, "a"));
  stack.protocol.submit(stack.write(2, 0, key_b, "b"));
  stack.simulator.run(60_s);

  EXPECT_EQ(stack.trace.successful_writes(), 2u);
  ASSERT_EQ(stack.protocol.commit_log().size(), 1u);
  const auto& record = stack.protocol.commit_log()[0];
  ASSERT_EQ(record.entries.size(), 2u);
  EXPECT_NE(record.entries[0].group, record.entries[1].group);
  // Both replicas' stores converged on both keys.
  for (net::NodeId node = 0; node < 5; ++node) {
    EXPECT_TRUE(stack.protocol.server(node).store().read(key_a).has_value());
    EXPECT_TRUE(stack.protocol.server(node).store().read(key_b).has_value());
  }
}

TEST(Sharding, OverlappingGroupSetsBothCommit) {
  // Agent 1 writes {A, B}, agent 2 writes {B, C}: they conflict in B's
  // group, so the all-or-nothing grant rule serializes them — but both must
  // eventually commit (liveness of the withdraw/defer scheme across groups).
  MarpConfig config;
  config.num_lock_groups = 8;
  config.batch_size = 2;
  Stack stack(5, config);
  const auto [key_a, key_b] = two_keys_in_distinct_groups(8);
  stack.protocol.submit(stack.write(1, 0, key_a, "a1"));
  stack.protocol.submit(stack.write(2, 0, key_b, "b1"));
  stack.protocol.submit(stack.write(3, 1, key_b, "b2"));
  stack.protocol.submit(stack.write(4, 1, key_a, "a2"));
  stack.simulator.run(60_s);

  EXPECT_EQ(stack.trace.successful_writes(), 4u);
  EXPECT_EQ(stack.protocol.stats().mutex_violations, 0u);
  EXPECT_EQ(stack.protocol.commit_log().size(), 2u);
  const auto per_key = runner::check_per_key_order(stack.protocol.commit_log());
  EXPECT_TRUE(per_key.ok) << (per_key.problems.empty() ? "" : per_key.problems[0]);
  // Replicas converged on a single final value for the contended key.
  const auto reference = stack.protocol.server(0).store().read(key_b);
  ASSERT_TRUE(reference.has_value());
  for (net::NodeId node = 1; node < 5; ++node) {
    const auto value = stack.protocol.server(node).store().read(key_b);
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(value->value, reference->value);
  }
}

TEST(Sharding, ContendedShardedRunKeepsPerKeyOrderAndMutex) {
  // Many writers over a small key space with 4 groups: every group's
  // Theorem 2 monitor must stay silent, the per-group commit log must be
  // version-ordered, and every key's history must be ordered.
  MarpConfig config;
  config.num_lock_groups = 4;
  Stack stack(5, config);
  std::uint64_t id = 1;
  for (int round = 0; round < 4; ++round) {
    stack.simulator.schedule(sim::SimTime::millis(round * 3), [&stack, round, &id] {
      for (net::NodeId node = 0; node < 5; ++node) {
        const std::string key = "item-" + std::to_string((round + node) % 8);
        stack.protocol.submit(stack.write(
            id++, node, key, "r" + std::to_string(round) + "n" + std::to_string(node)));
      }
    });
  }
  stack.simulator.run(120_s);

  EXPECT_EQ(stack.trace.successful_writes(), 20u);
  EXPECT_EQ(stack.protocol.stats().mutex_violations, 0u);
  const auto groups = runner::check_commit_order(stack.protocol.commit_log(), 4);
  EXPECT_TRUE(groups.ok) << (groups.problems.empty() ? "" : groups.problems[0]);
  const auto per_key = runner::check_per_key_order(stack.protocol.commit_log());
  EXPECT_TRUE(per_key.ok) << (per_key.problems.empty() ? "" : per_key.problems[0]);
}

TEST(Sharding, MutexMonitorSilentUnderMessageLoss) {
  // Safety must not depend on delivery: with 20% of messages vanishing
  // (UDP-like Drop mode), per-group mutual exclusion and per-key order must
  // still hold. Progress is not asserted — only that what commits is safe.
  MarpConfig config;
  config.num_lock_groups = 4;
  Stack stack(5, config, /*seed=*/7);
  stack.network.set_loss_mode(net::Network::LossMode::Drop);
  stack.network.set_drop_probability(0.2);
  std::uint64_t id = 1;
  for (int round = 0; round < 3; ++round) {
    stack.simulator.schedule(sim::SimTime::millis(round * 5), [&stack, round, &id] {
      for (net::NodeId node = 0; node < 5; ++node) {
        stack.protocol.submit(stack.write(id++, node,
                                          "item-" + std::to_string(node % 4),
                                          "x" + std::to_string(round)));
      }
    });
  }
  stack.simulator.run(120_s);

  EXPECT_EQ(stack.protocol.stats().mutex_violations, 0u);
  const auto per_key = runner::check_per_key_order(stack.protocol.commit_log());
  EXPECT_TRUE(per_key.ok) << (per_key.problems.empty() ? "" : per_key.problems[0]);
}

TEST(Sharding, RetransmitLossDrainsAndCommitsEverything) {
  // With the paper's reliable-channel model (Retransmit), loss only delays:
  // every update must eventually commit, still without monitor violations.
  MarpConfig config;
  config.num_lock_groups = 4;
  Stack stack(5, config, /*seed=*/11);
  stack.network.set_loss_mode(net::Network::LossMode::Retransmit);
  stack.network.set_drop_probability(0.2);
  stack.network.set_retransmit_timeout(20_ms);
  std::uint64_t id = 1;
  for (net::NodeId node = 0; node < 5; ++node) {
    stack.protocol.submit(
        stack.write(id++, node, "item-" + std::to_string(node % 4), "v"));
  }
  stack.simulator.run(300_s);

  EXPECT_EQ(stack.trace.successful_writes(), 5u);
  EXPECT_EQ(stack.protocol.stats().mutex_violations, 0u);
}

// ---------- golden path: one group is the paper, bit for bit ----------

std::vector<std::string> commit_log_fingerprint(const MarpProtocol& protocol) {
  std::vector<std::string> lines;
  for (const auto& record : protocol.commit_log()) {
    std::string line = record.agent.to_string() + "@" +
                       std::to_string(record.committed.as_micros());
    for (const auto& entry : record.entries) {
      line += "|" + entry.key + "#" + std::to_string(entry.group) + "@" +
              std::to_string(entry.version.time_us) + "," +
              std::to_string(entry.version.writer);
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

void run_fixed_contended_workload(Stack& stack) {
  std::uint64_t id = 1;
  for (int round = 0; round < 3; ++round) {
    stack.simulator.schedule(sim::SimTime::millis(round * 4), [&stack, round, &id] {
      for (net::NodeId node = 0; node < 5; ++node) {
        stack.protocol.submit(stack.write(
            id++, node, "item", "r" + std::to_string(round) + "n" + std::to_string(node)));
      }
    });
  }
  stack.simulator.run(120_s);
}

TEST(Sharding, SingleGroupIsDeterministicAcrossRuns) {
  // Same seed, same workload, run twice: identical commit logs (agent ids,
  // commit times, versions). The sharding layer must not have introduced
  // any iteration-order or hashing nondeterminism.
  MarpConfig config;  // num_lock_groups defaults to 1
  Stack first(5, config, /*seed=*/42);
  run_fixed_contended_workload(first);
  Stack second(5, config, /*seed=*/42);
  run_fixed_contended_workload(second);
  EXPECT_EQ(first.trace.successful_writes(), 15u);
  EXPECT_EQ(commit_log_fingerprint(first.protocol),
            commit_log_fingerprint(second.protocol));
}

TEST(Sharding, DefaultConfigEqualsExplicitSingleGroup) {
  // The default MarpConfig and an explicit num_lock_groups = 1 must be the
  // same protocol, down to every commit's timestamp.
  Stack defaulted(5, MarpConfig{}, /*seed=*/42);
  run_fixed_contended_workload(defaulted);
  MarpConfig explicit_config;
  explicit_config.num_lock_groups = 1;
  Stack explicited(5, explicit_config, /*seed=*/42);
  run_fixed_contended_workload(explicited);
  EXPECT_EQ(commit_log_fingerprint(defaulted.protocol),
            commit_log_fingerprint(explicited.protocol));
  // And it is a total order, as the paper requires of the single lock.
  const auto order =
      runner::check_commit_order(defaulted.protocol.commit_log(), 1);
  EXPECT_TRUE(order.ok) << (order.problems.empty() ? "" : order.problems[0]);
}

// ---------- PaperLiteral {2,2,1} deadlock regression ----------

TEST(TieBreakRegression, PaperLiteralStallsOnTwoTwoOneSplit) {
  // Head counts {2,2,1} over N = 5: S = 2, M = 2, and the paper's tie rule
  // S + (N − M·S) < N/2 gives 2 + 1 = 3 < 2.5 — false, so nobody may take
  // the tie-break and *every* agent keeps waiting: a reachable deadlock in
  // the published algorithm. TotalOrder resolves the same view decisively.
  const agent::AgentId a1{0, 100, 0}, a2{1, 100, 0}, a3{2, 100, 0};
  LockTable table;
  table[0] = LockSnapshot{{a1, a2}, 10};
  table[1] = LockSnapshot{{a1, a3}, 10};
  table[2] = LockSnapshot{{a2, a1}, 10};
  table[3] = LockSnapshot{{a2, a3}, 10};
  table[4] = LockSnapshot{{a3, a1}, 10};

  for (const agent::AgentId& self : {a1, a2, a3}) {
    const Decision literal =
        decide(table, {}, self, 5, TieBreakMode::PaperLiteral);
    EXPECT_EQ(literal.kind, Decision::Kind::Unknown)
        << "PaperLiteral unexpectedly resolved for " << self.to_string();
  }
  // TotalOrder: a1 and a2 tie at two heads; the smaller id (a1) wins, and
  // every agent agrees on that from the same information.
  const Decision w1 = decide(table, {}, a1, 5, TieBreakMode::TotalOrder);
  EXPECT_EQ(w1.kind, Decision::Kind::Win);
  for (const agent::AgentId& loser : {a2, a3}) {
    const Decision d = decide(table, {}, loser, 5, TieBreakMode::TotalOrder);
    EXPECT_EQ(d.kind, Decision::Kind::Lose);
    ASSERT_TRUE(d.winner.has_value());
    EXPECT_EQ(*d.winner, a1);
  }
}

// ---------- run_experiment plumbing ----------

TEST(Sharding, ExperimentRunnerAuditsShardedRuns) {
  runner::ExperimentConfig config;
  config.servers = 5;
  config.protocol = runner::ProtocolKind::Marp;
  config.seed = 3;
  config.marp.num_lock_groups = 8;
  config.marp.batch_size = 2;
  config.workload.mean_interarrival_ms = 20.0;
  config.workload.num_keys = 16;
  config.workload.writes_per_update = 2;
  config.workload.duration = sim::SimTime::seconds(2);
  config.workload.max_requests_per_server = 20;
  config.drain = sim::SimTime::seconds(120);

  const runner::RunResult result = runner::run_experiment(config);
  EXPECT_TRUE(result.consistent)
      << (result.consistency_problems.empty() ? ""
                                              : result.consistency_problems[0]);
  EXPECT_EQ(result.mutex_violations, 0u);
  EXPECT_GT(result.successful_writes, 0u);
  EXPECT_EQ(result.failed_writes, 0u);
}

TEST(Sharding, WritesPerUpdateExpandsWriteArrivals) {
  sim::Simulator simulator(5);
  workload::WorkloadConfig config;
  config.mean_interarrival_ms = 10.0;
  config.num_keys = 8;
  config.writes_per_update = 3;
  config.duration = sim::SimTime::seconds(1);
  std::vector<replica::Request> seen;
  workload::RequestGenerator generator(
      simulator, 2, config,
      [&seen](const replica::Request& request) { seen.push_back(request); });
  generator.start();
  simulator.run(sim::SimTime::seconds(2));

  ASSERT_FALSE(seen.empty());
  EXPECT_EQ(seen.size() % 3, 0u);  // writes always arrive in triples
  EXPECT_EQ(generator.generated(), seen.size());
  // Each triple shares one submission instant (one logical update).
  for (std::size_t i = 0; i + 2 < seen.size(); i += 3) {
    EXPECT_EQ(seen[i].submitted, seen[i + 1].submitted);
    EXPECT_EQ(seen[i].submitted, seen[i + 2].submitted);
    EXPECT_EQ(seen[i].kind, replica::RequestKind::Write);
  }
}

}  // namespace
}  // namespace marp::core

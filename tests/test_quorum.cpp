// The quorum-geometry test harness (src/quorum/).
//
// The protocol's safety rests on exactly one structural property of the
// geometry: every write quorum intersects every write quorum and every read
// quorum. Nothing here takes that on faith — for every geometry at every
// N ≤ 16 (grids in every r×c layout, trees at degree 2 and 3, the
// read-lease wrapper over both base geometries) the harness enumerates the
// complete quorum lists and checks the property pairwise, cross-validates
// covered() against the enumeration over all 2^N node subsets, exercises
// the pick functions' exclusion/preference contract, and compares minimal
// quorum sizes against the majority baseline ⌈(N+1)/2⌉.
//
// The second half guards the protocol integration: --quorum majority is
// bit-identical to the seed protocol (the geometry machinery must be
// invisible when off), every geometry survives end-to-end runs including
// crash-driven quorum re-selection, the geometry decision rule behaves as
// documented, and the model checker both exhausts small geometry spaces
// violation-free and catches the seeded SplitQuorum mutant.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "check/explorer.hpp"
#include "fault/plan.hpp"
#include "marp/priority.hpp"
#include "quorum/quorum.hpp"
#include "runner/experiment.hpp"

namespace marp::quorum {
namespace {

bool intersects(const NodeSet& a, const NodeSet& b) {
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) ++i;
    else ++j;
  }
  return false;
}

bool is_subset(const NodeSet& sub, const NodeSet& super) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

std::string describe(const QuorumSystem& qs) {
  std::ostringstream os;
  os << geometry_name(qs.geometry()) << " n=" << qs.size();
  if (const auto* tree = dynamic_cast<const TreeQuorum*>(&qs)) {
    os << " d=" << tree->degree();
  }
  if (const auto* grid = dynamic_cast<const GridQuorum*>(&qs)) {
    os << " " << grid->rows() << "x" << grid->cols();
  }
  if (const auto* lease = dynamic_cast<const ReadLeaseQuorum*>(&qs)) {
    os << " over " << geometry_name(lease->inner().geometry());
  }
  return os.str();
}

/// Every geometry variant under test for an n-server cluster: uniform and
/// weighted majority, trees of degree 2 and 3, grids in EVERY r×c layout,
/// and the read-lease wrapper over both structural geometries.
std::vector<std::unique_ptr<QuorumSystem>> all_geometries(std::size_t n) {
  std::vector<std::unique_ptr<QuorumSystem>> systems;
  systems.push_back(std::make_unique<MajorityQuorum>(n));
  std::vector<std::uint32_t> votes(n);
  for (std::size_t i = 0; i < n; ++i) votes[i] = 1 + i % 3;
  systems.push_back(std::make_unique<MajorityQuorum>(n, votes));
  systems.push_back(std::make_unique<TreeQuorum>(n, 2));
  systems.push_back(std::make_unique<TreeQuorum>(n, 3));
  for (std::size_t cols = 1; cols <= n; ++cols) {
    systems.push_back(std::make_unique<GridQuorum>(n, cols));
  }
  systems.push_back(
      std::make_unique<ReadLeaseQuorum>(std::make_unique<GridQuorum>(n)));
  systems.push_back(
      std::make_unique<ReadLeaseQuorum>(std::make_unique<TreeQuorum>(n, 2)));
  return systems;
}

// ---------- the intersection property, exhaustively ----------

TEST(QuorumIntersection, EveryGeometryEveryNUpTo16) {
  for (std::size_t n = 1; n <= 16; ++n) {
    for (const auto& qs : all_geometries(n)) {
      const std::vector<NodeSet> writes = qs->write_quorums();
      const std::vector<NodeSet> reads = qs->read_quorums();
      ASSERT_FALSE(writes.empty()) << describe(*qs);
      ASSERT_FALSE(reads.empty()) << describe(*qs);

      // Sanity: every enumerated quorum is a valid, covered node set.
      for (const NodeSet& w : writes) {
        ASSERT_FALSE(w.empty()) << describe(*qs);
        ASSERT_TRUE(std::is_sorted(w.begin(), w.end())) << describe(*qs);
        ASSERT_LT(w.back(), n) << describe(*qs);
        ASSERT_TRUE(qs->write_covered(w)) << describe(*qs);
      }
      for (const NodeSet& r : reads) {
        ASSERT_TRUE(qs->read_covered(r)) << describe(*qs);
      }

      // Majority quorum lists grow combinatorially with n; above the direct
      // pairwise budget the property follows by pigeonhole from the vote
      // threshold instead: any two sets each holding > half the votes share
      // a node, and any write+read pair holds w + r > V votes.
      if (writes.size() * writes.size() > 4'000'000) {
        ASSERT_EQ(qs->geometry(), Geometry::Majority) << describe(*qs);
        continue;
      }
      for (std::size_t i = 0; i < writes.size(); ++i) {
        for (std::size_t j = i; j < writes.size(); ++j) {
          ASSERT_TRUE(intersects(writes[i], writes[j]))
              << describe(*qs) << ": write quorums disjoint";
        }
        for (const NodeSet& r : reads) {
          ASSERT_TRUE(intersects(writes[i], r))
              << describe(*qs) << ": write and read quorums disjoint";
        }
      }
    }
  }
}

TEST(QuorumIntersection, CoveredMatchesEnumerationOverAllSubsets) {
  // covered(S) must be exactly "S contains some enumerated quorum", for
  // every subset S of every geometry up to n = 10 (2^10 subsets each).
  for (std::size_t n = 1; n <= 10; ++n) {
    for (const auto& qs : all_geometries(n)) {
      const std::vector<NodeSet> writes = qs->write_quorums();
      const std::vector<NodeSet> reads = qs->read_quorums();
      for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
        NodeSet subset;
        for (std::size_t v = 0; v < n; ++v) {
          if (mask & (1u << v)) subset.push_back(static_cast<net::NodeId>(v));
        }
        const bool write_enum = std::any_of(
            writes.begin(), writes.end(),
            [&](const NodeSet& q) { return is_subset(q, subset); });
        const bool read_enum = std::any_of(
            reads.begin(), reads.end(),
            [&](const NodeSet& q) { return is_subset(q, subset); });
        ASSERT_EQ(qs->write_covered(subset), write_enum)
            << describe(*qs) << " mask=" << mask;
        ASSERT_EQ(qs->read_covered(subset), read_enum)
            << describe(*qs) << " mask=" << mask;
      }
    }
  }
}

TEST(QuorumPick, HonorsExclusionsPreferenceAndFeasibility) {
  for (std::size_t n = 1; n <= 12; ++n) {
    for (const auto& qs : all_geometries(n)) {
      const std::vector<NodeSet> writes = qs->write_quorums();
      // Exclusion sets: empty, each singleton, each adjacent pair.
      std::vector<NodeSet> exclusions{{}};
      for (std::size_t v = 0; v < n; ++v) {
        exclusions.push_back({static_cast<net::NodeId>(v)});
        if (v + 1 < n) {
          exclusions.push_back({static_cast<net::NodeId>(v),
                                static_cast<net::NodeId>(v + 1)});
        }
      }
      for (const NodeSet& excluded : exclusions) {
        const bool feasible = std::any_of(
            writes.begin(), writes.end(),
            [&](const NodeSet& q) { return !intersects(q, excluded); });
        const auto picked = qs->pick_write_quorum(excluded, net::kInvalidNode);
        ASSERT_EQ(picked.has_value(), feasible) << describe(*qs);
        if (picked) {
          ASSERT_TRUE(qs->write_covered(*picked)) << describe(*qs);
          ASSERT_FALSE(intersects(*picked, excluded)) << describe(*qs);
        }
        const auto read_picked =
            qs->pick_read_quorum(excluded, net::kInvalidNode);
        if (read_picked) {
          ASSERT_TRUE(qs->read_covered(*read_picked)) << describe(*qs);
          ASSERT_FALSE(intersects(*read_picked, excluded)) << describe(*qs);
        }

        // Preference contract: when some surviving quorum contains the
        // preferred node, the pick must include it.
        for (std::size_t p = 0; p < n; ++p) {
          const net::NodeId prefer = static_cast<net::NodeId>(p);
          if (quorum::contains(excluded, prefer)) continue;
          const bool attainable = std::any_of(
              writes.begin(), writes.end(), [&](const NodeSet& q) {
                return quorum::contains(q, prefer) && !intersects(q, excluded);
              });
          const auto preferred = qs->pick_write_quorum(excluded, prefer);
          ASSERT_EQ(preferred.has_value(), feasible) << describe(*qs);
          if (preferred && attainable) {
            ASSERT_TRUE(quorum::contains(*preferred, prefer))
                << describe(*qs) << " prefer=" << p;
          }
        }
      }
    }
  }
}

TEST(QuorumPick, DeterministicAcrossCalls) {
  for (std::size_t n : {5, 9, 16}) {
    for (const auto& qs : all_geometries(n)) {
      const auto a = qs->pick_write_quorum({1}, 0);
      const auto b = qs->pick_write_quorum({1}, 0);
      ASSERT_EQ(a.has_value(), b.has_value()) << describe(*qs);
      if (a) ASSERT_EQ(*a, *b) << describe(*qs);
    }
  }
}

// ---------- minimality against the majority baseline ----------

TEST(QuorumMinimality, StructuralGeometriesBeatMajorityAt16) {
  // The point of the exercise: at N = 16 the majority quorum is 9 strong,
  // a 4x4 grid touring 7 and a binary tree touring 5 — strictly below
  // ⌈(N+1)/2⌉, with the intersection property intact (proved above).
  const std::size_t n = 16;
  const std::size_t majority = (n + 2) / 2;  // ⌈(N+1)/2⌉
  EXPECT_EQ(MajorityQuorum(n).min_write_size(), majority);
  EXPECT_LT(GridQuorum(n).min_write_size(), majority);
  EXPECT_LT(TreeQuorum(n, 2).min_write_size(), majority);
  EXPECT_LT(TreeQuorum(n, 3).min_write_size(), majority);
  EXPECT_EQ(GridQuorum(n).min_write_size(), 7u);  // 4 (column) + 3 (reps)
  // Root-form descent bottoming out through node 7's single child 15 (the
  // all-children form there is just {15}): {0,1,3,15}.
  EXPECT_EQ(TreeQuorum(n, 2).min_write_size(), 4u);

  // And min_write_size is honest: it equals the smallest enumerated quorum.
  for (std::size_t m = 1; m <= 16; ++m) {
    for (const auto& qs : all_geometries(m)) {
      const auto writes = qs->write_quorums();
      std::size_t smallest = m + 1;
      for (const NodeSet& w : writes) smallest = std::min(smallest, w.size());
      ASSERT_EQ(qs->min_write_size(), smallest) << describe(*qs);
    }
  }
}

TEST(QuorumMinimality, ReadLeaseReadsAreSingletons) {
  for (std::size_t n : {4, 9, 16}) {
    const ReadLeaseQuorum lease(std::make_unique<GridQuorum>(n));
    for (const NodeSet& r : lease.read_quorums()) {
      EXPECT_EQ(r.size(), 1u);
      EXPECT_TRUE(quorum::contains(lease.lease_holders(), r.front()));
    }
    // A write must revoke every lease: each write quorum spans the holders.
    for (const NodeSet& w : lease.write_quorums()) {
      EXPECT_TRUE(is_subset(lease.lease_holders(), w));
    }
  }
}

// ---------- construction and configuration ----------

TEST(QuorumSpecTest, FactoryBuildsTheNamedGeometry) {
  QuorumSpec spec;
  EXPECT_EQ(make_quorum_system(spec, 5)->geometry(), Geometry::Majority);
  spec.geometry = Geometry::Tree;
  spec.tree_degree = 3;
  const auto tree = make_quorum_system(spec, 13);
  ASSERT_EQ(tree->geometry(), Geometry::Tree);
  EXPECT_EQ(dynamic_cast<const TreeQuorum&>(*tree).degree(), 3u);
  spec.geometry = Geometry::Grid;
  spec.grid_cols = 3;
  const auto grid = make_quorum_system(spec, 12);
  ASSERT_EQ(grid->geometry(), Geometry::Grid);
  EXPECT_EQ(dynamic_cast<const GridQuorum&>(*grid).cols(), 3u);
  EXPECT_EQ(dynamic_cast<const GridQuorum&>(*grid).rows(), 4u);
  spec.geometry = Geometry::ReadLease;
  spec.lease_inner = Geometry::Tree;
  const auto lease = make_quorum_system(spec, 9);
  ASSERT_EQ(lease->geometry(), Geometry::ReadLease);
  EXPECT_EQ(dynamic_cast<const ReadLeaseQuorum&>(*lease).inner().geometry(),
            Geometry::Tree);
}

TEST(QuorumSpecTest, DefaultGridIsNearSquare) {
  EXPECT_EQ(GridQuorum(16).cols(), 4u);
  EXPECT_EQ(GridQuorum(9).cols(), 3u);
  EXPECT_EQ(GridQuorum(10).cols(), 4u);  // ⌈√10⌉
  EXPECT_EQ(GridQuorum(1).cols(), 1u);
}

TEST(QuorumSpecTest, WeightedMajorityMatchesSeedArithmetic) {
  // votes {3,1,1,1,1}: node 0 plus any other node clears 2·votes > 7.
  const MajorityQuorum qs(5, {3, 1, 1, 1, 1});
  EXPECT_TRUE(qs.write_covered({0, 1}));
  EXPECT_FALSE(qs.write_covered({1, 2, 3}));    // 3 of 7 votes
  EXPECT_TRUE(qs.write_covered({1, 2, 3, 4}));  // 4 of 7 votes
  EXPECT_EQ(qs.min_write_size(), 2u);
}

// ---------- the geometry decision rule ----------

namespace core_test {

using core::Decision;
using core::DoneSet;
using core::LockSnapshot;
using core::LockTable;
using core::ProtocolMutant;
using core::TieBreakMode;

agent::AgentId aid(std::uint32_t n) { return agent::AgentId{n, n * 100, 0}; }

TEST(DecideGeometry, CoverageWinsAndPartialViewsStayUnknown) {
  const GridQuorum grid(4, 2);  // columns {0,2} and {1,3}
  const agent::AgentId a1 = aid(1), a2 = aid(2);
  LockTable table;
  table[0] = LockSnapshot{{a1}, 1};
  table[1] = LockSnapshot{{a1}, 1};
  table[2] = LockSnapshot{{a1}, 1};
  // a1 heads {0,1,2}: column {0,2} complete plus node 1 — a write quorum.
  EXPECT_EQ(core::decide(table, {}, a1, 4, TieBreakMode::TotalOrder, {},
                         ProtocolMutant::None, &grid)
                .kind,
            Decision::Kind::Win);
  const Decision lose = core::decide(table, {}, a2, 4,
                                     TieBreakMode::TotalOrder, {},
                                     ProtocolMutant::None, &grid);
  EXPECT_EQ(lose.kind, Decision::Kind::Lose);
  ASSERT_TRUE(lose.winner.has_value());
  EXPECT_EQ(*lose.winner, a1);

  // Heads on {0,1} only: no full column, and the known set {0,1} is not
  // write-covered either — undecidable, keep touring.
  LockTable partial;
  partial[0] = LockSnapshot{{a1}, 1};
  partial[1] = LockSnapshot{{a1}, 1};
  EXPECT_EQ(core::decide(partial, {}, a1, 4, TieBreakMode::TotalOrder, {},
                         ProtocolMutant::None, &grid)
                .kind,
            Decision::Kind::Unknown);
}

TEST(DecideGeometry, TieBreaksOnceKnownSetIsCovered) {
  const GridQuorum grid(4, 2);
  const agent::AgentId a1 = aid(1), a2 = aid(2);
  // Split heads over a covered known set {0,1,2}: nobody holds a quorum,
  // but every quorum intersects the known set, so the optimistic tie-break
  // may fire: a1 and a2 tie at max head-count and the smaller id wins.
  LockTable table;
  table[0] = LockSnapshot{{a1, a2}, 1};
  table[1] = LockSnapshot{{a2, a1}, 1};
  table[2] = LockSnapshot{{a1, a2}, 1};
  const Decision d = core::decide(table, {}, a1, 4, TieBreakMode::TotalOrder, {},
                                  ProtocolMutant::None, &grid);
  EXPECT_EQ(d.kind, Decision::Kind::Win);
  EXPECT_EQ(core::decide(table, {}, a2, 4, TieBreakMode::TotalOrder, {},
                         ProtocolMutant::None, &grid)
                .kind,
            Decision::Kind::Lose);
}

TEST(SplitQuorumMutant, FakesCoverageWithDisjointHalves) {
  const GridQuorum grid(4, 2);
  // The mutant accepts either static half — {0,1} or {2,3} — although
  // neither contains a full grid column, and the two halves are disjoint:
  // exactly the intersection violation the monitor must catch.
  EXPECT_TRUE(core::mutant_write_covered(grid, {0, 1},
                                         ProtocolMutant::SplitQuorum));
  EXPECT_TRUE(core::mutant_write_covered(grid, {2, 3},
                                         ProtocolMutant::SplitQuorum));
  EXPECT_FALSE(grid.write_covered({0, 1}));
  EXPECT_FALSE(grid.write_covered({2, 3}));
  EXPECT_FALSE(intersects({0, 1}, {2, 3}));
  // And the mutant picks the half around the preferred node.
  const auto lower =
      core::mutant_pick_write_quorum(grid, {}, 0, ProtocolMutant::SplitQuorum);
  const auto upper =
      core::mutant_pick_write_quorum(grid, {}, 3, ProtocolMutant::SplitQuorum);
  ASSERT_TRUE(lower && upper);
  EXPECT_EQ(*lower, (NodeSet{0, 1}));
  EXPECT_EQ(*upper, (NodeSet{2, 3}));
  // Unmutated dispatch is untouched.
  EXPECT_TRUE(core::mutant_write_covered(grid, {0, 1, 2},
                                         ProtocolMutant::None));
}

}  // namespace core_test

// ---------- golden equivalence: majority is the seed, bit for bit ----------

void expect_identical_runs(const runner::RunResult& a,
                           const runner::RunResult& b) {
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.successful_writes, b.successful_writes);
  EXPECT_EQ(a.failed_writes, b.failed_writes);
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_EQ(a.alt_ms, b.alt_ms);
  EXPECT_EQ(a.att_ms, b.att_ms);
  EXPECT_EQ(a.client_latency_ms, b.client_latency_ms);
  EXPECT_EQ(a.att_p99_ms, b.att_p99_ms);
  EXPECT_EQ(a.prk, b.prk);
  EXPECT_EQ(a.net_stats.messages_sent, b.net_stats.messages_sent);
  EXPECT_EQ(a.net_stats.bytes_sent, b.net_stats.bytes_sent);
  EXPECT_EQ(a.agent_stats.migrations_started, b.agent_stats.migrations_started);
  EXPECT_EQ(a.agent_stats.migration_bytes, b.agent_stats.migration_bytes);
  EXPECT_EQ(a.mutex_violations, b.mutex_violations);
  EXPECT_EQ(a.marp_stats.anomalies.total(), b.marp_stats.anomalies.total());
  EXPECT_EQ(a.marp_stats.quorum_reselections,
            b.marp_stats.quorum_reselections);
  EXPECT_EQ(a.consistent, b.consistent);
}

TEST(GoldenEquivalence, ExplicitMajorityMatchesSeedOnPaperLiteral) {
  // The paper-literal deployment: N = 5, two contending writers per batch.
  // An explicit --quorum majority must replay the default config down to
  // every virtual timestamp and byte — the geometry machinery may not
  // perturb the seed protocol at all.
  for (std::uint64_t seed : {1, 7, 42}) {
    runner::ExperimentConfig defaulted;
    defaulted.servers = 5;
    defaulted.protocol = runner::ProtocolKind::Marp;
    defaulted.seed = seed;
    defaulted.workload.mean_interarrival_ms = 40.0;
    defaulted.workload.write_fraction = 0.8;
    defaulted.workload.duration = sim::SimTime::seconds(2);
    defaulted.marp.batch_size = 2;
    defaulted.marp.read_mode = core::ReadMode::QuorumAgent;

    runner::ExperimentConfig explicit_majority = defaulted;
    explicit_majority.marp.quorum.geometry = Geometry::Majority;

    const runner::RunResult a = runner::run_experiment(defaulted);
    const runner::RunResult b = runner::run_experiment(explicit_majority);
    EXPECT_TRUE(a.consistent);
    EXPECT_GT(a.successful_writes, 0u);
    expect_identical_runs(a, b);
  }
}

TEST(GoldenEquivalence, ExplicitMajorityMatchesSeedOnShardedRegression) {
  // The PR-1 sharding regression config: 8 lock groups, multi-key writes.
  runner::ExperimentConfig defaulted;
  defaulted.servers = 5;
  defaulted.protocol = runner::ProtocolKind::Marp;
  defaulted.seed = 3;
  defaulted.marp.num_lock_groups = 8;
  defaulted.marp.batch_size = 2;
  defaulted.workload.mean_interarrival_ms = 20.0;
  defaulted.workload.num_keys = 16;
  defaulted.workload.writes_per_update = 2;
  defaulted.workload.duration = sim::SimTime::seconds(2);
  defaulted.workload.max_requests_per_server = 20;
  defaulted.drain = sim::SimTime::seconds(120);

  runner::ExperimentConfig explicit_majority = defaulted;
  explicit_majority.marp.quorum.geometry = Geometry::Majority;

  const runner::RunResult a = runner::run_experiment(defaulted);
  const runner::RunResult b = runner::run_experiment(explicit_majority);
  EXPECT_TRUE(a.consistent);
  EXPECT_GT(a.successful_writes, 0u);
  EXPECT_EQ(a.failed_writes, 0u);
  expect_identical_runs(a, b);
}

// ---------- end-to-end geometry runs ----------

runner::ExperimentConfig geometry_run_config(Geometry geometry,
                                             std::size_t servers,
                                             std::uint64_t seed) {
  runner::ExperimentConfig config;
  config.servers = servers;
  config.protocol = runner::ProtocolKind::Marp;
  config.seed = seed;
  config.marp.quorum.geometry = geometry;
  config.workload.mean_interarrival_ms = 60.0;
  config.workload.write_fraction = 0.7;
  config.workload.duration = sim::SimTime::seconds(2);
  config.marp.read_mode = core::ReadMode::QuorumAgent;
  return config;
}

TEST(GeometryEndToEnd, EveryGeometryCommitsConsistently) {
  for (const Geometry geometry :
       {Geometry::Majority, Geometry::Tree, Geometry::Grid,
        Geometry::ReadLease}) {
    const runner::RunResult result =
        runner::run_experiment(geometry_run_config(geometry, 9, 11));
    EXPECT_TRUE(result.consistent)
        << geometry_name(geometry) << ": "
        << (result.consistency_problems.empty()
                ? ""
                : result.consistency_problems[0]);
    EXPECT_EQ(result.mutex_violations, 0u) << geometry_name(geometry);
    EXPECT_GT(result.successful_writes, 0u) << geometry_name(geometry);
    EXPECT_GT(result.reads, 0u) << geometry_name(geometry);
  }
}

TEST(GeometryEndToEnd, CrashTriggersQuorumReselection) {
  for (const Geometry geometry : {Geometry::Tree, Geometry::Grid}) {
    runner::ExperimentConfig config = geometry_run_config(geometry, 9, 5);
    config.workload.write_fraction = 1.0;
    config.marp.migration_retry_limit = 1;
    runner::FailureEvent crash;
    crash.node = 1;  // inner tree node / grid column member
    crash.at = sim::SimTime::seconds(0.5);
    crash.fail = true;
    config.failures.push_back(crash);
    const runner::RunResult result = runner::run_experiment(config);
    EXPECT_TRUE(result.consistent)
        << geometry_name(geometry) << ": "
        << (result.consistency_problems.empty()
                ? ""
                : result.consistency_problems[0]);
    EXPECT_EQ(result.mutex_violations, 0u) << geometry_name(geometry);
    EXPECT_GT(result.successful_writes, 0u) << geometry_name(geometry);
    EXPECT_GT(result.marp_stats.quorum_reselections, 0u)
        << geometry_name(geometry)
        << ": no fallback re-selection fired around the crash";
  }
}

// Regression for the ACK version floor (found by the 500-seed geometry
// chaos sweeps): a small tree/grid quorum can overlap a concurrent session
// at a *single* server, and when that server's NACKs are all dropped the
// stale attempt eventually assembles its ACKs after the other session
// committed — stamping versions computed at its original lock time, below
// the predecessor's. The ACK now carries the granting server's applied
// high-water mark and the winner restamps above the floor before COMMIT.
// These seeds (chaos_sim sweep, N=9) all produced "commit log entry ...
// not after the group's predecessor" before the fix.
TEST(GeometryEndToEnd, AckVersionFloorKeepsCommitOrderUnderMessageFaults) {
  struct Case {
    Geometry geometry;
    std::uint64_t seed;
  };
  for (const Case c : {Case{Geometry::Tree, 10}, Case{Geometry::Tree, 25},
                       Case{Geometry::Tree, 34}, Case{Geometry::Tree, 42}}) {
    runner::ExperimentConfig config;
    config.servers = 9;
    config.protocol = runner::ProtocolKind::Marp;
    config.seed = c.seed;
    config.marp.quorum.geometry = c.geometry;
    // Mirror chaos_sim's scenario generator: seeded workload shape + the
    // seeded fault plan (crash/partition/drop/dup/reorder windows).
    sim::RngFactory factory(c.seed);
    sim::Rng rng = factory.stream("chaos-scenario");
    config.workload.duration = sim::SimTime::millis(
        1500 + static_cast<std::int64_t>(rng.bounded(2500)));
    config.workload.mean_interarrival_ms = rng.uniform(60.0, 150.0);
    config.workload.write_fraction = 1.0;
    config.workload.num_keys = 1 + rng.bounded(4);
    config.marp.num_lock_groups = rng.bernoulli(0.3) ? 2 : 1;
    config.marp.reliable_commit = true;
    config.marp.migration_retry_limit = 4;
    config.marp.migration_retry_backoff = sim::SimTime::millis(20);
    config.marp.anti_entropy_interval = sim::SimTime::millis(250);
    config.drain = sim::SimTime::seconds(20);
    config.fault_plan =
        fault::make_random_plan(c.seed, config.servers, config.workload.duration);
    const runner::RunResult result = runner::run_experiment(config);
    EXPECT_TRUE(result.consistent)
        << geometry_name(c.geometry) << " seed " << c.seed << ": "
        << (result.consistency_problems.empty()
                ? ""
                : result.consistency_problems[0]);
    EXPECT_EQ(result.mutex_violations, 0u)
        << geometry_name(c.geometry) << " seed " << c.seed;
  }
}

// ---------- model checker over geometries ----------

TEST(GeometryModelCheck, GridN4ExhaustsCleanly) {
  check::ScenarioConfig scenario;
  scenario.servers = 4;
  scenario.agents = 2;
  scenario.quorum.geometry = Geometry::Grid;
  check::ExploreLimits limits;
  const check::ExploreReport report = check::explore(scenario, limits);
  EXPECT_TRUE(report.exhaustive);
  EXPECT_TRUE(report.violations.empty())
      << report.violations.front().problem;
}

TEST(GeometryModelCheck, TreeN5ExhaustsCleanly) {
  check::ScenarioConfig scenario;
  scenario.servers = 5;
  scenario.agents = 2;
  scenario.quorum.geometry = Geometry::Tree;
  check::ExploreLimits limits;
  limits.max_schedules = 30000;
  const check::ExploreReport report = check::explore(scenario, limits);
  EXPECT_TRUE(report.violations.empty())
      << report.violations.front().problem;
}

TEST(GeometryModelCheck, SplitQuorumMutantIsCaughtAndReplays) {
  check::ScenarioConfig scenario;
  scenario.servers = 4;
  scenario.agents = 2;
  scenario.quorum.geometry = Geometry::Grid;
  scenario.mutant = core::ProtocolMutant::SplitQuorum;
  check::ExploreLimits limits;
  limits.max_schedules = 20000;
  limits.fail_fast = true;
  const check::ExploreReport report = check::explore(scenario, limits);
  ASSERT_FALSE(report.violations.empty())
      << "the non-intersecting SplitQuorum mutant escaped the monitor";
  const check::ViolationRecord& v = report.violations.front();
  EXPECT_NE(v.problem.find("intersection"), std::string::npos) << v.problem;
  // The replay promise: the schedule string alone reproduces the identical
  // failure.
  const check::ReplayResult replayed = check::replay(scenario, v.schedule);
  EXPECT_TRUE(replayed.outcome.violation);
  EXPECT_EQ(replayed.outcome.problem, v.problem);
  EXPECT_EQ(replayed.outcome.violation_step, v.step);
}

}  // namespace
}  // namespace marp::quorum

// Cross-cutting property suites:
//  * no-phantom-reads — every version a read returns was actually committed
//    (or the key was never written);
//  * randomized crash/recovery schedules — safety invariants hold under
//    arbitrary fail-stop churn for every strict protocol;
//  * topology robustness — MARP runs correctly on star/ring/WAN shapes.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "runner/experiment.hpp"
#include "sim/random.hpp"

namespace marp::runner {
namespace {

ExperimentConfig mixed_config(ProtocolKind protocol, std::uint64_t seed) {
  ExperimentConfig config;
  config.protocol = protocol;
  config.servers = 5;
  config.seed = seed;
  config.workload.mean_interarrival_ms = 30.0;
  config.workload.write_fraction = 0.4;
  config.workload.duration = sim::SimTime::seconds(2);
  config.workload.max_requests_per_server = 60;
  config.drain = sim::SimTime::seconds(60);
  config.keep_outcomes = true;
  return config;
}

class NoPhantomReads
    : public ::testing::TestWithParam<std::tuple<ProtocolKind, std::uint64_t>> {};

TEST_P(NoPhantomReads, ReadVersionsWereCommitted) {
  const auto [protocol, seed] = GetParam();
  const RunResult result = run_experiment(mixed_config(protocol, seed));
  ASSERT_TRUE(result.consistent);

  // Committed write versions, reconstructed from successful write
  // outcomes is impossible (outcomes don't carry versions), so use the
  // stronger store-side fact: every read version must be dominated by some
  // write that the workload actually issued — i.e. reads never return a
  // version newer than the freshest commit, and never a version for a key
  // that was not written. With a single key, the checkable core is: all
  // read versions are monotone within one origin's submission order.
  std::map<net::NodeId, replica::Version> last_seen;
  for (const auto& outcome : result.outcomes) {
    if (outcome.kind != replica::RequestKind::Read || !outcome.success) continue;
    auto& previous = last_seen[outcome.origin];
    // A single client (origin server) reading the same local copy must
    // never observe versions going backwards: replica stores are
    // version-monotone, so successive local reads are too.
    EXPECT_GE(outcome.read_version, previous)
        << protocol_name(protocol) << " read went backwards at origin "
        << outcome.origin;
    previous = outcome.read_version;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, NoPhantomReads,
    ::testing::Combine(::testing::Values(ProtocolKind::Marp,
                                         ProtocolKind::AvailableCopy,
                                         ProtocolKind::Tsae),
                       ::testing::Values(101, 102)),
    [](const auto& info) {
      std::string name = protocol_name(std::get<0>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_s" + std::to_string(std::get<1>(info.param));
    });

class CrashChurn
    : public ::testing::TestWithParam<std::tuple<ProtocolKind, std::uint64_t>> {};

TEST_P(CrashChurn, RandomFailScheduleNeverBreaksSafety) {
  const auto [protocol, seed] = GetParam();
  ExperimentConfig config = mixed_config(protocol, seed);
  config.keep_outcomes = false;
  config.drain = sim::SimTime::seconds(120);

  // Random schedule: 2-4 fail events on distinct non-zero nodes, each
  // followed by a recovery, never taking down a majority at once.
  sim::Rng rng(seed * 7919);
  std::vector<net::NodeId> victims{1, 2, 3, 4};
  rng.shuffle(victims);
  const std::size_t crashes = 2 + rng.bounded(2);  // at most 2 down at once
  for (std::size_t i = 0; i < crashes; ++i) {
    const double fail_at = rng.uniform(0.2, 1.5);
    const double recover_at = fail_at + rng.uniform(0.3, 1.0);
    config.failures.push_back(
        {sim::SimTime::seconds(fail_at), victims[i % 2], true});
    config.failures.push_back(
        {sim::SimTime::seconds(recover_at), victims[i % 2], false});
  }
  std::sort(config.failures.begin(), config.failures.end(),
            [](const FailureEvent& a, const FailureEvent& b) { return a.at < b.at; });

  const RunResult result = run_experiment(config);
  EXPECT_EQ(result.mutex_violations, 0u) << protocol_name(protocol);
  // The convergence audit excludes servers touched by the schedule, so the
  // untouched ones must agree exactly.
  EXPECT_TRUE(result.consistent)
      << protocol_name(protocol) << ": "
      << (result.consistency_problems.empty() ? ""
                                              : result.consistency_problems[0]);
  // Progress: writes from untouched origins keep committing.
  EXPECT_GT(result.successful_writes, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CrashChurn,
    ::testing::Combine(::testing::Values(ProtocolKind::Marp, ProtocolKind::MpMcv,
                                         ProtocolKind::WeightedVoting,
                                         ProtocolKind::PrimaryCopy),
                       ::testing::Values(201, 202, 203)),
    [](const auto& info) {
      std::string name = protocol_name(std::get<0>(info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name + "_s" + std::to_string(std::get<1>(info.param));
    });

// ---------- topology robustness ----------

TEST(Topologies, MarpRunsOnWanClusters) {
  ExperimentConfig config = mixed_config(ProtocolKind::Marp, 301);
  config.network = NetworkKind::Wan;
  config.workload.mean_interarrival_ms = 300.0;
  config.workload.max_requests_per_server = 20;
  config.drain = sim::SimTime::seconds(300);
  const RunResult result = run_experiment(config);
  EXPECT_TRUE(result.consistent);
  EXPECT_EQ(result.completed, result.generated);
}

TEST(Topologies, EvenClusterSizesWork) {
  // Even N: majority of 4 is 3; of 6 is 4.
  for (std::size_t servers : {2u, 4u, 6u}) {
    ExperimentConfig config = mixed_config(ProtocolKind::Marp, 400 + servers);
    config.servers = servers;
    config.workload.max_requests_per_server = 20;
    const RunResult result = run_experiment(config);
    EXPECT_TRUE(result.consistent) << "N = " << servers;
    EXPECT_EQ(result.completed, result.generated) << "N = " << servers;
    EXPECT_EQ(result.mutex_violations, 0u) << "N = " << servers;
    // Quorum tour length: every winner visited at least ⌊N/2⌋+1 servers.
    for (const auto& outcome : result.outcomes) {
      if (outcome.kind == replica::RequestKind::Write && outcome.success) {
        EXPECT_GE(outcome.servers_visited, servers / 2 + 1) << "N = " << servers;
        EXPECT_LE(outcome.servers_visited, servers) << "N = " << servers;
      }
    }
  }
}

TEST(Topologies, LargeClusterSmoke) {
  ExperimentConfig config = mixed_config(ProtocolKind::Marp, 500);
  config.servers = 15;
  config.workload.mean_interarrival_ms = 400.0;
  config.workload.max_requests_per_server = 10;
  config.drain = sim::SimTime::seconds(120);
  const RunResult result = run_experiment(config);
  EXPECT_TRUE(result.consistent);
  EXPECT_EQ(result.completed, result.generated);
}

}  // namespace
}  // namespace marp::runner

// Tests for the timestamped anti-entropy baseline (Golding '92, the
// paper's ref [6]): instant local commits, background convergence,
// push-pull symmetry, staleness window, and failure/recovery behaviour.
#include <gtest/gtest.h>

#include <memory>

#include "baseline/tsae.hpp"
#include "net/latency.hpp"
#include "net/topology.hpp"
#include "runner/experiment.hpp"
#include "sim/simulator.hpp"
#include "workload/trace.hpp"

namespace marp::baseline {
namespace {

using namespace marp::sim::literals;

struct Stack {
  explicit Stack(std::size_t n, std::uint64_t seed = 1, TsaeConfig config = {})
      : simulator(seed),
        network(simulator, net::make_lan_mesh(n, 2_ms),
                std::make_unique<net::ConstantLatency>(2_ms)),
        protocol(network, config) {
    protocol.set_outcome_handler(
        [this](const replica::Outcome& outcome) { trace.record(outcome); });
  }

  void submit(std::uint64_t id, net::NodeId origin, replica::RequestKind kind,
              const std::string& value = {}) {
    replica::Request request;
    request.id = id;
    request.kind = kind;
    request.key = "item";
    request.value = value;
    request.origin = origin;
    request.submitted = simulator.now();
    protocol.submit(request);
  }

  sim::Simulator simulator;
  net::Network network;
  TsaeProtocol protocol;
  workload::TraceCollector trace;
};

TEST(Tsae, WritesAckImmediatelyWithoutCoordination) {
  Stack stack(5);
  const auto messages_before = stack.network.stats().messages_sent;
  stack.submit(1, 0, replica::RequestKind::Write, "instant");
  stack.simulator.run(1_ms);
  ASSERT_EQ(stack.trace.successful_writes(), 1u);
  // Sub-millisecond local commit, zero synchronous messages.
  EXPECT_LT(stack.trace.outcomes()[0].total_latency().as_millis(), 1.0);
  EXPECT_EQ(stack.network.stats().messages_sent, messages_before);
}

TEST(Tsae, GossipConvergesAllReplicas) {
  Stack stack(5);
  stack.submit(1, 0, replica::RequestKind::Write, "spread-me");
  stack.simulator.run(5_s);
  for (net::NodeId node = 0; node < 5; ++node) {
    const auto value = stack.protocol.server(node).store().read("item");
    ASSERT_TRUE(value.has_value()) << "node " << node;
    EXPECT_EQ(value->value, "spread-me");
  }
  EXPECT_GT(stack.protocol.gossip_rounds(), 0u);
}

TEST(Tsae, RemoteReadIsStaleUntilGossipArrives) {
  Stack stack(5);
  stack.submit(1, 0, replica::RequestKind::Write, "new");
  stack.simulator.run(2_ms);  // long before any anti-entropy round
  stack.submit(2, 4, replica::RequestKind::Read);
  stack.simulator.run(4_ms);
  ASSERT_EQ(stack.trace.outcomes().size(), 2u);
  EXPECT_TRUE(stack.trace.outcomes()[1].value.empty());  // §1's "temporal
                                                         // inconsistency"
  // After convergence the same read sees the write.
  stack.simulator.run(5_s);
  stack.submit(3, 4, replica::RequestKind::Read);
  stack.simulator.run(6_s);
  EXPECT_EQ(stack.trace.outcomes()[2].value, "new");
}

TEST(Tsae, ConcurrentWritersConvergeByVersion) {
  Stack stack(5);
  for (net::NodeId node = 0; node < 5; ++node) {
    stack.submit(10 + node, node, replica::RequestKind::Write,
                 "w" + std::to_string(node));
  }
  stack.simulator.run(10_s);
  const auto reference = stack.protocol.server(0).store().read("item");
  ASSERT_TRUE(reference.has_value());
  for (net::NodeId node = 1; node < 5; ++node) {
    const auto value = stack.protocol.server(node).store().read("item");
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(value->value, reference->value) << "node " << node;
    EXPECT_EQ(value->version, reference->version);
  }
}

TEST(Tsae, SummaryVectorsReachTheHighWaterEverywhere) {
  Stack stack(3);
  for (int i = 0; i < 4; ++i) {
    stack.submit(1 + i, 1, replica::RequestKind::Write, "v" + std::to_string(i));
  }
  stack.simulator.run(10_s);
  for (net::NodeId node = 0; node < 3; ++node) {
    EXPECT_EQ(stack.protocol.server(node).summary()[1], 4u) << "node " << node;
  }
}

TEST(Tsae, FailedReplicaCatchesUpAfterRecovery) {
  Stack stack(5);
  stack.protocol.fail_server(3);
  stack.submit(1, 0, replica::RequestKind::Write, "missed");
  stack.simulator.run(5_s);
  EXPECT_FALSE(stack.protocol.server(3).store().read("item").has_value());
  stack.protocol.recover_server(3);
  stack.simulator.run(15_s);  // peers re-gossip the full log
  const auto value = stack.protocol.server(3).store().read("item");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->value, "missed");
}

TEST(Tsae, RunnerIntegrationConvergesAndCompletes) {
  runner::ExperimentConfig config;
  config.protocol = runner::ProtocolKind::Tsae;
  config.servers = 5;
  config.seed = 5;
  config.workload.mean_interarrival_ms = 40.0;
  config.workload.write_fraction = 0.5;
  config.workload.duration = sim::SimTime::seconds(3);
  config.drain = sim::SimTime::seconds(30);
  const runner::RunResult result = runner::run_experiment(config);
  EXPECT_GT(result.generated, 0u);
  EXPECT_EQ(result.completed, result.generated);
  EXPECT_TRUE(result.consistent)
      << (result.consistency_problems.empty() ? ""
                                              : result.consistency_problems[0]);
  // The whole point: instant writes.
  EXPECT_LT(result.att_ms, 1.0);
}

TEST(Tsae, PartitionedGroupsConvergeAfterHeal) {
  Stack stack(4);
  stack.network.partition({0, 1});
  stack.submit(1, 0, replica::RequestKind::Write, "left");
  stack.simulator.run(2_s);
  // Both sides applied their local view; sides differ.
  ASSERT_TRUE(stack.protocol.server(1).store().read("item").has_value());
  EXPECT_FALSE(stack.protocol.server(2).store().read("item").has_value());

  stack.submit(2, 3, replica::RequestKind::Write, "right");
  stack.simulator.run(4_s);
  stack.network.heal_partition();
  stack.simulator.run(20_s);
  // After healing, the later version wins everywhere.
  const auto reference = stack.protocol.server(0).store().read("item");
  ASSERT_TRUE(reference.has_value());
  EXPECT_EQ(reference->value, "right");
  for (net::NodeId node = 1; node < 4; ++node) {
    const auto value = stack.protocol.server(node).store().read("item");
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(value->value, reference->value);
  }
}

}  // namespace
}  // namespace marp::baseline

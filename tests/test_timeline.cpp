// Tests for the Timeline observer and the workload arrival-process
// variants (Poisson / Uniform / Bursty).
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <sstream>

#include "marp/protocol.hpp"
#include "marp/update_agent.hpp"
#include "metrics/timeline.hpp"
#include "net/latency.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"

namespace marp {
namespace {

using namespace marp::sim::literals;

struct Stack {
  explicit Stack(std::size_t n, std::uint64_t seed = 1)
      : simulator(seed),
        network(simulator, net::make_lan_mesh(n, 2_ms),
                std::make_unique<net::ConstantLatency>(2_ms)),
        platform(network),
        protocol(network, platform),
        timeline(simulator) {
    platform.set_observer(&timeline);
  }

  void write(std::uint64_t id, net::NodeId origin, const std::string& value) {
    replica::Request request;
    request.id = id;
    request.kind = replica::RequestKind::Write;
    request.key = "item";
    request.value = value;
    request.origin = origin;
    request.submitted = simulator.now();
    protocol.submit(request);
  }

  sim::Simulator simulator;
  net::Network network;
  agent::AgentPlatform platform;
  core::MarpProtocol protocol;
  metrics::Timeline timeline;
};

TEST(Timeline, RecordsAFullAgentLifecycle) {
  Stack stack(5);
  stack.write(1, 0, "v");
  stack.simulator.run();

  using EventKind = metrics::Timeline::EventKind;
  std::size_t created = 0, disposed = 0, migrations = 0, arrivals = 0;
  for (const auto& event : stack.timeline.events()) {
    switch (event.kind) {
      case EventKind::Created: ++created; break;
      case EventKind::Disposed: ++disposed; break;
      case EventKind::MigrationStarted:
        ++migrations;
        EXPECT_GT(event.bytes, 0u);
        break;
      case EventKind::MigrationCompleted: ++arrivals; break;
      case EventKind::MigrationFailed: ADD_FAILURE() << "unexpected failure";
    }
  }
  EXPECT_EQ(created, 1u);
  EXPECT_EQ(disposed, 1u);
  // Uncontended N = 5 lock needs (N+1)/2 = 3 servers = 2 migrations.
  EXPECT_EQ(migrations, 2u);
  EXPECT_EQ(arrivals, migrations);

  // Events are chronological.
  for (std::size_t i = 1; i < stack.timeline.events().size(); ++i) {
    EXPECT_GE(stack.timeline.events()[i].at, stack.timeline.events()[i - 1].at);
  }
  // First event is the creation, with the agent type.
  ASSERT_FALSE(stack.timeline.events().empty());
  EXPECT_EQ(stack.timeline.events().front().kind, EventKind::Created);
  EXPECT_EQ(stack.timeline.events().front().type, core::kUpdateAgentType);
}

TEST(Timeline, RecordsFailedMigrations) {
  Stack stack(5);
  stack.protocol.fail_server(4);
  stack.write(1, 0, "v");
  stack.simulator.run(60_s);
  // The agent may or may not have needed node 4; force the issue by also
  // failing 3 so it must retry somewhere.
  std::size_t failures = 0;
  for (const auto& event : stack.timeline.events()) {
    if (event.kind == metrics::Timeline::EventKind::MigrationFailed) ++failures;
  }
  // Either path is fine; the structural assertion is that a failure event,
  // when present, names node 4 as the destination.
  for (const auto& event : stack.timeline.events()) {
    if (event.kind == metrics::Timeline::EventKind::MigrationFailed) {
      EXPECT_EQ(event.node, 4u);
    }
  }
  (void)failures;
}

TEST(Timeline, PrintAndItinerariesRender) {
  Stack stack(3);
  stack.write(1, 0, "v");
  stack.simulator.run();
  std::ostringstream log;
  stack.timeline.print(log);
  EXPECT_NE(log.str().find("created"), std::string::npos);
  EXPECT_NE(log.str().find("migrate"), std::string::npos);
  EXPECT_NE(log.str().find("disposed"), std::string::npos);

  std::ostringstream itineraries;
  stack.timeline.print_itineraries(itineraries);
  EXPECT_NE(itineraries.str().find(core::kUpdateAgentType), std::string::npos);
  EXPECT_NE(itineraries.str().find("0 -> "), std::string::npos);
  EXPECT_NE(itineraries.str().find("ms]"), std::string::npos);
}

TEST(Timeline, CapacityBoundsRetention) {
  Stack stack(5);
  stack.timeline.set_capacity(4);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    stack.write(i, static_cast<net::NodeId>(i % 5), "v" + std::to_string(i));
  }
  stack.simulator.run();
  EXPECT_EQ(stack.timeline.size(), 4u);
  EXPECT_GT(stack.timeline.dropped(), 0u);
  stack.timeline.clear();
  EXPECT_EQ(stack.timeline.size(), 0u);
  EXPECT_EQ(stack.timeline.dropped(), 0u);
}

TEST(Timeline, RingOverwriteIsConstantTimeAtCapacity) {
  // Regression for the old erase(begin()) drop path: O(n) per event once at
  // capacity, quadratic over a run. 100k events against a 1k cap took
  // seconds there; the ring buffer does it in milliseconds. The bound is
  // deliberately loose so sanitizer builds pass, while the quadratic
  // behaviour (~10^8 element moves) still blows through it.
  sim::Simulator simulator(1);
  metrics::Timeline timeline(simulator);
  timeline.set_capacity(1000);
  agent::AgentId id{0, 1, 0};
  const auto start = std::chrono::steady_clock::now();
  for (std::uint32_t i = 0; i < 100'000; ++i) {
    id.seq = i;
    timeline.on_agent_created(id, "marp.update", 0);
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(timeline.size(), 1000u);
  EXPECT_EQ(timeline.dropped(), 99'000u);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(),
            2000);
  // Retained events are the newest 1000, oldest first.
  const auto events = timeline.events();
  ASSERT_EQ(events.size(), 1000u);
  EXPECT_EQ(events.front().agent.seq, 99'000u);
  EXPECT_EQ(events.back().agent.seq, 99'999u);
}

TEST(Timeline, EvictedCreationTruncatesItineraryInsteadOfFabricating) {
  // Regression: with an agent's Created event evicted, the itinerary used
  // to report a lifetime measured from t=0 and a hop chain starting
  // mid-route. Now the agent is flagged and printed as [trace truncated].
  sim::Simulator simulator(1);
  metrics::Timeline timeline(simulator);
  timeline.set_capacity(6);
  const agent::AgentId victim{0, 100, 0};
  const agent::AgentId fresh{1, 200, 1};
  timeline.on_agent_created(victim, "marp.update", 0);
  timeline.on_migration_started(victim, 0, 1, 64);
  timeline.on_migration_completed(victim, 1);
  timeline.on_agent_disposed(victim, 1);
  timeline.on_agent_created(fresh, "marp.update", 2);
  timeline.on_migration_completed(fresh, 3);
  // Seventh event evicts the victim's Created record.
  timeline.on_agent_disposed(fresh, 3);
  ASSERT_EQ(timeline.size(), 6u);
  EXPECT_TRUE(timeline.truncated_agents().contains(victim));
  EXPECT_FALSE(timeline.truncated_agents().contains(fresh));

  std::ostringstream os;
  timeline.print_itineraries(os);
  const std::string rendered = os.str();
  const std::size_t victim_line = rendered.find(victim.to_string());
  const std::size_t fresh_line = rendered.find(fresh.to_string());
  ASSERT_NE(victim_line, std::string::npos);
  ASSERT_NE(fresh_line, std::string::npos);
  EXPECT_NE(rendered.find("[trace truncated]", victim_line), std::string::npos);
  // The intact agent still gets a real duration, not the truncation marker.
  const std::string fresh_rendered = rendered.substr(fresh_line);
  EXPECT_NE(fresh_rendered.find("ms]"), std::string::npos);
  EXPECT_EQ(fresh_rendered.find("[trace truncated]"), std::string::npos);
}

// ---------- arrival processes ----------

double mean_gap_ms(workload::ArrivalProcess process, std::uint64_t seed,
                   std::vector<double>* gaps_out = nullptr) {
  sim::Simulator simulator(seed);
  workload::WorkloadConfig config;
  config.arrivals = process;
  config.mean_interarrival_ms = 20.0;
  config.duration = sim::SimTime::seconds(400);
  std::vector<double> arrivals;
  workload::RequestGenerator generator(
      simulator, 1, config, [&](const replica::Request& request) {
        arrivals.push_back(request.submitted.as_millis());
      });
  generator.start();
  simulator.run();
  double sum = 0.0;
  std::vector<double> gaps;
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    gaps.push_back(arrivals[i] - arrivals[i - 1]);
    sum += gaps.back();
  }
  if (gaps_out) *gaps_out = gaps;
  return sum / static_cast<double>(gaps.size());
}

class ArrivalProcesses
    : public ::testing::TestWithParam<workload::ArrivalProcess> {};

TEST_P(ArrivalProcesses, LongRunMeanMatchesConfiguredRate) {
  const double mean = mean_gap_ms(GetParam(), 31);
  EXPECT_NEAR(mean, 20.0, 1.5);
}

INSTANTIATE_TEST_SUITE_P(Kinds, ArrivalProcesses,
                         ::testing::Values(workload::ArrivalProcess::Poisson,
                                           workload::ArrivalProcess::Uniform,
                                           workload::ArrivalProcess::Bursty),
                         [](const auto& info) {
                           switch (info.param) {
                             case workload::ArrivalProcess::Poisson: return "Poisson";
                             case workload::ArrivalProcess::Uniform: return "Uniform";
                             case workload::ArrivalProcess::Bursty: return "Bursty";
                           }
                           return "?";
                         });

TEST(ArrivalProcessShape, BurstyHasHigherVarianceThanUniform) {
  auto variance_of = [](workload::ArrivalProcess process) {
    std::vector<double> gaps;
    const double mean = mean_gap_ms(process, 32, &gaps);
    double var = 0.0;
    for (double gap : gaps) var += (gap - mean) * (gap - mean);
    return var / static_cast<double>(gaps.size());
  };
  const double uniform = variance_of(workload::ArrivalProcess::Uniform);
  const double poisson = variance_of(workload::ArrivalProcess::Poisson);
  const double bursty = variance_of(workload::ArrivalProcess::Bursty);
  EXPECT_LT(uniform, poisson);
  EXPECT_LT(poisson, bursty);
}

TEST(ArrivalProcessShape, BurstyProducesTightClusters) {
  std::vector<double> gaps;
  mean_gap_ms(workload::ArrivalProcess::Bursty, 33, &gaps);
  // With burst_size 8 and intra-gap mean/10, roughly 7/8 of gaps are short.
  std::size_t short_gaps = 0;
  for (double gap : gaps) {
    if (gap < 10.0) ++short_gaps;  // < half the 20ms mean
  }
  const double fraction =
      static_cast<double>(short_gaps) / static_cast<double>(gaps.size());
  EXPECT_GT(fraction, 0.7);
}

}  // namespace
}  // namespace marp

// Multi-node trace merge tests: the distributed-tracing pipeline from raw
// per-node TraceDumps to one aligned Perfetto timeline plus the calibration
// feedback loop into the simulator's link model.
//
// The unit suites drive align_clocks / write_merged_trace on synthetic
// NodeTraces where the ground-truth offsets and delays are chosen by the
// test; the cluster suites run real RealNode stacks over an InProcMesh with
// deliberately skewed trace clocks and assert the merge undoes the skew —
// and that turning tracing on changes nothing about the protocol's result.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/latency.hpp"
#include "rpc/control.hpp"
#include "sim/random.hpp"
#include "trace/json.hpp"
#include "trace/merge.hpp"
#include "trace/tracer.hpp"
#include "transport/inproc_transport.hpp"
#include "transport/real_node.hpp"

namespace marp::trace {
namespace {

constexpr std::uint8_t kMigration = static_cast<std::uint8_t>(SpanKind::Migration);
constexpr std::uint8_t kVisit = static_cast<std::uint8_t>(SpanKind::Visit);
constexpr std::uint8_t kSession = static_cast<std::uint8_t>(SpanKind::Session);

rpc::NodeTrace::Span agent_span(std::uint8_t kind, std::int64_t start,
                                std::int64_t end, std::uint32_t node,
                                std::uint32_t agent_origin = 0,
                                std::uint64_t aux = 0) {
  rpc::NodeTrace::Span s;
  s.start_us = start;
  s.end_us = end;
  s.kind = kind;
  s.node = node;
  s.agent_origin = agent_origin;
  s.agent_created_us = 1000;
  s.agent_seq = 0;
  s.aux = aux;
  return s;
}

// ---- pairwise clock alignment ----

TEST(AlignClocks, RecoversAConstantOffsetFromSymmetricSamples) {
  // Ground truth: node 1's trace clock runs 5000 us ahead of node 0's, and
  // every frame takes 40 us one-way. A frame 1→0 sent at true time t is
  // stamped send = t + 5000 (sender clock) and lands at recv = t + 40
  // (receiver clock); the reverse direction mirrors it.
  rpc::NodeTrace n0, n1;
  n0.node = 0;
  n1.node = 1;
  for (std::int64_t t = 10000; t < 10500; t += 100) {
    n0.link_samples.push_back({1, t + 5000, t + 40});        // 1 → 0
    n1.link_samples.push_back({0, t + 50, t + 50 + 40 + 5000});  // 0 → 1
  }
  const MergeResult result = align_clocks({n0, n1});
  ASSERT_EQ(result.offsets_us.size(), 2u);
  EXPECT_EQ(result.offsets_us[0], 0);
  EXPECT_EQ(result.offsets_us[1], 5000);
  EXPECT_TRUE(result.aligned[0]);
  EXPECT_TRUE(result.aligned[1]);

  // The aligned one-way delay distils to the true 40 us in both directions.
  EXPECT_EQ(result.calibration.median_us(0, 1), 40);
  EXPECT_EQ(result.calibration.median_us(1, 0), 40);
}

TEST(AlignClocks, OffsetsPropagateTransitivelyOverTheSampleGraph) {
  // Node 2 never exchanged frames with the reference, only with node 1:
  // its offset must still resolve through the 0↔1↔2 chain.
  rpc::NodeTrace n0, n1, n2;
  n0.node = 0;
  n1.node = 1;
  n2.node = 2;
  for (std::int64_t t = 0; t < 300; t += 100) {
    n0.link_samples.push_back({1, t + 3000, t + 20});  // 1 → 0, offset 3000
    n1.link_samples.push_back({0, t, t + 20 + 3000});
    n1.link_samples.push_back({2, t + 7000 - 3000, t + 30});  // 2 → 1
    n2.link_samples.push_back({1, t + 3000 - 7000, t + 30});  // 1 → 2
  }
  const MergeResult result = align_clocks({n0, n1, n2});
  ASSERT_EQ(result.offsets_us.size(), 3u);
  EXPECT_EQ(result.offsets_us[1], 3000);
  EXPECT_EQ(result.offsets_us[2], 7000);
  EXPECT_TRUE(result.aligned[2]);
}

TEST(AlignClocks, NodeWithoutSamplesIsReportedUnaligned) {
  rpc::NodeTrace n0, n1, n2;
  n0.node = 0;
  n1.node = 1;
  n2.node = 2;  // silent: no traced frames either way
  n0.link_samples.push_back({1, 100, 160});
  n1.link_samples.push_back({0, 100, 160});
  const MergeResult result = align_clocks({n0, n1, n2});
  EXPECT_TRUE(result.aligned[0]);
  EXPECT_TRUE(result.aligned[1]);
  EXPECT_FALSE(result.aligned[2]);
  EXPECT_EQ(result.offsets_us[2], 0);
}

// ---- migration stitching + emission ----

TEST(WriteMergedTrace, StitchesOpenMigrationsAndDrawsFlows) {
  // Node 0 launched a migration to node 1 that never completed locally (the
  // real cross-process shape); node 1 holds the agent's first span after
  // arrival. The merge must close the migration against that span's start
  // and pair the two tracks with one s/f flow.
  rpc::NodeTrace n0, n1;
  n0.node = 0;
  n1.node = 1;
  n0.spans.push_back(agent_span(kSession, 50, 400, 0, /*agent_origin=*/0));
  n0.spans.push_back(
      agent_span(kMigration, 100, rpc::NodeTrace::kOpenEnd, /*node=dest*/ 1,
                 /*agent_origin=*/0, /*aux=from*/ 0));
  n1.spans.push_back(agent_span(kVisit, 180, 320, 1, /*agent_origin=*/0));

  std::ostringstream out;
  const MergeResult result = write_merged_trace(out, {n0, n1});
  EXPECT_EQ(result.spans_emitted, 3u);
  EXPECT_EQ(result.flows_emitted, 2u);
  EXPECT_EQ(result.open_unmatched, 0u);

  const JsonValue root = parse_json(out.str());
  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  bool saw_stitched = false, saw_s = false, saw_f = false;
  for (const JsonValue& ev : events->array) {
    const JsonValue* ph = ev.find("ph");
    const JsonValue* ts = ev.find("ts");
    if (ts) EXPECT_GE(ts->number, 0.0);  // rebase leaves nothing negative
    if (!ph || !ph->is_string()) continue;
    if (ph->str == "X") {
      const JsonValue* args = ev.find("args");
      const JsonValue* stitched = args ? args->find("stitched") : nullptr;
      if (stitched != nullptr) {
        saw_stitched = true;
        // Departure 100, first span on the destination at 180 → 80 us.
        EXPECT_EQ(ev.find("dur")->number, 80.0);
      }
    } else if (ph->str == "s") {
      saw_s = true;
    } else if (ph->str == "f") {
      saw_f = true;
      EXPECT_NE(ev.find("bp"), nullptr);  // binding point, or Perfetto
                                          // refuses to attach the arrow
    }
  }
  EXPECT_TRUE(saw_stitched);
  EXPECT_TRUE(saw_s);
  EXPECT_TRUE(saw_f);
}

TEST(WriteMergedTrace, UnstitchableOpenSpansAreCountedNotEmitted) {
  // The agent never surfaced on the destination (e.g. the homecoming hop
  // right before disposal): the open migration is honest bookkeeping, not a
  // drawable span.
  rpc::NodeTrace n0, n1;
  n0.node = 0;
  n1.node = 1;
  n0.spans.push_back(
      agent_span(kMigration, 100, rpc::NodeTrace::kOpenEnd, 1, 0, 0));

  std::ostringstream out;
  const MergeResult result = write_merged_trace(out, {n0, n1});
  EXPECT_EQ(result.spans_emitted, 0u);
  EXPECT_EQ(result.flows_emitted, 0u);
  EXPECT_EQ(result.open_unmatched, 1u);
}

// ---- calibration file round trip + the simulator's replay model ----

TEST(CalibrationJson, RoundTripsThroughWriteAndParse) {
  net::CalibrationTable table;
  table.links.push_back({0, 1, 120, {5, 8, 11, 14, 30}});
  table.links.push_back({1, 0, 98, {6, 9, 12, 15, 44}});

  std::ostringstream out;
  write_calibration_json(out, table);
  const net::CalibrationTable parsed = parse_calibration_json(out.str());
  ASSERT_EQ(parsed.links.size(), 2u);
  EXPECT_EQ(parsed.links[0].src, 0u);
  EXPECT_EQ(parsed.links[0].dst, 1u);
  EXPECT_EQ(parsed.links[0].count, 120u);
  EXPECT_EQ(parsed.links[0].quantiles_us, table.links[0].quantiles_us);
  EXPECT_EQ(parsed.links[1].quantiles_us, table.links[1].quantiles_us);

  // Round trip again: write(parse(write(t))) is byte-stable.
  std::ostringstream out2;
  write_calibration_json(out2, parsed);
  EXPECT_EQ(out2.str(), out.str());
}

TEST(CalibrationJson, RejectsMalformedInput) {
  EXPECT_THROW(parse_calibration_json(""), std::runtime_error);
  EXPECT_THROW(parse_calibration_json("{"), std::runtime_error);
  EXPECT_THROW(parse_calibration_json("{}"), std::runtime_error);
  EXPECT_THROW(parse_calibration_json(R"({"version":1,"links":3})"),
               std::runtime_error);
  EXPECT_THROW(
      parse_calibration_json(R"({"version":1,"links":[{"src":0}]})"),
      std::runtime_error);
}

TEST(CalibratedLatency, ManyDrawsReproduceTheTableMedian) {
  // The closure property the cluster gate relies on: draws from the
  // inverse-CDF replay land their median on the measured table's median.
  net::CalibrationTable table;
  std::vector<std::int64_t> quantiles;
  for (int i = 0; i < 33; ++i) quantiles.push_back(200 + 25 * i);
  table.links.push_back({0, 1, 500, quantiles});
  const std::int64_t target = table.median_us(0, 1);
  ASSERT_GT(target, 0);

  net::CalibratedLatency model(table);
  sim::Rng rng(99);
  for (int i = 0; i < 4000; ++i) model.sample(0, 1, 64, rng);

  const auto report = model.report();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0].target_p50_us, target);
  EXPECT_EQ(report[0].samples, 4000u);
  const double err = static_cast<double>(report[0].sampled_p50_us - target) /
                     static_cast<double>(target);
  EXPECT_LT(std::abs(err), 0.10) << "sampled " << report[0].sampled_p50_us
                                 << " vs target " << target;
}

TEST(CalibratedLatency, UnmeasuredLinksFallBackToTheMeshMedian) {
  net::CalibrationTable table;
  table.links.push_back({0, 1, 50, {100, 100, 100}});
  net::CalibratedLatency model(table);
  sim::Rng rng(7);
  // 2→3 was never measured: the model must still produce a sane positive
  // delay (median of the measured links' medians), not zero or a crash.
  for (int i = 0; i < 32; ++i) {
    EXPECT_GT(model.sample(2, 3, 64, rng).as_micros(), 0);
  }
}

// ---- real protocol stacks over a mesh with skewed trace clocks ----

/// Non-owning adapter: RealNode wants to own its transport, InProcMesh owns
/// the real ones. Forwards every virtual.
class MeshProxy final : public transport::NodeTransport {
 public:
  explicit MeshProxy(transport::InProcTransport& inner) : inner_(inner) {}
  void start(Receiver receiver) override { inner_.start(std::move(receiver)); }
  void stop() override { inner_.stop(); }
  bool send_message(const net::Message& message) override {
    return inner_.send_message(message);
  }
  bool send_agent_frame(net::NodeId dst, const serial::Bytes& frame,
                        std::uint64_t trace_session = 0) override {
    return inner_.send_agent_frame(dst, frame, trace_session);
  }
  bool send_agent_ack(net::NodeId dst, std::uint64_t token) override {
    return inner_.send_agent_ack(dst, token);
  }
  bool reachable(net::NodeId dst) override { return inner_.reachable(dst); }
  transport::TransportStats stats() const override { return inner_.stats(); }
  bool send_announce(net::NodeId dst) override {
    return inner_.send_announce(dst);
  }
  void set_trace_clock(transport::Transport::TraceClock clock) override {
    inner_.set_trace_clock(std::move(clock));
  }

 private:
  transport::InProcTransport& inner_;
};

struct MeshRun {
  std::vector<rpc::NodeDump> dumps;
  std::vector<rpc::NodeTrace> traces;
};

/// A 3-node cluster of full RealNode stacks over an InProcMesh. `skew_step`
/// offsets node i's trace clock by i × skew_step microseconds; all nodes
/// share one clock epoch so the injected skew is the whole inter-node
/// offset (modulo in-process delivery jitter).
MeshRun run_mesh_cluster(std::size_t nodes, std::uint64_t sessions,
                         std::size_t trace_capacity, std::int64_t skew_step) {
  transport::InProcMesh mesh(nodes);
  const std::int64_t epoch =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();

  std::vector<std::unique_ptr<transport::RealNode>> cluster;
  for (net::NodeId id = 0; id < nodes; ++id) {
    transport::RealNodeConfig config;
    config.node = id;
    // Addresses are never dialed (the factory supplies the mesh transport);
    // the endpoint list still sizes the cluster.
    config.endpoints = transport::local_uds_cluster("/tmp/unused-mesh", nodes);
    config.seed = 11 + id;
    config.sessions = sessions;
    config.start_delay = sim::SimTime::millis(100);
    config.marp.reliable_commit = true;
    config.trace_capacity = trace_capacity;
    config.trace_skew_us = skew_step * static_cast<std::int64_t>(id);
    config.clock_epoch_us = epoch;
    config.transport_factory =
        [&mesh](const transport::RealNodeConfig& c)
        -> std::unique_ptr<transport::NodeTransport> {
      return std::make_unique<MeshProxy>(mesh.node(c.node));
    };
    cluster.push_back(std::make_unique<transport::RealNode>(std::move(config)));
  }
  for (auto& node : cluster) node->start();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  bool quiesced = false;
  while (!quiesced && std::chrono::steady_clock::now() < deadline) {
    quiesced = true;
    for (auto& node : cluster) {
      if (!node->status().quiesced) {
        quiesced = false;
        break;
      }
    }
    if (!quiesced) std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  EXPECT_TRUE(quiesced) << "mesh cluster did not quiesce";

  MeshRun run;
  for (auto& node : cluster) {
    run.dumps.push_back(node->dump());
    if (trace_capacity > 0) run.traces.push_back(node->trace_dump());
  }
  for (auto& node : cluster) node->request_stop();
  for (auto& node : cluster) node->join();
  return run;
}

TEST(TraceMergeCluster, InjectedSkewIsCorrectedWithinTolerance) {
  constexpr std::int64_t kSkewStep = 200000;  // node i is i × 200 ms off
  const MeshRun run = run_mesh_cluster(3, 4, /*trace_capacity=*/1 << 16,
                                       kSkewStep);
  ASSERT_EQ(run.traces.size(), 3u);
  for (const auto& t : run.traces) {
    EXPECT_EQ(t.spans_dropped, 0u) << "node " << t.node;
  }

  const MergeResult aligned = align_clocks(run.traces);
  ASSERT_EQ(aligned.offsets_us.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(aligned.aligned[i]) << "node " << i;
    // In-process delivery is microseconds; 5 ms of slack is two orders of
    // magnitude above the expected alignment error and 40× below the skew.
    EXPECT_NEAR(static_cast<double>(aligned.offsets_us[i]),
                static_cast<double>(kSkewStep * static_cast<std::int64_t>(i)),
                5000.0)
        << "node " << i;
  }

  // The merged document itself: parses, spans from every node, nothing
  // negative after rebase.
  std::ostringstream out;
  const MergeResult merged = write_merged_trace(out, run.traces);
  EXPECT_GT(merged.spans_emitted, 0u);
  EXPECT_GT(merged.flows_emitted, 0u);
  const JsonValue root = parse_json(out.str());
  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  std::set<double> pids;
  for (const JsonValue& ev : events->array) {
    const JsonValue* ts = ev.find("ts");
    if (ts) EXPECT_GE(ts->number, 0.0);
    const JsonValue* ph = ev.find("ph");
    const JsonValue* pid = ev.find("pid");
    if (ph && ph->is_string() && ph->str != "M" && pid) {
      pids.insert(pid->number);
    }
  }
  EXPECT_EQ(pids.size(), 3u) << "expected one pid per node";
}

TEST(TraceMergeCluster, TracingDoesNotChangeTheProtocolResult) {
  const MeshRun untraced = run_mesh_cluster(3, 4, 0, 0);
  const MeshRun traced = run_mesh_cluster(3, 4, 1 << 16, 150000);
  ASSERT_EQ(untraced.dumps.size(), traced.dumps.size());

  // Which replica a touring agent happens to be visiting when its session
  // commits is timing-dependent even between two untraced runs, so compare
  // the protocol-level result: total commits/aborts and the converged store
  // every node must agree on key-for-key.
  std::uint64_t commits_a = 0, commits_b = 0, aborts_a = 0, aborts_b = 0;
  for (std::size_t i = 0; i < untraced.dumps.size(); ++i) {
    const rpc::NodeDump& a = untraced.dumps[i];
    const rpc::NodeDump& b = traced.dumps[i];
    commits_a += a.status.commits;
    commits_b += b.status.commits;
    aborts_a += a.status.aborts;
    aborts_b += b.status.aborts;
    EXPECT_EQ(a.mutex_violations, 0u);
    EXPECT_EQ(b.mutex_violations, 0u);
    ASSERT_EQ(a.items.size(), b.items.size()) << "node " << i;
    for (std::size_t k = 0; k < a.items.size(); ++k) {
      EXPECT_EQ(a.items[k].key, b.items[k].key);
      EXPECT_EQ(a.items[k].value, b.items[k].value);
      EXPECT_EQ(a.items[k].writer, b.items[k].writer);
    }
  }
  EXPECT_EQ(commits_a, 3u * 4u);
  EXPECT_EQ(commits_b, 3u * 4u);
  EXPECT_EQ(aborts_a, aborts_b);
}

}  // namespace
}  // namespace marp::trace

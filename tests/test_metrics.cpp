// Metrics and workload tests: Welford statistics, percentiles, histograms,
// table rendering, the Poisson request generator, and the ALT/ATT/PRK
// computations of §4.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "metrics/report.hpp"
#include "metrics/stats.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"
#include "workload/trace.hpp"

namespace marp {
namespace {

using namespace marp::sim::literals;

TEST(Running, MeanVarianceMinMax) {
  metrics::Running stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_GT(stats.ci95_half_width(), 0.0);
}

TEST(Running, EmptyIsZero) {
  metrics::Running stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.sem(), 0.0);
}

TEST(Running, MergeMatchesSequential) {
  metrics::Running all, left, right;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10;
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
}

TEST(Samples, ExactPercentiles) {
  metrics::Samples samples;
  for (int i = 1; i <= 100; ++i) samples.add(i);
  EXPECT_DOUBLE_EQ(samples.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(samples.percentile(100), 100.0);
  EXPECT_NEAR(samples.percentile(50), 50.5, 1e-9);
  EXPECT_DOUBLE_EQ(samples.min(), 1.0);
  EXPECT_DOUBLE_EQ(samples.max(), 100.0);
  EXPECT_DOUBLE_EQ(samples.mean(), 50.5);
}

TEST(Histogram, BinsAndOverflow) {
  metrics::Histogram histogram(0.0, 10.0, 5);
  histogram.add(-1.0);
  histogram.add(0.0);
  histogram.add(1.9);
  histogram.add(5.0);
  histogram.add(10.0);
  histogram.add(99.0);
  EXPECT_EQ(histogram.total(), 6u);
  EXPECT_EQ(histogram.underflow(), 1u);
  EXPECT_EQ(histogram.overflow(), 2u);
  EXPECT_EQ(histogram.bin_count(0), 2u);  // 0.0 and 1.9
  EXPECT_EQ(histogram.bin_count(2), 1u);  // 5.0
  EXPECT_DOUBLE_EQ(histogram.bin_lo(2), 4.0);
  EXPECT_DOUBLE_EQ(histogram.bin_hi(2), 6.0);
}

// Property: merging any split of a sample stream must agree with feeding
// the whole stream to one accumulator — count, mean, variance, min, max —
// regardless of where the split falls (including empty halves).
TEST(Running, MergeOfAnySplitMatchesOneShot) {
  std::vector<double> data;
  for (int i = 0; i < 101; ++i) {
    data.push_back(std::sin(i * 0.7) * 50.0 + (i % 7) - 3.0);
  }
  metrics::Running one_shot;
  for (double x : data) one_shot.add(x);

  for (std::size_t split : {std::size_t{0}, std::size_t{1}, std::size_t{13},
                            data.size() / 2, data.size() - 1, data.size()}) {
    metrics::Running left, right;
    for (std::size_t i = 0; i < data.size(); ++i) {
      (i < split ? left : right).add(data[i]);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), one_shot.count()) << "split at " << split;
    EXPECT_NEAR(left.mean(), one_shot.mean(), 1e-9) << "split at " << split;
    EXPECT_NEAR(left.variance(), one_shot.variance(), 1e-9)
        << "split at " << split;
    EXPECT_DOUBLE_EQ(left.min(), one_shot.min()) << "split at " << split;
    EXPECT_DOUBLE_EQ(left.max(), one_shot.max()) << "split at " << split;
  }
}

TEST(Running, MergeWithEmptyIsIdentityBothWays) {
  metrics::Running stats, empty;
  for (double x : {3.0, -1.0, 8.5}) stats.add(x);
  const double mean = stats.mean(), variance = stats.variance();

  stats.merge(empty);  // right identity
  EXPECT_EQ(stats.count(), 3u);
  EXPECT_DOUBLE_EQ(stats.mean(), mean);
  EXPECT_DOUBLE_EQ(stats.variance(), variance);
  EXPECT_DOUBLE_EQ(stats.min(), -1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 8.5);

  empty.merge(stats);  // left identity
  EXPECT_EQ(empty.count(), 3u);
  EXPECT_DOUBLE_EQ(empty.mean(), mean);
  EXPECT_DOUBLE_EQ(empty.variance(), variance);
  EXPECT_DOUBLE_EQ(empty.min(), -1.0);
  EXPECT_DOUBLE_EQ(empty.max(), 8.5);
}

TEST(Samples, SingleElementEveryPercentileIsThatElement) {
  metrics::Samples samples;
  samples.add(42.0);
  for (double p : {0.0, 25.0, 50.0, 75.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(samples.percentile(p), 42.0) << "p" << p;
  }
  EXPECT_DOUBLE_EQ(samples.min(), 42.0);
  EXPECT_DOUBLE_EQ(samples.max(), 42.0);
  EXPECT_DOUBLE_EQ(samples.mean(), 42.0);
}

TEST(Samples, ExtremePercentilesEqualMinAndMax) {
  metrics::Samples samples;
  for (double x : {9.0, -3.0, 4.0, 4.0, 100.0, 0.5}) samples.add(x);
  EXPECT_DOUBLE_EQ(samples.percentile(0), samples.min());
  EXPECT_DOUBLE_EQ(samples.percentile(100), samples.max());
  // p50 of {−3, 0.5, 4, 4, 9, 100} interpolates between the middle pair.
  EXPECT_DOUBLE_EQ(samples.percentile(50), 4.0);
}

TEST(Histogram, ExactBoundaryValues) {
  // [0, 10) in 5 bins of width 2: lo lands in bin 0, hi is overflow (the
  // interval is half-open), interior bin edges land in the bin they open.
  metrics::Histogram histogram(0.0, 10.0, 5);
  histogram.add(0.0);  // == lo
  EXPECT_EQ(histogram.bin_count(0), 1u);
  EXPECT_EQ(histogram.underflow(), 0u);

  histogram.add(10.0);  // == hi
  EXPECT_EQ(histogram.overflow(), 1u);

  for (std::size_t edge = 1; edge < 5; ++edge) {
    histogram.add(static_cast<double>(2 * edge));  // 2, 4, 6, 8
    EXPECT_EQ(histogram.bin_count(edge), 1u) << "edge " << 2 * edge;
  }
  // Just below an edge stays in the lower bin.
  histogram.add(std::nextafter(2.0, 0.0));
  EXPECT_EQ(histogram.bin_count(0), 2u);
  EXPECT_EQ(histogram.total(), 7u);
  // Bin bounds tile [lo, hi] without gaps.
  for (std::size_t i = 0; i < histogram.bins(); ++i) {
    EXPECT_DOUBLE_EQ(histogram.bin_lo(i), 2.0 * static_cast<double>(i));
    EXPECT_DOUBLE_EQ(histogram.bin_hi(i), 2.0 * static_cast<double>(i + 1));
  }
}

TEST(Table, RendersAlignedAndCsv) {
  metrics::Table table({"name", "value"});
  table.add_row({"alpha", metrics::Table::num(1.5, 1)});
  table.add_row({"b", "22"});
  std::ostringstream pretty;
  table.print(pretty);
  const std::string out = pretty.str();
  EXPECT_NE(out.find("| alpha | 1.5   |"), std::string::npos);
  EXPECT_NE(out.find("+-------+-------+"), std::string::npos);

  std::ostringstream csv;
  table.print_csv(csv);
  EXPECT_EQ(csv.str(), "name,value\nalpha,1.5\nb,22\n");
}

TEST(Table, RowArityEnforced) {
  metrics::Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), ContractViolation);
}

TEST(WithCi, Formats) { EXPECT_EQ(metrics::with_ci(12.345, 0.5, 1), "12.3 ± 0.5"); }

TEST(Generator, PoissonArrivalsMatchConfiguredRate) {
  sim::Simulator simulator(9);
  workload::WorkloadConfig config;
  config.mean_interarrival_ms = 10.0;
  config.duration = 100_s;
  std::uint64_t count = 0;
  workload::RequestGenerator generator(simulator, 1, config,
                                       [&](const replica::Request&) { ++count; });
  generator.start();
  simulator.run();
  // Expect ~10000 arrivals over 100s at 10ms mean: within 5%.
  EXPECT_NEAR(static_cast<double>(count), 10000.0, 500.0);
  EXPECT_EQ(generator.generated(), count);
}

TEST(Generator, WriteFractionIsRespected) {
  sim::Simulator simulator(10);
  workload::WorkloadConfig config;
  config.mean_interarrival_ms = 5.0;
  config.duration = 50_s;
  config.write_fraction = 0.25;
  std::uint64_t reads = 0, writes = 0;
  workload::RequestGenerator generator(
      simulator, 2, config, [&](const replica::Request& request) {
        (request.kind == replica::RequestKind::Write ? writes : reads) += 1;
      });
  generator.start();
  simulator.run();
  const double fraction =
      static_cast<double>(writes) / static_cast<double>(writes + reads);
  EXPECT_NEAR(fraction, 0.25, 0.02);
  EXPECT_EQ(generator.generated_writes(), writes);
  EXPECT_EQ(generator.generated_reads(), reads);
}

TEST(Generator, MaxRequestsCapHolds) {
  sim::Simulator simulator(11);
  workload::WorkloadConfig config;
  config.mean_interarrival_ms = 1.0;
  config.duration = 100_s;
  config.max_requests_per_server = 5;
  std::uint64_t count = 0;
  workload::RequestGenerator generator(simulator, 3, config,
                                       [&](const replica::Request&) { ++count; });
  generator.start();
  simulator.run();
  EXPECT_EQ(count, 15u);
}

TEST(Generator, ValuePaddingAndKeys) {
  sim::Simulator simulator(12);
  workload::WorkloadConfig config;
  config.mean_interarrival_ms = 10.0;
  config.duration = 1_s;
  config.value_bytes = 128;
  config.num_keys = 4;
  bool checked = false;
  workload::RequestGenerator generator(
      simulator, 1, config, [&](const replica::Request& request) {
        EXPECT_GE(request.value.size(), 128u);
        EXPECT_EQ(request.key.rfind("item-", 0), 0u);
        checked = true;
      });
  generator.start();
  simulator.run();
  EXPECT_TRUE(checked);
}

replica::Outcome write_outcome(std::uint64_t id, double dispatch_ms,
                               double lock_ms, double done_ms,
                               std::uint32_t visits, bool success = true) {
  replica::Outcome outcome;
  outcome.request_id = id;
  outcome.kind = replica::RequestKind::Write;
  outcome.success = success;
  outcome.submitted = sim::SimTime::millis(dispatch_ms);
  outcome.dispatched = sim::SimTime::millis(dispatch_ms);
  outcome.lock_obtained = sim::SimTime::millis(lock_ms);
  outcome.completed = sim::SimTime::millis(done_ms);
  outcome.servers_visited = visits;
  return outcome;
}

TEST(TraceCollector, AltAttAndPrk) {
  workload::TraceCollector trace;
  trace.record(write_outcome(1, 0, 10, 14, 3));
  trace.record(write_outcome(2, 0, 20, 26, 3));
  trace.record(write_outcome(3, 0, 30, 38, 5));
  trace.record(write_outcome(4, 0, 99, 99, 5, /*success=*/false));

  EXPECT_EQ(trace.successful_writes(), 3u);
  EXPECT_EQ(trace.failed_writes(), 1u);
  EXPECT_DOUBLE_EQ(trace.average_lock_time_ms(), 20.0);
  EXPECT_DOUBLE_EQ(trace.average_total_time_ms(), 26.0);

  const auto prk = trace.prk();
  EXPECT_NEAR(prk.at(3), 200.0 / 3.0, 1e-9);
  EXPECT_NEAR(prk.at(5), 100.0 / 3.0, 1e-9);
  double total = 0.0;
  for (const auto& [k, pct] : prk) total += pct;
  EXPECT_NEAR(total, 100.0, 1e-9);
}

TEST(TraceCollector, PercentileAndClear) {
  workload::TraceCollector trace;
  for (int i = 1; i <= 10; ++i) {
    trace.record(write_outcome(i, 0, i, 2 * i, 3));
  }
  EXPECT_NEAR(trace.total_time_percentile_ms(50), 11.0, 1e-9);
  trace.clear();
  EXPECT_EQ(trace.completed(), 0u);
  EXPECT_DOUBLE_EQ(trace.average_total_time_ms(), 0.0);
}

}  // namespace
}  // namespace marp

// Coverage for the remaining corners: available-copy availability
// tracking, primary-copy stale-view forwarding, WAN latency tails, event
// queue cancellation stress, and MARP under bursty arrivals.
#include <gtest/gtest.h>

#include <memory>

#include "baseline/available_copy.hpp"
#include "baseline/primary_copy.hpp"
#include "marp/protocol.hpp"
#include "net/latency.hpp"
#include "net/topology.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "workload/generator.hpp"
#include "workload/trace.hpp"

namespace marp {
namespace {

using namespace marp::sim::literals;

TEST(AvailableCopyTracking, BelievedUpFollowsNotices) {
  sim::Simulator simulator(1);
  net::Network network(simulator, net::make_lan_mesh(4, 1_ms),
                       std::make_unique<net::ConstantLatency>(1_ms));
  baseline::AvailableCopyProtocol protocol(network);
  EXPECT_EQ(protocol.server(0).believed_up().size(), 4u);

  protocol.fail_server(2);
  // Notice has a delay: immediately after the fail, survivors still
  // believe 2 is up.
  EXPECT_TRUE(protocol.server(0).believed_up().contains(2));
  simulator.run();
  EXPECT_FALSE(protocol.server(0).believed_up().contains(2));
  EXPECT_FALSE(protocol.server(3).believed_up().contains(2));

  protocol.recover_server(2);
  simulator.run();
  EXPECT_TRUE(protocol.server(0).believed_up().contains(2));
}

TEST(AvailableCopyTracking, WriteStartedBeforeFailureStillCompletes) {
  sim::Simulator simulator(2);
  net::Network network(simulator, net::make_lan_mesh(5, 2_ms),
                       std::make_unique<net::ConstantLatency>(2_ms));
  baseline::AvailableCopyProtocol protocol(network);
  workload::TraceCollector trace;
  protocol.set_outcome_handler(
      [&trace](const replica::Outcome& outcome) { trace.record(outcome); });

  replica::Request request;
  request.id = 1;
  request.kind = replica::RequestKind::Write;
  request.key = "item";
  request.value = "racing-failure";
  request.origin = 0;
  request.submitted = simulator.now();
  protocol.submit(request);
  // Replica 3 dies while the write is in flight; once the failure notice
  // arrives, the coordinator stops waiting for its ack.
  simulator.schedule(sim::SimTime::micros(500),
                     [&protocol] { protocol.fail_server(3); });
  simulator.run(30_s);
  EXPECT_EQ(trace.successful_writes(), 1u);
}

TEST(PrimaryCopyViews, StaleForwardIsRecoveredByRetry) {
  sim::Simulator simulator(3);
  net::Network network(simulator, net::make_lan_mesh(5, 2_ms),
                       std::make_unique<net::ConstantLatency>(2_ms));
  baseline::PrimaryCopyProtocol protocol(network);
  workload::TraceCollector trace;
  protocol.set_outcome_handler(
      [&trace](const replica::Outcome& outcome) { trace.record(outcome); });

  // Kill the primary, then submit from a server whose view is still stale
  // (the notice is in flight): the first forward goes to the dead node and
  // the origin's retry re-routes to the new primary.
  protocol.fail_server(0);
  replica::Request request;
  request.id = 1;
  request.kind = replica::RequestKind::Write;
  request.key = "item";
  request.value = "re-routed";
  request.origin = 4;
  request.submitted = simulator.now();
  EXPECT_TRUE(protocol.server(4).believed_up().empty() == false);
  protocol.submit(request);
  simulator.run(30_s);
  ASSERT_EQ(trace.successful_writes(), 1u);
  // The write took at least one retry interval (stale first forward).
  EXPECT_GE(trace.outcomes()[0].total_latency().as_millis(), 90.0);
  for (net::NodeId node = 1; node < 5; ++node) {
    EXPECT_EQ(protocol.server(node).store().read("item")->value, "re-routed");
  }
}

TEST(WanLatencyTail, SpikesProduceAHeavyTail) {
  const net::Topology topo = net::make_wan_clusters(2, 2, 2_ms, 40_ms);
  net::WanLatency::Params params;
  params.spike_probability = 0.05;
  params.spike_mean_us = 250'000;
  net::WanLatency model(topo.delays, params);
  sim::Rng rng(9);
  int spikes = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    if (model.sample(0, 1, 0, rng) > 150_ms) ++spikes;
  }
  // ~5% spike probability, exponential severity: a solid fraction exceeds
  // 150 ms while the base path is 40 ms.
  EXPECT_GT(spikes, kSamples * 0.02);
  EXPECT_LT(spikes, kSamples * 0.06);
}

TEST(EventQueueStress, RandomCancellationsNeverCorruptOrder) {
  sim::Rng rng(77);
  sim::EventQueue queue;
  std::vector<sim::EventId> live;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 200; ++i) {
      live.push_back(
          queue.push(sim::SimTime::micros(rng.uniform_int(0, 1000)), [] {}));
    }
    // Cancel a random half.
    rng.shuffle(live);
    for (std::size_t i = 0; i < live.size() / 2; ++i) queue.cancel(live[i]);
    live.clear();
    sim::SimTime previous = sim::SimTime::zero();
    while (!queue.empty()) {
      const sim::Event event = queue.pop();
      ASSERT_GE(event.time, previous);
      previous = event.time;
    }
  }
}

TEST(BurstyLoad, MarpAbsorbsBurstsWithBatching) {
  sim::Simulator simulator(8);
  net::Topology topo = net::make_lan_mesh(5, 2_ms);
  net::Network network(simulator, topo,
                       std::make_unique<net::LanLatency>(topo.delays, 500.0, 12.5));
  agent::AgentPlatform platform(network);
  core::MarpConfig config;
  config.batch_size = 8;
  config.batch_period = 20_ms;
  core::MarpProtocol protocol(network, platform, config);
  workload::TraceCollector trace;
  protocol.set_outcome_handler(
      [&trace](const replica::Outcome& outcome) { trace.record(outcome); });

  workload::WorkloadConfig load;
  load.arrivals = workload::ArrivalProcess::Bursty;
  load.burst_size = 8;
  load.mean_interarrival_ms = 60.0;
  load.duration = sim::SimTime::seconds(10);
  load.max_requests_per_server = 48;
  workload::RequestGenerator generator(
      simulator, 5, load,
      [&protocol](const replica::Request& request) { protocol.submit(request); });
  generator.start();
  simulator.run(sim::SimTime::seconds(120));

  EXPECT_EQ(trace.successful_writes(), generator.generated());
  EXPECT_EQ(protocol.stats().mutex_violations, 0u);
  // Batching folds bursts into far fewer commit sessions than writes.
  EXPECT_LT(protocol.stats().updates_committed, generator.generated() / 2);
}

}  // namespace
}  // namespace marp

// Unit tests for MarpServer's local agent interface (Algorithm 2's
// server-side data structures): visit semantics, gossip exchange, cheap
// refresh, batching timers, and runs over star/ring topologies.
#include <gtest/gtest.h>

#include <memory>

#include "marp/protocol.hpp"
#include "net/latency.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "workload/trace.hpp"

namespace marp::core {
namespace {

using namespace marp::sim::literals;

struct Stack {
  explicit Stack(std::size_t n, MarpConfig config = {}, std::uint64_t seed = 1)
      : simulator(seed),
        network(simulator, net::make_lan_mesh(n, 2_ms),
                std::make_unique<net::ConstantLatency>(2_ms)),
        platform(network),
        protocol(network, platform, std::move(config)) {}

  sim::Simulator simulator;
  net::Network network;
  agent::AgentPlatform platform;
  MarpProtocol protocol;
};

agent::AgentId aid(std::uint32_t n) { return agent::AgentId{n, n * 100, 0}; }

TEST(MarpServerVisit, AppendsAndSnapshotsInArrivalOrder) {
  Stack stack(3);
  MarpServer& server = stack.protocol.server(0);
  const auto first = server.visit(aid(1), {"item"}, {});
  const auto second = server.visit(aid(2), {"item"}, {});
  EXPECT_EQ(first.locking_lists.at(0).agents,
            (std::vector<agent::AgentId>{aid(1)}));
  EXPECT_EQ(second.locking_lists.at(0).agents,
            (std::vector<agent::AgentId>{aid(1), aid(2)}));
  // Re-visit keeps the queue position.
  const auto again = server.visit(aid(1), {"item"}, {});
  EXPECT_EQ(again.locking_lists.at(0).agents,
            (std::vector<agent::AgentId>{aid(1), aid(2)}));
}

TEST(MarpServerVisit, ReturnsRoutingCostsAndData) {
  Stack stack(4);
  MarpServer& server = stack.protocol.server(1);
  server.store().force("item", "local-copy", {5, 1});
  const auto result = server.visit(aid(1), {"item", "absent"}, {});
  ASSERT_EQ(result.routing_costs.size(), 4u);
  EXPECT_EQ(result.routing_costs[1], 0);
  EXPECT_EQ(result.routing_costs[0], 2000);  // 2 ms mesh
  ASSERT_TRUE(result.data.contains("item"));
  EXPECT_EQ(result.data.at("item").value, "local-copy");
  EXPECT_FALSE(result.data.contains("absent"));  // never written
}

TEST(MarpServerVisit, GossipIsStoredAndReturnedFresher) {
  Stack stack(3);
  MarpServer& server = stack.protocol.server(0);

  // Visitor 1 leaves a group-0 snapshot of server 2 in the cache.
  GroupLockTable carried;
  carried[0][2] = LockSnapshot{{aid(9)}, 50};
  server.visit(aid(1), {}, carried);

  // Visitor 2 receives it back...
  const auto result = server.visit(aid(2), {}, {});
  ASSERT_TRUE(result.gossip.contains(0));
  ASSERT_TRUE(result.gossip.at(0).contains(2));
  EXPECT_EQ(result.gossip.at(0).at(2).agents.front(), aid(9));
  // ...plus this server's own fresh snapshot left by visitor 1's visit.
  ASSERT_TRUE(result.gossip.at(0).contains(0));

  // A staler carried snapshot does not overwrite the cache.
  GroupLockTable stale;
  stale[0][2] = LockSnapshot{{aid(8)}, 10};
  const auto after_stale = server.visit(aid(3), {}, stale);
  EXPECT_EQ(after_stale.gossip.at(0).at(2).agents.front(), aid(9));
  // A fresher one does.
  GroupLockTable fresher;
  fresher[0][2] = LockSnapshot{{aid(7)}, 90};
  const auto after_fresh = server.visit(aid(4), {}, fresher);
  EXPECT_EQ(after_fresh.gossip.at(0).at(2).agents.front(), aid(7));
}

TEST(MarpServerVisit, GossipDisabledReturnsNothing) {
  MarpConfig config;
  config.gossip = false;
  Stack stack(3, config);
  MarpServer& server = stack.protocol.server(0);
  GroupLockTable carried;
  carried[0][2] = LockSnapshot{{aid(9)}, 50};
  const auto result = server.visit(aid(1), {}, carried);
  EXPECT_TRUE(result.gossip.empty());
  const auto second = server.visit(aid(2), {}, {});
  EXPECT_TRUE(second.gossip.empty());
}

TEST(MarpServerVisit, RefreshIsAppendingButLight) {
  Stack stack(3);
  MarpServer& server = stack.protocol.server(0);
  const auto refresh = server.refresh(aid(5));
  EXPECT_EQ(refresh.locking_lists.at(0).agents,
            (std::vector<agent::AgentId>{aid(5)}));
  EXPECT_TRUE(refresh.updated_list.empty());
  // Refresh did not pollute the gossip cache.
  const auto visit = server.visit(aid(6), {}, {});
  EXPECT_TRUE(visit.gossip.empty());
}

TEST(MarpServerVisit, VisitOnFailedServerIsAContractViolation) {
  Stack stack(3);
  stack.protocol.server(1).fail();
  EXPECT_THROW(stack.protocol.server(1).visit(aid(1), {}, {}), ContractViolation);
}

TEST(MarpServerBatching, PendingCountAndTimerFlush) {
  MarpConfig config;
  config.batch_size = 3;
  config.batch_period = 10_ms;
  Stack stack(3, config);
  workload::TraceCollector trace;
  stack.protocol.set_outcome_handler(
      [&trace](const replica::Outcome& outcome) { trace.record(outcome); });

  replica::Request request;
  request.id = 1;
  request.kind = replica::RequestKind::Write;
  request.key = "item";
  request.value = "v";
  request.origin = 0;
  request.submitted = stack.simulator.now();
  stack.protocol.submit(request);
  EXPECT_EQ(stack.protocol.server(0).pending_requests(), 1u);
  EXPECT_EQ(stack.platform.live_agents(), 0u);  // batch not full: no agent yet

  stack.simulator.run(5_ms);
  EXPECT_EQ(stack.protocol.server(0).pending_requests(), 1u);
  stack.simulator.run(60_s);  // period fires at 10 ms, then the write runs
  EXPECT_EQ(stack.protocol.server(0).pending_requests(), 0u);
  EXPECT_EQ(trace.successful_writes(), 1u);
}

// ---------- star / ring topology end-to-end ----------

template <typename MakeTopology>
void run_on_topology(MakeTopology&& make) {
  sim::Simulator simulator(17);
  net::Topology topology = make();
  net::Network network(simulator, topology,
                       std::make_unique<net::LanLatency>(topology.delays, 200.0,
                                                         12.5));
  agent::AgentPlatform platform(network);
  MarpProtocol protocol(network, platform);
  workload::TraceCollector trace;
  protocol.set_outcome_handler(
      [&trace](const replica::Outcome& outcome) { trace.record(outcome); });
  for (net::NodeId node = 0; node < topology.size(); ++node) {
    replica::Request request;
    request.id = 1 + node;
    request.kind = replica::RequestKind::Write;
    request.key = "item";
    request.value = "t" + std::to_string(node);
    request.origin = node;
    request.submitted = simulator.now();
    protocol.submit(request);
  }
  simulator.run(60_s);
  EXPECT_EQ(trace.successful_writes(), topology.size());
  EXPECT_EQ(protocol.stats().mutex_violations, 0u);
  const auto reference = protocol.server(0).store().read("item");
  ASSERT_TRUE(reference.has_value());
  for (net::NodeId node = 1; node < topology.size(); ++node) {
    const auto value = protocol.server(node).store().read("item");
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(value->value, reference->value);
  }
}

TEST(MarpTopologies, StarConverges) {
  run_on_topology([] { return net::make_star(5, 3_ms); });
}

TEST(MarpTopologies, RingConverges) {
  run_on_topology([] { return net::make_ring(6, 2_ms); });
}

TEST(MarpTopologies, RandomAsymmetricConverges) {
  run_on_topology([] {
    sim::Rng rng(23);
    return net::make_random(5, 1_ms, 20_ms, rng);
  });
}

}  // namespace
}  // namespace marp::core

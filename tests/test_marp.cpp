// End-to-end tests of the MARP protocol: single and concurrent updates,
// Theorem 2 (mutual exclusion) and Theorem 3 (migration bounds), order
// preservation, reads, batching, gossip, routing and tie-break modes.
#include <gtest/gtest.h>

#include <memory>

#include "marp/protocol.hpp"
#include "marp/update_agent.hpp"
#include "net/latency.hpp"
#include "net/topology.hpp"
#include "runner/consistency.hpp"
#include "sim/simulator.hpp"
#include "workload/trace.hpp"

namespace marp::core {
namespace {

using namespace marp::sim::literals;

/// A complete MARP deployment over a constant-latency LAN mesh.
struct Stack {
  explicit Stack(std::size_t n, MarpConfig config = {}, std::uint64_t seed = 1,
                 sim::SimTime latency = 2_ms)
      : simulator(seed),
        network(simulator, net::make_lan_mesh(n, latency),
                std::make_unique<net::ConstantLatency>(latency)),
        platform(network),
        protocol(network, platform, config) {
    protocol.set_outcome_handler(
        [this](const replica::Outcome& outcome) { trace.record(outcome); });
  }

  replica::Request write(std::uint64_t id, net::NodeId origin,
                         const std::string& value, const std::string& key = "item") {
    replica::Request request;
    request.id = id;
    request.kind = replica::RequestKind::Write;
    request.key = key;
    request.value = value;
    request.origin = origin;
    request.submitted = simulator.now();
    return request;
  }

  replica::Request read(std::uint64_t id, net::NodeId origin,
                        const std::string& key = "item") {
    replica::Request request;
    request.id = id;
    request.kind = replica::RequestKind::Read;
    request.key = key;
    request.origin = origin;
    request.submitted = simulator.now();
    return request;
  }

  void expect_converged(const std::string& key, const std::string& value) {
    for (net::NodeId node = 0; node < protocol.size(); ++node) {
      const auto stored = protocol.server(node).store().read(key);
      ASSERT_TRUE(stored.has_value()) << "node " << node << " missing " << key;
      EXPECT_EQ(stored->value, value) << "node " << node;
    }
  }

  sim::Simulator simulator;
  net::Network network;
  agent::AgentPlatform platform;
  MarpProtocol protocol;
  workload::TraceCollector trace;
};

TEST(Marp, SingleWriteCommitsEverywhere) {
  Stack stack(5);
  stack.protocol.submit(stack.write(1, 0, "hello"));
  stack.simulator.run();
  EXPECT_EQ(stack.trace.successful_writes(), 1u);
  stack.expect_converged("item", "hello");
  EXPECT_EQ(stack.protocol.stats().updates_committed, 1u);
  EXPECT_EQ(stack.protocol.stats().mutex_violations, 0u);
  EXPECT_EQ(stack.platform.live_agents(), 0u);  // agent disposed itself
}

TEST(Marp, UncontendedWinnerVisitsExactlyMajority) {
  // Theorem 3 lower bound: with nobody competing, the agent knows it has won
  // after topping ⌈(N+1)/2⌉ locking lists.
  for (std::size_t n : {3u, 5u, 7u}) {
    Stack stack(n);
    stack.protocol.submit(stack.write(1, 0, "x"));
    stack.simulator.run();
    ASSERT_EQ(stack.trace.outcomes().size(), 1u);
    EXPECT_EQ(stack.trace.outcomes()[0].servers_visited, (n + 1) / 2)
        << "N = " << n;
  }
}

TEST(Marp, VisitsNeverExceedClusterSize) {
  // Theorem 3 upper bound under heavy contention from every server.
  Stack stack(5);
  for (net::NodeId node = 0; node < 5; ++node) {
    stack.protocol.submit(stack.write(100 + node, node, "v" + std::to_string(node)));
  }
  stack.simulator.run();
  EXPECT_EQ(stack.trace.successful_writes(), 5u);
  for (const auto& outcome : stack.trace.outcomes()) {
    EXPECT_GE(outcome.servers_visited, 3u);
    EXPECT_LE(outcome.servers_visited, 5u);
  }
}

TEST(Marp, ConcurrentWritersSerializeWithoutMutexViolations) {
  Stack stack(5);
  for (int burst = 0; burst < 4; ++burst) {
    stack.simulator.schedule(sim::SimTime::millis(burst * 3), [&stack, burst] {
      for (net::NodeId node = 0; node < 5; ++node) {
        stack.protocol.submit(stack.write(1000 + burst * 10 + node, node,
                                          "b" + std::to_string(burst) + "n" +
                                              std::to_string(node)));
      }
    });
  }
  stack.simulator.run();
  EXPECT_EQ(stack.trace.successful_writes(), 20u);
  EXPECT_EQ(stack.protocol.stats().mutex_violations, 0u);
  EXPECT_EQ(stack.protocol.stats().updates_committed, 20u);

  // Order preservation: the global commit log is strictly version-ordered...
  const auto order = runner::check_commit_order(stack.protocol.commit_log());
  EXPECT_TRUE(order.ok) << (order.problems.empty() ? "" : order.problems[0]);
  // ...and every replica converged to the same final copy.
  std::vector<const replica::VersionedStore*> stores;
  for (net::NodeId node = 0; node < 5; ++node) {
    stores.push_back(&stack.protocol.server(node).store());
  }
  const auto convergence =
      runner::check_convergence(stores, std::vector<bool>(5, true));
  EXPECT_TRUE(convergence.ok)
      << (convergence.problems.empty() ? "" : convergence.problems[0]);
}

TEST(Marp, ReadsAreLocalAndFast) {
  Stack stack(5);
  stack.protocol.submit(stack.write(1, 0, "payload"));
  stack.simulator.run();
  const auto write_end = stack.simulator.now();

  stack.protocol.submit(stack.read(2, 3));
  stack.simulator.run();
  ASSERT_EQ(stack.trace.outcomes().size(), 2u);
  const auto& read_outcome = stack.trace.outcomes()[1];
  EXPECT_EQ(read_outcome.value, "payload");
  // Local read: no network round trip — completes in the local op time.
  EXPECT_LE((read_outcome.completed - write_end).as_millis(), 1.0);
  EXPECT_EQ(stack.protocol.stats().reads_served, 1u);
}

TEST(Marp, BatchingShipsMultipleRequestsInOneAgent) {
  MarpConfig config;
  config.batch_size = 3;
  config.batch_period = 500_ms;
  Stack stack(5, config);
  for (std::uint64_t i = 1; i <= 3; ++i) {
    stack.protocol.submit(stack.write(i, 0, "v" + std::to_string(i)));
  }
  stack.simulator.run();
  EXPECT_EQ(stack.trace.successful_writes(), 3u);
  // One agent carried the whole batch → one commit session.
  EXPECT_EQ(stack.protocol.stats().updates_committed, 1u);
  stack.expect_converged("item", "v3");  // batch order: last write wins
}

TEST(Marp, BatchPeriodFlushesPartialBatch) {
  MarpConfig config;
  config.batch_size = 10;
  config.batch_period = 20_ms;
  Stack stack(5, config);
  stack.protocol.submit(stack.write(1, 0, "lonely"));
  stack.simulator.run();
  EXPECT_EQ(stack.trace.successful_writes(), 1u);
  stack.expect_converged("item", "lonely");
}

TEST(Marp, GossipOffStillConvergesAndCommits) {
  MarpConfig config;
  config.gossip = false;
  Stack stack(5, config);
  for (net::NodeId node = 0; node < 5; ++node) {
    stack.protocol.submit(stack.write(10 + node, node, "g" + std::to_string(node)));
  }
  stack.simulator.run();
  EXPECT_EQ(stack.trace.successful_writes(), 5u);
  EXPECT_EQ(stack.protocol.stats().mutex_violations, 0u);
}

class RoutingModes : public ::testing::TestWithParam<RoutingPolicy> {};

TEST_P(RoutingModes, AllPoliciesCommitConcurrentLoad) {
  MarpConfig config;
  config.routing = GetParam();
  Stack stack(5, config);
  for (net::NodeId node = 0; node < 5; ++node) {
    stack.protocol.submit(stack.write(20 + node, node, "r" + std::to_string(node)));
  }
  stack.simulator.run();
  EXPECT_EQ(stack.trace.successful_writes(), 5u);
  EXPECT_EQ(stack.protocol.stats().mutex_violations, 0u);
}

INSTANTIATE_TEST_SUITE_P(Policies, RoutingModes,
                         ::testing::Values(RoutingPolicy::CostAware,
                                           RoutingPolicy::Random,
                                           RoutingPolicy::ByServerId));

TEST(Marp, PaperLiteralTieBreakIsSafeButCanDeadlock) {
  // The literal tie condition S + (N − M·S) < N/2 declines to resolve head
  // splits like {2,2,1} (N = 5), so the published algorithm can deadlock
  // under contention. This test documents that: the run must stay SAFE
  // (no mutex violations, some progress, converged survivors) but is not
  // required to drain — that is what TieBreakMode::TotalOrder fixes.
  MarpConfig config;
  config.tie_break = TieBreakMode::PaperLiteral;
  Stack stack(5, config);
  for (net::NodeId node = 0; node < 5; ++node) {
    stack.protocol.submit(stack.write(30 + node, node, "t" + std::to_string(node)));
  }
  stack.simulator.run(60_s);
  EXPECT_GE(stack.trace.successful_writes(), 1u);  // first winner always exists
  EXPECT_EQ(stack.protocol.stats().mutex_violations, 0u);

  // Identical load under the TotalOrder extension drains completely.
  MarpConfig fixed;
  fixed.tie_break = TieBreakMode::TotalOrder;
  Stack stack2(5, fixed);
  for (net::NodeId node = 0; node < 5; ++node) {
    stack2.protocol.submit(
        stack2.write(30 + node, node, "t" + std::to_string(node)));
  }
  stack2.simulator.run(60_s);
  EXPECT_EQ(stack2.trace.successful_writes(), 5u);
  EXPECT_EQ(stack2.protocol.stats().mutex_violations, 0u);
}

TEST(Marp, FreshestCopyWinsAcrossSessions) {
  // Writer A commits "first" via a quorum; writer B's later session must
  // observe a version above A's — even from a different origin.
  Stack stack(5);
  stack.protocol.submit(stack.write(1, 0, "first"));
  stack.simulator.run();
  stack.protocol.submit(stack.write(2, 4, "second"));
  stack.simulator.run();
  stack.expect_converged("item", "second");
  ASSERT_EQ(stack.protocol.commit_log().size(), 2u);
  EXPECT_LT(stack.protocol.commit_log()[0].entries.back().version,
            stack.protocol.commit_log()[1].entries.front().version);
}

TEST(Marp, MultiKeyBatchesKeepPerKeyConsistency) {
  MarpConfig config;
  config.batch_size = 2;
  Stack stack(5, config);
  replica::Request w1 = stack.write(1, 0, "apple", "fruit");
  replica::Request w2 = stack.write(2, 0, "carrot", "veg");
  stack.protocol.submit(w1);
  stack.protocol.submit(w2);
  stack.simulator.run();
  stack.expect_converged("fruit", "apple");
  stack.expect_converged("veg", "carrot");
}

TEST(Marp, UpdateAgentStateSurvivesSerializationMidFlight) {
  // Round-trip an UpdateAgent's full state through bytes and compare the
  // re-serialization — any divergence is a migration-corruption bug.
  UpdateAgent original(2, {{7, "key-a", "value-a"}, {8, "key-b", "value-b"}});
  serial::Writer w1;
  original.serialize(w1);

  UpdateAgent copy;
  serial::Reader r(w1.bytes());
  copy.deserialize(r);
  EXPECT_TRUE(r.at_end());

  serial::Writer w2;
  copy.serialize(w2);
  EXPECT_EQ(w1.bytes(), w2.bytes());
}

TEST(Marp, SingleServerDegenerateClusterWorks) {
  Stack stack(1);
  stack.protocol.submit(stack.write(1, 0, "solo"));
  stack.simulator.run();
  EXPECT_EQ(stack.trace.successful_writes(), 1u);
  stack.expect_converged("item", "solo");
  ASSERT_EQ(stack.trace.outcomes().size(), 1u);
  EXPECT_EQ(stack.trace.outcomes()[0].servers_visited, 1u);
}

TEST(Marp, ThreeServerClusterMinimumQuorumIsTwo) {
  Stack stack(3);
  stack.protocol.submit(stack.write(1, 1, "n3"));
  stack.simulator.run();
  ASSERT_EQ(stack.trace.outcomes().size(), 1u);
  EXPECT_EQ(stack.trace.outcomes()[0].servers_visited, 2u);
  stack.expect_converged("item", "n3");
}

TEST(Marp, LockTimeIsContainedInTotalTime) {
  Stack stack(5);
  for (net::NodeId node = 0; node < 5; ++node) {
    stack.protocol.submit(stack.write(40 + node, node, "l" + std::to_string(node)));
  }
  stack.simulator.run();
  for (const auto& outcome : stack.trace.outcomes()) {
    EXPECT_LE(outcome.dispatched.as_micros(), outcome.lock_obtained.as_micros());
    EXPECT_LE(outcome.lock_obtained.as_micros(), outcome.completed.as_micros());
  }
  EXPECT_LE(stack.trace.average_lock_time_ms(), stack.trace.average_total_time_ms());
}

}  // namespace
}  // namespace marp::core
